# Empty compiler generated dependencies file for fig6_periodic.
# This may be replaced when dependencies are built.
