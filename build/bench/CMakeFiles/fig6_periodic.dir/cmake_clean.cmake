file(REMOVE_RECURSE
  "CMakeFiles/fig6_periodic.dir/fig6_periodic.cpp.o"
  "CMakeFiles/fig6_periodic.dir/fig6_periodic.cpp.o.d"
  "fig6_periodic"
  "fig6_periodic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_periodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
