file(REMOVE_RECURSE
  "CMakeFiles/table2_overhead.dir/table2_overhead.cpp.o"
  "CMakeFiles/table2_overhead.dir/table2_overhead.cpp.o.d"
  "table2_overhead"
  "table2_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
