file(REMOVE_RECURSE
  "CMakeFiles/fig5_exectime.dir/fig5_exectime.cpp.o"
  "CMakeFiles/fig5_exectime.dir/fig5_exectime.cpp.o.d"
  "fig5_exectime"
  "fig5_exectime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_exectime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
