# Empty compiler generated dependencies file for fig5_exectime.
# This may be replaced when dependencies are built.
