file(REMOVE_RECURSE
  "CMakeFiles/fig8_liteos.dir/fig8_liteos.cpp.o"
  "CMakeFiles/fig8_liteos.dir/fig8_liteos.cpp.o.d"
  "fig8_liteos"
  "fig8_liteos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_liteos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
