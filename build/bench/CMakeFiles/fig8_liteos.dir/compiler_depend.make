# Empty compiler generated dependencies file for fig8_liteos.
# This may be replaced when dependencies are built.
