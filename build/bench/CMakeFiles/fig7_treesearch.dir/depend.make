# Empty dependencies file for fig7_treesearch.
# This may be replaced when dependencies are built.
