file(REMOVE_RECURSE
  "CMakeFiles/fig7_treesearch.dir/fig7_treesearch.cpp.o"
  "CMakeFiles/fig7_treesearch.dir/fig7_treesearch.cpp.o.d"
  "fig7_treesearch"
  "fig7_treesearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_treesearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
