# Empty compiler generated dependencies file for fig4_inflation.
# This may be replaced when dependencies are built.
