file(REMOVE_RECURSE
  "CMakeFiles/fig4_inflation.dir/fig4_inflation.cpp.o"
  "CMakeFiles/fig4_inflation.dir/fig4_inflation.cpp.o.d"
  "fig4_inflation"
  "fig4_inflation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_inflation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
