file(REMOVE_RECURSE
  "CMakeFiles/stack_pressure.dir/stack_pressure.cpp.o"
  "CMakeFiles/stack_pressure.dir/stack_pressure.cpp.o.d"
  "stack_pressure"
  "stack_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
