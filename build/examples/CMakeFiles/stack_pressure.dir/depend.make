# Empty dependencies file for stack_pressure.
# This may be replaced when dependencies are built.
