# Empty compiler generated dependencies file for inspect_rewrite.
# This may be replaced when dependencies are built.
