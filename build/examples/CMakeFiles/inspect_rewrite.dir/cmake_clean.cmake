file(REMOVE_RECURSE
  "CMakeFiles/inspect_rewrite.dir/inspect_rewrite.cpp.o"
  "CMakeFiles/inspect_rewrite.dir/inspect_rewrite.cpp.o.d"
  "inspect_rewrite"
  "inspect_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
