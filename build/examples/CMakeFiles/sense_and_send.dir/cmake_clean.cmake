file(REMOVE_RECURSE
  "CMakeFiles/sense_and_send.dir/sense_and_send.cpp.o"
  "CMakeFiles/sense_and_send.dir/sense_and_send.cpp.o.d"
  "sense_and_send"
  "sense_and_send.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sense_and_send.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
