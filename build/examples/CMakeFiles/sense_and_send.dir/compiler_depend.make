# Empty compiler generated dependencies file for sense_and_send.
# This may be replaced when dependencies are built.
