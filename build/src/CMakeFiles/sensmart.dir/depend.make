# Empty dependencies file for sensmart.
# This may be replaced when dependencies are built.
