
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/benchmarks.cpp" "src/CMakeFiles/sensmart.dir/apps/benchmarks.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/apps/benchmarks.cpp.o.d"
  "/root/repo/src/apps/memalloc.cpp" "src/CMakeFiles/sensmart.dir/apps/memalloc.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/apps/memalloc.cpp.o.d"
  "/root/repo/src/apps/periodic_task.cpp" "src/CMakeFiles/sensmart.dir/apps/periodic_task.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/apps/periodic_task.cpp.o.d"
  "/root/repo/src/apps/treesearch.cpp" "src/CMakeFiles/sensmart.dir/apps/treesearch.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/apps/treesearch.cpp.o.d"
  "/root/repo/src/assembler/assembler.cpp" "src/CMakeFiles/sensmart.dir/assembler/assembler.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/assembler/assembler.cpp.o.d"
  "/root/repo/src/baselines/features.cpp" "src/CMakeFiles/sensmart.dir/baselines/features.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/baselines/features.cpp.o.d"
  "/root/repo/src/baselines/native_runner.cpp" "src/CMakeFiles/sensmart.dir/baselines/native_runner.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/baselines/native_runner.cpp.o.d"
  "/root/repo/src/emu/devices.cpp" "src/CMakeFiles/sensmart.dir/emu/devices.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/emu/devices.cpp.o.d"
  "/root/repo/src/emu/machine.cpp" "src/CMakeFiles/sensmart.dir/emu/machine.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/emu/machine.cpp.o.d"
  "/root/repo/src/emu/memory.cpp" "src/CMakeFiles/sensmart.dir/emu/memory.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/emu/memory.cpp.o.d"
  "/root/repo/src/isa/decode.cpp" "src/CMakeFiles/sensmart.dir/isa/decode.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/isa/decode.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/CMakeFiles/sensmart.dir/isa/disasm.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/isa/disasm.cpp.o.d"
  "/root/repo/src/isa/encode.cpp" "src/CMakeFiles/sensmart.dir/isa/encode.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/isa/encode.cpp.o.d"
  "/root/repo/src/isa/instruction.cpp" "src/CMakeFiles/sensmart.dir/isa/instruction.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/isa/instruction.cpp.o.d"
  "/root/repo/src/kernel/kernel.cpp" "src/CMakeFiles/sensmart.dir/kernel/kernel.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/kernel/kernel.cpp.o.d"
  "/root/repo/src/kernel/memmgr.cpp" "src/CMakeFiles/sensmart.dir/kernel/memmgr.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/kernel/memmgr.cpp.o.d"
  "/root/repo/src/kernel/scheduler.cpp" "src/CMakeFiles/sensmart.dir/kernel/scheduler.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/kernel/scheduler.cpp.o.d"
  "/root/repo/src/kernel/trace.cpp" "src/CMakeFiles/sensmart.dir/kernel/trace.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/kernel/trace.cpp.o.d"
  "/root/repo/src/rewriter/analysis.cpp" "src/CMakeFiles/sensmart.dir/rewriter/analysis.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/rewriter/analysis.cpp.o.d"
  "/root/repo/src/rewriter/linker.cpp" "src/CMakeFiles/sensmart.dir/rewriter/linker.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/rewriter/linker.cpp.o.d"
  "/root/repo/src/rewriter/rewriter.cpp" "src/CMakeFiles/sensmart.dir/rewriter/rewriter.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/rewriter/rewriter.cpp.o.d"
  "/root/repo/src/rewriter/shift_table.cpp" "src/CMakeFiles/sensmart.dir/rewriter/shift_table.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/rewriter/shift_table.cpp.o.d"
  "/root/repo/src/rewriter/tkernel.cpp" "src/CMakeFiles/sensmart.dir/rewriter/tkernel.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/rewriter/tkernel.cpp.o.d"
  "/root/repo/src/sim/harness.cpp" "src/CMakeFiles/sensmart.dir/sim/harness.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/sim/harness.cpp.o.d"
  "/root/repo/src/vm/vm.cpp" "src/CMakeFiles/sensmart.dir/vm/vm.cpp.o" "gcc" "src/CMakeFiles/sensmart.dir/vm/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
