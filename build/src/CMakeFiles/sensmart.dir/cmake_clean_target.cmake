file(REMOVE_RECURSE
  "libsensmart.a"
)
