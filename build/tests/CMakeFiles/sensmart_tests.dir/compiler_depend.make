# Empty compiler generated dependencies file for sensmart_tests.
# This may be replaced when dependencies are built.
