
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/alu_oracle_test.cpp" "tests/CMakeFiles/sensmart_tests.dir/alu_oracle_test.cpp.o" "gcc" "tests/CMakeFiles/sensmart_tests.dir/alu_oracle_test.cpp.o.d"
  "/root/repo/tests/assembler_test.cpp" "tests/CMakeFiles/sensmart_tests.dir/assembler_test.cpp.o" "gcc" "tests/CMakeFiles/sensmart_tests.dir/assembler_test.cpp.o.d"
  "/root/repo/tests/benchmarks_test.cpp" "tests/CMakeFiles/sensmart_tests.dir/benchmarks_test.cpp.o" "gcc" "tests/CMakeFiles/sensmart_tests.dir/benchmarks_test.cpp.o.d"
  "/root/repo/tests/devices_test.cpp" "tests/CMakeFiles/sensmart_tests.dir/devices_test.cpp.o" "gcc" "tests/CMakeFiles/sensmart_tests.dir/devices_test.cpp.o.d"
  "/root/repo/tests/emu_cpu_test.cpp" "tests/CMakeFiles/sensmart_tests.dir/emu_cpu_test.cpp.o" "gcc" "tests/CMakeFiles/sensmart_tests.dir/emu_cpu_test.cpp.o.d"
  "/root/repo/tests/equivalence_property_test.cpp" "tests/CMakeFiles/sensmart_tests.dir/equivalence_property_test.cpp.o" "gcc" "tests/CMakeFiles/sensmart_tests.dir/equivalence_property_test.cpp.o.d"
  "/root/repo/tests/harness_test.cpp" "tests/CMakeFiles/sensmart_tests.dir/harness_test.cpp.o" "gcc" "tests/CMakeFiles/sensmart_tests.dir/harness_test.cpp.o.d"
  "/root/repo/tests/isa_codec_test.cpp" "tests/CMakeFiles/sensmart_tests.dir/isa_codec_test.cpp.o" "gcc" "tests/CMakeFiles/sensmart_tests.dir/isa_codec_test.cpp.o.d"
  "/root/repo/tests/kernel_e2e_test.cpp" "tests/CMakeFiles/sensmart_tests.dir/kernel_e2e_test.cpp.o" "gcc" "tests/CMakeFiles/sensmart_tests.dir/kernel_e2e_test.cpp.o.d"
  "/root/repo/tests/kernel_unit_test.cpp" "tests/CMakeFiles/sensmart_tests.dir/kernel_unit_test.cpp.o" "gcc" "tests/CMakeFiles/sensmart_tests.dir/kernel_unit_test.cpp.o.d"
  "/root/repo/tests/memalloc_test.cpp" "tests/CMakeFiles/sensmart_tests.dir/memalloc_test.cpp.o" "gcc" "tests/CMakeFiles/sensmart_tests.dir/memalloc_test.cpp.o.d"
  "/root/repo/tests/radio_rx_test.cpp" "tests/CMakeFiles/sensmart_tests.dir/radio_rx_test.cpp.o" "gcc" "tests/CMakeFiles/sensmart_tests.dir/radio_rx_test.cpp.o.d"
  "/root/repo/tests/rewrite_corners_test.cpp" "tests/CMakeFiles/sensmart_tests.dir/rewrite_corners_test.cpp.o" "gcc" "tests/CMakeFiles/sensmart_tests.dir/rewrite_corners_test.cpp.o.d"
  "/root/repo/tests/rewriter_test.cpp" "tests/CMakeFiles/sensmart_tests.dir/rewriter_test.cpp.o" "gcc" "tests/CMakeFiles/sensmart_tests.dir/rewriter_test.cpp.o.d"
  "/root/repo/tests/smoke.cpp" "tests/CMakeFiles/sensmart_tests.dir/smoke.cpp.o" "gcc" "tests/CMakeFiles/sensmart_tests.dir/smoke.cpp.o.d"
  "/root/repo/tests/tkernel_mode_test.cpp" "tests/CMakeFiles/sensmart_tests.dir/tkernel_mode_test.cpp.o" "gcc" "tests/CMakeFiles/sensmart_tests.dir/tkernel_mode_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/sensmart_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/sensmart_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/vm_baselines_test.cpp" "tests/CMakeFiles/sensmart_tests.dir/vm_baselines_test.cpp.o" "gcc" "tests/CMakeFiles/sensmart_tests.dir/vm_baselines_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/sensmart_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/sensmart_tests.dir/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sensmart.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
