// Figure 4: code inflation of the seven kernel-benchmark programs —
// native size vs the SenSmart naturalized program (rewritten code, shift
// table, trampolines) vs the t-kernel's inline rewriting.
#include <iostream>

#include "apps/benchmarks.hpp"
#include "rewriter/linker.hpp"
#include "rewriter/tkernel.hpp"
#include "sim/harness.hpp"

using namespace sensmart;

namespace {

rw::ProgramInfo rewrite_one(const assembler::Image& img,
                            const rw::RewriteOptions& opts, bool merge) {
  rw::Linker linker(opts, merge);
  linker.add(img);
  return linker.link().programs[0];
}

}  // namespace

int main() {
  std::cout << "Figure 4: CODE INFLATION OF KERNEL BENCHMARK PROGRAMS "
               "(bytes)\n\n";
  sim::Table t({"Program", "Native", "SenS.rewr", "SenS.shift", "SenS.tramp",
                "SenS.total", "SenS.infl", "+tail.infl", "t-k.total",
                "t-k.infl"},
               12);

  double worst_sensmart = 0;
  for (const auto& name : apps::benchmark_names()) {
    const auto img = apps::build_benchmark(name);
    // The paper column pins paper_options(); "+tail" adds the §6d
    // trampoline tail merging and placeholder-shrunk stack runs.
    const auto s = rewrite_one(img, rw::paper_options(), /*merge=*/true);
    const auto ft = rewrite_one(img, {}, /*merge=*/true);
    const auto tk = rewrite_one(img, rw::tkernel_rewrite_options(),
                                rw::kTKernelMerging);
    const uint32_t st =
        s.rewritten_bytes + s.shift_table_bytes + s.trampoline_bytes;
    const uint32_t tt =
        tk.rewritten_bytes + tk.shift_table_bytes + tk.trampoline_bytes;
    worst_sensmart = std::max(worst_sensmart, s.inflation());
    t.row({name, sim::Table::num(uint64_t(s.native_bytes)),
           sim::Table::num(uint64_t(s.rewritten_bytes)),
           sim::Table::num(uint64_t(s.shift_table_bytes)),
           sim::Table::num(uint64_t(s.trampoline_bytes)),
           sim::Table::num(uint64_t(st)), sim::Table::num(s.inflation()),
           sim::Table::num(ft.inflation()), sim::Table::num(uint64_t(tt)),
           sim::Table::num(tk.inflation())});
  }
  t.print();

  // Cross-program trampoline merging (§IV-A): linking all seven programs
  // together shares trampolines between them.
  rw::Linker all;
  uint32_t separate = 0;
  for (const auto& name : apps::benchmark_names()) {
    const auto img = apps::build_benchmark(name);
    separate += rewrite_one(img, {}, true).trampoline_bytes;
    all.add(img);
  }
  const auto sys = all.link();
  std::cout << "\nTrampoline merging across programs: " << separate
            << " B if rewritten separately -> " << sys.tramp_words * 2
            << " B linked together (" << sys.service_requests
            << " patch sites -> " << sys.services.size()
            << " merged trampolines, " << sys.tail_shared_words * 2
            << " B shared via tail merging)\n";

  // Merge statistics (§6d): patch-site requests by service kind, i.e.
  // where the trampoline pressure comes from.
  std::cout << "\nPatch-site requests by service kind:\n";
  static const char* kKindNames[] = {
      "mem-indirect", "mem-grouped", "mem-coalesced",  "mem-direct",
      "mem-direct-fast", "reserved-port", "push/pop",  "call-enter",
      "return", "indirect-jump", "backward-branch", "forward-branch",
      "sp-read", "sp-write", "lpm", "sleep"};
  for (int k = 0; k < rw::kNumServiceKinds; ++k)
    if (sys.requests_by_kind[k])
      std::cout << "  " << kKindNames[k] << ": " << sys.requests_by_kind[k]
                << "\n";

  std::cout << "\nPaper's envelope: SenSmart inflation within 200% "
               "(total <= 3x native); worst measured here: "
            << sim::Table::num(worst_sensmart) << "x\n";
  return 0;
}
