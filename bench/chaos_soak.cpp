// Chaos soak driver: sweeps seeded fault-injection runs (or replays one
// with --chaos-seed N) and reports every invariant or data-integrity
// violation. See src/chaos/chaos.hpp for the harness contract.
#include "chaos/chaos.hpp"

int main(int argc, char** argv) { return sensmart::chaos::soak_main(argc, argv); }
