// Fleet-scaling benchmark for the sharded deterministic network engine
// (DESIGN.md §9): for each (nodes, drop%) scenario, disseminate the
// naturalized fig7 image to the whole fleet at several shard counts and
// report wall-clock seconds, emulated cycles, the trace digest, and the
// speedup relative to the serial (shards=1) engine. The digest and cycle
// count are required to be byte-identical at every shard count — the bench
// itself enforces it and exits nonzero on any divergence, so the matrix
// doubles as the serial-vs-sharded conformance check at fleet scale.
//
// A memory section quantifies fleet-wide image dedup: the per-node heap
// bytes spent on flash + decode-cache images with lazy allocation and one
// shared naturalized image adopted fleet-wide, against the historical
// eager per-machine allocation. Peak process RSS (VmHWM) rides along.
//
// Wall seconds and speedup depend on the host (recorded as host_threads);
// cycles and digests do not, so --gate compares only the deterministic
// surface against the committed BENCH_fleet.json (2% cycle tolerance,
// exact digest match) over a reduced matrix that stays CI-cheap.
//
//   fig_fleet [--smoke] [--jobs N] [--json PATH] [--gate BENCH.json]
//             [--diff]
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/treesearch.hpp"
#include "host/parallel.hpp"
#include "net/image_codec.hpp"
#include "net/netsim.hpp"
#include "sim/harness.hpp"

using namespace sensmart;

namespace {

constexpr uint64_t kChaosSeed = 0xF1EE7;
constexpr unsigned kShardCounts[] = {1, 2, 4, 8};

std::vector<uint8_t> fig7_image_blob() {
  std::vector<assembler::Image> images;
  images.push_back(apps::data_feed_program(6, 64));
  for (int i = 0; i < 2; ++i) {
    apps::TreeSearchParams p;
    p.nodes_per_tree = 8;
    p.trees = 1;
    p.searches = 32;
    p.seed = static_cast<uint16_t>(0x3131 + 0x1D0B * i);
    images.push_back(apps::tree_search_program(p));
  }
  rw::Linker linker;
  for (const auto& img : images) linker.add(img);
  return net::serialize_system(linker.link());
}

// Peak resident set (VmHWM) in KiB; 0 when unavailable (non-Linux).
uint64_t peak_rss_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line))
    if (line.rfind("VmHWM:", 0) == 0)
      return std::strtoull(line.c_str() + 6, nullptr, 10);
  return 0;
}

struct FleetCell {
  const char* topo = "star";
  net::TopologyKind kind = net::TopologyKind::Star;
  size_t nodes = 0;
  uint32_t drop_pct = 0;
  unsigned shards = 0;
  double wall_s = 0.0;
  uint64_t cycles = 0;
  uint64_t trace_digest = 0;
  size_t complete = 0;
  double speedup = 1.0;  // serial wall / this wall, same (nodes, drop)
};

const char* topo_name(net::TopologyKind k) {
  switch (k) {
    case net::TopologyKind::Star: return "star";
    case net::TopologyKind::Line: return "line";
    case net::TopologyKind::Grid: return "grid";
    case net::TopologyKind::Random: return "random";
  }
  return "?";
}

// One dissemination run, timed end to end (fleet construction included —
// allocating 257 machines is part of what the lazy-image change pays for).
FleetCell run_cell(const std::vector<uint8_t>& blob, size_t nodes,
                   uint32_t drop_pct, unsigned shards,
                   net::TopologyKind kind = net::TopologyKind::Star) {
  FleetCell c;
  c.kind = kind;
  c.topo = topo_name(kind);
  c.nodes = nodes;
  c.drop_pct = drop_pct;
  c.shards = shards;
  net::NetConfig cfg;
  cfg.nodes = nodes;
  cfg.link.drop_pct = drop_pct;
  cfg.chaos_seed = kChaosSeed;
  cfg.max_cycles = 64'000'000'000ULL;
  cfg.shards = shards;
  cfg.topo.kind = kind;
  // At fleet scale, ack/probe collisions on the shared channel can push a
  // straggler past the default abandon bound even though it verified; the
  // bench requires full convergence, so the base never gives up.
  cfg.proto.node_give_up_probes = 0;
  const auto t0 = std::chrono::steady_clock::now();
  net::NetSim sim(cfg, blob);
  const net::DisseminationResult res = sim.disseminate();
  c.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
  c.cycles = res.cycles;
  c.trace_digest = res.trace_digest;
  c.complete = res.complete_nodes();
  if (!res.all_acked) {
    std::cerr << "fig_fleet: topo=" << c.topo << " nodes=" << nodes
              << " drop=" << drop_pct << "% shards=" << shards
              << " did not converge (" << res.complete_nodes() << "/"
              << nodes << " complete)\n";
    std::exit(1);
  }
  return c;
}

// Run every shard count for one (topology, nodes, drop) scenario and
// require the deterministic surface to be invariant — for mesh scenarios
// this includes the CSMA/collision schedule and all peer-served traffic,
// whose cross-shard effects merge in canonical order at the quantum
// barrier.
std::vector<FleetCell> run_scenario(
    const std::vector<uint8_t>& blob, size_t nodes, uint32_t drop_pct,
    const std::vector<unsigned>& shard_list,
    net::TopologyKind kind = net::TopologyKind::Star) {
  std::vector<FleetCell> cells;
  for (unsigned s : shard_list) {
    cells.push_back(run_cell(blob, nodes, drop_pct, s, kind));
    FleetCell& c = cells.back();
    c.speedup = cells.front().wall_s / (c.wall_s > 0 ? c.wall_s : 1e-9);
    if (c.cycles != cells.front().cycles ||
        c.trace_digest != cells.front().trace_digest) {
      std::cerr << "fig_fleet: DIVERGENCE at topo=" << c.topo
                << " nodes=" << nodes << " drop=" << drop_pct
                << "% shards=" << s << ": digest 0x" << std::hex
                << c.trace_digest << " vs serial 0x"
                << cells.front().trace_digest << std::dec << "\n";
      std::exit(1);
    }
  }
  return cells;
}

// --- Fleet image dedup accounting -------------------------------------------
// After a converged dissemination, install the verified image fleet-wide
// the way sim::run_network does: one shared pre-decoded image adopted by
// every node. Report per-node image heap against the historical eager
// per-machine allocation (a private flash array + full decode cache each).
struct MemoryReport {
  size_t nodes = 0;
  size_t eager_per_node = 0;
  size_t shared_bytes = 0;     // the one fleet image
  size_t private_total = 0;    // residual per-node private image bytes
  double per_node = 0.0;
  double reduction_pct = 0.0;
};

MemoryReport measure_dedup(const std::vector<uint8_t>& blob, size_t nodes,
                           unsigned shards) {
  MemoryReport m;
  m.nodes = nodes;
  m.eager_per_node =
      emu::Machine::kFlashWords * sizeof(uint16_t) +
      emu::Machine::kFlashWords * sizeof(emu::Machine::DecodedInsn);

  net::NetConfig cfg;
  cfg.nodes = nodes;
  cfg.chaos_seed = kChaosSeed;
  cfg.max_cycles = 64'000'000'000ULL;
  cfg.shards = shards;
  cfg.proto.node_give_up_probes = 0;
  net::NetSim sim(cfg, blob);
  const net::DisseminationResult res = sim.disseminate();
  if (!res.all_acked) {
    std::cerr << "fig_fleet: dedup scenario did not converge\n";
    std::exit(1);
  }
  const auto sys = net::deserialize_system(blob);
  if (!sys) {
    std::cerr << "fig_fleet: image blob failed to deserialize\n";
    std::exit(1);
  }
  const auto img = emu::Machine::build_shared_image(sys->flash);
  m.shared_bytes = img->bytes();
  for (size_t id = 1; id <= nodes; ++id) {
    sim.node_machine(id).adopt_image(img);
    m.private_total += sim.node_machine(id).private_image_bytes();
  }
  m.per_node = double(m.private_total + m.shared_bytes) / double(nodes);
  m.reduction_pct = 100.0 * (1.0 - m.per_node / double(m.eager_per_node));
  return m;
}

uint64_t sum_serial_cycles(const std::vector<FleetCell>& cells) {
  uint64_t t = 0;
  for (const auto& c : cells)
    if (c.shards == 1) t += c.cycles;
  return t;
}

// The gate matrix: CI-cheap scenarios only. gate_cycles in the JSON is
// summed over exactly these cells whether the bench ran --smoke or full,
// so --gate (which recomputes only them) always compares like for like.
const std::vector<size_t> kGateNodes = {4, 16};
const std::vector<uint32_t> kGateDrops = {0, 10};

bool is_gate_cell(const FleetCell& c) {
  bool n_ok = false, d_ok = false;
  for (size_t n : kGateNodes) n_ok |= (c.nodes == n);
  for (uint32_t d : kGateDrops) d_ok |= (c.drop_pct == d);
  return n_ok && d_ok;
}

uint64_t gate_cycles(const std::vector<FleetCell>& cells) {
  uint64_t t = 0;
  for (const auto& c : cells)
    if (c.shards == 1 && is_gate_cell(c) &&
        c.kind == net::TopologyKind::Star)
      t += c.cycles;
  return t;
}

// The mesh gate scenario: one mid-size grid, always present so --gate can
// compare like for like against the committed JSON.
constexpr size_t kMeshGateNodes = 16;
constexpr uint32_t kMeshGateDrop = 10;

uint64_t mesh_gate_cycles(const std::vector<FleetCell>& cells) {
  uint64_t t = 0;
  for (const auto& c : cells)
    if (c.shards == 1 && c.kind == net::TopologyKind::Grid &&
        c.nodes == kMeshGateNodes && c.drop_pct == kMeshGateDrop)
      t += c.cycles;
  return t;
}

void emit_json(std::ostream& os, bool smoke, size_t image_bytes,
               const std::vector<FleetCell>& cells, const MemoryReport& mem) {
  os << "{\n";
  os << "  \"schema\": \"sensmart.bench.fleet/1\",\n";
  os << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  os << "  \"chaos_seed\": " << kChaosSeed << ",\n";
  os << "  \"image_bytes\": " << image_bytes << ",\n";
  os << "  \"host_threads\": " << std::thread::hardware_concurrency() << ",\n";
  os << "  \"peak_rss_kb\": " << peak_rss_kb() << ",\n";
  os << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const FleetCell& c = cells[i];
    os << "    {\"topology\": \"" << c.topo << "\", \"nodes\": " << c.nodes
       << ", \"drop_pct\": " << c.drop_pct
       << ", \"shards\": " << c.shards << ", \"wall_s\": "
       << sim::Table::num(c.wall_s, 3) << ", \"speedup\": "
       << sim::Table::num(c.speedup, 2) << ", \"cycles\": " << c.cycles
       << ", \"trace_digest\": " << c.trace_digest << "}"
       << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"memory\": {\n";
  os << "    \"nodes\": " << mem.nodes << ",\n";
  os << "    \"eager_per_node_bytes\": " << mem.eager_per_node << ",\n";
  os << "    \"shared_image_bytes\": " << mem.shared_bytes << ",\n";
  os << "    \"private_image_bytes_total\": " << mem.private_total << ",\n";
  os << "    \"per_node_bytes\": " << sim::Table::num(mem.per_node, 1)
     << ",\n";
  os << "    \"reduction_pct\": " << sim::Table::num(mem.reduction_pct, 2)
     << "\n";
  os << "  },\n";
  // The deterministic regression surface (--gate compares this): summed
  // serial cycles over the gate matrix, which is shard-invariant.
  os << "  \"guest\": {\n";
  os << "    \"gate_cycles\": " << gate_cycles(cells) << ",\n";
  os << "    \"mesh_gate_cycles\": " << mesh_gate_cycles(cells) << ",\n";
  os << "    \"total_serial_cycles\": " << sum_serial_cycles(cells) << "\n";
  os << "  }\n";
  os << "}\n";
}

uint64_t committed_u64(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) return 0;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  size_t at = text.find("\"guest\"");
  if (at == std::string::npos) return 0;
  const std::string key = "\"" + name + "\": ";
  at = text.find(key, at);
  if (at == std::string::npos) return 0;
  return std::strtoull(text.c_str() + at + key.size(), nullptr, 10);
}

bool check_drift(const char* what, uint64_t current, uint64_t committed) {
  constexpr double kTolerance = 0.02;
  const double drift = double(current) / double(committed) - 1.0;
  std::cout << "fleet gate [" << what << "]: current " << current
            << " vs committed " << committed << " ("
            << sim::Table::num(100.0 * drift, 2)
            << "% drift, tolerance ±2%)\n";
  return drift <= kTolerance && drift >= -kTolerance;
}

// CI regression gate: recompute the gate matrix (star and mesh) serial
// and sharded; fail on >2% summed-cycle drift against the committed
// BENCH_fleet.json or on any serial-vs-sharded digest mismatch.
int run_gate(const std::string& path) {
  const uint64_t committed = committed_u64(path, "gate_cycles");
  const uint64_t committed_mesh = committed_u64(path, "mesh_gate_cycles");
  if (committed == 0 || committed_mesh == 0) {
    std::cerr << "fig_fleet: no committed gate_cycles / mesh_gate_cycles in "
              << path << "\n";
    return 2;
  }
  const auto blob = fig7_image_blob();
  uint64_t current = 0;
  for (size_t n : kGateNodes)
    for (uint32_t d : kGateDrops) {
      const auto cells = run_scenario(blob, n, d, {1, 4});  // enforces digest
      current += sum_serial_cycles(cells);
    }
  const auto mesh = run_scenario(blob, kMeshGateNodes, kMeshGateDrop, {1, 4},
                                 net::TopologyKind::Grid);
  bool ok = check_drift("star", current, committed);
  ok &= check_drift("mesh", sum_serial_cycles(mesh), committed_mesh);
  if (!ok) {
    std::cerr << "fig_fleet: FAIL — fleet dissemination cost drifted beyond "
                 "2%; if the engine change is intentional, refresh "
                 "BENCH_fleet.json in the same commit\n";
    return 1;
  }
  std::cout << "fleet gate: OK (digests serial == sharded, star and mesh)\n";
  return 0;
}

// Serial-vs-sharded diff for CI: one mid-size star scenario and one mesh
// grid (multi-hop, collisions, peer serving) at every shard count; exits
// nonzero (inside run_scenario) on any divergence.
int run_diff() {
  const auto blob = fig7_image_blob();
  const std::vector<unsigned> all = {kShardCounts, std::end(kShardCounts)};
  const auto cells = run_scenario(blob, 16, 10, all);
  std::cout << "fleet diff: star nodes=16 drop=10% digest 0x" << std::hex
            << cells.front().trace_digest << std::dec
            << " identical at shards {1, 2, 4, 8}\n";
  const auto mesh =
      run_scenario(blob, 24, 10, all, net::TopologyKind::Grid);
  std::cout << "fleet diff: grid nodes=24 drop=10% digest 0x" << std::hex
            << mesh.front().trace_digest << std::dec
            << " identical at shards {1, 2, 4, 8}\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_fleet.json";
  std::string gate_path;
  bool diff = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      ++i;  // accepted for CLI symmetry; cells time internal parallelism,
            // so the scenario loop itself always runs serially
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--gate") == 0 && i + 1 < argc) {
      gate_path = argv[++i];
    } else if (std::strcmp(argv[i], "--diff") == 0) {
      diff = true;
    } else {
      std::cerr << "usage: fig_fleet [--smoke] [--jobs N] [--json PATH] "
                   "[--gate BENCH.json] [--diff]\n";
      return 2;
    }
  }
  if (!gate_path.empty()) return run_gate(gate_path);
  if (diff) return run_diff();

  const auto blob = fig7_image_blob();
  const std::vector<unsigned> shard_list(kShardCounts,
                                         std::end(kShardCounts));

  // The gate scenarios (star and mesh) are always present — they define
  // gate_cycles / mesh_gate_cycles; the full run adds the fleet-scale
  // scenarios the speedup story is about plus a large mesh grid.
  struct Scenario {
    net::TopologyKind kind;
    size_t nodes;
    uint32_t drop;
  };
  std::vector<Scenario> scenarios;
  for (size_t n : kGateNodes)
    for (uint32_t d : kGateDrops)
      scenarios.push_back({net::TopologyKind::Star, n, d});
  scenarios.push_back(
      {net::TopologyKind::Grid, kMeshGateNodes, kMeshGateDrop});
  if (!smoke) {
    scenarios.push_back({net::TopologyKind::Star, 64, 10});
    scenarios.push_back({net::TopologyKind::Star, 256, 10});
    scenarios.push_back({net::TopologyKind::Grid, 64, 10});
  }

  std::vector<FleetCell> cells;
  for (const auto& sc_spec : scenarios) {
    const auto sc = run_scenario(blob, sc_spec.nodes, sc_spec.drop,
                                 shard_list, sc_spec.kind);
    cells.insert(cells.end(), sc.begin(), sc.end());
  }
  const MemoryReport mem =
      measure_dedup(blob, smoke ? size_t(16) : size_t(256), 8);

  std::cout << "Fleet dissemination across shard counts ("
            << blob.size() << "-byte image, seed 0x" << std::hex << kChaosSeed
            << std::dec << ", host_threads="
            << std::thread::hardware_concurrency() << ")\n\n";
  sim::Table t({"Topo", "Nodes", "Drop%", "Shards", "Wall(s)", "Speedup",
                "Gcycles", "Digest"},
               11);
  for (const FleetCell& c : cells) {
    std::ostringstream dg;
    dg << std::hex << (c.trace_digest >> 48);
    t.row({c.topo, sim::Table::num(uint64_t(c.nodes)),
           sim::Table::num(uint64_t(c.drop_pct)),
           sim::Table::num(uint64_t(c.shards)),
           sim::Table::num(c.wall_s, 2), sim::Table::num(c.speedup, 2),
           sim::Table::num(double(c.cycles) / 1e9, 2), dg.str() + ".."});
  }
  t.print();
  std::cout << "\nImage dedup at " << mem.nodes << " nodes: "
            << mem.eager_per_node / 1024 << " KiB/node eager -> "
            << sim::Table::num(mem.per_node / 1024.0, 1)
            << " KiB/node shared (" << sim::Table::num(mem.reduction_pct, 1)
            << "% reduction; one " << mem.shared_bytes / 1024
            << " KiB image fleet-wide)\n"
            << "Speedup scales with host cores (digests and cycles do not\n"
               "change with shard count — that is the engine's contract).\n";

  std::ofstream js(json_path);
  if (!js) {
    std::cerr << "fig_fleet: cannot write " << json_path << "\n";
    return 1;
  }
  emit_json(js, smoke, blob.size(), cells, mem);
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
