// Figure 5: execution time of the kernel benchmark programs under Native,
// SenSmart with memory protection only, SenSmart with full task
// scheduling, and the t-kernel (steady state, warm-up excluded — start-up
// cost shows up in Figure 6 instead).
#include <iostream>

#include "apps/benchmarks.hpp"
#include "baselines/native_runner.hpp"
#include "rewriter/tkernel.hpp"
#include "sim/harness.hpp"

using namespace sensmart;

int main() {
  std::cout << "Figure 5: EXECUTION TIME OF KERNEL BENCHMARK PROGRAMS "
               "(seconds)\n\n";
  sim::Table t({"Program", "Native", "SenS.MemProt", "SenS.TaskSched",
                "SenS.FastTiers", "t-kernel", "SenS/Nat", "t-k/Nat"});

  for (const auto& name : apps::benchmark_names()) {
    const auto img = apps::build_benchmark(name);

    const auto native = base::run_native(img);

    // The paper columns pin paper_options() so figure 5 keeps reproducing
    // the published configuration; the fast tiers get their own column.
    sim::RunSpec mp;
    mp.rewrite = rw::paper_options();
    mp.rewrite.patch_branches = false;  // memory protection only
    const auto r_mp = sim::run_system({img}, mp);

    sim::RunSpec ts;
    ts.rewrite = rw::paper_options();
    const auto r_ts = sim::run_system({img}, ts);  // + task scheduling

    const auto r_ft = sim::run_system({img});  // + guest fast tiers (§6d)

    sim::RunSpec tk;
    tk.kernel = kern::tkernel_config();
    tk.kernel.warmup_cycles = 0;  // steady state for this figure
    tk.rewrite = rw::tkernel_rewrite_options();
    tk.merge_trampolines = rw::kTKernelMerging;
    const auto r_tk = sim::run_system({img}, tk);

    if (native.stop != emu::StopReason::Halted ||
        r_mp.completed() != 1 || r_ts.completed() != 1 ||
        r_ft.completed() != 1 || r_tk.completed() != 1) {
      std::cerr << name << ": a configuration failed to complete\n";
      return 1;
    }
    // Correctness first: all executions must produce the same bytes.
    if (r_mp.tasks[0].host_out != native.host_out ||
        r_ts.tasks[0].host_out != native.host_out ||
        r_ft.tasks[0].host_out != native.host_out ||
        r_tk.tasks[0].host_out != native.host_out) {
      std::cerr << name << ": output mismatch between configurations\n";
      return 1;
    }

    t.row({name, sim::Table::num(native.seconds()),
           sim::Table::num(r_mp.seconds()), sim::Table::num(r_ts.seconds()),
           sim::Table::num(r_ft.seconds()), sim::Table::num(r_tk.seconds()),
           sim::Table::num(r_ts.seconds() / native.seconds()),
           sim::Table::num(r_tk.seconds() / native.seconds())});
  }
  t.print();
  std::cout << "\nExpected shape (paper): Native < t-kernel < SenSmart, "
               "with SenSmart's extra cost buying concurrent tasks with "
               "independent time slices and memory regions. FastTiers is "
               "this implementation's §6d extension (same outputs, fewer "
               "emulated cycles).\n";
  return 0;
}
