// Host-side performance of the emulation substrate (not a paper figure):
// emulated-instruction throughput ("host MIPS"), emulated-cycle throughput,
// the kernel service-trap rate, and chaos-soak wall time. Emits
// BENCH_emulator.json so the host-performance trajectory is tracked
// in-repo; see EXPERIMENTS.md §"Host performance" for the methodology and
// the JSON schema.
//
//   perf_emulator [--smoke] [--reps N] [--json PATH]
//
// Timing covers only the emulation run itself (rewrite/link/admission are
// done once, outside the timed section), and each workload reports the best
// of N repetitions to suppress scheduler noise.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/treesearch.hpp"
#include "chaos/chaos.hpp"
#include "kernel/kernel.hpp"
#include "rewriter/linker.hpp"
#include "sim/harness.hpp"

using namespace sensmart;
using Clock = std::chrono::steady_clock;

namespace {

// Pre-PR reference numbers, measured on the unoptimized seed build
// (commit 318cfe9, Release, -O3 default of this toolchain, same workloads
// and repetition policy, single-core container). The acceptance bar for the
// emulation fast path is >= 2x fig7 host MIPS against these.
struct Baseline {
  const char* commit = "318cfe9";
  double fig7_host_mips = 0.0;
  double native_host_mips = 0.0;
  double soak_wall_seconds = 0.0;
};
constexpr double kBaselineFig7HostMips = 72.67;
constexpr double kBaselineNativeHostMips = 100.19;
constexpr double kBaselineSoakWallSeconds = 0.0235;

// Guest-side reference, recorded before the fast-tier rewriter passes
// (commit b6c5f7b, default RewriteOptions of that build): what the fig7
// mix *cost in emulated cycles* when every stack op and every indirect
// access took a full-price trap. Deterministic — independent of host
// speed and reps.
constexpr uint64_t kBaselineFig7EmulatedCycles = 484'558'776ULL;
constexpr uint64_t kBaselineFig7ServiceCalls = 8'539'192ULL;

struct Measurement {
  double wall_s = 0.0;  // best-of-reps
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  uint64_t service_calls = 0;
  uint64_t service_cycles = 0;  // emulated cycles charged by service handlers
  uint64_t serviced_ops = 0;    // service_calls + collapsed stack-run members

  double host_mips() const {
    return wall_s > 0 ? double(instructions) / wall_s / 1e6 : 0.0;
  }
  double cycles_per_sec() const {
    return wall_s > 0 ? double(cycles) / wall_s : 0.0;
  }
  double traps_per_sec() const {
    return wall_s > 0 ? double(service_calls) / wall_s : 0.0;
  }
  // Guest metrics (deterministic):
  double cycles_per_trap() const {
    return service_calls ? double(service_cycles) / double(service_calls)
                         : 0.0;
  }
  // Per *serviced operation*: collapsed stack runs amortize several ops
  // into one trap, so this is the cost that actually fell.
  double cycles_per_serviced_op() const {
    return serviced_ops ? double(service_cycles) / double(serviced_ops) : 0.0;
  }
  double traps_per_1k_instructions() const {
    return instructions ? 1e3 * double(service_calls) / double(instructions)
                        : 0.0;
  }
  double cpi() const {
    return instructions ? double(cycles) / double(instructions) : 0.0;
  }
};

std::vector<assembler::Image> fig7_workload(uint16_t nodes, int n_search,
                                            uint16_t searches) {
  // Mirrors bench/fig7_treesearch.cpp: one data-feeding task plus N
  // recursive binary-tree search tasks. `searches` is scaled far above the
  // figure's 32 so the timed section is long enough for stable wall-clock
  // measurement; the per-instruction mix is identical.
  std::vector<assembler::Image> images;
  images.push_back(apps::data_feed_program(6, 64));
  for (int i = 0; i < n_search; ++i) {
    apps::TreeSearchParams p;
    p.nodes_per_tree = nodes;
    p.trees = 1;
    p.searches = searches;
    p.seed = static_cast<uint16_t>(0x3131 + 0x1D0B * i);
    images.push_back(apps::tree_search_program(p));
  }
  return images;
}

// SenSmart system run, timed around Kernel::run() only.
Measurement measure_fig7(uint16_t nodes, int n_search, uint16_t searches,
                         int reps) {
  rw::Linker linker;
  for (const auto& img : fig7_workload(nodes, n_search, searches))
    linker.add(img);
  const rw::LinkedSystem sys = linker.link();

  Measurement best;
  for (int rep = 0; rep < reps; ++rep) {
    emu::Machine m;
    kern::KernelConfig cfg;
    cfg.initial_stack = 96;
    kern::Kernel k(m, sys, cfg);
    k.admit_all();
    if (!k.start()) {
      std::cerr << "perf_emulator: fig7 workload failed to start\n";
      std::exit(1);
    }
    const auto t0 = Clock::now();
    const emu::StopReason stop = k.run(2'000'000'000ULL);
    const auto t1 = Clock::now();
    if (stop != emu::StopReason::Halted) {
      std::cerr << "perf_emulator: fig7 workload did not halt ("
                << emu::to_string(stop) << ")\n";
      std::exit(1);
    }
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0 || s < best.wall_s) best.wall_s = s;
    best.instructions = m.stats().instructions;
    best.cycles = m.cycles();
    best.service_calls = k.stats().service_calls;
    best.service_cycles = k.stats().service_cycles;
    best.serviced_ops = k.stats().service_calls + k.stats().stack_run_members;
  }
  return best;
}

// Bare-machine run (no kernel, no rewriting): the raw CPU-loop ceiling.
Measurement measure_native(uint16_t nodes, uint16_t searches, int reps) {
  apps::TreeSearchParams p;
  p.nodes_per_tree = nodes;
  p.trees = 2;
  p.searches = searches;
  p.seed = 0x3131;
  const assembler::Image img = apps::tree_search_program(p);

  Measurement best;
  for (int rep = 0; rep < reps; ++rep) {
    emu::Machine m;
    m.load_flash(img.code);
    m.reset(img.entry);
    const auto t0 = Clock::now();
    const emu::StopReason stop = m.run(2'000'000'000ULL);
    const auto t1 = Clock::now();
    if (stop != emu::StopReason::Halted) {
      std::cerr << "perf_emulator: native workload did not halt ("
                << emu::to_string(stop) << ")\n";
      std::exit(1);
    }
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0 || s < best.wall_s) best.wall_s = s;
    best.instructions = m.stats().instructions;
    best.cycles = m.cycles();
  }
  return best;
}

// Serial chaos-soak wall time (the figure the 200-seed sweep extrapolates
// from); kept serial here so the number is comparable across machines.
double measure_soak(uint64_t seeds, int reps) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    chaos::ChaosOptions opts;
    const auto t0 = Clock::now();
    for (uint64_t s = 1; s <= seeds; ++s) {
      opts.seed = s;
      const chaos::ChaosResult res = chaos::run_chaos(opts);
      if (!res.ok()) {
        std::cerr << "perf_emulator: chaos seed " << s << " violated\n";
        std::exit(1);
      }
    }
    const auto t1 = Clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

void emit_json(std::ostream& os, bool smoke, int reps, uint16_t fig7_nodes,
               int fig7_tasks, const Measurement& fig7,
               const Measurement& native, uint64_t soak_seeds,
               double soak_wall) {
  const Baseline base{"318cfe9", kBaselineFig7HostMips,
                      kBaselineNativeHostMips, kBaselineSoakWallSeconds};
  auto f = [&os](double v) { os << v; };
  os.precision(6);
  os << "{\n";
  os << "  \"schema\": \"sensmart.bench.emulator/1\",\n";
  os << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  os << "  \"reps\": " << reps << ",\n";
  os << "  \"workloads\": {\n";
  os << "    \"fig7_treesearch\": {\n";
  os << "      \"description\": \"SenSmart kernel run: 1 data-feed + "
     << fig7_tasks << " tree-search tasks, " << fig7_nodes
     << " nodes/tree\",\n";
  os << "      \"emulated_instructions\": " << fig7.instructions << ",\n";
  os << "      \"emulated_cycles\": " << fig7.cycles << ",\n";
  os << "      \"service_calls\": " << fig7.service_calls << ",\n";
  os << "      \"wall_seconds\": ";
  f(fig7.wall_s);
  os << ",\n      \"host_mips\": ";
  f(fig7.host_mips());
  os << ",\n      \"emulated_cycles_per_sec\": ";
  f(fig7.cycles_per_sec());
  os << ",\n      \"service_traps_per_sec\": ";
  f(fig7.traps_per_sec());
  os << ",\n      \"guest_cycles_per_instruction\": ";
  f(fig7.cpi());
  os << ",\n      \"guest_cycles_per_trap\": ";
  f(fig7.cycles_per_trap());
  os << ",\n      \"guest_cycles_per_serviced_op\": ";
  f(fig7.cycles_per_serviced_op());
  os << ",\n      \"guest_traps_per_1k_instructions\": ";
  f(fig7.traps_per_1k_instructions());
  os << ",\n      \"guest_overhead_vs_native\": ";
  f(native.cpi() > 0 ? fig7.cpi() / native.cpi() : 0.0);
  os << "\n    },\n";
  os << "    \"native_treesearch\": {\n";
  os << "      \"description\": \"bare-machine tree search, no kernel\",\n";
  os << "      \"emulated_instructions\": " << native.instructions << ",\n";
  os << "      \"emulated_cycles\": " << native.cycles << ",\n";
  os << "      \"wall_seconds\": ";
  f(native.wall_s);
  os << ",\n      \"host_mips\": ";
  f(native.host_mips());
  os << ",\n      \"emulated_cycles_per_sec\": ";
  f(native.cycles_per_sec());
  os << "\n    },\n";
  os << "    \"chaos_soak\": {\n";
  os << "      \"seeds\": " << soak_seeds << ",\n";
  os << "      \"wall_seconds\": ";
  f(soak_wall);
  os << ",\n      \"seeds_per_sec\": ";
  f(soak_wall > 0 ? double(soak_seeds) / soak_wall : 0.0);
  os << "\n    }\n";
  os << "  },\n";
  os << "  \"baseline\": {\n";
  os << "    \"commit\": \"" << base.commit << "\",\n";
  os << "    \"fig7_host_mips\": ";
  f(base.fig7_host_mips);
  os << ",\n    \"native_host_mips\": ";
  f(base.native_host_mips);
  os << ",\n    \"soak_wall_seconds\": ";
  f(base.soak_wall_seconds);
  os << "\n  },\n";
  os << "  \"speedup\": {\n";
  os << "    \"fig7_host_mips\": ";
  f(base.fig7_host_mips > 0 ? fig7.host_mips() / base.fig7_host_mips : 0.0);
  os << ",\n    \"native_host_mips\": ";
  f(base.native_host_mips > 0 ? native.host_mips() / base.native_host_mips
                              : 0.0);
  os << "\n  },\n";
  // Guest-side (emulated-cycle) trajectory: deterministic, so this block
  // is also what the CI regression gate (--gate) compares against.
  os << "  \"guest\": {\n";
  os << "    \"baseline_commit\": \"b6c5f7b\",\n";
  os << "    \"baseline_emulated_cycles\": " << kBaselineFig7EmulatedCycles
     << ",\n";
  os << "    \"baseline_service_calls\": " << kBaselineFig7ServiceCalls
     << ",\n";
  os << "    \"emulated_cycles\": " << fig7.cycles << ",\n";
  os << "    \"service_calls\": " << fig7.service_calls << ",\n";
  os << "    \"cycle_reduction_pct\": ";
  f(smoke || kBaselineFig7EmulatedCycles == 0
        ? 0.0
        : 100.0 * (1.0 - double(fig7.cycles) /
                             double(kBaselineFig7EmulatedCycles)));
  os << "\n  }\n";
  os << "}\n";
}

// Pull the committed guest emulated-cycle count out of a BENCH JSON.
// Prefers the "guest" block; falls back to the fig7 workload entry so the
// gate also works against pre-guest-schema files.
uint64_t committed_guest_cycles(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  size_t at = text.find("\"guest\"");
  if (at == std::string::npos) at = text.find("\"fig7_treesearch\"");
  if (at == std::string::npos) return 0;
  const std::string key = "\"emulated_cycles\": ";
  at = text.find(key, at);
  if (at == std::string::npos) return 0;
  return std::strtoull(text.c_str() + at + key.size(), nullptr, 10);
}

// CI regression gate: re-measure the full-scale fig7 mix (guest cycles are
// deterministic, so reps=1 and no warm-up) and fail if it costs more than
// `tolerance` over the committed BENCH_emulator.json.
int run_gate(const std::string& path) {
  constexpr double kTolerance = 1.02;  // 2%
  const uint64_t committed = committed_guest_cycles(path);
  if (committed == 0) {
    std::cerr << "perf_emulator: no committed emulated_cycles in " << path
              << "\n";
    return 2;
  }
  const Measurement fig7 = measure_fig7(24, 6, 8000, 1);
  const double ratio = double(fig7.cycles) / double(committed);
  std::cout << "guest-cycle gate: current " << fig7.cycles << " vs committed "
            << committed << " (" << sim::Table::num(100.0 * (ratio - 1.0), 2)
            << "% drift, tolerance +2%)\n";
  if (double(fig7.cycles) > double(committed) * kTolerance) {
    std::cerr << "perf_emulator: FAIL — fig7 guest cycles regressed beyond "
                 "2%; if the increase is intentional (new default pass, cost "
                 "recalibration), refresh BENCH_emulator.json and the golden "
                 "traces in the same commit\n";
    return 1;
  }
  std::cout << "guest-cycle gate: OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int reps = 5;
  std::string json_path = "BENCH_emulator.json";
  std::string gate_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--gate") == 0 && i + 1 < argc) {
      gate_path = argv[++i];
    } else {
      std::cerr << "usage: perf_emulator [--smoke] [--reps N] [--json PATH] "
                   "[--gate BENCH.json]\n";
      return 2;
    }
  }
  if (!gate_path.empty()) return run_gate(gate_path);
  if (smoke) reps = std::min(reps, 2);
  const uint16_t fig7_nodes = 24;
  const int fig7_tasks = smoke ? 2 : 6;
  const uint16_t fig7_searches = smoke ? 64 : 8000;
  const uint16_t native_searches = smoke ? 256 : 50000;
  const uint64_t soak_seeds = smoke ? 5 : 25;

  const Measurement fig7 =
      measure_fig7(fig7_nodes, fig7_tasks, fig7_searches, reps);
  const Measurement native = measure_native(fig7_nodes, native_searches, reps);
  const double soak_wall = measure_soak(soak_seeds, reps);

  sim::Table t({"Workload", "HostMIPS", "EmulCy/s", "Traps/s", "Wall(s)"}, 14);
  t.row({"fig7 treesearch", sim::Table::num(fig7.host_mips(), 2),
         sim::Table::num(fig7.cycles_per_sec(), 0),
         sim::Table::num(fig7.traps_per_sec(), 0),
         sim::Table::num(fig7.wall_s, 4)});
  t.row({"native treesearch", sim::Table::num(native.host_mips(), 2),
         sim::Table::num(native.cycles_per_sec(), 0), "-",
         sim::Table::num(native.wall_s, 4)});
  t.row({"chaos soak (" + std::to_string(soak_seeds) + " seeds)", "-", "-",
         "-", sim::Table::num(soak_wall, 4)});
  t.print();
  if (kBaselineFig7HostMips > 0) {
    std::cout << "\nspeedup vs pre-PR baseline: fig7 "
              << sim::Table::num(fig7.host_mips() / kBaselineFig7HostMips, 2)
              << "x, native "
              << sim::Table::num(native.host_mips() / kBaselineNativeHostMips,
                                 2)
              << "x\n";
  }
  std::cout << "guest: " << fig7.cycles << " emulated cycles, "
            << sim::Table::num(fig7.cycles_per_trap(), 1) << " cy/trap, "
            << sim::Table::num(fig7.cycles_per_serviced_op(), 1)
            << " cy/serviced-op, "
            << sim::Table::num(fig7.traps_per_1k_instructions(), 1)
            << " traps/1k-insn, overhead "
            << sim::Table::num(native.cpi() > 0 ? fig7.cpi() / native.cpi()
                                                : 0.0,
                               3)
            << "x vs native";
  if (!smoke)
    std::cout << " ("
              << sim::Table::num(
                     100.0 * (1.0 - double(fig7.cycles) /
                                        double(kBaselineFig7EmulatedCycles)),
                     1)
              << "% cycle reduction vs pre-tier baseline)";
  std::cout << "\n";

  std::ofstream js(json_path);
  if (!js) {
    std::cerr << "perf_emulator: cannot write " << json_path << "\n";
    return 1;
  }
  emit_json(js, smoke, reps, fig7_nodes, fig7_tasks, fig7, native, soak_seeds,
            soak_wall);
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
