// Figure 6: the PeriodicTask program — execution time of 300 task
// activations and CPU utilization versus computation size, for Native,
// t-kernel (including its ~1 s on-node rewriting warm-up), SenSmart, and
// the Maté-style VM (Fig. 6c, interpretation-based execution).
#include <iostream>

#include "apps/periodic_task.hpp"
#include "baselines/native_runner.hpp"
#include "rewriter/tkernel.hpp"
#include "sim/harness.hpp"
#include "vm/vm.hpp"

using namespace sensmart;

int main(int argc, char** argv) {
  apps::PeriodicTaskParams base;
  base.period_ticks = 1172;  // ~40.7 ms
  base.activations = 300;
  if (argc > 1) base.activations = static_cast<uint16_t>(std::atoi(argv[1]));

  std::cout << "Figure 6: PeriodicTask, " << base.activations
            << " activations, period " << base.period_ticks
            << " ticks (~40.7 ms)\n\n";
  sim::Table t({"Size(instr)", "Nat(s)", "t-k(s)", "SenS(s)", "Nat util",
                "SenS util", "Mate(s)"},
               11);

  for (uint32_t size = 10'000; size <= 100'000; size += 10'000) {
    apps::PeriodicTaskParams p = base;
    p.instructions = size;
    const auto img = apps::periodic_task_program(p);

    const auto native = base::run_native(img, 3'000'000'000ULL);

    sim::RunSpec ss;
    ss.max_cycles = 3'000'000'000ULL;
    const auto sens = sim::run_system({img}, ss);

    sim::RunSpec tk;
    tk.kernel = kern::tkernel_config();  // includes the 1 s warm-up
    tk.rewrite = rw::tkernel_rewrite_options();
    tk.merge_trampolines = rw::kTKernelMerging;
    tk.max_cycles = 3'000'000'000ULL;
    const auto tker = sim::run_system({img}, tk);

    vm::MateVm mate(vm::periodic_task_bytecode(
        p.period_ticks, p.activations, p.instructions));
    const auto mr = mate.run(60'000'000'000ULL);

    if (native.stop != emu::StopReason::Halted || sens.completed() != 1 ||
        tker.completed() != 1 || !mr.halted) {
      std::cerr << "size " << size << ": a configuration did not finish\n";
      return 1;
    }
    t.row({sim::Table::num(uint64_t(size)), sim::Table::num(native.seconds()),
           sim::Table::num(tker.seconds()), sim::Table::num(sens.seconds()),
           sim::Table::num(native.utilization()),
           sim::Table::num(sens.utilization()),
           sim::Table::num(double(mr.cycles) / emu::kClockHz)});
  }
  t.print();
  std::cout
      << "\nExpected shape (paper Fig. 6): below the saturation knee the\n"
         "execution time is period-bound and SenSmart tracks Native while\n"
         "t-kernel pays its ~1 s warm-up; past the knee SenSmart's time\n"
         "rises sharply as its CPU utilization saturates first. Mate's\n"
         "interpretation is an order of magnitude slower throughout "
         "(Fig. 6c is log-scale).\n";
  return 0;
}
