// Figure 8: SenSmart vs LiteOS — number of schedulable search tasks under
// the same memory budget. LiteOS's advanced services keep >2000 B of
// static data and its manual memory management must reserve each thread's
// worst-case stack; SenSmart is limited to the same overall space (two
// binary trees per task, as in the paper) and adapts stack allocations at
// run time instead.
#include <iostream>

#include "apps/treesearch.hpp"
#include "baselines/liteos_model.hpp"
#include "baselines/native_runner.hpp"
#include "sim/harness.hpp"

using namespace sensmart;

namespace {

apps::TreeSearchParams params(uint16_t nodes, int i) {
  apps::TreeSearchParams p;
  p.nodes_per_tree = nodes;
  p.trees = 2;
  p.searches = 32;
  p.seed = static_cast<uint16_t>(0x5A17 + 0x0C31 * i);
  return p;
}

sim::SystemRun run_sensmart(uint16_t nodes, int n) {
  std::vector<assembler::Image> images;
  for (int i = 0; i < n; ++i)
    images.push_back(apps::tree_search_program(params(nodes, i)));
  sim::RunSpec spec;
  // Same overall space as LiteOS: its >2000 B of static kernel data come
  // out of the 4 KB SRAM, so SenSmart's kernel reservation is set equal.
  spec.kernel.kernel_ram = 2000;
  spec.kernel.initial_stack = 80;
  spec.max_cycles = 2'000'000'000ULL;
  return sim::run_system(images, spec);
}

}  // namespace

int main() {
  std::cout << "Figure 8: COMPARISON OF SENSMART AND LITEOS\n"
               "(search tasks with two binary trees each, equal memory "
               "budget)\n\n";
  sim::Table t({"Nodes/tree", "SenSmart tasks", "LiteOS tasks",
                "Relocations", "AvgStack(B)", "LiteOS decl(B)"},
               16);

  base::LiteOsModel liteos;
  for (uint16_t nodes = 8; nodes <= 32; nodes += 4) {
    // LiteOS: the programmer must declare the worst-case stack, known from
    // profiling the deepest recursion.
    const auto nat =
        base::run_native(apps::tree_search_program(params(nodes, 0)));
    const int max_depth = nat.host_out.size() == 2 ? nat.host_out[1] : 0;
    const uint16_t declared = static_cast<uint16_t>(max_depth * 15 + 48);
    const uint16_t heap =
        static_cast<uint16_t>(2 * nodes * 6 + 2 * 2 + 2);
    const int liteos_tasks = liteos.max_schedulable_tasks(heap, declared);

    int sens_tasks = 0;
    sim::SystemRun best;
    for (int n = 1; n <= 40; ++n) {
      auto r = run_sensmart(nodes, n);
      if (r.admitted != size_t(n) || r.stop != emu::StopReason::Halted ||
          r.completed() != size_t(n) || r.killed() != 0)
        break;
      sens_tasks = n;
      best = std::move(r);
    }

    t.row({sim::Table::num(uint64_t(nodes)),
           sim::Table::num(uint64_t(sens_tasks)),
           sim::Table::num(uint64_t(liteos_tasks)),
           sim::Table::num(uint64_t(best.kernel_stats.relocations)),
           sens_tasks ? sim::Table::num(best.avg_stack_alloc, 1) : "-",
           sim::Table::num(uint64_t(declared))});
  }
  t.print();
  std::cout << "\nExpected shape (paper Fig. 8): versatile stack management\n"
               "lets SenSmart schedule more concurrent tasks than LiteOS's\n"
               "static worst-case allocation at every tree size.\n";
  return 0;
}
