// Ablation benches for the design choices DESIGN.md calls out:
//   A. trampoline merging (incl. cross-program merging) -> flash footprint
//   B. grouped-access optimization -> execution time of memory-heavy code
//   C. software-trap interval (1/N backward branches) -> preemption delay
//      vs run-time overhead trade-off
//   D. initial stack size -> relocation activity and admission capacity
#include <iostream>

#include "apps/benchmarks.hpp"
#include "apps/treesearch.hpp"
#include "baselines/native_runner.hpp"
#include "sim/harness.hpp"

using namespace sensmart;

namespace {

void ablation_merging() {
  std::cout << "A. Trampoline merging (flash words of the trampoline "
               "region, all 7 kernel benchmarks linked together)\n\n";
  sim::Table t({"Config", "Tramp words", "Services", "Sites", "Tail-shared"});
  struct Cfg {
    const char* name;
    rw::RewriteOptions opts;
    bool merge;
  };
  rw::RewriteOptions tail_off = rw::paper_options();
  const Cfg cfgs[] = {{"unmerged", tail_off, false},
                      {"merged", tail_off, true},
                      {"merged+tail", {}, true}};
  for (const Cfg& c : cfgs) {
    rw::Linker linker(c.opts, c.merge);
    for (const auto& n : apps::benchmark_names())
      linker.add(apps::build_benchmark(n));
    const auto sys = linker.link();
    t.row({c.name, sim::Table::num(uint64_t(sys.tramp_words)),
           sim::Table::num(uint64_t(sys.services.size())),
           sim::Table::num(uint64_t(sys.service_requests)),
           sim::Table::num(uint64_t(sys.tail_shared_words))});
  }
  t.print();
}

void ablation_grouping() {
  std::cout << "\nB. Grouped-access optimization (execution time, s)\n\n";
  sim::Table t({"Program", "Grouping off", "Grouping on", "Saved"});
  apps::TreeSearchParams tp;
  tp.nodes_per_tree = 32;
  tp.trees = 2;
  tp.searches = 256;
  const std::vector<std::pair<std::string, assembler::Image>> programs = {
      {"amplitude", apps::build_benchmark("amplitude")},
      {"treesearch", apps::tree_search_program(tp)},
  };
  for (const auto& [name, img] : programs) {
    // Both rows pin paper_options() so the newer fast tiers (section E)
    // don't contaminate the grouping delta.
    sim::RunSpec off;
    off.rewrite = rw::paper_options();
    off.rewrite.grouped_access = false;
    sim::RunSpec on;
    on.rewrite = rw::paper_options();
    const auto r_off = sim::run_system({img}, off);
    const auto r_on = sim::run_system({img}, on);
    t.row({name, sim::Table::num(r_off.seconds()),
           sim::Table::num(r_on.seconds()),
           sim::Table::num(100.0 * (1 - r_on.seconds() / r_off.seconds()),
                           1) +
               "%"});
  }
  t.print();
}

void ablation_trap_interval() {
  std::cout << "\nC. Software-trap interval: preemption delay vs overhead\n"
               "(two concurrent CPU-bound tasks, 1 ms slice)\n\n";
  sim::Table t({"1/N", "Exec time(s)", "Max delay(us)", "Avg delay(us)",
                "Trap checks"});
  const auto img = apps::lfsr_program(30000);
  for (const uint16_t n : {32, 64, 128, 256, 512, 1024}) {
    sim::RunSpec spec;
    spec.kernel.trap_interval = n;
    const auto r = sim::run_system({img, img}, spec);
    const auto& ks = r.kernel_stats;
    const double us = 1e6 / emu::kClockHz;
    t.row({sim::Table::num(uint64_t(n)), sim::Table::num(r.seconds()),
           sim::Table::num(double(ks.preempt_delay_max) * us, 1),
           ks.preemptions
               ? sim::Table::num(
                     double(ks.preempt_delay_sum) / ks.preemptions * us, 1)
               : "-",
           sim::Table::num(ks.trap_checks)});
  }
  t.print();
  std::cout << "(the paper: preemption delay 'usually no more than a couple "
               "of microseconds'; smaller N checks more often but costs "
               "more kernel entries)\n";
}

void ablation_initial_stack() {
  std::cout << "\nD. Initial stack size: relocation activity\n"
               "(4 recursive search tasks, ~200 B peak need each)\n\n";
  // Note: the *average* allocation over live tasks is conserved (the total
  // stack space is fixed), so the interesting signals are the relocation
  // counts and the relocation cycles paid.
  sim::Table t({"Initial stack", "Completed", "Relocations", "Bytes moved",
                "Reloc cycles"});
  for (const uint16_t init : {32, 48, 64, 96, 128, 192, 256}) {
    std::vector<assembler::Image> images;
    for (int i = 0; i < 4; ++i) {
      apps::TreeSearchParams p;
      p.nodes_per_tree = 24;
      p.trees = 2;
      p.searches = 48;
      p.seed = uint16_t(0x4242 + i * 0x777);
      images.push_back(apps::tree_search_program(p));
    }
    sim::RunSpec spec;
    spec.kernel.initial_stack = init;
    const auto r = sim::run_system(images, spec);
    t.row({sim::Table::num(uint64_t(init)),
           sim::Table::num(uint64_t(r.completed())) + "/4",
           sim::Table::num(uint64_t(r.kernel_stats.relocations)),
           sim::Table::num(r.kernel_stats.reloc_bytes_moved),
           sim::Table::num(r.kernel_stats.reloc_cycles)});
  }
  t.print();
  std::cout << "(larger initial allocations reduce relocations until the "
               "point where they simply pre-reserve the worst case)\n";
}

void ablation_fast_tiers() {
  std::cout << "\nE. Guest fast tiers (§6d): translation coalescing, "
               "collapsed stack runs,\nfast direct-heap services — emulated "
               "cycles on a fig. 7-style mix\n(1 data feed + 2 searchers)\n\n";
  apps::TreeSearchParams tp;
  tp.nodes_per_tree = 24;
  tp.searches = 400;
  std::vector<assembler::Image> fig7mini;
  fig7mini.push_back(apps::data_feed_program(4, 64));
  fig7mini.push_back(apps::tree_search_program(tp));
  fig7mini.push_back(apps::tree_search_program(tp));
  const std::vector<assembler::Image> amplitude = {
      apps::build_benchmark("amplitude")};

  struct Cfg {
    const char* name;
    bool coalesce, runs, fast_direct;
  };
  const Cfg cfgs[] = {{"all off (paper)", false, false, false},
                      {"+coalescing", true, false, false},
                      {"+stack runs", false, true, false},
                      {"+fast direct", false, false, true},
                      {"all on", true, true, true}};
  struct Set {
    const char* title;
    const std::vector<assembler::Image>* images;
  };
  const Set sets[] = {{"fig. 7-style mix (stack-heavy)", &fig7mini},
                      {"amplitude (memory-heavy)", &amplitude}};
  for (const Set& set : sets) {
    std::cout << set.title << ":\n";
    sim::Table t(
        {"Config", "Emul cycles", "Traps", "Cy/serviced-op", "Saved"});
    uint64_t base_cycles = 0;
    for (const Cfg& c : cfgs) {
      sim::RunSpec spec;
      spec.rewrite = rw::paper_options();
      spec.rewrite.coalesce_translations = c.coalesce;
      spec.rewrite.collapse_stack_checks = c.runs;
      spec.rewrite.fast_direct_heap = c.fast_direct;
      const auto r = sim::run_system(*set.images, spec);
      const auto& ks = r.kernel_stats;
      if (!base_cycles) base_cycles = r.cycles;
      const uint64_t ops = ks.service_calls + ks.stack_run_members;
      t.row({c.name, sim::Table::num(r.cycles),
             sim::Table::num(ks.service_calls),
             ops ? sim::Table::num(double(ks.service_cycles) / double(ops), 1)
                 : "-",
             sim::Table::num(
                 100.0 * (1.0 - double(r.cycles) / double(base_cycles)), 1) +
                 "%"});
    }
    t.print();
    std::cout << "\n";
  }
  std::cout << "(outputs are byte-identical across every row — "
               "tests/coalescing_equivalence_test.cpp proves it; only the "
               "cycle accounting moves. Coalescing is structurally rare in "
               "these loop-heavy AVR workloads: grouping already harvests "
               "adjacent accesses and loop bodies begin at block leaders, "
               "so the pass pays off mainly in straight-line memory code)\n";
}

}  // namespace

int main() {
  std::cout << "ABLATIONS OF SENSMART DESIGN CHOICES\n\n";
  ablation_merging();
  ablation_grouping();
  ablation_trap_interval();
  ablation_initial_stack();
  ablation_fast_tiers();
  return 0;
}
