// Table I: comparison of typical systems — feature matrix.
#include <iostream>

#include "baselines/features.hpp"

int main() {
  std::cout << "Table I: COMPARISON OF TYPICAL SYSTEMS\n"
            << "(entries for other systems from their publications; the\n"
            << " SenSmart column is what this reproduction implements)\n\n";
  sensmart::base::print_table1(std::cout);
  return 0;
}
