// Over-the-air dissemination cost across network size, topology and loss
// rate: for each (topology, nodes, drop%) cell, disseminate the
// naturalized fig7 treesearch image to every node and report completion
// time (emulated cycles, cycles per node and radio-seconds), the energy
// proxy (bytes on air / received per node), and the repair traffic
// (Nacks, retransmissions). Star cells use the legacy single-hop medium;
// mesh cells (line/grid/random placements, DESIGN.md §10) add spatial
// link quality, CSMA contention with deterministic collisions and
// peer-to-peer chunk serving — the per-node cost column is the headline:
// with peers answering repair Nacks it stays near-flat as the network
// grows. Every cell is a deterministic function of the chaos seed, so the
// matrix doubles as a regression surface: --gate compares the summed star
// completion cycles and the summed mesh gate-cell cycles against the
// committed BENCH_dissemination.json with a 2% tolerance, and fails if
// the mesh cost flatness ratio cpn(64 nodes) / cpn(8 nodes) at 10% loss
// exceeds 2x.
//
// --recovery swaps the matrix for a reboot-rate x loss-rate grid: every
// receiver suffers k seeded mid-transfer crash/reboot cycles (k = 0..2)
// under each loss rate, exercising the persistent-store resume path
// (DESIGN.md §8). The default matrix and --gate math are untouched.
//
// --adversarial swaps the matrix for the authentication overhead surface
// (DESIGN.md §11): {star 8, grid 16} at 10% loss, crossed with MAC on/off
// and a seeded hostile node on/off. Two gates ride on it: MAC-on honest
// runs must stay within ±2% of the MAC-off completion cycles (the tag
// bytes are the only added cost), and no MAC-on cell may ever count a
// forged install. The default matrix, JSON and --gate math are untouched.
//
// --rollout swaps the matrix for the staged-upgrade surface (DESIGN.md
// §12): a fleet already running an old image is upgraded wave-by-wave to
// the fig7 image behind the health gate, crossed with wave size, loss and
// 0-2 seeded lemon trials against a failure budget of 1. Its gates are
// intrinsic (no committed JSON): lemon-free cells must promote every node
// to the byte-exact new image, one lemon must roll back exactly that node
// while the rest confirm, and two lemons must trip the budget, halt the
// rollout and leave every node byte-exact on the old image — no cell may
// ever leave an unconfirmed trial active.
//
//   fig_dissemination [--smoke] [--recovery] [--adversarial] [--rollout]
//                     [--jobs N] [--json PATH] [--gate [BENCH.json]]
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/treesearch.hpp"
#include "chaos/hostile.hpp"
#include "host/parallel.hpp"
#include "net/image_codec.hpp"
#include "net/netsim.hpp"
#include "sim/harness.hpp"

using namespace sensmart;

namespace {

constexpr uint64_t kChaosSeed = 0x5EED;

struct Cell {
  const char* topo = "star";
  net::TopologyKind kind = net::TopologyKind::Star;
  size_t nodes = 0;
  uint32_t drop_pct = 0;
  net::DisseminationResult res;

  uint64_t cycles_per_node() const {
    return res.cycles / (nodes ? nodes : 1);
  }
  uint64_t chunks_served() const {
    uint64_t v = 0;
    for (const auto& n : res.nodes) v += n.chunks_served;
    return v;
  }
  double radio_seconds() const {
    return double(res.cycles) / double(emu::kClockHz);
  }
  uint64_t rx_bytes_total() const {
    uint64_t b = 0;
    for (const auto& n : res.nodes) b += n.bytes_rx;
    return b;
  }
  uint64_t nacks_total() const {
    uint64_t n = 0;
    for (const auto& s : res.nodes) n += s.nacks_sent;
    return n;
  }
};

std::vector<uint8_t> fig7_image_blob() {
  std::vector<assembler::Image> images;
  images.push_back(apps::data_feed_program(6, 64));
  for (int i = 0; i < 2; ++i) {
    apps::TreeSearchParams p;
    p.nodes_per_tree = 8;
    p.trees = 1;
    p.searches = 32;
    p.seed = static_cast<uint16_t>(0x3131 + 0x1D0B * i);
    images.push_back(apps::tree_search_program(p));
  }
  rw::Linker linker;
  for (const auto& img : images) linker.add(img);
  return net::serialize_system(linker.link());
}

// Per-node failure detail for a non-converged cell: one line per
// incomplete node with its abort reason, instead of one opaque count.
void report_abort_reasons(const net::DisseminationResult& res) {
  for (size_t i = 0; i < res.nodes.size(); ++i) {
    const auto& n = res.nodes[i];
    if (n.complete) continue;
    std::cerr << "  node " << i + 1 << ": "
              << net::to_string(n.abort_reason)
              << (n.abandoned ? " (abandoned by base)" : "")
              << ", " << n.data_rx << " chunks rx, " << n.nacks_sent
              << " nacks\n";
  }
  if (res.budget_exhausted) std::cerr << "  (cycle budget exhausted)\n";
}

const char* topo_name(net::TopologyKind k) {
  switch (k) {
    case net::TopologyKind::Star: return "star";
    case net::TopologyKind::Line: return "line";
    case net::TopologyKind::Grid: return "grid";
    case net::TopologyKind::Random: return "random";
  }
  return "?";
}

Cell run_cell(const std::vector<uint8_t>& blob, size_t nodes,
              uint32_t drop_pct,
              net::TopologyKind kind = net::TopologyKind::Star) {
  Cell c;
  c.kind = kind;
  c.topo = topo_name(kind);
  c.nodes = nodes;
  c.drop_pct = drop_pct;
  net::NetConfig cfg;
  cfg.nodes = nodes;
  cfg.link.drop_pct = drop_pct;
  cfg.chaos_seed = kChaosSeed;
  cfg.max_cycles = 8'000'000'000ULL;
  if (kind != net::TopologyKind::Star) {
    cfg.topo.kind = kind;
    // Mesh end-games ride on relayed acks through a contended channel; a
    // straggler can outlive the star-tuned abandon bound, so the base
    // never gives up. shards=0 exercises the auto-shard heuristic.
    cfg.proto.node_give_up_probes = 0;
    cfg.shards = 0;
    cfg.max_cycles = 64'000'000'000ULL;
  }
  net::NetSim sim(cfg, blob);
  c.res = sim.disseminate();
  if (!c.res.all_acked) {
    std::cerr << "fig_dissemination: cell topo=" << c.topo
              << " nodes=" << nodes << " drop=" << drop_pct
              << "% did not converge\n";
    report_abort_reasons(c.res);
    std::exit(1);
  }
  for (size_t id = 1; id <= nodes; ++id) {
    if (sim.node_blob(id) != blob) {
      std::cerr << "fig_dissemination: node " << id
                << " image not byte-identical (nodes=" << nodes
                << " drop=" << drop_pct << "%)\n";
      std::exit(1);
    }
  }
  return c;
}

struct CellSpec {
  net::TopologyKind kind;
  size_t nodes;
  uint32_t drop_pct;
};

std::vector<Cell> run_cells(const std::vector<uint8_t>& blob,
                            const std::vector<CellSpec>& specs,
                            unsigned jobs) {
  // Each cell is an independent deterministic simulation; the matrix is
  // identical for any --jobs value.
  return host::sweep_collect<Cell>(
      specs.size(), host::effective_jobs(jobs, specs.size()),
      [&](std::size_t i) {
        return run_cell(blob, specs[i].nodes, specs[i].drop_pct,
                        specs[i].kind);
      });
}

std::vector<Cell> run_matrix(const std::vector<uint8_t>& blob,
                             const std::vector<size_t>& node_counts,
                             const std::vector<uint32_t>& drops,
                             unsigned jobs) {
  std::vector<CellSpec> specs;
  for (size_t n : node_counts)
    for (uint32_t d : drops)
      specs.push_back({net::TopologyKind::Star, n, d});
  return run_cells(blob, specs, jobs);
}

// The mesh matrix: placements x sizes x loss. The grid 8/64 pair at 10%
// loss is the flatness surface --gate checks.
std::vector<CellSpec> mesh_specs(bool smoke) {
  using net::TopologyKind;
  if (smoke) return {{TopologyKind::Grid, 8, 10}};
  return {
      {TopologyKind::Line, 8, 10},    {TopologyKind::Random, 12, 10},
      {TopologyKind::Grid, 8, 0},     {TopologyKind::Grid, 8, 10},
      {TopologyKind::Grid, 24, 10},   {TopologyKind::Grid, 64, 10},
  };
}

// Recovery matrix (--recovery): fixed 4-node network, every receiver
// crashes and reboots k times mid-transfer (seeded, store preserved),
// crossed with the loss rates. Convergence is required: a reboot is an
// outage, not a death sentence, so every cell must still end all-acked
// with byte-identical images.
struct RecoveryCell {
  uint32_t crashes_per_node = 0;
  uint32_t drop_pct = 0;
  net::DisseminationResult res;

  double radio_seconds() const {
    return double(res.cycles) / double(emu::kClockHz);
  }
  uint64_t sum_nodes(uint64_t net::NodeDissemStats::* f) const {
    uint64_t v = 0;
    for (const auto& n : res.nodes) v += n.*f;
    return v;
  }
  uint64_t crashes() const {
    uint64_t v = 0;
    for (const auto& n : res.nodes) v += n.crashes;
    return v;
  }
  uint64_t resumed_chunks() const {
    uint64_t v = 0;
    for (const auto& n : res.nodes) v += n.resumed_chunks;
    return v;
  }
};

RecoveryCell run_recovery_cell(const std::vector<uint8_t>& blob,
                               uint32_t crashes_per_node,
                               uint32_t drop_pct) {
  RecoveryCell c;
  c.crashes_per_node = crashes_per_node;
  c.drop_pct = drop_pct;
  net::NetConfig cfg;
  cfg.nodes = 4;
  cfg.link.drop_pct = drop_pct;
  cfg.chaos_seed = kChaosSeed;
  cfg.max_cycles = 8'000'000'000ULL;
  if (crashes_per_node > 0) {
    cfg.node_faults.crash_pct = 100;  // every node reboots k times
    cfg.node_faults.max_crashes_per_node = crashes_per_node;
    cfg.node_faults.down_min_bytes = 256;
    cfg.node_faults.down_max_bytes = 2048;
  }
  net::NetSim sim(cfg, blob);
  c.res = sim.disseminate();
  if (!c.res.all_acked) {
    std::cerr << "fig_dissemination: recovery cell reboots="
              << crashes_per_node << " drop=" << drop_pct
              << "% did not converge\n";
    report_abort_reasons(c.res);
    std::exit(1);
  }
  for (size_t id = 1; id <= cfg.nodes; ++id) {
    if (sim.node_blob(id) != blob) {
      std::cerr << "fig_dissemination: node " << id
                << " image not byte-identical after recovery (reboots="
                << crashes_per_node << " drop=" << drop_pct << "%)\n";
      std::exit(1);
    }
  }
  return c;
}

int run_recovery(const std::vector<uint8_t>& blob, unsigned jobs) {
  const std::vector<uint32_t> reboot_counts = {0, 1, 2};
  const std::vector<uint32_t> drops = {0, 10, 25};
  std::vector<std::pair<uint32_t, uint32_t>> grid;
  for (uint32_t k : reboot_counts)
    for (uint32_t d : drops) grid.emplace_back(k, d);
  const auto cells = host::sweep_collect<RecoveryCell>(
      grid.size(), host::effective_jobs(jobs, grid.size()),
      [&](std::size_t i) {
        return run_recovery_cell(blob, grid[i].first, grid[i].second);
      });

  std::cout << "Dissemination under node crash/reboot faults (4 nodes, "
            << blob.size() << " bytes, " << cells[0].res.total_chunks
            << " chunks; every node reboots k times mid-transfer)\n\n";
  sim::Table t({"Reboots/node", "Drop%", "Time(s)", "Crashes", "Resumed",
                "Retx", "StoreWrites", "Converged"},
               13);
  for (const RecoveryCell& c : cells) {
    t.row({sim::Table::num(uint64_t(c.crashes_per_node)),
           sim::Table::num(uint64_t(c.drop_pct)),
           sim::Table::num(c.radio_seconds(), 2),
           sim::Table::num(c.crashes()),
           sim::Table::num(c.resumed_chunks()),
           sim::Table::num(c.res.base.retransmissions),
           sim::Table::num(c.sum_nodes(&net::NodeDissemStats::store_writes)),
           c.res.all_acked ? "yes" : "NO"});
  }
  t.print();
  std::cout
      << "\nExpected shape: each reboot costs one outage plus the repair\n"
         "Nack round for chunks missed while down; resumed chunks come\n"
         "from the persistent store, so completion time grows with the\n"
         "outage count, not with a full image re-transfer. Store writes\n"
         "stay near the chunk count: chunks survive reboots and are not\n"
         "re-flashed.\n";
  return 0;
}

// --- Adversarial overhead surface (DESIGN.md §11) ---------------------------
// {star 8, grid 16} at 10% loss, crossed with MAC authentication on/off
// and a seeded hostile node on/off. The honest MAC-on/MAC-off pairs price
// the authentication tax; the hostile cells show what an attacker costs a
// defended fleet (and what it wins against an undefended one).

struct AdvCell {
  net::TopologyKind kind = net::TopologyKind::Star;
  size_t nodes = 0;
  bool auth = false;
  bool hostile = false;
  uint32_t drop_pct = 0;
  net::DisseminationResult res;
  uint32_t forged_installs = 0;  // nodes that completed with foreign bytes
  uint64_t auth_rejects = 0;     // assembled images killed at the MAC gate
  uint64_t hostile_frames = 0;   // attack frames injected

  double radio_seconds() const {
    return double(res.cycles) / double(emu::kClockHz);
  }
};

AdvCell run_adv_cell(const std::vector<uint8_t>& blob, net::TopologyKind kind,
                     size_t nodes, bool auth, bool hostile,
                     uint32_t drop_pct) {
  AdvCell c;
  c.kind = kind;
  c.nodes = nodes;
  c.auth = auth;
  c.hostile = hostile;
  c.drop_pct = drop_pct;
  net::NetConfig cfg;
  cfg.nodes = nodes;
  cfg.link.drop_pct = drop_pct;
  cfg.chaos_seed = kChaosSeed;
  cfg.max_cycles = 8'000'000'000ULL;
  cfg.proto.auth = auth;
  const uint16_t attacker_id = kind == net::TopologyKind::Star ? 3 : 5;
  if (kind != net::TopologyKind::Star) {
    cfg.topo.kind = kind;
    cfg.shards = 0;
    // Honest mesh cells keep the convergence-matrix setting (never give
    // up: a distant mid-transfer node looks silent at the base). Attacked
    // cells need a finite abandon bound — the hostile node never Acks, so
    // without one the run could only end at the cycle budget. The bound is
    // generous enough that honest stragglers revive (any frame revives an
    // abandoned node) and finish; the MAC-overhead gate only compares the
    // honest cells, which share a config.
    cfg.proto.node_give_up_probes = hostile ? 96 : 0;
    cfg.max_cycles = 64'000'000'000ULL;
  }
  chaos::HostileProfile p;
  p.seed = 0xD15EA5E;
  p.node = attacker_id;
  p.nodes = static_cast<uint16_t>(nodes);
  p.chunk_payload = cfg.proto.chunk_payload;
  p.intensity_pct = 35;
  chaos::HostileNode attacker(p);
  if (hostile) cfg.hostile_node = attacker_id;

  net::NetSim sim(cfg, blob);
  if (hostile) sim.set_hostile_model(&attacker);
  c.res = sim.disseminate();
  if (c.res.budget_exhausted) {
    std::cerr << "fig_dissemination: adversarial cell " << topo_name(kind)
              << " nodes=" << nodes << " mac=" << auth
              << " hostile=" << hostile << " exhausted the cycle budget\n";
    report_abort_reasons(c.res);
    std::exit(1);
  }
  if (!hostile && !c.res.all_acked) {
    std::cerr << "fig_dissemination: honest adversarial-matrix cell "
              << topo_name(kind) << " nodes=" << nodes << " mac=" << auth
              << " did not converge\n";
    report_abort_reasons(c.res);
    std::exit(1);
  }
  for (size_t id = 1; id <= nodes; ++id) {
    if (hostile && id == attacker_id) continue;
    if (sim.node_complete(id) && sim.node_blob(id) != blob)
      ++c.forged_installs;
  }
  for (const auto& n : c.res.nodes) c.auth_rejects += n.auth_rejects;
  if (hostile) c.hostile_frames = attacker.frames_emitted();
  return c;
}

int run_adversarial(const std::vector<uint8_t>& blob, unsigned jobs) {
  struct Scenario {
    net::TopologyKind kind;
    size_t nodes;
  };
  const std::vector<Scenario> scenarios = {{net::TopologyKind::Star, 8},
                                           {net::TopologyKind::Grid, 16}};
  // The 10%-loss matrix crossed with MAC and hostile, plus one lossless
  // honest MAC-on/off pair per scenario: at 0% loss the runs are fully
  // deterministic, so that pair measures the pure authentication tax —
  // at 10% loss the tag bytes shift frame timing against the seeded drop
  // rolls and the alignment luck (±5%) buries the tax (~0.3%).
  struct AdvSpec {
    Scenario s;
    bool auth;
    bool hostile;
    uint32_t drop;
  };
  std::vector<AdvSpec> specs;
  for (const Scenario& s : scenarios) {
    for (bool auth : {false, true})
      for (bool hostile : {false, true}) specs.push_back({s, auth, hostile, 10});
    for (bool auth : {false, true}) specs.push_back({s, auth, false, 0});
  }

  const auto cells = host::sweep_collect<AdvCell>(
      specs.size(), host::effective_jobs(jobs, specs.size()),
      [&](std::size_t i) {
        return run_adv_cell(blob, specs[i].s.kind, specs[i].s.nodes,
                            specs[i].auth, specs[i].hostile, specs[i].drop);
      });

  std::cout << "Authentication overhead and hostile-node cost ("
            << blob.size() << " bytes, " << cells[0].res.total_chunks
            << " chunks; attacker intensity 35%)\n\n";
  sim::Table t({"Topo", "Nodes", "Drop%", "MAC", "Hostile", "Time(s)", "Mcyc",
                "AirBytes", "Done", "Gaveup", "Forged", "MacRej", "AckRej",
                "Squelch"},
               11);
  for (const AdvCell& c : cells) {
    t.row({topo_name(c.kind), sim::Table::num(uint64_t(c.nodes)),
           sim::Table::num(uint64_t(c.drop_pct)),
           c.auth ? "on" : "off", c.hostile ? "on" : "off",
           sim::Table::num(c.radio_seconds(), 2),
           sim::Table::num(double(c.res.cycles) / 1e6, 1),
           sim::Table::num(c.res.medium.bytes_on_air),
           sim::Table::num(uint64_t(c.res.complete_count)),
           sim::Table::num(uint64_t(c.res.abandoned_count)),
           sim::Table::num(uint64_t(c.forged_installs)),
           sim::Table::num(c.auth_rejects),
           sim::Table::num(c.res.base.acks_rejected),
           sim::Table::num(c.res.base.frames_squelched)});
  }
  t.print();

  // Gate 1: authentication must never let a forged install through.
  // Gate 2: the MAC tax on honest lossless runs. On a star the tag bytes
  // disappear into data traffic (129 40-byte chunks vs one longer Summary
  // and eight longer Acks): ±2%. On a mesh the control plane is the cost —
  // Summary re-floods and hop-by-hop Ack relays are small frames that the
  // 8-byte tag inflates by 38-73% each, so the honest bound is looser; the
  // gate pins it from growing past 25% rather than pretending it is free.
  bool ok = true;
  for (const AdvCell& c : cells) {
    if (c.auth && c.forged_installs > 0) {
      std::cerr << "fig_dissemination: FAIL — " << c.forged_installs
                << " forged install(s) on " << topo_name(c.kind)
                << " with MAC on\n";
      ok = false;
    }
  }
  auto honest_cycles = [&](const Scenario& s, bool auth) -> uint64_t {
    for (const AdvCell& c : cells)
      if (c.kind == s.kind && c.auth == auth && !c.hostile && c.drop_pct == 0)
        return c.res.cycles;
    return 0;
  };
  for (const Scenario& s : scenarios) {
    const uint64_t off = honest_cycles(s, false);
    const uint64_t on = honest_cycles(s, true);
    const double drift = double(on) / double(off) - 1.0;
    const double bound = s.kind == net::TopologyKind::Star ? 0.02 : 0.25;
    std::cout << "adversarial gate [mac overhead, " << topo_name(s.kind)
              << " lossless]: " << on << " vs " << off << " cycles ("
              << sim::Table::num(100.0 * drift, 2) << "% drift, tolerance ±"
              << sim::Table::num(100.0 * bound, 0) << "%)\n";
    if (drift > bound || drift < -bound) {
      std::cerr << "fig_dissemination: FAIL — MAC overhead beyond "
                << sim::Table::num(100.0 * bound, 0) << "% on "
                << topo_name(s.kind) << "\n";
      ok = false;
    }
  }
  if (!ok) return 1;
  std::cout << "adversarial gates: OK\n";
  return 0;
}

// --- Staged-rollout surface (DESIGN.md §12) ---------------------------------
// The fleet starts on an old image (slot A, Confirmed) and is upgraded
// wave-by-wave to the fig7 image under authentication, crossed with wave
// size, loss rate and seeded lemon count against a failure budget of 1.

// The image the fleet runs before the upgrade: a smaller system so old and
// new blobs are guaranteed distinct end-to-end.
std::vector<uint8_t> old_image_blob() {
  apps::TreeSearchParams p;
  p.nodes_per_tree = 6;
  p.trees = 1;
  p.searches = 16;
  p.seed = 0x0101;
  rw::Linker linker;
  linker.add(apps::tree_search_program(p));
  return net::serialize_system(linker.link());
}

struct RolloutCell {
  net::TopologyKind kind = net::TopologyKind::Star;
  size_t nodes = 0;
  uint32_t drop_pct = 0;
  uint32_t wave_size = 0;
  uint32_t lemons = 0;
  net::RolloutResult res;
  std::vector<std::string> failures;  // intrinsic gate violations

  double radio_seconds() const {
    return double(res.cycles) / double(emu::kClockHz);
  }
};

RolloutCell run_rollout_cell(const std::vector<uint8_t>& new_blob,
                             const std::vector<uint8_t>& old_blob,
                             net::TopologyKind kind, size_t nodes,
                             uint32_t drop_pct, uint32_t wave_size,
                             uint32_t lemons) {
  RolloutCell c;
  c.kind = kind;
  c.nodes = nodes;
  c.drop_pct = drop_pct;
  c.wave_size = wave_size;
  c.lemons = lemons;
  net::NetConfig cfg;
  cfg.nodes = nodes;
  cfg.link.drop_pct = drop_pct;
  cfg.chaos_seed = kChaosSeed;
  cfg.max_cycles = 8'000'000'000ULL;
  cfg.proto.auth = true;  // control and health frames ride keyed tags
  cfg.rollout.enabled = true;
  cfg.rollout.wave_size = wave_size;
  cfg.rollout.failure_budget = 1;
  if (kind != net::TopologyKind::Star) {
    cfg.topo.kind = kind;
    cfg.proto.node_give_up_probes = 0;
    cfg.shards = 0;
    cfg.max_cycles = 64'000'000'000ULL;
  }
  // Seeded lemons: the first trips the supervision gate mid-probation, the
  // second crash-loops. With budget 1, one is absorbed (rolled back alone),
  // two halt the rollout and roll the whole fleet back.
  const uint16_t lemon_a = kind == net::TopologyKind::Star ? 3 : 6;
  const uint16_t lemon_b = kind == net::TopologyKind::Star ? 6 : 11;
  net::NetSim sim(cfg, new_blob);
  sim.set_initial_image(old_blob, 0);
  if (lemons >= 1) {
    net::TrialBehavior b;
    b.kind = net::TrialBehavior::Kind::Runaway;
    b.at_pct = 40;
    b.quarantines = 1;
    sim.set_trial_behavior(lemon_a, b);
  }
  if (lemons >= 2) {
    net::TrialBehavior b;
    b.kind = net::TrialBehavior::Kind::CrashBoot;
    b.at_pct = 60;
    b.down_bytes = 512;
    sim.set_trial_behavior(lemon_b, b);
  }
  c.res = sim.rollout();

  // Intrinsic gates, evaluated per cell while the fleet state is live.
  auto fail = [&](const std::string& why) { c.failures.push_back(why); };
  if (!c.res.dissem.all_acked) {
    fail("dissemination did not converge");
    return c;
  }
  auto active_is = [&](size_t id, const std::vector<uint8_t>& blob) {
    const emu::ImageStore& st = sim.node_store(static_cast<uint16_t>(id));
    const emu::ImageSlot& slot = st.slots[st.active_slot];
    return slot.state == emu::SlotState::Confirmed && slot.image == blob;
  };
  for (size_t id = 1; id <= nodes; ++id)
    if (c.res.nodes[id].trial_left_active)
      fail("node " + std::to_string(id) + " left a trial active");
  if (c.res.health_rejected > 0)
    fail("honest health reports rejected at the MAC gate");
  if (lemons == 0) {
    if (!c.res.complete || c.res.confirmed != nodes)
      fail("lemon-free cell did not promote the whole fleet");
    for (size_t id = 1; id <= nodes; ++id)
      if (!active_is(id, new_blob))
        fail("node " + std::to_string(id) + " not on the new image");
  } else if (lemons == 1) {
    if (c.res.halted) fail("one lemon must fit the failure budget");
    if (!active_is(lemon_a, old_blob))
      fail("lemon node not rolled back to the old image");
    for (size_t id = 1; id <= nodes; ++id)
      if (id != lemon_a && !active_is(id, new_blob))
        fail("node " + std::to_string(id) + " not on the new image");
  } else {
    if (!c.res.halted) fail("two lemons must exceed the failure budget");
    for (size_t id = 1; id <= nodes; ++id)
      if (!active_is(id, old_blob))
        fail("node " + std::to_string(id) +
             " not byte-exact on the old image after the halt");
  }
  return c;
}

int run_rollout_matrix(unsigned jobs) {
  const auto new_blob = fig7_image_blob();
  const auto old_blob = old_image_blob();
  struct RollSpec {
    net::TopologyKind kind;
    size_t nodes;
    uint32_t drop;
    uint32_t wave;
    uint32_t lemons;
  };
  std::vector<RollSpec> specs;
  for (uint32_t wave : {2u, 4u})
    for (uint32_t drop : {0u, 10u})
      for (uint32_t lemons : {0u, 1u, 2u})
        specs.push_back({net::TopologyKind::Star, 8, drop, wave, lemons});
  for (uint32_t drop : {0u, 10u})
    for (uint32_t lemons : {0u, 2u})
      specs.push_back({net::TopologyKind::Grid, 16, drop, 4, lemons});

  const auto cells = host::sweep_collect<RolloutCell>(
      specs.size(), host::effective_jobs(jobs, specs.size()),
      [&](std::size_t i) {
        const RollSpec& s = specs[i];
        return run_rollout_cell(new_blob, old_blob, s.kind, s.nodes, s.drop,
                                s.wave, s.lemons);
      });

  std::cout << "Health-gated staged rollout (old " << old_blob.size()
            << " B -> new " << new_blob.size()
            << " B, MAC on, failure budget 1)\n\n";
  sim::Table t({"Topo", "Nodes", "Drop%", "WaveSz", "Lemons", "Time(s)",
                "Waves", "Conf", "RolledBk", "Gaveup", "Halted", "Gates"},
               10);
  bool ok = true;
  for (const RolloutCell& c : cells) {
    t.row({topo_name(c.kind), sim::Table::num(uint64_t(c.nodes)),
           sim::Table::num(uint64_t(c.drop_pct)),
           sim::Table::num(uint64_t(c.wave_size)),
           sim::Table::num(uint64_t(c.lemons)),
           sim::Table::num(c.radio_seconds(), 2),
           sim::Table::num(uint64_t(c.res.waves)),
           sim::Table::num(uint64_t(c.res.confirmed)),
           sim::Table::num(uint64_t(c.res.rolled_back)),
           sim::Table::num(uint64_t(c.res.gave_up)),
           c.res.halted ? "yes" : "no", c.failures.empty() ? "ok" : "FAIL"});
    for (const std::string& f : c.failures) {
      std::cerr << "fig_dissemination: rollout cell " << topo_name(c.kind)
                << " nodes=" << c.nodes << " drop=" << c.drop_pct
                << "% wave=" << c.wave_size << " lemons=" << c.lemons << ": "
                << f << "\n";
      ok = false;
    }
  }
  t.print();
  std::cout
      << "\nExpected shape: lemon-free cells promote every wave and end\n"
         "complete; one lemon is absorbed by the budget (that node alone\n"
         "rolls back to slot A while the rest confirm); two lemons exceed\n"
         "the budget, halt the rollout and roll every upgraded node back —\n"
         "the fleet ends byte-exact on the old image, never on a wedged\n"
         "half-trial.\n";
  if (!ok) {
    std::cerr << "fig_dissemination: FAIL — rollout gates violated\n";
    return 1;
  }
  std::cout << "rollout gates: OK\n";
  return 0;
}

uint64_t total_cycles(const std::vector<Cell>& cells) {
  uint64_t t = 0;
  for (const auto& c : cells) t += c.res.cycles;
  return t;
}

// Mesh gate surface: the flatness pair (grid 8 and grid 64 at 10% loss).
const Cell* find_cell(const std::vector<Cell>& cells, net::TopologyKind k,
                      size_t nodes, uint32_t drop) {
  for (const Cell& c : cells)
    if (c.kind == k && c.nodes == nodes && c.drop_pct == drop) return &c;
  return nullptr;
}

double flatness_ratio(const std::vector<Cell>& mesh) {
  const Cell* small = find_cell(mesh, net::TopologyKind::Grid, 8, 10);
  const Cell* big = find_cell(mesh, net::TopologyKind::Grid, 64, 10);
  if (!small || !big) return 0.0;
  return double(big->cycles_per_node()) / double(small->cycles_per_node());
}

void emit_json(std::ostream& os, bool smoke, size_t image_bytes,
               const std::vector<Cell>& cells,
               const std::vector<Cell>& mesh) {
  os << "{\n";
  os << "  \"schema\": \"sensmart.bench.dissemination/1\",\n";
  os << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  os << "  \"chaos_seed\": " << kChaosSeed << ",\n";
  os << "  \"image_bytes\": " << image_bytes << ",\n";
  os << "  \"cells\": [\n";
  std::vector<const Cell*> all;
  for (const Cell& c : cells) all.push_back(&c);
  for (const Cell& c : mesh) all.push_back(&c);
  for (size_t i = 0; i < all.size(); ++i) {
    const Cell& c = *all[i];
    os << "    {\"topology\": \"" << c.topo << "\", \"nodes\": " << c.nodes
       << ", \"drop_pct\": " << c.drop_pct
       << ", \"cycles\": " << c.res.cycles
       << ", \"cycles_per_node\": " << c.cycles_per_node()
       << ", \"bytes_on_air\": " << c.res.medium.bytes_on_air
       << ", \"rx_bytes\": " << c.rx_bytes_total()
       << ", \"nacks\": " << c.nacks_total()
       << ", \"retransmissions\": " << c.res.base.retransmissions
       << ", \"chunks_served\": " << c.chunks_served()
       << ", \"collisions\": " << c.res.medium.collisions
       << ", \"trace_digest\": " << c.res.trace_digest << "}"
       << (i + 1 < all.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  // The deterministic regression surface (--gate compares this):
  // total_cycles sums the star matrix, mesh_gate_cycles the grid 8/64
  // flatness pair at 10% loss.
  uint64_t mesh_gate = 0;
  if (const Cell* c = find_cell(mesh, net::TopologyKind::Grid, 8, 10))
    mesh_gate += c->res.cycles;
  if (const Cell* c = find_cell(mesh, net::TopologyKind::Grid, 64, 10))
    mesh_gate += c->res.cycles;
  os << "  \"guest\": {\n";
  os << "    \"total_cycles\": " << total_cycles(cells) << ",\n";
  os << "    \"mesh_gate_cycles\": " << mesh_gate << ",\n";
  os << "    \"mesh_flatness_64v8\": "
     << sim::Table::num(flatness_ratio(mesh), 3) << "\n";
  os << "  }\n";
  os << "}\n";
}

uint64_t committed_u64(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) return 0;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  size_t at = text.find("\"guest\"");
  if (at == std::string::npos) return 0;
  const std::string key = "\"" + name + "\": ";
  at = text.find(key, at);
  if (at == std::string::npos) return 0;
  return std::strtoull(text.c_str() + at + key.size(), nullptr, 10);
}

bool check_drift(const char* what, uint64_t current, uint64_t committed) {
  constexpr double kTolerance = 0.02;
  const double drift = double(current) / double(committed) - 1.0;
  std::cout << "dissemination gate [" << what << "]: current " << current
            << " vs committed " << committed << " ("
            << sim::Table::num(100.0 * drift, 2)
            << "% drift, tolerance ±2%)\n";
  return drift <= kTolerance && drift >= -kTolerance;
}

// CI regression gate: recompute the star matrix and the mesh flatness
// pair (both deterministic) and fail on more than 2% drift in summed
// completion cycles against the committed BENCH_dissemination.json, or on
// a mesh per-node cost ratio cpn(grid 64) / cpn(grid 8) above 2x at 10%
// loss — the property the peer-serving protocol exists to deliver.
int run_gate(const std::string& path, unsigned jobs) {
  constexpr double kFlatnessBound = 2.0;
  const uint64_t committed = committed_u64(path, "total_cycles");
  const uint64_t committed_mesh = committed_u64(path, "mesh_gate_cycles");
  if (committed == 0 || committed_mesh == 0) {
    std::cerr << "fig_dissemination: no committed total_cycles / "
                 "mesh_gate_cycles in " << path << "\n";
    return 2;
  }
  const auto blob = fig7_image_blob();
  const auto cells = run_matrix(blob, {2, 4, 8, 16}, {0, 10, 25}, jobs);
  const std::vector<CellSpec> pair = {{net::TopologyKind::Grid, 8, 10},
                                      {net::TopologyKind::Grid, 64, 10}};
  const auto mesh = run_cells(blob, pair, jobs);
  bool ok = check_drift("star", total_cycles(cells), committed);
  ok &= check_drift("mesh", total_cycles(mesh), committed_mesh);
  const double flat = flatness_ratio(mesh);
  std::cout << "dissemination gate [flatness]: cpn(grid64@10) / "
               "cpn(grid8@10) = " << sim::Table::num(flat, 3)
            << " (bound " << sim::Table::num(kFlatnessBound, 1) << ")\n";
  if (flat <= 0.0 || flat > kFlatnessBound) ok = false;
  if (!ok) {
    std::cerr << "fig_dissemination: FAIL — dissemination cost drifted "
                 "beyond 2% or mesh per-node cost lost its flatness; if "
                 "the protocol change is intentional, refresh "
                 "BENCH_dissemination.json and the golden trace digests in "
                 "the same commit\n";
    return 1;
  }
  std::cout << "dissemination gate: OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool recovery = false;
  bool adversarial = false;
  bool rollout = false;
  bool gate = false;
  unsigned jobs = 1;
  std::string json_path = "BENCH_dissemination.json";
  std::string gate_path = "BENCH_dissemination.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--recovery") == 0) {
      recovery = true;
    } else if (std::strcmp(argv[i], "--adversarial") == 0) {
      adversarial = true;
    } else if (std::strcmp(argv[i], "--rollout") == 0) {
      rollout = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      // The path operand is optional (defaults to the committed JSON), so
      // `--rollout --gate` works without one: only consume the next arg if
      // it exists and is not itself a flag.
      gate = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') gate_path = argv[++i];
    } else {
      std::cerr << "usage: fig_dissemination [--smoke] [--recovery] "
                   "[--adversarial] [--rollout] [--jobs N] [--json PATH] "
                   "[--gate [BENCH.json]]\n";
      return 2;
    }
  }
  if (rollout) return run_rollout_matrix(jobs);  // gates are intrinsic
  if (gate) return run_gate(gate_path, jobs);
  if (recovery) return run_recovery(fig7_image_blob(), jobs);
  if (adversarial) return run_adversarial(fig7_image_blob(), jobs);

  const auto blob = fig7_image_blob();
  const std::vector<size_t> node_counts =
      smoke ? std::vector<size_t>{2, 4} : std::vector<size_t>{2, 4, 8, 16};
  const std::vector<uint32_t> drops =
      smoke ? std::vector<uint32_t>{0, 10} : std::vector<uint32_t>{0, 10, 25};
  const auto cells = run_matrix(blob, node_counts, drops, jobs);
  const auto mesh = run_cells(blob, mesh_specs(smoke), jobs);

  std::cout << "Over-the-air dissemination of the naturalized fig7 image ("
            << blob.size() << " bytes, " << cells[0].res.total_chunks
            << " chunks)\n\n";
  sim::Table t({"Topo", "Nodes", "Drop%", "Time(s)", "Mcyc/node", "AirBytes",
                "RxBytes/node", "Nacks", "Retx", "Served", "Coll"},
               13);
  auto emit_row = [&](const Cell& c) {
    t.row({c.topo, sim::Table::num(uint64_t(c.nodes)),
           sim::Table::num(uint64_t(c.drop_pct)),
           sim::Table::num(c.radio_seconds(), 2),
           sim::Table::num(double(c.cycles_per_node()) / 1e6, 2),
           sim::Table::num(c.res.medium.bytes_on_air),
           sim::Table::num(uint64_t(c.rx_bytes_total() / c.nodes)),
           sim::Table::num(c.nacks_total()),
           sim::Table::num(c.res.base.retransmissions),
           sim::Table::num(c.chunks_served()),
           sim::Table::num(c.res.medium.collisions)});
  };
  for (const Cell& c : cells) emit_row(c);
  for (const Cell& c : mesh) emit_row(c);
  t.print();
  std::cout
      << "\nExpected shape: loss multiplies repair traffic (Nacks and\n"
         "retransmissions) and stretches completion time; node count\n"
         "raises total received bytes linearly (broadcast medium) while\n"
         "per-node cost stays near-flat until Nack collisions at the base\n"
         "add serialization delay. On mesh topologies peers answer repair\n"
         "Nacks with chunks they already hold (Served), so cycles per node\n"
         "stays near-flat as the grid grows: "
      << sim::Table::num(flatness_ratio(mesh), 2)
      << "x from 8 to 64 nodes at 10% loss.\n";

  std::ofstream js(json_path);
  if (!js) {
    std::cerr << "fig_dissemination: cannot write " << json_path << "\n";
    return 1;
  }
  emit_json(js, smoke, blob.size(), cells, mesh);
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
