// Over-the-air dissemination cost across network size and loss rate: for
// each (nodes, drop%) cell, disseminate the naturalized fig7 treesearch
// image to every node and report completion time (emulated cycles and
// radio-seconds), the energy proxy (bytes on air / received per node), and
// the repair traffic (Nacks, retransmissions). Every cell is a
// deterministic function of the chaos seed, so the matrix doubles as a
// regression surface: --gate compares the summed completion cycles against
// the committed BENCH_dissemination.json with a 2% tolerance.
//
// --recovery swaps the matrix for a reboot-rate x loss-rate grid: every
// receiver suffers k seeded mid-transfer crash/reboot cycles (k = 0..2)
// under each loss rate, exercising the persistent-store resume path
// (DESIGN.md §8). The default matrix and --gate math are untouched.
//
//   fig_dissemination [--smoke] [--recovery] [--jobs N] [--json PATH]
//                     [--gate BENCH.json]
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/treesearch.hpp"
#include "host/parallel.hpp"
#include "net/image_codec.hpp"
#include "net/netsim.hpp"
#include "sim/harness.hpp"

using namespace sensmart;

namespace {

constexpr uint64_t kChaosSeed = 0x5EED;

struct Cell {
  size_t nodes = 0;
  uint32_t drop_pct = 0;
  net::DisseminationResult res;

  double radio_seconds() const {
    return double(res.cycles) / double(emu::kClockHz);
  }
  uint64_t rx_bytes_total() const {
    uint64_t b = 0;
    for (const auto& n : res.nodes) b += n.bytes_rx;
    return b;
  }
  uint64_t nacks_total() const {
    uint64_t n = 0;
    for (const auto& s : res.nodes) n += s.nacks_sent;
    return n;
  }
};

std::vector<uint8_t> fig7_image_blob() {
  std::vector<assembler::Image> images;
  images.push_back(apps::data_feed_program(6, 64));
  for (int i = 0; i < 2; ++i) {
    apps::TreeSearchParams p;
    p.nodes_per_tree = 8;
    p.trees = 1;
    p.searches = 32;
    p.seed = static_cast<uint16_t>(0x3131 + 0x1D0B * i);
    images.push_back(apps::tree_search_program(p));
  }
  rw::Linker linker;
  for (const auto& img : images) linker.add(img);
  return net::serialize_system(linker.link());
}

// Per-node failure detail for a non-converged cell: one line per
// incomplete node with its abort reason, instead of one opaque count.
void report_abort_reasons(const net::DisseminationResult& res) {
  for (size_t i = 0; i < res.nodes.size(); ++i) {
    const auto& n = res.nodes[i];
    if (n.complete) continue;
    std::cerr << "  node " << i + 1 << ": "
              << net::to_string(n.abort_reason)
              << (n.abandoned ? " (abandoned by base)" : "")
              << ", " << n.data_rx << " chunks rx, " << n.nacks_sent
              << " nacks\n";
  }
  if (res.budget_exhausted) std::cerr << "  (cycle budget exhausted)\n";
}

Cell run_cell(const std::vector<uint8_t>& blob, size_t nodes,
              uint32_t drop_pct) {
  Cell c;
  c.nodes = nodes;
  c.drop_pct = drop_pct;
  net::NetConfig cfg;
  cfg.nodes = nodes;
  cfg.link.drop_pct = drop_pct;
  cfg.chaos_seed = kChaosSeed;
  cfg.max_cycles = 8'000'000'000ULL;
  net::NetSim sim(cfg, blob);
  c.res = sim.disseminate();
  if (!c.res.all_acked) {
    std::cerr << "fig_dissemination: cell nodes=" << nodes
              << " drop=" << drop_pct << "% did not converge\n";
    report_abort_reasons(c.res);
    std::exit(1);
  }
  for (size_t id = 1; id <= nodes; ++id) {
    if (sim.node_blob(id) != blob) {
      std::cerr << "fig_dissemination: node " << id
                << " image not byte-identical (nodes=" << nodes
                << " drop=" << drop_pct << "%)\n";
      std::exit(1);
    }
  }
  return c;
}

std::vector<Cell> run_matrix(const std::vector<uint8_t>& blob,
                             const std::vector<size_t>& node_counts,
                             const std::vector<uint32_t>& drops,
                             unsigned jobs) {
  std::vector<std::pair<size_t, uint32_t>> cells;
  for (size_t n : node_counts)
    for (uint32_t d : drops) cells.emplace_back(n, d);
  // Each cell is an independent deterministic simulation; the matrix is
  // identical for any --jobs value.
  return host::sweep_collect<Cell>(
      cells.size(), host::effective_jobs(jobs, cells.size()),
      [&](std::size_t i) {
        return run_cell(blob, cells[i].first, cells[i].second);
      });
}

// Recovery matrix (--recovery): fixed 4-node network, every receiver
// crashes and reboots k times mid-transfer (seeded, store preserved),
// crossed with the loss rates. Convergence is required: a reboot is an
// outage, not a death sentence, so every cell must still end all-acked
// with byte-identical images.
struct RecoveryCell {
  uint32_t crashes_per_node = 0;
  uint32_t drop_pct = 0;
  net::DisseminationResult res;

  double radio_seconds() const {
    return double(res.cycles) / double(emu::kClockHz);
  }
  uint64_t sum_nodes(uint64_t net::NodeDissemStats::* f) const {
    uint64_t v = 0;
    for (const auto& n : res.nodes) v += n.*f;
    return v;
  }
  uint64_t crashes() const {
    uint64_t v = 0;
    for (const auto& n : res.nodes) v += n.crashes;
    return v;
  }
  uint64_t resumed_chunks() const {
    uint64_t v = 0;
    for (const auto& n : res.nodes) v += n.resumed_chunks;
    return v;
  }
};

RecoveryCell run_recovery_cell(const std::vector<uint8_t>& blob,
                               uint32_t crashes_per_node,
                               uint32_t drop_pct) {
  RecoveryCell c;
  c.crashes_per_node = crashes_per_node;
  c.drop_pct = drop_pct;
  net::NetConfig cfg;
  cfg.nodes = 4;
  cfg.link.drop_pct = drop_pct;
  cfg.chaos_seed = kChaosSeed;
  cfg.max_cycles = 8'000'000'000ULL;
  if (crashes_per_node > 0) {
    cfg.node_faults.crash_pct = 100;  // every node reboots k times
    cfg.node_faults.max_crashes_per_node = crashes_per_node;
    cfg.node_faults.down_min_bytes = 256;
    cfg.node_faults.down_max_bytes = 2048;
  }
  net::NetSim sim(cfg, blob);
  c.res = sim.disseminate();
  if (!c.res.all_acked) {
    std::cerr << "fig_dissemination: recovery cell reboots="
              << crashes_per_node << " drop=" << drop_pct
              << "% did not converge\n";
    report_abort_reasons(c.res);
    std::exit(1);
  }
  for (size_t id = 1; id <= cfg.nodes; ++id) {
    if (sim.node_blob(id) != blob) {
      std::cerr << "fig_dissemination: node " << id
                << " image not byte-identical after recovery (reboots="
                << crashes_per_node << " drop=" << drop_pct << "%)\n";
      std::exit(1);
    }
  }
  return c;
}

int run_recovery(const std::vector<uint8_t>& blob, unsigned jobs) {
  const std::vector<uint32_t> reboot_counts = {0, 1, 2};
  const std::vector<uint32_t> drops = {0, 10, 25};
  std::vector<std::pair<uint32_t, uint32_t>> grid;
  for (uint32_t k : reboot_counts)
    for (uint32_t d : drops) grid.emplace_back(k, d);
  const auto cells = host::sweep_collect<RecoveryCell>(
      grid.size(), host::effective_jobs(jobs, grid.size()),
      [&](std::size_t i) {
        return run_recovery_cell(blob, grid[i].first, grid[i].second);
      });

  std::cout << "Dissemination under node crash/reboot faults (4 nodes, "
            << blob.size() << " bytes, " << cells[0].res.total_chunks
            << " chunks; every node reboots k times mid-transfer)\n\n";
  sim::Table t({"Reboots/node", "Drop%", "Time(s)", "Crashes", "Resumed",
                "Retx", "StoreWrites", "Converged"},
               13);
  for (const RecoveryCell& c : cells) {
    t.row({sim::Table::num(uint64_t(c.crashes_per_node)),
           sim::Table::num(uint64_t(c.drop_pct)),
           sim::Table::num(c.radio_seconds(), 2),
           sim::Table::num(c.crashes()),
           sim::Table::num(c.resumed_chunks()),
           sim::Table::num(c.res.base.retransmissions),
           sim::Table::num(c.sum_nodes(&net::NodeDissemStats::store_writes)),
           c.res.all_acked ? "yes" : "NO"});
  }
  t.print();
  std::cout
      << "\nExpected shape: each reboot costs one outage plus the repair\n"
         "Nack round for chunks missed while down; resumed chunks come\n"
         "from the persistent store, so completion time grows with the\n"
         "outage count, not with a full image re-transfer. Store writes\n"
         "stay near the chunk count: chunks survive reboots and are not\n"
         "re-flashed.\n";
  return 0;
}

uint64_t total_cycles(const std::vector<Cell>& cells) {
  uint64_t t = 0;
  for (const auto& c : cells) t += c.res.cycles;
  return t;
}

void emit_json(std::ostream& os, bool smoke, size_t image_bytes,
               const std::vector<Cell>& cells) {
  os << "{\n";
  os << "  \"schema\": \"sensmart.bench.dissemination/1\",\n";
  os << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  os << "  \"chaos_seed\": " << kChaosSeed << ",\n";
  os << "  \"image_bytes\": " << image_bytes << ",\n";
  os << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    os << "    {\"nodes\": " << c.nodes << ", \"drop_pct\": " << c.drop_pct
       << ", \"cycles\": " << c.res.cycles
       << ", \"bytes_on_air\": " << c.res.medium.bytes_on_air
       << ", \"rx_bytes\": " << c.rx_bytes_total()
       << ", \"nacks\": " << c.nacks_total()
       << ", \"retransmissions\": " << c.res.base.retransmissions
       << ", \"trace_digest\": " << c.res.trace_digest << "}"
       << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  // The deterministic regression surface (--gate compares this).
  os << "  \"guest\": {\n";
  os << "    \"total_cycles\": " << total_cycles(cells) << "\n";
  os << "  }\n";
  os << "}\n";
}

uint64_t committed_total_cycles(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  size_t at = text.find("\"guest\"");
  if (at == std::string::npos) return 0;
  const std::string key = "\"total_cycles\": ";
  at = text.find(key, at);
  if (at == std::string::npos) return 0;
  return std::strtoull(text.c_str() + at + key.size(), nullptr, 10);
}

// CI regression gate: recompute the full matrix (deterministic) and fail
// on more than 2% drift in summed completion cycles against the committed
// BENCH_dissemination.json.
int run_gate(const std::string& path, unsigned jobs) {
  constexpr double kTolerance = 0.02;
  const uint64_t committed = committed_total_cycles(path);
  if (committed == 0) {
    std::cerr << "fig_dissemination: no committed total_cycles in " << path
              << "\n";
    return 2;
  }
  const auto blob = fig7_image_blob();
  const auto cells = run_matrix(blob, {2, 4, 8, 16}, {0, 10, 25}, jobs);
  const uint64_t current = total_cycles(cells);
  const double drift =
      double(current) / double(committed) - 1.0;
  std::cout << "dissemination gate: current " << current << " vs committed "
            << committed << " (" << sim::Table::num(100.0 * drift, 2)
            << "% drift, tolerance ±2%)\n";
  if (drift > kTolerance || drift < -kTolerance) {
    std::cerr << "fig_dissemination: FAIL — dissemination cost drifted "
                 "beyond 2%; if the protocol change is intentional, refresh "
                 "BENCH_dissemination.json and the golden trace digests in "
                 "the same commit\n";
    return 1;
  }
  std::cout << "dissemination gate: OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool recovery = false;
  unsigned jobs = 1;
  std::string json_path = "BENCH_dissemination.json";
  std::string gate_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--recovery") == 0) {
      recovery = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--gate") == 0 && i + 1 < argc) {
      gate_path = argv[++i];
    } else {
      std::cerr << "usage: fig_dissemination [--smoke] [--recovery] "
                   "[--jobs N] [--json PATH] [--gate BENCH.json]\n";
      return 2;
    }
  }
  if (!gate_path.empty()) return run_gate(gate_path, jobs);
  if (recovery) return run_recovery(fig7_image_blob(), jobs);

  const auto blob = fig7_image_blob();
  const std::vector<size_t> node_counts =
      smoke ? std::vector<size_t>{2, 4} : std::vector<size_t>{2, 4, 8, 16};
  const std::vector<uint32_t> drops =
      smoke ? std::vector<uint32_t>{0, 10} : std::vector<uint32_t>{0, 10, 25};
  const auto cells = run_matrix(blob, node_counts, drops, jobs);

  std::cout << "Over-the-air dissemination of the naturalized fig7 image ("
            << blob.size() << " bytes, " << cells[0].res.total_chunks
            << " chunks)\n\n";
  sim::Table t({"Nodes", "Drop%", "Time(s)", "AirBytes", "RxBytes/node",
                "Nacks", "Retx"},
               13);
  for (const Cell& c : cells) {
    t.row({sim::Table::num(uint64_t(c.nodes)),
           sim::Table::num(uint64_t(c.drop_pct)),
           sim::Table::num(c.radio_seconds(), 2),
           sim::Table::num(c.res.medium.bytes_on_air),
           sim::Table::num(uint64_t(c.rx_bytes_total() / c.nodes)),
           sim::Table::num(c.nacks_total()),
           sim::Table::num(c.res.base.retransmissions)});
  }
  t.print();
  std::cout
      << "\nExpected shape: loss multiplies repair traffic (Nacks and\n"
         "retransmissions) and stretches completion time; node count\n"
         "raises total received bytes linearly (broadcast medium) while\n"
         "per-node cost stays near-flat until Nack collisions at the base\n"
         "add serialization delay.\n";

  std::ofstream js(json_path);
  if (!js) {
    std::cerr << "fig_dissemination: cannot write " << json_path << "\n";
    return 1;
  }
  emit_json(js, smoke, blob.size(), cells);
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
