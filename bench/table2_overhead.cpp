// Table II: overhead of key operations, measured in emulated CPU cycles.
//
// Method (same as the paper's: count cycles in a simulator): for each
// operation we build two straight-line programs differing only in K extra
// copies of the operation, run both under SenSmart, and divide the cycle
// difference by K. Context-switch costs are measured by invoking the
// scheduler directly; relocation cost is measured differentially between a
// run that relocates and one that does not.
//
// The binary also registers google-benchmark timers for the host-side
// throughput of the emulator and the rewriter.
#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>

#include "apps/benchmarks.hpp"
#include "apps/treesearch.hpp"
#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "kernel/kernel.hpp"
#include "rewriter/linker.hpp"
#include "sim/harness.hpp"

namespace sensmart::kern {
// Test/bench peer with access to the kernel's scheduling internals.
struct KernelTestPeer {
  static void force_switch(Kernel& k) { k.context_switch(k.m_.pc(), false); }
};
}  // namespace sensmart::kern

namespace {

using namespace sensmart;
using assembler::Assembler;

using EmitFn = std::function<void(Assembler&, int)>;  // (asm, copies)

// Run a straight-line program with `copies` repetitions of the target op
// under SenSmart and return total cycles at halt. The paper columns pin
// paper_options() — the newer fast tiers (§6d) would otherwise reclassify
// the very sites Table II prices at full cost (e.g. a static heap LDS
// becomes the 16-cycle fast-direct service).
uint64_t run_copies(const EmitFn& emit, int copies, bool grouped_opt = true,
                    bool fast_tiers = false) {
  Assembler a("micro");
  a.var("pad", 16);  // a little heap for direct/indirect heap tests
  emit(a, copies);
  a.halt(0);
  sim::RunSpec spec;
  spec.rewrite = fast_tiers ? rw::RewriteOptions{} : rw::paper_options();
  spec.rewrite.grouped_access = grouped_opt;
  const auto r = sim::run_system({a.finish()}, spec);
  if (r.stop != emu::StopReason::Halted || r.completed() != 1) {
    std::cerr << "micro benchmark did not complete cleanly\n";
    std::exit(1);
  }
  return r.cycles;
}

double per_op(const EmitFn& emit, int k = 64, bool grouped_opt = true,
              bool fast_tiers = false) {
  const uint64_t c1 = run_copies(emit, k, grouped_opt, fast_tiers);
  const uint64_t c0 = run_copies(emit, 0, grouped_opt, fast_tiers);
  return double(c1 - c0) / k;
}

double measure_init() {
  Assembler a("init");
  a.halt(0);
  rw::Linker linker;
  linker.add(a.finish());
  const auto sys = linker.link();
  emu::Machine m;
  kern::Kernel k(m, sys);
  (void)k.admit(0);
  const uint64_t before = m.cycles();
  (void)k.start();
  return double(m.cycles() - before);
}

struct SwitchCosts {
  double full = 0;
};

SwitchCosts measure_context_switch() {
  Assembler a("spin");
  a.label("fwd");
  a.nop();
  a.rjmp("fwd2");
  a.label("fwd2");
  a.rjmp("fwd");
  auto img = a.finish();
  rw::Linker linker;
  linker.add(img);
  linker.add(img);
  const auto sys = linker.link();
  emu::Machine m;
  kern::Kernel k(m, sys);
  k.admit_all();
  k.start();
  m.run(20000);  // let task 0 get going
  SwitchCosts c;
  const int reps = 32;
  const uint64_t before = m.cycles();
  for (int i = 0; i < reps; ++i) kern::KernelTestPeer::force_switch(k);
  c.full = double(m.cycles() - before) / reps;
  return c;
}

double measure_relocation() {
  auto scenario = [](uint16_t initial_stack) {
    std::vector<assembler::Image> imgs;
    for (int i = 0; i < 2; ++i) {
      apps::TreeSearchParams p;
      p.nodes_per_tree = 16;
      p.trees = 2;
      p.searches = 16;
      p.seed = static_cast<uint16_t>(0x2222 * (i + 1));
      imgs.push_back(apps::tree_search_program(p));
    }
    sim::RunSpec spec;
    spec.kernel.initial_stack = initial_stack;
    return sim::run_system(imgs, spec);
  };
  const auto tight = scenario(40);  // forces relocations
  if (tight.kernel_stats.relocations == 0) return 0;
  return double(tight.kernel_stats.reloc_cycles) /
         tight.kernel_stats.relocations;
}

void print_table() {
  sim::Table t({"Operation", "Measured", "Paper"});

  t.row({"System initialization", sim::Table::num(measure_init()),
         "5738"});

  // Direct access, I/O area (left unpatched).
  t.row({"Direct, I/O area",
         sim::Table::num(per_op([](Assembler& a, int k) {
           for (int i = 0; i < k; ++i) a.lds(16, emu::kPortB);
         })),
         "2"});

  // Direct access, heap.
  t.row({"Direct, others (heap)",
         sim::Table::num(per_op([](Assembler& a, int k) {
           for (int i = 0; i < k; ++i) a.lds(16, emu::kSramBase);
         })),
         "28"});

  // Indirect access landing in the I/O area.
  t.row({"Indirect, I/O area",
         sim::Table::num(per_op([](Assembler& a, int k) {
           a.ldi16(26, emu::kPortB);
           for (int i = 0; i < k; ++i) a.ld_x(16);
         })),
         "54"});

  // Indirect heap access (ungrouped).
  t.row({"Indirect, heap",
         sim::Table::num(per_op(
             [](Assembler& a, int k) {
               a.ldi16(26, emu::kSramBase);
               for (int i = 0; i < k; ++i) a.ld_x(16);
             },
             64)),
         "60"});

  // Indirect stack-frame access (LDD through Y at the stack top), with the
  // grouped-access optimization disabled so every access translates.
  t.row({"Indirect, stack frame",
         sim::Table::num(per_op(
             [](Assembler& a, int k) {
               a.push(16);
               a.push(16);
               a.push(16);
               a.push(16);
               a.in(28, emu::kSpl);
               a.in(29, emu::kSph);
               for (int i = 0; i < k; ++i) a.ldd_y(16, 2);
             },
             64, /*grouped_opt=*/false)),
         "47"});

  // Grouped follower: NOP-separated (leader, follower) pairs so groups
  // stay pairs; follower = pair - leader (the NOP cancels out).
  {
    const double pair = per_op(
        [](Assembler& a, int k) {
          a.push(16);
          a.push(16);
          a.push(16);
          a.push(16);
          a.in(28, emu::kSpl);
          a.in(29, emu::kSph);
          for (int i = 0; i < k; ++i) {
            a.ldd_y(16, 1);
            a.ldd_y(17, 2);
            a.nop();
          }
        },
        48);
    const double leader = per_op(
        [](Assembler& a, int k) {
          a.push(16);
          a.push(16);
          a.push(16);
          a.push(16);
          a.in(28, emu::kSpl);
          a.in(29, emu::kSph);
          for (int i = 0; i < k; ++i) {
            a.ldd_y(16, 2);
            a.nop();
          }
        },
        48, /*grouped_opt=*/false);
    t.row({"Indirect, grouped follower", sim::Table::num(pair - leader),
           "(18)"});
  }

  // PUSH/POP with stack checking (balanced pairs; half a pair each).
  t.row({"Stack operation, push/pop",
         sim::Table::num(per_op([](Assembler& a, int k) {
                           for (int i = 0; i < k; ++i) {
                             a.push(16);
                             a.pop(16);
                           }
                         }) /
                         2),
         "57"});

  // CALL/RET (half a pair each).
  t.row({"Stack operation, call/ret",
         sim::Table::num(per_op([](Assembler& a, int k) {
                           a.rjmp("main");
                           a.label("f");
                           a.ret();
                           a.label("main");
                           for (int i = 0; i < k; ++i) a.rcall("f");
                         }) /
                         2),
         "77"});

  // Program-memory address translation (LPM through the shift table).
  t.row({"Program memory (LPM)",
         sim::Table::num(per_op([](Assembler& a, int k) {
           a.rjmp("code");
           const uint16_t words[2] = {0x1234, 0x5678};
           a.dw("konst", words);
           a.label("code");
           a.ldi_label(30, "konst");
           a.add(30, 30);  // word -> byte address
           a.adc(31, 31);
           for (int i = 0; i < k; ++i) a.lpm(16);
         })),
         "376"});

  // Get/set stack pointer (each is an IN/OUT pair).
  t.row({"Get stack pointer",
         sim::Table::num(per_op([](Assembler& a, int k) {
           for (int i = 0; i < k; ++i) {
             a.in(16, emu::kSpl);
             a.in(17, emu::kSph);
           }
         })),
         "45"});
  {
    const double get_pair = per_op([](Assembler& a, int k) {
      for (int i = 0; i < k; ++i) {
        a.in(16, emu::kSpl);
        a.in(17, emu::kSph);
      }
    });
    const double both = per_op([](Assembler& a, int k) {
      for (int i = 0; i < k; ++i) {
        a.in(16, emu::kSpl);
        a.in(17, emu::kSph);
        a.out(emu::kSpl, 16);
        a.out(emu::kSph, 17);
      }
    });
    t.row({"Set stack pointer", sim::Table::num(both - get_pair), "94"});
  }

  t.row({"Stack relocation (avg)", sim::Table::num(measure_relocation()),
         "2326"});
  t.row({"Context switching, full", sim::Table::num(measure_context_switch().full),
         "2298"});

  std::cout << "\nTable II: OVERHEAD OF KEY OPERATIONS (cycles)\n\n";
  t.print();

  // Guest fast tiers (§6d) — this implementation's extension, not in the
  // paper: the same operations priced by the tiered services. "Full" is
  // the corresponding paper-mode cost from the table above.
  sim::Table ft({"Operation (fast tiers on)", "Measured", "Full"});
  ft.row({"Direct, heap (fast-direct)",
          sim::Table::num(per_op(
              [](Assembler& a, int k) {
                for (int i = 0; i < k; ++i) a.lds(16, emu::kSramBase);
              },
              64, true, /*fast_tiers=*/true)),
          "28"});
  // Straight-line re-access through an untouched pointer: the first access
  // translates at full price, the remaining k-1 coalesce.
  ft.row({"Indirect, coalesced reuse",
          sim::Table::num(per_op(
              [](Assembler& a, int k) {
                a.ldi16(26, emu::kSramBase);
                for (int i = 0; i < k; ++i) a.ld_x(16);
              },
              256, true, /*fast_tiers=*/true)),
          "60"});
  // Maximal collapsed runs (4 pushes, 4 pops): one leader trap per run,
  // per-member margin checks executed virtually inside it.
  ft.row({"Stack push/pop, collapsed run",
          sim::Table::num(per_op(
                              [](Assembler& a, int k) {
                                for (int i = 0; i < k; ++i) {
                                  for (int j = 0; j < 4; ++j) a.push(16);
                                  for (int j = 0; j < 4; ++j) a.pop(16);
                                }
                              },
                              32, true, /*fast_tiers=*/true) /
                          8),
          "57"});

  std::cout << "\nFast-tier service costs (§6d extension; per operation)\n\n";
  ft.print();
}

// --- google-benchmark timers for host-side component throughput -------------

void BM_EmulatorLfsr(benchmark::State& state) {
  const auto img = apps::lfsr_program(2000);
  for (auto _ : state) {
    emu::Machine m;
    m.load_flash(img.code);
    m.reset(img.entry);
    benchmark::DoNotOptimize(m.run(10'000'000));
  }
}
BENCHMARK(BM_EmulatorLfsr);

void BM_RewriteAndLink(benchmark::State& state) {
  const auto img = apps::crc_program(1);
  for (auto _ : state) {
    rw::Linker linker;
    linker.add(img);
    benchmark::DoNotOptimize(linker.link());
  }
}
BENCHMARK(BM_RewriteAndLink);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
