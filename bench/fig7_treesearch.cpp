// Figure 7: stack versatility under the binary-tree search workload — for
// each tree size, the maximal number of concurrently schedulable search
// tasks (plus one data-feeding task), the number of stack relocations, and
// the average stack allocation per task, which stays well below each
// task's worst-case need.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/treesearch.hpp"
#include "baselines/native_runner.hpp"
#include "host/parallel.hpp"
#include "sim/harness.hpp"

using namespace sensmart;

namespace {

std::vector<assembler::Image> make_workload(uint16_t nodes, int n_search) {
  std::vector<assembler::Image> images;
  images.push_back(apps::data_feed_program(6, 64));
  for (int i = 0; i < n_search; ++i) {
    apps::TreeSearchParams p;
    p.nodes_per_tree = nodes;
    p.trees = 1;
    p.searches = 32;
    p.seed = static_cast<uint16_t>(0x3131 + 0x1D0B * i);
    images.push_back(apps::tree_search_program(p));
  }
  return images;
}

sim::SystemRun run_workload(uint16_t nodes, int n_search) {
  sim::RunSpec spec;
  spec.kernel.initial_stack = 96;
  spec.max_cycles = 2'000'000'000ULL;
  return sim::run_system(make_workload(nodes, n_search), spec);
}

bool all_completed(const sim::SystemRun& r, size_t expected) {
  return r.admitted == expected && r.stop == emu::StopReason::Halted &&
         r.completed() == expected && r.killed() == 0;
}

// One table row for a given tree size: worst-case need from a native
// probe run, plus the serial max-tasks search (it early-exits at the
// first failing task count, so it stays sequential within the row).
std::vector<std::string> compute_row(uint16_t nodes) {
  apps::TreeSearchParams probe;
  probe.nodes_per_tree = nodes;
  probe.trees = 1;
  probe.searches = 32;
  probe.seed = 0x3131;
  const auto nat = base::run_native(apps::tree_search_program(probe));
  const int max_depth = nat.host_out.size() == 2 ? nat.host_out[1] : 0;
  const int worst_need = max_depth * 15 + 48;

  int max_tasks = 0;
  sim::SystemRun best;
  for (int n = 1; n <= 40; ++n) {
    auto r = run_workload(nodes, n);
    if (!all_completed(r, size_t(n) + 1)) break;
    max_tasks = n;
    best = std::move(r);
  }
  if (max_tasks == 0) {
    return {sim::Table::num(uint64_t(nodes)), "0", "-", "-",
            sim::Table::num(uint64_t(worst_need)),
            sim::Table::num(uint64_t(max_depth))};
  }
  return {sim::Table::num(uint64_t(nodes)),
          sim::Table::num(uint64_t(max_tasks)),
          sim::Table::num(uint64_t(best.kernel_stats.relocations)),
          sim::Table::num(best.avg_stack_alloc, 1),
          sim::Table::num(uint64_t(worst_need)),
          sim::Table::num(uint64_t(max_depth))};
}

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
    } else {
      std::cerr << "usage: fig7_treesearch [--jobs N]\n";
      return 2;
    }
  }

  std::cout << "Figure 7: BINARY TREE SEARCH IN SENSMART WITH INCREASING "
               "TREE SIZES\n(1 data-feeding task + N recursive search "
               "tasks; 15 B per recursion level)\n\n";
  sim::Table t({"Nodes/tree", "Max tasks", "Relocations", "AvgStack(B)",
                "WorstNeed(B)", "MaxDepth"},
               13);

  // Each tree size is an independent deterministic sweep row; compute
  // them in parallel and emit in row order, so the table is identical
  // for any --jobs value.
  std::vector<uint16_t> sizes;
  for (uint16_t nodes = 8; nodes <= 44; nodes += 4) sizes.push_back(nodes);
  const auto rows = host::sweep_collect<std::vector<std::string>>(
      sizes.size(), host::effective_jobs(jobs, sizes.size()),
      [&](std::size_t i) { return compute_row(sizes[i]); });
  for (const auto& row : rows) t.row(row);
  t.print();
  std::cout
      << "\nExpected shape (paper Fig. 7): larger trees increase both heap\n"
         "use and recursion depth, so the maximal number of schedulable\n"
         "search tasks falls; relocations stay bounded (<50 in the paper's\n"
         "runs), and the average stack allocation per task remains below\n"
         "the worst-case need — tasks run on less stack than they would\n"
         "have to reserve statically.\n";
  return 0;
}
