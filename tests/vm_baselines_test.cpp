// Maté-style VM bytecode semantics and the baseline allocation models.
#include <gtest/gtest.h>

#include "baselines/features.hpp"
#include "baselines/liteos_model.hpp"
#include "baselines/mantis_model.hpp"
#include "emu/io_map.hpp"
#include "vm/vm.hpp"

namespace sensmart {
namespace {

using vm::Bc;
using vm::MateVm;
using vm::VmAssembler;

vm::VmResult run(VmAssembler& a, uint64_t budget = 1'000'000) {
  MateVm v(a.finish());
  return v.run(budget);
}

TEST(Vm, ArithmeticAndOutput) {
  VmAssembler a;
  a.push16(1000);
  a.push16(234);
  a.op(Bc::Add);
  a.op(Bc::Out);  // 1234 & 0xFF = 0xD2
  a.push8(10);
  a.op(Bc::Sub1);
  a.op(Bc::Out);
  a.push16(500);
  a.push16(100);
  a.op(Bc::Sub);
  a.op(Bc::Out);  // 400 & 0xFF = 0x90
  a.op(Bc::Halt);
  const auto r = run(a);
  ASSERT_TRUE(r.halted) << r.error;
  EXPECT_EQ(r.out, (std::vector<uint8_t>{0xD2, 9, 0x90}));
}

TEST(Vm, VariablesAndLoop) {
  VmAssembler a;
  a.push16(5);
  a.store(0);
  a.push8(0);
  a.store(1);
  a.label("top");
  a.load(1);
  a.push8(2);
  a.op(Bc::Add);
  a.store(1);
  a.load(0);
  a.op(Bc::Sub1);
  a.op(Bc::Dup);
  a.store(0);
  a.jnz("top");
  a.load(1);
  a.op(Bc::Out);  // 5 iterations * 2 = 10
  a.op(Bc::Halt);
  const auto r = run(a);
  ASSERT_TRUE(r.halted) << r.error;
  EXPECT_EQ(r.out, std::vector<uint8_t>{10});
}

TEST(Vm, SleepUntilAdvancesIdleTime) {
  VmAssembler a;
  a.op(Bc::GetClock);
  a.push16(100);
  a.op(Bc::Add);
  a.op(Bc::SleepUntil);
  a.op(Bc::Halt);
  const auto r = run(a);
  ASSERT_TRUE(r.halted);
  EXPECT_GE(r.idle_cycles, 90u * emu::kTimer3Prescale);
}

TEST(Vm, SleepUntilPastTargetIsNoOp) {
  VmAssembler a;
  a.push16(0);  // the clock is already past 0... (delta <= 0)
  a.op(Bc::SleepUntil);
  a.op(Bc::Halt);
  const auto r = run(a);
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(r.idle_cycles, 0u);
}

TEST(Vm, CostsAccumulatePerOpcode) {
  VmAssembler a;
  a.push8(1);   // dispatch + simple
  a.op(Bc::Drop);
  a.op(Bc::Halt);
  vm::VmCosts costs;
  MateVm v(a.finish(), costs);
  const auto r = v.run(100000);
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(r.ops_executed, 3u);
  EXPECT_EQ(r.active_cycles, 3 * costs.dispatch + 2 * costs.op_simple);
}

TEST(Vm, BadOpcodeAndPcEscapeAreErrors) {
  MateVm v(std::vector<uint8_t>{0xEE});
  const auto r = v.run(1000);
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.error, "bad opcode");

  MateVm v2(std::vector<uint8_t>{uint8_t(Bc::PushC8), 1, uint8_t(Bc::Drop)});
  const auto r2 = v2.run(1000);
  EXPECT_FALSE(r2.halted);
  EXPECT_EQ(r2.error, "pc out of range");
}

TEST(Vm, BudgetExhaustionStopsCleanly) {
  VmAssembler a;
  a.label("x");
  a.jmp("x");
  MateVm v(a.finish());
  const auto r = v.run(5000);
  EXPECT_FALSE(r.halted);
  EXPECT_TRUE(r.error.empty());
  EXPECT_GE(r.cycles, 5000u);
}

// --- Baseline models ------------------------------------------------------------

TEST(Baselines, FeatureMatrixShape) {
  const auto& m = base::table1();
  EXPECT_EQ(m.systems.size(), 7u);
  EXPECT_EQ(m.features.size(), 8u);
  for (const auto& row : m.values) EXPECT_EQ(row.size(), m.systems.size());
  // SenSmart is the only system with stack relocation.
  const auto& reloc = m.values.back();
  for (size_t s = 0; s + 1 < m.systems.size(); ++s)
    EXPECT_EQ(reloc[s], "No");
  EXPECT_EQ(reloc.back(), "Yes");
}

TEST(Baselines, LiteOsModelMath) {
  base::LiteOsModel lo;
  EXPECT_EQ(lo.app_space(), 2096);
  // 100 B heap + 200 B declared stack per task: 2096 / 300 = 6 tasks.
  EXPECT_EQ(lo.max_schedulable_tasks(100, 200), 6);
  EXPECT_EQ(lo.max_schedulable_tasks(0, 2096), 1);
  EXPECT_EQ(lo.max_schedulable_tasks(0, 2097), 0);
}

TEST(Baselines, MantisModelMath) {
  base::MantisModel mo;
  EXPECT_EQ(mo.app_space(), 3596);
  EXPECT_EQ(mo.max_schedulable_tasks(100, 200), 11);
}

TEST(Baselines, LiteOsSchedulesFewerThanMantisForSameWorkload) {
  // More static kernel data -> fewer tasks; part of the Fig. 8 setup.
  base::LiteOsModel lo;
  base::MantisModel mo;
  EXPECT_LT(lo.max_schedulable_tasks(150, 180),
            mo.max_schedulable_tasks(150, 180));
}

}  // namespace
}  // namespace sensmart
