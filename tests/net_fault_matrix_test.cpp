// Fault-matrix conformance: sweep scripted fault kinds {drop, duplicate,
// reorder, corrupt} against scripted positions {first packet, last chunk,
// every 3rd packet} on the base station's links and assert the terminal
// state of every cell. Single scripted faults are always recoverable — the
// protocol must end in a verified, byte-identical install; total-loss
// columns must end in a clean abort with nothing activated.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "apps/treesearch.hpp"
#include "net/image_codec.hpp"
#include "net/netsim.hpp"

namespace sensmart {
namespace {

using net::FaultAction;

std::vector<uint8_t> small_image_blob() {
  apps::TreeSearchParams p;
  p.nodes_per_tree = 8;
  p.trees = 1;
  p.searches = 8;
  p.seed = 0x3131;
  rw::Linker linker(rw::RewriteOptions{}, true);
  linker.add(apps::data_feed_program(4, 32));
  linker.add(apps::tree_search_program(p));
  return net::serialize_system(linker.link());
}

enum class Position { First, LastChunk, EveryThird };

const char* name(FaultAction a) {
  switch (a) {
    case FaultAction::Drop: return "drop";
    case FaultAction::Duplicate: return "duplicate";
    case FaultAction::Reorder: return "reorder";
    case FaultAction::Corrupt: return "corrupt";
    default: return "none";
  }
}
const char* name(Position p) {
  switch (p) {
    case Position::First: return "first";
    case Position::LastChunk: return "last-chunk";
    default: return "every-3rd";
  }
}

// Scripted policy for one matrix cell: inject `fault` at `pos` on packets
// transmitted by the base station (from == 0); receiver control traffic is
// left alone. "Last chunk" fires once per link, on the first transmission
// of the final Data chunk.
net::FaultPolicy cell_policy(FaultAction fault, Position pos,
                             uint16_t total_chunks) {
  auto fired = std::make_shared<std::map<std::pair<size_t, size_t>, bool>>();
  return [=](size_t from, size_t to, uint64_t link_tx_index,
             std::span<const uint8_t> packet) {
    if (from != 0) return FaultAction::None;
    switch (pos) {
      case Position::First:
        return link_tx_index == 0 ? fault : FaultAction::None;
      case Position::EveryThird:
        return link_tx_index % 3 == 2 ? fault : FaultAction::None;
      case Position::LastChunk: {
        // Data frame carrying the final chunk: type at [1], seq LE at [3,4].
        if (packet.size() < 5) return FaultAction::None;
        if (packet[1] != uint8_t(net::FrameType::Data)) return FaultAction::None;
        const uint16_t seq = uint16_t(packet[3] | (packet[4] << 8));
        if (seq + 1 != total_chunks) return FaultAction::None;
        bool& f = (*fired)[{from, to}];
        if (f) return FaultAction::None;
        f = true;
        return fault;
      }
    }
    return FaultAction::None;
  };
}

struct Cell {
  FaultAction fault;
  Position pos;
};

class NetFaultMatrix : public ::testing::TestWithParam<Cell> {};

TEST_P(NetFaultMatrix, CellEndsInVerifiedInstall) {
  const auto blob = small_image_blob();
  net::NetConfig cfg;
  cfg.nodes = 2;
  cfg.max_cycles = 2'000'000'000ULL;
  net::NetSim sim(cfg, blob);
  const uint16_t total =
      uint16_t((blob.size() + cfg.proto.chunk_payload - 1) /
               cfg.proto.chunk_payload);
  sim.set_fault_policy(cell_policy(GetParam().fault, GetParam().pos, total));

  const auto r = sim.disseminate();
  const std::string cell =
      std::string(name(GetParam().fault)) + " x " + name(GetParam().pos);
  EXPECT_TRUE(r.all_acked) << cell;
  EXPECT_FALSE(r.aborted) << cell;
  ASSERT_EQ(r.complete_nodes(), cfg.nodes) << cell;
  for (size_t id = 1; id <= cfg.nodes; ++id)
    EXPECT_EQ(sim.node_blob(id), blob) << cell << " node " << id;

  // The injected fault classes must be visible in the medium statistics.
  switch (GetParam().fault) {
    case FaultAction::Drop: EXPECT_GT(r.medium.dropped, 0u) << cell; break;
    case FaultAction::Duplicate:
      EXPECT_GT(r.medium.duplicated, 0u) << cell;
      break;
    case FaultAction::Reorder: EXPECT_GT(r.medium.reordered, 0u) << cell; break;
    case FaultAction::Corrupt:
      EXPECT_GT(r.medium.corrupted, 0u) << cell;
      break;
    default: break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cells, NetFaultMatrix,
    ::testing::Values(Cell{FaultAction::Drop, Position::First},
                      Cell{FaultAction::Drop, Position::LastChunk},
                      Cell{FaultAction::Drop, Position::EveryThird},
                      Cell{FaultAction::Duplicate, Position::First},
                      Cell{FaultAction::Duplicate, Position::LastChunk},
                      Cell{FaultAction::Duplicate, Position::EveryThird},
                      Cell{FaultAction::Reorder, Position::First},
                      Cell{FaultAction::Reorder, Position::LastChunk},
                      Cell{FaultAction::Reorder, Position::EveryThird},
                      Cell{FaultAction::Corrupt, Position::First},
                      Cell{FaultAction::Corrupt, Position::LastChunk},
                      Cell{FaultAction::Corrupt, Position::EveryThird}),
    [](const ::testing::TestParamInfo<Cell>& info) {
      std::string n = std::string(name(info.param.fault)) + "_" +
                      name(info.param.pos);
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

// Total-loss columns: the protocol must give up cleanly — no node ever
// observes (let alone activates) a partial image.
TEST(NetFaultMatrixEdge, AllFramesDroppedEndsInCleanAbort) {
  const auto blob = small_image_blob();
  net::NetConfig cfg;
  cfg.nodes = 2;
  cfg.max_cycles = 30'000'000ULL;
  net::NetSim sim(cfg, blob);
  sim.set_fault_policy([](size_t, size_t, uint64_t, std::span<const uint8_t>) {
    return FaultAction::Drop;
  });
  const auto r = sim.disseminate();
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(r.complete_nodes(), 0u);
  for (size_t id = 1; id <= cfg.nodes; ++id)
    EXPECT_TRUE(sim.node_blob(id).empty());
}

// Acks corrupted on the way back: every node completes and verifies, but
// the base can never confirm — a clean "completed but unacknowledged"
// abort, with the installed images still byte-identical.
TEST(NetFaultMatrixEdge, CorruptedAcksLeaveNodesCompleteButUnacked) {
  const auto blob = small_image_blob();
  net::NetConfig cfg;
  cfg.nodes = 2;
  cfg.max_cycles = 400'000'000ULL;
  net::NetSim sim(cfg, blob);
  sim.set_fault_policy([](size_t from, size_t, uint64_t,
                          std::span<const uint8_t>) {
    return from == 0 ? FaultAction::None : FaultAction::Corrupt;
  });
  const auto r = sim.disseminate();
  EXPECT_TRUE(r.aborted);
  EXPECT_FALSE(r.all_acked);
  EXPECT_EQ(r.complete_nodes(), cfg.nodes);
  for (size_t id = 1; id <= cfg.nodes; ++id)
    EXPECT_EQ(sim.node_blob(id), blob);
}

}  // namespace
}  // namespace sensmart
