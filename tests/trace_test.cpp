// Kernel event trace: ordering, content and capacity behaviour.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/treesearch.hpp"
#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "kernel/kernel.hpp"
#include "rewriter/linker.hpp"

namespace sensmart::kern {
namespace {

using assembler::Assembler;

TEST(Trace, RecordsLifecycleInOrder) {
  Assembler a("t");
  a.halt(3);
  Assembler b("spin");
  b.label("x");
  b.rjmp("x");

  rw::Linker linker;
  linker.add(a.finish());
  linker.add(b.finish());
  const auto sys = linker.link();

  emu::Machine m;
  Kernel k(m, sys);
  KernelTrace trace;
  k.set_trace(&trace);
  k.admit_all();
  ASSERT_TRUE(k.start());
  k.run(1'000'000);

  const auto& ev = trace.events();
  ASSERT_GE(ev.size(), 3u);
  EXPECT_EQ(ev[0].kind, EventKind::Start);
  EXPECT_EQ(ev[0].a, 2);
  // Cycle stamps are monotone.
  for (size_t i = 1; i < ev.size(); ++i)
    EXPECT_GE(ev[i].cycle, ev[i - 1].cycle);
  // Task 0 finished with exit code 3.
  EXPECT_EQ(trace.count(EventKind::TaskDone), 1u);
  bool found = false;
  for (const auto& e : ev)
    if (e.kind == EventKind::TaskDone) {
      EXPECT_EQ(e.a, 0);
      EXPECT_EQ(e.b, 3);
      found = true;
    }
  EXPECT_TRUE(found);
  EXPECT_GE(trace.count(EventKind::ContextSwitch), 1u);
}

TEST(Trace, RecordsRelocations) {
  std::vector<assembler::Image> images;
  for (int i = 0; i < 2; ++i) {
    apps::TreeSearchParams p;
    p.nodes_per_tree = 16;
    p.trees = 2;
    p.searches = 16;
    p.seed = uint16_t(0x9090 + i);
    images.push_back(apps::tree_search_program(p));
  }
  rw::Linker linker;
  for (const auto& img : images) linker.add(img);
  const auto sys = linker.link();

  emu::Machine m;
  KernelConfig cfg;
  cfg.initial_stack = 40;
  Kernel k(m, sys, cfg);
  KernelTrace trace;
  k.set_trace(&trace);
  k.admit_all();
  ASSERT_TRUE(k.start());
  ASSERT_EQ(k.run(500'000'000), emu::StopReason::Halted);

  EXPECT_EQ(trace.count(EventKind::Relocation), k.stats().relocations);
  // Dump renders without crashing and mentions relocations.
  std::ostringstream os;
  trace.dump(os);
  EXPECT_NE(os.str().find("relocate"), std::string::npos);
}

TEST(Trace, CapacityBoundsGrowth) {
  Assembler spin("spin");
  spin.label("x");
  spin.rjmp("x");
  const auto img = spin.finish();
  rw::Linker linker;
  linker.add(img);
  linker.add(img);
  const auto sys = linker.link();

  emu::Machine m;
  Kernel k(m, sys);
  KernelTrace trace(8);  // tiny capacity
  k.set_trace(&trace);
  k.admit_all();
  ASSERT_TRUE(k.start());
  k.run(30'000'000);
  EXPECT_EQ(trace.events().size(), 8u);
  EXPECT_GT(trace.dropped(), 0u);
}

TEST(Trace, RendersKillReasonNames) {
  // to_string(KillReason) covers every enumerator.
  EXPECT_STREQ(to_string(KillReason::None), "none");
  EXPECT_STREQ(to_string(KillReason::InvalidAccess), "invalid-access");
  EXPECT_STREQ(to_string(KillReason::OutOfStackMemory),
               "out-of-stack-memory");
  EXPECT_STREQ(to_string(KillReason::BadJump), "bad-jump");
  EXPECT_STREQ(to_string(KillReason::Injected), "injected");
  EXPECT_STREQ(to_string(KillReason::Watchdog), "watchdog");

  // A dumped TaskKilled event names its reason, not a raw number.
  KernelTrace trace;
  trace.record(1'000, EventKind::TaskKilled, 2,
               uint16_t(KillReason::OutOfStackMemory));
  trace.record(2'000, EventKind::TaskKilled, 3,
               uint16_t(KillReason::Watchdog));
  std::ostringstream os;
  trace.dump(os);
  EXPECT_NE(os.str().find("killed"), std::string::npos);
  EXPECT_NE(os.str().find("task 2 reason out-of-stack-memory"),
            std::string::npos);
  EXPECT_NE(os.str().find("task 3 reason watchdog"), std::string::npos);
}

TEST(Trace, RendersRecoveryEvents) {
  EXPECT_STREQ(to_string(EventKind::TaskRestarted), "restart");
  EXPECT_STREQ(to_string(EventKind::TaskQuarantined), "quarantine");
  EXPECT_STREQ(to_string(EventKind::WatchdogFired), "watchdog");

  KernelTrace trace;
  trace.record(1'000, EventKind::TaskRestarted, 1, 2);
  trace.record(2'000, EventKind::TaskQuarantined, 1, 3);
  trace.record(3'000, EventKind::WatchdogFired, 4, 1);
  std::ostringstream os;
  trace.dump(os);
  EXPECT_NE(os.str().find("task 1 (failure streak 2)"), std::string::npos);
  EXPECT_NE(os.str().find("task 1 after 3 restarts"), std::string::npos);
  EXPECT_NE(os.str().find("task 4 (fire 1)"), std::string::npos);
}

TEST(Trace, KilledTaskRendersInEndToEndDump) {
  // An actual kill (injected at a service boundary) renders with its
  // reason in the dumped trace.
  Assembler a("victim");
  a.ldi16(24, 500);
  a.label("l");
  a.push(2);
  a.pop(2);
  a.dec16(24);
  a.brne("l");
  a.halt(0);
  rw::Linker linker;
  linker.add(a.finish());
  const auto sys = linker.link();

  emu::Machine m;
  KernelConfig cfg;
  cfg.injected_kills = {{100, 0}};
  Kernel k(m, sys, cfg);
  KernelTrace trace;
  k.set_trace(&trace);
  k.admit_all();
  ASSERT_TRUE(k.start());
  k.run(50'000'000);

  ASSERT_EQ(trace.count(EventKind::TaskKilled), 1u);
  std::ostringstream os;
  trace.dump(os);
  EXPECT_NE(os.str().find("task 0 reason injected"), std::string::npos);
}

TEST(Trace, DetachedTraceCostsNothing) {
  Assembler a("t");
  a.ldi16(20, 2000);
  a.label("l");
  a.dec16(20);
  a.brne("l");
  a.halt(0);
  const auto img = a.finish();

  auto run_once = [&](bool traced) {
    rw::Linker linker;
    linker.add(img);
    const auto sys = linker.link();
    emu::Machine m;
    Kernel k(m, sys);
    KernelTrace trace;
    if (traced) k.set_trace(&trace);
    k.admit(0);
    k.start();
    k.run(10'000'000);
    return m.cycles();
  };
  EXPECT_EQ(run_once(false), run_once(true));  // zero emulated cost
}

}  // namespace
}  // namespace sensmart::kern
