// The seven kernel benchmarks must run to completion natively, and their
// naturalized executions under SenSmart must produce bit-identical host
// output (observational equivalence of the rewriting).
#include <gtest/gtest.h>

#include "apps/benchmarks.hpp"
#include "emu/machine.hpp"
#include "kernel/kernel.hpp"
#include "rewriter/linker.hpp"

namespace sensmart {
namespace {

class BenchmarkEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkEquivalence, NativeAndSenSmartAgree) {
  const assembler::Image img = apps::build_benchmark(GetParam());

  emu::Machine native;
  native.load_flash(img.code);
  native.reset(img.entry);
  ASSERT_EQ(native.run(400'000'000), emu::StopReason::Halted)
      << "native run did not finish";
  const auto expected = native.dev().host_out();
  ASSERT_FALSE(expected.empty());

  rw::Linker linker;
  linker.add(img);
  rw::LinkedSystem sys = linker.link();
  emu::Machine m;
  kern::Kernel k(m, sys);
  ASSERT_TRUE(k.admit(0).has_value());
  ASSERT_TRUE(k.start());
  ASSERT_EQ(k.run(2'000'000'000), emu::StopReason::Halted)
      << "SenSmart run did not finish";
  EXPECT_EQ(k.tasks()[0].state, kern::TaskState::Done);
  EXPECT_EQ(k.tasks()[0].host_out, expected);
  EXPECT_TRUE(k.check_invariants().empty()) << k.check_invariants();

  // Code inflation stays within the paper's envelope (Fig. 4: <= 200%,
  // i.e. naturalized total at most 3x native... the paper plots total size
  // within 200% of native meaning <= 2x overhead).
  const auto& pi = sys.programs[0];
  EXPECT_LE(pi.inflation(), 3.0) << "inflation " << pi.inflation();
  EXPECT_GE(pi.inflation(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkEquivalence,
                         ::testing::ValuesIn(apps::benchmark_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace sensmart
