// Multi-hop mesh dissemination (DESIGN.md §10): spatial topology
// construction (placement, link quality, BFS hops, the Random
// connectivity fix-up), the mesh frame codecs (payload-length
// discriminated, star encodings untouched), the deterministic
// capture-model collision check in the Medium, end-to-end multi-hop
// convergence on line/grid placements, and peer-to-peer chunk serving —
// a node out of the base's radio range installs a byte-identical image
// fed entirely by a peer, with the base never retransmitting for it.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/treesearch.hpp"
#include "emu/machine.hpp"
#include "net/frame.hpp"
#include "net/image_codec.hpp"
#include "net/medium.hpp"
#include "net/netsim.hpp"
#include "net/topology.hpp"
#include "rewriter/linker.hpp"

namespace sensmart {
namespace {

std::vector<uint8_t> test_blob() {
  apps::TreeSearchParams p;
  p.nodes_per_tree = 8;
  p.trees = 1;
  p.searches = 32;
  p.seed = 0x3131;
  rw::Linker linker(rw::RewriteOptions{}, true);
  linker.add(apps::data_feed_program(6, 64));
  linker.add(apps::tree_search_program(p));
  return net::serialize_system(linker.link());
}

// --- Topology construction --------------------------------------------------

TEST(Topology, StarSpecBuildsNoMesh) {
  net::TopologySpec spec;  // default kind = Star
  EXPECT_FALSE(spec.mesh());
  const net::Topology t = net::build_topology(spec, 5, 1);
  EXPECT_FALSE(t.mesh);
  EXPECT_TRUE(t.quality.empty());
  EXPECT_TRUE(t.neighbors.empty());
}

TEST(Topology, LineLinksAdjacentNodesOnly) {
  net::TopologySpec spec;
  spec.kind = net::TopologyKind::Line;
  const net::Topology t = net::build_topology(spec, 5, 1);
  ASSERT_TRUE(t.mesh);
  ASSERT_EQ(t.count, 5u);
  // Node k sits at (k, 0) spacings; the default range (1.5 spacings)
  // links adjacent nodes at full quality and nothing further.
  EXPECT_EQ(t.neighbors[0], (std::vector<uint16_t>{1}));
  EXPECT_EQ(t.neighbors[2], (std::vector<uint16_t>{1, 3}));
  EXPECT_EQ(t.link_quality(0, 1), 100u);
  EXPECT_EQ(t.link_quality(0, 2), 0u);
  EXPECT_FALSE(t.linked(0, 2));
  EXPECT_FALSE(t.linked(1, 1));  // no self-links
  // BFS hops: the line is the worst-case diameter.
  const std::vector<uint16_t> want = {0, 1, 2, 3, 4};
  EXPECT_EQ(t.hops, want);
  EXPECT_EQ(t.max_hops(), 4u);
}

TEST(Topology, GridLinksEightNeighborhoodWithDiagonalFalloff) {
  net::TopologySpec spec;
  spec.kind = net::TopologyKind::Grid;
  const net::Topology t = net::build_topology(spec, 10, 1);
  ASSERT_TRUE(t.mesh);
  // 10 nodes -> 4-wide row-major grid, base at the corner: id 5 sits at
  // (1, 1), diagonally adjacent to the base.
  EXPECT_EQ(t.link_quality(0, 1), 100u);  // one spacing: full quality
  const uint8_t diag = t.link_quality(0, 5);
  EXPECT_GT(diag, 0u);
  EXPECT_LT(diag, 100u);  // farther than a spacing: reduced quality
  EXPECT_GE(diag, spec.quality_floor_pct);
  EXPECT_FALSE(t.linked(0, 2));  // two spacings: out of range
  // Hop counts follow the 8-neighborhood (Chebyshev) distance.
  EXPECT_EQ(t.hops[0], 0u);
  EXPECT_EQ(t.hops[5], 1u);
  EXPECT_EQ(t.hops[2], 2u);
  // Quality matrix is symmetric.
  for (size_t a = 0; a < t.count; ++a)
    for (size_t b = 0; b < t.count; ++b)
      EXPECT_EQ(t.link_quality(a, b), t.link_quality(b, a));
}

TEST(Topology, RandomPlacementIsSeededAndAlwaysConnected) {
  net::TopologySpec spec;
  spec.kind = net::TopologyKind::Random;
  const net::Topology a = net::build_topology(spec, 20, 7);
  const net::Topology b = net::build_topology(spec, 20, 7);
  EXPECT_EQ(a.x, b.x);  // pure function of (spec, count, seed)
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.hops, b.hops);
  // The connectivity fix-up guarantees every node a BFS path to the base.
  for (uint16_t h : a.hops) EXPECT_NE(h, net::kUnreachableHop);
  // A different stream tag moves the placement.
  net::TopologySpec other = spec;
  other.seed = 1;
  const net::Topology c = net::build_topology(other, 20, 7);
  EXPECT_NE(a.x, c.x);
}

// --- Mesh frame codecs ------------------------------------------------------

TEST(MeshFrame, SummaryCarriesSenderAndHop) {
  net::SummaryInfo info;
  info.total_chunks = 129;
  info.image_bytes = 4112;
  info.image_crc = 0xDEADBEEF;
  info.chunk_payload = 32;
  const net::Frame f = net::make_mesh_summary(3, info, 12, 2);
  const auto back = net::parse_summary(f);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->has_sender);
  EXPECT_EQ(back->sender, 12u);
  EXPECT_EQ(f.seq, 2u);  // sender hop rides in seq
  EXPECT_EQ(back->total_chunks, info.total_chunks);
  EXPECT_EQ(back->image_bytes, info.image_bytes);
  EXPECT_EQ(back->image_crc, info.image_crc);
  EXPECT_EQ(back->chunk_payload, info.chunk_payload);
  // The star encoding is payload-length distinguishable and unchanged.
  const auto star = net::parse_summary(net::make_summary(3, info));
  ASSERT_TRUE(star.has_value());
  EXPECT_FALSE(star->has_sender);
}

TEST(MeshFrame, NackRoundTripsTargetAndSolicitation) {
  const std::vector<uint16_t> missing = {3, 7, 100};
  const net::Frame f = net::make_mesh_nack(3, 9, missing, 4, 3);
  const auto back = net::parse_mesh_nack(f);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->missing, missing);
  EXPECT_EQ(back->target, 4u);
  EXPECT_EQ(back->hop, 3u);
  EXPECT_EQ(f.seq, 9u);  // sender id, as in star mode
  // Empty missing list + kNackAnyTarget: the post-reboot solicitation.
  const auto any = net::parse_mesh_nack(
      net::make_mesh_nack(3, 9, {}, net::kNackAnyTarget, 0xFFFF));
  ASSERT_TRUE(any.has_value());
  EXPECT_TRUE(any->missing.empty());
  EXPECT_EQ(any->target, net::kNackAnyTarget);
  // A star Nack has no mesh fields.
  EXPECT_FALSE(net::parse_mesh_nack(net::make_nack(3, 9, missing)));
}

TEST(MeshFrame, AckPreservesOriginThroughRelays) {
  const net::Frame f = net::make_mesh_ack(3, 21, 5, 1);
  EXPECT_EQ(f.seq, 21u);  // origin, exactly as in star mode
  const auto back = net::parse_mesh_ack(f);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->relayer, 5u);
  EXPECT_EQ(back->hop, 1u);
}

// --- Capture-model collisions in the Medium ---------------------------------

net::Topology line_topology(size_t count) {
  net::TopologySpec spec;
  spec.kind = net::TopologyKind::Line;
  return net::build_topology(spec, count, 1);
}

TEST(MeshMedium, OverlappingTransmissionsCaptureTheFirstToComplete) {
  // base(0) - 1 - 2 on a line: node 1 hears both ends. Two overlapping
  // transmissions; the one completing first is captured, the other is
  // destroyed at the shared receiver. No randomness is consumed.
  emu::Machine a, b, c;
  net::Medium medium(net::LinkParams{}, 1);
  medium.attach(&a.dev());
  medium.attach(&b.dev());
  medium.attach(&c.dev());
  medium.set_topology(line_topology(3));
  const std::vector<uint8_t> p1{1, 2, 3, 4};
  const std::vector<uint8_t> p2{5, 6, 7, 8, 9};

  medium.note_tx(0, 10'000, 20'000);
  medium.note_tx(2, 12'000, 26'000);
  medium.broadcast(0, p1, 20'000);  // completes first: captured at node 1
  medium.broadcast(2, p2, 26'000);  // destroyed at node 1
  medium.flush(1'000'000);
  b.dev().sync(1'000'000);

  EXPECT_EQ(medium.stats().collisions, 1u);
  EXPECT_EQ(b.dev().rx_delivered(), p1.size());
}

TEST(MeshMedium, HalfDuplexReceiverHearsNothingWhileTransmitting) {
  emu::Machine a, b, c;
  net::Medium medium(net::LinkParams{}, 1);
  medium.attach(&a.dev());
  medium.attach(&b.dev());
  medium.attach(&c.dev());
  medium.set_topology(line_topology(3));
  const std::vector<uint8_t> pkt{1, 2, 3};

  // Node 1 transmits over the whole window the base's frame is on the
  // air, so the base's delivery to node 1 is destroyed even though node
  // 1's own transmission completes later.
  medium.note_tx(0, 10'000, 14'000);
  medium.note_tx(1, 8'000, 30'000);
  medium.broadcast(0, pkt, 14'000);
  medium.flush(1'000'000);
  b.dev().sync(1'000'000);

  EXPECT_EQ(medium.stats().collisions, 1u);
  EXPECT_EQ(b.dev().rx_delivered(), 0u);
}

TEST(MeshMedium, OutOfRangeNodesAreNeverOffered) {
  emu::Machine a, b, c;
  net::Medium medium(net::LinkParams{}, 1);
  medium.attach(&a.dev());
  medium.attach(&b.dev());
  medium.attach(&c.dev());
  medium.set_topology(line_topology(3));
  const std::vector<uint8_t> pkt{7, 7};

  medium.note_tx(0, 10'000, 12'000);
  medium.broadcast(0, pkt, 12'000);  // neighbors of the base: node 1 only
  medium.flush(1'000'000);
  b.dev().sync(1'000'000);
  c.dev().sync(1'000'000);

  EXPECT_EQ(medium.stats().packets_offered, 1u);
  EXPECT_EQ(b.dev().rx_delivered(), pkt.size());
  EXPECT_EQ(c.dev().rx_delivered(), 0u);
}

// --- End-to-end multi-hop convergence ---------------------------------------

net::NetConfig mesh_config(net::TopologyKind kind, size_t nodes,
                           uint32_t drop_pct) {
  net::NetConfig cfg;
  cfg.nodes = nodes;
  cfg.link.drop_pct = drop_pct;
  cfg.chaos_seed = 0x5EED;
  cfg.max_cycles = 8'000'000'000ULL;
  cfg.topo.kind = kind;
  cfg.proto.node_give_up_probes = 0;
  return cfg;
}

TEST(MeshDissemination, LineConvergesAcrossFourHops) {
  const auto blob = test_blob();
  net::NetSim sim(mesh_config(net::TopologyKind::Line, 4, 10), blob);
  const auto r = sim.disseminate();
  ASSERT_TRUE(r.all_acked);
  EXPECT_EQ(r.complete_nodes(), 4u);
  for (size_t id = 1; id <= 4; ++id)
    EXPECT_EQ(sim.node_blob(id), blob) << "node " << id;
  // Every node past the first is out of the base's range: the whole tail
  // of the line is fed by peer serves, hop counts matching the geometry.
  EXPECT_EQ(r.nodes[0].hop, 1u);
  EXPECT_EQ(r.nodes[3].hop, 4u);
  uint64_t served = 0;
  for (const auto& n : r.nodes) served += n.chunks_served;
  EXPECT_GE(served, 3u * r.total_chunks);  // three downstream images' worth
}

TEST(MeshDissemination, GridConvergesWithCollisionsAndServes) {
  const auto blob = test_blob();
  net::NetSim sim(mesh_config(net::TopologyKind::Grid, 8, 10), blob);
  const auto r = sim.disseminate();
  ASSERT_TRUE(r.all_acked);
  EXPECT_EQ(r.complete_nodes(), 8u);
  for (size_t id = 1; id <= 8; ++id)
    EXPECT_EQ(sim.node_blob(id), blob) << "node " << id;
  // Contention is real on a grid: the capture model destroyed some
  // deliveries, and the repair path ran through peers.
  EXPECT_GT(r.medium.collisions, 0u);
  uint64_t served = 0;
  uint16_t max_hop = 0;
  for (const auto& n : r.nodes) {
    served += n.chunks_served;
    if (n.hop != 0xFFFF && n.hop > max_hop) max_hop = n.hop;
  }
  EXPECT_GT(served, 0u);
  EXPECT_GE(max_hop, 2u);
  // The mesh protocol machinery shows up in the event trace.
  size_t parent_selected = 0, chunk_served = 0;
  for (const auto& e : sim.trace()) {
    parent_selected += e.kind == net::NetEventKind::ParentSelected;
    chunk_served += e.kind == net::NetEventKind::ChunkServed;
  }
  EXPECT_GT(parent_selected, 0u);
  EXPECT_GT(chunk_served, 0u);
}

TEST(MeshDissemination, AutoShardMatchesExplicitShardCounts) {
  // NetConfig::shards = 0 picks the shard count from the node count
  // (serial below kMinNodesPerShard nodes per worker); whatever it picks
  // must reproduce the explicit serial run byte-identically.
  const auto blob = test_blob();
  auto digest = [&](unsigned shards) {
    net::NetConfig cfg = mesh_config(net::TopologyKind::Grid, 16, 10);
    cfg.shards = shards;
    net::NetSim sim(cfg, blob);
    return sim.disseminate().trace_digest;
  };
  const uint64_t serial = digest(1);
  EXPECT_EQ(digest(0), serial);
  EXPECT_EQ(digest(4), serial);
}

// --- Peer-to-peer serving is the only path to out-of-range nodes ------------

TEST(MeshDissemination, PeerServesFeedNodeTheBaseCannotReach) {
  // Two nodes on a line: node 2 sits two spacings from the base — out of
  // radio range, reachable only through node 1. With a lossless channel
  // the base transmits its initial sweep and nothing else: every chunk
  // node 2 installs was served by node 1 from frame-CRC-verified chunks
  // it already held, and the installed image still passes the whole-image
  // CRC byte-for-byte.
  const auto blob = test_blob();
  net::NetSim sim(mesh_config(net::TopologyKind::Line, 2, 0), blob);
  const auto r = sim.disseminate();
  ASSERT_TRUE(r.all_acked);
  EXPECT_EQ(sim.node_blob(1), blob);
  EXPECT_EQ(sim.node_blob(2), blob);
  EXPECT_EQ(r.nodes[1].hop, 2u);
  // Node 2's entire image came from node 1's serves, never from the base:
  // the only base repairs are the handful of frames node 1 itself missed
  // while half-duplex-deaf during its own serves — far below one image.
  EXPECT_LT(r.base.retransmissions, uint64_t(r.total_chunks) / 4);
  EXPECT_GE(r.nodes[0].chunks_served, uint64_t(r.total_chunks));
}

}  // namespace
}  // namespace sensmart
