// ISA encoder/decoder: golden encodings against the AVR instruction-set
// manual, exhaustive/randomized roundtrip properties, operand validation,
// and classification helpers.
#include <gtest/gtest.h>

#include <random>

#include "isa/codec.hpp"

namespace sensmart::isa {
namespace {

Instruction rr(Op op, uint8_t rd, uint8_t r) {
  Instruction i;
  i.op = op;
  i.rd = rd;
  i.rr = r;
  return i;
}
Instruction rk(Op op, uint8_t rd, int32_t k) {
  Instruction i;
  i.op = op;
  i.rd = rd;
  i.k = k;
  return i;
}

// --- Golden encodings (hand-assembled from the AVR manual) ------------------

TEST(IsaGolden, KnownEncodings) {
  EXPECT_EQ(encode(rr(Op::Add, 1, 2)), (std::vector<uint16_t>{0x0C12}));
  EXPECT_EQ(encode(rr(Op::Add, 16, 31)), (std::vector<uint16_t>{0x0F0F}));
  EXPECT_EQ(encode(rr(Op::Mov, 0, 0)), (std::vector<uint16_t>{0x2C00}));
  EXPECT_EQ(encode(rk(Op::Ldi, 16, 0xFF)), (std::vector<uint16_t>{0xEF0F}));
  EXPECT_EQ(encode(rk(Op::Ldi, 31, 0x00)), (std::vector<uint16_t>{0xE0F0}));
  EXPECT_EQ(encode(rk(Op::Cpi, 17, 0x21)), (std::vector<uint16_t>{0x3211}));
  EXPECT_EQ(encode(rk(Op::Subi, 20, 1)), (std::vector<uint16_t>{0x5041}));

  Instruction nop; nop.op = Op::Nop;
  EXPECT_EQ(encode(nop), (std::vector<uint16_t>{0x0000}));
  Instruction ret; ret.op = Op::Ret;
  EXPECT_EQ(encode(ret), (std::vector<uint16_t>{0x9508}));
  Instruction reti; reti.op = Op::Reti;
  EXPECT_EQ(encode(reti), (std::vector<uint16_t>{0x9518}));
  Instruction ijmp; ijmp.op = Op::Ijmp;
  EXPECT_EQ(encode(ijmp), (std::vector<uint16_t>{0x9409}));
  Instruction sleep; sleep.op = Op::Sleep;
  EXPECT_EQ(encode(sleep), (std::vector<uint16_t>{0x9588}));

  // RJMP .-2 (k = -2): 0xCFFE; RJMP .0 (k = 0): 0xC000.
  EXPECT_EQ(encode(rk(Op::Rjmp, 0, -2)), (std::vector<uint16_t>{0xCFFE}));
  EXPECT_EQ(encode(rk(Op::Rjmp, 0, 0)), (std::vector<uint16_t>{0xC000}));
  // BRNE .-5 => BRBC flag 1: 1111 01 1111011 001.
  Instruction brne; brne.op = Op::Brbc; brne.b = 1; brne.k = -5;
  EXPECT_EQ(encode(brne), (std::vector<uint16_t>{0xF7D9}));

  // LDS r16, 0x0100 / STS 0x10FF, r1.
  EXPECT_EQ(encode(rk(Op::Lds, 16, 0x0100)),
            (std::vector<uint16_t>{0x9100, 0x0100}));
  EXPECT_EQ(encode(rk(Op::Sts, 1, 0x10FF)),
            (std::vector<uint16_t>{0x9210, 0x10FF}));

  // JMP 0x1234 / CALL 0x0010.
  EXPECT_EQ(encode(rk(Op::Jmp, 0, 0x1234)),
            (std::vector<uint16_t>{0x940C, 0x1234}));
  EXPECT_EQ(encode(rk(Op::Call, 0, 0x0010)),
            (std::vector<uint16_t>{0x940E, 0x0010}));

  // PUSH r31 / POP r0.
  EXPECT_EQ(encode(rr(Op::Push, 31, 0)), (std::vector<uint16_t>{0x93FF}));
  EXPECT_EQ(encode(rr(Op::Pop, 0, 0)), (std::vector<uint16_t>{0x900F}));

  // IN r16, 0x3D (SPL) / OUT 0x3E, r17.
  Instruction in; in.op = Op::In; in.rd = 16; in.a = 0x3D;
  EXPECT_EQ(encode(in), (std::vector<uint16_t>{0xB70D}));
  Instruction out; out.op = Op::Out; out.rd = 17; out.a = 0x3E;
  EXPECT_EQ(encode(out), (std::vector<uint16_t>{0xBF1E}));

  // LDD r24, Y+2 : 10q0 qq0d dddd 1qqq => 0x8182... compute: q=2.
  Instruction ldd; ldd.op = Op::Ldd; ldd.rd = 24; ldd.q = 2; ldd.ptr = Ptr::Y;
  EXPECT_EQ(encode(ldd), (std::vector<uint16_t>{0x818A}));
  // STD Z+63, r0: q=63 -> q5 bit13, q4..3 bits11..10, q2..0.
  Instruction stdz; stdz.op = Op::Std; stdz.rd = 0; stdz.q = 63; stdz.ptr = Ptr::Z;
  EXPECT_EQ(encode(stdz), (std::vector<uint16_t>{0xAE07}));

  // MOVW r24, r30 -> 0x01CF.
  EXPECT_EQ(encode(rr(Op::Movw, 24, 30)), (std::vector<uint16_t>{0x01CF}));
  // ADIW r26, 1 -> 1001 0110 0001 0001.
  EXPECT_EQ(encode(rk(Op::Adiw, 26, 1)), (std::vector<uint16_t>{0x9611}));
  EXPECT_EQ(encode(rk(Op::Sbiw, 24, 63)), (std::vector<uint16_t>{0x97CF}));

  // SEI = BSET 7 -> 0x9478; CLI = BCLR 7 -> 0x94F8.
  Instruction sei; sei.op = Op::Bset; sei.b = 7;
  EXPECT_EQ(encode(sei), (std::vector<uint16_t>{0x9478}));
  Instruction cli; cli.op = Op::Bclr; cli.b = 7;
  EXPECT_EQ(encode(cli), (std::vector<uint16_t>{0x94F8}));
}

// --- Operand validation -------------------------------------------------------

TEST(IsaValidation, RejectsOutOfRangeOperands) {
  EXPECT_THROW(encode(rk(Op::Ldi, 15, 0)), std::invalid_argument);
  EXPECT_THROW(encode(rk(Op::Ldi, 16, 256)), std::invalid_argument);
  EXPECT_THROW(encode(rk(Op::Adiw, 25, 1)), std::invalid_argument);
  EXPECT_THROW(encode(rk(Op::Adiw, 24, 64)), std::invalid_argument);
  EXPECT_THROW(encode(rk(Op::Rjmp, 0, 2048)), std::invalid_argument);
  EXPECT_THROW(encode(rk(Op::Rjmp, 0, -2049)), std::invalid_argument);
  Instruction br; br.op = Op::Brbs; br.b = 0; br.k = 64;
  EXPECT_THROW(encode(br), std::invalid_argument);
  Instruction mw; mw.op = Op::Movw; mw.rd = 1; mw.rr = 2;
  EXPECT_THROW(encode(mw), std::invalid_argument);
  Instruction lddx; lddx.op = Op::Ldd; lddx.rd = 0; lddx.ptr = Ptr::X;
  EXPECT_THROW(encode(lddx), std::invalid_argument);
  Instruction io; io.op = Op::In; io.rd = 0; io.a = 64;
  EXPECT_THROW(encode(io), std::invalid_argument);
  Instruction sbi; sbi.op = Op::Sbi; sbi.a = 32; sbi.b = 0;
  EXPECT_THROW(encode(sbi), std::invalid_argument);
}

// --- Roundtrip properties -------------------------------------------------------

class Roundtrip : public ::testing::TestWithParam<Op> {};

Instruction random_valid(Op op, std::mt19937& rng) {
  auto u = [&rng](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  Instruction i;
  i.op = op;
  switch (op) {
    case Op::Add: case Op::Adc: case Op::Sub: case Op::Sbc: case Op::And:
    case Op::Or: case Op::Eor: case Op::Mov: case Op::Cp: case Op::Cpc:
    case Op::Cpse: case Op::Mul:
      i.rd = uint8_t(u(0, 31));
      i.rr = uint8_t(u(0, 31));
      break;
    case Op::Subi: case Op::Sbci: case Op::Andi: case Op::Ori: case Op::Cpi:
    case Op::Ldi:
      i.rd = uint8_t(u(16, 31));
      i.k = u(0, 255);
      break;
    case Op::Com: case Op::Neg: case Op::Swap: case Op::Inc: case Op::Dec:
    case Op::Asr: case Op::Lsr: case Op::Ror: case Op::Push: case Op::Pop:
    case Op::Lpm: case Op::LpmInc:
    case Op::LdX: case Op::LdXInc: case Op::LdXDec: case Op::LdYInc:
    case Op::LdYDec: case Op::LdZInc: case Op::LdZDec:
    case Op::StX: case Op::StXInc: case Op::StXDec: case Op::StYInc:
    case Op::StYDec: case Op::StZInc: case Op::StZDec:
      i.rd = uint8_t(u(0, 31));
      break;
    case Op::Adiw: case Op::Sbiw:
      i.rd = uint8_t(24 + 2 * u(0, 3));
      i.k = u(0, 63);
      break;
    case Op::Movw:
      i.rd = uint8_t(2 * u(0, 15));
      i.rr = uint8_t(2 * u(0, 15));
      break;
    case Op::Lds: case Op::Sts:
      i.rd = uint8_t(u(0, 31));
      i.k = u(0, 0xFFFF);
      break;
    case Op::Ldd: case Op::Std:
      i.rd = uint8_t(u(0, 31));
      i.q = uint8_t(u(0, 63));
      i.ptr = u(0, 1) ? Ptr::Y : Ptr::Z;
      break;
    case Op::In: case Op::Out:
      i.rd = uint8_t(u(0, 31));
      i.a = uint8_t(u(0, 63));
      break;
    case Op::Sbi: case Op::Cbi: case Op::Sbic: case Op::Sbis:
      i.a = uint8_t(u(0, 31));
      i.b = uint8_t(u(0, 7));
      break;
    case Op::Rjmp: case Op::Rcall:
      i.k = u(-2048, 2047);
      break;
    case Op::Jmp: case Op::Call:
      i.k = u(0, 0xFFFF);
      break;
    case Op::Brbs: case Op::Brbc:
      i.b = uint8_t(u(0, 7));
      i.k = u(-64, 63);
      break;
    case Op::Sbrc: case Op::Sbrs:
      i.rr = uint8_t(u(0, 31));
      i.b = uint8_t(u(0, 7));
      break;
    case Op::Bset: case Op::Bclr:
      i.b = uint8_t(u(0, 7));
      break;
    default:
      break;  // fixed encodings: no operands
  }
  return i;
}

TEST_P(Roundtrip, EncodeDecodeIsIdentity) {
  std::mt19937 rng(0xC0FFEE ^ uint32_t(GetParam()));
  for (int trial = 0; trial < 200; ++trial) {
    const Instruction in = random_valid(GetParam(), rng);
    const auto words = encode(in);
    ASSERT_EQ(int(words.size()), size_words(in.op));
    const Instruction out =
        decode_words(words[0], words.size() > 1 ? words[1] : 0);
    EXPECT_EQ(out, in) << to_string(in) << " vs " << to_string(out);
  }
}

std::vector<Op> all_ops() {
  std::vector<Op> ops;
  for (int o = 0; o < int(Op::Invalid); ++o) ops.push_back(Op(o));
  return ops;
}

INSTANTIATE_TEST_SUITE_P(AllOps, Roundtrip, ::testing::ValuesIn(all_ops()),
                         [](const auto& info) {
                           return std::string(mnemonic(info.param)) == "ld_x+"
                                      ? std::string("ld_x_inc")
                                      : [](std::string s) {
                                          for (auto& c : s)
                                            if (!isalnum(c)) c = '_';
                                          return s;
                                        }(mnemonic(info.param));
                         });

// Decoding arbitrary words never crashes and either yields Invalid or an
// instruction that re-encodes to the same bits.
TEST(IsaDecode, ArbitraryWordsDecodeSafely) {
  std::mt19937 rng(1234);
  int reencoded = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    const uint16_t w0 = uint16_t(rng());
    const uint16_t w1 = uint16_t(rng());
    const Instruction ins = decode_words(w0, w1);
    if (ins.op == Op::Invalid) continue;
    std::vector<uint16_t> bits;
    ASSERT_NO_THROW(bits = encode(ins)) << to_string(ins);
    ASSERT_FALSE(bits.empty());
    EXPECT_EQ(bits[0], w0) << to_string(ins);
    if (bits.size() > 1) {
      EXPECT_EQ(bits[1], w1);
    }
    ++reencoded;
  }
  EXPECT_GT(reencoded, 10000);  // most of the space is valid encodings
}

TEST(IsaHelpers, Classification) {
  EXPECT_TRUE(is_conditional_branch(Op::Brbs));
  EXPECT_TRUE(is_conditional_branch(Op::Cpse));
  EXPECT_FALSE(is_conditional_branch(Op::Rjmp));
  EXPECT_TRUE(is_relative_branch(Op::Rjmp));
  EXPECT_FALSE(is_relative_branch(Op::Jmp));
  EXPECT_TRUE(is_call(Op::Icall));
  EXPECT_TRUE(is_return(Op::Reti));
  EXPECT_TRUE(is_indirect_jump(Op::Ijmp));
  EXPECT_TRUE(is_mem_indirect(Op::Ldd));
  EXPECT_FALSE(is_mem_indirect(Op::Lds));
  EXPECT_TRUE(is_mem_direct(Op::Sts));
  EXPECT_TRUE(is_store(Op::StXInc));
  EXPECT_FALSE(is_store(Op::LdXInc));
  EXPECT_TRUE(is_stack_op(Op::Push));
  EXPECT_TRUE(writes_sp(Op::Out, 0x3D));
  EXPECT_TRUE(writes_sp(Op::Out, 0x3E));
  EXPECT_FALSE(writes_sp(Op::Out, 0x3F));
  EXPECT_TRUE(reads_sp(Op::In, 0x3E));
  EXPECT_FALSE(reads_sp(Op::Out, 0x3E));

  Instruction ldx; ldx.op = Op::LdXInc;
  EXPECT_EQ(pointer_of(ldx), Ptr::X);
  Instruction lddy; lddy.op = Op::Ldd; lddy.ptr = Ptr::Y;
  EXPECT_EQ(pointer_of(lddy), Ptr::Y);
  EXPECT_TRUE(mutates_pointer(Op::StYDec));
  EXPECT_FALSE(mutates_pointer(Op::Std));

  EXPECT_EQ(size_words(Op::Lds), 2);
  EXPECT_EQ(size_words(Op::Call), 2);
  EXPECT_EQ(size_words(Op::Rcall), 1);
  EXPECT_EQ(base_cycles(Op::Call), 4);
  EXPECT_EQ(base_cycles(Op::Add), 1);
  EXPECT_EQ(base_cycles(Op::LdX), 2);
  EXPECT_EQ(base_cycles(Op::Lpm), 3);
}

}  // namespace
}  // namespace sensmart::isa
