// Exhaustive ALU verification: every two-operand ALU instruction is run
// through the emulator for all 256x256 input pairs (x2 carry states where
// it matters) and compared against an independent C++ oracle implementing
// the AVR manual's flag equations. This is a different implementation of
// the semantics than the CPU core's, so agreement is meaningful.
#include <gtest/gtest.h>

#include "emu/machine.hpp"
#include "isa/codec.hpp"

namespace sensmart::emu {
namespace {

using isa::Instruction;
using isa::Op;

struct AluResult {
  uint8_t value;
  uint8_t sreg;  // C,Z,N,V,S,H bits only (T,I masked out)
};
constexpr uint8_t kFlagMask = 0x3F;

// Independent oracle following the AVR instruction-set manual.
AluResult oracle(Op op, uint8_t d, uint8_t r, uint8_t sreg_in) {
  const bool cin = sreg_in & 1;
  const bool zin = sreg_in & 2;
  uint16_t wide = 0;
  uint8_t res = 0;
  bool c = cin, z = false, n = false, v = false, h = sreg_in & 0x20;
  bool have_h = false;

  auto add_like = [&](bool with_carry) {
    const int ci = with_carry && cin ? 1 : 0;
    wide = uint16_t(d) + uint16_t(r) + ci;
    res = uint8_t(wide);
    c = wide > 0xFF;
    h = ((d & 0x0F) + (r & 0x0F) + ci) > 0x0F;
    have_h = true;
    v = (~(d ^ r) & (d ^ res) & 0x80) != 0;
  };
  auto sub_like = [&](bool with_carry, bool keep_z) {
    const int ci = with_carry && cin ? 1 : 0;
    const int full = int(d) - int(r) - ci;
    res = uint8_t(full);
    c = full < 0;
    h = (int(d & 0x0F) - int(r & 0x0F) - ci) < 0;
    have_h = true;
    v = ((d ^ r) & (d ^ res) & 0x80) != 0;
    z = (res == 0) && (!keep_z || zin);
  };

  switch (op) {
    case Op::Add: add_like(false); z = res == 0; break;
    case Op::Adc: add_like(true); z = res == 0; break;
    case Op::Sub: case Op::Cp: sub_like(false, false); break;
    case Op::Sbc: case Op::Cpc: sub_like(true, true); break;
    case Op::And: res = d & r; v = false; z = res == 0; break;
    case Op::Or: res = d | r; v = false; z = res == 0; break;
    case Op::Eor: res = d ^ r; v = false; z = res == 0; break;
    default: ADD_FAILURE() << "oracle: unsupported op"; break;
  }
  n = res & 0x80;
  const bool s = n ^ v;
  uint8_t sreg = 0;
  sreg |= c ? 0x01 : 0;
  sreg |= z ? 0x02 : 0;
  sreg |= n ? 0x04 : 0;
  sreg |= v ? 0x08 : 0;
  sreg |= s ? 0x10 : 0;
  if (have_h)
    sreg |= h ? 0x20 : 0;
  else
    sreg |= sreg_in & 0x20;  // logic ops leave H unchanged
  const uint8_t value = (op == Op::Cp || op == Op::Cpc) ? d : res;
  return {value, sreg};
}

class AluSweep : public ::testing::TestWithParam<Op> {};

TEST_P(AluSweep, MatchesOracleExhaustively) {
  const Op op = GetParam();
  Instruction ins;
  ins.op = op;
  ins.rd = 16;
  ins.rr = 17;
  const auto words = isa::encode(ins);

  Machine m;
  m.load_flash(words);

  const bool carry_sensitive =
      op == Op::Adc || op == Op::Sbc || op == Op::Cpc;
  const int carry_states = carry_sensitive ? 2 : 1;

  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      for (int cs = 0; cs < carry_states; ++cs) {
        // Z must also vary for the keep-Z ops; fold it into the carry loop.
        const uint8_t sreg_in = uint8_t(cs ? 0x03 : 0x00);
        m.reset(0);
        m.mem().set_reg(16, uint8_t(a));
        m.mem().set_reg(17, uint8_t(b));
        m.mem().set_sreg(sreg_in);
        ASSERT_EQ(m.step(), StopReason::Running);
        const AluResult want = oracle(op, uint8_t(a), uint8_t(b), sreg_in);
        ASSERT_EQ(m.mem().reg(16), want.value)
            << isa::mnemonic(op) << " " << a << "," << b << " c=" << cs;
        ASSERT_EQ(m.mem().sreg() & kFlagMask, want.sreg & kFlagMask)
            << isa::mnemonic(op) << " " << a << "," << b << " c=" << cs
            << " got sreg=" << int(m.mem().sreg()) << " want "
            << int(want.sreg);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TwoOperand, AluSweep,
                         ::testing::Values(Op::Add, Op::Adc, Op::Sub,
                                           Op::Sbc, Op::Cp, Op::Cpc,
                                           Op::And, Op::Or, Op::Eor),
                         [](const auto& info) {
                           return std::string(isa::mnemonic(info.param));
                         });

// One-operand sweep: COM/NEG/INC/DEC/LSR/ASR/ROR/SWAP over all inputs and
// both carry states, against a second oracle.
struct OneOpCase {
  Op op;
};

class OneOpSweep : public ::testing::TestWithParam<Op> {};

AluResult oracle1(Op op, uint8_t d, uint8_t sreg_in) {
  const bool cin = sreg_in & 1;
  uint8_t res = 0;
  bool c = cin, z = false, n = false, v = false;
  bool h = sreg_in & 0x20;
  switch (op) {
    case Op::Com:
      res = uint8_t(~d);
      c = true;
      v = false;
      break;
    case Op::Neg:
      res = uint8_t(0 - d);
      c = res != 0;
      v = res == 0x80;
      h = ((res | d) & 0x08) != 0;  // H = R3 | Rd3 (AVR manual)
      break;
    case Op::Inc:
      res = uint8_t(d + 1);
      v = d == 0x7F;
      break;
    case Op::Dec:
      res = uint8_t(d - 1);
      v = d == 0x80;
      break;
    case Op::Lsr:
      res = uint8_t(d >> 1);
      c = d & 1;
      v = c;  // N=0, V = N ^ C = C
      break;
    case Op::Asr:
      res = uint8_t((d >> 1) | (d & 0x80));
      c = d & 1;
      v = bool(res & 0x80) ^ bool(c);
      break;
    case Op::Ror:
      res = uint8_t((d >> 1) | (cin ? 0x80 : 0));
      c = d & 1;
      v = bool(res & 0x80) ^ bool(c);
      break;
    case Op::Swap:
      res = uint8_t((d << 4) | (d >> 4));
      // SWAP sets no flags.
      return {res, uint8_t(sreg_in & kFlagMask)};
    default:
      ADD_FAILURE() << "oracle1: unsupported";
      break;
  }
  z = res == 0;
  n = res & 0x80;
  const bool s = n ^ v;
  uint8_t sreg = uint8_t((c ? 1 : 0) | (z ? 2 : 0) | (n ? 4 : 0) |
                         (v ? 8 : 0) | (s ? 16 : 0) | (h ? 32 : 0));
  return {res, sreg};
}

TEST_P(OneOpSweep, MatchesOracleExhaustively) {
  const Op op = GetParam();
  Instruction ins;
  ins.op = op;
  ins.rd = 20;
  const auto words = isa::encode(ins);
  Machine m;
  m.load_flash(words);
  for (int d = 0; d < 256; ++d) {
    for (int cs = 0; cs < 2; ++cs) {
      const uint8_t sreg_in = uint8_t(cs);
      m.reset(0);
      m.mem().set_reg(20, uint8_t(d));
      m.mem().set_sreg(sreg_in);
      ASSERT_EQ(m.step(), StopReason::Running);
      const AluResult want = oracle1(op, uint8_t(d), sreg_in);
      ASSERT_EQ(m.mem().reg(20), want.value)
          << isa::mnemonic(op) << " " << d << " c=" << cs;
      ASSERT_EQ(m.mem().sreg() & kFlagMask, want.sreg & kFlagMask)
          << isa::mnemonic(op) << " " << d << " c=" << cs;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(OneOperand, OneOpSweep,
                         ::testing::Values(Op::Com, Op::Neg, Op::Inc,
                                           Op::Dec, Op::Lsr, Op::Asr,
                                           Op::Ror, Op::Swap),
                         [](const auto& info) {
                           return std::string(isa::mnemonic(info.param));
                         });

// Immediate-operand ops agree with their register-register counterparts.
TEST(ImmediateOps, AgreeWithRegisterForms) {
  Machine m;
  for (const auto& [imm_op, reg_op] :
       {std::pair{Op::Subi, Op::Sub}, std::pair{Op::Sbci, Op::Sbc},
        std::pair{Op::Andi, Op::And}, std::pair{Op::Ori, Op::Or},
        std::pair{Op::Cpi, Op::Cp}}) {
    for (int a = 0; a < 256; a += 7) {
      for (int k = 0; k < 256; k += 5) {
        for (int cs = 0; cs < 2; ++cs) {
          Instruction ii;
          ii.op = imm_op;
          ii.rd = 16;
          ii.k = k;
          Instruction ri;
          ri.op = reg_op;
          ri.rd = 16;
          ri.rr = 17;

          m.load_flash(isa::encode(ii));
          m.reset(0);
          m.mem().set_reg(16, uint8_t(a));
          m.mem().set_sreg(uint8_t(cs ? 3 : 0));
          ASSERT_EQ(m.step(), StopReason::Running);
          const uint8_t v1 = m.mem().reg(16);
          const uint8_t s1 = m.mem().sreg();

          m.load_flash(isa::encode(ri));
          m.reset(0);
          m.mem().set_reg(16, uint8_t(a));
          m.mem().set_reg(17, uint8_t(k));
          m.mem().set_sreg(uint8_t(cs ? 3 : 0));
          ASSERT_EQ(m.step(), StopReason::Running);
          ASSERT_EQ(v1, m.mem().reg(16)) << isa::mnemonic(imm_op);
          ASSERT_EQ(s1 & kFlagMask, m.mem().sreg() & kFlagMask)
              << isa::mnemonic(imm_op) << " a=" << a << " k=" << k;
        }
      }
    }
  }
}

}  // namespace
}  // namespace sensmart::emu
