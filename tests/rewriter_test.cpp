// Rewriter units: the shift table (AddressMap), binary analysis (leaders,
// grouping), patch classification, relaxation, approximate linearity,
// trampoline merging and linker layout.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "apps/benchmarks.hpp"
#include "assembler/assembler.hpp"
#include "rewriter/linker.hpp"
#include "rewriter/tkernel.hpp"

namespace sensmart::rw {
namespace {

using assembler::Assembler;
using assembler::Image;

// --- AddressMap ----------------------------------------------------------------

TEST(AddressMap, IdentityWithoutInflation) {
  AddressMap m(100, {});
  EXPECT_EQ(m.to_naturalized(0), 100u);
  EXPECT_EQ(m.to_naturalized(57), 157u);
  EXPECT_EQ(m.to_original(157), 57u);
}

TEST(AddressMap, ShiftsAfterInflatedSites) {
  AddressMap m(16, {4, 10, 11});
  EXPECT_EQ(m.to_naturalized(0), 16u);
  EXPECT_EQ(m.to_naturalized(4), 20u);   // the inflated site itself
  EXPECT_EQ(m.to_naturalized(5), 22u);   // +1 word after site 4
  EXPECT_EQ(m.to_naturalized(10), 27u);
  EXPECT_EQ(m.to_naturalized(11), 29u);  // +2 now
  EXPECT_EQ(m.to_naturalized(12), 31u);  // +3
}

TEST(AddressMap, InverseIsExactOnBoundaries) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::set<uint32_t> sites;
    const int n = int(rng() % 60);
    while (int(sites.size()) < n) sites.insert(rng() % 500);
    AddressMap m(32, {sites.begin(), sites.end()});
    for (uint32_t a = 0; a < 520; ++a)
      EXPECT_EQ(m.to_original(m.to_naturalized(a)), a);
  }
}

TEST(AddressMap, MonotoneStrictlyIncreasing) {
  AddressMap m(0, {1, 2, 3, 4, 5});
  for (uint32_t a = 0; a < 20; ++a)
    EXPECT_LT(m.to_naturalized(a), m.to_naturalized(a + 1));
}

// --- Analysis --------------------------------------------------------------------

TEST(Analysis, MarksBranchTargetsAsLeaders) {
  Assembler a("t");
  a.ldi(16, 0);          // 0
  a.label("loop");       // 1
  a.inc(16);             // 1
  a.cpi(16, 3);          // 2
  a.brne("loop");        // 3
  a.halt(0);             // 4,5(2w)
  auto sites = analyze(a.finish(), true);
  ASSERT_GE(sites.size(), 5u);
  EXPECT_TRUE(sites[1].block_leader);   // loop target
  EXPECT_TRUE(sites[4].block_leader);   // fall-through after branch
}

TEST(Analysis, GroupsAdjacentLddSamePointer) {
  Assembler a("t");
  a.ldd_y(16, 0);
  a.ldd_y(17, 1);
  a.std_y(2, 16);
  a.ldd_z(18, 0);  // different pointer: not in the group
  auto sites = analyze(a.finish(), true);
  EXPECT_EQ(sites[0].group, GroupRole::Leader);
  EXPECT_EQ(sites[0].group_min_q, 0);
  EXPECT_EQ(sites[0].group_span, 2);
  EXPECT_EQ(sites[1].group, GroupRole::Follower);
  EXPECT_EQ(sites[2].group, GroupRole::Follower);
  EXPECT_EQ(sites[3].group, GroupRole::None);
}

TEST(Analysis, GroupSizeCappedAtFour) {
  Assembler a("t");
  for (uint8_t q = 0; q < 6; ++q) a.ldd_y(16, q);
  auto sites = analyze(a.finish(), true);
  EXPECT_EQ(sites[0].group, GroupRole::Leader);
  EXPECT_EQ(sites[3].group, GroupRole::Follower);
  EXPECT_EQ(sites[4].group, GroupRole::Leader);  // new group starts
  EXPECT_EQ(sites[5].group, GroupRole::Follower);
}

TEST(Analysis, BlockBoundaryBreaksGroup) {
  Assembler a("t");
  a.label("top");
  a.ldd_y(16, 0);
  a.label("entry");  // a branch target between the two accesses
  a.ldd_y(17, 1);
  a.rjmp("entry");
  auto sites = analyze(a.finish(), true);
  EXPECT_EQ(sites[0].group, GroupRole::None);
  EXPECT_EQ(sites[1].group, GroupRole::None);
}

TEST(Analysis, GroupingDisabledLeavesAllUngrouped) {
  Assembler a("t");
  a.ldd_y(16, 0);
  a.ldd_y(17, 1);
  auto sites = analyze(a.finish(), false);
  EXPECT_EQ(sites[0].group, GroupRole::None);
  EXPECT_EQ(count_followers(sites), 0u);
}

TEST(Analysis, DataRangesAreOpaque) {
  Assembler a("t");
  a.rjmp("code");
  const uint16_t blob[3] = {0x9508 /* looks like RET */, 0xFFFF, 0x0000};
  a.dw("blob", blob);
  a.label("code");
  a.halt(0);
  auto sites = analyze(a.finish(), true);
  ASSERT_GE(sites.size(), 2u);
  EXPECT_TRUE(sites[1].is_data);
  EXPECT_EQ(sites[1].size, 3);
}

// --- Rewriting -------------------------------------------------------------------

NaturalizedProgram rewrite_simple(const Image& img,
                                  RewriteOptions opts = {}) {
  ServicePool pool;
  return rewrite(img, kAppBase, pool, opts);
}

TEST(Rewrite, PreservesInstructionCount) {
  // Approximate linearity (§IV-A): same instruction count, byte sizes may
  // differ. Verify on every kernel benchmark.
  for (const auto& name : apps::benchmark_names()) {
    const Image img = apps::build_benchmark(name);
    const auto sites = analyze(img, true);
    size_t orig_instrs = 0;
    for (const auto& s : sites)
      if (!s.is_data) ++orig_instrs;

    const auto nat = rewrite_simple(img);
    // Count instructions in the naturalized body (data ranges shifted but
    // contiguous; walk via the original sites and their naturalized sizes).
    size_t nat_instrs = 0;
    uint32_t pc = 0;
    std::set<uint32_t> data_words;
    for (const auto& s : sites)
      if (s.is_data)
        for (int w = 0; w < s.size; ++w)
          data_words.insert(nat.map.to_naturalized(s.addr) - nat.base + w);
    while (pc < nat.code.size()) {
      if (data_words.count(pc)) {
        ++pc;
        continue;
      }
      const auto ins = isa::decode(nat.code, pc);
      ASSERT_NE(ins.op, isa::Op::Invalid) << name << " @" << pc;
      pc += isa::size_words(ins.op);
      ++nat_instrs;
    }
    EXPECT_EQ(nat_instrs, orig_instrs) << name;
  }
}

TEST(Rewrite, ShiftTableMatchesInflatedSites) {
  const Image img = apps::crc_program(2);
  const auto nat = rewrite_simple(img);
  EXPECT_EQ(nat.shift_entries, nat.map.entries());
  // Every inflated site adds exactly one word.
  EXPECT_EQ(nat.code.size(), img.code.size() + nat.shift_entries);
}

TEST(Rewrite, DirectIoAccessLeftNative) {
  Assembler a("t");
  a.lds(16, emu::kPortB);   // plain I/O: untouched
  a.sts(emu::kHostOut, 16); // reserved: patched
  auto img = a.finish();
  ServicePool pool;
  const auto nat = rewrite(img, kAppBase, pool, {});
  const auto first = isa::decode(nat.code, 0);
  EXPECT_EQ(first.op, isa::Op::Lds);
  EXPECT_EQ(first.k, emu::kPortB);
  const auto second = isa::decode(nat.code, 2);
  EXPECT_EQ(second.op, isa::Op::Call);  // trampoline call
  ASSERT_EQ(pool.services().size(), 1u);
  EXPECT_EQ(pool.services()[0].kind, ServiceKind::ReservedDirect);
}

TEST(Rewrite, BackwardBranchBecomesTrampolineOnlyWithScheduling) {
  Assembler a("t");
  a.label("top");
  a.nop();
  a.rjmp("top");
  auto img = a.finish();

  {
    ServicePool pool;
    RewriteOptions opts;
    opts.patch_branches = true;
    rewrite(img, kAppBase, pool, opts);
    ASSERT_EQ(pool.services().size(), 1u);
    EXPECT_EQ(pool.services()[0].kind, ServiceKind::BackwardBranch);
  }
  {
    ServicePool pool;
    RewriteOptions opts;
    opts.patch_branches = false;
    rewrite(img, kAppBase, pool, opts);
    EXPECT_TRUE(pool.services().empty());
  }
}

TEST(Rewrite, ForwardBranchRetargetedInPlace) {
  Assembler a("t");
  a.breq("skip");
  a.push(16);  // patched -> inflates by 1 word
  a.label("skip");
  a.halt(0);
  auto img = a.finish();
  ServicePool pool;
  const auto nat = rewrite(img, kAppBase, pool, {});
  const auto br = isa::decode(nat.code, 0);
  ASSERT_EQ(br.op, isa::Op::Brbs);
  EXPECT_EQ(br.k, 2);  // over the 2-word trampoline CALL
}

TEST(Rewrite, LongForwardBranchPromotedToTrampoline) {
  // A BRxx that fits in the original but whose target moves out of the
  // 7-bit offset range after inflation must be relayed via a trampoline:
  // 40 PUSHes (40 words) inflate to 40 CALLs (80 words) > 63.
  Assembler a("t");
  a.breq("far");
  for (int i = 0; i < 40; ++i) a.push(16);
  a.label("far");
  a.halt(0);
  auto img = a.finish();
  ServicePool pool;
  // paper_options(): with stack-run collapsing on, the 40 pushes shrink to
  // 10 leader CALLs + 30 one-word placeholders and the target stays in range.
  const auto nat = rewrite(img, kAppBase, pool, paper_options());
  const auto first = isa::decode(nat.code, 0);
  EXPECT_EQ(first.op, isa::Op::Call);
  bool has_fwd = false;
  for (const auto& s : pool.services())
    if (s.kind == ServiceKind::ForwardBranch) has_fwd = true;
  EXPECT_TRUE(has_fwd);
}

TEST(Rewrite, MergingDeduplicatesIdenticalSites) {
  Assembler a("t");
  for (int i = 0; i < 10; ++i) a.push(16);
  for (int i = 0; i < 10; ++i) a.push(17);
  a.halt(0);
  auto img = a.finish();

  ServicePool merged;
  rewrite(img, kAppBase, merged, paper_options());
  // push r16, push r17, sts HostHalt-pair services (halt emits ldi+sts).
  EXPECT_EQ(merged.services().size(), 3u);
  EXPECT_EQ(merged.requests(), 21u);

  ServicePool unmerged;
  unmerged.set_merging(false);
  rewrite(img, kAppBase, unmerged, paper_options());
  EXPECT_EQ(unmerged.services().size(), 21u);
}

TEST(Rewrite, StackRunCollapseShrinksPushRuns) {
  Assembler a("t");
  for (int i = 0; i < 10; ++i) a.push(16);
  for (int i = 0; i < 10; ++i) a.push(17);
  a.halt(0);
  auto img = a.finish();

  // Default options collapse each maximal same-op run into leader traps
  // carrying up to 3 followers (register may differ; run_regs records each
  // member's rd): 20 pushes -> 5 runs of 4 -> 3 distinct leader shapes.
  ServicePool pool;
  const auto nat = rewrite(img, kAppBase, pool, {});
  uint32_t pushpop_services = 0;
  for (const auto& s : pool.services())
    if (s.kind == ServiceKind::PushPop) ++pushpop_services;
  EXPECT_EQ(pushpop_services, 3u);  // r16x4, r16+r16+r17+r17, r17x4
  EXPECT_EQ(pool.requests(), 6u);   // 5 leaders + 1 halt sts
  // Placeholders keep the instruction count: 15 followers stay one word.
  uint32_t nops = 0;
  for (uint32_t pc = 0; pc < nat.code.size();) {
    const auto ins = isa::decode(nat.code, pc);
    if (ins.op == isa::Op::Nop) ++nops;
    pc += isa::size_words(ins.op);
  }
  EXPECT_EQ(nops, 15u);
}

TEST(Rewrite, MergingWorksAcrossPrograms) {
  Assembler a("p1");
  a.push(16);
  a.halt(0);
  Assembler b("p2");
  b.push(16);
  b.halt(0);
  Linker linker;
  linker.add(a.finish());
  linker.add(b.finish());
  const auto sys = linker.link();
  EXPECT_EQ(sys.services.size(), 2u);     // push(r16), sts(halt)
  EXPECT_EQ(sys.service_requests, 4u);
}

// --- Linker ---------------------------------------------------------------------

TEST(Linker, LayoutIsDisjointAndOrdered) {
  Linker linker;
  std::vector<size_t> idx;
  for (const auto& name : apps::benchmark_names())
    idx.push_back(linker.add(apps::build_benchmark(name)));
  const auto sys = linker.link();

  uint32_t prev_end = kAppBase;
  for (const auto& p : sys.programs) {
    EXPECT_GE(p.base, prev_end);
    prev_end = p.table_base + p.shift_table_bytes / 2;
    EXPECT_LE(prev_end, sys.tramp_base);
  }
  // Trampoline markers are in place.
  for (size_t i = 0; i < sys.services.size(); ++i) {
    EXPECT_EQ(sys.flash[sys.service_addr[i]], 0x9598u);  // BREAK
    EXPECT_EQ(sys.flash[sys.service_addr[i] + 1], uint16_t(i));
  }
}

TEST(Linker, ShiftTableStoredInFlash) {
  Linker linker;
  linker.add(apps::crc_program(1));
  const auto sys = linker.link();
  const auto& p = sys.programs[0];
  const auto& sites = p.map.inflated_sites();
  for (size_t i = 0; i < sites.size(); ++i)
    EXPECT_EQ(sys.flash[p.table_base + i], uint16_t(sites[i]));
}

TEST(Linker, TKernelModeInflatesMore) {
  const auto img = apps::crc_program(1);
  Linker s({}, true);
  s.add(img);
  Linker t(tkernel_rewrite_options(), kTKernelMerging);
  t.add(img);
  const auto ssys = s.link();
  const auto tsys = t.link();
  EXPECT_GT(tsys.programs[0].inflation(), ssys.programs[0].inflation());
}

TEST(Linker, RejectsUseAfterLink) {
  Linker linker;
  linker.add(apps::lfsr_program(1));
  (void)linker.link();
  EXPECT_THROW(linker.add(apps::lfsr_program(1)), std::logic_error);
  EXPECT_THROW(linker.link(), std::logic_error);
}

}  // namespace
}  // namespace sensmart::rw
