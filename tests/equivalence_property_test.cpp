// Property test: for randomized (memory-safe, terminating) programs, the
// naturalized execution under SenSmart is observationally equivalent to
// native execution — same register dump, same heap checksum, same host
// output — and region invariants hold throughout. Also checks that the
// grouped-access optimization and trampoline merging are semantically
// transparent.
#include <gtest/gtest.h>

#include <random>

#include "assembler/assembler.hpp"
#include "baselines/native_runner.hpp"
#include "sim/harness.hpp"
#include "testlib/random_program.hpp"

namespace sensmart {
namespace {

using assembler::Assembler;
using assembler::Image;

using testlib::random_program;

class Equivalence : public ::testing::TestWithParam<uint32_t> {};

TEST_P(Equivalence, SenSmartMatchesNative) {
  const Image img = random_program(GetParam());

  const auto native = base::run_native(img, 100'000'000);
  ASSERT_EQ(native.stop, emu::StopReason::Halted);
  ASSERT_EQ(native.host_out.size(), 11u);

  const auto sens = sim::run_system({img});
  ASSERT_EQ(sens.stop, emu::StopReason::Halted);
  ASSERT_EQ(sens.tasks[0].state, kern::TaskState::Done);
  EXPECT_EQ(sens.tasks[0].host_out, native.host_out);

  // The optimizations must be semantically transparent.
  sim::RunSpec plain;
  plain.rewrite.grouped_access = false;
  plain.merge_trampolines = false;
  const auto no_opt = sim::run_system({img}, plain);
  ASSERT_EQ(no_opt.stop, emu::StopReason::Halted);
  EXPECT_EQ(no_opt.tasks[0].host_out, native.host_out);
  // ... but not performance-transparent: grouping saves cycles.
  EXPECT_LE(sens.active_cycles, no_opt.active_cycles);
}

TEST_P(Equivalence, TwoInstancesUnderKernelBothMatchNative) {
  const Image a = random_program(GetParam());
  const Image b = random_program(GetParam() + 1000003);
  const auto na = base::run_native(a, 100'000'000);
  const auto nb = base::run_native(b, 100'000'000);
  ASSERT_EQ(na.stop, emu::StopReason::Halted);
  ASSERT_EQ(nb.stop, emu::StopReason::Halted);

  const auto r = sim::run_system({a, b});
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  EXPECT_EQ(r.tasks[0].host_out, na.host_out);
  EXPECT_EQ(r.tasks[1].host_out, nb.host_out);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Equivalence,
                         ::testing::Range(1u, 31u));

}  // namespace
}  // namespace sensmart
