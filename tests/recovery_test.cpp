// Crash-recovery subsystem (DESIGN.md §8): supervisor restart/backoff and
// quarantine semantics, watchdog containment of runaway tasks, reclamation
// of a quarantined task's region, and deterministic replay of full
// recovery schedules.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "chaos/adversarial.hpp"
#include "emu/machine.hpp"
#include "kernel/kernel.hpp"
#include "rewriter/linker.hpp"

namespace sensmart::kern {
namespace {

using assembler::Assembler;
using assembler::Image;

// A well-behaved worker: `iters` rounds of push/pop (each a kernel
// service), then a clean exit. Plenty of service traffic for injected
// kills to land on and for healthy-streak accounting to observe.
Image worker_program(uint16_t iters, uint8_t exit_code) {
  Assembler a("worker" + std::to_string(exit_code));
  a.ldi16(24, iters);
  a.label("l");
  a.push(2);
  a.pop(2);
  a.dec16(24);
  a.brne("l");
  a.halt(exit_code);
  return a.finish();
}

struct RunResult {
  emu::StopReason stop;
  std::vector<Task> tasks;
  KernelStats stats;
  uint64_t cycles = 0;
  uint64_t trace_hash = 0;
  std::string invariants;
  std::vector<std::string> audit;
};

uint64_t hash_trace(const KernelTrace& trace) {
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  for (const TraceEvent& e : trace.events()) {
    mix(e.cycle);
    mix(uint64_t(e.kind));
    mix(e.a);
    mix(e.b);
  }
  return h;
}

RunResult run_images(const std::vector<Image>& images,
                     const KernelConfig& cfg,
                     uint64_t max_cycles = 400'000'000ULL,
                     KernelTrace* trace_out = nullptr) {
  rw::Linker linker;
  for (const auto& img : images) linker.add(img);
  const auto sys = linker.link();

  emu::Machine m;
  Kernel k(m, sys, cfg);
  KernelTrace trace(1 << 16);
  k.set_trace(trace_out != nullptr ? trace_out : &trace);
  k.admit_all();
  EXPECT_TRUE(k.start());
  RunResult r;
  r.stop = k.run(max_cycles);
  r.tasks = k.tasks();
  r.stats = k.stats();
  r.cycles = m.cycles();
  r.trace_hash = hash_trace(trace_out != nullptr ? *trace_out : trace);
  r.invariants = k.check_invariants();
  r.audit = k.audit_log();
  return r;
}

// --- Restart ----------------------------------------------------------------

TEST(Supervision, InjectedKillRestartsTaskToCompletion) {
  KernelConfig cfg;
  cfg.audit = true;
  cfg.supervise.enabled = true;
  cfg.supervise.backoff_cycles = 8'000;
  cfg.injected_kills = {{200, 0}};

  KernelTrace trace(1 << 16);
  const auto r = run_images({worker_program(400, 7)}, cfg, 400'000'000ULL,
                            &trace);
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  ASSERT_EQ(r.tasks.size(), 1u);
  // The kill happened, but it was not terminal: the task re-ran from its
  // entry point and exited normally.
  EXPECT_EQ(r.stats.kills, 1u);
  EXPECT_EQ(r.stats.injected_kills, 1u);
  EXPECT_EQ(r.stats.restarts, 1u);
  EXPECT_EQ(r.stats.quarantines, 0u);
  EXPECT_EQ(r.tasks[0].state, TaskState::Done);
  EXPECT_EQ(r.tasks[0].exit_code, 7);
  EXPECT_EQ(r.tasks[0].restarts, 1u);
  EXPECT_FALSE(r.tasks[0].quarantined);
  EXPECT_TRUE(r.invariants.empty()) << r.invariants;
  EXPECT_TRUE(r.audit.empty());
  // Trace shows the kill followed by the supervised restart.
  EXPECT_EQ(trace.count(EventKind::TaskKilled), 1u);
  EXPECT_EQ(trace.count(EventKind::TaskRestarted), 1u);
  bool kill_seen = false;
  for (const auto& e : trace.events()) {
    if (e.kind == EventKind::TaskKilled) kill_seen = true;
    if (e.kind == EventKind::TaskRestarted) {
      EXPECT_TRUE(kill_seen);  // restart always follows its kill
      EXPECT_EQ(e.a, 0);       // task id
      EXPECT_EQ(e.b, 1);       // first failure in the streak
    }
  }
}

TEST(Supervision, BackoffDelaysTheRestart) {
  auto run_with_backoff = [](uint64_t backoff) {
    KernelConfig cfg;
    cfg.supervise.enabled = true;
    cfg.supervise.backoff_cycles = backoff;
    cfg.injected_kills = {{200, 0}};
    return run_images({worker_program(400, 0)}, cfg).cycles;
  };
  const uint64_t quick = run_with_backoff(2'000);
  const uint64_t slow = run_with_backoff(2'000'000);
  // The single restart is the only difference between the two runs, so the
  // completion times differ by almost exactly the extra backoff.
  EXPECT_GT(slow, quick + 1'900'000);
}

// --- Quarantine -------------------------------------------------------------

TEST(Supervision, ConsecutiveFailuresQuarantine) {
  KernelConfig cfg;
  cfg.audit = true;
  cfg.supervise.enabled = true;
  cfg.supervise.max_restarts = 2;
  cfg.supervise.backoff_cycles = 4'000;
  // Streak forgiveness requires a long healthy run; the kills below land
  // well inside it, so every failure counts toward the quarantine.
  cfg.supervise.healthy_services = 100'000;
  cfg.injected_kills = {{100, 0}, {300, 0}, {500, 0}};

  KernelTrace trace(1 << 16);
  const auto r = run_images({worker_program(600, 0)}, cfg, 400'000'000ULL,
                            &trace);
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  // Two restarts consume the budget; the third failure is terminal.
  EXPECT_EQ(r.stats.kills, 3u);
  EXPECT_EQ(r.stats.restarts, 2u);
  EXPECT_EQ(r.stats.quarantines, 1u);
  EXPECT_EQ(r.tasks[0].state, TaskState::Killed);
  EXPECT_EQ(r.tasks[0].kill_reason, KillReason::Injected);
  EXPECT_TRUE(r.tasks[0].quarantined);
  EXPECT_EQ(r.tasks[0].restarts, 2u);
  EXPECT_EQ(trace.count(EventKind::TaskQuarantined), 1u);
  EXPECT_TRUE(r.invariants.empty()) << r.invariants;
  EXPECT_TRUE(r.audit.empty());
}

TEST(Supervision, HealthyRunClearsTheFailureStreak) {
  KernelConfig cfg;
  cfg.supervise.enabled = true;
  cfg.supervise.max_restarts = 2;
  cfg.supervise.backoff_cycles = 4'000;
  // A short forgiveness threshold: the worker executes far more than 32
  // services between the widely spaced kills, so each restart begins with
  // a clean streak and the quarantine never fires — three kills would
  // otherwise exceed max_restarts.
  cfg.supervise.healthy_services = 32;
  cfg.injected_kills = {{200, 0}, {1'200, 0}, {2'200, 0}};

  const auto r = run_images({worker_program(800, 9)}, cfg);
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  EXPECT_EQ(r.stats.kills, 3u);
  EXPECT_EQ(r.stats.restarts, 3u);
  EXPECT_EQ(r.stats.quarantines, 0u);
  EXPECT_EQ(r.tasks[0].state, TaskState::Done);
  EXPECT_EQ(r.tasks[0].exit_code, 9);
}

// The regression at the heart of quarantine: the terminal kill must hand
// the task's region back to the allocator, so surviving tasks can grow
// into it. Task 1 pins a heap too large for task 0's deep recursion to
// fit while both are live; only reclaiming the quarantined region lets
// task 0 finish.
TEST(Supervision, QuarantinedRegionIsReclaimedForRelocation) {
  // ~2400 B of stack demand: more than the application area minus task 1's
  // heap, less than the area once task 1's region is reclaimed.
  std::vector<Image> images;
  images.push_back(chaos::deep_recursion_program(400, 4, 1));
  {
    Assembler a("hog");
    a.var("ballast", 1500);  // heap: not donatable while the task lives
    a.ldi16(24, 5'000);
    a.label("l");
    a.push(2);
    a.pop(2);
    a.dec16(24);
    a.brne("l");
    a.halt(0);
    images.push_back(a.finish());
  }

  KernelConfig cfg;
  cfg.audit = true;
  cfg.initial_stack = 64;
  cfg.supervise.enabled = true;
  cfg.supervise.max_restarts = 1;  // one restart, then quarantine
  cfg.supervise.healthy_services = 100'000;
  cfg.injected_kills = {{60, 1}, {120, 1}};

  const auto r = run_images(images, cfg, 2'000'000'000ULL);
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  ASSERT_EQ(r.tasks.size(), 2u);
  EXPECT_EQ(r.tasks[1].state, TaskState::Killed);
  EXPECT_TRUE(r.tasks[1].quarantined);
  // The recursion completed — possible only because the quarantined
  // region was released for relocation.
  EXPECT_EQ(r.tasks[0].state, TaskState::Done);
  EXPECT_TRUE(r.invariants.empty()) << r.invariants;
  EXPECT_TRUE(r.audit.empty());
}

// --- Watchdog ---------------------------------------------------------------

TEST(Watchdog, ContainsARunawayLoop) {
  KernelConfig cfg;
  cfg.supervise.watchdog_cycles = 60'000;  // supervision itself off

  KernelTrace trace(1 << 16);
  const auto r = run_images(
      {worker_program(500, 3), chaos::runaway_program(7)}, cfg,
      400'000'000ULL, &trace);
  // Without the watchdog this run would spin to the cycle budget.
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  ASSERT_EQ(r.tasks.size(), 2u);
  EXPECT_EQ(r.tasks[0].state, TaskState::Done);
  EXPECT_EQ(r.tasks[1].state, TaskState::Killed);
  EXPECT_EQ(r.tasks[1].kill_reason, KillReason::Watchdog);
  EXPECT_EQ(r.tasks[1].watchdog_fires, 1u);
  EXPECT_EQ(r.stats.watchdog_fires, 1u);
  EXPECT_GE(trace.count(EventKind::WatchdogFired), 1u);
}

TEST(Watchdog, NeverFiresOnAServiceMakingTask) {
  KernelConfig cfg;
  cfg.supervise.watchdog_cycles = 60'000;
  const auto r = run_images({worker_program(4'000, 0)}, cfg);
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  EXPECT_EQ(r.tasks[0].state, TaskState::Done);
  EXPECT_EQ(r.stats.watchdog_fires, 0u);
}

TEST(Watchdog, SupervisedRunawayRestartsThenQuarantines) {
  KernelConfig cfg;
  cfg.supervise.enabled = true;
  cfg.supervise.max_restarts = 2;
  cfg.supervise.backoff_cycles = 8'000;
  cfg.supervise.watchdog_cycles = 60'000;

  KernelTrace trace(1 << 16);
  const auto r = run_images(
      {worker_program(500, 0), chaos::runaway_program(8)}, cfg,
      400'000'000ULL, &trace);
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  // The runaway never makes a non-branch service, so every restart ends in
  // another watchdog fire until the quarantine puts it down for good.
  EXPECT_EQ(r.tasks[1].state, TaskState::Killed);
  EXPECT_EQ(r.tasks[1].kill_reason, KillReason::Watchdog);
  EXPECT_TRUE(r.tasks[1].quarantined);
  EXPECT_EQ(r.tasks[1].watchdog_fires, 3u);  // 2 restarts + terminal fire
  EXPECT_EQ(r.stats.restarts, 2u);
  EXPECT_EQ(r.stats.quarantines, 1u);
  EXPECT_EQ(trace.count(EventKind::WatchdogFired), 3u);
  EXPECT_EQ(trace.count(EventKind::TaskRestarted), 2u);
  EXPECT_EQ(trace.count(EventKind::TaskQuarantined), 1u);
  // The healthy neighbour is untouched.
  EXPECT_EQ(r.tasks[0].state, TaskState::Done);
  EXPECT_EQ(r.tasks[0].watchdog_fires, 0u);
}

// --- Determinism ------------------------------------------------------------

TEST(Recovery, FullRecoveryScheduleReplaysByteIdentically) {
  KernelConfig cfg;
  cfg.audit = true;
  cfg.supervise.enabled = true;
  cfg.supervise.max_restarts = 2;
  cfg.supervise.backoff_cycles = 8'000;
  cfg.supervise.watchdog_cycles = 60'000;
  cfg.supervise.healthy_services = 100'000;
  cfg.injected_kills = {{150, 0}, {400, 0}, {700, 0}};

  const std::vector<Image> images = {worker_program(700, 0),
                                     chaos::runaway_program(9)};
  const auto a = run_images(images, cfg);
  const auto b = run_images(images, cfg);
  EXPECT_EQ(a.stop, emu::StopReason::Halted);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.stats.restarts, b.stats.restarts);
  EXPECT_EQ(a.stats.quarantines, b.stats.quarantines);
  EXPECT_EQ(a.stats.watchdog_fires, b.stats.watchdog_fires);
  // The schedule actually exercised every recovery path.
  EXPECT_GT(a.stats.restarts, 0u);
  EXPECT_GT(a.stats.quarantines, 0u);
  EXPECT_GT(a.stats.watchdog_fires, 0u);
}

TEST(Recovery, SupervisionOffIsByteIdenticalToSeedBehaviour) {
  // A run with the whole subsystem left at defaults must not differ from
  // one with the supervisor struct explicitly zeroed — the recovery hooks
  // charge nothing when disabled.
  KernelConfig off;
  KernelConfig expl;
  expl.supervise = SupervisorConfig{};
  const std::vector<Image> images = {worker_program(500, 2)};
  const auto a = run_images(images, off);
  const auto b = run_images(images, expl);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
}

}  // namespace
}  // namespace sensmart::kern
