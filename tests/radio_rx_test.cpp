// Radio receive path: on-air timing, byte ordering, and operation under
// SenSmart (the RX ports are shared device state, reached both by direct
// native loads and by translated indirect loads).
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "kernel/kernel.hpp"
#include "rewriter/linker.hpp"

namespace sensmart::emu {
namespace {

using assembler::Assembler;

// Wait for `n` RX bytes, read them, emit them and an additive checksum.
assembler::Image rx_reader(uint8_t n) {
  Assembler a("rx");
  a.var("pad", 4);
  a.ldi(20, n);  // remaining
  a.ldi(21, 0);  // checksum
  a.label("next");
  a.label("wait");
  a.lds(16, kRadioRxAvail);
  a.cpi(16, 1);
  a.brcs("wait");  // < 1: nothing buffered yet
  a.lds(17, kRadioRxData);
  a.add(21, 17);
  a.sts(kHostOut, 17);
  a.dec(20);
  a.brne("next");
  a.sts(kHostOut, 21);
  a.halt(0);
  return a.finish();
}

TEST(RadioRx, BytesArriveInOrderWithOnAirDelay) {
  const auto img = rx_reader(3);
  Machine m;
  m.load_flash(img.code);
  m.reset(0);
  const std::vector<uint8_t> pkt = {0x10, 0x20, 0x33};
  m.dev().inject_rx(pkt, 0);
  ASSERT_EQ(m.run(1'000'000), StopReason::Halted);
  EXPECT_EQ(m.dev().host_out(),
            (std::vector<uint8_t>{0x10, 0x20, 0x33, 0x63}));
  // The third byte could not be read before 3 on-air byte times.
  EXPECT_GE(m.cycles(), 3u * 3072u);
}

TEST(RadioRx, EmptyBufferReadsZero) {
  Assembler a("empty");
  a.lds(16, kRadioRxData);
  a.sts(kHostOut, 16);
  a.lds(16, kRadioRxAvail);
  a.sts(kHostOut, 16);
  a.halt(0);
  const auto img = a.finish();
  Machine m;
  m.load_flash(img.code);
  m.reset(0);
  ASSERT_EQ(m.run(10000), StopReason::Halted);
  EXPECT_EQ(m.dev().host_out(), (std::vector<uint8_t>{0, 0}));
}

TEST(RadioRx, WorksUnderSenSmartWithDirectAndIndirectReads) {
  // Under the kernel, direct LDS reads stay native while an indirect read
  // through X goes via the translated I/O path; both must see the device.
  Assembler a("rxk");
  a.var("pad", 4);
  a.label("wait");
  a.lds(16, kRadioRxAvail);
  a.cpi(16, 2);
  a.brcs("wait");
  a.lds(17, kRadioRxData);       // direct
  a.ldi16(26, kRadioRxData);     // indirect
  a.ld_x(18);
  a.sts(kHostOut, 17);
  a.sts(kHostOut, 18);
  a.halt(0);

  rw::Linker linker;
  linker.add(a.finish());
  const auto sys = linker.link();
  Machine m;
  kern::Kernel k(m, sys);
  k.admit(0);
  ASSERT_TRUE(k.start());
  const std::vector<uint8_t> pkt = {0xAB, 0xCD};
  m.dev().inject_rx(pkt, 0);
  ASSERT_EQ(k.run(5'000'000), StopReason::Halted);
  EXPECT_EQ(k.tasks()[0].host_out, (std::vector<uint8_t>{0xAB, 0xCD}));
}

TEST(RadioRx, LoopbackRoundtrip) {
  // Transmit a packet, then inject the transmitted bytes back (as a
  // neighbouring node would) and re-receive them.
  Assembler a("loopback");
  a.var("pad", 2);
  for (uint8_t b : {7, 11, 13}) {
    a.ldi(16, b);
    a.sts(kRadioData, 16);
  }
  a.ldi(16, 1);
  a.sts(kRadioCtrl, 16);
  a.label("txwait");
  a.lds(16, kRadioStatus);
  a.andi(16, 1);
  a.brne("txwait");
  a.sts(kHostOut, 16);  // marker 0: TX done
  a.label("rxwait");
  a.lds(16, kRadioRxAvail);
  a.cpi(16, 3);
  a.brcs("rxwait");
  for (int i = 0; i < 3; ++i) {
    a.lds(17, kRadioRxData);
    a.sts(kHostOut, 17);
  }
  a.halt(0);
  const auto img = a.finish();

  Machine m;
  m.load_flash(img.code);
  m.reset(0);
  // Run until TX completes, then loop the packet back.
  while (m.dev().radio_packets().empty() &&
         m.step() == StopReason::Running) {
  }
  ASSERT_EQ(m.dev().radio_packets().size(), 1u);
  m.dev().inject_rx(m.dev().radio_packets()[0]);
  ASSERT_EQ(m.run(1'000'000), StopReason::Halted);
  EXPECT_EQ(m.dev().host_out(), (std::vector<uint8_t>{0, 7, 11, 13}));
}

// --- Transmit-side coverage -------------------------------------------------

TEST(RadioTx, SentPacketFramingAndTiming) {
  // Bytes staged at kRadioData become one packet on the ctrl strobe; the
  // packet completes after exactly size * kCyclesPerRadioByte cycles.
  Assembler a("tx");
  a.var("pad", 2);
  for (uint8_t b : {0xA5, 0x02, 0x01, 0x7F}) {
    a.ldi(16, b);
    a.sts(kRadioData, 16);
  }
  a.ldi(16, 1);
  a.sts(kRadioCtrl, 16);
  a.lds(17, kRadioStatus);  // immediately after the strobe: busy
  a.sts(kHostOut, 17);
  a.label("txwait");
  a.lds(16, kRadioStatus);
  a.andi(16, 1);
  a.brne("txwait");
  a.halt(0);
  const auto img = a.finish();

  Machine m;
  m.load_flash(img.code);
  m.reset(0);
  uint64_t done_cycle = 0;
  std::vector<uint8_t> sunk;
  m.dev().set_tx_sink([&](std::span<const uint8_t> pkt, uint64_t done) {
    sunk.assign(pkt.begin(), pkt.end());
    done_cycle = done;
  });
  ASSERT_EQ(m.run(1'000'000), StopReason::Halted);
  ASSERT_EQ(m.dev().radio_packets().size(), 1u);
  EXPECT_EQ(m.dev().radio_packets()[0],
            (std::vector<uint8_t>{0xA5, 0x02, 0x01, 0x7F}));
  EXPECT_EQ(sunk, m.dev().radio_packets()[0]);
  EXPECT_EQ(m.dev().host_out(), (std::vector<uint8_t>{1}));  // busy flag
  // The packet was in the air for exactly 4 byte times.
  EXPECT_GE(done_cycle, 4u * DeviceHub::kCyclesPerRadioByte);
  EXPECT_GE(m.cycles(), done_cycle);
}

TEST(RadioTx, BackToBackSendsQueueAtByteSpacing) {
  // A ctrl strobe while a transmission is in flight queues the staged
  // packet instead of dropping it; the queued packet starts back-to-back,
  // so the two completions are exactly size2 byte-times apart.
  Assembler a("tx2");
  a.var("pad", 2);
  for (uint8_t b : {1, 2, 3}) {
    a.ldi(16, b);
    a.sts(kRadioData, 16);
  }
  a.ldi(16, 1);
  a.sts(kRadioCtrl, 16);
  // Immediately stage and strobe a second packet while busy.
  for (uint8_t b : {9, 8}) {
    a.ldi(16, b);
    a.sts(kRadioData, 16);
  }
  a.ldi(16, 1);
  a.sts(kRadioCtrl, 16);
  a.label("txwait");
  a.lds(16, kRadioStatus);
  a.andi(16, 1);
  a.brne("txwait");
  a.halt(0);
  const auto img = a.finish();

  Machine m;
  m.load_flash(img.code);
  m.reset(0);
  std::vector<uint64_t> done_cycles;
  m.dev().set_tx_sink([&](std::span<const uint8_t>, uint64_t done) {
    done_cycles.push_back(done);
  });
  ASSERT_EQ(m.run(1'000'000), StopReason::Halted);
  ASSERT_EQ(m.dev().radio_packets().size(), 2u);
  EXPECT_EQ(m.dev().radio_packets()[0], (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(m.dev().radio_packets()[1], (std::vector<uint8_t>{9, 8}));
  ASSERT_EQ(done_cycles.size(), 2u);
  EXPECT_EQ(done_cycles[1] - done_cycles[0],
            2u * DeviceHub::kCyclesPerRadioByte);
}

TEST(RadioRx, OverrunWhenTaskPollsTooSlowly) {
  // A program that never drains the RX buffer: bytes beyond the buffer
  // capacity are lost and counted, earlier bytes survive.
  Assembler a("slow");
  a.var("pad", 2);
  // Burn ~1M cycles (5*256*256 dec/brne iterations) without touching the
  // RX ports — long enough for all 74 on-air byte times to elapse.
  a.ldi(20, 5);
  a.label("d0");
  a.ldi(21, 0);
  a.label("d1");
  a.ldi(22, 0);
  a.label("d2");
  a.dec(22);
  a.brne("d2");
  a.dec(21);
  a.brne("d1");
  a.dec(20);
  a.brne("d0");
  a.lds(16, kRadioRxAvail);  // buffer filled to capacity, no further
  a.sts(kHostOut, 16);
  a.lds(17, kRadioRxData);  // oldest byte survived, overrun lost the tail
  a.sts(kHostOut, 17);
  a.halt(0);
  const auto img = a.finish();

  Machine m;
  m.load_flash(img.code);
  m.reset(0);
  std::vector<uint8_t> big(DeviceHub::kRxBufferCap + 10);
  for (size_t i = 0; i < big.size(); ++i) big[i] = uint8_t(i + 1);
  m.dev().inject_rx(big, 0);
  ASSERT_EQ(m.run(big.size() * DeviceHub::kCyclesPerRadioByte + 4'000'000),
            StopReason::Halted);
  EXPECT_EQ(m.dev().host_out(),
            (std::vector<uint8_t>{uint8_t(DeviceHub::kRxBufferCap), 1}));
  EXPECT_EQ(m.dev().rx_overruns(), 10u);
  EXPECT_EQ(m.dev().rx_delivered(), uint64_t(DeviceHub::kRxBufferCap));
}

TEST(RadioRx, SecondScheduleRxQueuesBehindPendingDelivery) {
  // Regression: scheduling a second delivery while the first is still on
  // the air must queue it after the busy window, not silently drop it (or
  // interleave with the in-flight bytes).
  const auto img = rx_reader(4);
  Machine m;
  m.load_flash(img.code);
  m.reset(0);
  const std::vector<uint8_t> first = {0x01, 0x02};
  const std::vector<uint8_t> second = {0x03, 0x04};
  const uint64_t start1 = m.dev().schedule_rx(first, 0);
  // Overlapping request: wants to start mid-way through the first.
  const uint64_t start2 =
      m.dev().schedule_rx(second, DeviceHub::kCyclesPerRadioByte / 2);
  EXPECT_EQ(start1, 0u);
  EXPECT_EQ(start2, 2u * DeviceHub::kCyclesPerRadioByte);  // pushed back
  ASSERT_EQ(m.run(2'000'000), StopReason::Halted);
  // All four bytes arrive, in order, none lost: 1,2,3,4 then checksum 10.
  EXPECT_EQ(m.dev().host_out(),
            (std::vector<uint8_t>{0x01, 0x02, 0x03, 0x04, 0x0A}));
}

}  // namespace
}  // namespace sensmart::emu
