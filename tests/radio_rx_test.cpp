// Radio receive path: on-air timing, byte ordering, and operation under
// SenSmart (the RX ports are shared device state, reached both by direct
// native loads and by translated indirect loads).
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "kernel/kernel.hpp"
#include "rewriter/linker.hpp"

namespace sensmart::emu {
namespace {

using assembler::Assembler;

// Wait for `n` RX bytes, read them, emit them and an additive checksum.
assembler::Image rx_reader(uint8_t n) {
  Assembler a("rx");
  a.var("pad", 4);
  a.ldi(20, n);  // remaining
  a.ldi(21, 0);  // checksum
  a.label("next");
  a.label("wait");
  a.lds(16, kRadioRxAvail);
  a.cpi(16, 1);
  a.brcs("wait");  // < 1: nothing buffered yet
  a.lds(17, kRadioRxData);
  a.add(21, 17);
  a.sts(kHostOut, 17);
  a.dec(20);
  a.brne("next");
  a.sts(kHostOut, 21);
  a.halt(0);
  return a.finish();
}

TEST(RadioRx, BytesArriveInOrderWithOnAirDelay) {
  const auto img = rx_reader(3);
  Machine m;
  m.load_flash(img.code);
  m.reset(0);
  const std::vector<uint8_t> pkt = {0x10, 0x20, 0x33};
  m.dev().inject_rx(pkt, 0);
  ASSERT_EQ(m.run(1'000'000), StopReason::Halted);
  EXPECT_EQ(m.dev().host_out(),
            (std::vector<uint8_t>{0x10, 0x20, 0x33, 0x63}));
  // The third byte could not be read before 3 on-air byte times.
  EXPECT_GE(m.cycles(), 3u * 3072u);
}

TEST(RadioRx, EmptyBufferReadsZero) {
  Assembler a("empty");
  a.lds(16, kRadioRxData);
  a.sts(kHostOut, 16);
  a.lds(16, kRadioRxAvail);
  a.sts(kHostOut, 16);
  a.halt(0);
  const auto img = a.finish();
  Machine m;
  m.load_flash(img.code);
  m.reset(0);
  ASSERT_EQ(m.run(10000), StopReason::Halted);
  EXPECT_EQ(m.dev().host_out(), (std::vector<uint8_t>{0, 0}));
}

TEST(RadioRx, WorksUnderSenSmartWithDirectAndIndirectReads) {
  // Under the kernel, direct LDS reads stay native while an indirect read
  // through X goes via the translated I/O path; both must see the device.
  Assembler a("rxk");
  a.var("pad", 4);
  a.label("wait");
  a.lds(16, kRadioRxAvail);
  a.cpi(16, 2);
  a.brcs("wait");
  a.lds(17, kRadioRxData);       // direct
  a.ldi16(26, kRadioRxData);     // indirect
  a.ld_x(18);
  a.sts(kHostOut, 17);
  a.sts(kHostOut, 18);
  a.halt(0);

  rw::Linker linker;
  linker.add(a.finish());
  const auto sys = linker.link();
  Machine m;
  kern::Kernel k(m, sys);
  k.admit(0);
  ASSERT_TRUE(k.start());
  const std::vector<uint8_t> pkt = {0xAB, 0xCD};
  m.dev().inject_rx(pkt, 0);
  ASSERT_EQ(k.run(5'000'000), StopReason::Halted);
  EXPECT_EQ(k.tasks()[0].host_out, (std::vector<uint8_t>{0xAB, 0xCD}));
}

TEST(RadioRx, LoopbackRoundtrip) {
  // Transmit a packet, then inject the transmitted bytes back (as a
  // neighbouring node would) and re-receive them.
  Assembler a("loopback");
  a.var("pad", 2);
  for (uint8_t b : {7, 11, 13}) {
    a.ldi(16, b);
    a.sts(kRadioData, 16);
  }
  a.ldi(16, 1);
  a.sts(kRadioCtrl, 16);
  a.label("txwait");
  a.lds(16, kRadioStatus);
  a.andi(16, 1);
  a.brne("txwait");
  a.sts(kHostOut, 16);  // marker 0: TX done
  a.label("rxwait");
  a.lds(16, kRadioRxAvail);
  a.cpi(16, 3);
  a.brcs("rxwait");
  for (int i = 0; i < 3; ++i) {
    a.lds(17, kRadioRxData);
    a.sts(kHostOut, 17);
  }
  a.halt(0);
  const auto img = a.finish();

  Machine m;
  m.load_flash(img.code);
  m.reset(0);
  // Run until TX completes, then loop the packet back.
  while (m.dev().radio_packets().empty() &&
         m.step() == StopReason::Running) {
  }
  ASSERT_EQ(m.dev().radio_packets().size(), 1u);
  m.dev().inject_rx(m.dev().radio_packets()[0]);
  ASSERT_EQ(m.run(1'000'000), StopReason::Halted);
  EXPECT_EQ(m.dev().host_out(), (std::vector<uint8_t>{0, 7, 11, 13}));
}

}  // namespace
}  // namespace sensmart::emu
