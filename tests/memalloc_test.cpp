// The §III-A dynamic-allocation module: correctness natively and under
// SenSmart (logical addressing makes the allocator relocation-safe).
#include <gtest/gtest.h>

#include "apps/memalloc.hpp"
#include "baselines/native_runner.hpp"
#include "sim/harness.hpp"

namespace sensmart::apps {
namespace {

using assembler::Assembler;
using assembler::Image;

// Allocate every block, checking distinctness and exhaustion; free one,
// re-allocate it, and verify data written through one block does not
// bleed into its neighbour. Emits a sequence of result bytes.
Image allocator_exercise() {
  Assembler a("allocx");
  a.rjmp("main");
  const PoolAllocator pool = emit_pool_allocator(a, "p", 4, 8);
  EXPECT_EQ(pool.n_blocks, 4);

  a.label("main");
  a.rcall("p_init");

  // Allocate all four; remember #0 and #1 (r8:r9, r10:r11).
  a.rcall("p_alloc");
  a.movw(8, 26);
  a.rcall("p_alloc");
  a.movw(10, 26);
  a.rcall("p_alloc");
  a.movw(12, 26);
  a.rcall("p_alloc");
  a.movw(14, 26);

  // Distinct? (emit 1 if b0 != b1)
  a.ldi(20, 0);
  a.mov(16, 8);
  a.cp(16, 10);
  a.mov(16, 9);
  a.cpc(16, 11);
  a.breq("same01");
  a.ldi(20, 1);
  a.label("same01");
  a.sts(emu::kHostOut, 20);

  // Exhausted? A fifth alloc must return null.
  a.rcall("p_alloc");
  a.mov(16, 26);
  a.or_(16, 27);
  a.ldi(20, 1);
  a.breq("was_null");
  a.ldi(20, 0);
  a.label("was_null");
  a.sts(emu::kHostOut, 20);

  // Free block #1 and allocate again: LIFO gives it straight back.
  a.movw(26, 10);
  a.rcall("p_free");
  a.rcall("p_alloc");
  a.ldi(20, 0);
  a.mov(16, 26);
  a.cp(16, 10);
  a.mov(16, 27);
  a.cpc(16, 11);
  a.brne("not_same");
  a.ldi(20, 1);
  a.label("not_same");
  a.sts(emu::kHostOut, 20);

  // Write patterns through blocks #0 and #1 and verify no bleed.
  a.movw(30, 8);
  a.ldi(16, 0xAA);
  for (uint8_t q = 0; q < 8; ++q) a.std_z(q, 16);
  a.movw(30, 10);
  a.ldi(16, 0x55);
  for (uint8_t q = 0; q < 8; ++q) a.std_z(q, 16);
  a.movw(30, 8);
  a.ldd_z(17, 7);  // last byte of block #0 must still be 0xAA
  a.sts(emu::kHostOut, 17);

  a.halt(0);
  return a.finish();
}

TEST(MemAlloc, WorksNatively) {
  const auto r = base::run_native(allocator_exercise(), 10'000'000);
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  EXPECT_EQ(r.host_out, (std::vector<uint8_t>{1, 1, 1, 0xAA}));
}

TEST(MemAlloc, WorksUnderSenSmart) {
  const auto native = base::run_native(allocator_exercise(), 10'000'000);
  const auto r = sim::run_system({allocator_exercise()});
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  ASSERT_EQ(r.tasks[0].state, kern::TaskState::Done);
  EXPECT_EQ(r.tasks[0].host_out, native.host_out);
}

TEST(MemAlloc, TwoTasksHaveIndependentPools) {
  const auto r = sim::run_system({allocator_exercise(), allocator_exercise()});
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  for (const auto& t : r.tasks) {
    EXPECT_EQ(t.state, kern::TaskState::Done);
    EXPECT_EQ(t.host_out, (std::vector<uint8_t>{1, 1, 1, 0xAA}));
  }
}

TEST(MemAlloc, RejectsBadParameters) {
  Assembler a("bad");
  EXPECT_THROW(emit_pool_allocator(a, "x", 4, 1), std::invalid_argument);
  EXPECT_THROW(emit_pool_allocator(a, "y", 0, 8), std::invalid_argument);
  EXPECT_THROW(emit_pool_allocator(a, "z", 4, 64), std::invalid_argument);
}

}  // namespace
}  // namespace sensmart::apps
