// The t-kernel comparison mode: asymmetric protection (kernel area only,
// identity addressing), on-node rewriting warm-up, and its cost profile.
#include <gtest/gtest.h>

#include "apps/benchmarks.hpp"
#include "baselines/copy_on_switch.hpp"
#include "baselines/native_runner.hpp"
#include "rewriter/tkernel.hpp"
#include "sim/harness.hpp"

namespace sensmart {
namespace {

using assembler::Assembler;

sim::RunSpec tk_spec(uint64_t warmup = 0) {
  sim::RunSpec spec;
  spec.kernel = kern::tkernel_config();
  spec.kernel.warmup_cycles = warmup;
  spec.rewrite = rw::tkernel_rewrite_options();
  spec.merge_trampolines = rw::kTKernelMerging;
  return spec;
}

TEST(TKernelMode, RunsBenchmarksCorrectly) {
  for (const auto& name : apps::benchmark_names()) {
    const auto img = apps::build_benchmark(name);
    const auto native = base::run_native(img);
    const auto r = sim::run_system({img}, tk_spec());
    ASSERT_EQ(r.stop, emu::StopReason::Halted) << name;
    EXPECT_EQ(r.tasks[0].host_out, native.host_out) << name;
  }
}

TEST(TKernelMode, WarmupChargeDelaysStart) {
  const auto img = apps::lfsr_program(100);
  const auto cold = sim::run_system({img}, tk_spec(7'372'800));
  const auto warm = sim::run_system({img}, tk_spec(0));
  EXPECT_NEAR(double(cold.cycles - warm.cycles), 7'372'800.0, 1000.0);
}

TEST(TKernelMode, FasterThanSenSmartOnCpuBoundCode) {
  const auto img = apps::build_benchmark("crc");
  const auto tk = sim::run_system({img}, tk_spec());
  const auto ss = sim::run_system({img});
  EXPECT_LT(tk.active_cycles, ss.active_cycles);
}

TEST(TKernelMode, KernelAreaIsStillProtected) {
  // Asymmetric protection: a store into the kernel data area is caught.
  Assembler a("evil");
  a.ldi16(26, emu::kDataEnd - 8);  // inside the kernel area
  a.ldi(16, 0xAA);
  a.st_x(16);
  a.halt(0);
  const auto r = sim::run_system({a.finish()}, tk_spec());
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  EXPECT_EQ(r.tasks[0].state, kern::TaskState::Killed);
  EXPECT_EQ(r.tasks[0].kill_reason, kern::KillReason::InvalidAccess);
}

TEST(TKernelMode, ApplicationAreaIsNotIsolated) {
  // Identity addressing without per-task regions: the same wild store that
  // SenSmart catches (KernelE2E.WildPointerIsContainedToOffendingTask)
  // passes under the t-kernel's lighter protection — the paper's Table I
  // "Memory Protection: Partial".
  Assembler a("wild");
  a.ldi16(26, 0x0900);
  a.ldi(16, 0xAA);
  a.st_x(16);
  a.halt(7);
  const auto r = sim::run_system({a.finish()}, tk_spec());
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  EXPECT_EQ(r.tasks[0].state, kern::TaskState::Done);  // not killed
  EXPECT_EQ(r.tasks[0].exit_code, 7);
}

TEST(CopyOnSwitch, IsOrdersOfMagnitudeSlowerThanSenSmart) {
  // §I's rejection of stack swapping, quantified: a 200 B stack swap costs
  // >10 ms on MICA2-class dataflash, vs 2298 cycles (~0.3 ms) for a full
  // SenSmart context switch.
  base::CopyOnSwitchModel cos;
  EXPECT_GT(cos.full_switch_ms(200), 10.0);
  const double sensmart_ms = 2298.0 * 1000.0 / emu::kClockHz;
  EXPECT_GT(cos.full_switch_ms(200) / sensmart_ms, 30.0);
}

}  // namespace
}  // namespace sensmart
