// Shared test-program generator: a random but well-behaved (memory-safe,
// terminating) application with ALU traffic, bounded heap accesses through
// X/Y/Z, balanced pushes, short loops, calls into generated subroutines and
// LPM from a constant table. Used by the equivalence property suite and by
// the network dissemination property suite (which disseminates the
// naturalized form of these programs over a lossy medium).
#pragma once

#include <cstdint>

#include "assembler/assembler.hpp"

namespace sensmart::testlib {

// Bytes of heap the generated program touches (checksummed at exit).
inline constexpr uint16_t kRandomProgramArrBytes = 64;

// Deterministic in `seed`: the same seed always yields the same image.
assembler::Image random_program(uint32_t seed);

}  // namespace sensmart::testlib
