#include "testlib/random_program.hpp"

#include <random>
#include <string>

#include "emu/io_map.hpp"

namespace sensmart::testlib {

using assembler::Assembler;
using assembler::Image;

Image random_program(uint32_t seed) {
  constexpr uint16_t kArrBytes = kRandomProgramArrBytes;
  std::mt19937 rng(seed);
  auto u = [&rng](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };

  Assembler a("rand" + std::to_string(seed));
  const uint16_t arr = a.var("arr", kArrBytes);
  int label_id = 0;
  auto fresh = [&label_id] { return "L" + std::to_string(label_id++); };

  a.rjmp("main");

  // Two subroutines with a little work each.
  for (int s = 0; s < 2; ++s) {
    a.label("sub" + std::to_string(s));
    a.push(18);
    for (int i = 0; i < u(2, 6); ++i) {
      const uint8_t rd = uint8_t(u(16, 21));
      switch (u(0, 3)) {
        case 0: a.subi(rd, uint8_t(u(0, 255))); break;
        case 1: a.eor(rd, uint8_t(u(16, 21))); break;
        case 2: a.swap(rd); break;
        default: a.inc(rd); break;
      }
    }
    a.pop(18);
    a.ret();
  }

  const uint16_t table[4] = {uint16_t(rng()), uint16_t(rng()),
                             uint16_t(rng()), uint16_t(rng())};
  a.dw("table", table);

  a.label("main");
  for (uint8_t r = 16; r <= 25; ++r) a.ldi(r, uint8_t(u(0, 255)));

  const int blocks = u(8, 24);
  for (int b = 0; b < blocks; ++b) {
    switch (u(0, 6)) {
      case 0: {  // ALU burst
        for (int i = 0; i < u(1, 5); ++i) {
          const uint8_t rd = uint8_t(u(16, 25));
          const uint8_t rr = uint8_t(u(16, 25));
          switch (u(0, 5)) {
            case 0: a.add(rd, rr); break;
            case 1: a.sub(rd, rr); break;
            case 2: a.and_(rd, rr); break;
            case 3: a.or_(rd, rr); break;
            case 4: a.eor(rd, rr); break;
            default: a.mov(rd, rr); break;
          }
        }
        break;
      }
      case 1: {  // X-pointer heap traffic (bounded)
        a.ldi16(26, uint16_t(arr + u(0, kArrBytes - 4)));
        a.st_x_inc(uint8_t(u(16, 25)));
        a.st_x(uint8_t(u(16, 25)));
        a.ld_x_inc(uint8_t(u(16, 20)));
        break;
      }
      case 2: {  // Y displacement traffic (grouping candidates)
        a.ldi16(28, uint16_t(arr + u(0, kArrBytes - 8)));
        a.std_y(uint8_t(u(0, 3)), uint8_t(u(16, 25)));
        a.std_y(uint8_t(u(4, 7)), uint8_t(u(16, 25)));
        a.ldd_y(uint8_t(u(16, 20)), uint8_t(u(0, 7)));
        break;
      }
      case 3: {  // short counted loop
        const std::string top = fresh();
        a.ldi(19, uint8_t(u(2, 6)));
        a.label(top);
        a.add(20, 21);
        a.eor(22, 20);
        a.dec(19);
        a.brne(top);
        break;
      }
      case 4: {  // balanced stack traffic
        const uint8_t r1 = uint8_t(u(16, 25)), r2 = uint8_t(u(16, 25));
        a.push(r1);
        a.push(r2);
        a.pop(r2);
        a.pop(r1);
        break;
      }
      case 5: {  // call a subroutine
        a.rcall("sub" + std::to_string(u(0, 1)));
        break;
      }
      default: {  // LPM from the table
        a.ldi_label(30, "table");
        a.add(30, 30);
        a.adc(31, 31);
        const int off = u(0, 7);
        if (off) {
          a.ldi(18, uint8_t(off));
          a.add(30, 18);
          a.ldi(18, 0);
          a.adc(31, 18);
        }
        a.lpm_inc(uint8_t(u(16, 22)));
        a.lpm(uint8_t(u(23, 25)));
        break;
      }
    }
  }

  // Dump registers r16..r25.
  for (uint8_t r = 16; r <= 25; ++r) a.sts(emu::kHostOut, r);
  // Heap checksum.
  a.ldi16(26, arr);
  a.ldi(17, kArrBytes);
  a.ldi(16, 0);
  a.label("ck");
  a.ld_x_inc(18);
  a.add(16, 18);
  a.dec(17);
  a.brne("ck");
  a.sts(emu::kHostOut, 16);
  a.halt(0);
  return a.finish();
}

}  // namespace sensmart::testlib
