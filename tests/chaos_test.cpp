// The chaos harness and the kernel auditor: seeded fault-injection runs
// must be violation-free and replay bit-identically; the auditor must
// actually catch corruption (negative control); and move_regions must
// preserve region contents for both slide directions.
#include <gtest/gtest.h>

#include "chaos/chaos.hpp"
#include "emu/machine.hpp"
#include "kernel/kernel.hpp"
#include "rewriter/linker.hpp"
#include "sim/harness.hpp"

namespace sensmart::kern {
// Test peer with access to the kernel's memory-management internals.
struct KernelTestPeer {
  static Task& task(Kernel& k, size_t i) { return k.tasks_[i]; }
  static uint16_t sp(const Kernel& k, const Task& t) { return k.sp_of(t); }
  static std::vector<Kernel::TaskSnapshot> snapshot(const Kernel& k) {
    return k.audit_snapshot();
  }
  static void audit_after(Kernel& k, const char* what,
                          const std::vector<Kernel::TaskSnapshot>& before) {
    k.audit_after(what, before);
  }
  static void move_regions(Kernel& k, Task& donor, Task& to, uint16_t delta) {
    k.move_regions(donor, to, delta);
  }
  static void sample_alloc(Kernel& k) { k.sample_alloc(); }
};
}  // namespace sensmart::kern

namespace sensmart {
namespace {

using assembler::Assembler;
using assembler::Image;
using kern::KernelConfig;
using kern::KernelTestPeer;
using kern::Task;

Image trivial_program(uint16_t heap_bytes) {
  Assembler a("trivial");
  if (heap_bytes) a.var("h", heap_bytes);
  a.halt(0);
  return a.finish();
}

struct World {
  explicit World(const std::vector<Image>& images, KernelConfig cfg = {}) {
    rw::Linker linker;
    for (const auto& img : images) linker.add(img);
    sys = linker.link();
    k = std::make_unique<kern::Kernel>(m, sys, cfg);
  }
  emu::Machine m;
  rw::LinkedSystem sys;
  std::unique_ptr<kern::Kernel> k;
};

// --- Chaos runs --------------------------------------------------------------

TEST(Chaos, SeedMatrixRunsClean) {
  chaos::ChaosOptions opts;
  uint64_t injected = 0, relocations = 0, audits = 0;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    opts.seed = seed;
    const chaos::ChaosResult res = chaos::run_chaos(opts);
    EXPECT_TRUE(res.ok()) << res.summary()
                          << (res.violations.empty()
                                  ? ""
                                  : "\n  " + res.violations.front());
    injected += res.run.kernel_stats.injected_kills;
    relocations += res.run.kernel_stats.relocations;
    audits += res.run.kernel_stats.audit_checks;
  }
  // The matrix must actually exercise the machinery under test.
  EXPECT_GT(injected, 0u);
  EXPECT_GT(relocations, 24u);
  EXPECT_GT(audits, 24u);
}

TEST(Chaos, ReplayIsTraceIdentical) {
  chaos::ChaosOptions opts;
  opts.seed = 7;
  const chaos::ChaosResult a = chaos::run_chaos(opts);
  const chaos::ChaosResult b = chaos::run_chaos(opts);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.trace_events, b.trace_events);
  EXPECT_EQ(a.run.cycles, b.run.cycles);
  ASSERT_EQ(a.run.tasks.size(), b.run.tasks.size());
  for (size_t i = 0; i < a.run.tasks.size(); ++i) {
    EXPECT_EQ(a.run.tasks[i].state, b.run.tasks[i].state) << i;
    EXPECT_EQ(a.run.tasks[i].host_out, b.run.tasks[i].host_out) << i;
  }
}

TEST(Chaos, AuditingChargesNoEmulatedCycles) {
  chaos::ChaosOptions audited;
  audited.seed = 11;
  chaos::ChaosOptions plain = audited;
  plain.audit = false;
  const chaos::ChaosResult a = chaos::run_chaos(audited);
  const chaos::ChaosResult b = chaos::run_chaos(plain);
  EXPECT_GT(a.run.kernel_stats.audit_checks, 0u);
  EXPECT_EQ(b.run.kernel_stats.audit_checks, 0u);
  // Identical timing and identical event trace: the auditor is invisible.
  EXPECT_EQ(a.run.cycles, b.run.cycles);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
}

// --- Auditor negative controls ----------------------------------------------
// A checker that can never fire is worthless: corrupt state behind the
// auditor's back and require it to notice.

TEST(Auditor, DetectsHeapCorruption) {
  KernelConfig cfg;
  cfg.audit = true;
  World w({trivial_program(32), trivial_program(32)}, cfg);
  ASSERT_EQ(w.k->admit_all(), 2u);
  ASSERT_TRUE(w.k->start());

  const auto before = KernelTestPeer::snapshot(*w.k);
  ASSERT_EQ(before.size(), 2u);
  const Task& t1 = w.k->tasks()[1];
  w.m.mem().set_raw(t1.p_l, static_cast<uint8_t>(w.m.mem().raw(t1.p_l) ^ 0xFF));
  KernelTestPeer::audit_after(*w.k, "test", before);

  EXPECT_EQ(w.k->stats().audit_failures, 1u);
  ASSERT_EQ(w.k->audit_log().size(), 1u);
  EXPECT_NE(w.k->audit_log()[0].find("heap byte"), std::string::npos)
      << w.k->audit_log()[0];
}

TEST(Auditor, DetectsRegionInvariantViolation) {
  KernelConfig cfg;
  cfg.audit = true;
  World w({trivial_program(16), trivial_program(16)}, cfg);
  ASSERT_EQ(w.k->admit_all(), 2u);
  ASSERT_TRUE(w.k->start());

  const auto before = KernelTestPeer::snapshot(*w.k);
  KernelTestPeer::task(*w.k, 1).p_l += 1;  // break the contiguous tiling
  KernelTestPeer::audit_after(*w.k, "test", before);

  EXPECT_GE(w.k->stats().audit_failures, 1u);
  ASSERT_FALSE(w.k->audit_log().empty());
  EXPECT_NE(w.k->audit_log()[0].find("region gap"), std::string::npos)
      << w.k->audit_log()[0];
}

// --- move_regions content preservation (property) ----------------------------

class RelocationContents : public ::testing::Test {
 protected:
  void SetUp() override {
    KernelConfig cfg;
    cfg.audit = true;  // the auditor double-checks every move we make
    w = std::make_unique<World>(
        std::vector<Image>{trivial_program(48), trivial_program(64),
                           trivial_program(32)},
        cfg);
    ASSERT_EQ(w->k->admit_all(), 3u);
    ASSERT_TRUE(w->k->start());

    auto& mem = w->m.mem();
    for (size_t i = 0; i < 3; ++i) {
      Task& t = KernelTestPeer::task(*w->k, i);
      for (uint16_t a = t.p_l; a < t.p_h; ++a)
        mem.set_raw(a, static_cast<uint8_t>(0x20 + 0x30 * i + a * 31));
      // Give every task a non-empty live stack (8 patterned bytes). Task 0
      // is Running, so its SP lives in the machine.
      uint16_t sp = KernelTestPeer::sp(*w->k, t);
      for (int j = 0; j < 8; ++j)
        mem.set_raw(static_cast<uint16_t>(sp - j),
                    static_cast<uint8_t>(0xA0 + 0x11 * i + j));
      if (i == 0)
        mem.set_sp(static_cast<uint16_t>(sp - 8));
      else
        t.sp = static_cast<uint16_t>(sp - 8);
      expected_heap[i] = bytes(t.p_l, t.p_h);
      expected_stack[i] = stack_bytes(t);
    }
    ASSERT_TRUE(w->k->check_invariants().empty()) << w->k->check_invariants();
  }

  std::vector<uint8_t> bytes(uint16_t lo, uint16_t hi) const {
    std::vector<uint8_t> v;
    for (uint16_t a = lo; a < hi; ++a) v.push_back(w->m.mem().raw(a));
    return v;
  }
  std::vector<uint8_t> stack_bytes(const Task& t) const {
    return bytes(static_cast<uint16_t>(KernelTestPeer::sp(*w->k, t) + 1),
                 t.p_u);
  }

  void expect_contents_preserved(const char* ctx) {
    EXPECT_TRUE(w->k->check_invariants().empty())
        << ctx << ": " << w->k->check_invariants();
    for (size_t i = 0; i < 3; ++i) {
      const Task& t = KernelTestPeer::task(*w->k, i);
      EXPECT_EQ(bytes(t.p_l, t.p_h), expected_heap[i]) << ctx << " task " << i;
      EXPECT_EQ(stack_bytes(t), expected_stack[i]) << ctx << " task " << i;
    }
    EXPECT_EQ(w->k->stats().audit_failures, 0u)
        << ctx << ": " << (w->k->audit_log().empty() ? "" : w->k->audit_log()[0]);
  }

  std::unique_ptr<World> w;
  std::vector<uint8_t> expected_heap[3], expected_stack[3];
};

TEST_F(RelocationContents, DonorAboveSlidesIntermediatesUpIntact) {
  // Task 2 (top, holds the leftover) donates to task 0: everything in
  // between — task 1 and task 0's region top — slides upward.
  KernelTestPeer::move_regions(*w->k, KernelTestPeer::task(*w->k, 2),
                               KernelTestPeer::task(*w->k, 0), 16);
  expect_contents_preserved("donor-above");
}

TEST_F(RelocationContents, DonorBelowSlidesIntermediatesDownIntact) {
  // Task 0 (bottom) donates to task 2: the intermediate region slides down.
  KernelTestPeer::move_regions(*w->k, KernelTestPeer::task(*w->k, 0),
                               KernelTestPeer::task(*w->k, 2), 16);
  expect_contents_preserved("donor-below");
}

TEST_F(RelocationContents, RoundTripRestoresLayout) {
  Task& t0 = KernelTestPeer::task(*w->k, 0);
  Task& t2 = KernelTestPeer::task(*w->k, 2);
  const uint16_t p_l0 = t0.p_l, p_u0 = t0.p_u;
  KernelTestPeer::move_regions(*w->k, t2, t0, 24);
  KernelTestPeer::move_regions(*w->k, t0, t2, 24);
  expect_contents_preserved("round-trip");
  EXPECT_EQ(t0.p_l, p_l0);
  EXPECT_EQ(t0.p_u, p_u0);
}

// --- Exact average stack allocation (regression) -----------------------------
// Hand-computed trace: three 100-byte-heap tasks under the default config
// get stack allocations 128, 128 and 3124 bytes (the last task takes the
// leftover), a total of 3380 bytes over 3 tasks. The time-average must be
// the exact ratio 3380/3 ≈ 1126.67 — the per-sample integer division of
// the old accumulator floored it to 1126.
TEST(Metrics, AvgStackAllocIsTheExactRatio) {
  World w({trivial_program(100), trivial_program(100), trivial_program(100)});
  ASSERT_EQ(w.k->admit_all(), 3u);
  ASSERT_TRUE(w.k->start());
  const auto& ts = w.k->tasks();
  ASSERT_EQ(ts[0].stack_alloc(), 128u);
  ASSERT_EQ(ts[1].stack_alloc(), 128u);
  ASSERT_EQ(ts[2].stack_alloc(), 3124u);

  w.m.charge(1000);
  KernelTestPeer::sample_alloc(*w.k);
  EXPECT_NEAR(w.k->avg_stack_alloc(), 3380.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace sensmart
