// Kernel units: logical addressing, region layout, admission, stack
// relocation integrity, SP virtualization, reserved-port virtualization,
// scheduling behaviour and fault containment.
#include <gtest/gtest.h>

#include "apps/treesearch.hpp"
#include "assembler/assembler.hpp"
#include "baselines/native_runner.hpp"
#include "emu/machine.hpp"
#include "kernel/kernel.hpp"
#include "rewriter/linker.hpp"
#include "sim/harness.hpp"

namespace sensmart::kern {
namespace {

using assembler::Assembler;
using assembler::Image;

Image trivial_program(uint16_t heap_bytes) {
  Assembler a("trivial");
  if (heap_bytes) a.var("h", heap_bytes);
  a.halt(0);
  return a.finish();
}

struct World {
  explicit World(const std::vector<Image>& images, KernelConfig cfg = {}) {
    rw::Linker linker;
    for (const auto& img : images) linker.add(img);
    sys = linker.link();
    k = std::make_unique<Kernel>(m, sys, cfg);
  }
  emu::Machine m;
  rw::LinkedSystem sys;
  std::unique_ptr<Kernel> k;
};

// --- Layout and admission ----------------------------------------------------

TEST(Layout, RegionsTileTheApplicationArea) {
  World w({trivial_program(100), trivial_program(200), trivial_program(50)});
  ASSERT_EQ(w.k->admit_all(), 3u);
  ASSERT_TRUE(w.k->start());
  EXPECT_TRUE(w.k->check_invariants().empty()) << w.k->check_invariants();

  const auto& ts = w.k->tasks();
  EXPECT_EQ(ts[0].p_l, emu::kSramBase);
  EXPECT_EQ(ts[0].p_h, emu::kSramBase + 100);
  EXPECT_EQ(ts[1].p_l, ts[0].p_u);
  EXPECT_EQ(ts[2].p_u, w.k->app_area_end());  // leftover goes to the last
  // Initial stacks: the first two get the configured initial size.
  const KernelConfig cfg;
  EXPECT_EQ(ts[0].stack_alloc(), cfg.initial_stack);
  EXPECT_GE(ts[2].stack_alloc(), cfg.initial_stack);
}

TEST(Layout, AdmissionRefusedWhenHeapsDoNotFit) {
  World w({trivial_program(2000), trivial_program(2000)});
  EXPECT_TRUE(w.k->admit(0).has_value());
  EXPECT_FALSE(w.k->admit(1).has_value());  // 4000 B of heap cannot fit
}

TEST(Layout, StartFailsWithNoTasks) {
  World w({trivial_program(0)});
  EXPECT_FALSE(w.k->start());
}

TEST(Layout, InitialStackShrinksUnderPressureButNotBelowMinimum) {
  KernelConfig cfg;
  cfg.initial_stack = 1000;  // more than fits for 4 tasks
  World w({trivial_program(400), trivial_program(400), trivial_program(400),
           trivial_program(400)},
          cfg);
  ASSERT_EQ(w.k->admit_all(), 4u);
  ASSERT_TRUE(w.k->start());
  for (const auto& t : w.k->tasks()) {
    EXPECT_GE(t.stack_alloc(), cfg.min_stack);
    EXPECT_LT(t.stack_alloc(), 1000);
  }
  EXPECT_TRUE(w.k->check_invariants().empty());
}

// --- SP virtualization ----------------------------------------------------------

TEST(StackPointer, ReadsAreLogical) {
  // The task reads SPL/SPH right after start; it must see the top of the
  // logical space (0x10FF), not its physical region.
  Assembler a("sp");
  a.in(16, emu::kSpl);
  a.in(17, emu::kSph);
  a.sts(emu::kHostOut, 16);
  a.sts(emu::kHostOut, 17);
  a.halt(0);
  World w({a.finish(), trivial_program(8)});
  w.k->admit_all();
  ASSERT_TRUE(w.k->start());
  ASSERT_EQ(w.k->run(1'000'000), emu::StopReason::Halted);
  const auto& out = w.k->tasks()[0].host_out;
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0] | (out[1] << 8), emu::kDataEnd - 1);
}

TEST(StackPointer, WriteRoundtripsThroughLogicalSpace) {
  // Set SP to logical 0x10F0, push/pop, read it back.
  Assembler a("spw");
  a.ldi(16, 0xF0);
  a.ldi(17, 0x10);
  a.out(emu::kSpl, 16);
  a.out(emu::kSph, 17);
  a.ldi(18, 0x5A);
  a.push(18);
  a.pop(19);
  a.in(20, emu::kSpl);
  a.in(21, emu::kSph);
  a.sts(emu::kHostOut, 19);
  a.sts(emu::kHostOut, 20);
  a.sts(emu::kHostOut, 21);
  a.halt(0);
  World w({a.finish(), trivial_program(8)});
  w.k->admit_all();
  ASSERT_TRUE(w.k->start());
  ASSERT_EQ(w.k->run(1'000'000), emu::StopReason::Halted);
  const auto& out = w.k->tasks()[0].host_out;
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 0x5A);
  EXPECT_EQ(out[1] | (out[2] << 8), 0x10F0);
}

TEST(StackPointer, SettingSpIntoHeapGrowsOrKills) {
  // A task demanding a deeper stack than physically possible is killed
  // with OutOfStackMemory rather than corrupting anyone.
  Assembler a("deep");
  a.ldi(16, 0x00);
  a.ldi(17, 0x02);  // logical 0x0200: a ~3.8 KB stack demand
  a.out(emu::kSph, 17);
  a.out(emu::kSpl, 16);
  a.halt(0);
  World w({a.finish(), trivial_program(8)});
  w.k->admit_all();
  ASSERT_TRUE(w.k->start());
  ASSERT_EQ(w.k->run(1'000'000), emu::StopReason::Halted);
  EXPECT_EQ(w.k->tasks()[0].state, TaskState::Killed);
  EXPECT_TRUE(w.k->tasks()[0].kill_reason == KillReason::OutOfStackMemory ||
              w.k->tasks()[0].kill_reason == KillReason::InvalidAccess);
  EXPECT_EQ(w.k->tasks()[1].state, TaskState::Done);
}

// --- Reserved-port virtualization ------------------------------------------------

TEST(ReservedPorts, Timer3ReadLatchesPerTask) {
  Assembler a("t3");
  a.lds(16, emu::kTcnt3L);  // latches the high byte
  a.lds(17, emu::kTcnt3H);
  a.sts(emu::kHostOut, 16);
  a.sts(emu::kHostOut, 17);
  a.halt(0);
  World w({a.finish(), trivial_program(8)});
  w.k->admit_all();
  ASSERT_TRUE(w.k->start());
  ASSERT_EQ(w.k->run(1'000'000), emu::StopReason::Halted);
  const auto& out = w.k->tasks()[0].host_out;
  ASSERT_EQ(out.size(), 2u);
  // System init is 5738 cycles = 22 ticks; the read happens shortly after.
  const int ticks = out[0] | (out[1] << 8);
  EXPECT_GE(ticks, 22);
  EXPECT_LE(ticks, 40);
}

TEST(ReservedPorts, HostOutIsPerTask) {
  Assembler a("w1");
  a.ldi(16, 0x11);
  a.sts(emu::kHostOut, 16);
  a.halt(0);
  Assembler b("w2");
  b.ldi(16, 0x22);
  b.sts(emu::kHostOut, 16);
  b.halt(0);
  World w({a.finish(), b.finish()});
  w.k->admit_all();
  ASSERT_TRUE(w.k->start());
  ASSERT_EQ(w.k->run(1'000'000), emu::StopReason::Halted);
  EXPECT_EQ(w.k->tasks()[0].host_out, std::vector<uint8_t>{0x11});
  EXPECT_EQ(w.k->tasks()[1].host_out, std::vector<uint8_t>{0x22});
  // Nothing leaked to the machine-level host port.
  EXPECT_TRUE(w.m.dev().host_out().empty());
}

TEST(ReservedPorts, IndirectAccessIsVirtualizedToo) {
  // Writing the halt port through a pointer must terminate only the task.
  Assembler a("ind");
  a.ldi16(26, emu::kHostHalt);
  a.ldi(16, 9);
  a.st_x(16);
  a.label("spin");
  a.rjmp("spin");
  World w({a.finish(), trivial_program(8)});
  w.k->admit_all();
  ASSERT_TRUE(w.k->start());
  ASSERT_EQ(w.k->run(1'000'000), emu::StopReason::Halted);
  EXPECT_EQ(w.k->tasks()[0].state, TaskState::Done);
  EXPECT_EQ(w.k->tasks()[0].exit_code, 9);
}

// --- Fault containment ------------------------------------------------------------

TEST(Faults, StackUnderflowIsCaught) {
  Assembler a("uf");
  a.pop(16);  // empty stack
  a.halt(0);
  World w({a.finish(), trivial_program(8)});
  w.k->admit_all();
  ASSERT_TRUE(w.k->start());
  ASSERT_EQ(w.k->run(1'000'000), emu::StopReason::Halted);
  EXPECT_EQ(w.k->tasks()[0].state, TaskState::Killed);
  EXPECT_EQ(w.k->tasks()[0].kill_reason, KillReason::InvalidAccess);
}

TEST(Faults, ReturnWithEmptyStackIsCaught) {
  Assembler a("retuf");
  a.ret();
  World w({a.finish(), trivial_program(8)});
  w.k->admit_all();
  ASSERT_TRUE(w.k->start());
  ASSERT_EQ(w.k->run(1'000'000), emu::StopReason::Halted);
  EXPECT_EQ(w.k->tasks()[0].state, TaskState::Killed);
}

TEST(Faults, SmashedReturnAddressIsCaught) {
  // Push a garbage return address and RET into it.
  Assembler a("smash");
  a.ldi(16, 0xFF);
  a.push(16);
  a.push(16);  // return address 0xFFFF: outside the program
  a.ret();
  World w({a.finish(), trivial_program(8)});
  w.k->admit_all();
  ASSERT_TRUE(w.k->start());
  ASSERT_EQ(w.k->run(1'000'000), emu::StopReason::Halted);
  EXPECT_EQ(w.k->tasks()[0].state, TaskState::Killed);
  EXPECT_EQ(w.k->tasks()[0].kill_reason, KillReason::BadJump);
}

TEST(Faults, IndirectJumpOutsideProgramIsCaught) {
  Assembler a("badijmp");
  a.ldi16(30, 0x7FFF);
  a.ijmp();
  World w({a.finish(), trivial_program(8)});
  w.k->admit_all();
  ASSERT_TRUE(w.k->start());
  ASSERT_EQ(w.k->run(1'000'000), emu::StopReason::Halted);
  EXPECT_EQ(w.k->tasks()[0].state, TaskState::Killed);
  EXPECT_EQ(w.k->tasks()[0].kill_reason, KillReason::BadJump);
}

// Regression: a grouped-access window whose start address wraps past
// 0xFFFF (base + group_min > 0xFFFF) used to be truncated back into low
// memory, alias the I/O page, and pass the leader's window validation.
TEST(Faults, WrappedGroupWindowIsRejected) {
  Assembler a("wrapwin");
  a.var("pad", 8);
  a.ldi16(28, 0xFFF0);  // Y far outside the logical data space
  a.ldd_y(16, 0x20);    // grouped pair; window start 0x10010 wraps
  a.ldd_y(17, 0x24);
  a.sts(emu::kHostOut, 16);
  a.halt(0);
  const auto r = sim::run_system({a.finish()});
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  EXPECT_EQ(r.tasks[0].state, TaskState::Killed);
  EXPECT_EQ(r.tasks[0].kill_reason, KillReason::InvalidAccess);
}

// Companion: a grouped window legitimately near the top of the logical
// stack must still validate (the wrap rejection must not over-reject).
TEST(Faults, GroupWindowNearTopOfLogicalStackIsAccepted) {
  Assembler a("topwin");
  a.ldi16(28, 0x10E0);  // inside the logical stack, near 0x10FF
  a.ldd_y(16, 0x04);
  a.ldd_y(17, 0x08);
  a.sts(emu::kHostOut, 16);
  a.halt(0);
  const auto r = sim::run_system({a.finish()});
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  EXPECT_EQ(r.tasks[0].state, TaskState::Done);
}

TEST(Faults, InfiniteRecursionKillsOnlyTheRecurser) {
  Assembler a("rec");
  a.label("f");
  a.push(16);
  a.rcall("f");
  a.ret();
  Assembler ok("ok");
  ok.ldi(16, 1);
  ok.sts(emu::kHostOut, 16);
  ok.halt(0);
  World w({a.finish(), ok.finish()});
  w.k->admit_all();
  ASSERT_TRUE(w.k->start());
  ASSERT_EQ(w.k->run(50'000'000), emu::StopReason::Halted);
  EXPECT_EQ(w.k->tasks()[0].state, TaskState::Killed);
  EXPECT_EQ(w.k->tasks()[0].kill_reason, KillReason::OutOfStackMemory);
  EXPECT_EQ(w.k->tasks()[1].state, TaskState::Done);
  EXPECT_GT(w.k->stats().relocations, 0u);  // it grew before it died
  EXPECT_TRUE(w.k->check_invariants().empty()) << w.k->check_invariants();
}

TEST(Faults, HeapOfOtherTasksSurvivesRelocationStorm) {
  // Task A fills its heap with a pattern, sleeps, re-verifies byte by
  // byte after the recursive tasks have forced relocations around it.
  Assembler a("verify");
  const uint16_t pat = a.var("pat", 200);
  // fill
  a.ldi16(26, pat);
  a.ldi(17, 200);
  a.ldi(16, 13);
  a.label("fill");
  a.st_x_inc(16);
  a.subi(16, 0x95);
  a.dec(17);
  a.brne("fill");
  // sleep ~20 ms to let the neighbours churn
  a.lds(24, emu::kTcnt3L);
  a.lds(25, emu::kTcnt3H);
  a.ldi16(18, 600);
  a.add(24, 18);
  a.adc(25, 19);
  a.sts(emu::kSleepTargetL, 24);
  a.sts(emu::kSleepTargetH, 25);
  a.sleep();
  // verify
  a.ldi16(26, pat);
  a.ldi(17, 200);
  a.ldi(16, 13);
  a.ldi(20, 0);  // error count
  a.label("chk");
  a.ld_x_inc(18);
  a.cp(18, 16);
  a.breq("okb");
  a.inc(20);
  a.label("okb");
  a.subi(16, 0x95);
  a.dec(17);
  a.brne("chk");
  a.sts(emu::kHostOut, 20);
  a.halt(0);

  std::vector<Image> images;
  images.push_back(a.finish());
  for (int i = 0; i < 3; ++i) {
    apps::TreeSearchParams p;
    p.nodes_per_tree = 20;
    p.trees = 2;
    p.searches = 48;
    p.seed = uint16_t(0x7717 + i);
    images.push_back(apps::tree_search_program(p));
  }
  sim::RunSpec spec;
  spec.kernel.initial_stack = 48;
  const auto r = sim::run_system(images, spec);
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  EXPECT_GT(r.kernel_stats.relocations, 0u);
  ASSERT_EQ(r.tasks[0].state, TaskState::Done);
  ASSERT_EQ(r.tasks[0].host_out.size(), 1u);
  EXPECT_EQ(r.tasks[0].host_out[0], 0) << "heap bytes corrupted";
}

// --- Scheduling -------------------------------------------------------------------

TEST(Scheduling, RoundRobinSharesCpuFairly) {
  auto spin = [](const char* name) {
    Assembler a(name);
    a.label("x");
    a.nop();
    a.rjmp("x");
    return a.finish();
  };
  World w({spin("s1"), spin("s2"), spin("s3")});
  w.k->admit_all();
  ASSERT_TRUE(w.k->start());
  ASSERT_EQ(w.k->run(30'000'000), emu::StopReason::CycleLimit);
  const auto& ts = w.k->tasks();
  const double total = double(ts[0].cpu_cycles + ts[1].cpu_cycles +
                              ts[2].cpu_cycles);
  for (int i = 0; i < 3; ++i)
    EXPECT_NEAR(double(ts[i].cpu_cycles) / total, 1.0 / 3, 0.05) << i;
  EXPECT_GT(w.k->stats().context_switches, 100u);
}

TEST(Scheduling, BlockedTasksDoNotBurnCpu) {
  // One sleeper + one spinner: the sleeper's cpu share must be tiny.
  Assembler sl("sleeper");
  sl.ldi16(20, 20);
  sl.label("loop");
  sl.lds(24, emu::kTcnt3L);
  sl.lds(25, emu::kTcnt3H);
  sl.ldi16(18, 100);
  sl.add(24, 18);
  sl.adc(25, 19);
  sl.sts(emu::kSleepTargetL, 24);
  sl.sts(emu::kSleepTargetH, 25);
  sl.sleep();
  sl.dec16(20);
  sl.brne("loop");
  sl.halt(0);

  Assembler sp("spinner");
  sp.label("x");
  sp.nop();
  sp.rjmp("x");

  World w({sl.finish(), sp.finish()});
  w.k->admit_all();
  ASSERT_TRUE(w.k->start());
  ASSERT_EQ(w.k->run(20'000'000), emu::StopReason::CycleLimit);
  EXPECT_EQ(w.k->tasks()[0].state, TaskState::Done);
  EXPECT_LT(double(w.k->tasks()[0].cpu_cycles),
            0.05 * double(w.k->tasks()[1].cpu_cycles));
}

TEST(Scheduling, AllBlockedFastForwardsIdleTime) {
  Assembler sl("idlewait");
  sl.lds(24, emu::kTcnt3L);
  sl.lds(25, emu::kTcnt3H);
  sl.ldi16(18, 2880);  // 100 ms
  sl.add(24, 18);
  sl.adc(25, 19);
  sl.sts(emu::kSleepTargetL, 24);
  sl.sts(emu::kSleepTargetH, 25);
  sl.sleep();
  sl.halt(0);
  World w({sl.finish(), trivial_program(8)});
  w.k->admit_all();
  ASSERT_TRUE(w.k->start());
  ASSERT_EQ(w.k->run(10'000'000), emu::StopReason::Halted);
  EXPECT_GT(w.k->stats().idle_cycles, 500'000u);
}

TEST(Scheduling, TrapStatisticsArePlausible) {
  Assembler a("loopy");
  a.ldi16(20, 10000);
  a.label("l");
  a.dec16(20);
  a.brne("l");
  a.halt(0);
  World w({a.finish(), trivial_program(8)});
  w.k->admit_all();
  ASSERT_TRUE(w.k->start());
  ASSERT_EQ(w.k->run(50'000'000), emu::StopReason::Halted);
  // 10000 backward branches taken (9999 + loop entry edge effects).
  EXPECT_NEAR(double(w.k->stats().traps), 10000.0, 10.0);
  // One counter wrap every trap_interval traps.
  const auto expected_checks =
      w.k->stats().traps / w.k->config().trap_interval;
  EXPECT_NEAR(double(w.k->stats().trap_checks), double(expected_checks), 2.0);
}

}  // namespace
}  // namespace sensmart::kern
