// Equivalence of the guest-side fast tiers (§6d): translation
// coalescing, collapsed stack runs, fast direct-heap services and
// trampoline tail merging change *cycle accounting only*. For every
// workload in src/apps and a sweep of chaos-planned mixes, a run with
// the tiers on (default RewriteOptions) and a run with them off
// (paper_options()) must produce byte-identical task outputs and
// identical final dispositions — state, kill reason, exit code.
//
// Kill injection is off in the chaos sweep: injected kills trigger at
// service-call *counts*, and collapsing stack runs legitimately changes
// how many service calls a program makes, so the same plan would kill
// tasks at different program points. Everything else (starvation-level
// stacks, relocation storms, trap-interval jitter, the auditor) is on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/benchmarks.hpp"
#include "apps/memalloc.hpp"
#include "apps/periodic_task.hpp"
#include "apps/treesearch.hpp"
#include "chaos/chaos.hpp"
#include "sim/harness.hpp"

namespace sensmart {
namespace {

using assembler::Image;

void expect_equivalent(const sim::SystemRun& on, const sim::SystemRun& off,
                       const std::string& label) {
  EXPECT_EQ(on.stop, off.stop) << label;
  ASSERT_EQ(on.tasks.size(), off.tasks.size()) << label;
  for (size_t i = 0; i < on.tasks.size(); ++i) {
    const kern::Task& a = on.tasks[i];
    const kern::Task& b = off.tasks[i];
    EXPECT_EQ(int(a.state), int(b.state)) << label << " task " << i;
    EXPECT_EQ(int(a.kill_reason), int(b.kill_reason))
        << label << " task " << i;
    EXPECT_EQ(a.exit_code, b.exit_code) << label << " task " << i;
    EXPECT_EQ(a.host_out, b.host_out) << label << " task " << i;
  }
  EXPECT_TRUE(on.invariant_error.empty()) << label << ": "
                                          << on.invariant_error;
  EXPECT_TRUE(off.invariant_error.empty()) << label << ": "
                                           << off.invariant_error;
}

void check_workload(const std::vector<Image>& images,
                    const std::string& label) {
  sim::RunSpec fast;  // default RewriteOptions: all tiers on
  sim::RunSpec paper;
  paper.rewrite = rw::paper_options();
  const sim::SystemRun on = sim::run_system(images, fast);
  const sim::SystemRun off = sim::run_system(images, paper);
  // The tiers must actually save guest cycles, not just match.
  EXPECT_LE(on.cycles, off.cycles) << label;
  expect_equivalent(on, off, label);
}

TEST(CoalescingEquivalence, EveryBenchmark) {
  for (const std::string& name : apps::benchmark_names())
    check_workload({apps::build_benchmark(name)}, name);
}

TEST(CoalescingEquivalence, TreeSearchAndDataFeed) {
  apps::TreeSearchParams p;
  p.nodes_per_tree = 24;
  p.searches = 400;
  check_workload({apps::tree_search_program(p)}, "treesearch");
  check_workload({apps::data_feed_program(16, 64)}, "data_feed");
}

TEST(CoalescingEquivalence, PeriodicTask) {
  apps::PeriodicTaskParams p;
  p.activations = 8;
  p.instructions = 4000;
  p.period_ticks = 200;
  check_workload({apps::periodic_task_program(p)}, "periodic");
}

// The §III-A allocator: ld/st through X and Z in straight-line runs —
// prime coalescing territory, and relocation-sensitive.
TEST(CoalescingEquivalence, MemallocExercise) {
  assembler::Assembler a("allocx");
  a.rjmp("main");
  apps::emit_pool_allocator(a, "p", 4, 8);
  a.label("main");
  a.rcall("p_init");
  a.rcall("p_alloc");
  a.movw(8, 26);       // block 0
  a.rcall("p_alloc");  // block 1 in X
  // Fill block 1 through X, then read it back through Z.
  a.movw(30, 26);
  a.ldi(16, 0x5A);
  for (int i = 0; i < 4; ++i) a.st_x_inc(16);
  a.ldi(17, 0);
  for (int i = 0; i < 4; ++i) {
    a.ldd_z(16, uint8_t(i));
    a.add(17, 16);
  }
  a.sts(emu::kHostOut, 17);  // 4 * 0x5A mod 256
  a.movw(26, 30);
  a.rcall("p_free");
  a.movw(26, 8);
  a.rcall("p_free");
  a.halt(0);
  check_workload({a.finish()}, "memalloc");
}

// The fig. 7 shape at reduced scale: one data feeder plus competing
// searchers — deep recursion, relocation pressure, grouped accesses.
TEST(CoalescingEquivalence, MultitaskMix) {
  apps::TreeSearchParams p;
  p.nodes_per_tree = 24;
  p.searches = 200;
  std::vector<Image> images;
  images.push_back(apps::data_feed_program(4, 64));
  images.push_back(apps::tree_search_program(p));
  images.push_back(apps::tree_search_program(p));
  check_workload(images, "fig7-mini");
}

TEST(CoalescingEquivalence, ChaosSeedSweep) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    chaos::ChaosOptions fast;
    fast.seed = seed;
    fast.inject_kills = false;  // kill plans index service-call counts
    chaos::ChaosOptions paper = fast;
    paper.rewrite = rw::paper_options();
    const chaos::ChaosResult on = chaos::run_chaos(fast);
    const chaos::ChaosResult off = chaos::run_chaos(paper);
    const std::string label = "chaos seed " + std::to_string(seed);
    EXPECT_TRUE(on.ok()) << label << ": " << on.summary();
    EXPECT_TRUE(off.ok()) << label << ": " << off.summary();
    expect_equivalent(on.run, off.run, label);
  }
}

}  // namespace
}  // namespace sensmart
