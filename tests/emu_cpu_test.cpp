// CPU core semantics: ALU flags against the AVR manual's definitions,
// addressing modes, stack/control-flow behaviour, skips across 32-bit
// instructions, interrupts, and cycle accounting.
#include <gtest/gtest.h>

#include "emu/machine.hpp"
#include "isa/codec.hpp"

namespace sensmart::emu {
namespace {

using isa::Instruction;
using isa::Op;

class Cpu : public ::testing::Test {
 protected:
  // Load raw instructions at word 0 and reset.
  void load(const std::vector<Instruction>& prog) {
    std::vector<uint16_t> words;
    for (const auto& i : prog) isa::encode_to(i, words);
    m.load_flash(words);
    m.reset(0);
  }
  void step_all(int n) {
    for (int i = 0; i < n; ++i)
      ASSERT_EQ(m.step(), StopReason::Running) << "step " << i;
  }
  static Instruction mk(Op op, uint8_t rd = 0, uint8_t rr = 0, int32_t k = 0) {
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rr = rr;
    i.k = k;
    return i;
  }

  Machine m;
};

TEST_F(Cpu, AddSetsCarryHalfCarryOverflow) {
  load({mk(Op::Ldi, 16, 0, 0x3F), mk(Op::Ldi, 17, 0, 0x41),
        mk(Op::Add, 16, 17)});
  step_all(3);
  EXPECT_EQ(m.mem().reg(16), 0x80);
  const uint8_t s = m.mem().sreg();
  EXPECT_FALSE(s & 1);        // C
  EXPECT_TRUE(s & (1 << 2));  // N
  EXPECT_TRUE(s & (1 << 3));  // V: 0x3F + 0x41 = pos+pos -> neg
  EXPECT_TRUE(s & (1 << 5));  // H: carry out of bit 3 (F+1)
  EXPECT_FALSE(s & (1 << 1)); // Z
}

TEST_F(Cpu, AddCarryWraps) {
  load({mk(Op::Ldi, 16, 0, 0xFF), mk(Op::Ldi, 17, 0, 0x01),
        mk(Op::Add, 16, 17)});
  step_all(3);
  EXPECT_EQ(m.mem().reg(16), 0x00);
  EXPECT_TRUE(m.mem().sreg() & 1);         // C
  EXPECT_TRUE(m.mem().sreg() & (1 << 1));  // Z
}

TEST_F(Cpu, AdcUsesCarryIn) {
  load({mk(Op::Ldi, 16, 0, 0xFF), mk(Op::Ldi, 17, 0, 0x01),
        mk(Op::Add, 16, 17),  // sets C
        mk(Op::Ldi, 16, 0, 5), mk(Op::Ldi, 17, 0, 3),
        mk(Op::Adc, 16, 17)});
  step_all(6);
  EXPECT_EQ(m.mem().reg(16), 9);  // 5 + 3 + carry
}

TEST_F(Cpu, SubAndCompareFlags) {
  load({mk(Op::Ldi, 16, 0, 0x10), mk(Op::Ldi, 17, 0, 0x20),
        mk(Op::Cp, 16, 17)});
  step_all(3);
  EXPECT_TRUE(m.mem().sreg() & 1);  // C: 0x10 < 0x20 (borrow)
  EXPECT_EQ(m.mem().reg(16), 0x10);  // CP does not write
}

TEST_F(Cpu, SbcCpcPreserveZetaOnlyWhenZero) {
  // 16-bit compare 0x0100 vs 0x0100: CP low (Z set), CPC high keeps Z.
  load({mk(Op::Ldi, 16, 0, 0x00), mk(Op::Ldi, 17, 0, 0x01),
        mk(Op::Ldi, 18, 0, 0x00), mk(Op::Ldi, 19, 0, 0x01),
        mk(Op::Cp, 16, 18), mk(Op::Cpc, 17, 19)});
  step_all(6);
  EXPECT_TRUE(m.mem().sreg() & (1 << 1));  // Z across the pair

  // 0x0100 vs 0x0000: CP low sets Z, CPC high result nonzero clears it.
  load({mk(Op::Ldi, 16, 0, 0x00), mk(Op::Ldi, 17, 0, 0x01),
        mk(Op::Ldi, 18, 0, 0x00), mk(Op::Ldi, 19, 0, 0x00),
        mk(Op::Cp, 16, 18), mk(Op::Cpc, 17, 19)});
  step_all(6);
  EXPECT_FALSE(m.mem().sreg() & (1 << 1));
}

TEST_F(Cpu, LogicOpsClearV) {
  load({mk(Op::Ldi, 16, 0, 0xF0), mk(Op::Ldi, 17, 0, 0x0F),
        mk(Op::Or, 16, 17)});
  step_all(3);
  EXPECT_EQ(m.mem().reg(16), 0xFF);
  EXPECT_FALSE(m.mem().sreg() & (1 << 3));  // V cleared
  EXPECT_TRUE(m.mem().sreg() & (1 << 2));   // N set
}

TEST_F(Cpu, ComNegIncDec) {
  load({mk(Op::Ldi, 16, 0, 0x55), mk(Op::Com, 16)});
  step_all(2);
  EXPECT_EQ(m.mem().reg(16), 0xAA);
  EXPECT_TRUE(m.mem().sreg() & 1);  // COM always sets C

  load({mk(Op::Ldi, 16, 0, 0x01), mk(Op::Neg, 16)});
  step_all(2);
  EXPECT_EQ(m.mem().reg(16), 0xFF);

  load({mk(Op::Ldi, 16, 0, 0x7F), mk(Op::Inc, 16)});
  step_all(2);
  EXPECT_EQ(m.mem().reg(16), 0x80);
  EXPECT_TRUE(m.mem().sreg() & (1 << 3));  // V on 0x7F -> 0x80

  load({mk(Op::Ldi, 16, 0, 0x80), mk(Op::Dec, 16)});
  step_all(2);
  EXPECT_EQ(m.mem().reg(16), 0x7F);
  EXPECT_TRUE(m.mem().sreg() & (1 << 3));
}

TEST_F(Cpu, ShiftsAndRotate) {
  load({mk(Op::Ldi, 16, 0, 0x81), mk(Op::Lsr, 16)});
  step_all(2);
  EXPECT_EQ(m.mem().reg(16), 0x40);
  EXPECT_TRUE(m.mem().sreg() & 1);  // C = old bit 0

  load({mk(Op::Ldi, 16, 0, 0x80), mk(Op::Asr, 16)});
  step_all(2);
  EXPECT_EQ(m.mem().reg(16), 0xC0);  // sign preserved

  // ROR pulls the carry into bit 7.
  load({mk(Op::Ldi, 16, 0, 0x01), mk(Op::Lsr, 16),  // C=1, r16=0
        mk(Op::Ror, 16)});
  step_all(3);
  EXPECT_EQ(m.mem().reg(16), 0x80);
}

TEST_F(Cpu, MulWritesR1R0) {
  load({mk(Op::Ldi, 16, 0, 200), mk(Op::Ldi, 17, 0, 100),
        mk(Op::Mul, 16, 17)});
  step_all(3);
  EXPECT_EQ(m.mem().reg_pair(0), 20000);
  EXPECT_FALSE(m.mem().sreg() & 1);  // C = bit 15 of 20000 = 0
}

TEST_F(Cpu, AdiwSbiw16Bit) {
  load({mk(Op::Ldi, 26, 0, 0xFF), mk(Op::Ldi, 27, 0, 0x00),
        mk(Op::Adiw, 26, 0, 1)});
  step_all(3);
  EXPECT_EQ(m.mem().reg_pair(26), 0x0100);

  load({mk(Op::Ldi, 26, 0, 0x00), mk(Op::Ldi, 27, 0, 0x01),
        mk(Op::Sbiw, 26, 0, 1)});
  step_all(3);
  EXPECT_EQ(m.mem().reg_pair(26), 0x00FF);

  load({mk(Op::Ldi, 26, 0, 0x00), mk(Op::Ldi, 27, 0, 0x00),
        mk(Op::Sbiw, 26, 0, 1)});
  step_all(3);
  EXPECT_EQ(m.mem().reg_pair(26), 0xFFFF);
  EXPECT_TRUE(m.mem().sreg() & 1);  // borrow
}

TEST_F(Cpu, LoadStoreAddressingModes) {
  // ST X+ / ST -X roundtrip through SRAM.
  load({mk(Op::Ldi, 26, 0, 0x00), mk(Op::Ldi, 27, 0, 0x02),  // X = 0x0200
        mk(Op::Ldi, 16, 0, 0xAB), mk(Op::StXInc, 16),
        mk(Op::Ldi, 17, 0, 0xCD), mk(Op::StX, 17),
        mk(Op::LdXDec, 18),   // X back to 0x0200, r18 = mem[0x0200]?? no:
                              // LD -X pre-decrements: reads mem[0x0200]
        mk(Op::LdXInc, 19)}); // r19 = mem[0x0200], X = 0x0201
  step_all(8);
  EXPECT_EQ(m.mem().raw(0x0200), 0xAB);
  EXPECT_EQ(m.mem().raw(0x0201), 0xCD);
  EXPECT_EQ(m.mem().reg(18), 0xAB);
  EXPECT_EQ(m.mem().reg(19), 0xAB);
  EXPECT_EQ(m.mem().reg_pair(26), 0x0201);
}

TEST_F(Cpu, LddStdDisplacement) {
  Instruction stdy = mk(Op::Std, 16);
  stdy.q = 5;
  stdy.ptr = isa::Ptr::Y;
  Instruction lddy = mk(Op::Ldd, 20);
  lddy.q = 5;
  lddy.ptr = isa::Ptr::Y;
  load({mk(Op::Ldi, 28, 0, 0x00), mk(Op::Ldi, 29, 0, 0x03),  // Y = 0x0300
        mk(Op::Ldi, 16, 0, 0x42), stdy, lddy});
  step_all(5);
  EXPECT_EQ(m.mem().raw(0x0305), 0x42);
  EXPECT_EQ(m.mem().reg(20), 0x42);
  EXPECT_EQ(m.mem().reg_pair(28), 0x0300);  // displacement does not mutate Y
}

TEST_F(Cpu, RegisterFileIsMemoryMapped) {
  load({mk(Op::Ldi, 16, 0, 0x77), mk(Op::Sts, 16, 0, 0x0005)});
  step_all(2);
  EXPECT_EQ(m.mem().reg(5), 0x77);  // STS to address 5 wrote r5
}

TEST_F(Cpu, PushPopAndSp) {
  load({mk(Op::Ldi, 16, 0, 0x99), mk(Op::Push, 16), mk(Op::Pop, 17)});
  const uint16_t sp0 = m.mem().sp();
  step_all(3);
  EXPECT_EQ(m.mem().reg(17), 0x99);
  EXPECT_EQ(m.mem().sp(), sp0);
}

TEST_F(Cpu, CallRetRoundtrip) {
  // 0: RCALL +1 ; 1: RJMP 0 (skipped on return path) ; 2: RET
  load({mk(Op::Rcall, 0, 0, 1), mk(Op::Rjmp, 0, 0, -2), mk(Op::Ret)});
  const uint16_t sp0 = m.mem().sp();
  step_all(1);
  EXPECT_EQ(m.pc(), 2u);
  EXPECT_EQ(m.mem().sp(), sp0 - 2);
  step_all(1);  // RET
  EXPECT_EQ(m.pc(), 1u);
  EXPECT_EQ(m.mem().sp(), sp0);
}

TEST_F(Cpu, IjmpIcallUseZ) {
  load({mk(Op::Ldi, 30, 0, 4), mk(Op::Ldi, 31, 0, 0), mk(Op::Ijmp),
        mk(Op::Nop), mk(Op::Nop)});
  step_all(3);
  EXPECT_EQ(m.pc(), 4u);
}

TEST_F(Cpu, BranchTakenAndNotTaken) {
  // BRNE over a marker when Z clear.
  Instruction brne = mk(Op::Brbc, 0, 0, 1);
  brne.b = isa::kFlagZ;
  load({mk(Op::Ldi, 16, 0, 1), mk(Op::Cpi, 16, 0, 1),  // Z set
        brne, mk(Op::Ldi, 17, 0, 0xAA), mk(Op::Ldi, 18, 0, 0xBB)});
  step_all(5);
  EXPECT_EQ(m.mem().reg(17), 0xAA);  // branch not taken

  // Registers persist across reloads (reset does not clear the register
  // file, as on real AVR), so clear r17 explicitly.
  load({mk(Op::Ldi, 16, 0, 1), mk(Op::Ldi, 17, 0, 0),
        mk(Op::Cpi, 16, 0, 2),  // Z clear
        brne, mk(Op::Ldi, 17, 0, 0xAA), mk(Op::Ldi, 18, 0, 0xBB)});
  step_all(5);
  EXPECT_EQ(m.mem().reg(17), 0);     // skipped
  EXPECT_EQ(m.mem().reg(18), 0xBB);  // branch target executed
}

TEST_F(Cpu, SkipOverTwoWordInstruction) {
  // SBRC r16,0 with r16 bit0 = 0 skips the 2-word STS entirely.
  Instruction sbrc = mk(Op::Sbrc);
  sbrc.rr = 16;
  sbrc.b = 0;
  load({mk(Op::Ldi, 16, 0, 0x00), sbrc, mk(Op::Sts, 16, 0, 0x0400),
        mk(Op::Ldi, 17, 0, 0x5A)});
  step_all(3);
  EXPECT_EQ(m.mem().raw(0x0400), 0x00);  // STS skipped
  EXPECT_EQ(m.mem().reg(17), 0x5A);
}

TEST_F(Cpu, CpseSkips) {
  load({mk(Op::Ldi, 16, 0, 7), mk(Op::Ldi, 17, 0, 7), mk(Op::Cpse, 16, 17),
        mk(Op::Ldi, 18, 0, 1), mk(Op::Ldi, 19, 0, 2)});
  step_all(4);
  EXPECT_EQ(m.mem().reg(18), 0);
  EXPECT_EQ(m.mem().reg(19), 2);
}

TEST_F(Cpu, LpmReadsFlashBytes) {
  // Word 8 holds 0xBEEF; LPM uses little-endian byte addressing.
  load({mk(Op::Ldi, 30, 0, 16), mk(Op::Ldi, 31, 0, 0),  // Z = byte addr 16
        mk(Op::LpmInc, 16), mk(Op::Lpm, 17)});
  std::vector<uint16_t> data = {0xBEEF};
  m.load_flash(data, 8);
  m.reset(0);
  step_all(4);
  EXPECT_EQ(m.mem().reg(16), 0xEF);
  EXPECT_EQ(m.mem().reg(17), 0xBE);
}

TEST_F(Cpu, CycleAccounting) {
  load({mk(Op::Ldi, 16, 0, 1),   // 1 cycle
        mk(Op::Push, 16),        // 2
        mk(Op::Rjmp, 0, 0, 0)}); // 2
  step_all(3);
  EXPECT_EQ(m.cycles(), 5u);
  EXPECT_EQ(m.stats().instructions, 3u);
}

TEST_F(Cpu, BranchTakenCostsExtraCycle) {
  Instruction breq = mk(Op::Brbs, 0, 0, 0);
  breq.b = isa::kFlagZ;
  load({mk(Op::Cp, 0, 0), breq, mk(Op::Nop)});
  step_all(2);
  EXPECT_EQ(m.cycles(), 3u);  // CP(1) + taken branch(2)
}

TEST_F(Cpu, InvalidOpcodeStops) {
  std::vector<uint16_t> words = {0x9403};  // undefined one-reg ext... 0x3=Inc
  words[0] = 0xFF08;                       // no such encoding
  m.load_flash(words);
  m.reset(0);
  EXPECT_EQ(m.step(), StopReason::InvalidInstruction);
}

TEST_F(Cpu, HostHaltStopsMachine) {
  load({mk(Op::Ldi, 16, 0, 3), mk(Op::Sts, 16, 0, kHostHalt)});
  step_all(1);
  EXPECT_EQ(m.step(), StopReason::Halted);
  EXPECT_EQ(m.dev().halt_code(), 3);
}

TEST_F(Cpu, InterruptDispatchAndReti) {
  // Enable Timer0 overflow interrupt; vector 2 jumps to the handler which
  // sets r20 and RETIs back into the main loop.
  std::vector<Instruction> prog = {
      /*0*/ mk(Op::Rjmp, 0, 0, 3),   // reset -> main (word 4)
      /*1*/ mk(Op::Nop),
      /*2*/ mk(Op::Rjmp, 0, 0, 5),   // T0 OVF vector -> handler (word 8)
      /*3*/ mk(Op::Nop),
      /*4*/ mk(Op::Nop),             // main:
      /*5*/ mk(Op::Nop),
      /*6*/ mk(Op::Nop),
      /*7*/ mk(Op::Rjmp, 0, 0, -4),  // loop to main
      /*8*/ mk(Op::Ldi, 20, 0, 0x42),// handler:
      /*9*/ mk(Op::Reti),
  };
  load(prog);
  // Configure Timer0: prescale /8, enable OVF interrupt, enable I flag.
  m.mem().write(kTccr0, 2);
  m.mem().write(kTimsk, 0x01);
  m.mem().set_sreg(1u << isa::kFlagI);
  m.run(6000);  // 256*8 = 2048 cycles to overflow
  EXPECT_EQ(m.mem().reg(20), 0x42);
  EXPECT_TRUE(m.mem().sreg() & (1u << isa::kFlagI));  // RETI restored I
}

TEST_F(Cpu, TimedSleepFastForwards) {
  // Arm a sleep 100 ticks ahead, SLEEP, then halt.
  std::vector<Instruction> prog = {
      mk(Op::Lds, 24, 0, kTcnt3L), mk(Op::Lds, 25, 0, kTcnt3H),
      mk(Op::Subi, 24, 0, 0x9C),  // += 100 (subi -100)
      mk(Op::Sbci, 25, 0, 0xFF),
      mk(Op::Sts, 24, 0, kSleepTargetL), mk(Op::Sts, 25, 0, kSleepTargetH),
      mk(Op::Sleep), mk(Op::Ldi, 16, 0, 1), mk(Op::Sts, 16, 0, kHostHalt)};
  load(prog);
  EXPECT_EQ(m.run(1'000'000), StopReason::Halted);
  EXPECT_GE(m.cycles(), 100u * kTimer3Prescale);
  EXPECT_GT(m.stats().idle_cycles, 90u * kTimer3Prescale);
}

TEST_F(Cpu, SleepWithNoWakeSourceDeadlocks) {
  load({mk(Op::Sleep)});
  EXPECT_EQ(m.run(1000), StopReason::Deadlock);
}

}  // namespace
}  // namespace sensmart::emu
