// Trace-identity regression tests for the host emulation fast path.
//
// The batched event-horizon loop, the decode cache, and the kernel
// service fast path are all pure host-side optimizations: they must not
// change a single emulated cycle or kernel event. These tests pin ten
// chaos seeds to golden (cycle count, FNV-1a trace hash) pairs recorded
// from the unbatched pre-optimization build, and exercise the decode
// cache's invalidation rules for overlapping load_flash calls —
// including the word-before-base case a cached two-word operand (or a
// Break's cached service index) depends on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "chaos/chaos.hpp"
#include "emu/machine.hpp"
#include "isa/codec.hpp"

namespace sensmart {
namespace {

using emu::Machine;
using emu::StopReason;
using isa::Instruction;
using isa::Op;

// --- Golden chaos traces -----------------------------------------------------
//
// Recorded with the default ChaosOptions (300M cycle budget, audits and
// kill injection on). Any divergence — one cycle, one reordered kernel
// event — changes the hash, so an optimization that alters emulated
// behavior in any observable way fails here immediately.
//
// The pinned pairs live in the generated include below; regenerate with
// `cmake --build build --target refresh_golden` ONLY when a change
// intentionally alters emulated behavior (new default rewriter pass,
// cost-model recalibration) — never to paper over an unexplained
// divergence. bench/update_golden.cpp documents the policy.

struct GoldenSeed {
  uint64_t seed;
  uint64_t cycles;
  uint64_t trace_hash;
};

#include "golden_traces.inc"

TEST(TraceIdentity, GoldenChaosSeeds) {
  for (const GoldenSeed& g : kGolden) {
    chaos::ChaosOptions opts;
    opts.seed = g.seed;
    const chaos::ChaosResult res = chaos::run_chaos(opts);
    EXPECT_TRUE(res.ok()) << "seed " << g.seed << ": " << res.summary();
    EXPECT_EQ(res.run.cycles, g.cycles) << "seed " << g.seed;
    EXPECT_EQ(res.trace_hash, g.trace_hash) << "seed " << g.seed;
  }
}

// --- Decode-cache invalidation ----------------------------------------------

Instruction mk(Op op, uint8_t rd = 0, uint8_t rr = 0, int32_t k = 0) {
  Instruction i;
  i.op = op;
  i.rd = rd;
  i.rr = rr;
  i.k = k;
  return i;
}

std::vector<uint16_t> words_of(const std::vector<Instruction>& prog) {
  std::vector<uint16_t> words;
  for (const Instruction& i : prog) isa::encode_to(i, words);
  return words;
}

// Overwriting an executed word must evict its cached decode: the same PC
// runs the new instruction after a reset, not the cached old one.
TEST(TraceIdentity, ReloadInvalidatesOverlappingWords) {
  Machine m;
  m.load_flash(words_of({mk(Op::Ldi, 16, 0, 0x11)}));
  m.reset(0);
  ASSERT_EQ(m.step(), StopReason::Running);
  EXPECT_EQ(m.mem().reg(16), 0x11);

  m.load_flash(words_of({mk(Op::Ldi, 16, 0, 0x22)}), 0);
  m.reset(0);
  ASSERT_EQ(m.step(), StopReason::Running);
  EXPECT_EQ(m.mem().reg(16), 0x22);
}

// A two-word instruction's cached entry holds the operand word fetched
// from base+1, so reloading flash at that *operand* address must also
// evict the entry one word before the load's base.
TEST(TraceIdentity, ReloadInvalidatesWordBeforeBase) {
  Machine m;
  m.load_flash(words_of({mk(Op::Lds, 16, 0, 0x0200)}));
  m.mem().set_raw(0x0200, 0xAA);
  m.mem().set_raw(0x0300, 0xBB);
  m.reset(0);
  ASSERT_EQ(m.step(), StopReason::Running);
  EXPECT_EQ(m.mem().reg(16), 0xAA);  // decode for word 0 now cached

  // Overwrite only word 1 — the Lds operand. The entry at word 0 must go.
  const uint16_t new_operand[] = {0x0300};
  m.load_flash(new_operand, 1);
  m.reset(0);
  ASSERT_EQ(m.step(), StopReason::Running);
  EXPECT_EQ(m.mem().reg(16), 0xBB);
}

// The Break service index (the flash word after the Break) is cached in
// the decode entry and handed to the service handler without a refetch;
// reloading that word must invalidate the Break's entry too.
TEST(TraceIdentity, ReloadInvalidatesCachedServiceIndex) {
  Machine m;
  std::vector<uint16_t> words = words_of({mk(Op::Break)});
  words.push_back(0x0042);  // service index operand
  m.load_flash(words);

  static uint32_t captured;
  captured = 0;
  m.set_service_handler(
      0,
      [](void*, Machine& mm, uint32_t svc_arg) {
        captured = svc_arg;
        mm.stop(StopReason::Halted);
        return true;
      },
      nullptr);

  m.reset(0);
  m.step();
  EXPECT_EQ(captured, 0x42u);

  const uint16_t new_index[] = {0x0099};
  m.load_flash(new_index, 1);
  m.reset(0);
  m.step();
  EXPECT_EQ(captured, 0x99u);
}

}  // namespace
}  // namespace sensmart
