// Adversarial corners of the rewriting: skip instructions interacting
// with patched/inflated successors, determinism of whole runs, and a
// many-task concurrency stress.
#include <gtest/gtest.h>

#include "apps/treesearch.hpp"
#include "baselines/native_runner.hpp"
#include "isa/codec.hpp"
#include "sim/harness.hpp"

namespace sensmart {
namespace {

using assembler::Assembler;
using assembler::Image;

// SBRC/CPSE skip "one instruction". After rewriting, the skipped
// instruction may have become a 2-word trampoline CALL (PUSH) or stayed a
// retargeted 2-word instruction (STS): the skip must jump over the whole
// replacement either way.
Image skip_over_patched(bool take_skips) {
  Assembler a("skips");
  const uint16_t v = a.var("v", 2);
  a.ldi(16, take_skips ? 0x00 : 0x01);  // bit 0 controls the skips
  a.ldi(17, 0);
  a.ldi(18, 0x5A);

  a.sbrc(16, 0);   // skip if bit cleared
  a.push(18);      // patched: 1 word -> 2-word CALL (inflates)
  a.sbrc(16, 0);
  a.pop(17);       // patched: matching pop keeps the stack balanced
  a.sbrc(16, 0);
  a.sts(v, 18);    // patched: 2-word STS -> 2-word CALL (no inflation)
  a.cpse(16, 16);  // always-equal: always skips the next instruction
  a.inc(17);       // never executes

  a.lds(19, v);
  a.sts(emu::kHostOut, 17);
  a.sts(emu::kHostOut, 19);
  a.halt(0);
  return a.finish();
}

TEST(SkipCorners, SkipsClearPatchedInstructionsEntirely) {
  for (const bool take : {false, true}) {
    const Image img = skip_over_patched(take);
    const auto native = base::run_native(img, 1'000'000);
    ASSERT_EQ(native.stop, emu::StopReason::Halted) << take;
    const auto sens = sim::run_system({img});
    ASSERT_EQ(sens.stop, emu::StopReason::Halted) << take;
    EXPECT_EQ(sens.tasks[0].state, kern::TaskState::Done) << take;
    EXPECT_EQ(sens.tasks[0].host_out, native.host_out) << take;
    if (take) {
      // All three skips taken: v untouched, r17 stayed 0.
      EXPECT_EQ(native.host_out, (std::vector<uint8_t>{0, 0}));
    } else {
      // Nothing skipped except the CPSE pair: push/pop ran, STS ran.
      EXPECT_EQ(native.host_out, (std::vector<uint8_t>{0x5A, 0x5A}));
    }
  }
}

// A skip whose successor is a backward-branch trampoline: skipping it must
// not enter the kernel at all.
TEST(SkipCorners, SkippedBackwardBranchDoesNotTrap) {
  Assembler a("skipbr");
  a.ldi(16, 1);      // bit 0 set: SBRC does not skip... SBRC skips on clear
  a.ldi(17, 3);
  a.label("top");
  a.dec(17);
  a.sbrc(16, 0);     // bit set -> no skip -> fall into the branch? No:
                     // SBRC skips when cleared; bit is set, so the branch
                     // executes and the loop runs.
  a.brne("top");     // backward branch (trampolined)
  a.sts(emu::kHostOut, 17);
  a.halt(0);
  const Image img = a.finish();
  const auto native = base::run_native(img, 1'000'000);
  const auto sens = sim::run_system({img});
  ASSERT_EQ(sens.stop, emu::StopReason::Halted);
  EXPECT_EQ(sens.tasks[0].host_out, native.host_out);

  // Now with the bit cleared, the branch is skipped every time: exactly
  // one decrement happens.
  Assembler b("skipbr2");
  b.ldi(16, 0);
  b.ldi(17, 3);
  b.label("top");
  b.dec(17);
  b.sbrc(16, 0);
  b.brne("top");     // skipped: never taken, never traps
  b.sts(emu::kHostOut, 17);
  b.halt(0);
  const Image img2 = b.finish();
  const auto n2 = base::run_native(img2, 1'000'000);
  ASSERT_EQ(n2.host_out, (std::vector<uint8_t>{2}));
  const auto s2 = sim::run_system({img2});
  EXPECT_EQ(s2.tasks[0].host_out, n2.host_out);
  EXPECT_EQ(s2.kernel_stats.traps, 0u);
}

// Regression: retargeted JMP/CALL used to keep only the low 16 bits of the
// destination. The encoding must carry the full 22-bit word address
// (k21..k17 in word0 bits 8..4, k16 in bit 0) and decode back losslessly.
TEST(AbsoluteTargets, JmpCallRoundTripAllTwentyTwoBits) {
  for (const isa::Op op : {isa::Op::Jmp, isa::Op::Call}) {
    for (const uint32_t k :
         {0x0u, 0x1234u, 0xFFFFu, 0x10000u, 0x12345u, 0x3FFFFFu}) {
      isa::Instruction ins;
      ins.op = op;
      ins.k = static_cast<int32_t>(k);
      const std::vector<uint16_t> words = isa::encode(ins);
      ASSERT_EQ(words.size(), 2u) << isa::to_string(ins);
      const isa::Instruction back = isa::decode_words(words[0], words[1]);
      EXPECT_EQ(back.op, op) << isa::to_string(ins);
      EXPECT_EQ(static_cast<uint32_t>(back.k), k) << isa::to_string(ins);
    }
  }
}

TEST(AbsoluteTargets, TargetsBeyondTwentyTwoBitsFailLoudly) {
  for (const isa::Op op : {isa::Op::Jmp, isa::Op::Call}) {
    isa::Instruction ins;
    ins.op = op;
    ins.k = 0x400000;
    EXPECT_THROW(isa::encode(ins), std::invalid_argument);
  }
}

TEST(Determinism, IdenticalRunsAreCycleIdentical) {
  std::vector<assembler::Image> images;
  images.push_back(apps::data_feed_program(6, 64));
  for (int i = 0; i < 3; ++i) {
    apps::TreeSearchParams p;
    p.nodes_per_tree = 20;
    p.trees = 2;
    p.searches = 40;
    p.seed = uint16_t(0xD00D + i);
    images.push_back(apps::tree_search_program(p));
  }
  sim::RunSpec spec;
  spec.kernel.initial_stack = 56;
  const auto r1 = sim::run_system(images, spec);
  const auto r2 = sim::run_system(images, spec);
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.active_cycles, r2.active_cycles);
  EXPECT_EQ(r1.kernel_stats.relocations, r2.kernel_stats.relocations);
  EXPECT_EQ(r1.kernel_stats.context_switches,
            r2.kernel_stats.context_switches);
  for (size_t i = 0; i < r1.tasks.size(); ++i)
    EXPECT_EQ(r1.tasks[i].host_out, r2.tasks[i].host_out) << i;
}

TEST(Stress, TwelveMixedTasksCompleteWithInvariantsIntact) {
  std::vector<assembler::Image> images;
  images.push_back(apps::data_feed_program(10, 80));
  for (int i = 0; i < 11; ++i) {
    apps::TreeSearchParams p;
    p.nodes_per_tree = uint16_t(8 + (i % 4) * 4);
    p.trees = 1;
    p.searches = uint16_t(16 + 8 * (i % 3));
    p.seed = uint16_t(0xBEE5 + 0x101 * i);
    images.push_back(apps::tree_search_program(p));
  }
  sim::RunSpec spec;
  spec.kernel.initial_stack = 40;
  const auto r = sim::run_system(images, spec);
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  EXPECT_EQ(r.completed(), images.size());
  EXPECT_EQ(r.killed(), 0u);
  EXPECT_GT(r.kernel_stats.relocations, 0u);
  EXPECT_GT(r.kernel_stats.context_switches, 10u);
}

}  // namespace
}  // namespace sensmart
