// Assembler: label resolution, fixups of every kind, data directives,
// symbol-list bookkeeping and error reporting.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"

namespace sensmart::assembler {
namespace {

TEST(Asm, ForwardAndBackwardLabels) {
  Assembler a("t");
  a.rjmp("fwd");
  a.label("back");
  a.nop();
  a.label("fwd");
  a.rjmp("back");
  const Image img = a.finish();
  const auto j0 = isa::decode(img.code, 0);
  EXPECT_EQ(j0.op, isa::Op::Rjmp);
  EXPECT_EQ(j0.k, 1);  // 0 -> 2
  const auto j2 = isa::decode(img.code, 2);
  EXPECT_EQ(j2.k, -2);  // 2 -> 1
}

TEST(Asm, CallAndJmpAbsoluteFixups) {
  Assembler a("t");
  a.jmp("end");
  a.call("end");
  a.label("end");
  a.ret();
  const Image img = a.finish();
  EXPECT_EQ(img.code[1], 4u);
  EXPECT_EQ(img.code[3], 4u);
}

TEST(Asm, LdiLabelPatchesImmediatePair) {
  Assembler a("t");
  a.ldi_label(30, "target");
  for (int i = 0; i < 5; ++i) a.nop();
  a.label("target");
  a.nop();
  const Image img = a.finish();
  const auto lo = isa::decode(img.code, 0);
  const auto hi = isa::decode(img.code, 1);
  EXPECT_EQ(lo.k, 7);
  EXPECT_EQ(hi.k, 0);
}

TEST(Asm, DwLabelsBuildsJumpTable) {
  Assembler a("t");
  a.rjmp("code");
  const std::array<std::string, 2> hs = {"h1", "h0"};
  a.dw_labels("tbl", hs);
  a.label("h0");
  a.nop();
  a.label("h1");
  a.nop();
  a.label("code");
  a.nop();
  const Image img = a.finish();
  EXPECT_EQ(img.code[1], 4u);  // h1
  EXPECT_EQ(img.code[2], 3u);  // h0
  ASSERT_EQ(img.data_ranges.size(), 1u);
  EXPECT_EQ(img.data_ranges[0], (std::pair<uint32_t, uint32_t>{1, 3}));
}

TEST(Asm, VarAllocatesSequentiallyWithSymbols) {
  Assembler a("t");
  const uint16_t x = a.var("x", 10);
  const uint16_t y = a.var("y", 2);
  a.nop();
  const Image img = a.finish();
  EXPECT_EQ(x, emu::kSramBase);
  EXPECT_EQ(y, emu::kSramBase + 10);
  EXPECT_EQ(img.heap_size, 12);
  ASSERT_EQ(img.symbols.size(), 2u);
  EXPECT_EQ(img.symbols[0].name, "x");
  EXPECT_EQ(img.symbols[1].addr, y);
}

TEST(Asm, Errors) {
  {
    Assembler a("t");
    a.label("x");
    EXPECT_THROW(a.label("x"), std::runtime_error);  // duplicate
  }
  {
    Assembler a("t");
    a.rjmp("nowhere");
    EXPECT_THROW(a.finish(), std::runtime_error);  // undefined
  }
  {
    Assembler a("t");
    a.breq("far");
    for (int i = 0; i < 100; ++i) a.nop();
    a.label("far");
    EXPECT_THROW(a.finish(), std::runtime_error);  // out of range
  }
  {
    Assembler a("t");
    a.nop();
    (void)a.finish();
    EXPECT_THROW(a.finish(), std::runtime_error);  // finish twice
  }
  {
    Assembler a("t");
    EXPECT_THROW(a.var("big", 5000), std::runtime_error);  // heap overflow
  }
}

TEST(Asm, Dec16SetsZOnlyAtZero) {
  // Run it: count 0x0100 decrements to zero after 256 iterations.
  Assembler a("t");
  a.ldi16(20, 0x0100);
  a.ldi(16, 0);
  a.label("l");
  a.inc(16);
  a.dec16(20);
  a.brne("l");
  a.sts(emu::kHostOut, 16);
  a.halt(0);
  const Image img = a.finish();
  emu::Machine m;
  m.load_flash(img.code);
  m.reset(img.entry);
  ASSERT_EQ(m.run(100000), emu::StopReason::Halted);
  EXPECT_EQ(m.dev().host_out()[0], 0x00);  // 256 wraps to 0 in one byte
}

TEST(Asm, HaltEmitsExitCode) {
  Assembler a("t");
  a.halt(42);
  const Image img = a.finish();
  emu::Machine m;
  m.load_flash(img.code);
  m.reset(img.entry);
  EXPECT_EQ(m.run(100), emu::StopReason::Halted);
  EXPECT_EQ(m.dev().halt_code(), 42);
}

}  // namespace
}  // namespace sensmart::assembler
