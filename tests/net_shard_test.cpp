// Shard-count invariance suite for the sharded fleet engine (DESIGN.md §9).
//
// The contract under test: NetConfig::shards changes only wall-clock time.
// For every shard count — including the degenerate 1 and counts above the
// node count — a dissemination run must produce a byte-identical trace
// (digest and event count), identical cycles, identical per-node stats,
// and identical verified node blobs. The suite pins the golden 4-node
// acceptance scenario, a fault-heavy crash/reboot fleet, the 32-seed
// random-program property, and a net-chaos replay, each swept over
// shards ∈ {1, 2, 4, 8}; plus unit coverage for the WorkPool barrier.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "apps/treesearch.hpp"
#include "chaos/chaos.hpp"
#include "host/parallel.hpp"
#include "net/image_codec.hpp"
#include "net/netsim.hpp"
#include "testlib/random_program.hpp"

namespace sensmart {
namespace {

using assembler::Image;

constexpr unsigned kShardCounts[] = {1, 2, 4, 8};

std::vector<Image> fig7_workload(uint16_t tree_nodes, int n_search) {
  std::vector<Image> images;
  images.push_back(apps::data_feed_program(6, 64));
  for (int i = 0; i < n_search; ++i) {
    apps::TreeSearchParams p;
    p.nodes_per_tree = tree_nodes;
    p.trees = 1;
    p.searches = 32;
    p.seed = static_cast<uint16_t>(0x3131 + 0x1D0B * i);
    images.push_back(apps::tree_search_program(p));
  }
  return images;
}

std::vector<uint8_t> linked_blob(const std::vector<Image>& images) {
  rw::Linker linker(rw::RewriteOptions{}, true);
  for (const auto& img : images) linker.add(img);
  return net::serialize_system(linker.link());
}

// Everything a run observably produces, flattened for equality checks
// across shard counts (node blobs included: dedup/copy-on-write must not
// perturb the verified bytes).
struct RunFingerprint {
  uint64_t digest = 0;
  size_t events = 0;
  uint64_t cycles = 0;
  bool all_acked = false;
  size_t complete = 0;
  size_t abandoned = 0;
  uint64_t base_frames_tx = 0;
  uint64_t medium_dropped = 0;
  std::vector<uint64_t> node_frames_rx;
  std::vector<uint64_t> node_completion_cycle;
  std::vector<uint32_t> node_crashes;
  std::vector<uint16_t> node_hops;
  std::vector<uint64_t> node_chunks_served;
  std::vector<uint32_t> node_parent_switches;
  std::vector<std::vector<uint8_t>> blobs;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint run_config(net::NetConfig cfg, const std::vector<uint8_t>& blob,
                          unsigned shards) {
  cfg.shards = shards;
  net::NetSim sim(cfg, blob);
  const net::DisseminationResult r = sim.disseminate();
  RunFingerprint fp;
  fp.digest = r.trace_digest;
  fp.events = r.trace_events;
  fp.cycles = r.cycles;
  fp.all_acked = r.all_acked;
  fp.complete = r.complete_nodes();
  fp.abandoned = r.abandoned_nodes();
  fp.base_frames_tx = r.base.frames_tx;
  fp.medium_dropped = r.medium.dropped;
  for (const auto& n : r.nodes) {
    fp.node_frames_rx.push_back(n.frames_rx);
    fp.node_completion_cycle.push_back(n.completion_cycle);
    fp.node_crashes.push_back(n.crashes);
    fp.node_hops.push_back(n.hop);
    fp.node_chunks_served.push_back(n.chunks_served);
    fp.node_parent_switches.push_back(n.parent_switches);
  }
  for (size_t id = 1; id <= cfg.nodes; ++id)
    fp.blobs.push_back(sim.node_blob(id));

  // The counter-maintained complete/abandoned counts must always agree
  // with an explicit scan of the per-node results (they replaced O(N)
  // polling scans; any drift is a transition-bookkeeping bug).
  size_t scan_complete = 0, scan_abandoned = 0;
  for (const auto& n : r.nodes) {
    if (n.complete) ++scan_complete;
    if (n.abandoned) ++scan_abandoned;
  }
  EXPECT_EQ(fp.complete, scan_complete) << "shards=" << shards;
  EXPECT_EQ(fp.abandoned, scan_abandoned) << "shards=" << shards;
  return fp;
}

// --- Golden acceptance scenario at every shard count ------------------------

TEST(NetShard, GoldenScenarioByteIdenticalAcrossShardCounts) {
  const auto blob = linked_blob(fig7_workload(8, 2));
  net::NetConfig cfg;
  cfg.nodes = 4;
  cfg.link.drop_pct = 10;
  cfg.chaos_seed = 0x5EED;
  cfg.max_cycles = 1'000'000'000ULL;

  const RunFingerprint serial = run_config(cfg, blob, 1);
  ASSERT_TRUE(serial.all_acked);
  ASSERT_EQ(serial.complete, 4u);
  for (const auto& b : serial.blobs) EXPECT_EQ(b, blob);

  for (unsigned shards : kShardCounts) {
    if (shards == 1) continue;
    const RunFingerprint sharded = run_config(cfg, blob, shards);
    EXPECT_EQ(sharded, serial) << "shards=" << shards;
  }
}

TEST(NetShard, AutoShardCountMatchesSerial) {
  const auto blob = linked_blob(fig7_workload(8, 1));
  net::NetConfig cfg;
  cfg.nodes = 3;
  cfg.link.drop_pct = 12;
  cfg.link.dup_pct = 4;
  cfg.link.reorder_pct = 4;
  cfg.link.corrupt_pct = 4;
  cfg.chaos_seed = 1;
  cfg.max_cycles = 2'000'000'000ULL;

  const RunFingerprint serial = run_config(cfg, blob, 1);
  // This is the pinned golden-digest scenario (seed 1): the sharded engine
  // must reproduce the historical serial digest, not merely self-agree.
  EXPECT_EQ(serial.digest, 0x7697f85e0c51bdedULL);
  EXPECT_EQ(run_config(cfg, blob, 0), serial);    // auto (hw concurrency)
  EXPECT_EQ(run_config(cfg, blob, 64), serial);   // clamped to node count
}

// --- Fault-heavy fleet: crashes, wipes, abandons under sharding -------------

TEST(NetShard, CrashRebootFleetByteIdenticalAcrossShardCounts) {
  const auto blob = linked_blob(fig7_workload(8, 1));
  net::NetConfig cfg;
  cfg.nodes = 6;
  cfg.link.drop_pct = 10;
  cfg.link.dup_pct = 3;
  cfg.link.reorder_pct = 3;
  cfg.link.corrupt_pct = 3;
  cfg.chaos_seed = 0xF7EE7;
  cfg.max_cycles = 2'000'000'000ULL;
  cfg.node_faults.crash_pct = 80;
  cfg.node_faults.max_crashes_per_node = 2;
  cfg.node_faults.wipe_pct = 40;
  cfg.node_faults.down_min_bytes = 64;
  cfg.node_faults.down_max_bytes = 768;

  const RunFingerprint serial = run_config(cfg, blob, 1);
  uint32_t crashes = 0;
  for (uint32_t c : serial.node_crashes) crashes += c;
  EXPECT_GT(crashes, 0u);  // the fault dimension actually exercised

  for (unsigned shards : kShardCounts) {
    if (shards == 1) continue;
    EXPECT_EQ(run_config(cfg, blob, shards), serial) << "shards=" << shards;
  }
}

// --- Mesh multi-hop scenario at every shard count ---------------------------

// The mesh engine buffers cross-node effects (TX completions for the CSMA
// and collision schedule, deliveries, peer serves) and merges them in
// canonical order at the quantum barrier, so a multi-hop dissemination —
// contention, duplicate suppression, relayed acks and all — must be
// byte-identical at any shard count.
TEST(NetShard, MeshGridByteIdenticalAcrossShardCounts) {
  const auto blob = linked_blob(fig7_workload(8, 1));
  net::NetConfig cfg;
  cfg.nodes = 16;
  cfg.link.drop_pct = 10;
  cfg.chaos_seed = 0x5EED;
  cfg.max_cycles = 8'000'000'000ULL;
  cfg.topo.kind = net::TopologyKind::Grid;
  cfg.proto.node_give_up_probes = 0;

  const RunFingerprint serial = run_config(cfg, blob, 1);
  ASSERT_TRUE(serial.all_acked);
  ASSERT_EQ(serial.complete, 16u);
  for (const auto& b : serial.blobs) EXPECT_EQ(b, blob);
  // The run was genuinely multi-hop and peer-served: some node sits two or
  // more hops from the base, and peers answered repair Nacks.
  uint16_t max_hop = 0;
  uint64_t served = 0;
  for (uint16_t h : serial.node_hops)
    if (h != 0xFFFF && h > max_hop) max_hop = h;
  for (uint64_t c : serial.node_chunks_served) served += c;
  EXPECT_GE(max_hop, 2u);
  EXPECT_GT(served, 0u);

  for (unsigned shards : kShardCounts) {
    if (shards == 1) continue;
    EXPECT_EQ(run_config(cfg, blob, shards), serial) << "shards=" << shards;
  }
}

// --- Property: 32 random programs, serial vs sharded ------------------------

TEST(NetShard, RandomProgramsShardInvariantOver32Seeds) {
  constexpr size_t kSeeds = 32;
  const auto ok = host::sweep_collect<uint8_t>(
      kSeeds, host::effective_jobs(4, kSeeds), [&](std::size_t i) {
        const auto blob =
            linked_blob({testlib::random_program(uint32_t(i) + 1)});
        net::NetConfig cfg;
        cfg.nodes = 2;
        cfg.link.drop_pct = 15;
        cfg.link.dup_pct = 5;
        cfg.link.reorder_pct = 5;
        cfg.link.corrupt_pct = 5;
        cfg.chaos_seed = 0xABCD + i;
        cfg.max_cycles = 2'000'000'000ULL;
        const RunFingerprint serial = run_config(cfg, blob, 1);
        if (!serial.all_acked) return false;
        for (const auto& b : serial.blobs)
          if (b != blob) return false;
        // 2 nodes: shards=2 splits them one per worker; 8 over-shards.
        return run_config(cfg, blob, 2) == serial &&
               run_config(cfg, blob, 8) == serial;
      });
  for (size_t i = 0; i < kSeeds; ++i) EXPECT_TRUE(ok[i]) << "seed " << i + 1;
}

// --- Net-chaos replay under sharding ----------------------------------------

// run_net_chaos executes each seed twice (its own replay oracle); sweeping
// it over shard counts additionally requires the full planned scenario —
// seeded crashes, wipes, reboots, convergence — to fingerprint identically.
TEST(NetShard, NetChaosReplayShardInvariant) {
  for (uint64_t seed : {7ULL, 19ULL, 23ULL}) {
    chaos::NetChaosOptions opts;
    opts.seed = seed;
    opts.shards = 1;
    const chaos::NetChaosResult serial = chaos::run_net_chaos(opts);
    EXPECT_TRUE(serial.ok()) << "seed " << seed << ": "
                             << (serial.violations.empty()
                                     ? ""
                                     : serial.violations.front());
    for (unsigned shards : kShardCounts) {
      if (shards == 1) continue;
      opts.shards = shards;
      const chaos::NetChaosResult sharded = chaos::run_net_chaos(opts);
      EXPECT_TRUE(sharded.ok()) << "seed " << seed << " shards " << shards;
      EXPECT_EQ(sharded.trace_digest, serial.trace_digest)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(sharded.cycles, serial.cycles);
      EXPECT_EQ(sharded.trace_events, serial.trace_events);
      EXPECT_EQ(sharded.crashes, serial.crashes);
      EXPECT_EQ(sharded.reboots, serial.reboots);
      EXPECT_EQ(sharded.store_writes, serial.store_writes);
    }
  }
}

// --- WorkPool: the barrier primitive under the engine ------------------------

TEST(HostWorkPool, DispatchCoversEverySpanAcrossEpochs) {
  host::WorkPool pool(4);
  ASSERT_EQ(pool.workers(), 4u);
  constexpr int kEpochs = 200;
  std::vector<std::atomic<uint32_t>> hits(4);
  for (auto& h : hits) h = 0;
  for (int e = 0; e < kEpochs; ++e)
    pool.dispatch([&](unsigned w) { hits[w].fetch_add(1); });
  for (unsigned w = 0; w < 4; ++w)
    EXPECT_EQ(hits[w].load(), uint32_t(kEpochs)) << "span " << w;
}

TEST(HostWorkPool, SingleWorkerRunsInline) {
  host::WorkPool pool(1);
  unsigned ran = 0;
  pool.dispatch([&](unsigned w) {
    EXPECT_EQ(w, 0u);
    ++ran;
  });
  EXPECT_EQ(ran, 1u);
}

TEST(HostWorkPool, WorkerExceptionRethrownAndPoolReusable) {
  host::WorkPool pool(3);
  EXPECT_THROW(pool.dispatch([](unsigned w) {
                 if (w == 2) throw std::runtime_error("span failed");
               }),
               std::runtime_error);
  // The pool must stay coherent after a failed epoch.
  std::atomic<uint32_t> total{0};
  pool.dispatch([&](unsigned) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 3u);
}

}  // namespace
}  // namespace sensmart
