// Adversarial-robustness suite for the OTA stack (DESIGN.md §11).
//
// Three layers:
//   NetAuth     — the SipHash-2-4 MAC primitive (reference vectors), the
//                 authenticated wire variants (Summary MAC, Ack tags), and
//                 the binding properties forged frames must break against.
//   NetFuzz     — hostile-input units: the resynchronizing deframer under
//                 random streams and an evil-frame corpus, the image codec
//                 under truncation/mutation, and exact-byte regressions for
//                 fuzzer-surfaced bugs (the flash_words length overflow).
//   NetHostile  — end-to-end attacks through the simulator: deterministic
//                 scripted attackers proving each vulnerability exists with
//                 auth off and is closed with auth on (forged install, Ack
//                 spoofing), the seeded HostileNode repertoire against star
//                 and grid fleets (survive, classify every honest node,
//                 never install a forgery, replay byte-identically), quota
//                 squelching of Nack floods, and a 32-seed shard-invariance
//                 property for adversarial runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "chaos/chaos.hpp"
#include "chaos/hostile.hpp"
#include "chaos/prng.hpp"
#include "host/parallel.hpp"
#include "net/auth.hpp"
#include "net/frame.hpp"
#include "net/image_codec.hpp"
#include "net/netsim.hpp"
#include "rewriter/linker.hpp"
#include "testlib/random_program.hpp"

namespace sensmart {
namespace {

std::vector<uint8_t> seeded_blob(uint64_t seed, size_t size) {
  chaos::Prng r(seed);
  std::vector<uint8_t> b(size);
  for (auto& x : b) x = static_cast<uint8_t>(r.below(256));
  return b;
}

// A deterministic attacker replaying a fixed packet list: packet i goes out
// on the i-th taken TX opportunity (every `period`-th offer, carrier-sense
// respected), cycling forever. Tests use it to inject exact byte sequences.
class ScriptedHostile final : public net::HostileModel {
 public:
  ScriptedHostile(std::vector<std::vector<uint8_t>> packets, uint32_t period)
      : packets_(std::move(packets)), period_(period) {}

  void observe(std::span<const uint8_t>) override {}
  bool emit(uint64_t, bool air_clear, std::vector<uint8_t>& out) override {
    if (!air_clear || packets_.empty()) return false;
    if (++calls_ % period_ != 0) return false;
    out = packets_[next_++ % packets_.size()];
    return true;
  }

 private:
  std::vector<std::vector<uint8_t>> packets_;
  uint32_t period_;
  uint64_t calls_ = 0;
  size_t next_ = 0;
};

// --- NetAuth: the MAC primitive and wire variants ---------------------------

// SipHash-2-4 reference vectors (key 000102...0f, 64-bit output) from the
// SipHash reference implementation's vectors_sip64 table.
TEST(NetAuth, SipHashReferenceVectors) {
  const net::AuthKey k = net::kDefaultAuthKey;  // 000102...0f little-endian
  EXPECT_EQ(net::siphash24(k, {}), 0x726fdb47dd0e0e31ULL);
  const uint8_t one[] = {0x00};
  EXPECT_EQ(net::siphash24(k, one), 0x74f839c593dc67fdULL);
  uint8_t eight[8];
  for (int i = 0; i < 8; ++i) eight[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(net::siphash24(k, eight), 0x93f5f5799a932462ULL);
}

TEST(NetAuth, MacDependsOnKeyAndMessage) {
  const auto blob = seeded_blob(1, 200);
  const uint64_t mac = net::siphash24(net::kDefaultAuthKey, blob);
  net::AuthKey other = net::kDefaultAuthKey;
  other.k0 ^= 1;
  EXPECT_NE(net::siphash24(other, blob), mac);
  auto flipped = blob;
  flipped[100] ^= 0x01;
  EXPECT_NE(net::siphash24(net::kDefaultAuthKey, flipped), mac);
  EXPECT_EQ(net::siphash24(net::kDefaultAuthKey, blob), mac);
}

TEST(NetAuth, SummaryMacRoundTripAndLegacySizes) {
  net::SummaryInfo info{120, 3840u, 0xC0FFEE00u, 32};
  // Legacy star: 11-byte payload, byte-identical to the pre-auth wire.
  EXPECT_EQ(net::make_summary(1, info).payload.size(), 11u);
  // Authenticated star: geometry + 8-byte MAC.
  info.has_mac = true;
  info.image_mac = 0x0123456789ABCDEFULL;
  const auto f = net::make_summary(1, info);
  EXPECT_EQ(f.payload.size(), 19u);
  const auto back = net::parse_summary(f);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->has_mac);
  EXPECT_EQ(back->image_mac, info.image_mac);
  EXPECT_EQ(back->total_chunks, info.total_chunks);
  EXPECT_EQ(back->image_crc, info.image_crc);
  EXPECT_FALSE(back->has_sender);
  // Authenticated mesh: MAC inserted before the sender, which stays last.
  const auto mf = net::make_mesh_summary(1, info, 7, 3);
  EXPECT_EQ(mf.payload.size(), 21u);
  EXPECT_EQ(mf.seq, 3u);  // hop rides in seq
  const auto mb = net::parse_summary(mf);
  ASSERT_TRUE(mb.has_value());
  EXPECT_TRUE(mb->has_mac);
  EXPECT_EQ(mb->image_mac, info.image_mac);
  ASSERT_TRUE(mb->has_sender);
  EXPECT_EQ(mb->sender, 7u);
  // Legacy mesh stays 13 bytes.
  info.has_mac = false;
  EXPECT_EQ(net::make_mesh_summary(1, info, 7, 3).payload.size(), 13u);
}

TEST(NetAuth, AckTagRoundTripAndLegacyFramesCarryNone) {
  const uint64_t tag = net::ack_tag(net::kDefaultAuthKey, 2, 5, 0xDEADBEEFu);
  const auto star = net::make_auth_ack(2, 5, tag);
  EXPECT_EQ(star.seq, 5u);
  EXPECT_EQ(star.payload.size(), 8u);
  const auto got = net::ack_auth_tag(star);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, tag);

  const auto mesh = net::make_mesh_ack(2, 5, 3, 1, tag);
  EXPECT_EQ(mesh.payload.size(), 11u);
  const auto ma = net::parse_mesh_ack(mesh);
  ASSERT_TRUE(ma.has_value());
  EXPECT_TRUE(ma->has_tag);
  EXPECT_EQ(ma->tag, tag);
  EXPECT_EQ(ma->relayer, 3u);
  const auto mt = net::ack_auth_tag(mesh);
  ASSERT_TRUE(mt.has_value());
  EXPECT_EQ(*mt, tag);

  // Legacy encodings: empty star Ack and the 3-byte mesh Ack carry no tag.
  net::Frame legacy{net::FrameType::Ack, 2, 5, {}};
  EXPECT_FALSE(net::ack_auth_tag(legacy).has_value());
  const auto lm = net::make_mesh_ack(2, 5, 3, 1);
  EXPECT_EQ(lm.payload.size(), 3u);
  EXPECT_FALSE(net::ack_auth_tag(lm).has_value());
  const auto lma = net::parse_mesh_ack(lm);
  ASSERT_TRUE(lma.has_value());
  EXPECT_FALSE(lma->has_tag);
}

TEST(NetAuth, AckTagBindsOriginVersionAndCrc) {
  const net::AuthKey k = net::kDefaultAuthKey;
  const uint64_t t = net::ack_tag(k, 1, 4, 0x11111111u);
  EXPECT_EQ(net::ack_tag(k, 1, 4, 0x11111111u), t);
  EXPECT_NE(net::ack_tag(k, 2, 4, 0x11111111u), t);  // version
  EXPECT_NE(net::ack_tag(k, 1, 5, 0x11111111u), t);  // origin
  EXPECT_NE(net::ack_tag(k, 1, 4, 0x22222222u), t);  // image CRC
  net::AuthKey other = k;
  other.k1 ^= 0x80;
  EXPECT_NE(net::ack_tag(other, 1, 4, 0x11111111u), t);  // key
}

// --- NetFuzz: hostile input units -------------------------------------------

TEST(NetFuzz, DeframerSurvivesRandomByteStream) {
  chaos::Prng r(0xF00D);
  net::Deframer d;
  size_t frames = 0;
  for (size_t i = 0; i < 64 * 1024; ++i) {
    d.push(static_cast<uint8_t>(r.below(256)));
    while (d.next()) ++frames;  // random CRC hits are fine; crashes are not
  }
  // The parser must not wedge: after arbitrary garbage, a burst of valid
  // frames longer than the worst-case phantom (a garbage sync promising a
  // 48-byte payload can hold back up to 56 bytes) always yields a parse.
  net::Frame valid{net::FrameType::Data, 1, 0x1234, {9, 8, 7}};
  for (int k = 0; k < 8; ++k)
    for (uint8_t b : net::encode_frame(valid)) d.push(b);
  size_t recovered = 0;
  while (auto f = d.next())
    if (f->seq == 0x1234) ++recovered;
  EXPECT_GE(recovered, 1u);
  (void)frames;
}

TEST(NetFuzz, DeframerEvilCorpus) {
  // Each entry is a hostile byte sequence; after each, a burst of valid
  // sentinel frames (sized past the worst-case 56-byte phantom an evil
  // header can hold pending) must still get through.
  const std::vector<std::vector<uint8_t>> corpus = {
      {net::kFrameSync},                                  // bare sync
      {net::kFrameSync, 0x02, 0x01, 0x00, 0x00},          // cut-off header
      {net::kFrameSync, 0x02, 0x01, 0x00, 0x00, 0xFF},    // length over max
      {net::kFrameSync, 0x02, 0x01, 0x00, 0x00, 48},      // max length, no body
      {net::kFrameSync, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00},  // type 0
      {net::kFrameSync, net::kFrameSync, net::kFrameSync, net::kFrameSync},
      {0x00, 0x01, 0x02, net::kFrameSync, 0x04, 0x05, 0x06, 0x07, 0x08},
  };
  // A valid frame whose CRC bytes are flipped: detected, then resynced.
  auto bad_crc = net::encode_frame({net::FrameType::Data, 1, 7, {1, 2, 3}});
  bad_crc.back() ^= 0xFF;

  net::Deframer d;
  const net::Frame sentinel{net::FrameType::Ack, 1, 0xBEEF, {}};
  for (const auto& evil : corpus) {
    for (uint8_t b : evil) d.push(b);
    for (int k = 0; k < 8; ++k)
      for (uint8_t b : net::encode_frame(sentinel)) d.push(b);
    size_t got = 0;
    while (auto f = d.next())
      if (f->type == net::FrameType::Ack && f->seq == 0xBEEF) ++got;
    EXPECT_GE(got, 1u);
  }
  for (uint8_t b : bad_crc) d.push(b);
  for (int k = 0; k < 8; ++k)
    for (uint8_t b : net::encode_frame(sentinel)) d.push(b);
  bool got = false;
  while (auto f = d.next())
    if (f->seq == 0xBEEF) got = true;
  EXPECT_TRUE(got);
  EXPECT_GE(d.crc_errors(), 1u);
}

std::vector<uint8_t> linked_test_blob() {
  rw::Linker linker(rw::RewriteOptions{}, true);
  linker.add(testlib::random_program(42));
  return net::serialize_system(linker.link());
}

TEST(NetFuzz, ImageCodecSurvivesTruncationAndMutation) {
  const auto blob = linked_test_blob();
  const auto sys = net::deserialize_system(blob);
  ASSERT_TRUE(sys.has_value());
  EXPECT_EQ(net::serialize_system(*sys), blob);  // clean round trip

  // Every truncation must fail clean (strict validation: no partial parse).
  for (size_t len = 0; len < blob.size(); len += 17) {
    const auto cut = net::deserialize_system(
        std::span<const uint8_t>(blob.data(), len));
    EXPECT_FALSE(cut.has_value()) << "prefix " << len;
  }
  // Seeded byte mutations: parsing may succeed or fail, but must never
  // crash, hang, or read out of bounds (ASan/UBSan enforce in CI).
  chaos::Prng r(0xBADF00D);
  for (int i = 0; i < 300; ++i) {
    auto mut = blob;
    const int flips = 1 + int(r.below(8));
    for (int f = 0; f < flips; ++f)
      mut[r.below(static_cast<uint32_t>(mut.size()))] ^=
          static_cast<uint8_t>(1 + r.below(255));
    (void)net::deserialize_system(mut);
  }
  // Pure garbage of assorted sizes.
  for (uint32_t size : {0u, 1u, 5u, 19u, 20u, 21u, 64u, 1024u}) {
    const auto junk = seeded_blob(size + 77, size);
    EXPECT_FALSE(net::deserialize_system(junk).has_value());
  }
}

// Regression: a forged header with flash_words >= 2^31 made the 32-bit
// bounds check `flash_words * 2 > remaining` wrap (0x80000001 * 2 == 2) and
// commanded a multi-GB allocation from a 26-byte blob. The exact triggering
// byte sequence, hand-assembled:
TEST(NetFuzz, FlashWordsOverflowRegression) {
  std::vector<uint8_t> evil;
  auto u16 = [&](uint16_t v) {
    evil.push_back(static_cast<uint8_t>(v & 0xFF));
    evil.push_back(static_cast<uint8_t>(v >> 8));
  };
  auto u32 = [&](uint32_t v) {
    u16(static_cast<uint16_t>(v & 0xFFFF));
    u16(static_cast<uint16_t>(v >> 16));
  };
  u32(net::kImageMagic);
  u16(net::kImageFormatVersion);
  for (int i = 0; i < 6; ++i) evil.push_back(1);  // rewrite option flags
  for (int i = 0; i < 8; ++i) evil.push_back(0);  // body_scale (f64 0.0)
  u32(0x80000001u);  // flash_words: *2 wraps to 2 in uint32
  u16(0xABCD);       // exactly 2 remaining bytes, "satisfying" wrapped check
  ASSERT_EQ(evil.size(), 26u);
  EXPECT_FALSE(net::deserialize_system(evil).has_value());
}

// --- NetHostile: end-to-end attacks through the simulator -------------------

struct HostileRun {
  net::DisseminationResult d;
  std::vector<std::vector<uint8_t>> blobs;  // node_blob per id (1-based at 0)
  std::vector<bool> complete;
  uint64_t digest = 0;
  uint64_t cycles = 0;
};

HostileRun run_hostile(const net::NetConfig& cfg,
                       const std::vector<uint8_t>& blob,
                       net::HostileModel* model) {
  net::NetSim sim(cfg, blob);
  sim.set_hostile_model(model);
  HostileRun r;
  r.d = sim.disseminate();
  r.digest = r.d.trace_digest;
  r.cycles = r.d.cycles;
  for (size_t id = 1; id <= cfg.nodes; ++id) {
    r.complete.push_back(sim.node_complete(id));
    r.blobs.push_back(sim.node_blob(id));
  }
  return r;
}

// The forged image a scripted attacker serves: tiny, CRC-consistent.
struct Forgery {
  std::vector<uint8_t> bytes;
  uint32_t crc;
  net::SummaryInfo info;
};

Forgery make_forgery(bool with_mac) {
  Forgery f;
  f.bytes = seeded_blob(0xEE, 64);
  f.crc = net::crc32(f.bytes);
  f.info = {2, 64u, f.crc, 32};
  if (with_mac) {
    f.info.has_mac = true;
    f.info.image_mac = 0x4141414141414141ULL;  // attacker holds no key
  }
  return f;
}

// A line topology 0-1-2 with the attacker in the middle: honest node 2 is
// out of the base's radio range and hears ONLY the attacker — the forged
// announcement faces no race against the honest one.
net::NetConfig line_cfg(bool auth) {
  net::NetConfig cfg;
  cfg.nodes = 2;
  cfg.topo.kind = net::TopologyKind::Line;
  cfg.hostile_node = 1;
  cfg.proto.auth = auth;
  cfg.proto.node_give_up_probes = 8;  // the base must be able to give up
  cfg.max_cycles = 3'000'000'000ULL;
  return cfg;
}

std::vector<std::vector<uint8_t>> forged_serving_packets(const Forgery& f) {
  // Mesh Summary claiming hop 1 (sender = hostile id 1), then both chunks.
  std::vector<std::vector<uint8_t>> pkts;
  pkts.push_back(net::encode_frame(net::make_mesh_summary(1, f.info, 1, 1)));
  for (uint16_t seq = 0; seq < 2; ++seq) {
    net::Frame df{net::FrameType::Data, 1, seq,
                  {f.bytes.begin() + seq * 32, f.bytes.begin() + seq * 32 + 32}};
    pkts.push_back(net::encode_frame(df));
  }
  return pkts;
}

// With authentication OFF a CRC-consistent forgery INSTALLS: the victim
// assembles the attacker's bytes, the whole-image CRC (of those bytes)
// passes, and the store activates. This is the vulnerability the MAC
// closes; the test pins it so the threat model stays demonstrably real.
TEST(NetHostile, ForgedImageInstallsWithoutMac) {
  const auto honest = seeded_blob(0x5151, 400);
  const auto f = make_forgery(/*with_mac=*/false);
  ScriptedHostile attacker(forged_serving_packets(f), 4);
  const auto r = run_hostile(line_cfg(/*auth=*/false), honest, &attacker);
  ASSERT_EQ(r.complete.size(), 2u);
  EXPECT_FALSE(r.d.budget_exhausted);
  EXPECT_TRUE(r.complete[1]) << "victim should install the forgery";
  EXPECT_EQ(r.blobs[1], f.bytes);  // forged bytes, verified and activated
  EXPECT_NE(r.blobs[1], honest);
}

// Same attack with authentication ON: the victim assembles the forgery,
// the CRC passes, and the MAC gate kills the install. The victim never
// activates, blacklists the forged announcement, and the base classifies
// it instead of hanging.
TEST(NetHostile, MacBlocksForgedInstall) {
  const auto honest = seeded_blob(0x5151, 400);
  const auto f = make_forgery(/*with_mac=*/true);
  ScriptedHostile attacker(forged_serving_packets(f), 4);
  const auto cfg = line_cfg(/*auth=*/true);
  const auto r = run_hostile(cfg, honest, &attacker);
  ASSERT_EQ(r.complete.size(), 2u);
  EXPECT_FALSE(r.d.budget_exhausted);
  EXPECT_FALSE(r.complete[1]) << "MAC gate must block the forged install";
  EXPECT_GE(r.d.nodes[1].auth_rejects, 1u);
  EXPECT_TRUE(r.d.nodes[1].abandoned);
  // Replay: adversarial runs are as deterministic as honest ones.
  ScriptedHostile again(forged_serving_packets(f), 4);
  const auto r2 = run_hostile(cfg, honest, &again);
  EXPECT_EQ(r2.digest, r.digest);
  EXPECT_EQ(r2.cycles, r.cycles);
}

// Regression for the out-of-bounds Nack scan surfaced by the fuzzer
// (net-chaos seed 7): a victim assembling a forged announcement with FEWER
// chunks than the base's image indexed st.have past its end when building
// its missing list (the loop ran to the sim-global chunk count). The heap
// garbage it read made replays diverge. Trigger: the line-topology victim
// adopts the 2-chunk forgery while the honest image has 13 chunks, then
// Nacks — run twice and require byte-identical traces.
TEST(NetHostile, ForgedSmallGeometryNackReplayRegression) {
  const auto honest = seeded_blob(0x5151, 400);  // 13 chunks at payload 32
  const auto f = make_forgery(/*with_mac=*/true);
  // Serve only the Summary: the victim keeps Nacking against the forged
  // 2-chunk geometry, exercising the missing-list scan every backoff.
  std::vector<std::vector<uint8_t>> pkts = {
      net::encode_frame(net::make_mesh_summary(1, f.info, 1, 1))};
  const auto cfg = line_cfg(/*auth=*/true);
  ScriptedHostile a1(pkts, 4), a2(pkts, 4);
  const auto r1 = run_hostile(cfg, honest, &a1);
  const auto r2 = run_hostile(cfg, honest, &a2);
  EXPECT_FALSE(r1.d.budget_exhausted);
  EXPECT_FALSE(r1.complete[1]);
  EXPECT_EQ(r1.digest, r2.digest);
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.d.trace_events, r2.d.trace_events);
}

// Ack spoofing, the completion-side forgery: with auth off a scripted
// attacker claiming "node 1 and node 2 completed" ends the run with the
// base convinced of two installs that never happened. With auth on the
// unsigned claims are dropped and the honest node really completes.
TEST(NetHostile, AckSpoofForgesCompletionWithoutAuthTag) {
  const auto honest = seeded_blob(0x2222, 400);
  net::NetConfig cfg;
  cfg.nodes = 2;  // star: node 2 honest, node 1 hostile
  cfg.hostile_node = 1;
  cfg.max_cycles = 2'000'000'000ULL;

  std::vector<std::vector<uint8_t>> spoofs;
  for (uint16_t victim : {1, 2})
    spoofs.push_back(
        net::encode_frame(net::Frame{net::FrameType::Ack, 1, victim, {}}));

  cfg.proto.auth = false;
  ScriptedHostile liar(spoofs, 2);
  const auto off = run_hostile(cfg, honest, &liar);
  EXPECT_TRUE(off.d.all_acked) << "base believed both spoofed completions";
  EXPECT_FALSE(off.complete[0]);
  EXPECT_FALSE(off.complete[1]) << "yet nobody actually installed";

  cfg.proto.auth = true;
  ScriptedHostile liar2(spoofs, 2);
  const auto on = run_hostile(cfg, honest, &liar2);
  EXPECT_GE(on.d.base.acks_rejected, 2u);
  EXPECT_FALSE(on.d.budget_exhausted);
  EXPECT_TRUE(on.complete[1]);  // honest node 2 completes for real
  EXPECT_EQ(on.blobs[1], honest);
}

// Nack flooding: the liveness quota bounds how long impersonated "still
// alive" claims can delay abandonment. The flood is squelched, honest
// nodes complete, and the run terminates instead of livelocking.
TEST(NetHostile, NackFloodSquelchedByLivenessQuota) {
  const auto honest = seeded_blob(0x3333, 400);
  net::NetConfig cfg;
  cfg.nodes = 3;
  cfg.hostile_node = 1;
  cfg.proto.auth = true;
  cfg.max_cycles = 3'000'000'000ULL;

  chaos::HostileProfile p;
  p.seed = 99;
  p.node = 1;
  p.nodes = 3;
  p.intensity_pct = 95;
  p.garbage = p.truncation = p.replay = p.collide = false;
  p.forge_summary = p.forge_data = p.ack_spoof = false;  // nack_flood only
  chaos::HostileNode flooder(p);

  const auto r = run_hostile(cfg, honest, &flooder);
  EXPECT_FALSE(r.d.budget_exhausted) << "flood must not livelock the run";
  EXPECT_GT(r.d.base.frames_squelched, 0u);
  EXPECT_TRUE(r.complete[1]);
  EXPECT_TRUE(r.complete[2]);
  EXPECT_EQ(r.blobs[1], honest);
  EXPECT_EQ(r.blobs[2], honest);
  EXPECT_GT(flooder.frames_emitted(), 0u);
}

// Full-repertoire acceptance: a seeded HostileNode in an 8-node star at
// 10% loss. The fleet must terminate inside the budget with every honest
// node classified (complete or abandoned with a reason), no forged
// installs, and a byte-identical replay.
TEST(NetHostile, StarFleetSurvivesSeededAttacker) {
  const auto honest = seeded_blob(0x4444, 600);
  net::NetConfig cfg;
  cfg.nodes = 8;
  cfg.link.drop_pct = 10;
  cfg.hostile_node = 3;
  cfg.proto.auth = true;
  cfg.max_cycles = 8'000'000'000ULL;

  chaos::HostileProfile p;
  p.seed = 0xA77AC;
  p.node = 3;
  p.nodes = 8;
  p.intensity_pct = 60;
  auto run = [&] {
    chaos::HostileNode attacker(p);
    return run_hostile(cfg, honest, &attacker);
  };
  const auto r = run();
  EXPECT_FALSE(r.d.budget_exhausted);
  size_t honest_complete = 0;
  for (size_t id = 1; id <= cfg.nodes; ++id) {
    const auto& st = r.d.nodes[id - 1];
    if (id == cfg.hostile_node) {
      EXPECT_FALSE(r.complete[id - 1]);
      continue;
    }
    // Classified: completed, or abandoned with a recorded reason.
    EXPECT_TRUE(r.complete[id - 1] || st.abandoned) << "node " << id;
    if (r.complete[id - 1]) {
      ++honest_complete;
      EXPECT_EQ(r.blobs[id - 1], honest) << "node " << id;  // never forged
    } else {
      EXPECT_NE(st.abort_reason, net::NodeAbortReason::None);
    }
  }
  EXPECT_GE(honest_complete, 1u);
  const auto r2 = run();
  EXPECT_EQ(r2.digest, r.digest);
  EXPECT_EQ(r2.cycles, r.cycles);
}

// Same bar on a 16-node mesh grid at 10% loss (the ISSUE acceptance
// scenario): multi-hop relaying, peer serving and CSMA collisions between
// the attacker and honest traffic, still no forged install and every
// honest node classified within the budget.
TEST(NetHostile, GridFleetSurvivesSeededAttacker) {
  const auto honest = seeded_blob(0x6666, 600);
  net::NetConfig cfg;
  cfg.nodes = 16;
  cfg.topo.kind = net::TopologyKind::Grid;
  cfg.link.drop_pct = 10;
  cfg.hostile_node = 5;
  cfg.proto.auth = true;
  cfg.proto.node_give_up_probes = 24;  // generous, but finite under attack
  cfg.max_cycles = 12'000'000'000ULL;

  chaos::HostileProfile p;
  p.seed = 0x6B1D;
  p.node = 5;
  p.nodes = 16;
  p.intensity_pct = 50;
  auto run = [&] {
    chaos::HostileNode attacker(p);
    return run_hostile(cfg, honest, &attacker);
  };
  const auto r = run();
  EXPECT_FALSE(r.d.budget_exhausted);
  for (size_t id = 1; id <= cfg.nodes; ++id) {
    if (id == cfg.hostile_node) continue;
    const auto& st = r.d.nodes[id - 1];
    EXPECT_TRUE(r.complete[id - 1] || st.abandoned) << "node " << id;
    if (r.complete[id - 1]) {
      EXPECT_EQ(r.blobs[id - 1], honest) << "node " << id;
    }
  }
  const auto r2 = run();
  EXPECT_EQ(r2.digest, r.digest);
  EXPECT_EQ(r2.cycles, r.cycles);
}

// 32-seed property: adversarial runs are shard-invariant exactly like
// honest ones — one random hostile node per seed, byte-identical trace
// digests and outcomes at shards {1, 2, 4, 8}.
TEST(NetHostile, SeededAttackerShardInvariantOver32Seeds) {
  constexpr size_t kSeeds = 32;
  const auto ok = host::sweep_collect<uint8_t>(
      kSeeds, host::effective_jobs(8, kSeeds), [&](std::size_t i) {
        const uint64_t seed = i + 1;
        chaos::Prng plan(seed ^ 0xADA55ULL);
        net::NetConfig cfg;
        cfg.nodes = 3 + plan.below(3);  // 3..5
        cfg.link.drop_pct = plan.below(6);
        cfg.hostile_node = static_cast<uint16_t>(1 + plan.below(cfg.nodes));
        cfg.proto.auth = true;
        cfg.chaos_seed = seed;
        cfg.max_cycles = 4'000'000'000ULL;
        // Collapse the abandon tail: the attacker never Acks, so every run
        // ends by giving up on it, and the default probe backoff would
        // spend most of the simulated (and wall) time idling toward that
        // abandonment. The property is invariance, not classification
        // latency — short timers exercise the same code.
        cfg.proto.node_give_up_probes = 4;
        cfg.proto.nack_timeout = 4 * 40 * emu::DeviceHub::kCyclesPerRadioByte;
        cfg.proto.probe_interval =
            8 * 40 * emu::DeviceHub::kCyclesPerRadioByte;
        cfg.proto.backoff_cap_exp = 2;
        if (plan.below(2)) cfg.topo.kind = net::TopologyKind::Grid;
        const auto blob = seeded_blob(seed * 31, 100 + plan.below(100));
        chaos::HostileProfile p;
        p.seed = seed * 0x9E37;
        p.node = cfg.hostile_node;
        p.nodes = static_cast<uint16_t>(cfg.nodes);
        p.intensity_pct = 30 + plan.below(21);
        auto run_at = [&](unsigned shards) {
          auto c = cfg;
          c.shards = shards;
          chaos::HostileNode attacker(p);
          return run_hostile(c, blob, &attacker);
        };
        const auto serial = run_at(1);
        if (serial.d.budget_exhausted) return false;
        for (unsigned shards : {2u, 4u, 8u}) {
          const auto sharded = run_at(shards);
          if (sharded.digest != serial.digest ||
              sharded.cycles != serial.cycles ||
              sharded.d.trace_events != serial.d.trace_events ||
              sharded.complete != serial.complete ||
              sharded.blobs != serial.blobs)
            return false;
        }
        return true;
      });
  for (size_t i = 0; i < kSeeds; ++i) EXPECT_TRUE(ok[i]) << "seed " << i + 1;
}

// The chaos-harness dimension end-to-end: forced-adversary net-chaos seeds
// run their internal replay oracle (and the convergence/forgery oracles)
// clean. Seed 7 is pinned — it is the seed whose planned mesh fleet first
// surfaced the out-of-bounds Nack scan as a replay divergence.
TEST(NetHostile, NetChaosForcedAdversarySeedsReplayClean) {
  for (uint64_t seed : {3ULL, 7ULL, 8ULL}) {
    chaos::NetChaosOptions opts;
    opts.seed = seed;
    opts.force_adversary = true;
    const chaos::NetChaosResult res = chaos::run_net_chaos(opts);
    EXPECT_TRUE(res.ok()) << "seed " << seed << ": "
                          << (res.violations.empty() ? ""
                                                     : res.violations.front());
    EXPECT_TRUE(res.hostile);
    EXPECT_GT(res.hostile_frames, 0u);
  }
}

}  // namespace
}  // namespace sensmart
