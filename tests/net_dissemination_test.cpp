// Conformance suite for the multi-node radio network and the over-the-air
// dissemination protocol (DESIGN.md §7): frame/image codec round-trips, the
// 4-node lossy-dissemination acceptance scenario (byte-identical installs),
// golden trace digests, serial-vs-parallel replay equality, a 32-seed
// randomized-program property test, and adversarial schedules that must end
// in a verified install or a clean abort — never a partial activation.
#include <gtest/gtest.h>

#include <cstring>

#include "apps/treesearch.hpp"
#include "host/parallel.hpp"
#include "net/frame.hpp"
#include "net/image_codec.hpp"
#include "net/netsim.hpp"
#include "sim/harness.hpp"
#include "testlib/random_program.hpp"

namespace sensmart {
namespace {

using assembler::Image;

std::vector<Image> fig7_workload(uint16_t tree_nodes, int n_search) {
  std::vector<Image> images;
  images.push_back(apps::data_feed_program(6, 64));
  for (int i = 0; i < n_search; ++i) {
    apps::TreeSearchParams p;
    p.nodes_per_tree = tree_nodes;
    p.trees = 1;
    p.searches = 32;
    p.seed = static_cast<uint16_t>(0x3131 + 0x1D0B * i);
    images.push_back(apps::tree_search_program(p));
  }
  return images;
}

std::vector<uint8_t> linked_blob(const std::vector<Image>& images) {
  rw::Linker linker(rw::RewriteOptions{}, true);
  for (const auto& img : images) linker.add(img);
  return net::serialize_system(linker.link());
}

// --- Frame codec ------------------------------------------------------------

TEST(NetFrame, EncodeDecodeRoundTrip) {
  net::Frame f;
  f.type = net::FrameType::Data;
  f.version = 7;
  f.seq = 0xBEEF;
  for (int i = 0; i < 33; ++i) f.payload.push_back(uint8_t(i * 3));

  net::Deframer d;
  for (uint8_t b : net::encode_frame(f)) d.push(b);
  const auto got = d.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, f.type);
  EXPECT_EQ(got->version, f.version);
  EXPECT_EQ(got->seq, f.seq);
  EXPECT_EQ(got->payload, f.payload);
  EXPECT_FALSE(d.next().has_value());
  EXPECT_EQ(d.crc_errors(), 0u);
}

TEST(NetFrame, BackToBackFramesAndGarbagePrefix) {
  net::Deframer d;
  // Leading garbage, then three frames in a row.
  for (uint8_t b : {0x00, 0x13, 0xFF}) d.push(b);
  for (uint16_t seq = 0; seq < 3; ++seq) {
    net::Frame f{net::FrameType::Data, 1, seq, {uint8_t(seq), 0xAA}};
    for (uint8_t b : net::encode_frame(f)) d.push(b);
  }
  for (uint16_t seq = 0; seq < 3; ++seq) {
    const auto got = d.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->seq, seq);
  }
  EXPECT_FALSE(d.next().has_value());
  EXPECT_GE(d.skipped_bytes(), 3u);
}

TEST(NetFrame, CorruptionDetectedAndResynced) {
  net::Frame a{net::FrameType::Data, 1, 10, {1, 2, 3, 4}};
  net::Frame b{net::FrameType::Data, 1, 11, {5, 6, 7, 8}};
  auto wa = net::encode_frame(a);
  wa[7] ^= 0x40;  // flip a payload bit: CRC must catch it

  net::Deframer d;
  for (uint8_t byte : wa) d.push(byte);
  for (uint8_t byte : net::encode_frame(b)) d.push(byte);
  const auto got = d.next();
  ASSERT_TRUE(got.has_value());  // resynced onto the second frame
  EXPECT_EQ(got->seq, 11);
  EXPECT_GE(d.crc_errors(), 1u);
}

TEST(NetFrame, SummaryAndNackPayloads) {
  net::SummaryInfo info{1234, 56789u, 0xDEADBEEFu, 32};
  const auto sf = net::make_summary(3, info);
  const auto back = net::parse_summary(sf);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->total_chunks, info.total_chunks);
  EXPECT_EQ(back->image_bytes, info.image_bytes);
  EXPECT_EQ(back->image_crc, info.image_crc);
  EXPECT_EQ(back->chunk_payload, info.chunk_payload);

  const std::vector<uint16_t> missing{3, 5, 900, 4093};
  const auto nf = net::make_nack(3, 2, missing);
  EXPECT_EQ(nf.seq, 2);  // node id rides in the seq field
  const auto miss = net::parse_nack(nf);
  ASSERT_TRUE(miss.has_value());
  EXPECT_EQ(*miss, missing);

  const auto empty = net::parse_nack(net::make_nack(3, 1, {}));
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

// --- Image codec ------------------------------------------------------------

TEST(NetImageCodec, RoundTripIsByteIdentical) {
  const auto blob = linked_blob(fig7_workload(8, 2));
  const auto sys = net::deserialize_system(blob);
  ASSERT_TRUE(sys.has_value());
  EXPECT_EQ(net::serialize_system(*sys), blob);
  EXPECT_FALSE(sys->programs.empty());
  EXPECT_FALSE(sys->services.empty());
}

TEST(NetImageCodec, TruncationNeverParses) {
  const auto blob = linked_blob(fig7_workload(8, 1));
  for (size_t len = 0; len < blob.size(); len += 97) {
    std::vector<uint8_t> cut(blob.begin(), blob.begin() + len);
    EXPECT_FALSE(net::deserialize_system(cut).has_value()) << "len=" << len;
  }
  // Trailing garbage is rejected too.
  auto extended = blob;
  extended.push_back(0);
  EXPECT_FALSE(net::deserialize_system(extended).has_value());
}

// --- Acceptance: 4-node dissemination at 10% loss ---------------------------

TEST(NetDissemination, FourNodesAtTenPercentLossInstallByteIdentical) {
  const auto blob = linked_blob(fig7_workload(8, 2));

  net::NetConfig cfg;
  cfg.nodes = 4;
  cfg.link.drop_pct = 10;
  cfg.chaos_seed = 0x5EED;
  cfg.max_cycles = 1'000'000'000ULL;
  net::NetSim sim(cfg, blob);
  const auto res = sim.disseminate();

  EXPECT_TRUE(res.all_acked);
  EXPECT_FALSE(res.aborted);
  EXPECT_EQ(res.complete_nodes(), 4u);
  EXPECT_GT(res.medium.dropped, 0u);  // the loss actually happened
  for (size_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(sim.node_complete(id)) << "node " << id;
    EXPECT_EQ(sim.node_blob(id), blob) << "node " << id;
  }
  // Loss forces repair traffic.
  uint64_t nacks = 0;
  for (const auto& n : res.nodes) nacks += n.nacks_sent;
  EXPECT_GT(nacks, 0u);
  EXPECT_GT(res.base.retransmissions, 0u);
}

TEST(NetDissemination, EndToEndNodesRunInstalledImageIdentically) {
  sim::NetworkRunSpec spec;
  spec.kernel.initial_stack = 96;
  spec.net.nodes = 4;
  spec.net.link.drop_pct = 10;
  spec.net.chaos_seed = 0x5EED;
  spec.net.max_cycles = 1'000'000'000ULL;
  spec.run_cycles = 2'000'000'000ULL;

  const auto nr = sim::run_network(fig7_workload(8, 2), spec);
  ASSERT_TRUE(nr.dissemination.all_acked);
  ASSERT_TRUE(nr.all_installed());
  ASSERT_EQ(nr.nodes.size(), 4u);

  for (size_t i = 0; i < nr.nodes.size(); ++i) {
    const auto& node = nr.nodes[i];
    // Install provenance propagated into the kernel.
    EXPECT_TRUE(node.install.over_the_air);
    EXPECT_EQ(node.install.node_id, i + 1);
    EXPECT_EQ(node.install.image_crc, nr.dissemination.image_crc);
    EXPECT_EQ(node.install.image_bytes, nr.image_blob.size());
    EXPECT_GT(node.install.frames_rx, 0u);
    // Every task of the installed image ran to completion.
    EXPECT_EQ(node.run.stop, emu::StopReason::Halted) << "node " << i + 1;
    EXPECT_EQ(node.run.completed(), node.run.tasks.size());
    EXPECT_TRUE(node.run.invariant_error.empty());
  }
  // All nodes executed the same image from the same clock: their task
  // outputs must be identical.
  for (size_t i = 1; i < nr.nodes.size(); ++i) {
    ASSERT_EQ(nr.nodes[i].run.tasks.size(), nr.nodes[0].run.tasks.size());
    for (size_t t = 0; t < nr.nodes[0].run.tasks.size(); ++t)
      EXPECT_EQ(nr.nodes[i].run.tasks[t].host_out,
                nr.nodes[0].run.tasks[t].host_out)
          << "node " << i + 1 << " task " << t;
  }
}

// --- Determinism: replay, golden digests, serial vs parallel ----------------

net::DisseminationResult disseminate_seed(const std::vector<uint8_t>& blob,
                                          uint64_t seed) {
  net::NetConfig cfg;
  cfg.nodes = 3;
  cfg.link.drop_pct = 12;
  cfg.link.dup_pct = 4;
  cfg.link.reorder_pct = 4;
  cfg.link.corrupt_pct = 4;
  cfg.chaos_seed = seed;
  cfg.max_cycles = 2'000'000'000ULL;
  net::NetSim sim(cfg, blob);
  return sim.disseminate();
}

TEST(NetDeterminism, SameSeedReplaysByteIdentically) {
  const auto blob = linked_blob(fig7_workload(8, 1));
  const auto a = disseminate_seed(blob, 42);
  const auto b = disseminate_seed(blob, 42);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.trace_events, b.trace_events);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.base.frames_tx, b.base.frames_tx);
  EXPECT_EQ(a.medium.dropped, b.medium.dropped);
  for (size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].frames_rx, b.nodes[i].frames_rx);
    EXPECT_EQ(a.nodes[i].completion_cycle, b.nodes[i].completion_cycle);
  }

  const auto c = disseminate_seed(blob, 43);
  EXPECT_NE(a.trace_digest, c.trace_digest);
}

TEST(NetDeterminism, SerialAndParallelSweepsAgree) {
  const auto blob = linked_blob(fig7_workload(8, 1));
  constexpr size_t kSeeds = 8;
  auto digests = [&](unsigned jobs) {
    return host::sweep_collect<uint64_t>(
        kSeeds, host::effective_jobs(jobs, kSeeds), [&](std::size_t i) {
          const auto r = disseminate_seed(blob, 100 + i);
          EXPECT_TRUE(r.all_acked) << "seed " << 100 + i;
          return r.trace_digest;
        });
  };
  const auto serial = digests(1);
  const auto parallel = digests(4);
  EXPECT_EQ(serial, parallel);
}

// Golden digests: pinned observed values. A change here means the
// dissemination schedule changed — intentional protocol changes must update
// these constants (and the committed EXPERIMENTS.md baseline) explicitly.
TEST(NetDeterminism, GoldenTraceDigests) {
  const auto blob = linked_blob(fig7_workload(8, 1));
  const uint64_t expected[3] = {
      0x7697f85e0c51bdedULL,  // seed 1
      0x763c4fa6f5fb1d97ULL,  // seed 2
      0xdfee889478227a01ULL,  // seed 3
  };
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const auto r = disseminate_seed(blob, seed);
    ASSERT_TRUE(r.all_acked) << "seed " << seed;
    EXPECT_EQ(r.trace_digest, expected[seed - 1])
        << "seed " << seed << " digest 0x" << std::hex << r.trace_digest;
  }
}

// --- Property: randomized programs survive a lossy link ---------------------

TEST(NetProperty, RandomProgramsDisseminateByteIdenticalOver32Seeds) {
  constexpr size_t kSeeds = 32;
  // uint8_t, not bool: vector<bool> bit-packs slots into shared words,
  // which races across sweep workers (sweep_collect static_asserts on it).
  const auto ok = host::sweep_collect<uint8_t>(
      kSeeds, host::effective_jobs(4, kSeeds), [&](std::size_t i) {
        const auto blob =
            linked_blob({testlib::random_program(uint32_t(i) + 1)});
        net::NetConfig cfg;
        cfg.nodes = 2;
        cfg.link.drop_pct = 15;
        cfg.link.dup_pct = 5;
        cfg.link.reorder_pct = 5;
        cfg.link.corrupt_pct = 5;
        cfg.chaos_seed = 0xABCD + i;
        cfg.max_cycles = 2'000'000'000ULL;
        net::NetSim sim(cfg, blob);
        const auto r = sim.disseminate();
        if (!r.all_acked) return false;
        for (size_t id = 1; id <= cfg.nodes; ++id) {
          if (sim.node_blob(id) != blob) return false;
          if (!net::deserialize_system(sim.node_blob(id)).has_value())
            return false;
        }
        return true;
      });
  for (size_t i = 0; i < kSeeds; ++i)
    EXPECT_TRUE(ok[i]) << "seed " << i + 1;
}

// --- Adversarial: verified install or clean abort, nothing in between ------

TEST(NetAdversarial, TotalLossAbortsCleanlyWithoutInstall) {
  const auto blob = linked_blob(fig7_workload(8, 1));
  net::NetConfig cfg;
  cfg.nodes = 2;
  cfg.max_cycles = 40'000'000ULL;  // bounded: this cannot converge
  net::NetSim sim(cfg, blob);
  sim.set_fault_policy([](size_t, size_t, uint64_t, std::span<const uint8_t>) {
    return net::FaultAction::Drop;
  });
  const auto r = sim.disseminate();
  EXPECT_FALSE(r.all_acked);
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(r.complete_nodes(), 0u);
  for (size_t id = 1; id <= cfg.nodes; ++id) {
    EXPECT_FALSE(sim.node_complete(id));
    EXPECT_TRUE(sim.node_blob(id).empty());  // partials are unobservable
  }
}

TEST(NetAdversarial, TotalCorruptionAbortsCleanlyWithoutInstall) {
  const auto blob = linked_blob(fig7_workload(8, 1));
  net::NetConfig cfg;
  cfg.nodes = 2;
  cfg.max_cycles = 40'000'000ULL;
  net::NetSim sim(cfg, blob);
  sim.set_fault_policy([](size_t, size_t, uint64_t, std::span<const uint8_t>) {
    return net::FaultAction::Corrupt;
  });
  const auto r = sim.disseminate();
  EXPECT_FALSE(r.all_acked);
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(r.complete_nodes(), 0u);
  uint64_t crc_drops = 0;
  for (const auto& n : r.nodes) crc_drops += n.crc_drops;
  EXPECT_GT(crc_drops, 0u);  // every corruption was detected, none delivered
  for (size_t id = 1; id <= cfg.nodes; ++id)
    EXPECT_TRUE(sim.node_blob(id).empty());
}

TEST(NetAdversarial, AbortedNodeNeverRunsAKernel) {
  sim::NetworkRunSpec spec;
  spec.net.nodes = 2;
  spec.net.max_cycles = 40'000'000ULL;
  spec.fault_policy = [](size_t, size_t, uint64_t,
                         std::span<const uint8_t>) {
    return net::FaultAction::Drop;
  };
  const auto nr = sim::run_network(fig7_workload(8, 1), spec);
  EXPECT_TRUE(nr.dissemination.aborted);
  EXPECT_FALSE(nr.all_installed());
  for (const auto& node : nr.nodes) {
    EXPECT_FALSE(node.installed);
    EXPECT_EQ(node.run.tasks.size(), 0u);  // no kernel was ever constructed
  }
}

}  // namespace
}  // namespace sensmart
