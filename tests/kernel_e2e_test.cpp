// End-to-end tests: assemble -> rewrite -> link -> run under the SenSmart
// kernel, checking multitasking semantics and memory isolation.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "kernel/kernel.hpp"
#include "rewriter/linker.hpp"

namespace sensmart {
namespace {

using assembler::Assembler;
using assembler::Image;

// A program that sums 1..n in a loop (backward branch), stores the result
// into a heap variable, reads it back, emits it on the host port and exits.
Image sum_program(uint8_t n, uint8_t exit_code) {
  Assembler a("sum");
  const uint16_t result = a.var("result", 2);
  a.ldi(16, 0);       // acc low
  a.ldi(17, 0);       // acc high
  a.ldi(18, n);       // counter
  a.label("loop");
  a.add(16, 18);
  a.ldi(19, 0);
  a.adc(17, 19);
  a.dec(18);
  a.brne("loop");     // backward branch -> software trap trampoline
  a.sts(result, 16);  // heap store (direct)
  a.sts(static_cast<uint16_t>(result + 1), 17);
  a.lds(20, result);  // heap load
  a.sts(emu::kHostOut, 20);
  a.lds(20, static_cast<uint16_t>(result + 1));
  a.sts(emu::kHostOut, 20);
  a.halt(exit_code);
  a.label("end");
  a.rjmp("end");
  return a.finish();
}

TEST(KernelE2E, SingleTaskMatchesNativeResult) {
  // Native run.
  Image img = sum_program(20, 7);
  emu::Machine native;
  native.load_flash(img.code);
  native.reset(img.entry);
  ASSERT_EQ(native.run(1'000'000), emu::StopReason::Halted);
  const auto expected = native.dev().host_out();
  ASSERT_EQ(expected.size(), 2u);
  EXPECT_EQ(expected[0], 210);  // 20*21/2
  EXPECT_EQ(expected[1], 0);

  // Kernel run.
  rw::Linker linker;
  linker.add(img);
  rw::LinkedSystem sys = linker.link();
  emu::Machine m;
  kern::Kernel k(m, sys);
  ASSERT_TRUE(k.admit(0).has_value());
  ASSERT_TRUE(k.start());
  ASSERT_EQ(k.run(10'000'000), emu::StopReason::Halted);
  ASSERT_EQ(k.tasks().size(), 1u);
  EXPECT_EQ(k.tasks()[0].state, kern::TaskState::Done);
  EXPECT_EQ(k.tasks()[0].exit_code, 7);
  EXPECT_EQ(k.tasks()[0].host_out, expected);
  EXPECT_TRUE(k.check_invariants().empty()) << k.check_invariants();
}

TEST(KernelE2E, TwoConcurrentTasksAreIsolated) {
  Image a = sum_program(10, 1);
  Image b = sum_program(200, 2);
  rw::Linker linker;
  linker.add(a);
  linker.add(b);
  rw::LinkedSystem sys = linker.link();

  emu::Machine m;
  kern::Kernel k(m, sys);
  ASSERT_EQ(k.admit_all(), 2u);
  ASSERT_TRUE(k.start());
  ASSERT_EQ(k.run(50'000'000), emu::StopReason::Halted);

  // 10*11/2 = 55; 200*201/2 = 20100 = 0x4E84.
  ASSERT_EQ(k.tasks()[0].host_out.size(), 2u);
  EXPECT_EQ(k.tasks()[0].host_out[0], 55);
  EXPECT_EQ(k.tasks()[0].host_out[1], 0);
  ASSERT_EQ(k.tasks()[1].host_out.size(), 2u);
  EXPECT_EQ(k.tasks()[1].host_out[0], 0x84);
  EXPECT_EQ(k.tasks()[1].host_out[1], 0x4E);
  EXPECT_EQ(k.tasks()[0].exit_code, 1);
  EXPECT_EQ(k.tasks()[1].exit_code, 2);
  EXPECT_TRUE(k.check_invariants().empty()) << k.check_invariants();
}

TEST(KernelE2E, WildPointerIsContainedToOffendingTask) {
  // Task A dereferences a wild pointer into another task's region; task B
  // must finish untouched.
  Assembler bad("bad");
  bad.var("x", 2);
  bad.ldi16(26, 0x0900);  // X = logical address far outside its region
  bad.ldi(16, 0xAA);
  bad.st_x(16);           // must be intercepted and treated as invalid
  bad.halt(0);            // never reached
  Image bimg = bad.finish();

  Image good = sum_program(10, 3);

  rw::Linker linker;
  linker.add(bimg);
  linker.add(good);
  rw::LinkedSystem sys = linker.link();

  emu::Machine m;
  kern::Kernel k(m, sys);
  ASSERT_EQ(k.admit_all(), 2u);
  ASSERT_TRUE(k.start());
  ASSERT_EQ(k.run(50'000'000), emu::StopReason::Halted);

  EXPECT_EQ(k.tasks()[0].state, kern::TaskState::Killed);
  EXPECT_EQ(k.tasks()[0].kill_reason, kern::KillReason::InvalidAccess);
  EXPECT_EQ(k.tasks()[1].state, kern::TaskState::Done);
  ASSERT_EQ(k.tasks()[1].host_out.size(), 2u);
  EXPECT_EQ(k.tasks()[1].host_out[0], 55);
}

TEST(KernelE2E, PreemptionWorksWithInterruptsDisabled) {
  // Task A spins forever with CLI; task B must still finish (interrupt-free
  // preemption via software traps), after which A keeps running until the
  // cycle budget expires.
  Assembler spin("spin");
  spin.cli();
  spin.label("forever");
  spin.rjmp("forever");
  Image simg = spin.finish();

  Image good = sum_program(10, 9);

  rw::Linker linker;
  linker.add(simg);
  linker.add(good);
  rw::LinkedSystem sys = linker.link();

  emu::Machine m;
  kern::Kernel k(m, sys);
  ASSERT_EQ(k.admit_all(), 2u);
  ASSERT_TRUE(k.start());
  EXPECT_EQ(k.run(20'000'000), emu::StopReason::CycleLimit);

  EXPECT_EQ(k.tasks()[1].state, kern::TaskState::Done);
  EXPECT_EQ(k.tasks()[1].exit_code, 9);
  EXPECT_GE(k.stats().context_switches, 2u);
  EXPECT_GT(k.stats().traps, 100u);
}

}  // namespace
}  // namespace sensmart
