// Health-gated staged rollout (DESIGN.md §12): the versioned A/B ImageStore
// codec and trial state machine, wave-by-wave fleet upgrade behind the
// health gate, automatic rollback (gate trips, interrupted trials, fleet
// halt past the failure budget), reboot-during-probation/rollback
// regressions, and shard-count invariance of full rollout runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/treesearch.hpp"
#include "emu/machine.hpp"
#include "net/auth.hpp"
#include "net/image_codec.hpp"
#include "net/netsim.hpp"
#include "rewriter/linker.hpp"
#include "sim/harness.hpp"

namespace sensmart {
namespace {

using assembler::Image;
using emu::BootOutcome;
using emu::ImageStore;
using emu::SlotState;

std::vector<Image> workload(uint16_t tree_nodes, uint16_t seed) {
  apps::TreeSearchParams p;
  p.nodes_per_tree = tree_nodes;
  p.trees = 1;
  p.searches = 32;
  p.seed = seed;
  std::vector<Image> images;
  images.push_back(apps::data_feed_program(6, 64));
  images.push_back(apps::tree_search_program(p));
  return images;
}

std::vector<uint8_t> linked_blob(const std::vector<Image>& images) {
  rw::Linker linker(rw::RewriteOptions{}, true);
  for (const auto& img : images) linker.add(img);
  return net::serialize_system(linker.link());
}

// The image the fleet starts on (slot A) and the one being rolled out.
std::vector<uint8_t> old_blob() { return linked_blob(workload(6, 0x0101)); }
std::vector<uint8_t> new_blob() { return linked_blob(workload(8, 0x3131)); }

net::NetConfig rollout_config(size_t nodes, uint32_t wave_size,
                              uint32_t budget) {
  net::NetConfig cfg;
  cfg.nodes = nodes;
  cfg.chaos_seed = 0x5EED;
  cfg.max_cycles = 8'000'000'000ULL;
  cfg.rollout.enabled = true;
  cfg.rollout.wave_size = wave_size;
  cfg.rollout.failure_budget = budget;
  return cfg;
}

// --- ImageStoreFormat: versioned on-flash codec -----------------------------

ImageStore populated_store() {
  ImageStore st;
  st.has_summary = true;
  st.image_version = 7;
  st.chunk_payload = 32;
  st.total_chunks = 3;
  st.chunks_have = 2;
  st.have = {1, 0, 1};
  st.image = std::vector<uint8_t>(70, 0xAB);
  st.image_bytes = 70;
  st.image_crc = 0xDEADBEEF;
  st.has_mac = true;
  st.image_mac = 0x0123456789ABCDEFULL;
  st.writes = 42;
  st.slots[0] = {SlotState::Confirmed, 6, 0x1111, {1, 2, 3}};
  st.slots[1] = {SlotState::Staged, 7, 0x2222, {4, 5, 6, 7}};
  st.active_slot = 1;
  st.trial_active = true;
  st.trial_boot_pending = true;
  st.rollback_report_pending = false;
  return st;
}

void expect_stores_equal(const ImageStore& a, const ImageStore& b) {
  EXPECT_EQ(a.has_summary, b.has_summary);
  EXPECT_EQ(a.image_version, b.image_version);
  EXPECT_EQ(a.total_chunks, b.total_chunks);
  EXPECT_EQ(a.chunk_payload, b.chunk_payload);
  EXPECT_EQ(a.image_bytes, b.image_bytes);
  EXPECT_EQ(a.image_crc, b.image_crc);
  EXPECT_EQ(a.has_mac, b.has_mac);
  EXPECT_EQ(a.image_mac, b.image_mac);
  EXPECT_EQ(a.verified, b.verified);
  EXPECT_EQ(a.chunks_have, b.chunks_have);
  EXPECT_EQ(a.have, b.have);
  EXPECT_EQ(a.image, b.image);
  EXPECT_EQ(a.writes, b.writes);
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(a.slots[s].state, b.slots[s].state) << "slot " << s;
    EXPECT_EQ(a.slots[s].version, b.slots[s].version) << "slot " << s;
    EXPECT_EQ(a.slots[s].crc, b.slots[s].crc) << "slot " << s;
    EXPECT_EQ(a.slots[s].image, b.slots[s].image) << "slot " << s;
  }
  EXPECT_EQ(a.active_slot, b.active_slot);
  EXPECT_EQ(a.trial_active, b.trial_active);
  EXPECT_EQ(a.trial_boot_pending, b.trial_boot_pending);
  EXPECT_EQ(a.rollback_report_pending, b.rollback_report_pending);
}

TEST(ImageStoreFormat, CodecRoundTrips) {
  const ImageStore st = populated_store();
  const auto page = serialize_image_store(st);
  EXPECT_EQ(page[0], emu::kImageStoreFormat);
  ImageStore back;
  ASSERT_TRUE(deserialize_image_store(page, back));
  expect_stores_equal(st, back);
}

TEST(ImageStoreFormat, StrictDecodeRejectsCorruption) {
  const auto good = serialize_image_store(populated_store());
  const ImageStore untouched;  // decode failure must leave `out` alone

  // Foreign format byte (e.g. the pre-A/B layout's first byte).
  {
    auto page = good;
    page[0] = 1;
    ImageStore out;
    EXPECT_FALSE(deserialize_image_store(page, out));
    expect_stores_equal(out, untouched);
  }
  // Truncation at every boundary class: header, mid-payload, CRC.
  for (size_t keep : {size_t(0), size_t(3), size_t(10), good.size() - 5}) {
    ImageStore out;
    EXPECT_FALSE(deserialize_image_store(
        std::span<const uint8_t>(good.data(), keep), out))
        << "kept " << keep;
  }
  // Flipped byte anywhere breaks the trailing page CRC.
  {
    auto page = good;
    page[page.size() / 2] ^= 0x40;
    ImageStore out;
    EXPECT_FALSE(deserialize_image_store(page, out));
  }
  // Trailing garbage after a valid body.
  {
    auto page = good;
    page.insert(page.end() - 4, 0x00);  // keeps length, breaks CRC
    ImageStore out;
    EXPECT_FALSE(deserialize_image_store(page, out));
  }
}

TEST(ImageStoreFormat, StrictDecodeRejectsInconsistentFields) {
  // Re-serialize stores with violated cross-field invariants and patch the
  // trailing CRC so only the semantic check can reject them.
  auto reseal = [](std::vector<uint8_t> page) {
    const auto body = std::span<const uint8_t>(page).first(page.size() - 4);
    // Recompute with the same polynomial the codec uses (== net::crc32).
    const uint32_t crc = net::crc32(body);
    for (int i = 0; i < 4; ++i)
      page[body.size() + size_t(i)] = static_cast<uint8_t>(crc >> (8 * i));
    return page;
  };

  {  // bitmap popcount disagrees with chunks_have
    ImageStore st = populated_store();
    st.have = {1, 1, 1};
    auto page = reseal(serialize_image_store(st));
    ImageStore out;
    EXPECT_FALSE(deserialize_image_store(page, out));
  }
  {  // trial flags pointing at a non-Staged slot
    ImageStore st = populated_store();
    st.slots[1].state = SlotState::Confirmed;
    auto page = reseal(serialize_image_store(st));
    ImageStore out;
    EXPECT_FALSE(deserialize_image_store(page, out));
  }
  {  // Empty slot smuggling bytes
    ImageStore st = populated_store();
    st.trial_active = st.trial_boot_pending = false;
    st.active_slot = 0;
    st.slots[1].state = SlotState::Empty;  // still holds 4 bytes
    auto page = reseal(serialize_image_store(st));
    ImageStore out;
    EXPECT_FALSE(deserialize_image_store(page, out));
  }
}

TEST(ImageStoreFormat, DeviceRejectsAndReformatsCorruptPage) {
  emu::Machine m;
  auto& dev = m.dev();
  dev.image_store() = populated_store();

  // A valid page loads and round-trips through the device.
  const auto good = serialize_image_store(populated_store());
  ASSERT_TRUE(dev.load_flash_page(good));
  EXPECT_FALSE(dev.take_store_reformatted());
  EXPECT_EQ(dev.image_store().slots[1].crc, 0x2222u);

  // A corrupt page is rejected wholesale: factory-empty store, sticky
  // reformat flag reported exactly once.
  auto bad = good;
  bad[1] ^= 0x80;  // unknown flag bit + broken page CRC
  EXPECT_FALSE(dev.load_flash_page(bad));
  EXPECT_TRUE(dev.take_store_reformatted());
  EXPECT_FALSE(dev.take_store_reformatted());  // consumed
  EXPECT_FALSE(dev.image_store().has_summary);
  EXPECT_EQ(dev.image_store().slots[0].state, SlotState::Empty);
  EXPECT_EQ(dev.image_store().slots[1].state, SlotState::Empty);
}

// --- ImageStoreFormat: trial state machine ----------------------------------

// A store that passed strict decode: factory image in slot 0 plus a fully
// received, verified transfer area (consistent geometry — the codec's
// cross-field checks must accept it after every reboot round-trip).
ImageStore verified_transfer_store() {
  ImageStore st;
  st.slots[0] = {SlotState::Confirmed, 1, 0xAAAA, {9}};
  st.active_slot = 0;
  st.has_summary = true;
  st.chunk_payload = 16;
  st.total_chunks = 1;
  st.chunks_have = 1;
  st.have = {1};
  st.image = std::vector<uint8_t>(16, 0x5A);
  st.image_bytes = 16;
  st.image_crc = 0xBBBB;
  st.verified = true;
  return st;
}

TEST(ImageStoreFormat, TrialLifecycleConfirm) {
  ImageStore st = verified_transfer_store();

  const int slot = st.stage_inactive(2);
  ASSERT_EQ(slot, 1);
  EXPECT_EQ(st.slots[1].state, SlotState::Staged);
  EXPECT_EQ(st.slots[1].crc, 0xBBBBu);
  EXPECT_EQ(st.slots[1].image, st.image);

  st.activate_trial(1);
  EXPECT_TRUE(st.trial_active);
  EXPECT_EQ(st.on_power_up(), BootOutcome::TrialBoot);  // the sanctioned boot
  st.confirm_trial();
  EXPECT_FALSE(st.trial_active);
  EXPECT_EQ(st.slots[1].state, SlotState::Confirmed);
  EXPECT_EQ(st.on_power_up(), BootOutcome::Normal);
}

TEST(ImageStoreFormat, UnconfirmedRebootRollsBack) {
  ImageStore st = verified_transfer_store();
  st.activate_trial(static_cast<uint8_t>(st.stage_inactive(2)));

  EXPECT_EQ(st.on_power_up(), BootOutcome::TrialBoot);
  // Second power-up before confirm: automatic rollback to slot 0, with the
  // failure remembered for the base.
  EXPECT_EQ(st.on_power_up(), BootOutcome::TrialRollback);
  EXPECT_EQ(st.active_slot, 0);
  EXPECT_EQ(st.slots[1].state, SlotState::Rejected);
  EXPECT_FALSE(st.trial_active);
  EXPECT_TRUE(st.rollback_report_pending);
  EXPECT_EQ(st.on_power_up(), BootOutcome::Normal);  // stable afterwards
}

TEST(ImageStoreFormat, RebootDuringRollbackKeepsOldSlot) {
  // Regression: a power cycle landing between rollback_trial() and the
  // failure report must come back on the old confirmed slot — never on the
  // half-rejected trial — and must keep the pending report.
  emu::Machine m;
  auto& dev = m.dev();
  ImageStore& st = dev.image_store();
  st = verified_transfer_store();
  st.activate_trial(static_cast<uint8_t>(st.stage_inactive(2)));
  dev.reboot();  // sanctioned trial boot
  EXPECT_EQ(dev.last_boot(), BootOutcome::TrialBoot);

  st.rollback_trial();
  st.rollback_report_pending = true;
  for (int cycle = 0; cycle < 3; ++cycle) {
    dev.reboot();  // codec round-trip + bootloader each time
    EXPECT_EQ(dev.last_boot(), BootOutcome::Normal) << "cycle " << cycle;
    EXPECT_EQ(st.active_slot, 0) << "cycle " << cycle;
    EXPECT_EQ(st.slots[0].state, SlotState::Confirmed) << "cycle " << cycle;
    EXPECT_EQ(st.slots[1].state, SlotState::Rejected) << "cycle " << cycle;
    EXPECT_FALSE(st.trial_active) << "cycle " << cycle;
    EXPECT_TRUE(st.rollback_report_pending) << "cycle " << cycle;
  }
}

TEST(ImageStoreFormat, RebootDuringProbationNeverBootsHalfConfirmedTrial) {
  // Regression: the persisted trial flags survive DeviceHub::reboot()'s
  // codec round-trip, so an unconfirmed trial gets exactly one boot no
  // matter how the flags hit flash.
  emu::Machine m;
  auto& dev = m.dev();
  ImageStore& st = dev.image_store();
  st = verified_transfer_store();
  st.activate_trial(static_cast<uint8_t>(st.stage_inactive(2)));

  dev.reboot();
  EXPECT_EQ(dev.last_boot(), BootOutcome::TrialBoot);
  EXPECT_FALSE(dev.take_store_reformatted());
  EXPECT_EQ(st.active_slot, 1);

  dev.reboot();  // crash mid-probation
  EXPECT_EQ(dev.last_boot(), BootOutcome::TrialRollback);
  EXPECT_EQ(st.active_slot, 0);
  EXPECT_EQ(st.slots[1].state, SlotState::Rejected);
  EXPECT_TRUE(st.rollback_report_pending);
}

// --- NetRollout: wave upgrades, gate, rollback ------------------------------

void expect_on_image(const net::NetSim& sim, size_t id,
                     const std::vector<uint8_t>& blob, SlotState state) {
  const ImageStore& st = sim.node_store(id);
  const emu::ImageSlot& act = st.slots[st.active_slot];
  EXPECT_EQ(act.state, state) << "node " << id;
  EXPECT_EQ(act.crc, net::crc32(blob)) << "node " << id;
  EXPECT_EQ(act.image, blob) << "node " << id;  // byte-exact, not just CRC
  EXPECT_FALSE(st.trial_active) << "node " << id;
  EXPECT_FALSE(st.trial_boot_pending) << "node " << id;
}

TEST(NetRollout, HappyPathStarUpgradesInWaves) {
  const auto ob = old_blob();
  const auto nb = new_blob();
  net::NetSim sim(rollout_config(4, 2, 1), nb);
  sim.set_initial_image(ob, 0);
  const auto r = sim.rollout();

  ASSERT_TRUE(r.dissem.all_acked);
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.halted);
  EXPECT_FALSE(r.budget_exhausted);
  EXPECT_EQ(r.waves, 2u);  // 4 members / wave_size 2
  EXPECT_EQ(r.waves_promoted, 2u);
  EXPECT_EQ(r.confirmed, 4u);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.rolled_back, 0u);
  EXPECT_EQ(r.health_rejected, 0u);
  for (size_t id = 1; id <= 4; ++id) {
    const net::NodeRolloutStats& ns = r.nodes[id];
    EXPECT_TRUE(ns.member) << id;
    EXPECT_TRUE(ns.activated) << id;
    EXPECT_TRUE(ns.confirmed) << id;
    EXPECT_FALSE(ns.trial_left_active) << id;
    expect_on_image(sim, id, nb, SlotState::Confirmed);
    // The previous image stays in the other slot as the fallback.
    const ImageStore& st = sim.node_store(id);
    EXPECT_EQ(st.slots[st.active_slot ^ 1].crc, net::crc32(ob)) << id;
  }
  // Waves show up in order in the event trace, interleaved with activations
  // and confirmations.
  size_t waves = 0, activated = 0, confirmed = 0, done = 0;
  for (const auto& e : sim.trace()) {
    waves += e.kind == net::NetEventKind::RolloutWave;
    activated += e.kind == net::NetEventKind::TrialActivated;
    confirmed += e.kind == net::NetEventKind::NodeConfirmed;
    done += e.kind == net::NetEventKind::RolloutDone;
  }
  EXPECT_EQ(waves, 2u);
  EXPECT_EQ(activated, 4u);
  EXPECT_EQ(confirmed, 4u);
  EXPECT_EQ(done, 1u);
}

TEST(NetRollout, RunawayLemonRollsBackWithinBudget) {
  const auto ob = old_blob();
  const auto nb = new_blob();
  net::NetSim sim(rollout_config(4, 2, 1), nb);
  sim.set_initial_image(ob, 0);
  net::TrialBehavior lemon;
  lemon.kind = net::TrialBehavior::Kind::Runaway;
  lemon.quarantines = 2;
  sim.set_trial_behavior(3, lemon);
  const auto r = sim.rollout();

  // One failure == the budget: the fleet keeps going, only node 3 ends on
  // the old image with the lemon kept as Rejected evidence.
  EXPECT_FALSE(r.halted);
  EXPECT_FALSE(r.budget_exhausted);
  EXPECT_FALSE(r.complete);  // not everyone confirmed
  EXPECT_EQ(r.failures, 1u);
  EXPECT_EQ(r.confirmed, 3u);
  for (size_t id : {1u, 2u, 4u}) expect_on_image(sim, id, nb, SlotState::Confirmed);
  expect_on_image(sim, 3, ob, SlotState::Confirmed);
  const ImageStore& st3 = sim.node_store(3);
  EXPECT_EQ(st3.slots[st3.active_slot ^ 1].state, SlotState::Rejected);
  EXPECT_EQ(st3.slots[st3.active_slot ^ 1].crc, net::crc32(nb));
  EXPECT_TRUE(r.nodes[3].rolled_back);
  EXPECT_FALSE(r.nodes[3].confirmed);

  // The on-node gate fired: a TrialRolledBack(GateFailed) event exists.
  bool gate_failed = false;
  for (const auto& e : sim.trace())
    if (e.kind == net::NetEventKind::TrialRolledBack &&
        e.b == uint32_t(net::RollbackWhy::GateFailed))
      gate_failed = true;
  EXPECT_TRUE(gate_failed);
}

TEST(NetRollout, RebootDuringProbationReportsAndRollsBack) {
  const auto ob = old_blob();
  const auto nb = new_blob();
  net::NetSim sim(rollout_config(4, 4, 2), nb);
  sim.set_initial_image(ob, 0);
  net::TrialBehavior lemon;
  lemon.kind = net::TrialBehavior::Kind::CrashBoot;
  sim.set_trial_behavior(2, lemon);
  const auto r = sim.rollout();

  // The crash interrupts the one sanctioned trial boot; the bootloader
  // rolls back on comeback and the node reports the interrupted trial.
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.failures, 1u);
  expect_on_image(sim, 2, ob, SlotState::Confirmed);
  const ImageStore& st2 = sim.node_store(2);
  EXPECT_EQ(st2.slots[st2.active_slot ^ 1].state, SlotState::Rejected);
  EXPECT_FALSE(st2.rollback_report_pending);  // report reached the base
  bool interrupted = false;
  for (const auto& e : sim.trace())
    if (e.kind == net::NetEventKind::TrialRolledBack &&
        e.b == uint32_t(net::RollbackWhy::BootInterrupted))
      interrupted = true;
  EXPECT_TRUE(interrupted);
  for (size_t id : {1u, 3u, 4u}) expect_on_image(sim, id, nb, SlotState::Confirmed);
}

TEST(NetRollout, BudgetExceededHaltsAndRollsFleetBack) {
  const auto ob = old_blob();
  const auto nb = new_blob();
  net::NetSim sim(rollout_config(6, 2, 1), nb);
  sim.set_initial_image(ob, 0);
  net::TrialBehavior runaway;
  runaway.kind = net::TrialBehavior::Kind::Runaway;
  runaway.watchdog_fires = 1;
  sim.set_trial_behavior(3, runaway);
  net::TrialBehavior crash;
  crash.kind = net::TrialBehavior::Kind::CrashBoot;
  sim.set_trial_behavior(5, crash);
  const auto r = sim.rollout();

  // Two failures over a budget of one: the rollout halts and every node —
  // including the already-promoted first wave — ends byte-exact on the old
  // image, with no trial left active anywhere.
  EXPECT_TRUE(r.halted);
  EXPECT_FALSE(r.complete);
  EXPECT_FALSE(r.budget_exhausted);
  EXPECT_EQ(r.failures, 2u);
  for (size_t id = 1; id <= 6; ++id) {
    expect_on_image(sim, id, ob, SlotState::Confirmed);
    EXPECT_FALSE(r.nodes[id].trial_left_active) << id;
  }
  bool halted_event = false, done_event = false;
  for (const auto& e : sim.trace()) {
    halted_event |= e.kind == net::NetEventKind::RolloutHalted;
    done_event |= e.kind == net::NetEventKind::RolloutDone;
  }
  EXPECT_TRUE(halted_event);
  EXPECT_TRUE(done_event);
}

TEST(NetRollout, WedgedTrialGetsGivenUpThenRolledBack) {
  const auto ob = old_blob();
  const auto nb = new_blob();
  net::NetConfig cfg = rollout_config(4, 2, 2);
  cfg.rollout.give_up_tries = 4;  // bound the wait for the dark node
  net::NetSim sim(cfg, nb);
  sim.set_initial_image(ob, 0);
  net::TrialBehavior wedge;
  wedge.kind = net::TrialBehavior::Kind::Wedge;
  wedge.wedge_bytes = 60000;  // dark well past the give-up horizon
  sim.set_trial_behavior(1, wedge);
  const auto r = sim.rollout();

  // The wedged node never answers; the base gives up on it (one failure)
  // and its own bootloader rolls the trial back when it finally comes up.
  EXPECT_EQ(r.gave_up, 1u);
  EXPECT_GE(r.failures, 1u);
  EXPECT_TRUE(r.nodes[1].given_up);
  EXPECT_FALSE(r.nodes[1].trial_left_active);
  const ImageStore& st1 = sim.node_store(1);
  EXPECT_FALSE(st1.trial_active);
  EXPECT_EQ(st1.slots[st1.active_slot].crc, net::crc32(ob));
}

TEST(NetRollout, LossyStarStillConverges) {
  const auto ob = old_blob();
  const auto nb = new_blob();
  net::NetConfig cfg = rollout_config(4, 2, 1);
  cfg.link.drop_pct = 10;
  net::NetSim sim(cfg, nb);
  sim.set_initial_image(ob, 0);
  const auto r = sim.rollout();

  ASSERT_TRUE(r.dissem.all_acked);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.confirmed, 4u);
  for (size_t id = 1; id <= 4; ++id)
    expect_on_image(sim, id, nb, SlotState::Confirmed);
}

TEST(NetRollout, AuthenticatedRunRejectsNothingHonest) {
  const auto ob = old_blob();
  const auto nb = new_blob();
  net::NetConfig cfg = rollout_config(4, 2, 1);
  cfg.proto.auth = true;
  net::NetSim sim(cfg, nb);
  sim.set_initial_image(ob, 0);
  const auto r = sim.rollout();
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.health_rejected, 0u);
}

TEST(NetRollout, ControlAndHealthTagsBindEveryField) {
  const net::AuthKey k = net::kDefaultAuthKey;
  const uint64_t c = net::control_tag(k, 1, 2, 3, 4, 5);
  EXPECT_NE(c, net::control_tag(k, 9, 2, 3, 4, 5));  // version
  EXPECT_NE(c, net::control_tag(k, 1, 9, 3, 4, 5));  // command
  EXPECT_NE(c, net::control_tag(k, 1, 2, 9, 4, 5));  // target
  EXPECT_NE(c, net::control_tag(k, 1, 2, 3, 9, 5));  // ctl_seq (anti-replay)
  EXPECT_NE(c, net::control_tag(k, 1, 2, 3, 4, 9));  // image crc
  EXPECT_NE(c, net::control_tag(net::AuthKey{1, 2}, 1, 2, 3, 4, 5));

  net::HealthReport hr;
  hr.flags = net::kHealthTrialClean;
  hr.quarantines = 0;
  const auto core = net::health_core(hr);
  const uint64_t h = net::health_tag(k, 1, 7, core);
  EXPECT_NE(h, net::health_tag(k, 1, 8, core));  // origin
  hr.quarantines = 1;  // a forged "clean" counter changes the tag
  EXPECT_NE(h, net::health_tag(k, 1, 7, net::health_core(hr)));
}

TEST(NetRollout, MeshGridConverges) {
  const auto ob = old_blob();
  const auto nb = new_blob();
  net::NetConfig cfg = rollout_config(8, 4, 1);
  cfg.topo.kind = net::TopologyKind::Grid;
  cfg.link.drop_pct = 5;
  cfg.proto.node_give_up_probes = 0;
  const auto run = [&](net::NetSim& sim) {
    sim.set_initial_image(ob, 0);
    return sim.rollout();
  };
  net::NetSim sim(cfg, nb);
  const auto r = run(sim);

  ASSERT_TRUE(r.dissem.all_acked);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.confirmed, 8u);
  for (size_t id = 1; id <= 8; ++id)
    expect_on_image(sim, id, nb, SlotState::Confirmed);
  // Multi-hop machinery was actually exercised: some control or health
  // frames were relayed.
  size_t relayed = 0;
  for (const auto& e : sim.trace())
    relayed += e.kind == net::NetEventKind::ControlRelayed ||
               e.kind == net::NetEventKind::HealthRelayed;
  EXPECT_GT(relayed, 0u);

  // Deterministic replay: an identical sim reproduces the exact trace.
  net::NetSim sim2(cfg, nb);
  const auto r2 = run(sim2);
  EXPECT_EQ(r.trace_digest, r2.trace_digest);
  EXPECT_EQ(r.trace_events, r2.trace_events);
  EXPECT_EQ(r.cycles, r2.cycles);
}

TEST(NetRollout, MeshLemonRollsBackAcrossHops) {
  const auto ob = old_blob();
  const auto nb = new_blob();
  net::NetConfig cfg = rollout_config(8, 4, 2);
  cfg.topo.kind = net::TopologyKind::Grid;
  cfg.proto.node_give_up_probes = 0;
  cfg.proto.auth = true;
  net::NetSim sim(cfg, nb);
  sim.set_initial_image(ob, 0);
  net::TrialBehavior lemon;
  lemon.kind = net::TrialBehavior::Kind::Runaway;
  lemon.quarantines = 1;
  sim.set_trial_behavior(7, lemon);  // far corner: reports need relaying
  const auto r = sim.rollout();

  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.failures, 1u);
  EXPECT_EQ(r.confirmed, 7u);
  EXPECT_EQ(r.health_rejected, 0u);
  expect_on_image(sim, 7, ob, SlotState::Confirmed);
  for (size_t id : {1u, 2u, 3u, 4u, 5u, 6u, 8u})
    expect_on_image(sim, id, nb, SlotState::Confirmed);
}

// --- Harness: behavior measured by running the image ------------------------

TEST(NetRollout, HarnessProbesHealthyImageAndUpgrades) {
  sim::RolloutRunSpec spec;
  spec.old_images = workload(6, 0x0101);
  spec.net = rollout_config(4, 2, 1);
  const sim::RolloutRun run = sim::run_rollout(workload(8, 0x3131), spec);

  // The new image genuinely ran on a supervised scratch kernel and came
  // out clean, so the whole fleet trials it as Healthy and confirms.
  EXPECT_EQ(run.probed.kind, net::TrialBehavior::Kind::Healthy);
  EXPECT_EQ(run.probed.quarantines, 0u);
  EXPECT_EQ(run.probed.watchdog_fires, 0u);
  EXPECT_TRUE(run.result.complete);
  EXPECT_EQ(run.result.confirmed, 4u);
  EXPECT_EQ(run.old_blob, old_blob());
  EXPECT_EQ(run.new_blob, new_blob());
}

TEST(NetRollout, HarnessLemonOverridesProbedBehavior) {
  sim::RolloutRunSpec spec;
  spec.old_images = workload(6, 0x0101);
  spec.net = rollout_config(4, 2, 1);
  net::TrialBehavior lemon;
  lemon.kind = net::TrialBehavior::Kind::Runaway;
  lemon.watchdog_fires = 3;
  spec.lemons = {{2, lemon}};
  const sim::RolloutRun run = sim::run_rollout(workload(8, 0x3131), spec);

  EXPECT_FALSE(run.result.halted);
  EXPECT_EQ(run.result.failures, 1u);
  EXPECT_TRUE(run.result.nodes[2].rolled_back);
  EXPECT_EQ(run.result.nodes[2].final_crc, net::crc32(run.old_blob));
}

// --- NetShard: rollout runs are shard-count invariant -----------------------

struct RolloutFingerprint {
  uint64_t digest = 0;
  size_t events = 0;
  uint64_t cycles = 0;
  bool complete = false;
  bool halted = false;
  uint32_t waves = 0;
  uint32_t confirmed = 0;
  uint32_t failures = 0;
  uint32_t rolled_back = 0;
  std::vector<uint8_t> final_slots;
  std::vector<uint32_t> final_crcs;
  std::vector<std::vector<uint8_t>> store_pages;  // full persisted stores

  bool operator==(const RolloutFingerprint&) const = default;
};

RolloutFingerprint rollout_fingerprint(net::NetConfig cfg,
                                       const std::vector<uint8_t>& ob,
                                       const std::vector<uint8_t>& nb,
                                       unsigned shards) {
  cfg.shards = shards;
  net::NetSim sim(cfg, nb);
  sim.set_initial_image(ob, 0);
  net::TrialBehavior lemon;
  lemon.kind = net::TrialBehavior::Kind::CrashBoot;
  sim.set_trial_behavior(6, lemon);
  const auto r = sim.rollout();
  RolloutFingerprint fp;
  fp.digest = r.trace_digest;
  fp.events = r.trace_events;
  fp.cycles = r.cycles;
  fp.complete = r.complete;
  fp.halted = r.halted;
  fp.waves = r.waves;
  fp.confirmed = r.confirmed;
  fp.failures = r.failures;
  fp.rolled_back = r.rolled_back;
  for (size_t id = 1; id <= cfg.nodes; ++id) {
    fp.final_slots.push_back(r.nodes[id].final_slot);
    fp.final_crcs.push_back(r.nodes[id].final_crc);
    // Byte-identical persistent state, not just summary stats: the whole
    // serialized store page must agree across shard counts.
    fp.store_pages.push_back(serialize_image_store(sim.node_store(id)));
  }
  return fp;
}

TEST(NetShard, RolloutGridInvariantAcrossShardCounts) {
  const auto ob = old_blob();
  const auto nb = new_blob();
  net::NetConfig cfg = rollout_config(16, 4, 2);
  cfg.topo.kind = net::TopologyKind::Grid;
  cfg.link.drop_pct = 5;
  cfg.proto.node_give_up_probes = 0;
  cfg.max_cycles = 20'000'000'000ULL;

  const RolloutFingerprint golden = rollout_fingerprint(cfg, ob, nb, 1);
  EXPECT_GT(golden.events, 0u);
  EXPECT_GE(golden.confirmed, 14u);  // the CrashBoot lemon fails, rest confirm
  for (unsigned shards : {2u, 4u, 8u}) {
    const RolloutFingerprint fp = rollout_fingerprint(cfg, ob, nb, shards);
    EXPECT_EQ(fp, golden) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace sensmart
