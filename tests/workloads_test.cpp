// Workload programs: PeriodicTask, tree search (stack-versatility mix) and
// the Maté-style VM.
#include <gtest/gtest.h>

#include "apps/periodic_task.hpp"
#include "apps/treesearch.hpp"
#include "baselines/native_runner.hpp"
#include "sim/harness.hpp"
#include "vm/vm.hpp"

namespace sensmart {
namespace {

TEST(PeriodicTask, NativeCompletesAllActivations) {
  apps::PeriodicTaskParams p;
  p.activations = 20;
  p.instructions = 5000;
  p.period_ticks = 300;  // ~10.4 ms
  const auto img = apps::periodic_task_program(p);
  const auto r = base::run_native(img, 200'000'000);
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  ASSERT_EQ(r.host_out.size(), 2u);
  EXPECT_EQ(r.host_out[0] | (r.host_out[1] << 8), 20);
  // 20 periods of ~10.4 ms: total ~208 ms; mostly idle.
  EXPECT_NEAR(r.seconds(), 0.208, 0.03);
  EXPECT_LT(r.utilization(), 0.30);
}

TEST(PeriodicTask, SenSmartMatchesActivationCount) {
  apps::PeriodicTaskParams p;
  p.activations = 20;
  p.instructions = 5000;
  p.period_ticks = 300;
  const auto img = apps::periodic_task_program(p);
  const auto r = sim::run_system({img});
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  ASSERT_EQ(r.tasks.size(), 1u);
  EXPECT_EQ(r.tasks[0].state, kern::TaskState::Done);
  ASSERT_EQ(r.tasks[0].host_out.size(), 2u);
  EXPECT_EQ(r.tasks[0].host_out[0] | (r.tasks[0].host_out[1] << 8), 20);
  // Still period-bound (the overhead hides in the idle time).
  EXPECT_NEAR(r.seconds(), 0.208, 0.04);
}

TEST(PeriodicTask, OverrunExtendsExecutionTime) {
  // Computation far beyond the period: the program must not wedge, and the
  // execution time must grow past activations*period.
  apps::PeriodicTaskParams p;
  p.activations = 10;
  p.instructions = 60000;  // ~16 ms of work
  p.period_ticks = 150;    // ~5.2 ms period: always overrun
  const auto img = apps::periodic_task_program(p);
  const auto r = base::run_native(img, 400'000'000);
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  EXPECT_GT(r.seconds(), 10 * 150 * 256.0 / emu::kClockHz);
  EXPECT_GT(r.utilization(), 0.9);
}

TEST(TreeSearch, NativeHitsEveryReplayedKey) {
  apps::TreeSearchParams p;
  p.nodes_per_tree = 24;
  p.trees = 2;
  p.searches = 48;  // == total nodes: replayed keys must all hit
  const auto img = apps::tree_search_program(p);
  const auto r = base::run_native(img, 400'000'000);
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  ASSERT_EQ(r.host_out.size(), 2u);
  EXPECT_EQ(r.host_out[0], 48);          // hits
  EXPECT_GE(r.host_out[1], 6);           // max recursion depth
  EXPECT_LE(r.host_out[1], 24);
}

TEST(TreeSearch, SenSmartMatchesNativeOutput) {
  apps::TreeSearchParams p;
  p.nodes_per_tree = 20;
  p.trees = 2;
  p.searches = 40;
  const auto img = apps::tree_search_program(p);
  const auto native = base::run_native(img, 400'000'000);
  ASSERT_EQ(native.stop, emu::StopReason::Halted);

  const auto r = sim::run_system({img});
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  EXPECT_EQ(r.tasks[0].state, kern::TaskState::Done);
  EXPECT_EQ(r.tasks[0].host_out, native.host_out);
}

TEST(TreeSearch, ConcurrentSearchTasksTriggerRelocations) {
  // Several search tasks plus a feeder under a small initial stack: deep
  // recursion must force stack relocations, and everything must finish.
  std::vector<assembler::Image> images;
  images.push_back(apps::data_feed_program(8, 48));
  for (int i = 0; i < 4; ++i) {
    apps::TreeSearchParams p;
    p.nodes_per_tree = 20;
    p.trees = 2;
    p.searches = 40;
    p.seed = static_cast<uint16_t>(0x1111 * (i + 1));
    images.push_back(apps::tree_search_program(p));
  }
  sim::RunSpec spec;
  spec.kernel.initial_stack = 48;  // far below the recursion's ~200 B need
  const auto r = sim::run_system(images, spec);
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  EXPECT_EQ(r.completed(), images.size());
  EXPECT_EQ(r.killed(), 0u);
  EXPECT_GT(r.kernel_stats.relocations, 0u);
  for (const auto& t : r.tasks) {
    if (t.program == 0) continue;  // feeder
    EXPECT_EQ(t.host_out.size(), 2u);
    EXPECT_EQ(t.host_out[0], 40);  // every replayed key hit
  }
}

TEST(MateVm, PeriodicTaskRunsAndIsMuchSlowerThanNative) {
  const auto code = vm::periodic_task_bytecode(300, 20, 5000);
  vm::MateVm v(code);
  const auto r = v.run(10'000'000'000ULL);
  ASSERT_TRUE(r.halted) << r.error;
  ASSERT_EQ(r.out.size(), 1u);

  // Native equivalent for the active-time comparison.
  apps::PeriodicTaskParams p;
  p.activations = 20;
  p.instructions = 5000;
  p.period_ticks = 300;
  const auto native = base::run_native(apps::periodic_task_program(p));
  ASSERT_EQ(native.stop, emu::StopReason::Halted);
  EXPECT_GT(double(r.active_cycles) / double(native.active_cycles), 10.0);
}

TEST(MateVm, UnderflowIsAnError) {
  vm::VmAssembler a;
  a.op(vm::Bc::Add);
  vm::MateVm v(a.finish());
  const auto r = v.run(1000);
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.error, "underflow");
}

}  // namespace
}  // namespace sensmart
