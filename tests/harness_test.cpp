// Experiment harness: table rendering, run_system edge cases, and the
// relaxation fixpoint of the rewriter under cascading promotions.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/benchmarks.hpp"
#include "sim/harness.hpp"

namespace sensmart {
namespace {

using assembler::Assembler;

TEST(TableFmt, AlignsColumnsAndWidensFirst) {
  sim::Table t({"Name", "A", "B"}, 6);
  t.row({"a-really-long-label", "1", "2"});
  t.row({"x", "3.5", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  // Header and both rows are present and columns align.
  EXPECT_NE(s.find("a-really-long-label"), std::string::npos);
  const auto header_a = s.find("A");
  const auto row1_1 = s.find("1");
  EXPECT_NE(header_a, std::string::npos);
  EXPECT_NE(row1_1, std::string::npos);
  EXPECT_EQ(sim::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(sim::Table::num(uint64_t(42)), "42");
}

TEST(RunSystem, ZeroImagesReportsNothingAdmitted) {
  const auto r = sim::run_system({});
  EXPECT_EQ(r.admitted, 0u);
  EXPECT_EQ(r.stop, emu::StopReason::Halted);
  EXPECT_TRUE(r.tasks.empty());
}

TEST(RunSystem, OversizedHeapIsRefusedNotCrashed) {
  Assembler a("huge");
  a.var("blob", 3900);  // cannot fit with the kernel area
  a.halt(0);
  const auto r = sim::run_system({a.finish()});
  EXPECT_EQ(r.admitted, 0u);
}

TEST(RunSystem, CycleBudgetStopsCleanly) {
  Assembler a("spin");
  a.label("x");
  a.rjmp("x");
  sim::RunSpec spec;
  spec.max_cycles = 50'000;
  const auto r = sim::run_system({a.finish()}, spec);
  EXPECT_EQ(r.stop, emu::StopReason::CycleLimit);
  EXPECT_GE(r.cycles, 50'000u);
}

TEST(Relaxation, CascadingPromotionsConverge) {
  // A chain of branches, each barely in range before inflation; patching
  // pushes them out of range one after another, and each promotion can
  // push others out, so the fixpoint iteration must cascade. Verify that
  // the result still executes correctly.
  Assembler a("cascade");
  a.ldi(16, 0);
  for (int hop = 0; hop < 6; ++hop) {
    a.inc(16);
    // Each branch targets the next hop: ~52 words away originally (fits
    // the 7-bit offset), ~104 after the pushes/pops inflate (needs a
    // trampoline).
    a.breq("hop" + std::to_string(hop));  // never taken at run time
    for (int i = 0; i < 25; ++i) a.push(17);  // inflates 1 -> 2 words
    for (int i = 0; i < 25; ++i) a.pop(17);
    a.label("hop" + std::to_string(hop));
  }
  a.label("end");
  a.sts(emu::kHostOut, 16);
  a.halt(0);
  const auto img = a.finish();

  const auto r = sim::run_system({img});
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  ASSERT_EQ(r.tasks[0].host_out.size(), 1u);
  EXPECT_EQ(r.tasks[0].host_out[0], 6);
}

TEST(RunSystem, StatsAreInternallyConsistent) {
  const auto img = apps::build_benchmark("crc");
  const auto r = sim::run_system({img});
  ASSERT_EQ(r.stop, emu::StopReason::Halted);
  EXPECT_EQ(r.cycles, r.active_cycles + r.idle_cycles);
  EXPECT_GT(r.kernel_stats.service_calls, 0u);
  EXPECT_GE(r.kernel_stats.traps, r.kernel_stats.trap_checks);
  EXPECT_EQ(r.seconds(), double(r.cycles) / emu::kClockHz);
}

}  // namespace
}  // namespace sensmart
