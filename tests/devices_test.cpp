// Device models: Timer0, Timer3, ADC, radio and host ports.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"

namespace sensmart::emu {
namespace {

using assembler::Assembler;

TEST(Devices, Timer3IsAFreeRunningGlobalClock) {
  Machine m;
  m.charge(256 * 100 + 7);
  m.dev().sync(m.cycles());
  EXPECT_EQ(m.dev().timer3_ticks(m.cycles()), 100);
  // 16-bit read protocol: reading L latches H.
  uint8_t lo = 0, hi = 0;
  m.mem().set_io_hook(nullptr, nullptr);  // bypass: use read via Machine path
  Machine m2;
  m2.charge_idle(256 * 0x1234);
  lo = m2.mem().read(kTcnt3L);
  m2.charge_idle(256 * 0x100);  // time passes between the two reads
  hi = m2.mem().read(kTcnt3H);
  EXPECT_EQ(lo | (hi << 8), 0x1234);  // latched, not torn
}

TEST(Devices, AdcHasConversionLatency) {
  Assembler a("adc");
  a.ldi(16, 0x80);
  a.sts(kAdcsra, 16);  // start
  a.label("poll");
  a.lds(17, kAdcsra);
  a.andi(17, 0x10);
  a.breq("poll");
  a.lds(18, kAdcL);
  a.lds(19, kAdcH);
  a.sts(kHostOut, 18);
  a.sts(kHostOut, 19);
  a.halt(0);
  const auto img = a.finish();
  Machine m;
  m.load_flash(img.code);
  m.reset(0);
  ASSERT_EQ(m.run(100000), StopReason::Halted);
  EXPECT_GE(m.cycles(), 200u);  // conversion latency
  const auto& out = m.dev().host_out();
  const int sample = out[0] | (out[1] << 8);
  EXPECT_LE(sample, 0x3FF);  // 10-bit
}

TEST(Devices, AdcSamplesAreDeterministicPerSeed) {
  auto run_once = [](uint16_t seed) {
    Assembler a("adc");
    a.ldi(16, 0x80);
    a.sts(kAdcsra, 16);
    a.label("poll");
    a.lds(17, kAdcsra);
    a.andi(17, 0x10);
    a.breq("poll");
    a.lds(18, kAdcL);
    a.sts(kHostOut, 18);
    a.halt(0);
    const auto img = a.finish();
    Machine m;
    m.dev().set_adc_seed(seed);
    m.load_flash(img.code);
    m.reset(0);
    m.run(100000);
    return m.dev().host_out()[0];
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(Devices, RadioTransmitTimingAndPayload) {
  Assembler a("radio");
  for (uint8_t b : {0x01, 0x02, 0x03}) {
    a.ldi(16, b);
    a.sts(kRadioData, 16);
  }
  a.ldi(16, 1);
  a.sts(kRadioCtrl, 16);
  a.label("wait");
  a.lds(17, kRadioStatus);
  a.andi(17, 1);
  a.brne("wait");
  a.halt(0);
  const auto img = a.finish();
  Machine m;
  m.load_flash(img.code);
  m.reset(0);
  ASSERT_EQ(m.run(1'000'000), StopReason::Halted);
  EXPECT_GE(m.cycles(), 3u * 3072u);  // ~19.2 kbit/s
  ASSERT_EQ(m.dev().radio_packets().size(), 1u);
  EXPECT_EQ(m.dev().radio_packets()[0],
            (std::vector<uint8_t>{0x01, 0x02, 0x03}));
}

TEST(Devices, Timer0OverflowRaisesOncePerCrossing) {
  Assembler a("t0");
  a.ldi(16, 2);           // prescale /8
  a.sts(kTccr0, 16);
  a.ldi(16, 0);
  a.sts(kTcnt0, 16);
  a.ldi(16, 1);
  a.sts(kTifr, 16);       // clear OVF
  a.ldi(20, 0);           // overflow counter
  a.label("wait1");
  a.lds(17, kTifr);
  a.andi(17, 1);
  a.breq("wait1");
  a.inc(20);
  a.ldi(16, 1);
  a.sts(kTifr, 16);       // clear, wait for the next
  a.label("wait2");
  a.lds(17, kTifr);
  a.andi(17, 1);
  a.breq("wait2");
  a.inc(20);
  a.sts(kHostOut, 20);
  a.halt(0);
  const auto img = a.finish();
  Machine m;
  m.load_flash(img.code);
  m.reset(0);
  ASSERT_EQ(m.run(100000), StopReason::Halted);
  EXPECT_EQ(m.dev().host_out()[0], 2);
  EXPECT_GE(m.cycles(), 2u * 2048u);
}

TEST(Devices, HostRandomIsAnLfsrStream) {
  Machine m;
  const uint8_t a = m.mem().read(kHostRandL);
  const uint8_t b = m.mem().read(kHostRandL);
  EXPECT_NE(a, b);  // stream advances (first two outputs differ for this seed)
}

TEST(Devices, SleepTargetWrapsModulo16Bit) {
  // Arm a target that is numerically below the current tick: the delta is
  // interpreted modulo 2^16, i.e. it wakes in the future, not instantly.
  Machine m;
  m.charge_idle(256ULL * 60000);
  m.dev().sync(m.cycles());
  m.mem().write(kSleepTargetL, 0x10);  // target 0x0010 << now 60000
  m.mem().write(kSleepTargetH, 0x00);
  ASSERT_TRUE(m.dev().sleep_armed());
  const uint64_t wake = m.dev().sleep_wake_cycle();
  EXPECT_GT(wake, m.cycles());
  EXPECT_EQ(wake / kTimer3Prescale, 65536u + 0x10);
}

}  // namespace
}  // namespace sensmart::emu
