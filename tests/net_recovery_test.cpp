// Node crash/reboot lifecycle and resumable dissemination (DESIGN.md §8):
// the mid-transfer-reboot acceptance scenario (persistent store resume,
// strictly cheaper than a cold restart), per-node abort reasons with base
// give-up and revival, link-outage windows in the medium, and
// deterministic replay of full fault schedules.
#include <gtest/gtest.h>

#include "apps/treesearch.hpp"
#include "emu/machine.hpp"
#include "net/image_codec.hpp"
#include "net/netsim.hpp"
#include "rewriter/linker.hpp"
#include "sim/harness.hpp"

namespace sensmart {
namespace {

using assembler::Image;

std::vector<uint8_t> test_blob() {
  apps::TreeSearchParams p;
  p.nodes_per_tree = 8;
  p.trees = 1;
  p.searches = 32;
  p.seed = 0x3131;
  rw::Linker linker(rw::RewriteOptions{}, true);
  linker.add(apps::data_feed_program(6, 64));
  linker.add(apps::tree_search_program(p));
  return net::serialize_system(linker.link());
}

uint16_t chunks_of(const std::vector<uint8_t>& blob, uint8_t payload = 32) {
  return static_cast<uint16_t>((blob.size() + payload - 1) / payload);
}

// --- Acceptance: two mid-transfer reboots at 10% loss -----------------------

net::NetConfig reboot_config(const std::vector<uint8_t>& blob,
                             bool wipe_store) {
  net::NetConfig cfg;
  cfg.nodes = 4;
  cfg.link.drop_pct = 10;
  cfg.chaos_seed = 0x5EED;
  cfg.max_cycles = 2'000'000'000ULL;
  const uint16_t half = static_cast<uint16_t>(chunks_of(blob) / 2);
  cfg.node_faults.scripted = {{1, half, 2'000, wipe_store},
                              {2, half, 3'000, wipe_store}};
  return cfg;
}

TEST(NetRecovery, MidTransferRebootsResumeAndConverge) {
  const auto blob = test_blob();
  net::NetSim sim(reboot_config(blob, false), blob);
  const auto r = sim.disseminate();

  ASSERT_TRUE(r.all_acked);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.complete_nodes(), 4u);
  // Every surviving node installs a byte-identical image.
  for (size_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(sim.node_complete(id)) << "node " << id;
    EXPECT_EQ(sim.node_blob(id), blob) << "node " << id;
  }
  // Both scheduled crashes fired and both nodes resumed from their
  // persistent chunk bitmap rather than starting over.
  for (size_t i : {0u, 1u}) {
    EXPECT_EQ(r.nodes[i].crashes, 1u) << "node " << i + 1;
    EXPECT_EQ(r.nodes[i].reboots, 1u) << "node " << i + 1;
    EXPECT_GT(r.nodes[i].resumed_chunks, 0u) << "node " << i + 1;
  }
  EXPECT_EQ(r.nodes[2].crashes, 0u);
  EXPECT_EQ(r.nodes[3].crashes, 0u);
  // The lifecycle shows up in the event trace.
  size_t crashed = 0, rebooted = 0;
  for (const auto& e : sim.trace()) {
    crashed += e.kind == net::NetEventKind::NodeCrashed;
    rebooted += e.kind == net::NetEventKind::NodeRebooted;
  }
  EXPECT_EQ(crashed, 2u);
  EXPECT_EQ(rebooted, 2u);
}

TEST(NetRecovery, ResumedTransferIsStrictlyCheaperThanColdRestart) {
  const auto blob = test_blob();
  auto frames = [&](bool wipe) {
    net::NetSim sim(reboot_config(blob, wipe), blob);
    const auto r = sim.disseminate();
    EXPECT_TRUE(r.all_acked) << (wipe ? "cold" : "warm");
    return r.base.data_tx + r.base.retransmissions;
  };
  const uint64_t warm = frames(false);
  const uint64_t cold = frames(true);
  // A wiped store forces the rebooted nodes to re-request everything they
  // had already stored; the persisted bitmap must save real data frames.
  EXPECT_LT(warm, cold);
}

TEST(NetRecovery, FaultScheduleReplaysByteIdentically) {
  const auto blob = test_blob();
  auto one = [&] {
    net::NetSim sim(reboot_config(blob, false), blob);
    return sim.disseminate();
  };
  const auto a = one();
  const auto b = one();
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.trace_events, b.trace_events);
  EXPECT_EQ(a.cycles, b.cycles);
  for (size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].resumed_chunks, b.nodes[i].resumed_chunks);
    EXPECT_EQ(a.nodes[i].store_writes, b.nodes[i].store_writes);
  }
}

TEST(NetRecovery, SeededCrashesDrawFromTheirOwnStream) {
  // Enabling seeded node faults with a probability that never fires must
  // not change the medium's schedule: the run stays digest-identical to a
  // fault-free one under the same chaos seed.
  const auto blob = test_blob();
  net::NetConfig plain;
  plain.nodes = 3;
  plain.link.drop_pct = 12;
  plain.chaos_seed = 42;
  net::NetConfig armed = plain;
  armed.node_faults.crash_pct = 0;  // policy present, no crash can fire
  armed.node_faults.max_crashes_per_node = 2;
  net::NetSim a(plain, blob);
  net::NetSim b(armed, blob);
  EXPECT_EQ(a.disseminate().trace_digest, b.disseminate().trace_digest);
}

// --- Per-node abort reasons and base give-up --------------------------------

TEST(NetRecovery, DeadNodeIsAbandonedAsNeverHeard) {
  const auto blob = test_blob();
  net::NetConfig cfg;
  cfg.nodes = 2;
  cfg.chaos_seed = 7;
  cfg.max_cycles = 2'000'000'000ULL;
  cfg.proto.node_give_up_probes = 3;
  // Node 1 dies before its radio ever keys up and never comes back.
  cfg.node_faults.scripted = {{1, 0, 50'000'000, false}};
  net::NetSim sim(cfg, blob);
  const auto r = sim.disseminate();

  EXPECT_FALSE(r.all_acked);
  EXPECT_TRUE(r.aborted);
  EXPECT_FALSE(r.budget_exhausted);  // the base gave up, not the clock
  EXPECT_TRUE(r.nodes[0].abandoned);
  EXPECT_EQ(r.nodes[0].abort_reason, net::NodeAbortReason::NeverHeard);
  EXPECT_EQ(r.base.nodes_abandoned, 1u);
  // The live node is unaffected: it completes and installs.
  EXPECT_TRUE(r.nodes[1].complete);
  EXPECT_EQ(r.nodes[1].abort_reason, net::NodeAbortReason::None);
  EXPECT_EQ(sim.node_blob(2), blob);
  // One Abort event, carrying the node id and its reason.
  size_t aborts = 0;
  for (const auto& e : sim.trace())
    if (e.kind == net::NetEventKind::Abort) {
      ++aborts;
      EXPECT_EQ(e.a, 1u);
      EXPECT_EQ(e.b, uint32_t(net::NodeAbortReason::NeverHeard));
    }
  EXPECT_EQ(aborts, 1u);
}

TEST(NetRecovery, HeardThenSilentNodeIsAbandonedAsTimedOut) {
  const auto blob = test_blob();
  net::NetConfig cfg;
  cfg.nodes = 2;
  cfg.chaos_seed = 7;
  cfg.link.drop_pct = 30;  // losses force repair Nacks: the base hears node 1
  cfg.max_cycles = 4'000'000'000ULL;
  cfg.proto.node_give_up_probes = 4;
  // Node 1 participates in the transfer (Nacking its way through 30% loss)
  // and dies just short of completion, never to return: heard, then
  // silent — the base must give it up as timed out, not never-heard.
  cfg.node_faults.scripted = {
      {1, static_cast<uint16_t>(chunks_of(blob) - 4), 80'000'000, false}};
  net::NetSim sim(cfg, blob);
  const auto r = sim.disseminate();

  EXPECT_FALSE(r.all_acked);
  EXPECT_TRUE(r.aborted);
  EXPECT_FALSE(r.budget_exhausted);
  EXPECT_TRUE(r.nodes[0].abandoned);
  EXPECT_GT(r.nodes[0].nacks_sent, 0u);
  EXPECT_EQ(r.nodes[0].abort_reason, net::NodeAbortReason::TimedOut);
  EXPECT_TRUE(r.nodes[1].complete);
}

TEST(NetRecovery, RebootedNodeRevivesAfterShortOutage) {
  // A short outage must never get a node abandoned with the default
  // give-up budget: the node revives on its first frame after reboot.
  const auto blob = test_blob();
  net::NetConfig cfg;
  cfg.nodes = 2;
  cfg.chaos_seed = 9;
  cfg.max_cycles = 2'000'000'000ULL;
  cfg.node_faults.scripted = {{1, 2, 4'000, false}};
  net::NetSim sim(cfg, blob);
  const auto r = sim.disseminate();
  EXPECT_TRUE(r.all_acked);
  EXPECT_FALSE(r.nodes[0].abandoned);
  EXPECT_EQ(r.base.nodes_abandoned, 0u);
  EXPECT_EQ(sim.node_blob(1), blob);
}

TEST(NetRecovery, AbortReasonsSurfaceThroughTheHarness) {
  sim::NetworkRunSpec spec;
  spec.net.nodes = 2;
  spec.net.chaos_seed = 7;
  spec.net.max_cycles = 2'000'000'000ULL;
  spec.net.proto.node_give_up_probes = 3;
  spec.net.node_faults.scripted = {{1, 0, 50'000'000, false}};
  const auto nr = sim::run_network({apps::data_feed_program(6, 64)}, spec);
  ASSERT_EQ(nr.nodes.size(), 2u);
  EXPECT_FALSE(nr.nodes[0].installed);
  EXPECT_EQ(nr.nodes[0].abort_reason, net::NodeAbortReason::NeverHeard);
  EXPECT_TRUE(nr.nodes[1].installed);
  EXPECT_EQ(nr.nodes[1].abort_reason, net::NodeAbortReason::None);
}

// --- Recovery on a mesh: peer resume and subtree abandonment ----------------

TEST(NetRecovery, MeshRebootedNodeResumesFromPeerNotTheBase) {
  // Line topology, three receivers: node 3 is two hops past the base's
  // radio range and is fed by node 2's serves. It crashes mid-transfer
  // with its store preserved; on reboot it must resume from the flash
  // chunk bitmap and pull only the missed chunks — from whichever
  // neighbor answers its Nacks (node 2), not from the base, which never
  // retransmits a frame on node 3's behalf.
  const auto blob = test_blob();
  net::NetConfig cfg;
  cfg.nodes = 3;
  cfg.chaos_seed = 0x5EED;
  cfg.max_cycles = 8'000'000'000ULL;
  cfg.topo.kind = net::TopologyKind::Line;
  cfg.proto.node_give_up_probes = 0;
  const uint16_t half = static_cast<uint16_t>(chunks_of(blob) / 2);
  cfg.node_faults.scripted = {{3, half, 4'000, false}};
  net::NetSim sim(cfg, blob);
  const auto r = sim.disseminate();

  ASSERT_TRUE(r.all_acked);
  EXPECT_EQ(r.complete_nodes(), 3u);
  for (size_t id = 1; id <= 3; ++id)
    EXPECT_EQ(sim.node_blob(id), blob) << "node " << id;
  EXPECT_EQ(r.nodes[2].crashes, 1u);
  EXPECT_EQ(r.nodes[2].reboots, 1u);
  EXPECT_GT(r.nodes[2].resumed_chunks, 0u);  // flash bitmap survived
  // The upstream peer (node 2) did the serving. The base repairs only
  // the frames node 1 missed while half-duplex-deaf during its own
  // serves — nowhere near the rebooted node's re-pulled half-image.
  EXPECT_GT(r.nodes[1].chunks_served, 0u);
  EXPECT_LT(r.base.retransmissions, uint64_t(half) / 2);
}

TEST(NetRecovery, MeshSubtreePartitionIsAbandonedWithStarClassification) {
  // Node 1 is the only bridge between the base and node 2. It dies before
  // its radio keys up and stays down; the whole subtree partitions. The
  // base's abandon classification is unchanged from star mode: it never
  // heard either node, so both are abandoned as NeverHeard — the relay
  // machinery must not manufacture liveness for a partitioned subtree.
  const auto blob = test_blob();
  net::NetConfig cfg;
  cfg.nodes = 2;
  cfg.chaos_seed = 7;
  cfg.max_cycles = 8'000'000'000ULL;
  cfg.topo.kind = net::TopologyKind::Line;
  cfg.proto.node_give_up_probes = 3;
  cfg.node_faults.scripted = {{1, 0, 4'000'000'000ULL, false}};
  net::NetSim sim(cfg, blob);
  const auto r = sim.disseminate();

  EXPECT_FALSE(r.all_acked);
  EXPECT_TRUE(r.aborted);
  EXPECT_FALSE(r.budget_exhausted);  // the base gave up, not the clock
  EXPECT_TRUE(r.nodes[0].abandoned);
  EXPECT_EQ(r.nodes[0].abort_reason, net::NodeAbortReason::NeverHeard);
  EXPECT_TRUE(r.nodes[1].abandoned);
  EXPECT_EQ(r.nodes[1].abort_reason, net::NodeAbortReason::NeverHeard);
  EXPECT_EQ(r.base.nodes_abandoned, 2u);
}

// --- Medium link-outage windows (FaultPolicy extension) ---------------------

TEST(MediumOutage, WindowSuppressesDeliveriesBothWaysOfTime) {
  emu::Machine a, b;
  net::Medium medium(net::LinkParams{}, 1);
  medium.attach(&a.dev());
  medium.attach(&b.dev());
  const std::vector<uint8_t> pkt{1, 2, 3, 4};

  medium.add_outage({0, 1, 10'000, 20'000});
  medium.broadcast(0, pkt, 15'000);  // inside the window: suppressed
  medium.broadcast(0, pkt, 25'000);  // after it: delivered
  medium.flush(1'000'000);
  b.dev().sync(1'000'000);

  EXPECT_EQ(medium.stats().outage_drops, 1u);
  EXPECT_EQ(medium.stats().delivered, 1u);
  EXPECT_EQ(b.dev().rx_delivered(), pkt.size());
}

TEST(MediumOutage, WildcardEndpointDownsEveryLinkOfANode) {
  emu::Machine a, b, c;
  net::Medium medium(net::LinkParams{}, 1);
  medium.attach(&a.dev());
  medium.attach(&b.dev());
  medium.attach(&c.dev());
  const std::vector<uint8_t> pkt{9, 9};

  // Node 1 is down in both directions; 0 <-> 2 is unaffected.
  medium.add_outage({1, net::kAnyNode, 0, 100'000});
  medium.add_outage({net::kAnyNode, 1, 0, 100'000});
  medium.broadcast(0, pkt, 5'000);  // to 1 (suppressed) and 2 (delivered)
  medium.broadcast(1, pkt, 6'000);  // to 0 and 2: both suppressed
  medium.flush(1'000'000);
  a.dev().sync(1'000'000);
  b.dev().sync(1'000'000);
  c.dev().sync(1'000'000);

  EXPECT_EQ(medium.stats().outage_drops, 3u);
  EXPECT_EQ(medium.stats().delivered, 1u);
  EXPECT_EQ(a.dev().rx_delivered(), 0u);
  EXPECT_EQ(b.dev().rx_delivered(), 0u);
  EXPECT_EQ(c.dev().rx_delivered(), pkt.size());
}

TEST(MediumOutage, PartitionWindowsExpireAndConsumeNoRandomness) {
  const auto blob = test_blob();
  // A partitioned start: the base can reach nobody for a while, then the
  // partition heals and dissemination completes normally.
  net::NetConfig cfg;
  cfg.nodes = 2;
  cfg.chaos_seed = 11;
  cfg.max_cycles = 2'000'000'000ULL;
  net::NetSim sim(cfg, blob);
  const auto r = sim.disseminate();
  ASSERT_TRUE(r.all_acked);

  // Outage checks precede every random roll, so a window in the past must
  // leave a seeded run's schedule untouched.
  emu::Machine a, b;
  net::LinkParams lossy;
  lossy.drop_pct = 30;
  net::Medium m1(lossy, 77);
  net::Medium m2(lossy, 77);
  m1.attach(&a.dev());
  m1.attach(&b.dev());
  emu::Machine c, d;
  m2.attach(&c.dev());
  m2.attach(&d.dev());
  const std::vector<size_t> left{0}, right{1};
  m2.add_partition(left, right, 0, 1);  // expires before any traffic
  const std::vector<uint8_t> pkt{5, 5, 5};
  for (int i = 0; i < 50; ++i) {
    m1.broadcast(0, pkt, 10'000 + i * 1'000);
    m2.broadcast(0, pkt, 10'000 + i * 1'000);
  }
  EXPECT_EQ(m1.stats().dropped, m2.stats().dropped);
  EXPECT_EQ(m1.stats().delivered, m2.stats().delivered);
  EXPECT_EQ(m2.stats().outage_drops, 0u);
}

}  // namespace
}  // namespace sensmart
