#include <gtest/gtest.h>
#include "emu/machine.hpp"
#include "assembler/assembler.hpp"

TEST(Smoke, RunsTinyProgram) {
  sensmart::assembler::Assembler a("tiny");
  a.ldi(16, 5);
  a.ldi(17, 7);
  a.add(16, 17);
  a.sts(sensmart::emu::kHostOut, 16);
  a.halt(0);
  auto img = a.finish();
  sensmart::emu::Machine m;
  m.load_flash(img.code);
  m.reset(img.entry);
  auto r = m.run(10000);
  EXPECT_EQ(r, sensmart::emu::StopReason::Halted);
  ASSERT_EQ(m.dev().host_out().size(), 1u);
  EXPECT_EQ(m.dev().host_out()[0], 12);
}
