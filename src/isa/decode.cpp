#include "isa/codec.hpp"

namespace sensmart::isa {
namespace {

int32_t sign_extend(uint32_t v, int bits) {
  const uint32_t m = 1u << (bits - 1);
  return static_cast<int32_t>((v ^ m) - m);
}

Instruction two_reg(Op op, uint16_t w) {
  Instruction ins;
  ins.op = op;
  ins.rd = static_cast<uint8_t>((w >> 4) & 0x1F);
  ins.rr = static_cast<uint8_t>(((w >> 5) & 0x10) | (w & 0x0F));
  return ins;
}

Instruction imm_op(Op op, uint16_t w) {
  Instruction ins;
  ins.op = op;
  ins.rd = static_cast<uint8_t>(16 + ((w >> 4) & 0x0F));
  ins.k = static_cast<int32_t>(((w >> 4) & 0xF0) | (w & 0x0F));
  return ins;
}

Instruction reg_only(Op op, uint16_t w) {
  Instruction ins;
  ins.op = op;
  ins.rd = static_cast<uint8_t>((w >> 4) & 0x1F);
  return ins;
}

Instruction io_bit(Op op, uint16_t w) {
  Instruction ins;
  ins.op = op;
  ins.a = static_cast<uint8_t>((w >> 3) & 0x1F);
  ins.b = static_cast<uint8_t>(w & 0x07);
  return ins;
}

}  // namespace

Instruction decode_words(uint16_t w, uint16_t w1) {
  Instruction ins;

  // Fixed encodings first (they overlap the generic 0x94xx/0x95xx space).
  switch (w) {
    case 0x0000: ins.op = Op::Nop; return ins;
    case 0x9409: ins.op = Op::Ijmp; return ins;
    case 0x9509: ins.op = Op::Icall; return ins;
    case 0x9508: ins.op = Op::Ret; return ins;
    case 0x9518: ins.op = Op::Reti; return ins;
    case 0x9588: ins.op = Op::Sleep; return ins;
    case 0x95A8: ins.op = Op::Wdr; return ins;
    case 0x9598: ins.op = Op::Break; return ins;
    case 0x95C8: ins.op = Op::LpmR0; return ins;
    default: break;
  }

  if ((w & 0xFF00) == 0x0100) {
    ins.op = Op::Movw;
    ins.rd = static_cast<uint8_t>(((w >> 4) & 0x0F) * 2);
    ins.rr = static_cast<uint8_t>((w & 0x0F) * 2);
    return ins;
  }

  switch (w & 0xFC00) {
    case 0x0400: return two_reg(Op::Cpc, w);
    case 0x0800: return two_reg(Op::Sbc, w);
    case 0x0C00: return two_reg(Op::Add, w);
    case 0x1000: return two_reg(Op::Cpse, w);
    case 0x1400: return two_reg(Op::Cp, w);
    case 0x1800: return two_reg(Op::Sub, w);
    case 0x1C00: return two_reg(Op::Adc, w);
    case 0x2000: return two_reg(Op::And, w);
    case 0x2400: return two_reg(Op::Eor, w);
    case 0x2800: return two_reg(Op::Or, w);
    case 0x2C00: return two_reg(Op::Mov, w);
    case 0x9C00: return two_reg(Op::Mul, w);
    default: break;
  }

  switch (w & 0xF000) {
    case 0x3000: return imm_op(Op::Cpi, w);
    case 0x4000: return imm_op(Op::Sbci, w);
    case 0x5000: return imm_op(Op::Subi, w);
    case 0x6000: return imm_op(Op::Ori, w);
    case 0x7000: return imm_op(Op::Andi, w);
    case 0xE000: return imm_op(Op::Ldi, w);
    case 0xC000:
      ins.op = Op::Rjmp;
      ins.k = sign_extend(w & 0x0FFF, 12);
      return ins;
    case 0xD000:
      ins.op = Op::Rcall;
      ins.k = sign_extend(w & 0x0FFF, 12);
      return ins;
    default: break;
  }

  // Ldd/Std (covers LD/ST through Y/Z with displacement, incl. q = 0).
  if ((w & 0xD000) == 0x8000) {
    ins.op = (w & 0x0200) ? Op::Std : Op::Ldd;
    ins.rd = static_cast<uint8_t>((w >> 4) & 0x1F);
    ins.ptr = (w & 0x0008) ? Ptr::Y : Ptr::Z;
    ins.q = static_cast<uint8_t>(((w >> 8) & 0x20) | ((w >> 7) & 0x18) |
                                 (w & 0x07));
    return ins;
  }

  if ((w & 0xFE00) == 0x9000) {  // load family
    Instruction r = reg_only(Op::Invalid, w);
    switch (w & 0x000F) {
      case 0x0: r.op = Op::Lds; r.k = w1; break;
      case 0x1: r.op = Op::LdZInc; break;
      case 0x2: r.op = Op::LdZDec; break;
      case 0x4: r.op = Op::Lpm; break;
      case 0x5: r.op = Op::LpmInc; break;
      case 0x9: r.op = Op::LdYInc; break;
      case 0xA: r.op = Op::LdYDec; break;
      case 0xC: r.op = Op::LdX; break;
      case 0xD: r.op = Op::LdXInc; break;
      case 0xE: r.op = Op::LdXDec; break;
      case 0xF: r.op = Op::Pop; break;
      default: break;
    }
    return r;
  }

  if ((w & 0xFE00) == 0x9200) {  // store family
    Instruction r = reg_only(Op::Invalid, w);
    switch (w & 0x000F) {
      case 0x0: r.op = Op::Sts; r.k = w1; break;
      case 0x1: r.op = Op::StZInc; break;
      case 0x2: r.op = Op::StZDec; break;
      case 0x9: r.op = Op::StYInc; break;
      case 0xA: r.op = Op::StYDec; break;
      case 0xC: r.op = Op::StX; break;
      case 0xD: r.op = Op::StXInc; break;
      case 0xE: r.op = Op::StXDec; break;
      case 0xF: r.op = Op::Push; break;
      default: break;
    }
    return r;
  }

  if ((w & 0xFF8F) == 0x9408) {
    ins.op = Op::Bset;
    ins.b = static_cast<uint8_t>((w >> 4) & 0x07);
    return ins;
  }
  if ((w & 0xFF8F) == 0x9488) {
    ins.op = Op::Bclr;
    ins.b = static_cast<uint8_t>((w >> 4) & 0x07);
    return ins;
  }
  // JMP/CALL with the full 22-bit target: k21..k17 in word0 bits 8..4,
  // k16 in bit 0, k15..k0 in word1.
  if ((w & 0xFE0E) == 0x940C || (w & 0xFE0E) == 0x940E) {
    ins.op = (w & 0x0002) ? Op::Call : Op::Jmp;
    const uint32_t hi = ((w >> 3) & 0x3Eu) | (w & 0x1u);
    ins.k = static_cast<int32_t>((hi << 16) | w1);
    return ins;
  }

  if ((w & 0xFE00) == 0x9400) {  // one-register ALU
    Instruction r = reg_only(Op::Invalid, w);
    switch (w & 0x000F) {
      case 0x0: r.op = Op::Com; break;
      case 0x1: r.op = Op::Neg; break;
      case 0x2: r.op = Op::Swap; break;
      case 0x3: r.op = Op::Inc; break;
      case 0x5: r.op = Op::Asr; break;
      case 0x6: r.op = Op::Lsr; break;
      case 0x7: r.op = Op::Ror; break;
      case 0xA: r.op = Op::Dec; break;
      default: break;
    }
    return r;
  }

  switch (w & 0xFF00) {
    case 0x9600:
    case 0x9700:
      ins.op = (w & 0x0100) ? Op::Sbiw : Op::Adiw;
      ins.rd = static_cast<uint8_t>(24 + ((w >> 4) & 0x03) * 2);
      ins.k = static_cast<int32_t>(((w >> 2) & 0x30) | (w & 0x0F));
      return ins;
    case 0x9800: return io_bit(Op::Cbi, w);
    case 0x9900: return io_bit(Op::Sbic, w);
    case 0x9A00: return io_bit(Op::Sbi, w);
    case 0x9B00: return io_bit(Op::Sbis, w);
    default: break;
  }

  if ((w & 0xF800) == 0xB000 || (w & 0xF800) == 0xB800) {
    ins.op = (w & 0x0800) ? Op::Out : Op::In;
    ins.rd = static_cast<uint8_t>((w >> 4) & 0x1F);
    ins.a = static_cast<uint8_t>(((w >> 5) & 0x30) | (w & 0x0F));
    return ins;
  }

  if ((w & 0xFC00) == 0xF000 || (w & 0xFC00) == 0xF400) {
    ins.op = (w & 0x0400) ? Op::Brbc : Op::Brbs;
    ins.b = static_cast<uint8_t>(w & 0x07);
    ins.k = sign_extend((w >> 3) & 0x7F, 7);
    return ins;
  }

  if ((w & 0xFE08) == 0xFC00 || (w & 0xFE08) == 0xFE00) {
    ins.op = (w & 0x0200) ? Op::Sbrs : Op::Sbrc;
    ins.rr = static_cast<uint8_t>((w >> 4) & 0x1F);
    ins.b = static_cast<uint8_t>(w & 0x07);
    return ins;
  }

  return ins;  // Invalid
}

Instruction decode(std::span<const uint16_t> code, uint32_t pc) {
  if (pc >= code.size()) return Instruction{};
  const uint16_t w0 = code[pc];
  const uint16_t w1 = (pc + 1 < code.size()) ? code[pc + 1] : 0;
  return decode_words(w0, w1);
}

}  // namespace sensmart::isa
