// AVR (ATmega128 subset) instruction representation.
//
// The subset covers everything emitted by the in-library assembler and
// everything the SenSmart rewriter must recognize: the full two-operand and
// immediate ALU groups, the one-operand group, all load/store addressing
// modes, stack operations, the control-flow group, bit/flag operations and
// the MCU-control group.
#pragma once

#include <cstdint>
#include <string>

namespace sensmart::isa {

enum class Op : uint8_t {
  // Two-register ALU (word = base | r-bit9 | d<<4 | r-low).
  Add, Adc, Sub, Sbc, And, Or, Eor, Mov, Cp, Cpc, Cpse, Mul,
  // Register-immediate ALU (d in 16..31, 8-bit K).
  Subi, Sbci, Andi, Ori, Cpi, Ldi,
  // One-register ALU.
  Com, Neg, Swap, Inc, Dec, Asr, Lsr, Ror,
  // Word immediate on register pairs (r24/26/28/30, 6-bit K).
  Adiw, Sbiw,
  // Register-pair move.
  Movw,
  // Direct data memory.
  Lds, Sts,
  // Indirect data memory through X/Y/Z with pre-decrement/post-increment,
  // and Y/Z with 6-bit displacement.
  LdX, LdXInc, LdXDec, LdYInc, LdYDec, LdZInc, LdZDec, Ldd /*Y or Z + q*/,
  StX, StXInc, StXDec, StYInc, StYDec, StZInc, StZDec, Std,
  // Stack.
  Push, Pop,
  // I/O space.
  In, Out, Sbi, Cbi, Sbic, Sbis,
  // Program memory data access.
  LpmR0, Lpm, LpmInc,
  // Control flow.
  Rjmp, Rcall, Jmp, Call, Ijmp, Icall, Ret, Reti,
  Brbs, Brbc, Sbrc, Sbrs,
  // Flag and MCU control.
  Bset, Bclr, Nop, Sleep, Wdr, Break,
  Invalid,
};

// Index registers used by Ldd/Std (and handy for describing LD/ST variants).
enum class Ptr : uint8_t { X, Y, Z };

// SREG bit indices.
inline constexpr int kFlagC = 0, kFlagZ = 1, kFlagN = 2, kFlagV = 3,
                     kFlagS = 4, kFlagH = 5, kFlagT = 6, kFlagI = 7;

// One decoded (or to-be-encoded) instruction. Fields that an opcode does
// not use are zero. `k` carries immediates, branch offsets (signed, in
// words) and 16-bit direct addresses; `q` carries the Ldd/Std displacement;
// `a` carries I/O addresses; `b` carries bit numbers / SREG bit selectors.
struct Instruction {
  Op op = Op::Invalid;
  uint8_t rd = 0;   // destination register (0..31) or register pair base
  uint8_t rr = 0;   // source register
  int32_t k = 0;    // immediate / address / signed word offset
  uint8_t a = 0;    // I/O address (0..63)
  uint8_t b = 0;    // bit number (0..7) or SREG flag index
  uint8_t q = 0;    // displacement (0..63)
  Ptr ptr = Ptr::Z; // index register for Ldd/Std

  bool operator==(const Instruction&) const = default;
};

// Size of an instruction in 16-bit flash words (1 or 2).
int size_words(Op op);

// Base cycle cost on an AVR core (branch-taken/skip extra cycles are added
// by the CPU at execution time).
int base_cycles(Op op);

// Classification helpers used by the rewriter.
bool is_conditional_branch(Op op);  // Brbs/Brbc/Sbrc/Sbrs/Cpse
bool is_relative_branch(Op op);     // Rjmp/Rcall/Brbs/Brbc
bool is_call(Op op);                // Rcall/Call/Icall
bool is_return(Op op);              // Ret/Reti
bool is_indirect_jump(Op op);       // Ijmp/Icall
bool is_mem_indirect(Op op);        // LD/ST through X/Y/Z (incl. Ldd/Std)
bool is_mem_direct(Op op);          // Lds/Sts
bool is_store(Op op);               // any ST variant / Sts / Push
bool is_stack_op(Op op);            // Push/Pop
bool writes_sp(Op op, uint8_t io_addr);   // Out to SPL/SPH
bool reads_sp(Op op, uint8_t io_addr);    // In from SPL/SPH

// The index register an indirect memory op dereferences.
Ptr pointer_of(const Instruction& ins);
// True if the op mutates its index register (pre-dec / post-inc forms).
bool mutates_pointer(Op op);

const char* mnemonic(Op op);

}  // namespace sensmart::isa
