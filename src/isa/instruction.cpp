#include "isa/instruction.hpp"

namespace sensmart::isa {

int size_words(Op op) {
  switch (op) {
    case Op::Lds:
    case Op::Sts:
    case Op::Jmp:
    case Op::Call:
      return 2;
    default:
      return 1;
  }
}

int base_cycles(Op op) {
  switch (op) {
    case Op::Adiw:
    case Op::Sbiw:
    case Op::Mul:
      return 2;
    case Op::Lds:
    case Op::Sts:
    case Op::LdX:
    case Op::LdXInc:
    case Op::LdXDec:
    case Op::LdYInc:
    case Op::LdYDec:
    case Op::LdZInc:
    case Op::LdZDec:
    case Op::Ldd:
    case Op::StX:
    case Op::StXInc:
    case Op::StXDec:
    case Op::StYInc:
    case Op::StYDec:
    case Op::StZInc:
    case Op::StZDec:
    case Op::Std:
    case Op::Push:
    case Op::Pop:
    case Op::Sbi:
    case Op::Cbi:
      return 2;
    case Op::LpmR0:
    case Op::Lpm:
    case Op::LpmInc:
      return 3;
    case Op::Rjmp:
    case Op::Ijmp:
      return 2;
    case Op::Rcall:
    case Op::Icall:
    case Op::Jmp:
      return 3;
    case Op::Call:
    case Op::Ret:
    case Op::Reti:
      return 4;
    default:
      return 1;  // ALU, branches (not taken), IN/OUT, flag ops, NOP, SLEEP
  }
}

bool is_conditional_branch(Op op) {
  switch (op) {
    case Op::Brbs:
    case Op::Brbc:
    case Op::Sbrc:
    case Op::Sbrs:
    case Op::Sbic:
    case Op::Sbis:
    case Op::Cpse:
      return true;
    default:
      return false;
  }
}

bool is_relative_branch(Op op) {
  switch (op) {
    case Op::Rjmp:
    case Op::Rcall:
    case Op::Brbs:
    case Op::Brbc:
      return true;
    default:
      return false;
  }
}

bool is_call(Op op) { return op == Op::Rcall || op == Op::Call || op == Op::Icall; }
bool is_return(Op op) { return op == Op::Ret || op == Op::Reti; }
bool is_indirect_jump(Op op) { return op == Op::Ijmp || op == Op::Icall; }

bool is_mem_indirect(Op op) {
  switch (op) {
    case Op::LdX:
    case Op::LdXInc:
    case Op::LdXDec:
    case Op::LdYInc:
    case Op::LdYDec:
    case Op::LdZInc:
    case Op::LdZDec:
    case Op::Ldd:
    case Op::StX:
    case Op::StXInc:
    case Op::StXDec:
    case Op::StYInc:
    case Op::StYDec:
    case Op::StZInc:
    case Op::StZDec:
    case Op::Std:
      return true;
    default:
      return false;
  }
}

bool is_mem_direct(Op op) { return op == Op::Lds || op == Op::Sts; }

bool is_store(Op op) {
  switch (op) {
    case Op::StX:
    case Op::StXInc:
    case Op::StXDec:
    case Op::StYInc:
    case Op::StYDec:
    case Op::StZInc:
    case Op::StZDec:
    case Op::Std:
    case Op::Sts:
    case Op::Push:
      return true;
    default:
      return false;
  }
}

bool is_stack_op(Op op) { return op == Op::Push || op == Op::Pop; }

// SPL/SPH live at I/O addresses 0x3D/0x3E (data addresses 0x5D/0x5E).
bool writes_sp(Op op, uint8_t io_addr) {
  return op == Op::Out && (io_addr == 0x3D || io_addr == 0x3E);
}
bool reads_sp(Op op, uint8_t io_addr) {
  return op == Op::In && (io_addr == 0x3D || io_addr == 0x3E);
}

Ptr pointer_of(const Instruction& ins) {
  switch (ins.op) {
    case Op::LdX:
    case Op::LdXInc:
    case Op::LdXDec:
    case Op::StX:
    case Op::StXInc:
    case Op::StXDec:
      return Ptr::X;
    case Op::LdYInc:
    case Op::LdYDec:
    case Op::StYInc:
    case Op::StYDec:
      return Ptr::Y;
    case Op::LdZInc:
    case Op::LdZDec:
    case Op::StZInc:
    case Op::StZDec:
      return Ptr::Z;
    case Op::Ldd:
    case Op::Std:
      return ins.ptr;
    default:
      return Ptr::Z;
  }
}

bool mutates_pointer(Op op) {
  switch (op) {
    case Op::LdXInc:
    case Op::LdXDec:
    case Op::LdYInc:
    case Op::LdYDec:
    case Op::LdZInc:
    case Op::LdZDec:
    case Op::StXInc:
    case Op::StXDec:
    case Op::StYInc:
    case Op::StYDec:
    case Op::StZInc:
    case Op::StZDec:
    case Op::LpmInc:
      return true;
    default:
      return false;
  }
}

const char* mnemonic(Op op) {
  switch (op) {
    case Op::Add: return "add";
    case Op::Adc: return "adc";
    case Op::Sub: return "sub";
    case Op::Sbc: return "sbc";
    case Op::And: return "and";
    case Op::Or: return "or";
    case Op::Eor: return "eor";
    case Op::Mov: return "mov";
    case Op::Cp: return "cp";
    case Op::Cpc: return "cpc";
    case Op::Cpse: return "cpse";
    case Op::Mul: return "mul";
    case Op::Subi: return "subi";
    case Op::Sbci: return "sbci";
    case Op::Andi: return "andi";
    case Op::Ori: return "ori";
    case Op::Cpi: return "cpi";
    case Op::Ldi: return "ldi";
    case Op::Com: return "com";
    case Op::Neg: return "neg";
    case Op::Swap: return "swap";
    case Op::Inc: return "inc";
    case Op::Dec: return "dec";
    case Op::Asr: return "asr";
    case Op::Lsr: return "lsr";
    case Op::Ror: return "ror";
    case Op::Adiw: return "adiw";
    case Op::Sbiw: return "sbiw";
    case Op::Movw: return "movw";
    case Op::Lds: return "lds";
    case Op::Sts: return "sts";
    case Op::LdX: return "ld_x";
    case Op::LdXInc: return "ld_x+";
    case Op::LdXDec: return "ld_-x";
    case Op::LdYInc: return "ld_y+";
    case Op::LdYDec: return "ld_-y";
    case Op::LdZInc: return "ld_z+";
    case Op::LdZDec: return "ld_-z";
    case Op::Ldd: return "ldd";
    case Op::StX: return "st_x";
    case Op::StXInc: return "st_x+";
    case Op::StXDec: return "st_-x";
    case Op::StYInc: return "st_y+";
    case Op::StYDec: return "st_-y";
    case Op::StZInc: return "st_z+";
    case Op::StZDec: return "st_-z";
    case Op::Std: return "std";
    case Op::Push: return "push";
    case Op::Pop: return "pop";
    case Op::In: return "in";
    case Op::Out: return "out";
    case Op::Sbi: return "sbi";
    case Op::Cbi: return "cbi";
    case Op::Sbic: return "sbic";
    case Op::Sbis: return "sbis";
    case Op::LpmR0: return "lpm_r0";
    case Op::Lpm: return "lpm";
    case Op::LpmInc: return "lpm_z+";
    case Op::Rjmp: return "rjmp";
    case Op::Rcall: return "rcall";
    case Op::Jmp: return "jmp";
    case Op::Call: return "call";
    case Op::Ijmp: return "ijmp";
    case Op::Icall: return "icall";
    case Op::Ret: return "ret";
    case Op::Reti: return "reti";
    case Op::Brbs: return "brbs";
    case Op::Brbc: return "brbc";
    case Op::Sbrc: return "sbrc";
    case Op::Sbrs: return "sbrs";
    case Op::Bset: return "bset";
    case Op::Bclr: return "bclr";
    case Op::Nop: return "nop";
    case Op::Sleep: return "sleep";
    case Op::Wdr: return "wdr";
    case Op::Break: return "break";
    case Op::Invalid: return "<invalid>";
  }
  return "<?>";
}

}  // namespace sensmart::isa
