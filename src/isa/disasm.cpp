#include <sstream>

#include "isa/codec.hpp"

namespace sensmart::isa {

std::string to_string(const Instruction& ins) {
  std::ostringstream os;
  os << mnemonic(ins.op);
  using enum Op;
  switch (ins.op) {
    case Add: case Adc: case Sub: case Sbc: case And: case Or: case Eor:
    case Mov: case Cp: case Cpc: case Cpse: case Mul: case Movw:
      os << " r" << int(ins.rd) << ", r" << int(ins.rr);
      break;
    case Subi: case Sbci: case Andi: case Ori: case Cpi: case Ldi:
      os << " r" << int(ins.rd) << ", " << ins.k;
      break;
    case Com: case Neg: case Swap: case Inc: case Dec: case Asr: case Lsr:
    case Ror: case Push: case Pop: case Lpm: case LpmInc:
    case LdX: case LdXInc: case LdXDec: case LdYInc: case LdYDec:
    case LdZInc: case LdZDec: case StX: case StXInc: case StXDec:
    case StYInc: case StYDec: case StZInc: case StZDec:
      os << " r" << int(ins.rd);
      break;
    case Adiw: case Sbiw:
      os << " r" << int(ins.rd) << ", " << ins.k;
      break;
    case Lds:
      os << " r" << int(ins.rd) << ", 0x" << std::hex << ins.k;
      break;
    case Sts:
      os << " 0x" << std::hex << ins.k << std::dec << ", r" << int(ins.rd);
      break;
    case Ldd:
      os << " r" << int(ins.rd) << ", " << (ins.ptr == Ptr::Y ? "Y" : "Z")
         << "+" << int(ins.q);
      break;
    case Std:
      os << " " << (ins.ptr == Ptr::Y ? "Y" : "Z") << "+" << int(ins.q)
         << ", r" << int(ins.rd);
      break;
    case In:
      os << " r" << int(ins.rd) << ", 0x" << std::hex << int(ins.a);
      break;
    case Out:
      os << " 0x" << std::hex << int(ins.a) << std::dec << ", r"
         << int(ins.rd);
      break;
    case Sbi: case Cbi: case Sbic: case Sbis:
      os << " 0x" << std::hex << int(ins.a) << std::dec << ", "
         << int(ins.b);
      break;
    case Rjmp: case Rcall:
      os << " ." << (ins.k >= 0 ? "+" : "") << ins.k;
      break;
    case Jmp: case Call:
      os << " 0x" << std::hex << ins.k;
      break;
    case Brbs: case Brbc:
      os << " " << int(ins.b) << ", ." << (ins.k >= 0 ? "+" : "") << ins.k;
      break;
    case Sbrc: case Sbrs:
      os << " r" << int(ins.rr) << ", " << int(ins.b);
      break;
    case Bset: case Bclr:
      os << " " << int(ins.b);
      break;
    default:
      break;
  }
  return os.str();
}

}  // namespace sensmart::isa
