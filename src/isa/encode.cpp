#include <stdexcept>

#include "isa/codec.hpp"

namespace sensmart::isa {
namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

// Two-register ALU: base | r4<<9 | d<<4 | r3..0.
uint16_t two_reg(uint16_t base, uint8_t rd, uint8_t rr) {
  require(rd < 32 && rr < 32, "two_reg: register out of range");
  return static_cast<uint16_t>(base | ((rr & 0x10u) << 5) | (rd << 4) |
                               (rr & 0x0Fu));
}

// Register-immediate ALU: base | K7..4<<8 | (d-16)<<4 | K3..0.
uint16_t imm_op(uint16_t base, uint8_t rd, int32_t k) {
  require(rd >= 16 && rd < 32, "imm_op: register must be r16..r31");
  require(k >= 0 && k <= 0xFF, "imm_op: immediate out of range");
  return static_cast<uint16_t>(base | ((k & 0xF0u) << 4) |
                               ((rd - 16) << 4) | (k & 0x0Fu));
}

// One-register ALU: 0x9400 | d<<4 | ext.
uint16_t one_reg(uint8_t rd, uint16_t ext) {
  require(rd < 32, "one_reg: register out of range");
  return static_cast<uint16_t>(0x9400u | (rd << 4) | ext);
}

uint16_t adiw_like(uint16_t base, uint8_t rd, int32_t k) {
  require(rd == 24 || rd == 26 || rd == 28 || rd == 30,
          "adiw/sbiw: register pair must be r24/26/28/30");
  require(k >= 0 && k <= 63, "adiw/sbiw: immediate out of range");
  const uint16_t pair = static_cast<uint16_t>((rd - 24) / 2);
  return static_cast<uint16_t>(base | ((k & 0x30u) << 2) | (pair << 4) |
                               (k & 0x0Fu));
}

uint16_t io_op(uint16_t base, uint8_t rd, uint8_t a) {
  require(rd < 32, "in/out: register out of range");
  require(a < 64, "in/out: I/O address out of range");
  return static_cast<uint16_t>(base | ((a & 0x30u) << 5) | (rd << 4) |
                               (a & 0x0Fu));
}

uint16_t io_bit(uint16_t base, uint8_t a, uint8_t b) {
  require(a < 32, "sbi/cbi/sbic/sbis: I/O address out of range");
  require(b < 8, "bit out of range");
  return static_cast<uint16_t>(base | (a << 3) | b);
}

// Ldd/Std displacement bits: q5 -> bit13, q4..q3 -> bits11..10, q2..q0 -> 2..0
uint16_t disp_bits(uint8_t q) {
  require(q < 64, "ldd/std: displacement out of range");
  return static_cast<uint16_t>(((q & 0x20u) << 8) | ((q & 0x18u) << 7) |
                               (q & 0x07u));
}

uint16_t ld_st(uint16_t base, uint8_t rd, uint16_t ext) {
  require(rd < 32, "ld/st: register out of range");
  return static_cast<uint16_t>(base | (rd << 4) | ext);
}

}  // namespace

void encode_to(const Instruction& ins, std::vector<uint16_t>& out) {
  using enum Op;
  switch (ins.op) {
    case Add: out.push_back(two_reg(0x0C00, ins.rd, ins.rr)); return;
    case Adc: out.push_back(two_reg(0x1C00, ins.rd, ins.rr)); return;
    case Sub: out.push_back(two_reg(0x1800, ins.rd, ins.rr)); return;
    case Sbc: out.push_back(two_reg(0x0800, ins.rd, ins.rr)); return;
    case And: out.push_back(two_reg(0x2000, ins.rd, ins.rr)); return;
    case Or: out.push_back(two_reg(0x2800, ins.rd, ins.rr)); return;
    case Eor: out.push_back(two_reg(0x2400, ins.rd, ins.rr)); return;
    case Mov: out.push_back(two_reg(0x2C00, ins.rd, ins.rr)); return;
    case Cp: out.push_back(two_reg(0x1400, ins.rd, ins.rr)); return;
    case Cpc: out.push_back(two_reg(0x0400, ins.rd, ins.rr)); return;
    case Cpse: out.push_back(two_reg(0x1000, ins.rd, ins.rr)); return;
    case Mul: out.push_back(two_reg(0x9C00, ins.rd, ins.rr)); return;

    case Subi: out.push_back(imm_op(0x5000, ins.rd, ins.k)); return;
    case Sbci: out.push_back(imm_op(0x4000, ins.rd, ins.k)); return;
    case Andi: out.push_back(imm_op(0x7000, ins.rd, ins.k)); return;
    case Ori: out.push_back(imm_op(0x6000, ins.rd, ins.k)); return;
    case Cpi: out.push_back(imm_op(0x3000, ins.rd, ins.k)); return;
    case Ldi: out.push_back(imm_op(0xE000, ins.rd, ins.k)); return;

    case Com: out.push_back(one_reg(ins.rd, 0x0)); return;
    case Neg: out.push_back(one_reg(ins.rd, 0x1)); return;
    case Swap: out.push_back(one_reg(ins.rd, 0x2)); return;
    case Inc: out.push_back(one_reg(ins.rd, 0x3)); return;
    case Asr: out.push_back(one_reg(ins.rd, 0x5)); return;
    case Lsr: out.push_back(one_reg(ins.rd, 0x6)); return;
    case Ror: out.push_back(one_reg(ins.rd, 0x7)); return;
    case Dec: out.push_back(one_reg(ins.rd, 0xA)); return;

    case Adiw: out.push_back(adiw_like(0x9600, ins.rd, ins.k)); return;
    case Sbiw: out.push_back(adiw_like(0x9700, ins.rd, ins.k)); return;

    case Movw:
      require(ins.rd % 2 == 0 && ins.rr % 2 == 0 && ins.rd < 32 && ins.rr < 32,
              "movw: registers must be even");
      out.push_back(static_cast<uint16_t>(0x0100u | ((ins.rd / 2) << 4) |
                                          (ins.rr / 2)));
      return;

    case Lds:
      require(ins.k >= 0 && ins.k <= 0xFFFF, "lds: address out of range");
      out.push_back(ld_st(0x9000, ins.rd, 0x0));
      out.push_back(static_cast<uint16_t>(ins.k));
      return;
    case Sts:
      require(ins.k >= 0 && ins.k <= 0xFFFF, "sts: address out of range");
      out.push_back(ld_st(0x9200, ins.rd, 0x0));
      out.push_back(static_cast<uint16_t>(ins.k));
      return;

    case LdX: out.push_back(ld_st(0x9000, ins.rd, 0xC)); return;
    case LdXInc: out.push_back(ld_st(0x9000, ins.rd, 0xD)); return;
    case LdXDec: out.push_back(ld_st(0x9000, ins.rd, 0xE)); return;
    case LdYInc: out.push_back(ld_st(0x9000, ins.rd, 0x9)); return;
    case LdYDec: out.push_back(ld_st(0x9000, ins.rd, 0xA)); return;
    case LdZInc: out.push_back(ld_st(0x9000, ins.rd, 0x1)); return;
    case LdZDec: out.push_back(ld_st(0x9000, ins.rd, 0x2)); return;
    case StX: out.push_back(ld_st(0x9200, ins.rd, 0xC)); return;
    case StXInc: out.push_back(ld_st(0x9200, ins.rd, 0xD)); return;
    case StXDec: out.push_back(ld_st(0x9200, ins.rd, 0xE)); return;
    case StYInc: out.push_back(ld_st(0x9200, ins.rd, 0x9)); return;
    case StYDec: out.push_back(ld_st(0x9200, ins.rd, 0xA)); return;
    case StZInc: out.push_back(ld_st(0x9200, ins.rd, 0x1)); return;
    case StZDec: out.push_back(ld_st(0x9200, ins.rd, 0x2)); return;

    case Ldd: {
      require(ins.ptr != Ptr::X, "ldd: displacement mode needs Y or Z");
      require(ins.rd < 32, "ldd: register out of range");
      const uint16_t ybit = ins.ptr == Ptr::Y ? 0x8u : 0x0u;
      out.push_back(static_cast<uint16_t>(0x8000u | disp_bits(ins.q) |
                                          (ins.rd << 4) | ybit));
      return;
    }
    case Std: {
      require(ins.ptr != Ptr::X, "std: displacement mode needs Y or Z");
      require(ins.rd < 32, "std: register out of range");
      const uint16_t ybit = ins.ptr == Ptr::Y ? 0x8u : 0x0u;
      out.push_back(static_cast<uint16_t>(0x8200u | disp_bits(ins.q) |
                                          (ins.rd << 4) | ybit));
      return;
    }

    case Push: out.push_back(ld_st(0x9200, ins.rd, 0xF)); return;
    case Pop: out.push_back(ld_st(0x9000, ins.rd, 0xF)); return;

    case In: out.push_back(io_op(0xB000, ins.rd, ins.a)); return;
    case Out: out.push_back(io_op(0xB800, ins.rd, ins.a)); return;
    case Sbi: out.push_back(io_bit(0x9A00, ins.a, ins.b)); return;
    case Cbi: out.push_back(io_bit(0x9800, ins.a, ins.b)); return;
    case Sbic: out.push_back(io_bit(0x9900, ins.a, ins.b)); return;
    case Sbis: out.push_back(io_bit(0x9B00, ins.a, ins.b)); return;

    case LpmR0: out.push_back(0x95C8); return;
    case Lpm: out.push_back(ld_st(0x9000, ins.rd, 0x4)); return;
    case LpmInc: out.push_back(ld_st(0x9000, ins.rd, 0x5)); return;

    case Rjmp:
      require(ins.k >= -2048 && ins.k <= 2047, "rjmp: offset out of range");
      out.push_back(static_cast<uint16_t>(0xC000u | (ins.k & 0x0FFF)));
      return;
    case Rcall:
      require(ins.k >= -2048 && ins.k <= 2047, "rcall: offset out of range");
      out.push_back(static_cast<uint16_t>(0xD000u | (ins.k & 0x0FFF)));
      return;
    case Jmp:
      // Full 22-bit target: k21..k17 live in word0 bits 8..4, k16 in bit 0.
      require(ins.k >= 0 && ins.k <= 0x3FFFFF, "jmp: address out of range");
      out.push_back(static_cast<uint16_t>(0x940Cu |
                                          ((uint32_t(ins.k) >> 13) & 0x01F0u) |
                                          ((uint32_t(ins.k) >> 16) & 0x0001u)));
      out.push_back(static_cast<uint16_t>(ins.k & 0xFFFF));
      return;
    case Call:
      require(ins.k >= 0 && ins.k <= 0x3FFFFF, "call: address out of range");
      out.push_back(static_cast<uint16_t>(0x940Eu |
                                          ((uint32_t(ins.k) >> 13) & 0x01F0u) |
                                          ((uint32_t(ins.k) >> 16) & 0x0001u)));
      out.push_back(static_cast<uint16_t>(ins.k & 0xFFFF));
      return;
    case Ijmp: out.push_back(0x9409); return;
    case Icall: out.push_back(0x9509); return;
    case Ret: out.push_back(0x9508); return;
    case Reti: out.push_back(0x9518); return;

    case Brbs:
      require(ins.k >= -64 && ins.k <= 63, "brbs: offset out of range");
      require(ins.b < 8, "brbs: flag out of range");
      out.push_back(static_cast<uint16_t>(0xF000u | ((ins.k & 0x7F) << 3) |
                                          ins.b));
      return;
    case Brbc:
      require(ins.k >= -64 && ins.k <= 63, "brbc: offset out of range");
      require(ins.b < 8, "brbc: flag out of range");
      out.push_back(static_cast<uint16_t>(0xF400u | ((ins.k & 0x7F) << 3) |
                                          ins.b));
      return;
    case Sbrc:
      require(ins.rr < 32 && ins.b < 8, "sbrc: operand out of range");
      out.push_back(static_cast<uint16_t>(0xFC00u | (ins.rr << 4) | ins.b));
      return;
    case Sbrs:
      require(ins.rr < 32 && ins.b < 8, "sbrs: operand out of range");
      out.push_back(static_cast<uint16_t>(0xFE00u | (ins.rr << 4) | ins.b));
      return;

    case Bset:
      require(ins.b < 8, "bset: flag out of range");
      out.push_back(static_cast<uint16_t>(0x9408u | (ins.b << 4)));
      return;
    case Bclr:
      require(ins.b < 8, "bclr: flag out of range");
      out.push_back(static_cast<uint16_t>(0x9488u | (ins.b << 4)));
      return;

    case Nop: out.push_back(0x0000); return;
    case Sleep: out.push_back(0x9588); return;
    case Wdr: out.push_back(0x95A8); return;
    case Break: out.push_back(0x9598); return;

    case Invalid: throw std::invalid_argument("cannot encode Invalid");
  }
  throw std::invalid_argument("unhandled opcode");
}

std::vector<uint16_t> encode(const Instruction& ins) {
  std::vector<uint16_t> out;
  encode_to(ins, out);
  return out;
}

}  // namespace sensmart::isa
