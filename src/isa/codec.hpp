// Binary encoder/decoder for the AVR instruction subset.
//
// Encodings follow the Atmel AVR instruction set manual; the flash image is
// a sequence of little-endian 16-bit words. Relative branch offsets are
// stored in `Instruction::k` as signed word offsets relative to PC+1.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "isa/instruction.hpp"

namespace sensmart::isa {

// Encode one instruction into 1 or 2 flash words. Throws std::invalid_argument
// on out-of-range operands (bad register index, offset overflow, ...).
std::vector<uint16_t> encode(const Instruction& ins);

// Append the encoding of `ins` to `out`.
void encode_to(const Instruction& ins, std::vector<uint16_t>& out);

// Decode the instruction whose first word is `code[pc]`. A second word is
// consumed for 32-bit instructions. Unknown encodings yield Op::Invalid.
Instruction decode(std::span<const uint16_t> code, uint32_t pc);

// Decode a single raw word pair without bounds context.
Instruction decode_words(uint16_t w0, uint16_t w1);

std::string to_string(const Instruction& ins);

}  // namespace sensmart::isa
