// The chaos harness: one 64-bit seed deterministically plans a perturbed
// system run — an adversarial task mix, randomized kernel timing
// (trap-interval jitter, slice length), starvation-level stack configs
// that force relocation storms, and scheduled task kills at arbitrary
// service boundaries — then executes it with the kernel auditor enabled
// and reports every invariant or data-integrity violation.
//
// Replay: the same seed with the same binary reproduces the identical
// kernel event trace (compare `trace_hash`), so any violation found by a
// seed sweep can be re-run and debugged with `chaos_soak --chaos-seed N`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/harness.hpp"

namespace sensmart::chaos {

struct ChaosOptions {
  uint64_t seed = 1;
  uint64_t max_cycles = 300'000'000ULL;  // every chaos task is finite
  bool audit = true;                     // kernel auditor on
  bool inject_kills = true;              // scheduled kills at service boundaries
  bool recovery = true;    // supervision/watchdog dimension (DESIGN.md §8):
                           // seeds may enable the task supervisor, arm the
                           // watchdog, and plant a runaway task for it
  rw::RewriteOptions rewrite{};          // rewriter config for the planned mix
};

struct ChaosResult {
  uint64_t seed = 0;
  sim::SystemRun run;
  size_t tasks_planned = 0;
  size_t kills_planned = 0;
  bool supervision_planned = false;  // this seed enabled the supervisor
  bool watchdog_planned = false;     // this seed armed the watchdog
  bool runaway_planned = false;      // last task is the runaway spin loop
  uint64_t trace_hash = 0;   // FNV-1a over the full kernel event trace
  size_t trace_events = 0;

  // Violations, by oracle:
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  // One-line outcome summary for soak logs.
  std::string summary() const;
};

// Plan and execute the run for `opts.seed`.
ChaosResult run_chaos(const ChaosOptions& opts);

// --- Network chaos ----------------------------------------------------------
// One seed plans a whole dissemination under fire: a random receiver count,
// seeded link-fault rates, and a seeded node crash/reboot schedule
// (NodeFaultPolicy), then requires convergence — every node's installed
// blob byte-identical to the base's — and a byte-identical replay.

struct NetChaosOptions {
  uint64_t seed = 1;
  uint64_t max_cycles = 6'000'000'000ULL;
  // Shard workers for the intra-network parallel engine (NetConfig::
  // shards). Any value must reproduce the serial run byte-identically —
  // the replay oracle below enforces it when tests sweep shard counts.
  unsigned shards = 1;
  // Force the adversarial dimension on (normally ~1 in 4 seeds draws a
  // hostile node). Forcing does not shift the planner stream: the
  // adversarial draws are unconditional, this only overrides the roll.
  bool force_adversary = false;
};

struct NetChaosResult {
  uint64_t seed = 0;
  size_t nodes = 0;
  uint32_t blob_bytes = 0;
  uint64_t cycles = 0;
  uint64_t trace_digest = 0;
  size_t trace_events = 0;
  uint32_t crashes = 0;       // node crashes that fired
  uint32_t reboots = 0;
  uint64_t resumed_chunks = 0;  // chunks restored from persistent stores
  uint64_t store_writes = 0;
  // Adversarial dimension (DESIGN.md §11): this seed ran with a hostile
  // node injecting raw attack frames, MAC authentication on.
  bool hostile = false;
  uint16_t hostile_node = 0;
  uint64_t hostile_frames = 0;  // attack frames the hostile node injected
  uint64_t auth_rejects = 0;    // forged images killed at the MAC gate
  uint64_t frames_squelched = 0;  // liveness-flood frames the base ignored
  // Lemon-rollout dimension (DESIGN.md §12): this seed continued past
  // dissemination into a health-gated staged rollout with 1-2 seeded lemon
  // images (runaway / crash-boot / wedge trials), under authentication.
  bool rollout = false;
  uint32_t rollout_lemons = 0;
  uint32_t rollout_waves = 0;
  uint32_t rollout_confirmed = 0;
  uint32_t rollout_rolled_back = 0;
  uint32_t rollout_gave_up = 0;
  bool rollout_halted = false;  // failure budget exceeded; fleet rolled back

  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

// Plan and execute the network run for `opts.seed` (runs it twice: the
// second run checks deterministic replay of the full event trace).
NetChaosResult run_net_chaos(const NetChaosOptions& opts);

// CLI driver shared by bench/chaos_soak: sweeps seeds or replays one.
//   chaos_soak [--seeds N] [--start S] [--chaos-seed K] [--max-cycles C]
//              [--net-seeds N] [--net-seed K] [--adv-seeds N] [--jobs N] [-v]
// --adv-seeds sweeps N network seeds with the adversarial dimension forced
// on (every seed hosts a hostile node; MAC authentication enabled).
// Returns a process exit code (0 = all seeds clean).
int soak_main(int argc, char** argv);

}  // namespace sensmart::chaos
