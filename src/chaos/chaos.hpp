// The chaos harness: one 64-bit seed deterministically plans a perturbed
// system run — an adversarial task mix, randomized kernel timing
// (trap-interval jitter, slice length), starvation-level stack configs
// that force relocation storms, and scheduled task kills at arbitrary
// service boundaries — then executes it with the kernel auditor enabled
// and reports every invariant or data-integrity violation.
//
// Replay: the same seed with the same binary reproduces the identical
// kernel event trace (compare `trace_hash`), so any violation found by a
// seed sweep can be re-run and debugged with `chaos_soak --chaos-seed N`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/harness.hpp"

namespace sensmart::chaos {

struct ChaosOptions {
  uint64_t seed = 1;
  uint64_t max_cycles = 300'000'000ULL;  // every chaos task is finite
  bool audit = true;                     // kernel auditor on
  bool inject_kills = true;              // scheduled kills at service boundaries
  rw::RewriteOptions rewrite{};          // rewriter config for the planned mix
};

struct ChaosResult {
  uint64_t seed = 0;
  sim::SystemRun run;
  size_t tasks_planned = 0;
  size_t kills_planned = 0;
  uint64_t trace_hash = 0;   // FNV-1a over the full kernel event trace
  size_t trace_events = 0;

  // Violations, by oracle:
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  // One-line outcome summary for soak logs.
  std::string summary() const;
};

// Plan and execute the run for `opts.seed`.
ChaosResult run_chaos(const ChaosOptions& opts);

// CLI driver shared by bench/chaos_soak: sweeps seeds or replays one.
//   chaos_soak [--seeds N] [--start S] [--chaos-seed K] [--max-cycles C] [-v]
// Returns a process exit code (0 = all seeds clean).
int soak_main(int argc, char** argv);

}  // namespace sensmart::chaos
