#include "chaos/adversarial.hpp"

#include <string>

#include "chaos/prng.hpp"
#include "emu/io_map.hpp"

namespace sensmart::chaos {

using assembler::Assembler;
using assembler::Image;

Image deep_recursion_program(uint16_t depth, uint8_t frame_pushes,
                             uint16_t name_tag) {
  Assembler a("rec" + std::to_string(name_tag));
  a.ldi16(20, depth);
  a.rcall("rec");
  a.ldi(16, 0x01);
  a.sts(emu::kHostOut, 16);
  a.halt(0);

  a.label("rec");
  a.dec16(20);
  a.breq("base");
  for (uint8_t i = 0; i < frame_pushes; ++i) a.push(static_cast<uint8_t>(2 + i));
  a.rcall("rec");
  for (uint8_t i = frame_pushes; i-- > 0;) a.pop(static_cast<uint8_t>(2 + i));
  a.ret();
  a.label("base");
  a.ret();
  return a.finish();
}

Image stack_storm_program(uint16_t bursts, uint16_t amplitude, uint16_t seed) {
  Prng r(0x57F0A11ULL + seed);
  Assembler a("storm" + std::to_string(seed));
  for (uint16_t b = 0; b < bursts; ++b) {
    const uint16_t n =
        static_cast<uint16_t>(24 + r.below(amplitude ? amplitude : 1));
    const std::string pu = "pu" + std::to_string(b);
    const std::string po = "po" + std::to_string(b);
    a.ldi16(24, n);
    a.label(pu);
    a.push(2);
    a.dec16(24);
    a.brne(pu);
    a.ldi16(24, n);
    a.label(po);
    a.pop(2);
    a.dec16(24);
    a.brne(po);
  }
  a.ldi(16, 0x02);
  a.sts(emu::kHostOut, 16);
  a.halt(0);
  return a.finish();
}

Image pattern_verifier_program(uint16_t heap_bytes, uint16_t sleep_ticks,
                               uint8_t rounds, uint16_t seed) {
  Assembler a("oracle" + std::to_string(seed));
  const uint16_t pat = a.var("pat", heap_bytes);
  const uint8_t start = static_cast<uint8_t>(0x11 + (seed & 0xEF));

  a.ldi(22, rounds);
  a.label("round");
  // Fill the heap with the seeded rolling pattern.
  a.ldi16(26, pat);
  a.ldi16(24, heap_bytes);
  a.ldi(16, start);
  a.label("fill");
  a.st_x_inc(16);
  a.subi(16, 0x95);  // step the pattern (adds 0x6B mod 256)
  a.dec16(24);
  a.brne("fill");
  // Sleep while the neighbours churn regions across this one.
  a.lds(24, emu::kTcnt3L);
  a.lds(25, emu::kTcnt3H);
  a.ldi16(18, sleep_ticks);
  a.add(24, 18);
  a.adc(25, 19);
  a.sts(emu::kSleepTargetL, 24);
  a.sts(emu::kSleepTargetH, 25);
  a.sleep();
  // Verify every byte; r20 counts corruptions this round.
  a.ldi(20, 0);
  a.ldi16(26, pat);
  a.ldi16(24, heap_bytes);
  a.ldi(16, start);
  a.label("chk");
  a.ld_x_inc(18);
  a.cp(18, 16);
  a.breq("okb");
  a.inc(20);
  a.label("okb");
  a.subi(16, 0x95);
  a.dec16(24);
  a.brne("chk");
  a.sts(emu::kHostOut, 20);
  a.dec(22);
  a.brne("round");
  a.halt(0);
  return a.finish();
}

Image runaway_program(uint16_t name_tag) {
  Assembler a("runaway" + std::to_string(name_tag));
  a.ldi(16, 0);
  a.label("spin");
  a.inc(16);
  a.dec(17);
  a.rjmp("spin");
  return a.finish();
}

}  // namespace sensmart::chaos
