// Synthetic adversarial tasks for chaos runs: workloads chosen not to be
// realistic but to put the worst plausible pressure on the relocation
// engine — deep recursion racing the red zone, sawtooth stack storms that
// force donate/reclaim cycles, and a self-verifying pattern task that acts
// as a data-integrity oracle while its neighbours churn.
#pragma once

#include <cstdint>

#include "assembler/assembler.hpp"

namespace sensmart::chaos {

// Recursive descent to `depth` levels, each level pushing `frame_pushes`
// register bytes plus the 2-byte return address. Emits 0x01 to the host
// port and exits 0 on the way back up. Stack demand grows to roughly
// depth * (frame_pushes + 2) bytes, far past any chaos initial allocation.
assembler::Image deep_recursion_program(uint16_t depth, uint8_t frame_pushes,
                                        uint16_t name_tag);

// A sawtooth stack storm: `bursts` rounds of pushing a per-round number of
// bytes (24..24+amplitude) and popping them all back, so the task's stack
// need repeatedly spikes and collapses — the donate/reclaim worst case of
// §IV-C3. The per-round sizes are derived from `seed` at build time, so
// the image (and the run) is deterministic. Exits 0.
assembler::Image stack_storm_program(uint16_t bursts, uint16_t amplitude,
                                     uint16_t seed);

// The data-integrity oracle: fills `heap_bytes` of its heap with a seeded
// byte pattern, sleeps `sleep_ticks` Timer3 ticks to let neighbours force
// relocations across it, then re-verifies every byte; `rounds` times.
// Emits one byte per round - the count of corrupted bytes (0 = intact) -
// then halts with exit code 0.
assembler::Image pattern_verifier_program(uint16_t heap_bytes,
                                          uint16_t sleep_ticks,
                                          uint8_t rounds, uint16_t seed);

// A runaway task: an infinite register-only spin loop. Its backward branch
// still relays through the kernel (so preemption works and neighbours keep
// running), but it never makes a non-branch service call — the exact shape
// the watchdog exists to contain. Without a watchdog it never exits.
assembler::Image runaway_program(uint16_t name_tag);

}  // namespace sensmart::chaos
