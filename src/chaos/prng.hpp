// Deterministic PRNG for the chaos harness (SplitMix64). Every perturbation
// a chaos run applies is derived from one 64-bit seed through this
// generator, so a seed fully determines the run and any failure replays
// bit-identically with the same binary.
#pragma once

#include <cstdint>

namespace sensmart::chaos {

class Prng {
 public:
  explicit Prng(uint64_t seed) : s_(seed) {}

  uint64_t next() {
    uint64_t z = (s_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform-ish in [0, bound); bound > 0. The modulo bias is irrelevant for
  // fault injection (we need coverage, not statistics).
  uint32_t below(uint32_t bound) {
    return static_cast<uint32_t>(next() % bound);
  }

  // Uniform-ish in [lo, hi] inclusive.
  uint32_t range(uint32_t lo, uint32_t hi) { return lo + below(hi - lo + 1); }

  // True with probability ~pct/100.
  bool percent(uint32_t pct) { return below(100) < pct; }

 private:
  uint64_t s_;
};

}  // namespace sensmart::chaos
