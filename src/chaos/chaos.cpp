#include "chaos/chaos.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

#include "apps/treesearch.hpp"
#include "chaos/adversarial.hpp"
#include "chaos/hostile.hpp"
#include "chaos/prng.hpp"
#include "host/parallel.hpp"
#include "net/netsim.hpp"

namespace sensmart::chaos {

namespace {

// FNV-1a over the raw fields of every recorded kernel event. Two runs of
// the same seed must produce the same hash (deterministic replay).
uint64_t hash_trace(const kern::KernelTrace& trace) {
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  for (const kern::TraceEvent& e : trace.events()) {
    mix(e.cycle);
    mix(uint64_t(e.kind));
    mix(e.a);
    mix(e.b);
  }
  mix(trace.events().size());
  mix(trace.dropped());
  return h;
}

}  // namespace

ChaosResult run_chaos(const ChaosOptions& opts) {
  Prng r(opts.seed);
  ChaosResult res;
  res.seed = opts.seed;

  // --- Plan the task mix ------------------------------------------------------
  std::vector<assembler::Image> images;
  // Task 0 is always the data-integrity oracle: a pattern verifier whose
  // heap sits in the churn zone.
  images.push_back(pattern_verifier_program(
      static_cast<uint16_t>(96 + r.below(160)),
      static_cast<uint16_t>(200 + r.below(600)),
      static_cast<uint8_t>(2 + r.below(3)), static_cast<uint16_t>(opts.seed)));

  const size_t ntasks = 3 + r.below(5);  // 3..7
  for (size_t i = 1; i < ntasks; ++i) {
    switch (r.below(4)) {
      case 0: {
        apps::TreeSearchParams p;
        p.nodes_per_tree = static_cast<uint16_t>(8 + 4 * r.below(5));
        p.trees = static_cast<uint8_t>(1 + r.below(2));
        p.searches = static_cast<uint16_t>(16 + 8 * r.below(5));
        p.seed = static_cast<uint16_t>(r.next());
        images.push_back(apps::tree_search_program(p));
        break;
      }
      case 1:
        images.push_back(deep_recursion_program(
            static_cast<uint16_t>(24 + r.below(48)),
            static_cast<uint8_t>(2 + r.below(5)),
            static_cast<uint16_t>(r.next() & 0x7FFF)));
        break;
      case 2:
        images.push_back(stack_storm_program(
            static_cast<uint16_t>(8 + r.below(24)),
            static_cast<uint16_t>(40 + r.below(120)),
            static_cast<uint16_t>(r.next() & 0x7FFF)));
        break;
      default:
        images.push_back(apps::data_feed_program(
            static_cast<uint16_t>(8 + r.below(40)),
            static_cast<uint16_t>(48 + r.below(128))));
        break;
    }
  }
  // --- Plan the kernel perturbation ------------------------------------------
  sim::RunSpec spec;
  spec.rewrite = opts.rewrite;
  spec.kernel.audit = opts.audit;
  // Starvation-level initial stacks force relocation storms (§IV-C3).
  spec.kernel.initial_stack = static_cast<uint16_t>(24 + r.below(41));
  spec.kernel.min_stack = 24;
  spec.kernel.stack_margin = static_cast<uint16_t>(4 + r.below(9));
  static constexpr uint16_t kTrapIntervals[] = {16, 32, 64, 128, 256};
  spec.kernel.trap_interval = kTrapIntervals[r.below(5)];
  spec.kernel.slice_cycles = 2000 + r.below(8000);
  spec.max_cycles = opts.max_cycles;

  // Supervision dimension (planned before kills so injected kills can
  // target the runaway too). A runaway is planted only under an armed
  // watchdog: nothing else ever terminates it.
  if (opts.recovery) {
    kern::SupervisorConfig& sup = spec.kernel.supervise;
    sup.enabled = r.below(100) < 60;
    sup.max_restarts = static_cast<uint16_t>(1 + r.below(3));
    sup.backoff_cycles = 4'000 + r.below(30'000);
    sup.backoff_cap_exp = 3 + r.below(4);
    sup.healthy_services = 64 + r.below(512);
    // The minimum watchdog budget must exceed any legitimate task's
    // longest service-free stretch; chaos tasks touch memory (a service)
    // every few instructions, so 40k cycles is orders of magnitude clear.
    if (r.below(100) < 50) sup.watchdog_cycles = 40'000 + r.below(120'000);
    res.supervision_planned = sup.enabled;
    res.watchdog_planned = sup.watchdog_cycles > 0;
    if (res.watchdog_planned && r.below(100) < 60) {
      images.push_back(
          runaway_program(static_cast<uint16_t>(opts.seed & 0x7FFF)));
      res.runaway_planned = true;
    }
  }
  res.tasks_planned = images.size();

  if (opts.inject_kills) {
    const size_t nkills = r.below(4);  // 0..3
    std::vector<kern::InjectedKill> kills;
    for (size_t i = 0; i < nkills; ++i)
      kills.push_back(
          {100 + r.below(6'000),
           static_cast<uint8_t>(r.below(uint32_t(images.size())))});
    std::sort(kills.begin(), kills.end(),
              [](const kern::InjectedKill& a, const kern::InjectedKill& b) {
                return a.at_service_call < b.at_service_call;
              });
    spec.kernel.injected_kills = kills;
    res.kills_planned = kills.size();
  }

  // --- Execute ----------------------------------------------------------------
  kern::KernelTrace trace(1 << 16);
  spec.trace = &trace;
  res.run = sim::run_system(images, spec);
  res.trace_hash = hash_trace(trace);
  res.trace_events = trace.events().size();

  // --- Oracles ----------------------------------------------------------------
  for (const std::string& a : res.run.audit_log)
    res.violations.push_back("audit: " + a);
  if (!res.run.invariant_error.empty())
    res.violations.push_back("final invariants: " + res.run.invariant_error);
  if (res.run.stop != emu::StopReason::Halted)
    res.violations.push_back("run did not halt within the cycle budget");
  const uint8_t runaway_id =
      static_cast<uint8_t>(res.tasks_planned ? res.tasks_planned - 1 : 0);
  for (const kern::Task& t : res.run.tasks) {
    const bool is_runaway = res.runaway_planned && t.id == runaway_id;
    if (t.state == kern::TaskState::Killed &&
        t.kill_reason != kern::KillReason::Injected &&
        t.kill_reason != kern::KillReason::OutOfStackMemory &&
        !(is_runaway && t.kill_reason == kern::KillReason::Watchdog)) {
      std::ostringstream e;
      e << "task " << int(t.id) << " killed for " << to_string(t.kill_reason)
        << " (chaos tasks are well-formed; this indicates a kernel bug)";
      res.violations.push_back(e.str());
    }
    // Under supervision a kill is terminal only through quarantine: a task
    // left Killed without the quarantine mark means the supervisor lost it.
    if (res.supervision_planned && t.state == kern::TaskState::Killed &&
        !t.quarantined) {
      std::ostringstream e;
      e << "task " << int(t.id)
        << " terminally killed but never quarantined under supervision";
      res.violations.push_back(e.str());
    }
    if (is_runaway) {
      // The watchdog must contain the runaway: fired at least once, and the
      // task must be dead by the end (quarantined when supervised).
      if (t.watchdog_fires == 0 && t.state != kern::TaskState::Killed)
        res.violations.push_back(
            "runaway task survived with no watchdog fire");
      if (t.state != kern::TaskState::Killed)
        res.violations.push_back("runaway task not terminated");
      else if (res.supervision_planned && !t.quarantined)
        res.violations.push_back("runaway task killed but not quarantined");
    }
  }
  if (!res.run.tasks.empty() &&
      res.run.tasks[0].state == kern::TaskState::Done) {
    for (uint8_t b : res.run.tasks[0].host_out)
      if (b != 0) {
        std::ostringstream e;
        e << "data oracle: " << int(b)
          << " heap bytes corrupted across relocations";
        res.violations.push_back(e.str());
        break;
      }
  }
  return res;
}

std::string ChaosResult::summary() const {
  std::ostringstream os;
  os << "seed " << seed << ": " << tasks_planned << " tasks, "
     << run.kernel_stats.relocations << " relocs, "
     << run.kernel_stats.kills << " kills (" << run.kernel_stats.injected_kills
     << " injected), " << run.kernel_stats.restarts << " restarts, "
     << run.kernel_stats.quarantines << " quarantines, "
     << run.kernel_stats.watchdog_fires << " wd, "
     << run.kernel_stats.audit_checks << " audits, "
     << run.cycles << " cy, trace " << std::hex << trace_hash << std::dec
     << (ok() ? " [ok]" : " [VIOLATION]");
  return os.str();
}

NetChaosResult run_net_chaos(const NetChaosOptions& opts) {
  NetChaosResult res;
  res.seed = opts.seed;

  // --- Plan the scenario ------------------------------------------------------
  // A distinct stream from the kernel-chaos planner so the two sweeps
  // never alias.
  Prng r(opts.seed ^ 0x4E45544348414FULL);  // "NETCHAO"
  net::NetConfig cfg;
  cfg.nodes = 2 + r.below(4);  // 2..5 receivers
  cfg.chaos_seed = opts.seed;
  cfg.max_cycles = opts.max_cycles;
  cfg.shards = opts.shards;  // never consulted by the planner PRNG
  cfg.link.drop_pct = r.below(21);
  cfg.link.dup_pct = r.below(6);
  cfg.link.reorder_pct = r.below(6);
  cfg.link.corrupt_pct = r.below(6);
  cfg.node_faults.crash_pct = 30 + r.below(71);  // 30..100
  cfg.node_faults.max_crashes_per_node = 1 + r.below(2);
  cfg.node_faults.down_min_bytes = 64 + r.below(128);
  cfg.node_faults.down_max_bytes =
      cfg.node_faults.down_min_bytes + 256 + r.below(768);
  cfg.node_faults.wipe_pct = r.below(51);
  // Mesh dimension: roughly half the seeds run on a spatial topology
  // (line/grid/random placement, DESIGN.md §10), adding CSMA collisions,
  // duplicate suppression, peer chunk serving — and, through the seeded
  // crash/reboot schedule above, parent churn and per-node link flaps
  // (a node down takes all its links down). Both draws are unconditional
  // so the planner stream stays aligned whichever way the roll goes.
  const uint32_t mesh_roll = r.below(2);
  const uint32_t mesh_kind = r.below(3);
  if (mesh_roll) {
    cfg.topo.kind = mesh_kind == 0   ? net::TopologyKind::Line
                    : mesh_kind == 1 ? net::TopologyKind::Grid
                                     : net::TopologyKind::Random;
    // Mesh end-games ride on relayed acks through a contended channel;
    // the convergence oracle requires the base to wait stragglers out.
    cfg.proto.node_give_up_probes = 0;
  }

  // The payload is an arbitrary seeded blob: dissemination is
  // content-agnostic, and the byte-equality oracle needs nothing more.
  std::vector<uint8_t> blob(300 + r.below(1200));
  for (auto& b : blob) b = static_cast<uint8_t>(r.next() & 0xFF);
  res.nodes = cfg.nodes;
  res.blob_bytes = static_cast<uint32_t>(blob.size());

  // Adversarial dimension (DESIGN.md §11): ~1 in 4 seeds converts one
  // receiver slot into a hostile node injecting seeded attack frames, with
  // MAC authentication turned on so forgeries are survivable. The draws
  // are unconditional (appended after every pre-existing draw) so honest
  // seeds plan — and trace — exactly as before this dimension existed.
  const uint32_t adv_roll = r.below(4);
  const uint16_t adv_node = static_cast<uint16_t>(1 + r.below(cfg.nodes));
  const uint32_t adv_intensity = 30 + r.below(51);  // 30..80% of TX slots
  const uint64_t adv_seed = r.next();
  const bool hostile = opts.force_adversary || adv_roll == 0;
  if (hostile) {
    cfg.proto.auth = true;
    cfg.hostile_node = adv_node;
    // The hostile node never completes, so the base must be allowed to
    // give it up — even on a mesh, where honest seeds wait stragglers out.
    if (mesh_roll) cfg.proto.node_give_up_probes = 24;
    res.hostile = true;
    res.hostile_node = adv_node;
  }

  // Lemon-rollout dimension (DESIGN.md §12): ~1 in 3 honest seeds continues
  // past dissemination into a staged wave-by-wave upgrade — the fleet
  // starts on a seeded "old" image, and 1-2 seeded lemon trial behaviors
  // (supervision runaway, crash mid-probation, long wedge) are planted so
  // the health gate, automatic rollback, and the fleet-wide failure budget
  // all get exercised under the same loss/crash schedule. Every draw is
  // unconditional (appended after the adversarial draws), so all
  // pre-existing seed plans — and their golden traces — are untouched.
  const uint32_t ro_roll = r.below(3);
  const uint32_t ro_wave = 1 + r.below(3);          // 1..3 nodes per wave
  const uint32_t ro_budget = r.below(2);            // 0..1 tolerated failures
  const uint64_t ro_probation = 1500 + r.below(3000);  // byte-times
  const uint32_t ro_nlemons = 1 + r.below(2);
  struct LemonPlan {
    uint16_t node = 0;
    uint32_t kind = 0;  // 0 runaway, 1 crash-boot, 2 wedge
    uint32_t at_pct = 0;
    uint32_t sev = 0;
  };
  LemonPlan lemon_plan[2];
  for (LemonPlan& lp : lemon_plan) {
    lp.node = static_cast<uint16_t>(1 + r.below(uint32_t(cfg.nodes)));
    lp.kind = r.below(3);
    lp.at_pct = 20 + r.below(60);
    lp.sev = 1 + r.below(3);
  }
  std::vector<uint8_t> old_image(200 + r.below(400));
  for (auto& b : old_image) b = static_cast<uint8_t>(r.next() & 0xFF);
  const bool rollout = !hostile && ro_roll == 0;
  if (rollout) {
    cfg.rollout.enabled = true;
    cfg.rollout.wave_size = ro_wave;
    cfg.rollout.failure_budget = ro_budget;
    cfg.rollout.probation_bytes = ro_probation;
    // Control/health frames ride authenticated on rollout seeds, so the
    // tag paths run under loss/duplication/corruption too.
    cfg.proto.auth = true;
    // A wiped store loses slot A — the very image the rollback oracle
    // requires the fleet to fall back to — so wipes stay off here.
    cfg.node_faults.wipe_pct = 0;
    res.rollout = true;
    res.rollout_lemons = ro_nlemons;
  }
  auto lemon_behavior = [](const LemonPlan& lp) {
    net::TrialBehavior b;
    b.at_pct = lp.at_pct;
    switch (lp.kind) {
      case 0:
        b.kind = net::TrialBehavior::Kind::Runaway;
        b.restarts = lp.sev;
        b.quarantines = lp.sev;
        b.watchdog_fires = lp.sev > 2 ? 1 : 0;
        break;
      case 1:
        b.kind = net::TrialBehavior::Kind::CrashBoot;
        b.down_bytes = 256 * lp.sev;
        break;
      default:
        b.kind = net::TrialBehavior::Kind::Wedge;
        b.wedge_bytes = 10'000 * lp.sev;
        break;
    }
    return b;
  };

  // --- Execute twice: the second run is the replay oracle ---------------------
  // One run's observable surface, shared between the plain-dissemination
  // and staged-rollout shapes of a seed.
  struct RunView {
    uint64_t digest = 0;
    uint64_t cycles = 0;
    size_t events = 0;
    net::DisseminationResult dissem;
    net::RolloutResult roll;  // valid only on rollout seeds
  };
  bool first_run = true;
  auto one_run = [&] {
    net::NetSim sim(cfg, blob);
    // A fresh attacker per run: its PRNG and replay corpus are part of the
    // deterministic state the replay oracle compares.
    HostileProfile hp;
    hp.seed = adv_seed;
    hp.node = adv_node;
    hp.version = cfg.proto.version;
    hp.nodes = cfg.nodes;
    hp.chunk_payload = cfg.proto.chunk_payload;
    hp.intensity_pct = adv_intensity;
    HostileNode attacker(hp);
    if (hostile) sim.set_hostile_model(&attacker);
    RunView v;
    if (rollout) {
      sim.set_initial_image(old_image, 0);
      for (uint32_t i = 0; i < ro_nlemons; ++i)
        sim.set_trial_behavior(lemon_plan[i].node,
                               lemon_behavior(lemon_plan[i]));
      v.roll = sim.rollout();
      v.dissem = v.roll.dissem;
      v.digest = v.roll.trace_digest;
      v.cycles = v.roll.cycles;
      v.events = v.roll.trace_events;
    } else {
      v.dissem = sim.disseminate();
      v.digest = v.dissem.trace_digest;
      v.cycles = v.dissem.cycles;
      v.events = v.dissem.trace_events;
    }
    if (hostile && first_run) res.hostile_frames = attacker.frames_emitted();
    // Blob equality is checked inside the closure (NetSim owns the
    // per-node stores), violations recorded on the shared result.
    for (size_t id = 1; id <= cfg.nodes; ++id) {
      if (!sim.node_complete(id)) continue;
      if (sim.node_blob(id) != blob) {
        std::ostringstream e;
        e << "node " << id << " verified an image that differs from the "
          << "base blob (CRC passed on corrupt bytes?)";
        res.violations.push_back(e.str());
      }
    }
    if (rollout && first_run) {
      // Rollout ground truth lives in the persistent stores: whatever the
      // lemons did, a node must end with no trial active and byte-exactly
      // on the old or the new image — never a forgery, never a
      // half-written install — and the base's per-node verdict must match
      // the bytes actually on flash.
      for (size_t id = 1; id <= cfg.nodes; ++id) {
        const emu::ImageStore& st = sim.node_store(id);
        const emu::ImageSlot& act = st.slots[st.active_slot];
        const net::NodeRolloutStats& ns = v.roll.nodes[id];
        std::ostringstream e;
        e << "rollout node " << id << ": ";
        if (st.trial_active) {
          e << "trial left active after termination";
          res.violations.push_back(e.str());
        } else if (act.image != old_image && act.image != blob) {
          e << "active image is neither the old nor the new blob";
          res.violations.push_back(e.str());
        } else if (v.roll.halted) {
          // On a halt every member — including ones confirmed before the
          // budget blew — must have been rolled back to the old image.
          if (ns.member && act.image != old_image) {
            e << "fleet halted but this member kept the new image";
            res.violations.push_back(e.str());
          }
        } else if (ns.confirmed && !ns.rolled_back && act.image != blob) {
          e << "base counted it confirmed but flash holds the old image";
          res.violations.push_back(e.str());
        } else if (ns.rolled_back && !ns.confirmed && act.image != old_image) {
          e << "base saw a rollback but flash holds the new image";
          res.violations.push_back(e.str());
        }
      }
    }
    first_run = false;
    return v;
  };
  const RunView a = one_run();
  const RunView b = one_run();

  res.cycles = a.cycles;
  res.trace_digest = a.digest;
  res.trace_events = a.events;
  if (rollout) {
    res.rollout_waves = a.roll.waves;
    res.rollout_confirmed = a.roll.confirmed;
    res.rollout_rolled_back = a.roll.rolled_back;
    res.rollout_gave_up = a.roll.gave_up;
    res.rollout_halted = a.roll.halted;
  }
  for (const auto& n : a.dissem.nodes) {
    res.crashes += n.crashes;
    res.reboots += n.reboots;
    res.resumed_chunks += n.resumed_chunks;
    res.store_writes += n.store_writes;
    res.auth_rejects += n.auth_rejects;
  }
  res.frames_squelched = a.dissem.base.frames_squelched;

  // --- Oracles ----------------------------------------------------------------
  if (!hostile && !a.dissem.all_acked) {
    std::ostringstream e;
    e << "dissemination did not converge ("
      << (a.dissem.budget_exhausted ? "budget exhausted" : "nodes abandoned")
      << ", " << a.dissem.complete_nodes() << "/" << cfg.nodes << " complete";
    for (const auto& n : a.dissem.nodes)
      if (n.abort_reason != net::NodeAbortReason::None)
        e << ", " << to_string(n.abort_reason);
    e << ")";
    res.violations.push_back(e.str());
  }
  // Only meaningful when dissemination itself converged: rollout() skips
  // the wave phase entirely on a failed transfer (reported just above), so
  // budget_exhausted would double-count that failure as a phantom
  // orchestrator livelock.
  if (rollout && a.dissem.all_acked && a.roll.budget_exhausted) {
    std::ostringstream e;
    e << "rollout exhausted the cycle budget (" << a.roll.confirmed
      << " confirmed, " << a.roll.rolled_back
      << " rolled back — orchestrator livelock?)";
    res.violations.push_back(e.str());
  }
  if (hostile) {
    // Under attack the bar is survival, not full convergence: the hostile
    // slot never completes, and an honest node may be cleanly abandoned.
    // What must never happen: the run livelocking into the cycle budget
    // (the attacker wins by denial forever) or a forged install (caught by
    // the blob-equality check inside one_run, since the forged image can
    // never equal the base blob).
    if (a.dissem.budget_exhausted) {
      std::ostringstream e;
      e << "hostile run exhausted the cycle budget ("
        << a.dissem.complete_nodes() << "/" << cfg.nodes
        << " complete — livelock under attack?)";
      res.violations.push_back(e.str());
    }
  }
  if (a.digest != b.digest || a.cycles != b.cycles || a.events != b.events) {
    std::ostringstream e;
    e << "REPLAY MISMATCH: " << std::hex << a.digest << " vs " << b.digest
      << std::dec;
    res.violations.push_back(e.str());
  }
  return res;
}

std::string NetChaosResult::summary() const {
  std::ostringstream os;
  os << "net seed " << seed << ": " << nodes << " nodes, " << blob_bytes
     << " B, " << crashes << " crashes, " << reboots << " reboots, "
     << resumed_chunks << " resumed, " << store_writes << " writes, ";
  if (hostile)
    os << "hostile @" << hostile_node << " (" << hostile_frames
       << " injected, " << auth_rejects << " mac-rejects, " << frames_squelched
       << " squelched), ";
  if (rollout)
    os << "rollout (" << rollout_lemons << " lemons, " << rollout_waves
       << " waves, " << rollout_confirmed << " confirmed, "
       << rollout_rolled_back << " rolled back, " << rollout_gave_up
       << " gave up" << (rollout_halted ? ", HALTED" : "") << "), ";
  os << cycles << " cy, trace " << std::hex << trace_digest << std::dec
     << (ok() ? " [ok]" : " [VIOLATION]");
  return os.str();
}

int soak_main(int argc, char** argv) {
  uint64_t seeds = 200, start = 1, max_cycles = 300'000'000ULL;
  uint64_t net_seeds = 0, adv_seeds = 0;
  bool single = false, net_single = false, verbose = false;
  uint64_t single_seed = 0, net_single_seed = 0;
  unsigned jobs_req = 1;
  for (int i = 1; i < argc; ++i) {
    auto next_val = [&](const char* flag) -> uint64_t {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return std::strtoull(argv[++i], nullptr, 0);
    };
    if (std::strcmp(argv[i], "--seeds") == 0) {
      seeds = next_val("--seeds");
    } else if (std::strcmp(argv[i], "--start") == 0) {
      start = next_val("--start");
    } else if (std::strcmp(argv[i], "--chaos-seed") == 0) {
      single = true;
      single_seed = next_val("--chaos-seed");
    } else if (std::strcmp(argv[i], "--net-seeds") == 0) {
      net_seeds = next_val("--net-seeds");
    } else if (std::strcmp(argv[i], "--net-seed") == 0) {
      net_single = true;
      net_single_seed = next_val("--net-seed");
    } else if (std::strcmp(argv[i], "--adv-seeds") == 0) {
      adv_seeds = next_val("--adv-seeds");
    } else if (std::strcmp(argv[i], "--max-cycles") == 0) {
      max_cycles = next_val("--max-cycles");
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs_req = static_cast<unsigned>(next_val("--jobs"));
    } else if (std::strcmp(argv[i], "-v") == 0) {
      verbose = true;
    } else {
      std::cerr << "usage: chaos_soak [--seeds N] [--start S] "
                   "[--chaos-seed K] [--net-seeds N] [--net-seed K] "
                   "[--adv-seeds N] [--max-cycles C] [--jobs N] [-v]\n";
      return 2;
    }
  }

  ChaosOptions opts;
  opts.max_cycles = max_cycles;

  if (net_single) {
    // Network replay mode: run_net_chaos already replays internally; run
    // the whole planner twice on top for an end-to-end identity check.
    NetChaosOptions no;
    no.seed = net_single_seed;
    const NetChaosResult a = run_net_chaos(no);
    const NetChaosResult b = run_net_chaos(no);
    std::cout << a.summary() << "\n";
    for (const std::string& v : a.violations) std::cout << "  " << v << "\n";
    if (a.trace_digest != b.trace_digest || a.cycles != b.cycles) {
      std::cout << "REPLAY MISMATCH: second run traced " << std::hex
                << b.trace_digest << std::dec << " over " << b.cycles
                << " cy\n";
      return 1;
    }
    std::cout << "replay: identical trace over " << a.trace_events
              << " events\n";
    return a.ok() ? 0 : 1;
  }

  if (single) {
    // Replay mode: run the seed twice and require an identical trace.
    opts.seed = single_seed;
    const ChaosResult a = run_chaos(opts);
    const ChaosResult b = run_chaos(opts);
    std::cout << a.summary() << "\n";
    for (const std::string& v : a.violations) std::cout << "  " << v << "\n";
    if (a.trace_hash != b.trace_hash || a.run.cycles != b.run.cycles) {
      std::cout << "REPLAY MISMATCH: second run traced " << std::hex
                << b.trace_hash << std::dec << " over " << b.run.cycles
                << " cy\n";
      return 1;
    }
    std::cout << "replay: identical trace over " << a.trace_events
              << " events\n";
    return a.ok() ? 0 : 1;
  }

  // Every seed is an independent deterministic run, so the sweep is a
  // parallel map: each item renders its own output lines into a buffer
  // and the main thread prints/aggregates them strictly in seed order.
  // Output and exit code are byte-identical for any --jobs value.
  struct SeedOutcome {
    uint64_t relocs = 0, injected = 0, audits = 0;
    bool violated = false;
    bool replay_mismatch = false;
    std::string lines;
  };
  const unsigned jobs =
      host::effective_jobs(jobs_req, static_cast<std::size_t>(seeds));
  const std::vector<SeedOutcome> outcomes = host::sweep_collect<SeedOutcome>(
      static_cast<std::size_t>(seeds), jobs, [&](std::size_t i) {
        ChaosOptions o = opts;
        o.seed = start + i;  // may wrap; still runs `seeds` runs
        const ChaosResult res = run_chaos(o);
        SeedOutcome out;
        out.relocs = res.run.kernel_stats.relocations;
        out.injected = res.run.kernel_stats.injected_kills;
        out.audits = res.run.kernel_stats.audit_checks;
        std::ostringstream os;
        if (!res.ok()) {
          out.violated = true;
          os << res.summary() << "\n";
          for (const std::string& v : res.violations) os << "  " << v << "\n";
          // The exact command that re-runs just this seed, for debugging.
          os << "  replay: chaos_soak --chaos-seed " << o.seed
             << " --max-cycles " << max_cycles << " -v\n";
        } else if (verbose) {
          os << res.summary() << "\n";
        }
        // Spot-check determinism on a subsample of the sweep.
        if (i % 25 == 0) {
          const ChaosResult again = run_chaos(o);
          if (again.trace_hash != res.trace_hash) {
            out.replay_mismatch = true;
            os << "seed " << o.seed << ": REPLAY MISMATCH\n";
          }
        }
        out.lines = os.str();
        return out;
      });

  uint64_t failures = 0, replay_mismatches = 0;
  uint64_t total_relocs = 0, total_injected = 0, total_audits = 0;
  for (const SeedOutcome& out : outcomes) {
    std::cout << out.lines;
    if (out.violated) ++failures;
    if (out.replay_mismatch) ++replay_mismatches;
    total_relocs += out.relocs;
    total_injected += out.injected;
    total_audits += out.audits;
  }
  if (seeds > 0)
    std::cout << "chaos_soak: " << seeds << " seeds (" << jobs << " job"
              << (jobs == 1 ? "" : "s") << "), " << failures << " violating, "
              << replay_mismatches << " replay mismatches, " << total_relocs
              << " relocations, " << total_injected << " injected kills, "
              << total_audits << " audit checks\n";

  // Network-chaos sweep: same deterministic parallel-map shape, so output
  // is byte-identical for any --jobs value.
  uint64_t net_failures = 0;
  if (net_seeds > 0) {
    struct NetOutcome {
      uint64_t crashes = 0, reboots = 0, resumed = 0;
      bool violated = false;
      std::string lines;
    };
    const unsigned net_jobs =
        host::effective_jobs(jobs_req, static_cast<std::size_t>(net_seeds));
    const std::vector<NetOutcome> net_outcomes =
        host::sweep_collect<NetOutcome>(
            static_cast<std::size_t>(net_seeds), net_jobs,
            [&](std::size_t i) {
              NetChaosOptions o;
              o.seed = start + i;
              const NetChaosResult res = run_net_chaos(o);
              NetOutcome out;
              out.crashes = res.crashes;
              out.reboots = res.reboots;
              out.resumed = res.resumed_chunks;
              std::ostringstream os;
              if (!res.ok()) {
                out.violated = true;
                os << res.summary() << "\n";
                for (const std::string& v : res.violations)
                  os << "  " << v << "\n";
                // The exact single-seed re-run (same planner stream as
                // sweep item i: seeds start at --start).
                os << "  replay: chaos_soak --seeds 0 --net-seeds 1 --start "
                   << o.seed << " -v\n";
              } else if (verbose) {
                os << res.summary() << "\n";
              }
              out.lines = os.str();
              return out;
            });
    uint64_t total_crashes = 0, total_reboots = 0, total_resumed = 0;
    for (const NetOutcome& out : net_outcomes) {
      std::cout << out.lines;
      if (out.violated) ++net_failures;
      total_crashes += out.crashes;
      total_reboots += out.reboots;
      total_resumed += out.resumed;
    }
    std::cout << "net_soak: " << net_seeds << " seeds (" << net_jobs
              << " job" << (net_jobs == 1 ? "" : "s") << "), " << net_failures
              << " violating, " << total_crashes << " crashes, "
              << total_reboots << " reboots, " << total_resumed
              << " chunks resumed\n";
  }

  // Adversarial sweep: network seeds with the hostile dimension forced on
  // (every run hosts an attacker; MAC authentication enabled). Same
  // deterministic parallel-map shape as the honest sweeps.
  uint64_t adv_failures = 0;
  if (adv_seeds > 0) {
    struct AdvOutcome {
      uint64_t injected = 0, rejects = 0, squelched = 0;
      bool violated = false;
      std::string lines;
    };
    const unsigned adv_jobs =
        host::effective_jobs(jobs_req, static_cast<std::size_t>(adv_seeds));
    const std::vector<AdvOutcome> adv_outcomes =
        host::sweep_collect<AdvOutcome>(
            static_cast<std::size_t>(adv_seeds), adv_jobs,
            [&](std::size_t i) {
              NetChaosOptions o;
              o.seed = start + i;
              o.force_adversary = true;
              const NetChaosResult res = run_net_chaos(o);
              AdvOutcome out;
              out.injected = res.hostile_frames;
              out.rejects = res.auth_rejects;
              out.squelched = res.frames_squelched;
              std::ostringstream os;
              if (!res.ok()) {
                out.violated = true;
                os << res.summary() << "\n";
                for (const std::string& v : res.violations)
                  os << "  " << v << "\n";
                os << "  replay: chaos_soak --seeds 0 --adv-seeds 1 --start "
                   << o.seed << " -v\n";
              } else if (verbose) {
                os << res.summary() << "\n";
              }
              out.lines = os.str();
              return out;
            });
    uint64_t total_injected = 0, total_rejects = 0, total_squelched = 0;
    for (const AdvOutcome& out : adv_outcomes) {
      std::cout << out.lines;
      if (out.violated) ++adv_failures;
      total_injected += out.injected;
      total_rejects += out.rejects;
      total_squelched += out.squelched;
    }
    std::cout << "adv_soak: " << adv_seeds << " seeds (" << adv_jobs << " job"
              << (adv_jobs == 1 ? "" : "s") << "), " << adv_failures
              << " violating, " << total_injected << " frames injected, "
              << total_rejects << " mac-rejects, " << total_squelched
              << " squelched\n";
  }
  return (failures == 0 && replay_mismatches == 0 && net_failures == 0 &&
          adv_failures == 0)
             ? 0
             : 1;
}

}  // namespace sensmart::chaos
