#include "chaos/chaos.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

#include "apps/treesearch.hpp"
#include "chaos/adversarial.hpp"
#include "chaos/prng.hpp"
#include "host/parallel.hpp"

namespace sensmart::chaos {

namespace {

// FNV-1a over the raw fields of every recorded kernel event. Two runs of
// the same seed must produce the same hash (deterministic replay).
uint64_t hash_trace(const kern::KernelTrace& trace) {
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  for (const kern::TraceEvent& e : trace.events()) {
    mix(e.cycle);
    mix(uint64_t(e.kind));
    mix(e.a);
    mix(e.b);
  }
  mix(trace.events().size());
  mix(trace.dropped());
  return h;
}

}  // namespace

ChaosResult run_chaos(const ChaosOptions& opts) {
  Prng r(opts.seed);
  ChaosResult res;
  res.seed = opts.seed;

  // --- Plan the task mix ------------------------------------------------------
  std::vector<assembler::Image> images;
  // Task 0 is always the data-integrity oracle: a pattern verifier whose
  // heap sits in the churn zone.
  images.push_back(pattern_verifier_program(
      static_cast<uint16_t>(96 + r.below(160)),
      static_cast<uint16_t>(200 + r.below(600)),
      static_cast<uint8_t>(2 + r.below(3)), static_cast<uint16_t>(opts.seed)));

  const size_t ntasks = 3 + r.below(5);  // 3..7
  for (size_t i = 1; i < ntasks; ++i) {
    switch (r.below(4)) {
      case 0: {
        apps::TreeSearchParams p;
        p.nodes_per_tree = static_cast<uint16_t>(8 + 4 * r.below(5));
        p.trees = static_cast<uint8_t>(1 + r.below(2));
        p.searches = static_cast<uint16_t>(16 + 8 * r.below(5));
        p.seed = static_cast<uint16_t>(r.next());
        images.push_back(apps::tree_search_program(p));
        break;
      }
      case 1:
        images.push_back(deep_recursion_program(
            static_cast<uint16_t>(24 + r.below(48)),
            static_cast<uint8_t>(2 + r.below(5)),
            static_cast<uint16_t>(r.next() & 0x7FFF)));
        break;
      case 2:
        images.push_back(stack_storm_program(
            static_cast<uint16_t>(8 + r.below(24)),
            static_cast<uint16_t>(40 + r.below(120)),
            static_cast<uint16_t>(r.next() & 0x7FFF)));
        break;
      default:
        images.push_back(apps::data_feed_program(
            static_cast<uint16_t>(8 + r.below(40)),
            static_cast<uint16_t>(48 + r.below(128))));
        break;
    }
  }
  res.tasks_planned = images.size();

  // --- Plan the kernel perturbation ------------------------------------------
  sim::RunSpec spec;
  spec.rewrite = opts.rewrite;
  spec.kernel.audit = opts.audit;
  // Starvation-level initial stacks force relocation storms (§IV-C3).
  spec.kernel.initial_stack = static_cast<uint16_t>(24 + r.below(41));
  spec.kernel.min_stack = 24;
  spec.kernel.stack_margin = static_cast<uint16_t>(4 + r.below(9));
  static constexpr uint16_t kTrapIntervals[] = {16, 32, 64, 128, 256};
  spec.kernel.trap_interval = kTrapIntervals[r.below(5)];
  spec.kernel.slice_cycles = 2000 + r.below(8000);
  spec.max_cycles = opts.max_cycles;

  if (opts.inject_kills) {
    const size_t nkills = r.below(4);  // 0..3
    std::vector<kern::InjectedKill> kills;
    for (size_t i = 0; i < nkills; ++i)
      kills.push_back({100 + r.below(6'000),
                       static_cast<uint8_t>(r.below(uint32_t(ntasks)))});
    std::sort(kills.begin(), kills.end(),
              [](const kern::InjectedKill& a, const kern::InjectedKill& b) {
                return a.at_service_call < b.at_service_call;
              });
    spec.kernel.injected_kills = kills;
    res.kills_planned = kills.size();
  }

  // --- Execute ----------------------------------------------------------------
  kern::KernelTrace trace(1 << 16);
  spec.trace = &trace;
  res.run = sim::run_system(images, spec);
  res.trace_hash = hash_trace(trace);
  res.trace_events = trace.events().size();

  // --- Oracles ----------------------------------------------------------------
  for (const std::string& a : res.run.audit_log)
    res.violations.push_back("audit: " + a);
  if (!res.run.invariant_error.empty())
    res.violations.push_back("final invariants: " + res.run.invariant_error);
  if (res.run.stop != emu::StopReason::Halted)
    res.violations.push_back("run did not halt within the cycle budget");
  for (const kern::Task& t : res.run.tasks) {
    if (t.state == kern::TaskState::Killed &&
        t.kill_reason != kern::KillReason::Injected &&
        t.kill_reason != kern::KillReason::OutOfStackMemory) {
      std::ostringstream e;
      e << "task " << int(t.id) << " killed for " << to_string(t.kill_reason)
        << " (chaos tasks are well-formed; this indicates a kernel bug)";
      res.violations.push_back(e.str());
    }
  }
  if (!res.run.tasks.empty() &&
      res.run.tasks[0].state == kern::TaskState::Done) {
    for (uint8_t b : res.run.tasks[0].host_out)
      if (b != 0) {
        std::ostringstream e;
        e << "data oracle: " << int(b)
          << " heap bytes corrupted across relocations";
        res.violations.push_back(e.str());
        break;
      }
  }
  return res;
}

std::string ChaosResult::summary() const {
  std::ostringstream os;
  os << "seed " << seed << ": " << tasks_planned << " tasks, "
     << run.kernel_stats.relocations << " relocs, "
     << run.kernel_stats.kills << " kills (" << run.kernel_stats.injected_kills
     << " injected), " << run.kernel_stats.audit_checks << " audits, "
     << run.cycles << " cy, trace " << std::hex << trace_hash << std::dec
     << (ok() ? " [ok]" : " [VIOLATION]");
  return os.str();
}

int soak_main(int argc, char** argv) {
  uint64_t seeds = 200, start = 1, max_cycles = 300'000'000ULL;
  bool single = false, verbose = false;
  uint64_t single_seed = 0;
  unsigned jobs_req = 1;
  for (int i = 1; i < argc; ++i) {
    auto next_val = [&](const char* flag) -> uint64_t {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return std::strtoull(argv[++i], nullptr, 0);
    };
    if (std::strcmp(argv[i], "--seeds") == 0) {
      seeds = next_val("--seeds");
    } else if (std::strcmp(argv[i], "--start") == 0) {
      start = next_val("--start");
    } else if (std::strcmp(argv[i], "--chaos-seed") == 0) {
      single = true;
      single_seed = next_val("--chaos-seed");
    } else if (std::strcmp(argv[i], "--max-cycles") == 0) {
      max_cycles = next_val("--max-cycles");
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs_req = static_cast<unsigned>(next_val("--jobs"));
    } else if (std::strcmp(argv[i], "-v") == 0) {
      verbose = true;
    } else {
      std::cerr << "usage: chaos_soak [--seeds N] [--start S] "
                   "[--chaos-seed K] [--max-cycles C] [--jobs N] [-v]\n";
      return 2;
    }
  }

  ChaosOptions opts;
  opts.max_cycles = max_cycles;

  if (single) {
    // Replay mode: run the seed twice and require an identical trace.
    opts.seed = single_seed;
    const ChaosResult a = run_chaos(opts);
    const ChaosResult b = run_chaos(opts);
    std::cout << a.summary() << "\n";
    for (const std::string& v : a.violations) std::cout << "  " << v << "\n";
    if (a.trace_hash != b.trace_hash || a.run.cycles != b.run.cycles) {
      std::cout << "REPLAY MISMATCH: second run traced " << std::hex
                << b.trace_hash << std::dec << " over " << b.run.cycles
                << " cy\n";
      return 1;
    }
    std::cout << "replay: identical trace over " << a.trace_events
              << " events\n";
    return a.ok() ? 0 : 1;
  }

  // Every seed is an independent deterministic run, so the sweep is a
  // parallel map: each item renders its own output lines into a buffer
  // and the main thread prints/aggregates them strictly in seed order.
  // Output and exit code are byte-identical for any --jobs value.
  struct SeedOutcome {
    uint64_t relocs = 0, injected = 0, audits = 0;
    bool violated = false;
    bool replay_mismatch = false;
    std::string lines;
  };
  const unsigned jobs =
      host::effective_jobs(jobs_req, static_cast<std::size_t>(seeds));
  const std::vector<SeedOutcome> outcomes = host::sweep_collect<SeedOutcome>(
      static_cast<std::size_t>(seeds), jobs, [&](std::size_t i) {
        ChaosOptions o = opts;
        o.seed = start + i;  // may wrap; still runs `seeds` runs
        const ChaosResult res = run_chaos(o);
        SeedOutcome out;
        out.relocs = res.run.kernel_stats.relocations;
        out.injected = res.run.kernel_stats.injected_kills;
        out.audits = res.run.kernel_stats.audit_checks;
        std::ostringstream os;
        if (!res.ok()) {
          out.violated = true;
          os << res.summary() << "\n";
          for (const std::string& v : res.violations) os << "  " << v << "\n";
        } else if (verbose) {
          os << res.summary() << "\n";
        }
        // Spot-check determinism on a subsample of the sweep.
        if (i % 25 == 0) {
          const ChaosResult again = run_chaos(o);
          if (again.trace_hash != res.trace_hash) {
            out.replay_mismatch = true;
            os << "seed " << o.seed << ": REPLAY MISMATCH\n";
          }
        }
        out.lines = os.str();
        return out;
      });

  uint64_t failures = 0, replay_mismatches = 0;
  uint64_t total_relocs = 0, total_injected = 0, total_audits = 0;
  for (const SeedOutcome& out : outcomes) {
    std::cout << out.lines;
    if (out.violated) ++failures;
    if (out.replay_mismatch) ++replay_mismatches;
    total_relocs += out.relocs;
    total_injected += out.injected;
    total_audits += out.audits;
  }
  std::cout << "chaos_soak: " << seeds << " seeds (" << jobs << " job"
            << (jobs == 1 ? "" : "s") << "), " << failures << " violating, "
            << replay_mismatches << " replay mismatches, " << total_relocs
            << " relocations, " << total_injected << " injected kills, "
            << total_audits << " audit checks\n";
  return (failures == 0 && replay_mismatches == 0) ? 0 : 1;
}

}  // namespace sensmart::chaos
