// Seeded hostile-node model for the adversarial dimension of the chaos
// harness (DESIGN.md §11). Plugged into NetSim::set_hostile_model, it
// occupies one receiver slot, overhears traffic, and spends its TX
// opportunities on a seeded mix of attacks against the dissemination
// protocol:
//
//   garbage      random byte spew (deframer resync pressure)
//   truncation   length-lying headers and cut-off frames (desync attacks)
//   replay       overheard frames re-sent verbatim (stale chunks, duplicate
//                Nacks) or bit-flipped — before or after the CRC bytes, so
//                both the CRC gate and the layers behind it get hit
//   forge_summary forged Summaries: a self-consistent announcement of the
//                attacker's own precomputed image (valid geometry + true
//                CRC-32 of the forged bytes, random MAC), plus bogus
//                variants (wrong version, inconsistent geometry, huge
//                image_bytes)
//   forge_data   Data chunks of the forged image — with forge_summary this
//                is a complete, CRC-consistent forged install attempt that
//                only the MAC gate can stop
//   nack_flood   Nack floods under its own and spoofed node ids (liveness
//                poisoning, retransmit-queue pressure)
//   ack_spoof    forged Acks claiming honest nodes' completions (with
//                random or absent tags)
//   collide      transmit over a busy channel (mesh capture collisions)
//
// Everything is a pure function of (profile, overheard bytes): adversarial
// runs replay byte-identically by seed and are shard-invariant, exactly
// like honest ones.
#pragma once

#include <cstdint>
#include <vector>

#include "chaos/prng.hpp"
#include "net/frame.hpp"
#include "net/netsim.hpp"

namespace sensmart::chaos {

struct HostileProfile {
  uint64_t seed = 1;
  uint16_t node = 1;         // id the attacker transmits under when spoofing
  uint8_t version = 1;       // protocol version to imitate
  uint16_t nodes = 4;        // fleet size (spoofed ids are drawn from it)
  uint8_t chunk_payload = 32;  // geometry imitated by the forged image
  uint32_t forged_bytes = 192;  // size of the precomputed forged image
  uint32_t intensity_pct = 60;  // share of TX opportunities used
  // Attack mix toggles (all on by default); tests narrow the mix to
  // demonstrate a single vector.
  bool garbage = true;
  bool truncation = true;
  bool replay = true;
  bool forge_summary = true;
  bool forge_data = true;
  bool nack_flood = true;
  bool ack_spoof = true;
  bool collide = true;
};

class HostileNode final : public net::HostileModel {
 public:
  explicit HostileNode(const HostileProfile& p);

  void observe(std::span<const uint8_t> bytes) override;
  bool emit(uint64_t now, bool air_clear, std::vector<uint8_t>& out) override;

  uint64_t frames_emitted() const { return emitted_; }
  // The forged image the attacker tries to install (for test assertions:
  // with auth off a victim may really complete with these bytes).
  const std::vector<uint8_t>& forged_blob() const { return forged_; }
  uint32_t forged_crc() const { return forged_crc_; }

 private:
  void emit_garbage(std::vector<uint8_t>& out);
  void emit_truncation(std::vector<uint8_t>& out);
  void emit_replay(std::vector<uint8_t>& out);
  void emit_forged_summary(std::vector<uint8_t>& out);
  void emit_forged_data(std::vector<uint8_t>& out);
  void emit_nack_flood(std::vector<uint8_t>& out);
  void emit_ack_spoof(std::vector<uint8_t>& out);
  uint16_t spoofed_id();

  HostileProfile p_;
  Prng r_;
  net::Deframer deframer_;              // parses overheard traffic
  std::vector<net::Frame> corpus_;      // replay material (bounded ring)
  size_t corpus_next_ = 0;
  std::vector<uint8_t> forged_;         // precomputed forged image
  uint32_t forged_crc_ = 0;
  uint16_t forged_chunks_ = 0;
  uint64_t forged_mac_ = 0;             // random (the attacker has no key)
  uint16_t next_forged_chunk_ = 0;      // round-robin serve cursor
  uint64_t emitted_ = 0;
};

}  // namespace sensmart::chaos
