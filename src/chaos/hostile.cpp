#include "chaos/hostile.hpp"

#include <algorithm>

namespace sensmart::chaos {

using net::Frame;
using net::FrameType;
using net::SummaryInfo;

namespace {
constexpr size_t kCorpusCap = 32;  // overheard frames kept for replay
}

HostileNode::HostileNode(const HostileProfile& p)
    : p_(p), r_(p.seed ^ 0x484F5354494CULL) {  // "HOSTIL"
  // Precompute the forged image once: seeded bytes, true CRC-32, random
  // MAC (the attacker holds no key). Announcing the real CRC of its own
  // bytes makes the forgery pass every integrity gate — with auth off the
  // install succeeds, which is exactly the vulnerability the MAC closes.
  forged_.resize(std::max<uint32_t>(p_.forged_bytes, 1));
  for (auto& b : forged_) b = static_cast<uint8_t>(r_.below(256));
  forged_crc_ = net::crc32(forged_);
  const uint32_t cp = std::max<uint8_t>(p_.chunk_payload, 1);
  forged_chunks_ = static_cast<uint16_t>((forged_.size() + cp - 1) / cp);
  forged_mac_ = (uint64_t(r_.next()) << 32) ^ r_.next();
}

void HostileNode::observe(std::span<const uint8_t> bytes) {
  for (uint8_t b : bytes) deframer_.push(b);
  while (auto f = deframer_.next()) {
    if (corpus_.size() < kCorpusCap) {
      corpus_.push_back(std::move(*f));
    } else {
      corpus_[corpus_next_] = std::move(*f);
      corpus_next_ = (corpus_next_ + 1) % kCorpusCap;
    }
  }
}

uint16_t HostileNode::spoofed_id() {
  return static_cast<uint16_t>(1 + r_.below(std::max<uint16_t>(p_.nodes, 1)));
}

void HostileNode::emit_garbage(std::vector<uint8_t>& out) {
  const uint32_t len = 1 + r_.below(64);
  for (uint32_t i = 0; i < len; ++i)
    out.push_back(static_cast<uint8_t>(r_.below(256)));
  // Half the time, seed the stream with sync bytes so the deframer keeps
  // finding plausible-looking frame starts inside the noise.
  if (r_.percent(50))
    for (size_t i = 0; i < out.size(); i += 7) out[i] = net::kFrameSync;
}

void HostileNode::emit_truncation(std::vector<uint8_t>& out) {
  // A valid-looking header whose length byte promises more payload than
  // follows: the victim's deframer waits, swallows the next frame's bytes
  // into the phantom payload, fails the CRC and must resync.
  out.push_back(net::kFrameSync);
  out.push_back(static_cast<uint8_t>(1 + r_.below(4)));  // a real type
  out.push_back(p_.version);
  out.push_back(static_cast<uint8_t>(r_.below(256)));
  out.push_back(0);
  out.push_back(static_cast<uint8_t>(r_.below(net::kMaxPayload + 1)));
  const uint32_t cut = r_.below(8);
  for (uint32_t i = 0; i < cut; ++i)
    out.push_back(static_cast<uint8_t>(r_.below(256)));
}

void HostileNode::emit_replay(std::vector<uint8_t>& out) {
  if (corpus_.empty()) {
    emit_garbage(out);
    return;
  }
  Frame f = corpus_[r_.below(static_cast<uint32_t>(corpus_.size()))];
  const uint32_t mode = r_.below(3);
  if (mode == 0) {
    // Pre-CRC mutation: flip bytes of the frame fields, then re-encode —
    // the CRC is valid, so the mutation reaches the typed parsers.
    switch (r_.below(4)) {
      case 0: f.version ^= static_cast<uint8_t>(1 + r_.below(255)); break;
      case 1: f.seq ^= static_cast<uint16_t>(1 + r_.below(0xFFFF)); break;
      case 2:
        if (!f.payload.empty())
          f.payload[r_.below(static_cast<uint32_t>(f.payload.size()))] ^=
              static_cast<uint8_t>(1 + r_.below(255));
        break;
      default:
        f.payload.resize(r_.below(net::kMaxPayload + 1),
                         static_cast<uint8_t>(r_.below(256)));
        break;
    }
    out = net::encode_frame(f);
    return;
  }
  out = net::encode_frame(f);
  if (mode == 1 && !out.empty()) {
    // Post-encode bit flip: a corrupted-on-air frame (CRC gate pressure).
    const uint32_t at = r_.below(static_cast<uint32_t>(out.size()));
    out[at] ^= static_cast<uint8_t>(1u << r_.below(8));
  }
  // mode == 2: verbatim stale replay (duplicate chunks, replayed Nacks).
}

void HostileNode::emit_forged_summary(std::vector<uint8_t>& out) {
  SummaryInfo info;
  Frame f;
  switch (r_.below(4)) {
    case 0: {
      // The flagship forgery: a fully self-consistent announcement of the
      // attacker's own image — true CRC, valid geometry, random MAC.
      info = {forged_chunks_, static_cast<uint32_t>(forged_.size()),
              forged_crc_, p_.chunk_payload};
      info.has_mac = true;
      info.image_mac = forged_mac_;
      f = net::make_summary(p_.version, info);
      break;
    }
    case 1: {
      // Bogus version byte (cross-version replay pressure).
      info = {forged_chunks_, static_cast<uint32_t>(forged_.size()),
              forged_crc_, p_.chunk_payload};
      f = net::make_summary(static_cast<uint8_t>(r_.below(256)), info);
      break;
    }
    case 2: {
      // Inconsistent geometry: chunk count that disagrees with the byte
      // count, zero payload sizes, etc.
      info = {static_cast<uint16_t>(r_.below(0x10000)), r_.next() ? r_.below(1u << 24) : 0,
              r_.below(0xFFFFFFFFu), static_cast<uint8_t>(r_.below(64))};
      f = net::make_summary(p_.version, info);
      break;
    }
    default: {
      // Huge image_bytes: a single-frame memory-exhaustion attempt.
      info = {0xFFFF, 0xFFFFFFFFu, r_.below(0xFFFFFFFFu), p_.chunk_payload};
      info.has_mac = true;
      info.image_mac = forged_mac_;
      f = net::make_summary(p_.version, info);
      break;
    }
  }
  // Mesh flavor half the time: spoofed sender claiming hop 0 (bait for
  // the gradient — victims would adopt the attacker as parent).
  if (r_.percent(50)) {
    f.seq = 0;
    const uint16_t sender = spoofed_id();
    f.payload.push_back(static_cast<uint8_t>(sender & 0xFF));
    f.payload.push_back(static_cast<uint8_t>(sender >> 8));
  }
  out = net::encode_frame(f);
}

void HostileNode::emit_forged_data(std::vector<uint8_t>& out) {
  // Serve the forged image round-robin so a victim that accepted the
  // forged Summary can actually assemble it (the install gate is the
  // defense under test, not packet loss).
  const uint16_t seq = next_forged_chunk_;
  next_forged_chunk_ = static_cast<uint16_t>((next_forged_chunk_ + 1) %
                                             std::max<uint16_t>(forged_chunks_, 1));
  const size_t cp = std::max<uint8_t>(p_.chunk_payload, 1);
  const size_t begin = size_t(seq) * cp;
  const size_t end = std::min(begin + cp, forged_.size());
  Frame f;
  f.type = FrameType::Data;
  f.version = p_.version;
  f.seq = seq;
  if (begin < end) f.payload.assign(forged_.begin() + begin, forged_.begin() + end);
  out = net::encode_frame(f);
}

void HostileNode::emit_nack_flood(std::vector<uint8_t>& out) {
  // Full Nack lists under the attacker's own or a spoofed id: liveness
  // poisoning at the base plus retransmit-queue pressure.
  uint16_t missing[net::kMaxNackList];
  for (auto& m : missing) m = static_cast<uint16_t>(r_.below(0x10000));
  const uint16_t id = r_.percent(50) ? p_.node : spoofed_id();
  Frame f =
      r_.percent(50)
          ? net::make_nack(p_.version, id, missing)
          : net::make_mesh_nack(p_.version, id, missing,
                                r_.percent(50) ? 0 : net::kNackAnyTarget, 0);
  out = net::encode_frame(f);
}

void HostileNode::emit_ack_spoof(std::vector<uint8_t>& out) {
  // A forged completion claim for an honest node (or itself). Without the
  // key the tag is random or absent — an authenticated base drops it; an
  // unauthenticated base counts a completion that never happened.
  const uint16_t victim = r_.percent(50) ? p_.node : spoofed_id();
  Frame f;
  switch (r_.below(3)) {
    case 0: f = Frame{FrameType::Ack, p_.version, victim, {}}; break;
    case 1:
      f = net::make_auth_ack(p_.version, victim,
                             (uint64_t(r_.next()) << 32) ^ r_.next());
      break;
    default:
      f = net::make_mesh_ack(p_.version, victim, spoofed_id(), r_.below(4),
                             (uint64_t(r_.next()) << 32) ^ r_.next());
      break;
  }
  out = net::encode_frame(f);
}

bool HostileNode::emit(uint64_t now, bool air_clear,
                       std::vector<uint8_t>& out) {
  (void)now;
  // Unconditional draws keep the stream layout fixed: whether one roll
  // fires never shifts the meaning of the next (replay stability).
  const bool active = r_.percent(p_.intensity_pct);
  const uint32_t pick = r_.below(7);
  if (!active) return false;
  if (!air_clear && !p_.collide) return false;  // polite attacker variant
  struct Choice {
    bool enabled;
    void (HostileNode::*fn)(std::vector<uint8_t>&);
  };
  const Choice menu[7] = {
      {p_.garbage, &HostileNode::emit_garbage},
      {p_.truncation, &HostileNode::emit_truncation},
      {p_.replay, &HostileNode::emit_replay},
      {p_.forge_summary, &HostileNode::emit_forged_summary},
      {p_.forge_data, &HostileNode::emit_forged_data},
      {p_.nack_flood, &HostileNode::emit_nack_flood},
      {p_.ack_spoof, &HostileNode::emit_ack_spoof},
  };
  // Walk from the picked slot to the first enabled attack so narrowed
  // profiles (single-vector tests) still emit every active opportunity.
  for (uint32_t i = 0; i < 7; ++i) {
    const Choice& c = menu[(pick + i) % 7];
    if (!c.enabled) continue;
    (this->*c.fn)(out);
    if (out.empty()) return false;
    ++emitted_;
    return true;
  }
  return false;
}

}  // namespace sensmart::chaos
