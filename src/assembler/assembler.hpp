// A small two-pass AVR assembler with string labels and a symbol list.
//
// Sensor-net programs in this reproduction are written directly against
// this API (the environment has no avr-gcc); the produced Image carries
// exactly what Figure 1 of the paper says the rewriter consumes: the binary
// code plus the symbol list describing static data (heap) usage.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "emu/io_map.hpp"
#include "isa/codec.hpp"

namespace sensmart::assembler {

struct DataSymbol {
  std::string name;
  uint16_t addr = 0;  // logical data address
  uint16_t size = 0;  // bytes
};

// A compiled program: binary code + the memory-usage information the
// base-station rewriter needs.
struct Image {
  std::string name;
  std::vector<uint16_t> code;  // flash words, entry at word `entry`
  uint32_t entry = 0;
  uint16_t heap_base = emu::kSramBase;  // logical heap base (0x0100)
  uint16_t heap_size = 0;               // static data bytes
  std::vector<DataSymbol> symbols;
  // Word ranges [first, last) inside `code` that hold constant data (read
  // via LPM), not instructions; the rewriter copies them verbatim.
  std::vector<std::pair<uint32_t, uint32_t>> data_ranges;

  uint32_t code_words() const { return static_cast<uint32_t>(code.size()); }
  uint32_t code_bytes() const { return code_words() * 2; }
};

class Assembler {
 public:
  explicit Assembler(std::string program_name);

  // ---- labels and data ----------------------------------------------------
  void label(const std::string& name);
  // Allocate `size` bytes of static data; returns its logical address.
  uint16_t var(const std::string& name, uint16_t size);
  // Emit constant flash data at the current position under `name`.
  void dw(const std::string& name, std::span<const uint16_t> words);
  // Emit a flash table of label word-addresses (function-pointer table);
  // each word is patched at finish time.
  void dw_labels(const std::string& name, std::span<const std::string> targets);
  uint32_t here() const { return static_cast<uint32_t>(code_.size()); }

  // ---- raw emission ---------------------------------------------------------
  void emit(const isa::Instruction& ins);
  void emit_branch(isa::Op op, const std::string& target, uint8_t flag = 0);
  void emit_call_jmp(isa::Op op, const std::string& target);

  // ---- convenience emitters -------------------------------------------------
  void ldi(uint8_t rd, uint8_t k);
  void mov(uint8_t rd, uint8_t rr);
  void movw(uint8_t rd, uint8_t rr);
  void add(uint8_t rd, uint8_t rr);
  void adc(uint8_t rd, uint8_t rr);
  void sub(uint8_t rd, uint8_t rr);
  void sbc(uint8_t rd, uint8_t rr);
  void subi(uint8_t rd, uint8_t k);
  void sbci(uint8_t rd, uint8_t k);
  void andi(uint8_t rd, uint8_t k);
  void ori(uint8_t rd, uint8_t k);
  void and_(uint8_t rd, uint8_t rr);
  void or_(uint8_t rd, uint8_t rr);
  void eor(uint8_t rd, uint8_t rr);
  void com(uint8_t rd);
  void neg(uint8_t rd);
  void inc(uint8_t rd);
  void dec(uint8_t rd);
  void lsr(uint8_t rd);
  void asr(uint8_t rd);
  void ror(uint8_t rd);
  void swap(uint8_t rd);
  void mul(uint8_t rd, uint8_t rr);
  void cp(uint8_t rd, uint8_t rr);
  void cpc(uint8_t rd, uint8_t rr);
  void cpi(uint8_t rd, uint8_t k);
  void cpse(uint8_t rd, uint8_t rr);
  void adiw(uint8_t rd, uint8_t k);
  void sbiw(uint8_t rd, uint8_t k);

  void lds(uint8_t rd, uint16_t addr);
  void sts(uint16_t addr, uint8_t rr);
  void ld_x(uint8_t rd);
  void ld_x_inc(uint8_t rd);
  void ld_y_inc(uint8_t rd);
  void ld_z_inc(uint8_t rd);
  void st_x(uint8_t rr);
  void st_x_inc(uint8_t rr);
  void st_y_inc(uint8_t rr);
  void st_z_inc(uint8_t rr);
  void ldd_y(uint8_t rd, uint8_t q);
  void ldd_z(uint8_t rd, uint8_t q);
  void std_y(uint8_t q, uint8_t rr);
  void std_z(uint8_t q, uint8_t rr);
  void push(uint8_t rd);
  void pop(uint8_t rd);
  void in(uint8_t rd, uint16_t data_addr);   // takes a data address >= 0x20
  void out(uint16_t data_addr, uint8_t rr);
  void lpm(uint8_t rd);
  void lpm_inc(uint8_t rd);

  void rjmp(const std::string& target);
  void rcall(const std::string& target);
  void jmp(const std::string& target);
  void call(const std::string& target);
  void ijmp();
  void icall();
  void ret();
  void reti();
  void breq(const std::string& target);
  void brne(const std::string& target);
  void brcs(const std::string& target);
  void brcc(const std::string& target);
  void brlt(const std::string& target);
  void brge(const std::string& target);
  void brmi(const std::string& target);
  void brpl(const std::string& target);
  void sbrc(uint8_t rr, uint8_t bit);
  void sbrs(uint8_t rr, uint8_t bit);
  void sei();
  void cli();
  void nop();
  void sleep();
  void break_();

  // Load a 16-bit immediate into a register pair (rd, rd+1).
  void ldi16(uint8_t rd, uint16_t value);
  // Decrement a 16-bit counter in (rd, rd+1), rd >= 16; leaves Z set iff
  // the whole counter reached zero (SUBI/SBCI pair).
  void dec16(uint8_t rd);
  // Load the address of a label into a register pair at finish time.
  void ldi_label(uint8_t rd_pair, const std::string& target);
  // Exit the program with `code` (writes the host halt port; clobbers r16).
  void halt(uint8_t code = 0);

  // ---- finish ----------------------------------------------------------------
  // Resolve all fixups. Throws std::runtime_error on undefined labels or
  // out-of-range branch offsets.
  Image finish(uint32_t entry = 0);

 private:
  struct Fixup {
    size_t word_index;   // first word of the instruction to patch
    std::string target;
    isa::Op op;          // Op::Invalid = raw data word holding the address
    uint8_t flag;        // for Brbs/Brbc
    bool imm_pair;       // ldi_label: patch two LDI immediates
  };

  std::string name_;
  std::vector<uint16_t> code_;
  std::map<std::string, uint32_t> labels_;
  std::vector<Fixup> fixups_;
  std::vector<DataSymbol> symbols_;
  std::vector<std::pair<uint32_t, uint32_t>> data_ranges_;
  uint16_t heap_cursor_ = emu::kSramBase;
  bool finished_ = false;
};

}  // namespace sensmart::assembler
