#include "assembler/assembler.hpp"

#include <stdexcept>

namespace sensmart::assembler {

using isa::Instruction;
using isa::Op;

Assembler::Assembler(std::string program_name) : name_(std::move(program_name)) {}

void Assembler::label(const std::string& name) {
  if (labels_.contains(name))
    throw std::runtime_error("duplicate label: " + name);
  labels_[name] = here();
}

uint16_t Assembler::var(const std::string& name, uint16_t size) {
  const uint16_t addr = heap_cursor_;
  if (heap_cursor_ + size > emu::kDataEnd)
    throw std::runtime_error("static data overflows SRAM: " + name);
  heap_cursor_ = static_cast<uint16_t>(heap_cursor_ + size);
  symbols_.push_back({name, addr, size});
  return addr;
}

void Assembler::emit(const Instruction& ins) { isa::encode_to(ins, code_); }

void Assembler::dw(const std::string& name, std::span<const uint16_t> words) {
  label(name);
  data_ranges_.emplace_back(here(), here() + uint32_t(words.size()));
  code_.insert(code_.end(), words.begin(), words.end());
}

void Assembler::dw_labels(const std::string& name,
                          std::span<const std::string> targets) {
  label(name);
  data_ranges_.emplace_back(here(), here() + uint32_t(targets.size()));
  for (const std::string& t : targets) {
    fixups_.push_back({code_.size(), t, isa::Op::Invalid, 0, false});
    code_.push_back(0);
  }
}

void Assembler::emit_branch(Op op, const std::string& target, uint8_t flag) {
  Instruction ins;
  ins.op = op;
  ins.b = flag;
  ins.k = 0;
  fixups_.push_back({code_.size(), target, op, flag, false});
  emit(ins);
}

void Assembler::emit_call_jmp(Op op, const std::string& target) {
  Instruction ins;
  ins.op = op;
  ins.k = 0;
  fixups_.push_back({code_.size(), target, op, 0, false});
  emit(ins);
}

// --- convenience emitters ----------------------------------------------------
namespace {
Instruction rr_ins(Op op, uint8_t rd, uint8_t rr) {
  Instruction i; i.op = op; i.rd = rd; i.rr = rr; return i;
}
Instruction rk_ins(Op op, uint8_t rd, int32_t k) {
  Instruction i; i.op = op; i.rd = rd; i.k = k; return i;
}
Instruction r_ins(Op op, uint8_t rd) {
  Instruction i; i.op = op; i.rd = rd; return i;
}
}  // namespace

void Assembler::ldi(uint8_t rd, uint8_t k) { emit(rk_ins(Op::Ldi, rd, k)); }
void Assembler::mov(uint8_t rd, uint8_t rr) { emit(rr_ins(Op::Mov, rd, rr)); }
void Assembler::movw(uint8_t rd, uint8_t rr) { emit(rr_ins(Op::Movw, rd, rr)); }
void Assembler::add(uint8_t rd, uint8_t rr) { emit(rr_ins(Op::Add, rd, rr)); }
void Assembler::adc(uint8_t rd, uint8_t rr) { emit(rr_ins(Op::Adc, rd, rr)); }
void Assembler::sub(uint8_t rd, uint8_t rr) { emit(rr_ins(Op::Sub, rd, rr)); }
void Assembler::sbc(uint8_t rd, uint8_t rr) { emit(rr_ins(Op::Sbc, rd, rr)); }
void Assembler::subi(uint8_t rd, uint8_t k) { emit(rk_ins(Op::Subi, rd, k)); }
void Assembler::sbci(uint8_t rd, uint8_t k) { emit(rk_ins(Op::Sbci, rd, k)); }
void Assembler::andi(uint8_t rd, uint8_t k) { emit(rk_ins(Op::Andi, rd, k)); }
void Assembler::ori(uint8_t rd, uint8_t k) { emit(rk_ins(Op::Ori, rd, k)); }
void Assembler::and_(uint8_t rd, uint8_t rr) { emit(rr_ins(Op::And, rd, rr)); }
void Assembler::or_(uint8_t rd, uint8_t rr) { emit(rr_ins(Op::Or, rd, rr)); }
void Assembler::eor(uint8_t rd, uint8_t rr) { emit(rr_ins(Op::Eor, rd, rr)); }
void Assembler::com(uint8_t rd) { emit(r_ins(Op::Com, rd)); }
void Assembler::neg(uint8_t rd) { emit(r_ins(Op::Neg, rd)); }
void Assembler::inc(uint8_t rd) { emit(r_ins(Op::Inc, rd)); }
void Assembler::dec(uint8_t rd) { emit(r_ins(Op::Dec, rd)); }
void Assembler::lsr(uint8_t rd) { emit(r_ins(Op::Lsr, rd)); }
void Assembler::asr(uint8_t rd) { emit(r_ins(Op::Asr, rd)); }
void Assembler::ror(uint8_t rd) { emit(r_ins(Op::Ror, rd)); }
void Assembler::swap(uint8_t rd) { emit(r_ins(Op::Swap, rd)); }
void Assembler::mul(uint8_t rd, uint8_t rr) { emit(rr_ins(Op::Mul, rd, rr)); }
void Assembler::cp(uint8_t rd, uint8_t rr) { emit(rr_ins(Op::Cp, rd, rr)); }
void Assembler::cpc(uint8_t rd, uint8_t rr) { emit(rr_ins(Op::Cpc, rd, rr)); }
void Assembler::cpi(uint8_t rd, uint8_t k) { emit(rk_ins(Op::Cpi, rd, k)); }
void Assembler::cpse(uint8_t rd, uint8_t rr) { emit(rr_ins(Op::Cpse, rd, rr)); }
void Assembler::adiw(uint8_t rd, uint8_t k) { emit(rk_ins(Op::Adiw, rd, k)); }
void Assembler::sbiw(uint8_t rd, uint8_t k) { emit(rk_ins(Op::Sbiw, rd, k)); }

void Assembler::lds(uint8_t rd, uint16_t addr) { emit(rk_ins(Op::Lds, rd, addr)); }
void Assembler::sts(uint16_t addr, uint8_t rr) { emit(rk_ins(Op::Sts, rr, addr)); }
void Assembler::ld_x(uint8_t rd) { emit(r_ins(Op::LdX, rd)); }
void Assembler::ld_x_inc(uint8_t rd) { emit(r_ins(Op::LdXInc, rd)); }
void Assembler::ld_y_inc(uint8_t rd) { emit(r_ins(Op::LdYInc, rd)); }
void Assembler::ld_z_inc(uint8_t rd) { emit(r_ins(Op::LdZInc, rd)); }
void Assembler::st_x(uint8_t rr) { emit(r_ins(Op::StX, rr)); }
void Assembler::st_x_inc(uint8_t rr) { emit(r_ins(Op::StXInc, rr)); }
void Assembler::st_y_inc(uint8_t rr) { emit(r_ins(Op::StYInc, rr)); }
void Assembler::st_z_inc(uint8_t rr) { emit(r_ins(Op::StZInc, rr)); }

void Assembler::ldd_y(uint8_t rd, uint8_t q) {
  Instruction i; i.op = Op::Ldd; i.rd = rd; i.q = q; i.ptr = isa::Ptr::Y;
  emit(i);
}
void Assembler::ldd_z(uint8_t rd, uint8_t q) {
  Instruction i; i.op = Op::Ldd; i.rd = rd; i.q = q; i.ptr = isa::Ptr::Z;
  emit(i);
}
void Assembler::std_y(uint8_t q, uint8_t rr) {
  Instruction i; i.op = Op::Std; i.rd = rr; i.q = q; i.ptr = isa::Ptr::Y;
  emit(i);
}
void Assembler::std_z(uint8_t q, uint8_t rr) {
  Instruction i; i.op = Op::Std; i.rd = rr; i.q = q; i.ptr = isa::Ptr::Z;
  emit(i);
}

void Assembler::push(uint8_t rd) { emit(r_ins(Op::Push, rd)); }
void Assembler::pop(uint8_t rd) { emit(r_ins(Op::Pop, rd)); }

void Assembler::in(uint8_t rd, uint16_t data_addr) {
  Instruction i; i.op = Op::In; i.rd = rd;
  i.a = static_cast<uint8_t>(data_addr - emu::kIoBase);
  emit(i);
}
void Assembler::out(uint16_t data_addr, uint8_t rr) {
  Instruction i; i.op = Op::Out; i.rd = rr;
  i.a = static_cast<uint8_t>(data_addr - emu::kIoBase);
  emit(i);
}
void Assembler::lpm(uint8_t rd) { emit(r_ins(Op::Lpm, rd)); }
void Assembler::lpm_inc(uint8_t rd) { emit(r_ins(Op::LpmInc, rd)); }

void Assembler::rjmp(const std::string& t) { emit_branch(Op::Rjmp, t); }
void Assembler::rcall(const std::string& t) { emit_branch(Op::Rcall, t); }
void Assembler::jmp(const std::string& t) { emit_call_jmp(Op::Jmp, t); }
void Assembler::call(const std::string& t) { emit_call_jmp(Op::Call, t); }
void Assembler::ijmp() { Instruction i; i.op = Op::Ijmp; emit(i); }
void Assembler::icall() { Instruction i; i.op = Op::Icall; emit(i); }
void Assembler::ret() { Instruction i; i.op = Op::Ret; emit(i); }
void Assembler::reti() { Instruction i; i.op = Op::Reti; emit(i); }

void Assembler::breq(const std::string& t) { emit_branch(Op::Brbs, t, isa::kFlagZ); }
void Assembler::brne(const std::string& t) { emit_branch(Op::Brbc, t, isa::kFlagZ); }
void Assembler::brcs(const std::string& t) { emit_branch(Op::Brbs, t, isa::kFlagC); }
void Assembler::brcc(const std::string& t) { emit_branch(Op::Brbc, t, isa::kFlagC); }
void Assembler::brlt(const std::string& t) { emit_branch(Op::Brbs, t, isa::kFlagS); }
void Assembler::brge(const std::string& t) { emit_branch(Op::Brbc, t, isa::kFlagS); }
void Assembler::brmi(const std::string& t) { emit_branch(Op::Brbs, t, isa::kFlagN); }
void Assembler::brpl(const std::string& t) { emit_branch(Op::Brbc, t, isa::kFlagN); }

void Assembler::sbrc(uint8_t rr, uint8_t bit) {
  Instruction i; i.op = Op::Sbrc; i.rr = rr; i.b = bit; emit(i);
}
void Assembler::sbrs(uint8_t rr, uint8_t bit) {
  Instruction i; i.op = Op::Sbrs; i.rr = rr; i.b = bit; emit(i);
}
void Assembler::sei() { Instruction i; i.op = Op::Bset; i.b = isa::kFlagI; emit(i); }
void Assembler::cli() { Instruction i; i.op = Op::Bclr; i.b = isa::kFlagI; emit(i); }
void Assembler::nop() { emit(Instruction{.op = Op::Nop}); }
void Assembler::sleep() { emit(Instruction{.op = Op::Sleep}); }
void Assembler::break_() { emit(Instruction{.op = Op::Break}); }

void Assembler::dec16(uint8_t rd) {
  subi(rd, 1);
  sbci(static_cast<uint8_t>(rd + 1), 0);
}

void Assembler::ldi16(uint8_t rd, uint16_t value) {
  ldi(rd, static_cast<uint8_t>(value & 0xFF));
  ldi(static_cast<uint8_t>(rd + 1), static_cast<uint8_t>(value >> 8));
}

void Assembler::ldi_label(uint8_t rd_pair, const std::string& target) {
  fixups_.push_back({code_.size(), target, Op::Ldi, 0, true});
  ldi(rd_pair, 0);
  ldi(static_cast<uint8_t>(rd_pair + 1), 0);
}

void Assembler::halt(uint8_t code) {
  ldi(16, code);
  sts(emu::kHostHalt, 16);
}

Image Assembler::finish(uint32_t entry) {
  if (finished_) throw std::runtime_error("finish() called twice");
  finished_ = true;

  for (const Fixup& fx : fixups_) {
    auto it = labels_.find(fx.target);
    if (it == labels_.end())
      throw std::runtime_error("undefined label: " + fx.target);
    const int64_t target = it->second;

    if (fx.imm_pair) {
      // Patch the K fields of two consecutive LDIs (low, high byte of the
      // label's word address).
      auto patch_k = [&](size_t idx, uint8_t k) {
        code_[idx] = static_cast<uint16_t>((code_[idx] & 0xF0F0u) |
                                           ((k & 0xF0u) << 4) | (k & 0x0Fu));
      };
      patch_k(fx.word_index, static_cast<uint8_t>(target & 0xFF));
      patch_k(fx.word_index + 1, static_cast<uint8_t>(target >> 8));
      continue;
    }

    switch (fx.op) {
      case Op::Rjmp:
      case Op::Rcall: {
        const int64_t off = target - int64_t(fx.word_index) - 1;
        if (off < -2048 || off > 2047)
          throw std::runtime_error("rjmp/rcall target out of range: " + fx.target);
        code_[fx.word_index] = static_cast<uint16_t>(
            (code_[fx.word_index] & 0xF000u) | (off & 0x0FFF));
        break;
      }
      case Op::Brbs:
      case Op::Brbc: {
        const int64_t off = target - int64_t(fx.word_index) - 1;
        if (off < -64 || off > 63)
          throw std::runtime_error("branch target out of range: " + fx.target);
        code_[fx.word_index] = static_cast<uint16_t>(
            (code_[fx.word_index] & 0xFC07u) | ((off & 0x7F) << 3));
        break;
      }
      case Op::Jmp:
      case Op::Call:
        code_[fx.word_index + 1] = static_cast<uint16_t>(target);
        break;
      case Op::Invalid:  // raw data word (dw_labels)
        code_[fx.word_index] = static_cast<uint16_t>(target);
        break;
      default:
        throw std::runtime_error("unsupported fixup");
    }
  }

  Image img;
  img.name = name_;
  img.code = std::move(code_);
  img.entry = entry;
  img.heap_base = emu::kSramBase;
  img.heap_size = static_cast<uint16_t>(heap_cursor_ - emu::kSramBase);
  img.symbols = std::move(symbols_);
  img.data_ranges = std::move(data_ranges_);
  return img;
}

}  // namespace sensmart::assembler
