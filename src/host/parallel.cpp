#include "host/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace sensmart::host {

unsigned effective_jobs(unsigned requested, std::size_t n_items) {
  unsigned jobs = requested;
  if (jobs == 0) jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  if (n_items < jobs) jobs = static_cast<unsigned>(n_items);
  return jobs == 0 ? 1u : jobs;
}

void sweep_indexed(std::size_t n, unsigned jobs,
                   const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        // Keep draining: abandoning the cursor mid-sweep would leave
        // unfilled result slots for items that never threw.
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(jobs - 1);
  for (unsigned t = 1; t < jobs; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

namespace {
// Parked workers spin briefly before yielding: the sharded engine
// dispatches at quantum granularity (tens of microseconds of work), so the
// next epoch usually arrives within the spin window and the wake-up stays
// off the scheduler.
constexpr int kSpinsBeforeYield = 4096;

template <typename Pred>
void spin_until(Pred&& ready) {
  for (int spins = 0; !ready(); ++spins)
    if (spins >= kSpinsBeforeYield) std::this_thread::yield();
}
}  // namespace

WorkPool::WorkPool(unsigned workers) : workers_(workers == 0 ? 1 : workers) {
  threads_.reserve(workers_ - 1);
  for (unsigned w = 1; w < workers_; ++w)
    threads_.emplace_back([this, w] { park_loop(w); });
}

WorkPool::~WorkPool() {
  stop_.store(true, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  for (std::thread& t : threads_) t.join();
}

void WorkPool::park_loop(unsigned w) {
  uint64_t seen = 0;
  for (;;) {
    spin_until([&] { return epoch_.load(std::memory_order_acquire) != seen; });
    seen = epoch_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_relaxed)) return;
    try {
      (*fn_)(w);
    } catch (...) {
      // First error wins; losers just drop theirs (the run is aborting).
      if (!has_error_.exchange(true, std::memory_order_acq_rel))
        error_ = std::current_exception();
    }
    done_.fetch_add(1, std::memory_order_release);
  }
}

void WorkPool::dispatch(const std::function<void(unsigned)>& fn) {
  if (workers_ == 1) {
    fn(0);
    return;
  }
  fn_ = &fn;
  done_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  try {
    fn(0);
  } catch (...) {
    if (!has_error_.exchange(true, std::memory_order_acq_rel))
      error_ = std::current_exception();
  }
  spin_until([&] {
    return done_.load(std::memory_order_acquire) == workers_ - 1;
  });
  fn_ = nullptr;
  if (has_error_.load(std::memory_order_acquire)) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    has_error_.store(false, std::memory_order_release);
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace sensmart::host
