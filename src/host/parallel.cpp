#include "host/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace sensmart::host {

unsigned effective_jobs(unsigned requested, std::size_t n_items) {
  unsigned jobs = requested;
  if (jobs == 0) jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  if (n_items < jobs) jobs = static_cast<unsigned>(n_items);
  return jobs == 0 ? 1u : jobs;
}

void sweep_indexed(std::size_t n, unsigned jobs,
                   const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        // Keep draining: abandoning the cursor mid-sweep would leave
        // unfilled result slots for items that never threw.
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(jobs - 1);
  for (unsigned t = 1; t < jobs; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sensmart::host
