// Deterministic parallel sweep runner for host-side experiment harnesses.
//
// Every sweep in this repo (chaos soak seeds, figure-bench configuration
// rows) is a map over an index range where each item is an independent,
// fully deterministic simulation. Parallelism must therefore never be
// observable in the *results*: sweep_collect() runs items on a small
// thread pool but slots each result by its item index, so callers that
// print or aggregate in index order produce byte-identical output to a
// serial run — only wall-clock time changes. Work distribution is a
// shared atomic cursor (dynamic scheduling), which affects nothing but
// which thread computes which item.
//
// Items must not touch shared mutable state; all simulation state in this
// codebase is owned per-run (Machine/Kernel/ChaosResult are constructed
// inside the item), so any pure run_*() harness call qualifies.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sensmart::host {

// Resolve a --jobs request against the sweep size: 0 means auto-detect
// (hardware_concurrency, itself falling back to 1 when unknown); any
// request is clamped to the number of items so no idle threads are
// spawned. Always returns at least 1.
unsigned effective_jobs(unsigned requested, std::size_t n_items);

// Run fn(i) for every i in [0, n) across `jobs` worker threads and block
// until all items finished. jobs <= 1 runs inline on the calling thread,
// in index order, with no thread machinery at all. The first exception
// thrown by any item is rethrown here after all workers have joined.
void sweep_indexed(std::size_t n, unsigned jobs,
                   const std::function<void(std::size_t)>& fn);

// Typed sweep: returns fn(i) for every index, in index order, regardless
// of which thread ran which item or in what order they completed. R must
// be default-constructible (results land in a pre-sized vector) and must
// not be bool: vector<bool> packs results into shared words, so two
// threads storing adjacent slots would race — collect uint8_t instead.
template <typename R, typename Fn>
std::vector<R> sweep_collect(std::size_t n, unsigned jobs, Fn&& fn) {
  static_assert(!std::is_same_v<R, bool>,
                "vector<bool> slots share words across threads");
  std::vector<R> out(n);
  sweep_indexed(n, jobs, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

// Persistent fork/join pool for bulk-synchronous inner loops (the sharded
// NetSim engine dispatches once per simulation quantum, hundreds of
// thousands of times per run — sweep_indexed's spawn-per-call threads would
// dominate the work). Workers park on an epoch counter; dispatch() bumps
// the epoch, runs span 0 on the calling thread, and spin-waits (with a
// yield fallback) until every worker has finished its span. All
// synchronization is acquire/release on the epoch/done atomics, so writes
// made by the caller before dispatch() are visible to every span, and
// writes made by any span are visible to the caller after dispatch()
// returns — the pool itself introduces no data races to instrument.
class WorkPool {
 public:
  // `workers` total spans per dispatch, including the calling thread
  // (clamped to >= 1); workers-1 threads are spawned and parked.
  explicit WorkPool(unsigned workers);
  ~WorkPool();

  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

  unsigned workers() const { return workers_; }

  // Run fn(w) for every w in [0, workers) and block until all spans
  // returned. The calling thread executes span 0. The first exception
  // thrown by any span is rethrown here after the join. Not reentrant.
  void dispatch(const std::function<void(unsigned)>& fn);

 private:
  void park_loop(unsigned w);

  unsigned workers_ = 1;
  std::vector<std::thread> threads_;
  const std::function<void(unsigned)>* fn_ = nullptr;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<unsigned> done_{0};
  std::atomic<bool> stop_{false};
  std::exception_ptr error_;
  std::atomic<bool> has_error_{false};
};

}  // namespace sensmart::host
