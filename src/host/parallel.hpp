// Deterministic parallel sweep runner for host-side experiment harnesses.
//
// Every sweep in this repo (chaos soak seeds, figure-bench configuration
// rows) is a map over an index range where each item is an independent,
// fully deterministic simulation. Parallelism must therefore never be
// observable in the *results*: sweep_collect() runs items on a small
// thread pool but slots each result by its item index, so callers that
// print or aggregate in index order produce byte-identical output to a
// serial run — only wall-clock time changes. Work distribution is a
// shared atomic cursor (dynamic scheduling), which affects nothing but
// which thread computes which item.
//
// Items must not touch shared mutable state; all simulation state in this
// codebase is owned per-run (Machine/Kernel/ChaosResult are constructed
// inside the item), so any pure run_*() harness call qualifies.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace sensmart::host {

// Resolve a --jobs request against the sweep size: 0 means auto-detect
// (hardware_concurrency, itself falling back to 1 when unknown); any
// request is clamped to the number of items so no idle threads are
// spawned. Always returns at least 1.
unsigned effective_jobs(unsigned requested, std::size_t n_items);

// Run fn(i) for every i in [0, n) across `jobs` worker threads and block
// until all items finished. jobs <= 1 runs inline on the calling thread,
// in index order, with no thread machinery at all. The first exception
// thrown by any item is rethrown here after all workers have joined.
void sweep_indexed(std::size_t n, unsigned jobs,
                   const std::function<void(std::size_t)>& fn);

// Typed sweep: returns fn(i) for every index, in index order, regardless
// of which thread ran which item or in what order they completed. R must
// be default-constructible (results land in a pre-sized vector).
template <typename R, typename Fn>
std::vector<R> sweep_collect(std::size_t n, unsigned jobs, Fn&& fn) {
  std::vector<R> out(n);
  sweep_indexed(n, jobs, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace sensmart::host
