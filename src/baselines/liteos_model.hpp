// LiteOS allocation model (Cao et al., IPSN'08) for the Figure 8
// comparison. LiteOS is a well-designed multithreaded sensornet OS with
// Unix-like abstractions, but its physical memory management is *manual*:
// every thread is created with a programmer-declared, fixed stack area, and
// the kernel's advanced services keep more than 2000 bytes of static data
// in RAM. Under memory pressure this static worst-case sizing is what
// limits how many threads can be scheduled.
#pragma once

#include <cstdint>

namespace sensmart::base {

struct LiteOsModel {
  uint16_t data_memory = 4096;        // MICA2-class SRAM
  uint16_t static_kernel_data = 2000; // "more than 2000 bytes" (§V-D)

  // RAM left for application heaps + stacks.
  uint16_t app_space() const {
    return static_cast<uint16_t>(data_memory - static_kernel_data);
  }

  // Stack budget once `n` tasks' heaps are laid out.
  int stack_budget(int n, uint16_t heap_per_task) const {
    return int(app_space()) - n * int(heap_per_task);
  }

  // Maximum schedulable threads when each declares `declared_stack` bytes
  // of stack (the worst-case need — LiteOS cannot adapt at run time).
  int max_schedulable_tasks(uint16_t heap_per_task,
                            uint16_t declared_stack) const {
    int n = 0;
    while (stack_budget(n + 1, heap_per_task) >=
           (n + 1) * int(declared_stack))
      ++n;
    return n;
  }
};

}  // namespace sensmart::base
