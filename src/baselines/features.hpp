// Table I of the paper: feature comparison of typical sensor-network
// operating systems. The entries for the other systems are taken from
// their respective publications (TinyOS/TinyThread, Maté, MANTIS OS,
// t-kernel, RETOS, LiteOS); the SenSmart column is what this reproduction
// implements.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace sensmart::base {

struct FeatureMatrix {
  std::vector<std::string> systems;
  std::vector<std::string> features;
  // values[feature][system]
  std::vector<std::vector<std::string>> values;
};

const FeatureMatrix& table1();

// Render in the paper's layout (features as rows, systems as columns).
void print_table1(std::ostream& os);

}  // namespace sensmart::base
