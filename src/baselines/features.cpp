#include "baselines/features.hpp"

#include <iomanip>

namespace sensmart::base {

const FeatureMatrix& table1() {
  static const FeatureMatrix m = {
      {"TinyOS/TinyThread", "Mate", "MANTIS OS", "t-kernel", "RETOS",
       "LiteOS", "SenSmart"},
      {"TinyOS Compatible", "Preemptive Multitasking",
       "Concurrent Applications", "Interrupt-free Preemption",
       "Memory Protection", "Logical Memory Address",
       "Physical Mem Management", "Stack Relocation"},
      {
          {"N/A", "No", "No", "Yes", "No", "No", "Yes"},
          {"Yes", "No", "Yes", "Partial", "Yes", "Yes", "Yes"},
          {"No", "N/A", "No", "No", "No", "No", "Yes"},
          {"Yes", "N/A", "No", "Yes", "No", "No", "Yes"},
          {"No", "Yes", "No", "Partial", "Yes", "No", "Yes"},
          {"No", "N/A", "No", "No", "No", "No", "Yes"},
          {"Automatic", "Automatic", "Automatic", "Automatic", "Automatic",
           "Manual", "Automatic"},
          {"No", "No", "No", "No", "No", "No", "Yes"},
      },
  };
  return m;
}

void print_table1(std::ostream& os) {
  const FeatureMatrix& m = table1();
  os << std::left << std::setw(28) << "Feature";
  for (const auto& s : m.systems) os << std::setw(19) << s;
  os << "\n";
  for (size_t f = 0; f < m.features.size(); ++f) {
    os << std::left << std::setw(28) << m.features[f];
    for (const auto& v : m.values[f]) os << std::setw(19) << v;
    os << "\n";
  }
}

}  // namespace sensmart::base
