#include "baselines/native_runner.hpp"

namespace sensmart::base {

NativeResult run_native(const assembler::Image& img, uint64_t max_cycles) {
  emu::Machine m;
  m.load_flash(img.code);
  m.reset(img.entry);
  NativeResult r;
  r.stop = m.run(max_cycles);
  r.cycles = m.cycles();
  r.instructions = m.stats().instructions;
  r.active_cycles = m.stats().active_cycles;
  r.idle_cycles = m.stats().idle_cycles;
  r.host_out = m.dev().host_out();
  return r;
}

}  // namespace sensmart::base
