// The copy-on-switch strawman of §I: "A simple copy-on-switch scheme
// appears to solve the problem by swapping one task's stack out to the
// external storage (FLASH on motes) and swapping it in when the task is
// activated again. However, writing the external FLASH takes more than 10
// milliseconds on a MICA2 mote." This model quantifies that rejection
// with the MICA2's AT45DB041 dataflash timings so the argument can be
// reproduced as a table (bench/ablation_design).
#pragma once

#include <cstdint>

#include "emu/io_map.hpp"

namespace sensmart::base {

struct CopyOnSwitchModel {
  // AT45DB041-class serial dataflash on the MICA2.
  uint32_t page_bytes = 264;
  double page_program_ms = 14.0;  // typical page erase+program time
  double spi_byte_us = 16.0;      // ~500 kHz SPI transfer per byte

  // Milliseconds to switch away from a task with `stack_bytes` of live
  // stack: stream the bytes out over SPI, then program the page(s);
  // switching *in* pays the read+restore path (reads are cheap, dominated
  // by SPI).
  double switch_out_ms(uint32_t stack_bytes) const {
    const uint32_t pages = (stack_bytes + page_bytes - 1) / page_bytes;
    return stack_bytes * spi_byte_us / 1000.0 + pages * page_program_ms;
  }
  double switch_in_ms(uint32_t stack_bytes) const {
    return stack_bytes * spi_byte_us / 1000.0;
  }
  double full_switch_ms(uint32_t stack_bytes) const {
    return switch_out_ms(stack_bytes) + switch_in_ms(stack_bytes);
  }
  uint64_t full_switch_cycles(uint32_t stack_bytes) const {
    return uint64_t(full_switch_ms(stack_bytes) / 1000.0 * emu::kClockHz);
  }
};

}  // namespace sensmart::base
