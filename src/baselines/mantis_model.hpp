// MANTIS OS allocation model (Bhatti et al., MONET'05) for stack-capacity
// comparisons. MANTIS is a classic multithreaded kernel with clock-driven
// preemption: each thread receives a fixed stack area sized at creation
// time (worst case), and scheduling relies on timer interrupts — which
// application code can disable, so preemption is not interrupt-free.
#pragma once

#include <cstdint>

namespace sensmart::base {

struct MantisModel {
  uint16_t data_memory = 4096;
  uint16_t static_kernel_data = 500;  // kernel + thread table

  uint16_t app_space() const {
    return static_cast<uint16_t>(data_memory - static_kernel_data);
  }

  int max_schedulable_tasks(uint16_t heap_per_task,
                            uint16_t declared_stack) const {
    const int per_task = int(heap_per_task) + int(declared_stack);
    return per_task > 0 ? int(app_space()) / per_task : 0;
  }
};

}  // namespace sensmart::base
