// Run an application image directly on the emulated mote with no operating
// system — the "Native" series of Figures 5 and 6.
#pragma once

#include <cstdint>
#include <vector>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"

namespace sensmart::base {

struct NativeResult {
  emu::StopReason stop = emu::StopReason::Running;
  uint64_t cycles = 0;
  uint64_t instructions = 0;  // emulated instructions retired
  uint64_t active_cycles = 0;
  uint64_t idle_cycles = 0;
  std::vector<uint8_t> host_out;

  double seconds() const { return double(cycles) / emu::kClockHz; }
  double utilization() const {
    return cycles ? double(active_cycles) / double(cycles) : 0.0;
  }
};

NativeResult run_native(const assembler::Image& img,
                        uint64_t max_cycles = 4'000'000'000ULL);

}  // namespace sensmart::base
