// Image and frame authentication for the dissemination protocol
// (DESIGN.md §11).
//
// Threat model: the radio medium is open — any node (or an attacker with a
// transmitter) can inject arbitrary byte streams. CRC-16/CRC-32 gate
// transfer *integrity* (random corruption) but are trivially forgeable:
// an attacker serializes its own image, computes the matching CRCs, and
// every integrity check passes. Authenticity therefore needs a keyed tag:
// a SipHash-2-4 MAC over the image blob under a pre-shared 128-bit key,
// carried in the Summary and verified before ImageStore install. An
// attacker without the key can cost bandwidth (jam, flood, replay) but can
// never get a forged image past the install gate, and — because Acks carry
// their own MAC binding (origin, version, image CRC) — can never spoof a
// completion the base would count.
//
// Key distribution is out of scope: the key is pre-shared (ProtocolParams)
// exactly as in Deluge-style deployments with a factory-installed secret.
#pragma once

#include <cstdint>
#include <span>

namespace sensmart::net {

// 128-bit pre-shared MAC key.
struct AuthKey {
  uint64_t k0 = 0;
  uint64_t k1 = 0;

  bool operator==(const AuthKey&) const = default;
};

// The SipHash-2-4 reference test key 000102...0f, used by defaults and
// tests; deployments configure their own via ProtocolParams.
inline constexpr AuthKey kDefaultAuthKey{0x0706050403020100ULL,
                                         0x0F0E0D0C0B0A0908ULL};

// SipHash-2-4 (Aumasson & Bernstein): 64-bit keyed MAC. Matches the
// reference vectors (see NetAuth.SipHashReferenceVectors).
uint64_t siphash24(const AuthKey& key, std::span<const uint8_t> data);

// Tag carried by an authenticated Ack: binds the acking node (origin), the
// announced image version and the whole-image CRC to the key, so a
// forged/spoofed Ack for another node never verifies at the base and a
// captured Ack replayed later only re-states a truth. Relayers recompute
// it (they hold the same pre-shared key), so relayer/hop stay mutable.
uint64_t ack_tag(const AuthKey& key, uint8_t version, uint16_t origin,
                 uint32_t image_crc);

// Staged-rollout tags (DESIGN.md §12). Without them an attacker could
// forge an ActivateTrial/Rollback to wedge the fleet, or spoof a clean
// health report that promotes a lemon image past the gate.
//
// Control tag: binds (version, command, target node, the base-minted
// control sequence number, image CRC). The monotone ctl_seq makes replays
// of captured controls stale at the node.
uint64_t control_tag(const AuthKey& key, uint8_t version, uint8_t cmd,
                     uint16_t target, uint16_t ctl_seq, uint32_t image_crc);
// Health tag: binds (version, origin) plus the 12 core payload bytes
// (flags, recovery counters, active image CRC, slot) — see
// net::health_core. Mesh relayer/hop stay outside the tag, exactly like
// relayed Acks.
uint64_t health_tag(const AuthKey& key, uint8_t version, uint16_t origin,
                    std::span<const uint8_t> core);

}  // namespace sensmart::net
