#include "net/medium.hpp"

#include <algorithm>

#include "net/frame.hpp"

namespace sensmart::net {

using emu::DeviceHub;

void Medium::enqueue(size_t to, std::span<const uint8_t> packet, uint64_t at,
                     bool corrupt, size_t from, uint64_t tx_start,
                     uint64_t tx_done) {
  std::vector<uint8_t> bytes(packet.begin(), packet.end());
  if (corrupt) {
    // Flip 1..3 bits at seeded positions — enough to break the frame CRC
    // (or, rarely, only the sync byte: the deframer resyncs either way).
    const uint32_t flips = prng_.range(1, 3);
    for (uint32_t i = 0; i < flips; ++i) {
      const uint32_t bit =
          prng_.below(static_cast<uint32_t>(bytes.size() * 8));
      bytes[bit >> 3] ^= static_cast<uint8_t>(1u << (bit & 7));
    }
  }
  // tx_done is 0 for star-mode deliveries: no collision check at flush.
  pending_.emplace(std::make_pair(at, enqueue_seq_++),
                   Delivery{to, std::move(bytes), from, tx_start, tx_done});
}

void Medium::add_partition(std::span<const size_t> a,
                           std::span<const size_t> b, uint64_t begin,
                           uint64_t end) {
  for (size_t x : a)
    for (size_t y : b) {
      outages_.push_back({x, y, begin, end});
      outages_.push_back({y, x, begin, end});
    }
}

bool Medium::in_outage(size_t from, size_t to, uint64_t at) const {
  for (const LinkOutage& o : outages_) {
    if ((o.from == kAnyNode || o.from == from) &&
        (o.to == kAnyNode || o.to == to) && at >= o.begin && at < o.end)
      return true;
  }
  return false;
}

// Capture-model collision resolution: a delivery is destroyed at its
// receiver iff the transmission log holds an audible transmission that
// overlaps its airtime and either (a) came from the receiver itself
// (half-duplex) or (b) completed first — with a (done, sender-id) total
// order breaking exact ties. Purely a function of the deterministic
// transmission schedule; consumes no randomness.
bool Medium::collided(size_t from, size_t to, uint64_t tx_start,
                      uint64_t tx_done) const {
  for (const TxRec& r : txlog_) {
    if (r.from == from) continue;  // own frames never overlap (serial radio)
    if (r.start >= tx_done || tx_start >= r.done) continue;  // no overlap
    if (r.from == to) return true;  // receiver was itself transmitting
    if (!topo_.linked(r.from, to)) continue;  // inaudible at the receiver
    if (r.done < tx_done || (r.done == tx_done && r.from < from))
      return true;  // the competitor completes first and is captured
  }
  return false;
}

void Medium::flush(uint64_t now) {
  auto it = pending_.begin();
  while (it != pending_.end() && it->first.first <= now) {
    const Delivery& d = it->second;
    if (d.tx_done != 0 && collided(d.from, d.to, d.tx_start, d.tx_done)) {
      ++stats_.collisions;
      if (observer_)
        observer_(d.tx_done, FaultAction::Collision, d.from, d.to);
      it = pending_.erase(it);
      continue;
    }
    devs_[d.to]->schedule_rx(d.bytes, it->first.first);
    it = pending_.erase(it);
  }
  // Prune transmission-log entries far older than any delivery still in
  // flight can overlap (worst case: a reorder-delayed copy of a maximum-
  // length frame). Bounds the log; removal is purely time-based, so it
  // never changes a collision verdict.
  if (!txlog_.empty()) {
    const uint64_t horizon = 64ull * (kMaxPayload + kFrameOverhead) *
                             DeviceHub::kCyclesPerRadioByte;
    const uint64_t cutoff = now > horizon ? now - horizon : 0;
    std::erase_if(txlog_,
                  [cutoff](const TxRec& r) { return r.done < cutoff; });
  }
}

void Medium::broadcast(size_t from, std::span<const uint8_t> packet,
                       uint64_t done_cycle) {
  const size_t n = devs_.size();
  if (link_tx_.size() < n * n) link_tx_.resize(n * n, 0);
  stats_.bytes_on_air += packet.size();

  const uint64_t base_latency =
      uint64_t(params_.latency_bytes) * DeviceHub::kCyclesPerRadioByte;
  const bool mesh = topo_.mesh;
  const uint64_t air = packet.size() * DeviceHub::kCyclesPerRadioByte;
  const uint64_t tx_start = done_cycle > air ? done_cycle - air : 0;

  // With a mesh delivery the collision check runs at flush time; every
  // enqueued copy (including duplicate/reordered ones: they model the
  // same airtime) carries the transmission identity.
  const uint64_t cid = mesh ? done_cycle : 0;

  for (size_t to = 0; to < n; ++to) {
    if (to == from) continue;
    uint32_t quality = 100;
    if (mesh) {
      quality = topo_.link_quality(from, to);
      if (quality == 0) continue;  // out of range: never offered, no rolls
    }
    const uint64_t tx_index = link_tx_[from * n + to]++;
    ++stats_.packets_offered;

    // Link-down windows are checked first and bypass both the scripted
    // policy and the random rolls — an outage consumes no randomness, so
    // scheduling one never perturbs deliveries outside its window.
    if (in_outage(from, to, done_cycle)) {
      ++stats_.outage_drops;
      if (observer_) observer_(done_cycle, FaultAction::Outage, from, to);
      continue;
    }

    // Decide this delivery's fate: scripted policy if installed, else one
    // random roll per fault class in a fixed order (drop, dup, reorder,
    // corrupt) so the consumed PRNG sequence is schedule-independent. A
    // mesh link's quality deficit folds into the single drop roll — the
    // draw count per offered link is identical to the star medium's.
    FaultAction act = FaultAction::None;
    if (policy_) {
      act = policy_(from, to, tx_index, packet);
    } else {
      const bool drop =
          prng_.percent(std::min(100u, params_.drop_pct + (100u - quality)));
      const bool dup = prng_.percent(params_.dup_pct);
      const bool reorder = prng_.percent(params_.reorder_pct);
      const bool corrupt = prng_.percent(params_.corrupt_pct);
      if (drop)
        act = FaultAction::Drop;
      else if (dup)
        act = FaultAction::Duplicate;
      else if (reorder)
        act = FaultAction::Reorder;
      else if (corrupt)
        act = FaultAction::Corrupt;
    }

    if (observer_) observer_(done_cycle, act, from, to);
    switch (act) {
      case FaultAction::Drop:
        ++stats_.dropped;
        continue;
      case FaultAction::Outage:  // scripted policy declared the link down
        ++stats_.outage_drops;
        continue;
      case FaultAction::Collision:  // scripted policy destroyed it outright
        ++stats_.collisions;
        continue;
      case FaultAction::Duplicate:
        ++stats_.duplicated;
        enqueue(to, packet, done_cycle + base_latency, false, from, tx_start,
                cid);
        enqueue(to, packet,
                done_cycle + base_latency +
                    packet.size() * DeviceHub::kCyclesPerRadioByte,
                false, from, tx_start, cid);
        break;
      case FaultAction::Reorder: {
        // Push this packet past the next few transmissions: an extra
        // delay of 2..6 packet-lengths-worth of airtime.
        ++stats_.reordered;
        const uint64_t extra = uint64_t(prng_.range(2, 6)) * packet.size() *
                               DeviceHub::kCyclesPerRadioByte;
        enqueue(to, packet, done_cycle + base_latency + extra, false, from,
                tx_start, cid);
        break;
      }
      case FaultAction::Corrupt:
        ++stats_.corrupted;
        enqueue(to, packet, done_cycle + base_latency, true, from, tx_start,
                cid);
        break;
      case FaultAction::None:
        enqueue(to, packet, done_cycle + base_latency, false, from, tx_start,
                cid);
        break;
    }
    ++stats_.delivered;
  }
}

}  // namespace sensmart::net
