#include "net/medium.hpp"

namespace sensmart::net {

using emu::DeviceHub;

void Medium::enqueue(size_t to, std::span<const uint8_t> packet, uint64_t at,
                     bool corrupt) {
  std::vector<uint8_t> bytes(packet.begin(), packet.end());
  if (corrupt) {
    // Flip 1..3 bits at seeded positions — enough to break the frame CRC
    // (or, rarely, only the sync byte: the deframer resyncs either way).
    const uint32_t flips = prng_.range(1, 3);
    for (uint32_t i = 0; i < flips; ++i) {
      const uint32_t bit =
          prng_.below(static_cast<uint32_t>(bytes.size() * 8));
      bytes[bit >> 3] ^= static_cast<uint8_t>(1u << (bit & 7));
    }
  }
  pending_.emplace(std::make_pair(at, enqueue_seq_++),
                   Delivery{to, std::move(bytes)});
}

void Medium::add_partition(std::span<const size_t> a,
                           std::span<const size_t> b, uint64_t begin,
                           uint64_t end) {
  for (size_t x : a)
    for (size_t y : b) {
      outages_.push_back({x, y, begin, end});
      outages_.push_back({y, x, begin, end});
    }
}

bool Medium::in_outage(size_t from, size_t to, uint64_t at) const {
  for (const LinkOutage& o : outages_) {
    if ((o.from == kAnyNode || o.from == from) &&
        (o.to == kAnyNode || o.to == to) && at >= o.begin && at < o.end)
      return true;
  }
  return false;
}

void Medium::flush(uint64_t now) {
  auto it = pending_.begin();
  while (it != pending_.end() && it->first.first <= now) {
    devs_[it->second.to]->schedule_rx(it->second.bytes, it->first.first);
    it = pending_.erase(it);
  }
}

void Medium::broadcast(size_t from, std::span<const uint8_t> packet,
                       uint64_t done_cycle) {
  const size_t n = devs_.size();
  if (link_tx_.size() < n * n) link_tx_.resize(n * n, 0);
  stats_.bytes_on_air += packet.size();

  const uint64_t base_latency =
      uint64_t(params_.latency_bytes) * DeviceHub::kCyclesPerRadioByte;

  for (size_t to = 0; to < n; ++to) {
    if (to == from) continue;
    const uint64_t tx_index = link_tx_[from * n + to]++;
    ++stats_.packets_offered;

    // Link-down windows are checked first and bypass both the scripted
    // policy and the random rolls — an outage consumes no randomness, so
    // scheduling one never perturbs deliveries outside its window.
    if (in_outage(from, to, done_cycle)) {
      ++stats_.outage_drops;
      if (observer_) observer_(done_cycle, FaultAction::Outage, from, to);
      continue;
    }

    // Decide this delivery's fate: scripted policy if installed, else one
    // random roll per fault class in a fixed order (drop, dup, reorder,
    // corrupt) so the consumed PRNG sequence is schedule-independent.
    FaultAction act = FaultAction::None;
    if (policy_) {
      act = policy_(from, to, tx_index, packet);
    } else {
      const bool drop = prng_.percent(params_.drop_pct);
      const bool dup = prng_.percent(params_.dup_pct);
      const bool reorder = prng_.percent(params_.reorder_pct);
      const bool corrupt = prng_.percent(params_.corrupt_pct);
      if (drop)
        act = FaultAction::Drop;
      else if (dup)
        act = FaultAction::Duplicate;
      else if (reorder)
        act = FaultAction::Reorder;
      else if (corrupt)
        act = FaultAction::Corrupt;
    }

    if (observer_) observer_(done_cycle, act, from, to);
    switch (act) {
      case FaultAction::Drop:
        ++stats_.dropped;
        continue;
      case FaultAction::Outage:  // scripted policy declared the link down
        ++stats_.outage_drops;
        continue;
      case FaultAction::Duplicate:
        ++stats_.duplicated;
        enqueue(to, packet, done_cycle + base_latency, false);
        enqueue(to, packet,
                done_cycle + base_latency +
                    packet.size() * DeviceHub::kCyclesPerRadioByte,
                false);
        break;
      case FaultAction::Reorder: {
        // Push this packet past the next few transmissions: an extra
        // delay of 2..6 packet-lengths-worth of airtime.
        ++stats_.reordered;
        const uint64_t extra = uint64_t(prng_.range(2, 6)) * packet.size() *
                               DeviceHub::kCyclesPerRadioByte;
        enqueue(to, packet, done_cycle + base_latency + extra, false);
        break;
      }
      case FaultAction::Corrupt:
        ++stats_.corrupted;
        enqueue(to, packet, done_cycle + base_latency, true);
        break;
      case FaultAction::None:
        enqueue(to, packet, done_cycle + base_latency, false);
        break;
    }
    ++stats_.delivered;
  }
}

}  // namespace sensmart::net
