#include "net/frame.hpp"

#include <algorithm>

namespace sensmart::net {

uint16_t crc16_ccitt(std::span<const uint8_t> bytes) {
  uint16_t crc = 0xFFFF;
  for (uint8_t b : bytes) {
    crc ^= static_cast<uint16_t>(b) << 8;
    for (int i = 0; i < 8; ++i)
      crc = (crc & 0x8000) ? static_cast<uint16_t>((crc << 1) ^ 0x1021)
                           : static_cast<uint16_t>(crc << 1);
  }
  return crc;
}

uint32_t crc32(std::span<const uint8_t> bytes) {
  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t b : bytes) {
    crc ^= b;
    for (int i = 0; i < 8; ++i)
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
  }
  return ~crc;
}

std::vector<uint8_t> encode_frame(const Frame& f) {
  std::vector<uint8_t> out;
  encode_frame_into(f, out);
  return out;
}

void encode_frame_into(const Frame& f, std::vector<uint8_t>& out) {
  out.clear();
  out.reserve(kFrameOverhead + f.payload.size());
  out.push_back(kFrameSync);
  out.push_back(static_cast<uint8_t>(f.type));
  out.push_back(f.version);
  out.push_back(static_cast<uint8_t>(f.seq & 0xFF));
  out.push_back(static_cast<uint8_t>(f.seq >> 8));
  out.push_back(static_cast<uint8_t>(f.payload.size()));
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  const uint16_t crc =
      crc16_ccitt(std::span<const uint8_t>(out).subspan(1, 5 + f.payload.size()));
  out.push_back(static_cast<uint8_t>(crc & 0xFF));
  out.push_back(static_cast<uint8_t>(crc >> 8));
}

std::optional<Frame> Deframer::next() {
  while (!buf_.empty()) {
    if (buf_.front() != kFrameSync) {
      buf_.pop_front();
      ++skipped_;
      continue;
    }
    if (buf_.size() < kFrameOverhead) return std::nullopt;  // need header
    const uint8_t len = buf_[5];
    if (len > kMaxPayload) {  // impossible length: lost sync
      buf_.pop_front();
      ++skipped_;
      continue;
    }
    const size_t total = kFrameOverhead + len;
    if (buf_.size() < total) return std::nullopt;  // frame still arriving
    std::vector<uint8_t> body(buf_.begin() + 1, buf_.begin() + 6 + len);
    const uint16_t want = static_cast<uint16_t>(
        buf_[6 + len] | (static_cast<uint16_t>(buf_[7 + len]) << 8));
    if (crc16_ccitt(body) != want) {
      ++crc_errors_;
      buf_.pop_front();  // resync from the next byte
      ++skipped_;
      continue;
    }
    const uint8_t rawtype = body[0];
    Frame f;
    f.type = static_cast<FrameType>(rawtype);
    f.version = body[1];
    f.seq = static_cast<uint16_t>(body[2] | (static_cast<uint16_t>(body[3]) << 8));
    f.payload.assign(body.begin() + 5, body.end());
    buf_.erase(buf_.begin(), buf_.begin() + total);
    if (rawtype < uint8_t(FrameType::Summary) ||
        rawtype > uint8_t(FrameType::Control)) {
      // CRC-valid but unknown type (future protocol revision): skip it.
      ++crc_errors_;
      continue;
    }
    return f;
  }
  return std::nullopt;
}

Frame make_summary(uint8_t version, const SummaryInfo& info) {
  Frame f;
  f.type = FrameType::Summary;
  f.version = version;
  f.seq = 0;
  auto& p = f.payload;
  p.push_back(static_cast<uint8_t>(info.total_chunks & 0xFF));
  p.push_back(static_cast<uint8_t>(info.total_chunks >> 8));
  for (int i = 0; i < 4; ++i)
    p.push_back(static_cast<uint8_t>(info.image_bytes >> (8 * i)));
  for (int i = 0; i < 4; ++i)
    p.push_back(static_cast<uint8_t>(info.image_crc >> (8 * i)));
  p.push_back(info.chunk_payload);
  if (info.has_mac)
    for (int i = 0; i < 8; ++i)
      p.push_back(static_cast<uint8_t>(info.image_mac >> (8 * i)));
  return f;
}

Frame make_mesh_summary(uint8_t version, const SummaryInfo& info,
                        uint16_t sender, uint16_t hop) {
  Frame f = make_summary(version, info);
  f.seq = hop;
  f.payload.push_back(static_cast<uint8_t>(sender & 0xFF));
  f.payload.push_back(static_cast<uint8_t>(sender >> 8));
  return f;
}

std::optional<SummaryInfo> parse_summary(const Frame& f) {
  // Four valid payload sizes: 11 geometry-only (star), 13 +sender (mesh),
  // 19 +MAC (authenticated star), 21 +MAC +sender (authenticated mesh).
  const size_t sz = f.payload.size();
  if (f.type != FrameType::Summary ||
      (sz != 11 && sz != 13 && sz != 19 && sz != 21))
    return std::nullopt;
  SummaryInfo s;
  s.total_chunks = static_cast<uint16_t>(
      f.payload[0] | (static_cast<uint16_t>(f.payload[1]) << 8));
  for (int i = 0; i < 4; ++i)
    s.image_bytes |= static_cast<uint32_t>(f.payload[2 + i]) << (8 * i);
  for (int i = 0; i < 4; ++i)
    s.image_crc |= static_cast<uint32_t>(f.payload[6 + i]) << (8 * i);
  s.chunk_payload = f.payload[10];
  if (s.chunk_payload == 0 || s.chunk_payload > kMaxPayload) return std::nullopt;
  size_t at = 11;
  if (sz == 19 || sz == 21) {
    s.has_mac = true;
    for (int i = 0; i < 8; ++i)
      s.image_mac |= static_cast<uint64_t>(f.payload[at + i]) << (8 * i);
    at += 8;
  }
  if (sz == 13 || sz == 21) {
    s.has_sender = true;
    s.sender = static_cast<uint16_t>(
        f.payload[at] | (static_cast<uint16_t>(f.payload[at + 1]) << 8));
  }
  return s;
}

Frame make_nack(uint8_t version, uint16_t node_id,
                std::span<const uint16_t> missing) {
  Frame f;
  f.type = FrameType::Nack;
  f.version = version;
  f.seq = node_id;
  const size_t n = std::min(missing.size(), kMaxNackList);
  f.payload.push_back(static_cast<uint8_t>(n));
  for (size_t i = 0; i < n; ++i) {
    f.payload.push_back(static_cast<uint8_t>(missing[i] & 0xFF));
    f.payload.push_back(static_cast<uint8_t>(missing[i] >> 8));
  }
  return f;
}

std::optional<std::vector<uint16_t>> parse_nack(const Frame& f) {
  if (f.type != FrameType::Nack || f.payload.empty()) return std::nullopt;
  const size_t n = f.payload[0];
  if (n > kMaxNackList || f.payload.size() != 1 + 2 * n) return std::nullopt;
  std::vector<uint16_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i)
    out.push_back(static_cast<uint16_t>(
        f.payload[1 + 2 * i] |
        (static_cast<uint16_t>(f.payload[2 + 2 * i]) << 8)));
  return out;
}

Frame make_mesh_nack(uint8_t version, uint16_t node_id,
                     std::span<const uint16_t> missing, uint16_t target,
                     uint16_t hop) {
  Frame f = make_nack(version, node_id, missing);
  f.payload.push_back(static_cast<uint8_t>(target & 0xFF));
  f.payload.push_back(static_cast<uint8_t>(target >> 8));
  f.payload.push_back(static_cast<uint8_t>(std::min<uint16_t>(hop, 0xFF)));
  return f;
}

std::optional<MeshNack> parse_mesh_nack(const Frame& f) {
  if (f.type != FrameType::Nack || f.payload.empty()) return std::nullopt;
  const size_t n = f.payload[0];
  if (n > kMaxNackList || f.payload.size() != 1 + 2 * n + 3)
    return std::nullopt;
  MeshNack out;
  out.missing.reserve(n);
  for (size_t i = 0; i < n; ++i)
    out.missing.push_back(static_cast<uint16_t>(
        f.payload[1 + 2 * i] |
        (static_cast<uint16_t>(f.payload[2 + 2 * i]) << 8)));
  const size_t at = 1 + 2 * n;
  out.target = static_cast<uint16_t>(
      f.payload[at] | (static_cast<uint16_t>(f.payload[at + 1]) << 8));
  out.hop = f.payload[at + 2];
  return out;
}

Frame make_mesh_ack(uint8_t version, uint16_t origin, uint16_t relayer,
                    uint16_t hop) {
  Frame f;
  f.type = FrameType::Ack;
  f.version = version;
  f.seq = origin;
  f.payload.push_back(static_cast<uint8_t>(relayer & 0xFF));
  f.payload.push_back(static_cast<uint8_t>(relayer >> 8));
  f.payload.push_back(static_cast<uint8_t>(std::min<uint16_t>(hop, 0xFF)));
  return f;
}

Frame make_mesh_ack(uint8_t version, uint16_t origin, uint16_t relayer,
                    uint16_t hop, uint64_t tag) {
  Frame f = make_mesh_ack(version, origin, relayer, hop);
  for (int i = 0; i < 8; ++i)
    f.payload.push_back(static_cast<uint8_t>(tag >> (8 * i)));
  return f;
}

std::optional<MeshAck> parse_mesh_ack(const Frame& f) {
  const size_t sz = f.payload.size();
  if (f.type != FrameType::Ack || (sz != 3 && sz != 11)) return std::nullopt;
  MeshAck out;
  out.relayer = static_cast<uint16_t>(
      f.payload[0] | (static_cast<uint16_t>(f.payload[1]) << 8));
  out.hop = f.payload[2];
  if (sz == 11) {
    out.has_tag = true;
    for (int i = 0; i < 8; ++i)
      out.tag |= static_cast<uint64_t>(f.payload[3 + i]) << (8 * i);
  }
  return out;
}

Frame make_auth_ack(uint8_t version, uint16_t origin, uint64_t tag) {
  Frame f;
  f.type = FrameType::Ack;
  f.version = version;
  f.seq = origin;
  for (int i = 0; i < 8; ++i)
    f.payload.push_back(static_cast<uint8_t>(tag >> (8 * i)));
  return f;
}

std::optional<uint64_t> ack_auth_tag(const Frame& f) {
  const size_t sz = f.payload.size();
  if (f.type != FrameType::Ack || (sz != 8 && sz != 11)) return std::nullopt;
  const size_t at = sz == 8 ? 0 : 3;  // star: tag only; mesh: after relayer+hop
  uint64_t tag = 0;
  for (int i = 0; i < 8; ++i)
    tag |= static_cast<uint64_t>(f.payload[at + i]) << (8 * i);
  return tag;
}

Frame make_control(uint8_t version, uint16_t target, const ControlInfo& info) {
  Frame f;
  f.type = FrameType::Control;
  f.version = version;
  f.seq = target;
  auto& p = f.payload;
  p.push_back(static_cast<uint8_t>(info.cmd));
  p.push_back(static_cast<uint8_t>(info.ctl_seq & 0xFF));
  p.push_back(static_cast<uint8_t>(info.ctl_seq >> 8));
  for (int i = 0; i < 4; ++i)
    p.push_back(static_cast<uint8_t>(info.image_crc >> (8 * i)));
  if (info.has_tag)
    for (int i = 0; i < 8; ++i)
      p.push_back(static_cast<uint8_t>(info.tag >> (8 * i)));
  return f;
}

std::optional<ControlInfo> parse_control(const Frame& f) {
  const size_t sz = f.payload.size();
  if (f.type != FrameType::Control || (sz != 7 && sz != 15))
    return std::nullopt;
  ControlInfo c;
  const uint8_t cmd = f.payload[0];
  if (cmd < uint8_t(ControlCmd::ActivateTrial) ||
      cmd > uint8_t(ControlCmd::Rollback))
    return std::nullopt;
  c.cmd = static_cast<ControlCmd>(cmd);
  c.ctl_seq = static_cast<uint16_t>(
      f.payload[1] | (static_cast<uint16_t>(f.payload[2]) << 8));
  for (int i = 0; i < 4; ++i)
    c.image_crc |= static_cast<uint32_t>(f.payload[3 + i]) << (8 * i);
  if (sz == 15) {
    c.has_tag = true;
    for (int i = 0; i < 8; ++i)
      c.tag |= static_cast<uint64_t>(f.payload[7 + i]) << (8 * i);
  }
  return c;
}

std::array<uint8_t, 12> health_core(const HealthReport& hr) {
  std::array<uint8_t, 12> core{};
  core[0] = hr.flags;
  core[1] = static_cast<uint8_t>(hr.restarts & 0xFF);
  core[2] = static_cast<uint8_t>(hr.restarts >> 8);
  core[3] = static_cast<uint8_t>(hr.quarantines & 0xFF);
  core[4] = static_cast<uint8_t>(hr.quarantines >> 8);
  core[5] = static_cast<uint8_t>(hr.watchdog_fires & 0xFF);
  core[6] = static_cast<uint8_t>(hr.watchdog_fires >> 8);
  for (int i = 0; i < 4; ++i)
    core[7 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(hr.image_crc >> (8 * i));
  core[11] = hr.active_slot;
  return core;
}

Frame make_health(uint8_t version, uint16_t origin, const HealthReport& hr) {
  Frame f;
  f.type = FrameType::Ack;
  f.version = version;
  f.seq = origin;
  const auto core = health_core(hr);
  f.payload.assign(core.begin(), core.end());
  if (hr.has_tag)
    for (int i = 0; i < 8; ++i)
      f.payload.push_back(static_cast<uint8_t>(hr.tag >> (8 * i)));
  if (hr.has_relayer) {
    f.payload.push_back(static_cast<uint8_t>(hr.relayer & 0xFF));
    f.payload.push_back(static_cast<uint8_t>(hr.relayer >> 8));
    f.payload.push_back(static_cast<uint8_t>(std::min<uint16_t>(hr.hop, 0xFF)));
  }
  return f;
}

std::optional<HealthReport> parse_health(const Frame& f) {
  // Four valid sizes: 12 core (star), 15 +relayer (mesh), 20 +tag
  // (authenticated star), 23 +tag +relayer (authenticated mesh).
  const size_t sz = f.payload.size();
  if (f.type != FrameType::Ack ||
      (sz != 12 && sz != 15 && sz != 20 && sz != 23))
    return std::nullopt;
  HealthReport hr;
  hr.flags = f.payload[0];
  const uint8_t known = kHealthTrialClean | kHealthConfirmed |
                        kHealthRolledBack | kHealthBootInterrupted |
                        kHealthGateFailed;
  if ((hr.flags & ~known) != 0) return std::nullopt;
  hr.restarts = static_cast<uint16_t>(
      f.payload[1] | (static_cast<uint16_t>(f.payload[2]) << 8));
  hr.quarantines = static_cast<uint16_t>(
      f.payload[3] | (static_cast<uint16_t>(f.payload[4]) << 8));
  hr.watchdog_fires = static_cast<uint16_t>(
      f.payload[5] | (static_cast<uint16_t>(f.payload[6]) << 8));
  for (int i = 0; i < 4; ++i)
    hr.image_crc |= static_cast<uint32_t>(f.payload[7 + i]) << (8 * i);
  hr.active_slot = f.payload[11];
  if (hr.active_slot > 1) return std::nullopt;
  size_t at = 12;
  if (sz == 20 || sz == 23) {
    hr.has_tag = true;
    for (int i = 0; i < 8; ++i)
      hr.tag |= static_cast<uint64_t>(f.payload[at + i]) << (8 * i);
    at += 8;
  }
  if (sz == 15 || sz == 23) {
    hr.has_relayer = true;
    hr.relayer = static_cast<uint16_t>(
        f.payload[at] | (static_cast<uint16_t>(f.payload[at + 1]) << 8));
    hr.hop = f.payload[at + 2];
  }
  return hr;
}

}  // namespace sensmart::net
