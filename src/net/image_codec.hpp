// Wire codec for a naturalized system image (the unit of over-the-air
// dissemination): the base station runs the rewriter/linker, serializes the
// resulting rw::LinkedSystem into a self-contained blob, and nodes
// reconstruct an identical LinkedSystem from the verified bytes before
// handing it to the kernel for installation.
//
// The encoding is deliberately dumb — little-endian fields in declaration
// order, length-prefixed vectors — because the conformance suite pins it:
// serialize(deserialize(b)) == b, and a deserialized system must run
// byte-identically to the original.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "rewriter/linker.hpp"

namespace sensmart::net {

inline constexpr uint32_t kImageMagic = 0x4D495353u;  // "SSIM"
inline constexpr uint16_t kImageFormatVersion = 1;

std::vector<uint8_t> serialize_system(const rw::LinkedSystem& sys);

// Strictly validating: any truncation, bad magic, impossible count or
// trailing garbage yields nullopt (a corrupted blob must never install).
std::optional<rw::LinkedSystem> deserialize_system(
    std::span<const uint8_t> blob);

}  // namespace sensmart::net
