// Seeded lossy broadcast medium connecting the radio devices of the
// simulated nodes (DESIGN.md §7).
//
// Every transmitted packet is offered to every other node's receiver;
// per (sender, receiver) link the medium rolls — in a fixed order, from one
// SplitMix64 stream — drop, duplicate, corruption and reordering delay, so
// a run is a pure function of the chaos seed and the (deterministic)
// transmission sequence. Deliveries are buffered and flushed once per
// simulation quantum in delivery-time order (so a reorder-delayed packet
// really does land behind packets transmitted after it), then handed to
// the destination device via DeviceHub::schedule_rx, whose serial-medium
// queuing keeps overlapping deliveries ordered.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "chaos/prng.hpp"
#include "emu/devices.hpp"
#include "net/topology.hpp"

namespace sensmart::net {

struct LinkParams {
  // Probabilities in percent (0..100), rolled per link per packet.
  uint32_t drop_pct = 0;
  uint32_t dup_pct = 0;
  uint32_t reorder_pct = 0;
  uint32_t corrupt_pct = 0;
  // Propagation + turnaround latency in on-air byte times (>= 1: a packet
  // sent in one simulation quantum can never be consumed in the same one).
  uint32_t latency_bytes = 2;
};

// Scripted fault override for conformance tests: called once per
// (link, packet); the returned action replaces the random rolls for that
// delivery. `link_tx_index` counts packets offered on this link. Outage
// means the link is down for this delivery (counted separately from
// random drops).
enum class FaultAction : uint8_t {
  None, Drop, Duplicate, Reorder, Corrupt, Outage,
  // Mesh only (never produced by a scripted policy): the delivery was
  // destroyed by a concurrent audible transmission (capture model).
  Collision,
};
using FaultPolicy = std::function<FaultAction(
    size_t from, size_t to, uint64_t link_tx_index,
    std::span<const uint8_t> packet)>;

// Matches any node id in a LinkOutage endpoint.
inline constexpr size_t kAnyNode = static_cast<size_t>(-1);

// A link-down window [begin, end) in simulation cycles: every delivery
// whose transmission completes while the window is open is suppressed.
// Endpoints accept kAnyNode, so one entry can down every link touching a
// node (a crashed/rebooting node) or a whole direction of a partition.
// Outages are decided before any random roll and consume no randomness:
// adding a window never perturbs the fate of deliveries outside it.
struct LinkOutage {
  size_t from = kAnyNode;
  size_t to = kAnyNode;
  uint64_t begin = 0;
  uint64_t end = 0;  // exclusive
};

struct MediumStats {
  uint64_t packets_offered = 0;  // per-link deliveries attempted
  uint64_t delivered = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
  uint64_t corrupted = 0;
  uint64_t outage_drops = 0;  // deliveries suppressed by link-down windows
  uint64_t bytes_on_air = 0;  // sender-side airtime, bytes
  uint64_t collisions = 0;    // mesh: deliveries destroyed by concurrent
                              // audible transmissions (capture model)
};

class Medium {
 public:
  Medium(LinkParams params, uint64_t seed)
      : params_(params), prng_(seed ^ 0x6D656469756DULL) {
    if (params_.latency_bytes == 0) params_.latency_bytes = 1;
  }

  // Attach node radios in id order; ids are indices into this vector.
  void attach(emu::DeviceHub* dev) { devs_.push_back(dev); }
  size_t nodes() const { return devs_.size(); }

  void set_fault_policy(FaultPolicy p) { policy_ = std::move(p); }

  // Install a mesh topology (DESIGN.md §10). With a mesh topology a
  // broadcast is offered only to the sender's in-range neighbors, each
  // link's quality deficit (100 - quality) is folded into its single drop
  // roll (the PRNG draw count per offered link is unchanged), and
  // deliveries are subject to deterministic receiver-side collisions:
  // when two audible transmissions overlap in airtime at a receiver, the
  // one completing first is captured and the other destroyed (a node that
  // was itself transmitting receives nothing — half-duplex). Collisions
  // are resolved against the transmission log at flush time, consume no
  // randomness, and depend only on the (deterministic) transmission
  // schedule. Without a mesh topology behavior is byte-identical to the
  // legacy single-hop medium.
  void set_topology(Topology t) { topo_ = std::move(t); }
  const Topology& topology() const { return topo_; }

  // Schedule a link-down window; may be called mid-simulation (windows in
  // the past simply never match).
  void add_outage(const LinkOutage& o) { outages_.push_back(o); }
  // Two-sided partition: every link between a member of `a` and a member
  // of `b` is down for [begin, end), in both directions.
  void add_partition(std::span<const size_t> a, std::span<const size_t> b,
                     uint64_t begin, uint64_t end);
  const std::vector<LinkOutage>& outages() const { return outages_; }

  // Broadcast a packet transmitted by `from`, whose last byte left the air
  // at `done_cycle`, to every other attached node (with a mesh topology:
  // to the sender's in-range neighbors only). Deliveries are buffered
  // until flush().
  void broadcast(size_t from, std::span<const uint8_t> packet,
                 uint64_t done_cycle);

  // Mesh only: register a transmission's airtime window [start, done) the
  // moment it starts. The simulator calls this for every mesh frame it
  // puts on the air (in its canonical barrier order), giving the
  // collision check at flush time complete knowledge of overlapping
  // transmissions — including ones that complete after the delivery being
  // checked (half-duplex: a receiver mid-transmission hears nothing).
  // No-op without a mesh topology.
  void note_tx(size_t from, uint64_t start, uint64_t done) {
    if (topo_.mesh) txlog_.push_back({from, start, done});
  }

  // Hand every delivery whose start time is <= `now` to its destination
  // radio, in (time, enqueue-order) order. Called once per simulation
  // quantum by the network simulator.
  void flush(uint64_t now);

  const MediumStats& stats() const { return stats_; }

  // Observer for the simulation trace: (done_cycle, action, from, to).
  using Observer = std::function<void(uint64_t, FaultAction, size_t, size_t)>;
  void set_observer(Observer obs) { observer_ = std::move(obs); }

 private:
  void enqueue(size_t to, std::span<const uint8_t> packet, uint64_t at,
               bool corrupt, size_t from = 0, uint64_t tx_start = 0,
               uint64_t tx_done = 0);

  bool in_outage(size_t from, size_t to, uint64_t at) const;
  bool collided(size_t from, size_t to, uint64_t tx_start,
                uint64_t tx_done) const;

  LinkParams params_;
  chaos::Prng prng_;
  Topology topo_;  // empty (mesh=false) for the legacy single-hop medium
  std::vector<LinkOutage> outages_;
  std::vector<emu::DeviceHub*> devs_;
  std::vector<uint64_t> link_tx_;  // per-link offered-packet counters
  FaultPolicy policy_;
  Observer observer_;
  MediumStats stats_;
  // Buffered deliveries keyed by (start cycle, enqueue sequence) — the
  // sequence keeps the drain order total and deterministic. Mesh
  // deliveries carry their transmission's identity and airtime window so
  // the collision check at flush time can match them against the log.
  struct Delivery {
    size_t to;
    std::vector<uint8_t> bytes;
    size_t from = 0;
    uint64_t tx_start = 0;
    uint64_t tx_done = 0;  // 0 = star-mode delivery, no collision check
  };
  std::map<std::pair<uint64_t, uint64_t>, Delivery> pending_;
  uint64_t enqueue_seq_ = 0;
  // Mesh transmission log for collision resolution. Broadcasts reach the
  // medium in a canonical deterministic order (the sharded engine replays
  // TX completions at its quantum barrier in machine-id order), and every
  // delivery is flushed at least one quantum after its transmission
  // completed, so by the time a delivery is checked the log holds every
  // transmission that completed at or before its own completion — exactly
  // the competitors the capture rule consults.
  struct TxRec {
    size_t from;
    uint64_t start, done;
  };
  std::vector<TxRec> txlog_;
};

}  // namespace sensmart::net
