// Over-the-air frame format of the dissemination protocol (DESIGN.md §7).
//
// Every radio packet is one frame:
//
//   [0]      sync byte 0xA5
//   [1]      type (FrameType)
//   [2]      image version
//   [3..4]   seq, little-endian (chunk index for Data; node id for Nack/Ack)
//   [5]      payload length L (0..kMaxPayload)
//   [6..6+L) payload
//   [6+L..]  CRC-16/CCITT over bytes [1, 6+L), little-endian
//
// The receive side parses the raw RX byte stream with a resynchronizing
// Deframer: a corrupted sync byte, length byte or CRC drops bytes until the
// next parseable frame — corruption is detected, never delivered.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

namespace sensmart::net {

inline constexpr uint8_t kFrameSync = 0xA5;
inline constexpr size_t kMaxPayload = 48;
inline constexpr size_t kFrameOverhead = 8;  // sync+type+ver+seq2+len+crc2

enum class FrameType : uint8_t {
  Summary = 1,  // image metadata: total chunks, byte size, whole-image CRC
  Data = 2,     // one chunk of the image blob
  Nack = 3,     // receiver -> base: list of missing chunk indices
  Ack = 4,      // receiver -> base: whole image received and verified
};

struct Frame {
  FrameType type = FrameType::Data;
  uint8_t version = 0;
  uint16_t seq = 0;
  std::vector<uint8_t> payload;
};

// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) — frame integrity.
uint16_t crc16_ccitt(std::span<const uint8_t> bytes);
// CRC-32 (reflected, poly 0xEDB88320) — whole-image integrity.
uint32_t crc32(std::span<const uint8_t> bytes);

// Serialize a frame into wire bytes (one radio packet).
std::vector<uint8_t> encode_frame(const Frame& f);
// Allocation-free variant for per-packet hot paths: `out` is cleared and
// refilled, keeping its capacity, so a caller-owned scratch buffer makes
// steady-state encoding allocation-free.
void encode_frame_into(const Frame& f, std::vector<uint8_t>& out);

// Streaming parser over the raw RX byte sequence.
class Deframer {
 public:
  void push(uint8_t byte) { buf_.push_back(byte); }
  // Next complete, CRC-valid frame, or nullopt if more bytes are needed.
  // Invalid prefixes are skipped byte-by-byte (resync).
  std::optional<Frame> next();

  uint64_t crc_errors() const { return crc_errors_; }
  uint64_t skipped_bytes() const { return skipped_; }

 private:
  std::deque<uint8_t> buf_;
  uint64_t crc_errors_ = 0;
  uint64_t skipped_ = 0;
};

// --- Typed payloads ---------------------------------------------------------

struct SummaryInfo {
  uint16_t total_chunks = 0;
  uint32_t image_bytes = 0;
  uint32_t image_crc = 0;
  uint8_t chunk_payload = 0;  // bytes per Data chunk (last may be short)
};

Frame make_summary(uint8_t version, const SummaryInfo& info);
std::optional<SummaryInfo> parse_summary(const Frame& f);

// A Nack carries up to kMaxNackList missing chunk indices; an empty list
// means "I have no summary yet — send it".
inline constexpr size_t kMaxNackList = 16;
Frame make_nack(uint8_t version, uint16_t node_id,
                std::span<const uint16_t> missing);
std::optional<std::vector<uint16_t>> parse_nack(const Frame& f);

}  // namespace sensmart::net
