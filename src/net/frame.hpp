// Over-the-air frame format of the dissemination protocol (DESIGN.md §7).
//
// Every radio packet is one frame:
//
//   [0]      sync byte 0xA5
//   [1]      type (FrameType)
//   [2]      image version
//   [3..4]   seq, little-endian (chunk index for Data; node id for Nack/Ack)
//   [5]      payload length L (0..kMaxPayload)
//   [6..6+L) payload
//   [6+L..]  CRC-16/CCITT over bytes [1, 6+L), little-endian
//
// The receive side parses the raw RX byte stream with a resynchronizing
// Deframer: a corrupted sync byte, length byte or CRC drops bytes until the
// next parseable frame — corruption is detected, never delivered.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

namespace sensmart::net {

inline constexpr uint8_t kFrameSync = 0xA5;
inline constexpr size_t kMaxPayload = 48;
inline constexpr size_t kFrameOverhead = 8;  // sync+type+ver+seq2+len+crc2

enum class FrameType : uint8_t {
  Summary = 1,  // image metadata: total chunks, byte size, whole-image CRC
  Data = 2,     // one chunk of the image blob
  Nack = 3,     // receiver -> base: list of missing chunk indices
  Ack = 4,      // receiver -> base: whole image received and verified
  Control = 5,  // base -> node: staged-rollout command (DESIGN.md §12)
};

struct Frame {
  FrameType type = FrameType::Data;
  uint8_t version = 0;
  uint16_t seq = 0;
  std::vector<uint8_t> payload;
};

// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) — frame integrity.
uint16_t crc16_ccitt(std::span<const uint8_t> bytes);
// CRC-32 (reflected, poly 0xEDB88320) — whole-image integrity.
uint32_t crc32(std::span<const uint8_t> bytes);

// Serialize a frame into wire bytes (one radio packet).
std::vector<uint8_t> encode_frame(const Frame& f);
// Allocation-free variant for per-packet hot paths: `out` is cleared and
// refilled, keeping its capacity, so a caller-owned scratch buffer makes
// steady-state encoding allocation-free.
void encode_frame_into(const Frame& f, std::vector<uint8_t>& out);

// Streaming parser over the raw RX byte sequence.
class Deframer {
 public:
  void push(uint8_t byte) { buf_.push_back(byte); }
  // Next complete, CRC-valid frame, or nullopt if more bytes are needed.
  // Invalid prefixes are skipped byte-by-byte (resync).
  std::optional<Frame> next();

  uint64_t crc_errors() const { return crc_errors_; }
  uint64_t skipped_bytes() const { return skipped_; }

 private:
  std::deque<uint8_t> buf_;
  uint64_t crc_errors_ = 0;
  uint64_t skipped_ = 0;
};

// --- Typed payloads ---------------------------------------------------------
//
// Mesh extensions (DESIGN.md §10) and authentication (DESIGN.md §11) reuse
// the same four frame types and the same wire layout; every variant is
// distinguished purely by payload length, so the legacy single-hop (star)
// unauthenticated encodings are byte-for-byte unchanged:
//   Summary  star: 11-byte payload, seq = 0.
//            mesh: 13-byte payload (sender id appended), seq = sender hop.
//            auth: an 8-byte SipHash-2-4 image MAC inserted after the
//            geometry (star 19, mesh 21 — the sender stays last).
//   Nack     star: [count][missing pairs...], seq = sender id.
//            mesh: star payload + [target lo][target hi][sender hop]; the
//            target is the parent the Nack asks to serve (0 = base,
//            kNackAnyTarget = "anyone: re-announce the Summary").
//   Ack      star: empty payload, seq = verified node id.
//            mesh: [relayer lo][relayer hi][relayer hop], seq = origin —
//            relayed hop-by-hop toward the base, origin preserved.
//            auth: an 8-byte keyed tag appended (star 8, mesh 11) binding
//            (origin, version, image CRC) — see net/auth.hpp.
//   Data     identical in all modes (any holder can serve a chunk).

struct SummaryInfo {
  uint16_t total_chunks = 0;
  uint32_t image_bytes = 0;
  uint32_t image_crc = 0;
  uint8_t chunk_payload = 0;  // bytes per Data chunk (last may be short)
  // Authenticated dissemination only: SipHash-2-4 MAC over the image blob.
  bool has_mac = false;
  uint64_t image_mac = 0;
  // Mesh only: the node that transmitted this Summary (relays rewrite it).
  bool has_sender = false;
  uint16_t sender = 0;
};

Frame make_summary(uint8_t version, const SummaryInfo& info);
// Mesh Summary: same geometry payload plus the sender id; the sender's
// hop count rides in the frame's seq field.
Frame make_mesh_summary(uint8_t version, const SummaryInfo& info,
                        uint16_t sender, uint16_t hop);
std::optional<SummaryInfo> parse_summary(const Frame& f);

// A Nack carries up to kMaxNackList missing chunk indices; an empty list
// means "I have no summary yet — send it".
inline constexpr size_t kMaxNackList = 16;
Frame make_nack(uint8_t version, uint16_t node_id,
                std::span<const uint16_t> missing);
std::optional<std::vector<uint16_t>> parse_nack(const Frame& f);

// Mesh Nack target asking any neighbor to re-announce the Summary (used
// when the sender knows no parent yet, e.g. right after a reboot). By
// protocol no one answers it with Data — only with a Summary relay — so
// it can never trigger a duplicate-serving storm.
inline constexpr uint16_t kNackAnyTarget = 0xFFFF;

struct MeshNack {
  std::vector<uint16_t> missing;
  uint16_t target = kNackAnyTarget;  // node asked to serve (0 = base)
  uint16_t hop = 0;                  // sender's hop count
};

Frame make_mesh_nack(uint8_t version, uint16_t node_id,
                     std::span<const uint16_t> missing, uint16_t target,
                     uint16_t hop);
std::optional<MeshNack> parse_mesh_nack(const Frame& f);

// Mesh Ack: seq carries the origin (the node whose install is being
// acknowledged, exactly as in star mode); the payload identifies the
// relayer so receivers can tell downstream acks (to relay) from upstream
// ones (to suppress).
struct MeshAck {
  uint16_t relayer = 0;
  uint16_t hop = 0;  // relayer's hop count
  // Authenticated runs only: keyed tag over (origin, version, image CRC).
  bool has_tag = false;
  uint64_t tag = 0;
};

Frame make_mesh_ack(uint8_t version, uint16_t origin, uint16_t relayer,
                    uint16_t hop);
Frame make_mesh_ack(uint8_t version, uint16_t origin, uint16_t relayer,
                    uint16_t hop, uint64_t tag);
std::optional<MeshAck> parse_mesh_ack(const Frame& f);

// Authenticated star Ack: empty legacy payload replaced by the 8-byte tag.
Frame make_auth_ack(uint8_t version, uint16_t origin, uint64_t tag);
// Extract the auth tag from either Ack variant (star 8 / mesh 11 payload);
// nullopt if the frame carries none (legacy encodings).
std::optional<uint64_t> ack_auth_tag(const Frame& f);

// --- Staged rollout (DESIGN.md §12) -----------------------------------------
//
// Two additions ride the existing wire format:
//   Control  base -> node command, its own frame type (5); seq = target id.
//            payload: [cmd][ctl_seq lo][ctl_seq hi][image_crc x4] = 7 bytes;
//            authenticated runs append an 8-byte keyed tag (15). In mesh
//            mode Controls are flood-relayed verbatim (tag included), so
//            the encoding is topology-independent.
//   Health   node -> base report, an Ack-type frame discriminated (like
//            every other variant) purely by payload length; seq = origin.
//            payload: [flags][restarts x2][quarantines x2][watchdog x2]
//            [image_crc x4][active_slot] = 12 bytes; mesh appends
//            [relayer x2][hop] (15); auth inserts the 8-byte tag after the
//            12-byte core (star 20, mesh 23). All four sizes are disjoint
//            from the legacy Ack set {0, 3, 8, 11}, so legacy parsing is
//            byte-for-byte unchanged.

enum class ControlCmd : uint8_t {
  ActivateTrial = 1,  // stage the verified transfer image and boot it
  ConfirmTrial = 2,   // probation passed: promote the trial slot
  Rollback = 3,       // fall back to the previous image (also acks failures)
};

struct ControlInfo {
  ControlCmd cmd = ControlCmd::ActivateTrial;
  uint16_t ctl_seq = 0;    // base-minted, strictly increasing per send
  uint32_t image_crc = 0;  // the rollout image this command is about
  bool has_tag = false;
  uint64_t tag = 0;
};

Frame make_control(uint8_t version, uint16_t target, const ControlInfo& info);
std::optional<ControlInfo> parse_control(const Frame& f);

// Health-report flags (bitmask).
inline constexpr uint8_t kHealthTrialClean = 0x01;     // probation passed
inline constexpr uint8_t kHealthConfirmed = 0x02;      // trial promoted
inline constexpr uint8_t kHealthRolledBack = 0x04;     // back on old image
inline constexpr uint8_t kHealthBootInterrupted = 0x08; // reboot mid-trial
inline constexpr uint8_t kHealthGateFailed = 0x10;     // quarantine/watchdog

struct HealthReport {
  uint8_t flags = 0;
  uint16_t restarts = 0;
  uint16_t quarantines = 0;
  uint16_t watchdog_fires = 0;
  uint32_t image_crc = 0;  // CRC of the active slot's image
  uint8_t active_slot = 0;
  // Mesh relaying (outside the auth tag, exactly like mesh Acks).
  bool has_relayer = false;
  uint16_t relayer = 0;
  uint16_t hop = 0;
  bool has_tag = false;
  uint64_t tag = 0;
};

Frame make_health(uint8_t version, uint16_t origin, const HealthReport& hr);
std::optional<HealthReport> parse_health(const Frame& f);
// The 12 tag-covered core bytes of a health payload (for keyed tags).
std::array<uint8_t, 12> health_core(const HealthReport& hr);

}  // namespace sensmart::net
