// Spatial network topologies for the multi-hop mesh simulator
// (DESIGN.md §10).
//
// A Topology places the base (id 0) and every receiver on a plane and
// derives, once, the per-link delivery quality matrix the Medium consults:
// quality 0 means out of radio range (the packet is never offered),
// 1..100 scales the link's effective loss. Placement uses fixed-point
// integer coordinates (kUnitsPerSpacing units = one grid spacing) so every
// distance comparison is exact integer arithmetic — a topology is a pure
// function of (spec, node count, chaos seed) on every platform, which the
// byte-identical trace-digest contract requires.
//
// Kinds:
//   Star   — the legacy single-hop network: no topology is consulted at
//            all, every node hears the base directly (byte-identical to
//            the pre-mesh simulator).
//   Line   — node k at (k, 0); only adjacent nodes are in range. The
//            worst-case hop diameter (N hops) — a pipelining stress test.
//   Grid   — row-major ceil(sqrt(count)) grid, base at the corner;
//            default range links the 8-neighborhood (diagonals at reduced
//            quality), hop diameter ~sqrt(N).
//   Random — seeded uniform placement in a square, base at the center,
//            with a deterministic connectivity fix-up: any node BFS-
//            unreachable from the base is moved adjacent to its nearest
//            reachable node (lowest id first), so a planned run can never
//            start partitioned.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace sensmart::net {

enum class TopologyKind : uint8_t { Star = 0, Line = 1, Grid = 2, Random = 3 };

const char* to_string(TopologyKind k);

// Fixed-point placement scale: one nominal grid spacing.
inline constexpr int64_t kUnitsPerSpacing = 8;

// A node with no BFS path to the base (never the case after the Random
// fix-up, but kept representable for partially built topologies).
inline constexpr uint16_t kUnreachableHop = 0xFFFF;

struct TopologySpec {
  TopologyKind kind = TopologyKind::Star;
  // Link reach in placement units (kUnitsPerSpacing = one spacing). The
  // default 12 (= 1.5 spacings) links a grid's 8-neighborhood but not
  // nodes two spacings apart.
  uint32_t range_units = 12;
  // Delivery quality at the edge of range; quality is 100 within one
  // spacing and falls off linearly in squared distance down to this
  // floor. The medium folds (100 - quality) into the link's drop roll.
  uint32_t quality_floor_pct = 70;
  // Extra stream tag for Random placement so several topologies drawn
  // from one chaos seed differ.
  uint64_t seed = 0;

  bool mesh() const { return kind != TopologyKind::Star; }
};

struct Topology {
  bool mesh = false;
  size_t count = 0;  // nodes including the base (id 0)
  std::vector<int64_t> x, y;       // placement, fixed-point units
  std::vector<uint8_t> quality;    // count*count; [from*count+to]; 0 = no link
  std::vector<std::vector<uint16_t>> neighbors;  // in-range ids, ascending
  std::vector<uint16_t> hops;      // BFS hop distance from the base

  uint8_t link_quality(size_t from, size_t to) const {
    return quality[from * count + to];
  }
  bool linked(size_t from, size_t to) const {
    return from != to && quality[from * count + to] > 0;
  }
  uint16_t max_hops() const {
    uint16_t m = 0;
    for (uint16_t h : hops)
      if (h != kUnreachableHop && h > m) m = h;
    return m;
  }
};

// Build the placement, quality matrix, neighbor lists and BFS hop counts
// for `count` nodes (including the base). Random placement draws from a
// dedicated PRNG stream derived from (chaos_seed, spec.seed), so building
// a topology never perturbs the medium's or the fault planner's rolls.
// For TopologyKind::Star the result has mesh=false and empty tables.
Topology build_topology(const TopologySpec& spec, size_t count,
                        uint64_t chaos_seed);

}  // namespace sensmart::net
