#include "net/auth.hpp"

namespace sensmart::net {

namespace {

inline uint64_t rotl(uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }

inline void sipround(uint64_t& v0, uint64_t& v1, uint64_t& v2, uint64_t& v3) {
  v0 += v1;
  v1 = rotl(v1, 13);
  v1 ^= v0;
  v0 = rotl(v0, 32);
  v2 += v3;
  v3 = rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = rotl(v1, 17);
  v1 ^= v2;
  v2 = rotl(v2, 32);
}

}  // namespace

uint64_t siphash24(const AuthKey& key, std::span<const uint8_t> data) {
  uint64_t v0 = key.k0 ^ 0x736F6D6570736575ULL;
  uint64_t v1 = key.k1 ^ 0x646F72616E646F6DULL;
  uint64_t v2 = key.k0 ^ 0x6C7967656E657261ULL;
  uint64_t v3 = key.k1 ^ 0x7465646279746573ULL;

  const size_t n = data.size();
  const size_t full = n - (n % 8);
  for (size_t i = 0; i < full; i += 8) {
    uint64_t m = 0;
    for (int b = 7; b >= 0; --b) m = (m << 8) | data[i + b];
    v3 ^= m;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    v0 ^= m;
  }
  uint64_t last = uint64_t(n & 0xFF) << 56;
  for (size_t i = n; i-- > full;)
    last |= uint64_t(data[i]) << (8 * (i - full));
  v3 ^= last;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  v0 ^= last;

  v2 ^= 0xFF;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

uint64_t ack_tag(const AuthKey& key, uint8_t version, uint16_t origin,
                 uint32_t image_crc) {
  const uint8_t msg[8] = {
      'A',
      version,
      static_cast<uint8_t>(origin & 0xFF),
      static_cast<uint8_t>(origin >> 8),
      static_cast<uint8_t>(image_crc & 0xFF),
      static_cast<uint8_t>((image_crc >> 8) & 0xFF),
      static_cast<uint8_t>((image_crc >> 16) & 0xFF),
      static_cast<uint8_t>(image_crc >> 24),
  };
  return siphash24(key, msg);
}

uint64_t control_tag(const AuthKey& key, uint8_t version, uint8_t cmd,
                     uint16_t target, uint16_t ctl_seq, uint32_t image_crc) {
  const uint8_t msg[12] = {
      'C',
      version,
      cmd,
      static_cast<uint8_t>(target & 0xFF),
      static_cast<uint8_t>(target >> 8),
      static_cast<uint8_t>(ctl_seq & 0xFF),
      static_cast<uint8_t>(ctl_seq >> 8),
      0,
      static_cast<uint8_t>(image_crc & 0xFF),
      static_cast<uint8_t>((image_crc >> 8) & 0xFF),
      static_cast<uint8_t>((image_crc >> 16) & 0xFF),
      static_cast<uint8_t>(image_crc >> 24),
  };
  return siphash24(key, msg);
}

uint64_t health_tag(const AuthKey& key, uint8_t version, uint16_t origin,
                    std::span<const uint8_t> core) {
  uint8_t msg[4 + 12] = {'H', version, static_cast<uint8_t>(origin & 0xFF),
                         static_cast<uint8_t>(origin >> 8)};
  const size_t n = core.size() < 12 ? core.size() : 12;
  for (size_t i = 0; i < n; ++i) msg[4 + i] = core[i];
  return siphash24(key, std::span<const uint8_t>(msg, 4 + n));
}

}  // namespace sensmart::net
