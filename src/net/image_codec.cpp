#include "net/image_codec.hpp"

#include <cstring>

namespace sensmart::net {

namespace {

class Writer {
 public:
  explicit Writer(std::vector<uint8_t>& out) : out_(out) {}
  void u8(uint8_t v) { out_.push_back(v); }
  void u16(uint16_t v) {
    u8(static_cast<uint8_t>(v & 0xFF));
    u8(static_cast<uint8_t>(v >> 8));
  }
  void u32(uint32_t v) {
    u16(static_cast<uint16_t>(v & 0xFFFF));
    u16(static_cast<uint16_t>(v >> 16));
  }
  void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
  void f64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u32(static_cast<uint32_t>(bits & 0xFFFFFFFFu));
    u32(static_cast<uint32_t>(bits >> 32));
  }
  void str(const std::string& s) {
    u16(static_cast<uint16_t>(s.size()));
    for (char c : s) u8(static_cast<uint8_t>(c));
  }

 private:
  std::vector<uint8_t>& out_;
};

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> in) : in_(in) {}
  bool ok() const { return ok_; }
  bool done() const { return ok_ && at_ == in_.size(); }
  uint8_t u8() {
    if (at_ + 1 > in_.size()) {
      ok_ = false;
      return 0;
    }
    return in_[at_++];
  }
  uint16_t u16() {
    const uint8_t lo = u8(), hi = u8();
    return static_cast<uint16_t>(lo | (hi << 8));
  }
  uint32_t u32() {
    const uint16_t lo = u16(), hi = u16();
    return static_cast<uint32_t>(lo) | (static_cast<uint32_t>(hi) << 16);
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  double f64() {
    const uint32_t lo = u32(), hi = u32();
    const uint64_t bits =
        static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const uint16_t n = u16();
    std::string s;
    if (!ok_ || at_ + n > in_.size()) {
      ok_ = false;
      return s;
    }
    s.assign(reinterpret_cast<const char*>(in_.data()) + at_, n);
    at_ += n;
    return s;
  }
  // Remaining bytes — used to bound length-prefixed vectors before
  // reserving memory for them.
  size_t remaining() const { return ok_ ? in_.size() - at_ : 0; }
  void fail() { ok_ = false; }

 private:
  std::span<const uint8_t> in_;
  size_t at_ = 0;
  bool ok_ = true;
};

void write_instruction(Writer& w, const isa::Instruction& ins) {
  w.u8(static_cast<uint8_t>(ins.op));
  w.u8(ins.rd);
  w.u8(ins.rr);
  w.i32(ins.k);
  w.u8(ins.a);
  w.u8(ins.b);
  w.u8(ins.q);
  w.u8(static_cast<uint8_t>(ins.ptr));
}

isa::Instruction read_instruction(Reader& r) {
  isa::Instruction ins;
  const uint8_t op = r.u8();
  if (op > static_cast<uint8_t>(isa::Op::Invalid)) r.fail();
  ins.op = static_cast<isa::Op>(op);
  ins.rd = r.u8();
  ins.rr = r.u8();
  ins.k = r.i32();
  ins.a = r.u8();
  ins.b = r.u8();
  ins.q = r.u8();
  const uint8_t ptr = r.u8();
  if (ptr > static_cast<uint8_t>(isa::Ptr::Z)) r.fail();
  ins.ptr = static_cast<isa::Ptr>(ptr);
  return ins;
}

}  // namespace

std::vector<uint8_t> serialize_system(const rw::LinkedSystem& sys) {
  std::vector<uint8_t> out;
  out.reserve(sys.flash.size() * 2 + 256);
  Writer w(out);
  w.u32(kImageMagic);
  w.u16(kImageFormatVersion);

  const rw::RewriteOptions& o = sys.options;
  w.u8(o.patch_branches);
  w.u8(o.grouped_access);
  w.u8(o.coalesce_translations);
  w.u8(o.collapse_stack_checks);
  w.u8(o.fast_direct_heap);
  w.u8(o.tramp_tail_merge);
  w.f64(o.body_scale);

  w.u32(static_cast<uint32_t>(sys.flash.size()));
  for (uint16_t word : sys.flash) w.u16(word);

  w.u16(static_cast<uint16_t>(sys.programs.size()));
  for (const rw::ProgramInfo& p : sys.programs) {
    w.str(p.name);
    w.u32(p.base);
    w.u32(p.nat_words);
    w.u32(p.table_base);
    w.u16(p.heap_size);
    w.u32(p.entry_nat);
    w.u32(p.native_bytes);
    w.u32(p.rewritten_bytes);
    w.u32(p.shift_table_bytes);
    w.u32(p.trampoline_bytes);
    w.u32(p.patched_sites);
    w.u32(p.map.base());
    w.u32(static_cast<uint32_t>(p.map.entries()));
    for (uint32_t site : p.map.inflated_sites()) w.u32(site);
  }

  w.u32(static_cast<uint32_t>(sys.services.size()));
  for (const rw::Service& s : sys.services) {
    w.u8(static_cast<uint8_t>(s.kind));
    write_instruction(w, s.original);
    w.u8(s.group_min);
    w.u8(s.group_span);
    w.u16(s.run_regs);
  }
  for (uint32_t a : sys.service_addr) w.u32(a);
  for (uint32_t n : sys.service_words) w.u32(n);

  w.u32(sys.tramp_base);
  w.u32(sys.tramp_words);
  w.u32(sys.service_requests);
  for (uint32_t n : sys.requests_by_kind) w.u32(n);
  w.u32(sys.tail_shared_words);
  return out;
}

std::optional<rw::LinkedSystem> deserialize_system(
    std::span<const uint8_t> blob) {
  Reader r(blob);
  if (r.u32() != kImageMagic || r.u16() != kImageFormatVersion)
    return std::nullopt;

  rw::LinkedSystem sys;
  rw::RewriteOptions& o = sys.options;
  o.patch_branches = r.u8() != 0;
  o.grouped_access = r.u8() != 0;
  o.coalesce_translations = r.u8() != 0;
  o.collapse_stack_checks = r.u8() != 0;
  o.fast_direct_heap = r.u8() != 0;
  o.tramp_tail_merge = r.u8() != 0;
  o.body_scale = r.f64();

  const uint32_t flash_words = r.u32();
  // Overflow-proof form of `flash_words * 2 > remaining`: the multiply wraps
  // in 32 bits for flash_words >= 2^31, letting a forged header pass the
  // bounds check and command a multi-GB resize below.
  if (flash_words > r.remaining() / 2) return std::nullopt;
  sys.flash.resize(flash_words);
  for (uint32_t i = 0; i < flash_words; ++i) sys.flash[i] = r.u16();

  const uint16_t n_programs = r.u16();
  if (!r.ok()) return std::nullopt;
  sys.programs.reserve(n_programs);
  for (uint16_t i = 0; i < n_programs; ++i) {
    rw::ProgramInfo p;
    p.name = r.str();
    p.base = r.u32();
    p.nat_words = r.u32();
    p.table_base = r.u32();
    p.heap_size = r.u16();
    p.entry_nat = r.u32();
    p.native_bytes = r.u32();
    p.rewritten_bytes = r.u32();
    p.shift_table_bytes = r.u32();
    p.trampoline_bytes = r.u32();
    p.patched_sites = r.u32();
    const uint32_t map_base = r.u32();
    const uint32_t n_sites = r.u32();
    if (!r.ok() || size_t(n_sites) * 4 > r.remaining()) return std::nullopt;
    std::vector<uint32_t> sites(n_sites);
    for (uint32_t s = 0; s < n_sites; ++s) sites[s] = r.u32();
    p.map = rw::AddressMap(map_base, std::move(sites));
    sys.programs.push_back(std::move(p));
  }

  const uint32_t n_services = r.u32();
  if (!r.ok() || size_t(n_services) * 16 > r.remaining()) return std::nullopt;
  sys.services.reserve(n_services);
  for (uint32_t i = 0; i < n_services; ++i) {
    rw::Service s;
    const uint8_t kind = r.u8();
    if (kind >= uint8_t(rw::kNumServiceKinds)) return std::nullopt;
    s.kind = static_cast<rw::ServiceKind>(kind);
    s.original = read_instruction(r);
    s.group_min = r.u8();
    s.group_span = r.u8();
    s.run_regs = r.u16();
    sys.services.push_back(s);
  }
  sys.service_addr.resize(n_services);
  for (uint32_t i = 0; i < n_services; ++i) sys.service_addr[i] = r.u32();
  sys.service_words.resize(n_services);
  for (uint32_t i = 0; i < n_services; ++i) sys.service_words[i] = r.u32();

  sys.tramp_base = r.u32();
  sys.tramp_words = r.u32();
  sys.service_requests = r.u32();
  for (uint32_t& n : sys.requests_by_kind) n = r.u32();
  sys.tail_shared_words = r.u32();

  if (!r.done()) return std::nullopt;  // trailing garbage or truncation
  return sys;
}

}  // namespace sensmart::net
