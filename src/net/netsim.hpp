// Deterministic multi-node network simulator + over-the-air dissemination
// protocol (DESIGN.md §7).
//
// Topology: one base station (node 0) and N receiver nodes, each owning an
// emulated mote (emu::Machine); their radio devices are connected through a
// seeded lossy Medium. The base station holds a naturalized system image
// (rw::LinkedSystem serialized by net::serialize_system), announces it with
// a Summary frame, streams CRC-protected Data chunks, and answers receiver
// Nacks with retransmissions; receivers reassemble, verify the whole-image
// CRC-32 and Ack. A partially received or corrupted image is never handed
// out for installation.
//
// Determinism contract: the simulation advances all nodes in lockstep
// quanta of one on-air byte time, steps nodes in id order, and draws every
// random decision from one seeded PRNG inside Medium — a run (including
// its full event trace and digest) is a pure function of (image bytes,
// NetConfig). Replays are byte-identical, serial or under a parallel
// seed sweep (src/host/parallel), because one run never shares state.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "emu/machine.hpp"
#include "net/auth.hpp"
#include "net/frame.hpp"
#include "net/medium.hpp"
#include "net/topology.hpp"

namespace sensmart::host {
class WorkPool;  // src/host/parallel.hpp; owned via unique_ptr only
}

namespace sensmart::net {

struct ProtocolParams {
  uint8_t version = 1;       // image version announced in every frame
  uint8_t chunk_payload = 32;
  // Receiver: cycles of silence before a Nack; doubles per consecutive
  // Nack without progress, capped at timeout << backoff_cap_exp.
  uint64_t nack_timeout = 8 * 40 * emu::DeviceHub::kCyclesPerRadioByte;
  uint32_t backoff_cap_exp = 5;
  // Receiver: minimum spacing between repeated Acks (base probe answers).
  uint64_t ack_repeat_min = 4 * 40 * emu::DeviceHub::kCyclesPerRadioByte;
  // Base: idle re-probe (Summary) interval; doubles per unanswered probe,
  // same cap as the receiver backoff.
  uint64_t probe_interval = 16 * 40 * emu::DeviceHub::kCyclesPerRadioByte;
  // Base: consecutive unanswered probes before a node is abandoned (its
  // abort reason is reported per node instead of stalling the whole run).
  // 0 = never abandon. The default is large enough that short reboot
  // outages never get a node abandoned, yet a truly dead node bounds the
  // run. A frame from an abandoned node revives it.
  //
  // On a mesh the base only hears its radio neighbors directly (plus
  // relayed Acks), so a distant node that is mid-transfer looks silent at
  // the base; large mesh runs should set this to 0 and rely on max_cycles
  // unless abandon classification is the point of the run.
  uint32_t node_give_up_probes = 12;

  // --- Mesh parameters (NetConfig::topo; all ignored in star mode) ------
  // Minimum spacing between one node's Summary re-floods (relays).
  uint64_t summary_relay_min = 8 * 40 * emu::DeviceHub::kCyclesPerRadioByte;
  // Spacing between consecutive peer-served Data chunks from one node.
  uint64_t serve_gap = 2 * emu::DeviceHub::kCyclesPerRadioByte;
  // Consecutive unanswered Nacks at one parent before rotating to the
  // next-best known upstream neighbor (parent churn).
  uint32_t parent_churn_nacks = 3;

  // --- Authentication + adversarial hardening (DESIGN.md §11) -----------
  // MAC-authenticated dissemination: the Summary carries a SipHash-2-4 tag
  // over the image blob under the pre-shared key, verified before install
  // (CRC-32 still gates transfer integrity; the MAC gates authenticity),
  // and Acks carry a keyed tag binding (origin, version, image CRC) so a
  // spoofed completion never counts at the base. Off by default: the wire
  // encodings and every golden digest of unauthenticated runs are
  // byte-identical to the pre-auth protocol.
  bool auth = false;
  AuthKey auth_key = kDefaultAuthKey;
  // Ceiling on the image size a Summary may command a node to allocate for
  // reassembly; an announcement above it is ignored — one forged frame
  // must never be able to exhaust a node's memory.
  uint32_t max_image_bytes = 32u << 20;
  // Base: per-node budget of liveness-granting frames (Nacks, Summary
  // relays) honored before the base stops believing them — a hostile
  // flood impersonating a live node would otherwise reset the per-node
  // probe counters forever, so no straggler could ever be abandoned and
  // the run would livelock. Authenticated Acks are always honored (they
  // are unforgeable). 0 = unlimited; when a hostile node is configured
  // NetSim derives a generous bound (64 + 8 * total_chunks) that honest
  // traffic stays far below.
  uint32_t node_liveness_quota = 0;
};

// A scheduled receiver crash: fires the first time the node holds at least
// `at_chunks` chunks (0 = immediately), powers the node down for
// `down_bytes` on-air byte times, then reboots it. Volatile state (radio
// buffers, deframer, protocol timers) is lost; the persistent image store
// survives unless `wipe_store` asks for a cold (flash-erased) reboot.
struct NodeCrash {
  uint16_t node = 1;         // receiver id (1-based); the base never crashes
  uint16_t at_chunks = 0;    // progress threshold that triggers the crash
  uint64_t down_bytes = 256; // outage duration in on-air byte times
  bool wipe_store = false;   // also erase the persistent store
};

// Node lifecycle faults (DESIGN.md §8): scripted crash events plus seeded
// random ones. Seeded crashes draw from their own PRNG stream (derived
// from chaos_seed), so enabling them never shifts the medium's fault
// rolls — a fault-free run keeps its golden trace digest.
struct NodeFaultPolicy {
  std::vector<NodeCrash> scripted;
  // Each receiver suffers up to `max_crashes_per_node` seeded crashes,
  // each with probability `crash_pct`, at a seeded progress fraction, down
  // for a seeded duration in [down_min_bytes, down_max_bytes].
  uint32_t crash_pct = 0;
  uint32_t max_crashes_per_node = 1;
  uint64_t down_min_bytes = 64;
  uint64_t down_max_bytes = 1024;
  uint32_t wipe_pct = 0;  // of seeded crashes: cold (store-wiping) reboots

  bool any() const { return !scripted.empty() || crash_pct > 0; }
};

// Staged rollout (DESIGN.md §12): after dissemination completes, the base
// upgrades the fleet wave-by-wave. Each wave's nodes stage the verified
// transfer image into their inactive A/B slot, reboot into it as a trial,
// and run a probation window; only a health report with zero supervision
// quarantines / watchdog kills earns the ConfirmTrial that promotes the
// slot. Failures (gate trips, reboots mid-probation, silent nodes) count
// against a fleet-wide budget; exceeding it halts the rollout and rolls
// every upgraded node back.
struct RolloutParams {
  bool enabled = false;
  uint32_t wave_size = 4;        // nodes upgraded per wave
  uint64_t probation_bytes = 3000;  // trial probation window (byte-times)
  uint32_t failure_budget = 1;   // trial failures tolerated fleet-wide
  // Base: spacing between command retries to one node; doubles per
  // unanswered send, capped at ProtocolParams::backoff_cap_exp.
  uint64_t control_interval = 16 * 40 * emu::DeviceHub::kCyclesPerRadioByte;
  uint32_t give_up_tries = 12;   // unanswered commands before giving up
  uint64_t reboot_bytes = 64;    // activation reboot outage (byte-times)
  uint32_t report_retries = 12;  // node: self-initiated health-report sends
};

// Scripted behavior of one node's trial image during probation (the chaos
// harness's lemon-image dimension; the sim::run_rollout harness derives it
// from genuinely executing the image on a supervised kernel).
struct TrialBehavior {
  enum class Kind : uint8_t {
    Healthy = 0,   // runs clean (counters below still reported)
    Runaway,       // trips supervision: quarantine/watchdog counters fire
    CrashBoot,     // node reboots mid-probation (power fault / crash loop)
    Wedge,         // node goes dark for a long window (hung image)
  };
  Kind kind = Kind::Healthy;
  uint32_t at_pct = 50;  // when in the probation window the event fires
  // Kernel recovery stats the trial produces (mirrored into DeviceHub).
  uint32_t restarts = 0;
  uint32_t quarantines = 0;
  uint32_t watchdog_fires = 0;
  uint64_t down_bytes = 512;     // CrashBoot outage (byte-times)
  uint64_t wedge_bytes = 20000;  // Wedge outage (byte-times)
};

struct NetConfig {
  size_t nodes = 4;  // receivers; the base station is extra (node id 0)
  LinkParams link;
  ProtocolParams proto;
  uint64_t chaos_seed = 1;
  uint64_t max_cycles = 4'000'000'000ULL;
  size_t trace_capacity = 1 << 16;  // stored events (digest covers all)
  NodeFaultPolicy node_faults;      // receiver crash/reboot schedule
  // Worker threads for the intra-network bulk-synchronous step (DESIGN.md
  // §9): receivers are partitioned into `shards` contiguous spans whose
  // device sync + protocol steps run in parallel within each quantum, with
  // all cross-node effects (TX broadcasts, trace events, outages) buffered
  // and merged at a barrier in canonical order. The trace digest and every
  // result byte are identical at any shard count; only wall time changes.
  // 0 = auto: one shard per kMinNodesPerShard receivers, capped at
  // hardware concurrency — small fleets fall back to serial, because the
  // per-quantum barrier costs more than stepping a handful of nodes
  // (BENCH_fleet showed shards=8 ~13x slower than serial at 4 nodes).
  // 1 = serial.
  unsigned shards = 1;
  // Spatial topology (DESIGN.md §10). The default Star keeps the legacy
  // single-hop network and is byte-identical to the pre-mesh simulator;
  // any mesh kind enables multi-hop dissemination: hop-count parent
  // selection, CSMA carrier sense with deterministic capture-model
  // collisions, and peer-to-peer chunk serving.
  TopologySpec topo;
  // Adversarial dimension (DESIGN.md §11): receiver `hostile_node`
  // (1-based; 0 = none) runs no honest protocol. Attach a HostileModel via
  // NetSim::set_hostile_model to script its transmissions; with no model
  // attached it is simply dead air. Its radio is a regular medium
  // participant: range, loss, capture collisions all apply.
  uint16_t hostile_node = 0;
  // Staged rollout (DESIGN.md §12); ignored by disseminate(), used by
  // NetSim::rollout(). enabled=false keeps every legacy path byte-identical.
  RolloutParams rollout;
};

// Auto-shard sizing floor: below this many receivers per shard the
// bulk-synchronous barrier costs more than the parallel phase saves.
inline constexpr size_t kMinNodesPerShard = 16;

// Why a receiver ended the run without a base-acknowledged install.
enum class NodeAbortReason : uint8_t {
  None,          // node completed (or was never given up on)
  NeverHeard,    // base never received a single frame from the node
  TimedOut,      // node was heard once but stopped answering probes
  ChecksumFail,  // node kept rejecting the assembled image (CRC mismatch)
  AuthFail,      // node kept rejecting the assembled image (MAC mismatch)
};

const char* to_string(NodeAbortReason r);

// Simulation event trace: node 0 is the base station, receiver i is node i
// (1-based), kNodeMedium marks medium decisions.
inline constexpr uint8_t kNodeMedium = 0xFF;
enum class NetEventKind : uint8_t {
  TxFrame = 1,     // a = first byte, b = packet length
  RxFrame,         // a = frame type, b = seq
  SummaryStored,   // a = total chunks, b = image CRC (low 16)
  ChunkStored,     // a = seq, b = chunks held
  DuplicateChunk,  // a = seq
  NackTx,          // a = missing count, b = backoff exponent
  AckTx,           // a = node id
  Complete,        // a = node id, b = image CRC (low 16)
  ChecksumFail,    // a = node id
  MediumDrop,      // a = from, b = to
  MediumDup,
  MediumReorder,
  MediumCorrupt,
  BaseRetransmit,  // a = seq, b = outstanding retransmit count
  BaseProbe,       // a = probe ordinal
  Abort,           // one per incomplete node at termination:
                   // a = node id, b = NodeAbortReason
  NodeCrashed,     // a = chunks held at the crash, b = wipe_store
  NodeRebooted,    // a = chunks resumed from the store, b = verified flag
  NodeAbandoned,   // base gave up on a node: a = node id, b = reason
  MediumOutage,    // delivery suppressed by a link-down window:
                   // a = from, b = to
  // Mesh events (appended: star traces never contain them, so the star
  // digest stream is unchanged).
  MediumCollision, // delivery destroyed by a concurrent transmission:
                   // a = from, b = to
  ParentSelected,  // a = parent id, b = hop count adopted
  SummaryRelayed,  // a = relayer hop, b = 0
  AckRelayed,      // a = origin node id, b = relayer hop
  ChunkServed,     // peer-served Data: a = chunk seq, b = serve queue left
  // Authentication / adversarial events (appended: they never occur in
  // unauthenticated runs without a hostile node, so every pre-auth golden
  // digest stream is unchanged).
  AuthReject,      // assembled image failed its MAC: a = node id,
                   // b = announced CRC (low 16)
  AckRejected,     // base dropped an Ack with a missing/invalid tag:
                   // a = claimed origin, b = 0
  QuotaExceeded,   // base stopped honoring liveness-granting frames from
                   // a node: a = node id, b = quota
  // Staged-rollout events (appended: they only occur inside
  // NetSim::rollout(), so every dissemination golden digest is unchanged).
  StoreReformatted, // persisted store blob failed validation at boot and
                    // was reformatted: a = node id
  ImageStaged,      // transfer image copied into the inactive slot:
                    // a = slot index, b = image CRC (low 16)
  TrialActivated,   // node reboots into the staged slot as a trial:
                    // a = slot index, b = image CRC (low 16)
  ControlTx,        // base command sent: a = ControlCmd, b = target node
  ControlRelayed,   // mesh flood relay of a Control: a = ctl_seq, b = cmd
  HealthTx,         // node health report sent: a = flags, b = send streak
  HealthRx,         // base accepted a health report: a = origin, b = flags
  HealthRelayed,    // mesh relay of a health report: a = origin,
                    // b = relayer hop
  NodeConfirmed,    // base promoted a node's trial: a = node, b = wave
  TrialRolledBack,  // node fell back to its previous slot: a = node,
                    // b = RollbackWhy
  RolloutWave,      // base opened a wave: a = wave index, b = wave size
  RolloutGiveUp,    // base stopped commanding a silent node: a = node,
                    // b = tries
  RolloutHalted,    // failure budget exceeded; fleet-wide rollback begins:
                    // a = failures, b = budget
  RolloutDone,      // orchestrator reached its terminal state:
                    // a = confirmed count, b = rolled-back count
};

// Why a node's trial slot was rejected (TrialRolledBack's `b`).
enum class RollbackWhy : uint8_t {
  GateFailed = 1,       // supervision counters tripped the health gate
  BootInterrupted = 2,  // rebooted mid-probation without confirming
  Commanded = 3,        // base ordered the rollback
};

struct NetTraceEvent {
  uint64_t cycle = 0;
  uint8_t node = 0;
  NetEventKind kind = NetEventKind::TxFrame;
  uint32_t a = 0;
  uint32_t b = 0;
};

struct NodeDissemStats {
  bool complete = false;
  uint64_t completion_cycle = 0;
  uint64_t frames_rx = 0;
  uint64_t data_rx = 0;
  uint64_t duplicate_chunks = 0;
  uint64_t crc_drops = 0;      // deframer resyncs (corrupt frames)
  uint64_t nacks_sent = 0;
  uint64_t acks_sent = 0;
  uint64_t summaries_rx = 0;
  uint32_t checksum_failures = 0;  // whole-image CRC mismatches (reset+retry)
  uint32_t auth_rejects = 0;       // assembled images failing their MAC
  uint32_t backoff_max_exp = 0;
  uint64_t bytes_tx = 0;
  uint64_t bytes_rx = 0;
  uint64_t rx_overruns = 0;
  // Lifecycle-fault outcomes (NodeFaultPolicy).
  uint32_t crashes = 0;
  uint32_t reboots = 0;
  uint16_t resumed_chunks = 0;  // chunks restored from the persistent
                                // store at the most recent reboot
  uint64_t store_writes = 0;    // committed chunk writes (flash-wear proxy)
  bool abandoned = false;       // base gave up waiting for this node
  NodeAbortReason abort_reason = NodeAbortReason::None;
  // Mesh (zero in star mode).
  uint16_t hop = 0;                // final hop count (0xFFFF = never joined)
  uint32_t parent_switches = 0;    // parent churn events
  uint64_t chunks_served = 0;      // Data frames served to peers
  uint64_t acks_relayed = 0;       // downstream Acks forwarded upstream
  uint64_t summaries_relayed = 0;  // Summary floods forwarded
};

struct BaseDissemStats {
  uint64_t frames_tx = 0;
  uint64_t data_tx = 0;          // initial-pass chunks
  uint64_t retransmissions = 0;  // Nack-requested chunks
  uint64_t summaries_tx = 0;
  uint64_t nacks_rx = 0;
  uint64_t acks_rx = 0;
  uint64_t bytes_tx = 0;
  uint32_t nodes_abandoned = 0;  // still abandoned at termination
  // Adversarial accounting (always zero in honest unauthenticated runs).
  uint64_t acks_rejected = 0;    // Acks dropped for a missing/invalid tag
  uint64_t frames_squelched = 0; // liveness frames dropped over quota
};

struct DisseminationResult {
  bool all_acked = false;   // base heard a verified-install Ack from all
  bool aborted = false;     // terminated without hearing every Ack (cycle
                            // budget exhausted, or every straggler was
                            // abandoned after bounded per-node retries)
  bool budget_exhausted = false;  // of aborted runs: max_cycles hit first
  uint64_t cycles = 0;      // simulated time at termination
  uint16_t total_chunks = 0;
  uint32_t image_crc = 0;
  uint32_t image_bytes = 0;
  BaseDissemStats base;
  std::vector<NodeDissemStats> nodes;  // index 0 = receiver node 1
  MediumStats medium;
  uint64_t trace_digest = 0;  // FNV-1a over every trace event
  size_t trace_events = 0;

  // Maintained as counters on the underlying state transitions (image
  // verified / verified store wiped / node abandoned or revived) instead
  // of O(nodes) scans per poll.
  size_t complete_count = 0;
  size_t abandoned_count = 0;
  size_t complete_nodes() const { return complete_count; }
  size_t abandoned_nodes() const { return abandoned_count; }
};

// Per-node outcome of a staged rollout. `final_*` fields are ground truth
// read from the node's persistent ImageStore after the run; the booleans
// are the base station's bookkeeping.
struct NodeRolloutStats {
  bool member = false;      // dissemination-complete, scheduled into a wave
  bool activated = false;   // the rollout image ever occupied a slot
  bool confirmed = false;   // base promoted its trial
  bool rolled_back = false; // ended (or passed through) a rollback
  bool given_up = false;    // base stopped commanding it (silent node)
  uint32_t reports_rx = 0;  // health reports the base accepted from it
  uint8_t final_slot = 0;
  emu::SlotState final_state = emu::SlotState::Empty;
  uint32_t final_crc = 0;
  bool trial_left_active = false;  // a trial survived past termination (bug)
};

struct RolloutResult {
  DisseminationResult dissem;  // the transfer phase that preceded the waves
  bool complete = false;       // every wave promoted, no halt, within budget
  bool halted = false;         // failure budget exceeded; fleet rolled back
  bool budget_exhausted = false;
  uint32_t waves = 0;
  uint32_t waves_promoted = 0;  // waves that ended with zero failures
  uint32_t failures = 0;        // gate trips + interrupted trials + give-ups
  uint32_t confirmed = 0;
  uint32_t rolled_back = 0;
  uint32_t gave_up = 0;
  uint64_t health_rejected = 0;  // health reports dropped for a bad tag
  uint64_t cycles = 0;           // total simulated time (transfer + rollout)
  uint64_t trace_digest = 0;     // FNV-1a over the whole run's events
  size_t trace_events = 0;
  std::vector<NodeRolloutStats> nodes;  // indexed by node id; [0] unused
};

// A scripted hostile transmitter occupying the NetConfig::hostile_node
// receiver slot (DESIGN.md §11): it sees every byte its radio hears and is
// offered one raw transmission per quantum — raw bytes, not frames, so it
// can put arbitrary streams on the air (garbage, truncations, length lies,
// forged frames, replays). Implementations must be deterministic functions
// of their seed and observations; the replay and shard-invariance oracles
// then hold for adversarial runs exactly as for honest ones. The concrete
// seeded attacker lives in chaos/hostile.hpp; tests also hand-script one
// to inject exact byte sequences.
class HostileModel {
 public:
  virtual ~HostileModel() = default;
  // Bytes the hostile node's radio received since the last call.
  virtual void observe(std::span<const uint8_t> bytes) = 0;
  // One transmission opportunity at `now`. `air_clear` reports carrier
  // sense (always true in star mode); a hostile node MAY transmit over a
  // busy channel — that is what makes it collide. Fill `out` (capped at
  // kMaxHostilePacket) and return true to transmit.
  virtual bool emit(uint64_t now, bool air_clear,
                    std::vector<uint8_t>& out) = 0;
};

// Upper bound on one hostile transmission: comfortably above the longest
// legal frame (kFrameOverhead + kMaxPayload = 56) so length-lying attacks
// fit, but bounded so one emit() cannot monopolize the air for a whole run.
inline constexpr size_t kMaxHostilePacket = 96;

class NetSim {
 public:
  NetSim(NetConfig cfg, std::vector<uint8_t> image_blob);
  ~NetSim();

  // Scripted faults for conformance tests; forwarded to the medium.
  void set_fault_policy(FaultPolicy p);
  // Attach the transmitter model for NetConfig::hostile_node (not owned;
  // must outlive disseminate()). No-op if no hostile node is configured.
  void set_hostile_model(HostileModel* m) { hostile_ = m; }

  // Run the dissemination protocol to termination (all nodes verified and
  // acknowledged, or the cycle budget exhausted).
  DisseminationResult disseminate();

  // --- Staged rollout (DESIGN.md §12) ----------------------------------------
  // Disseminate, then upgrade the fleet wave-by-wave with health-gated
  // trials and automatic rollback (NetConfig::rollout). One call runs both
  // phases on one timeline; the dissemination half of the result is exactly
  // what disseminate() would have produced. Same determinism contract: the
  // whole RolloutResult is a pure function of (image bytes, NetConfig,
  // initial image, trial behaviors), byte-identical at any shard count.
  RolloutResult rollout();
  // Pre-load every receiver's slot A with the currently-deployed image
  // (Confirmed, active) — the image the fleet falls back to. Call before
  // rollout().
  void set_initial_image(std::vector<uint8_t> blob, uint8_t version);
  // Script how `node`'s trial behaves during probation (default: Healthy).
  void set_trial_behavior(uint16_t node, const TrialBehavior& b);
  // A node's persistent image store (slot state ground truth for oracles).
  const emu::ImageStore& node_store(size_t node) const;

  // --- Post-dissemination access ---------------------------------------------
  // Receiver `node` is 1-based (matching trace ids). A node's verified
  // image bytes; empty unless the node completed — a partial image is
  // never observable here.
  const std::vector<uint8_t>& node_blob(size_t node) const;
  bool node_complete(size_t node) const;
  // The node's emulated machine (for installation and execution).
  emu::Machine& node_machine(size_t node);

  const std::vector<NetTraceEvent>& trace() const { return trace_; }

 private:
  struct Node;
  struct Base;

  // Per-shard output buffer of the parallel phase (DESIGN.md §9): every
  // cross-node effect a receiver step produces — trace events, link-outage
  // windows, verified-store transitions — lands here instead of in shared
  // state, and is merged at the quantum barrier in shard order. Shards
  // partition receivers contiguously, so shard order IS node-id order and
  // the merged trace is byte-identical to the serial engine's.
  struct ShardCtx {
    size_t node_begin = 0, node_end = 0;        // receiver index range
    size_t machine_begin = 0, machine_end = 0;  // machines this shard syncs
    std::vector<NetTraceEvent> events;
    std::vector<LinkOutage> outages;
    // Mesh transmissions this shard's receivers started this quantum,
    // in node-id order; merged at the barrier into the medium's collision
    // log and the carrier-sense air claims. Claims are max() updates and
    // the collision verdict scans the whole log, so the merged result is
    // independent of shard count.
    struct TxNote {
      uint16_t from = 0;
      uint64_t start = 0, done = 0;
    };
    std::vector<TxNote> tx_notes;
    int complete_delta = 0;  // net verified-store transitions this quantum
    void record(uint64_t cycle, uint8_t node, NetEventKind kind, uint32_t a,
                uint32_t b) {
      events.push_back({cycle, node, kind, a, b});
    }
  };

  // Per-machine TX completions buffered during the parallel phase (flat
  // byte arena, reused across quanta) and replayed at the barrier in
  // machine-id order — exactly the order the serial engine fires them
  // from DeviceHub::sync, so the medium's PRNG rolls and the trace are
  // reproduced byte for byte.
  struct TxBuf {
    struct Rec {
      uint32_t off = 0, len = 0;
      uint64_t done = 0;
    };
    std::vector<uint8_t> bytes;
    std::vector<Rec> recs;
    void clear() {
      bytes.clear();
      recs.clear();
    }
  };

  void record(uint64_t cycle, uint8_t node, NetEventKind kind, uint32_t a,
              uint32_t b);
  void send_frame(size_t node_id, const Frame& f);
  void send_data_frame(uint16_t seq, uint64_t now);
  void drain_rx(size_t node_id, Deframer& d);
  void plan_node_faults();
  void node_lifecycle(size_t idx, uint64_t now, ShardCtx& sc);
  void note_node_alive(size_t node_id);
  // Quota gate for unauthenticated liveness-granting frames claiming to be
  // from `node_id` (DESIGN.md §11): true while the node's budget lasts.
  bool liveness_credit(size_t node_id, uint64_t now);
  NodeAbortReason abort_reason_of(const Node& n) const;
  void step_base(uint64_t now);
  void step_node(size_t idx, uint64_t now, ShardCtx& sc);
  void step_hostile(Node& n, uint64_t now, ShardCtx& sc);
  void on_base_frame(const Frame& f, uint64_t now);
  void on_node_frame(Node& n, const Frame& f, uint64_t now, ShardCtx& sc);
  void node_send_nack(Node& n, uint64_t now, ShardCtx& sc);
  void run_shard_quantum(ShardCtx& sc, uint64_t t);
  void deliver_tx(size_t id, std::span<const uint8_t> pkt, uint64_t done);
  void replay_tx(size_t id);

  // Mesh protocol (DESIGN.md §10); all no-ops / unreachable in star mode.
  void apply_tx_note(size_t from, uint64_t start, uint64_t done);
  void mesh_send(size_t id, const Frame& f, uint64_t now, ShardCtx* sc);
  bool mesh_can_tx(size_t id, uint64_t now);
  bool mesh_node_tx(Node& n, uint64_t now, ShardCtx& sc);
  void mesh_note_summary(Node& n, uint16_t sender, uint16_t hop, uint64_t now,
                         ShardCtx& sc);
  void mesh_schedule_summary_relay(Node& n, uint64_t now);
  void mesh_churn_parent(Node& n, uint64_t now, ShardCtx& sc);

  // Engine core shared by disseminate() and rollout(): shard setup, the
  // bulk-synchronous quantum loop (returns false when max_cycles ran out),
  // and dissemination result assembly.
  void setup_engine();
  bool run_loop();
  bool loop_done() const;
  void finish_dissem(DisseminationResult& res, bool budget_exhausted);

  // Staged rollout (DESIGN.md §12); only reachable from rollout().
  void begin_rollout(uint64_t now);
  void enter_rollback_all(uint64_t now);
  void step_base_rollout(uint64_t now);
  void base_send_control(uint16_t target, ControlCmd cmd, uint64_t now);
  void on_base_health(uint16_t origin, const HealthReport& hr, uint64_t now);
  void on_node_control(Node& n, uint16_t target, const ControlInfo& ci,
                       uint64_t now, ShardCtx& sc);
  void step_node_rollout(Node& n, uint64_t now, ShardCtx& sc);
  void node_queue_health(Node& n, uint8_t flags, uint32_t sends, uint64_t now);
  void node_send_health(Node& n, uint64_t now, ShardCtx& sc);
  void finish_rollout(RolloutResult& rr);

  NetConfig cfg_;
  std::vector<uint8_t> blob_;
  uint16_t total_chunks_ = 0;
  uint32_t blob_crc_ = 0;
  // Authentication (DESIGN.md §11): cached ProtocolParams::auth and the
  // image MAC the base announces (computed once in the ctor).
  bool auth_ = false;
  uint64_t blob_mac_ = 0;
  // Effective per-node liveness quota (0 = unlimited; see
  // ProtocolParams::node_liveness_quota).
  uint32_t liveness_quota_ = 0;
  // Hostile node (NetConfig::hostile_node): model + raw-byte scratch
  // buffers. Touched only by the hostile node's owning shard, so the
  // parallel phase stays race-free.
  HostileModel* hostile_ = nullptr;
  std::vector<uint8_t> hostile_rx_;
  std::vector<uint8_t> hostile_tx_;

  Medium medium_;
  std::vector<std::unique_ptr<emu::Machine>> machines_;  // [0] = base
  std::unique_ptr<Base> base_;
  std::vector<std::unique_ptr<Node>> nodes_;  // receiver i -> id i+1

  // Sharded-engine state: shard spans + buffers, per-machine TX buffers,
  // and per-machine frame-encode scratch (reused; no per-frame allocation).
  std::vector<ShardCtx> shards_;
  std::vector<TxBuf> txbufs_;
  std::vector<std::vector<uint8_t>> encode_scratch_;
  Frame data_scratch_;          // base Data frame, payload buffer reused
  // Mesh mode (NetConfig::topo names a spatial topology). Carrier sense:
  // air_busy_until_[id] is the cycle until which node id defers its own
  // transmissions — the max over heard neighbors' transmission ends (plus
  // a short guard) and its own. Written only at the quantum barrier (and
  // by the serial base step), read during the parallel phase, so shards
  // share a consistent previous-quantum snapshot.
  bool mesh_ = false;
  std::vector<uint64_t> air_busy_until_;
  bool phase_parallel_ = false; // true only inside the parallel phase:
                                // routes tx_sink completions into txbufs_
  size_t complete_count_ = 0;   // verified stores (transition-maintained)

  // Engine state shared by disseminate()/rollout(): simulated time and the
  // worker pool for the parallel phase (lazily built by setup_engine).
  uint64_t t_ = 0;
  std::unique_ptr<host::WorkPool> pool_;
  // Staged rollout: orchestrator state (base-owned, touched only in the
  // serial step), scripted trial behaviors (read-only during the parallel
  // phase), and the fleet's currently-deployed image.
  struct Rollout;
  std::unique_ptr<Rollout> ro_;
  bool rollout_phase_ = false;
  std::vector<TrialBehavior> behaviors_;  // by node id; [0] unused
  std::vector<uint8_t> initial_blob_;
  uint32_t initial_crc_ = 0;
  uint8_t initial_version_ = 0;

  std::vector<NetTraceEvent> trace_;
  uint64_t trace_digest_ = 0xcbf29ce484222325ULL;  // FNV-1a running state
  size_t trace_count_ = 0;
  bool ran_ = false;
};

// FNV-1a digest helper shared with tests.
inline uint64_t fnv1a_step(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace sensmart::net
