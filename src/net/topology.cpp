#include "net/topology.hpp"

#include <algorithm>
#include <cmath>

#include "chaos/prng.hpp"

namespace sensmart::net {

namespace {

// PRNG stream tag for Random placement: distinct from the medium's and the
// node-fault planner's streams.
constexpr uint64_t kTopoStream = 0x544F504F4C4F47ULL;  // "TOPOLOG"

int64_t dist2(const Topology& t, size_t a, size_t b) {
  const int64_t dx = t.x[a] - t.x[b];
  const int64_t dy = t.y[a] - t.y[b];
  return dx * dx + dy * dy;
}

// Quality falloff: 100 within one spacing, linear in squared distance down
// to the floor at the range edge, 0 beyond range. Pure integer math.
uint8_t quality_at(int64_t d2, const TopologySpec& spec) {
  const int64_t r2 = int64_t(spec.range_units) * spec.range_units;
  if (d2 > r2) return 0;
  const int64_t near2 = kUnitsPerSpacing * kUnitsPerSpacing;
  const uint32_t floor_q = std::min<uint32_t>(spec.quality_floor_pct, 100);
  if (d2 <= near2 || r2 <= near2) return 100;
  const int64_t q =
      100 - int64_t(100 - floor_q) * (d2 - near2) / (r2 - near2);
  return static_cast<uint8_t>(std::max<int64_t>(q, 1));
}

void rebuild_links(Topology& t, const TopologySpec& spec) {
  const size_t n = t.count;
  t.quality.assign(n * n, 0);
  t.neighbors.assign(n, {});
  for (size_t a = 0; a < n; ++a)
    for (size_t b = a + 1; b < n; ++b) {
      const uint8_t q = quality_at(dist2(t, a, b), spec);
      t.quality[a * n + b] = q;
      t.quality[b * n + a] = q;  // symmetric links
      if (q > 0) {
        t.neighbors[a].push_back(static_cast<uint16_t>(b));
        t.neighbors[b].push_back(static_cast<uint16_t>(a));
      }
    }
  // push_back over ascending b/a already leaves each list sorted.
}

void rebuild_hops(Topology& t) {
  t.hops.assign(t.count, kUnreachableHop);
  t.hops[0] = 0;
  std::vector<uint16_t> frontier{0};
  while (!frontier.empty()) {
    std::vector<uint16_t> next;
    for (uint16_t u : frontier)
      for (uint16_t v : t.neighbors[u])
        if (t.hops[v] == kUnreachableHop) {
          t.hops[v] = static_cast<uint16_t>(t.hops[u] + 1);
          next.push_back(v);
        }
    frontier = std::move(next);
  }
}

}  // namespace

const char* to_string(TopologyKind k) {
  switch (k) {
    case TopologyKind::Star: return "star";
    case TopologyKind::Line: return "line";
    case TopologyKind::Grid: return "grid";
    case TopologyKind::Random: return "random";
  }
  return "?";
}

Topology build_topology(const TopologySpec& spec, size_t count,
                        uint64_t chaos_seed) {
  Topology t;
  t.count = count;
  if (!spec.mesh() || count == 0) return t;  // Star: legacy single-hop path
  t.mesh = true;
  t.x.assign(count, 0);
  t.y.assign(count, 0);

  const auto side_nodes = [&] {
    size_t w = 1;
    while (w * w < count) ++w;
    return w;
  }();

  switch (spec.kind) {
    case TopologyKind::Star:
      break;  // unreachable
    case TopologyKind::Line:
      for (size_t k = 0; k < count; ++k)
        t.x[k] = int64_t(k) * kUnitsPerSpacing;
      break;
    case TopologyKind::Grid:
      for (size_t k = 0; k < count; ++k) {
        t.x[k] = int64_t(k % side_nodes) * kUnitsPerSpacing;
        t.y[k] = int64_t(k / side_nodes) * kUnitsPerSpacing;
      }
      break;
    case TopologyKind::Random: {
      chaos::Prng r(chaos_seed ^ spec.seed ^ kTopoStream);
      const int64_t side = int64_t(side_nodes) * kUnitsPerSpacing;
      // Base at the center keeps the expected hop diameter ~sqrt(N)/2.
      t.x[0] = side / 2;
      t.y[0] = side / 2;
      for (size_t k = 1; k < count; ++k) {
        t.x[k] = r.below(static_cast<uint32_t>(side + 1));
        t.y[k] = r.below(static_cast<uint32_t>(side + 1));
      }
      break;
    }
  }

  rebuild_links(t, spec);
  rebuild_hops(t);

  // Deterministic connectivity fix-up (Random placement can strand nodes):
  // move the lowest-id unreachable node one spacing beside its nearest
  // reachable node and rebuild. Each pass connects at least one node, so
  // this terminates in < count passes.
  for (;;) {
    size_t orphan = count;
    for (size_t k = 0; k < count; ++k)
      if (t.hops[k] == kUnreachableHop) {
        orphan = k;
        break;
      }
    if (orphan == count) break;
    size_t anchor = 0;
    int64_t best = -1;
    for (size_t k = 0; k < count; ++k) {
      if (t.hops[k] == kUnreachableHop) continue;
      const int64_t d2 = dist2(t, orphan, k);
      if (best < 0 || d2 < best) {
        best = d2;
        anchor = k;
      }
    }
    t.x[orphan] = t.x[anchor] + kUnitsPerSpacing;
    t.y[orphan] = t.y[anchor];
    rebuild_links(t, spec);
    rebuild_hops(t);
  }
  return t;
}

}  // namespace sensmart::net
