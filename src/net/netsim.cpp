#include "net/netsim.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <set>
#include <utility>

#include "emu/io_map.hpp"
#include "host/parallel.hpp"

namespace sensmart::net {

using emu::DeviceHub;

namespace {
constexpr uint64_t kByte = DeviceHub::kCyclesPerRadioByte;
constexpr size_t kMaxEarlyChunks = 4096;  // pre-summary chunk stash bound
// PRNG stream tag for seeded node faults: a distinct stream from the
// medium's, so enabling node faults never shifts the per-packet rolls.
constexpr uint64_t kNodeFaultStream = 0x4E4F44454641ULL;  // "NODEFA"
// Mesh: "no hop count known" / "no parent adopted" sentinels.
constexpr uint16_t kNoHop = 0xFFFF;
constexpr uint16_t kNoParent = 0xFFFF;
// Carrier-sense guard after a heard transmission ends (turnaround slack).
constexpr uint64_t kCsmaGuard = 2 * kByte;
// Deterministic symmetry breaker for mesh timers: a per-(node, attempt)
// phase offset in byte-times. In a fully deterministic simulation two
// nodes whose backoffs hit the same cap would otherwise collide in the
// exact same pattern forever; hashing the attempt number decorrelates the
// phases without consuming the medium's PRNG stream (shard-invariant,
// star traces untouched).
uint64_t mesh_jitter(uint16_t id, uint64_t attempt) {
  uint64_t z =
      (uint64_t(id) << 32) ^ attempt ^ 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return (z >> 58) * kByte;  // 0..63 byte-times
}
}  // namespace

const char* to_string(NodeAbortReason r) {
  switch (r) {
    case NodeAbortReason::None: return "none";
    case NodeAbortReason::NeverHeard: return "never-heard";
    case NodeAbortReason::TimedOut: return "timed-out";
    case NodeAbortReason::ChecksumFail: return "checksum-fail";
    case NodeAbortReason::AuthFail: return "auth-fail";
  }
  return "?";
}

// Base-station protocol state: one initial streaming pass over the chunks,
// a retransmit set fed by Nacks, and an exponentially backed-off Summary
// probe while waiting for stragglers.
struct NetSim::Base {
  Deframer deframer;
  std::set<uint16_t> retransmit;
  std::vector<bool> acked;  // indexed by node id (1-based)
  size_t acked_count = 0;
  uint16_t cursor = 0;
  bool summary_pending = true;
  uint64_t next_probe_at = 0;
  uint32_t probe_streak = 0;
  // Graceful degradation: per-node liveness accounting. A node whose
  // unanswered-probe counter reaches node_give_up_probes is abandoned —
  // the base completes for the live nodes instead of probing forever. Any
  // frame later heard from an abandoned node revives it.
  std::vector<bool> heard;                // ever received a frame from id
  std::vector<bool> abandoned;            // currently given up on
  std::vector<uint32_t> probes_unanswered;  // consecutive silent probes
  size_t abandoned_count = 0;
  // Liveness-granting frames honored per claimed node id (quota gate —
  // see ProtocolParams::node_liveness_quota). Unused while the quota is 0.
  std::vector<uint32_t> liveness_used;
  BaseDissemStats stats;
};

// Receiver protocol state. Deliberately split in two: everything here is
// volatile — it dies when the node crashes — while the chunk bitmap, the
// reassembly buffer, and the verified flag live in the node's persistent
// emu::ImageStore (via its DeviceHub), which survives reboot so a
// resurrected node resumes its Nack-driven transfer where it left off.
struct NetSim::Node {
  uint16_t id = 0;
  Deframer deframer;
  std::map<uint16_t, std::vector<uint8_t>> early;  // pre-Summary stash
  uint64_t next_nack_at = 0;
  uint32_t nack_streak = 0;
  uint64_t last_ack_at = 0;
  // Lifecycle (NodeFaultPolicy): pending crash events and the down window.
  std::deque<NodeCrash> crash_plan;
  bool down = false;
  uint64_t up_at = 0;
  // Start-of-quantum snapshot of "assembled image kept failing its CRC":
  // the serial engine's base step ran before the node steps of the same
  // quantum, so the base's abandon-reason classification must see node
  // state as of the quantum start, not after this quantum's parallel step.
  bool snap_checksum_fail = false;
  bool snap_auth_fail = false;  // same snapshot for MAC rejections
  std::vector<uint16_t> nack_scratch;  // missing-chunk list, reused
  // Anti-wedge guard (DESIGN.md §11): cycle of the last transfer progress
  // (summary accepted or chunk stored). A conflicting Summary may only
  // displace a live partial transfer after a full backed-off Nack period
  // of stall — otherwise one forged announcement erases real progress.
  uint64_t last_progress_at = 0;
  // Rejected-image blacklist: (crc, mac) pairs whose assembled bytes
  // failed MAC verification. Re-announcements of a known-bad image are
  // ignored instead of being re-downloaded forever (bounded ring).
  std::array<std::pair<uint32_t, uint64_t>, 8> reject_ring{};
  size_t reject_count = 0;
  // --- Mesh protocol state (DESIGN.md §10) — all volatile: it dies at a
  // crash and is relearned after reboot from the Summary flood, while the
  // chunk bitmap the node resumes from lives in the persistent store.
  uint16_t hop = kNoHop;        // distance to the base (Summary flood)
  uint16_t parent = kNoParent;  // upstream node Nacks are addressed to
  std::map<uint16_t, uint16_t> nbr_hop;  // neighbor id -> last heard hop
  uint32_t nacks_at_parent = 0;          // unanswered since last progress
  bool ack_pending = false;              // own Ack queued for the next TX slot
  uint64_t next_ack_at = 0;   // verified: next periodic re-ack cycle
  uint32_t ack_streak = 0;    // consecutive re-acks -> exponential backoff
  // Downstream Ack origins to forward, with the origin's auth tag carried
  // verbatim (0 and unused when auth is off) — a relayer forwards the tag
  // it heard rather than minting one, so relaying needs no knowledge of
  // the image the origin verified.
  std::deque<std::pair<uint16_t, uint64_t>> ack_relay_q;
  std::map<uint16_t, uint64_t> ack_relayed_at;  // origin -> last relay cycle
  std::deque<uint16_t> serve_q;     // chunk seqs queued to serve to peers
  std::vector<uint8_t> serve_mark;  // seq queued? (dedup + Trickle suppress)
  uint64_t next_serve_at = 0;       // serve pacing (serve_gap)
  bool summary_relay_pending = false;
  uint64_t summary_relay_at = 0;       // staggered send-not-before cycle
  uint64_t last_summary_relay_at = 0;  // rate limit (summary_relay_min)
  Frame serve_scratch;                 // peer-served Data frame, reused
  // --- Staged-rollout state (DESIGN.md §12) — volatile, like everything
  // else here: what the trial did to the flash lives in the persistent
  // ImageStore (slot states, trial flags, rollback_report_pending), and
  // the power-up path rebuilds the report from there.
  bool trial_pending = false;   // activation reboot in progress
  bool trial_running = false;   // probation window open
  uint64_t probation_end = 0;
  uint64_t behavior_at = 0;     // when the scripted trial behavior fires
  bool behavior_fired = false;
  uint8_t health_flags = 0;     // flags of the report being (re)sent
  bool health_pending = false;
  uint32_t health_sends_left = 0;  // remaining sends of the current report
  uint64_t next_health_at = 0;
  uint32_t health_streak = 0;      // consecutive sends -> backoff
  uint16_t last_ctl_seq = 0;       // newest command acted on (replay guard)
  uint16_t last_ctl_relayed = 0;   // mesh flood dedup
  // Activation reboots are deliberate (not power faults): the mesh
  // gradient is carried across them so a freshly upgraded node can still
  // report its health without waiting for a Summary re-flood.
  uint16_t saved_hop = kNoHop;
  uint16_t saved_parent = kNoParent;
  std::deque<std::pair<uint16_t, ControlInfo>> ctl_relay_q;  // (target, cmd)
  std::deque<std::pair<uint16_t, HealthReport>> health_relay_q;  // (origin, …)
  std::map<uint16_t, uint64_t> health_relayed_at;  // origin -> last relay
  NodeDissemStats stats;
};

// Base-side rollout orchestrator state (DESIGN.md §12). Owned by the
// serial base step — never touched during the parallel phase — so it
// needs no sharding discipline beyond living behind the barrier.
struct NetSim::Rollout {
  // Per-member state machine. Activating -> (clean report) AwaitConfirm ->
  // (confirmed report) Confirmed; any failure report lands in Failed; a
  // silent node becomes GivenUp after bounded command retries. The
  // fleet-wide rollback phase drives upgraded members RollingBack ->
  // RolledBack.
  enum class M : uint8_t {
    Idle,
    Activating,
    AwaitConfirm,
    Confirmed,
    Failed,
    GivenUp,
    RollingBack,
    RolledBack,
  };
  enum class Phase : uint8_t { Waves, RollbackAll, Done };

  Phase phase = Phase::Waves;
  std::vector<uint16_t> members;  // dissemination-complete nodes, id order
  size_t next_member = 0;         // first member of the next wave
  size_t wave_begin = 0, wave_end = 0;
  uint32_t wave_index = 0;
  bool wave_open = false;
  std::vector<M> state;           // by node id
  std::vector<uint32_t> tries;    // command sends toward the current goal
  std::vector<uint64_t> next_cmd_at;
  std::vector<bool> ack_rollback;  // failure report awaiting its Rollback ack
  uint16_t ctl_seq = 0;            // strictly increasing per Control sent
  uint32_t failures = 0;
  uint32_t confirmed = 0;
  uint32_t rolled_back = 0;
  uint32_t gave_up = 0;
  uint32_t waves_promoted = 0;
  bool halted = false;
  uint64_t health_rejected = 0;
  std::vector<NodeRolloutStats> nstats;  // by node id
};

NetSim::NetSim(NetConfig cfg, std::vector<uint8_t> image_blob)
    : cfg_(cfg),
      blob_(std::move(image_blob)),
      medium_(cfg.link, cfg.chaos_seed) {
  if (cfg_.proto.chunk_payload == 0) cfg_.proto.chunk_payload = 1;
  if (cfg_.proto.chunk_payload > kMaxPayload)
    cfg_.proto.chunk_payload = static_cast<uint8_t>(kMaxPayload);
  const size_t cp = cfg_.proto.chunk_payload;
  total_chunks_ = static_cast<uint16_t>((blob_.size() + cp - 1) / cp);
  blob_crc_ = crc32(blob_);
  auth_ = cfg_.proto.auth;
  if (auth_) blob_mac_ = siphash24(cfg_.proto.auth_key, blob_);
  if (cfg_.hostile_node > cfg_.nodes) cfg_.hostile_node = 0;
  // With a hostile node on the air an unlimited liveness budget livelocks
  // the base (see ProtocolParams::node_liveness_quota); derive a bound
  // honest traffic never reaches unless the caller pinned one.
  liveness_quota_ = cfg_.proto.node_liveness_quota
                        ? cfg_.proto.node_liveness_quota
                        : (cfg_.hostile_node ? 64u + 8u * total_chunks_ : 0u);

  // Spatial topology: node 0 (the base) plus every receiver get placed;
  // the medium then offers broadcasts to in-range neighbors only and
  // resolves capture-model collisions. Star leaves the legacy medium
  // untouched (byte-identical traces).
  mesh_ = cfg_.topo.mesh() && cfg_.nodes > 0;
  if (mesh_)
    medium_.set_topology(
        build_topology(cfg_.topo, cfg_.nodes + 1, cfg_.chaos_seed));
  air_busy_until_.assign(cfg_.nodes + 1, 0);

  machines_.reserve(cfg_.nodes + 1);
  txbufs_.resize(cfg_.nodes + 1);
  encode_scratch_.resize(cfg_.nodes + 1);
  for (size_t i = 0; i <= cfg_.nodes; ++i) {
    machines_.push_back(std::make_unique<emu::Machine>());
    medium_.attach(&machines_.back()->dev());
    const size_t id = i;
    // During the parallel phase a completion is buffered (the medium and
    // the trace are shared state); it is replayed at the quantum barrier
    // in machine-id order, which is exactly when and in what order the
    // serial engine's per-machine sync loop would have fired it.
    machines_.back()->dev().set_tx_sink(
        [this, id](std::span<const uint8_t> pkt, uint64_t done) {
          if (phase_parallel_) {
            TxBuf& tb = txbufs_[id];
            tb.recs.push_back({static_cast<uint32_t>(tb.bytes.size()),
                               static_cast<uint32_t>(pkt.size()), done});
            tb.bytes.insert(tb.bytes.end(), pkt.begin(), pkt.end());
            return;
          }
          deliver_tx(id, pkt, done);
        });
  }

  medium_.set_observer(
      [this](uint64_t cycle, FaultAction act, size_t from, size_t to) {
        NetEventKind kind;
        switch (act) {
          case FaultAction::Drop: kind = NetEventKind::MediumDrop; break;
          case FaultAction::Duplicate: kind = NetEventKind::MediumDup; break;
          case FaultAction::Reorder: kind = NetEventKind::MediumReorder; break;
          case FaultAction::Corrupt: kind = NetEventKind::MediumCorrupt; break;
          case FaultAction::Outage: kind = NetEventKind::MediumOutage; break;
          case FaultAction::Collision:
            kind = NetEventKind::MediumCollision;
            break;
          case FaultAction::None: return;
        }
        record(cycle, kNodeMedium, kind, static_cast<uint32_t>(from),
               static_cast<uint32_t>(to));
      });

  base_ = std::make_unique<Base>();
  base_->acked.assign(cfg_.nodes + 1, false);
  base_->heard.assign(cfg_.nodes + 1, false);
  base_->abandoned.assign(cfg_.nodes + 1, false);
  base_->probes_unanswered.assign(cfg_.nodes + 1, 0);
  base_->liveness_used.assign(cfg_.nodes + 1, 0);

  nodes_.reserve(cfg_.nodes);
  for (size_t i = 0; i < cfg_.nodes; ++i) {
    auto n = std::make_unique<Node>();
    n->id = static_cast<uint16_t>(i + 1);
    // Stagger the first Nack deadline per node id so simultaneous timeouts
    // do not produce a synchronized Nack volley at the base.
    n->next_nack_at = cfg_.proto.nack_timeout + n->id * 3 * kByte;
    nodes_.push_back(std::move(n));
  }

  behaviors_.assign(cfg_.nodes + 1, TrialBehavior{});

  if (cfg_.node_faults.any()) plan_node_faults();
}

void NetSim::plan_node_faults() {
  const NodeFaultPolicy& pol = cfg_.node_faults;
  std::vector<std::vector<NodeCrash>> plan(cfg_.nodes + 1);
  // Seeded crashes come from their own stream: the medium's per-packet
  // rolls stay untouched, so the fault-free prefix of a faulted run is
  // byte-identical to the corresponding fault-free run.
  chaos::Prng r(cfg_.chaos_seed ^ kNodeFaultStream);
  if (pol.crash_pct > 0) {
    for (size_t id = 1; id <= cfg_.nodes; ++id) {
      for (uint32_t c = 0; c < pol.max_crashes_per_node; ++c) {
        // Draw every parameter unconditionally so one node's plan never
        // depends on whether an earlier roll fired.
        const bool fire = r.percent(pol.crash_pct);
        const uint32_t frac = r.range(15, 85);
        const uint64_t down = pol.down_max_bytes > pol.down_min_bytes
                                  ? pol.down_min_bytes +
                                        r.below(uint32_t(pol.down_max_bytes -
                                                         pol.down_min_bytes + 1))
                                  : pol.down_min_bytes;
        const bool wipe = r.percent(pol.wipe_pct);
        if (!fire) continue;
        NodeCrash ev;
        ev.node = static_cast<uint16_t>(id);
        ev.at_chunks =
            static_cast<uint16_t>(uint32_t(total_chunks_) * frac / 100);
        ev.down_bytes = down;
        ev.wipe_store = wipe;
        plan[id].push_back(ev);
      }
    }
  }
  for (const NodeCrash& ev : pol.scripted)
    if (ev.node >= 1 && ev.node <= cfg_.nodes) plan[ev.node].push_back(ev);
  for (size_t id = 1; id <= cfg_.nodes; ++id) {
    auto& v = plan[id];
    std::stable_sort(v.begin(), v.end(),
                     [](const NodeCrash& a, const NodeCrash& b) {
                       return a.at_chunks < b.at_chunks;
                     });
    nodes_[id - 1]->crash_plan.assign(v.begin(), v.end());
  }
}

NetSim::~NetSim() = default;

void NetSim::set_fault_policy(FaultPolicy p) {
  medium_.set_fault_policy(std::move(p));
}

void NetSim::record(uint64_t cycle, uint8_t node, NetEventKind kind,
                    uint32_t a, uint32_t b) {
  trace_digest_ = fnv1a_step(trace_digest_, cycle);
  trace_digest_ = fnv1a_step(trace_digest_, node);
  trace_digest_ =
      fnv1a_step(trace_digest_, static_cast<uint64_t>(kind));
  trace_digest_ = fnv1a_step(trace_digest_, a);
  trace_digest_ = fnv1a_step(trace_digest_, b);
  ++trace_count_;
  if (trace_.size() < cfg_.trace_capacity)
    trace_.push_back({cycle, node, kind, a, b});
}

void NetSim::deliver_tx(size_t id, std::span<const uint8_t> pkt,
                        uint64_t done) {
  record(done, static_cast<uint8_t>(id), NetEventKind::TxFrame,
         pkt.size() > 1 ? pkt[1] : 0, static_cast<uint32_t>(pkt.size()));
  if (id == 0)
    base_->stats.bytes_tx += pkt.size();
  else
    nodes_[id - 1]->stats.bytes_tx += pkt.size();
  medium_.broadcast(id, pkt, done);
}

void NetSim::replay_tx(size_t id) {
  TxBuf& tb = txbufs_[id];
  for (const TxBuf::Rec& r : tb.recs)
    deliver_tx(id,
               std::span<const uint8_t>(tb.bytes.data() + r.off, r.len),
               r.done);
  tb.clear();
}

void NetSim::send_frame(size_t node_id, const Frame& f) {
  auto& dev = machines_[node_id]->dev();
  // Per-machine scratch: the encode buffer is written only by the owner
  // of node_id (its shard, or the serial base step), so reuse is both
  // allocation-free and race-free.
  std::vector<uint8_t>& bytes = encode_scratch_[node_id];
  encode_frame_into(f, bytes);
  for (uint8_t b : bytes) {
    uint8_t v = b;
    dev.io_access(emu::kRadioData, v, true);
  }
  uint8_t go = 1;
  dev.io_access(emu::kRadioCtrl, go, true);
  if (node_id == 0)
    ++base_->stats.frames_tx;
}

void NetSim::drain_rx(size_t node_id, Deframer& d) {
  auto& dev = machines_[node_id]->dev();
  for (;;) {
    uint8_t avail = 0;
    dev.io_access(emu::kRadioRxAvail, avail, false);
    if (avail == 0) break;
    for (uint8_t i = 0; i < avail; ++i) {
      uint8_t b = 0;
      dev.io_access(emu::kRadioRxData, b, false);
      d.push(b);
    }
  }
}

void NetSim::send_data_frame(uint16_t seq, uint64_t now) {
  const size_t cp = cfg_.proto.chunk_payload;
  const size_t begin = size_t(seq) * cp;
  const size_t end = std::min(begin + cp, blob_.size());
  data_scratch_.type = FrameType::Data;
  data_scratch_.version = cfg_.proto.version;
  data_scratch_.seq = seq;
  data_scratch_.payload.assign(blob_.begin() + begin, blob_.begin() + end);
  mesh_send(0, data_scratch_, now, nullptr);
}

// Register a just-started transmission with the collision log and the
// carrier-sense air claims: the sender holds the air until `done`, every
// in-range neighbor defers a guard interval past that. max() updates, so
// the merge order of a quantum's notes is irrelevant.
void NetSim::apply_tx_note(size_t from, uint64_t start, uint64_t done) {
  medium_.note_tx(from, start, done);
  air_busy_until_[from] = std::max(air_busy_until_[from], done);
  for (uint16_t r : medium_.topology().neighbors[from])
    air_busy_until_[r] = std::max(air_busy_until_[r], done + kCsmaGuard);
}

// Send a frame and (mesh only) note its exact airtime window. Callers
// check the radio-idle bit first, so the transmission starts at `now` and
// completes at now + length * byte-time — the device computes the same
// completion cycle. During the parallel phase the note is buffered in the
// shard context and merged at the barrier; the serial base step (sc ==
// nullptr) applies it immediately.
void NetSim::mesh_send(size_t id, const Frame& f, uint64_t now,
                       ShardCtx* sc) {
  send_frame(id, f);
  if (!mesh_) return;
  const uint64_t done =
      now + (kFrameOverhead + f.payload.size()) * kByte;
  if (sc)
    sc->tx_notes.push_back({static_cast<uint16_t>(id), now, done});
  else
    apply_tx_note(id, now, done);
}

// Carrier sense: a mesh node transmits only when its radio is idle and no
// heard neighbor transmission still holds the air.
bool NetSim::mesh_can_tx(size_t id, uint64_t now) {
  if (now < air_busy_until_[id]) return false;
  uint8_t busy = 0;
  machines_[id]->dev().io_access(emu::kRadioStatus, busy, false);
  return (busy & 1) == 0;
}

void NetSim::note_node_alive(size_t node_id) {
  base_->heard[node_id] = true;
  base_->probes_unanswered[node_id] = 0;
  if (base_->abandoned[node_id]) {
    // The node came back (e.g. rebooted after a long outage): resume
    // serving it instead of holding the stale verdict.
    base_->abandoned[node_id] = false;
    --base_->abandoned_count;
  }
}

// Unauthenticated frames (Nacks, Summary relays) grant liveness — and thus
// reset the per-node abandon counters — only while the claimed node's
// budget lasts. A hostile flood impersonating live nodes then delays
// abandonment by a bounded amount instead of forever; authenticated Acks
// bypass this (they are checked against the keyed tag instead). Called
// only from the serial base step, so record() is safe.
bool NetSim::liveness_credit(size_t node_id, uint64_t now) {
  if (liveness_quota_ == 0) return true;
  uint32_t& used = base_->liveness_used[node_id];
  if (used >= liveness_quota_) {
    ++base_->stats.frames_squelched;
    return false;
  }
  if (++used == liveness_quota_)
    record(now, 0, NetEventKind::QuotaExceeded,
           static_cast<uint32_t>(node_id), liveness_quota_);
  return true;
}

void NetSim::on_base_frame(const Frame& f, uint64_t now) {
  if (f.version != cfg_.proto.version) return;
  switch (f.type) {
    case FrameType::Nack: {
      if (mesh_) {
        // Mesh Nacks are addressed: the base only serves ones targeting
        // it (target 0). kNackAnyTarget asks for a Summary re-announce; a
        // Nack overheard on its way to a peer parent still proves the
        // sender alive (liveness is "what the base actually heard").
        const auto mn = parse_mesh_nack(f);
        if (!mn || f.seq == 0 || f.seq > cfg_.nodes) return;
        if (!liveness_credit(f.seq, now)) return;
        ++base_->stats.nacks_rx;
        note_node_alive(f.seq);
        if (mn->target == 0) {
          base_->probe_streak = 0;
          if (mn->missing.empty()) {
            base_->summary_pending = true;
          } else {
            for (uint16_t seq : mn->missing)
              if (seq < total_chunks_) base_->retransmit.insert(seq);
          }
        } else if (mn->target == kNackAnyTarget) {
          base_->probe_streak = 0;
          base_->summary_pending = true;
        }
        return;
      }
      const auto missing = parse_nack(f);
      if (!missing || f.seq == 0 || f.seq > cfg_.nodes) return;
      if (!liveness_credit(f.seq, now)) return;
      ++base_->stats.nacks_rx;
      base_->probe_streak = 0;  // someone is alive and still needs data
      note_node_alive(f.seq);
      if (missing->empty()) {
        base_->summary_pending = true;
      } else {
        for (uint16_t seq : *missing)
          if (seq < total_chunks_) base_->retransmit.insert(seq);
      }
      break;
    }
    case FrameType::Ack: {
      if (f.seq == 0 || f.seq > cfg_.nodes) return;
      if (rollout_phase_) {
        // Health reports ride Ack-type frames at payload sizes disjoint
        // from every legacy Ack encoding; anything that parses as one is
        // one. Outside the rollout phase they fall through to the legacy
        // path (and, authenticated, its rejection accounting) unchanged.
        if (const auto hr = parse_health(f)) {
          on_base_health(f.seq, *hr, now);
          return;
        }
      }
      if (auth_) {
        // An Ack only counts if its keyed tag binds (origin, version,
        // image CRC) under the pre-shared key: a spoofed completion for a
        // node that never verified the image is dropped here, and a
        // cross-image replay fails on the CRC binding.
        const auto tag = ack_auth_tag(f);
        if (!tag || *tag != ack_tag(cfg_.proto.auth_key, cfg_.proto.version,
                                    f.seq, blob_crc_)) {
          ++base_->stats.acks_rejected;
          record(now, 0, NetEventKind::AckRejected, f.seq, 0);
          return;
        }
      }
      ++base_->stats.acks_rx;
      // Mesh: only a NEW completion resets the probe backoff — repeated
      // re-acks of already-counted origins would otherwise keep the base
      // probing at full rate, and every probe detonates a network-wide
      // re-ack cascade.
      if (!mesh_ || !base_->acked[f.seq]) base_->probe_streak = 0;
      note_node_alive(f.seq);
      if (mesh_) {
        // A relayed Ack proves the relayer alive too (seq carries the
        // origin through the whole chain). The relayer field is outside
        // the tag, so its liveness grant is quota-gated like any other
        // unauthenticated claim.
        if (const auto ma = parse_mesh_ack(f))
          if (ma->relayer >= 1 && ma->relayer <= cfg_.nodes &&
              liveness_credit(ma->relayer, now))
            note_node_alive(ma->relayer);
      }
      if (!base_->acked[f.seq]) {
        base_->acked[f.seq] = true;
        ++base_->acked_count;
      }
      break;
    }
    case FrameType::Summary: {
      // Mesh: an overheard Summary relay names its sender — liveness.
      if (!mesh_) break;
      const auto info = parse_summary(f);
      if (info && info->has_sender && info->sender >= 1 &&
          info->sender <= cfg_.nodes && liveness_credit(info->sender, now))
        note_node_alive(info->sender);
      break;
    }
    default:
      break;  // the base ignores Data echoes from other nodes
  }
  (void)now;
}

void NetSim::step_base(uint64_t now) {
  drain_rx(0, base_->deframer);
  while (auto f = base_->deframer.next()) on_base_frame(*f, now);
  if (rollout_phase_) {
    step_base_rollout(now);
    return;
  }
  if (base_->acked_count + base_->abandoned_count >= cfg_.nodes) return;

  uint8_t busy = 0;
  machines_[0]->dev().io_access(emu::kRadioStatus, busy, false);
  if (busy & 1) return;  // one frame in the air at a time
  if (mesh_ && now < air_busy_until_[0]) return;  // carrier sense

  // The base's Summary: star announces bare geometry; mesh adds sender 0
  // at hop 0, seeding the hop-count flood; authenticated runs carry the
  // image MAC alongside the geometry.
  SummaryInfo geom{total_chunks_, static_cast<uint32_t>(blob_.size()),
                   blob_crc_, cfg_.proto.chunk_payload};
  if (auth_) {
    geom.has_mac = true;
    geom.image_mac = blob_mac_;
  }
  const auto summary_frame = [&] {
    return mesh_ ? make_mesh_summary(cfg_.proto.version, geom, 0, 0)
                 : make_summary(cfg_.proto.version, geom);
  };

  if (base_->summary_pending) {
    base_->summary_pending = false;
    ++base_->stats.summaries_tx;
    mesh_send(0, summary_frame(), now, nullptr);
    return;
  }
  if (!base_->retransmit.empty()) {
    const uint16_t seq = *base_->retransmit.begin();
    base_->retransmit.erase(base_->retransmit.begin());
    ++base_->stats.retransmissions;
    record(now, 0, NetEventKind::BaseRetransmit, seq,
           static_cast<uint32_t>(base_->retransmit.size()));
    send_data_frame(seq, now);
    return;
  }
  if (base_->cursor < total_chunks_) {
    const uint16_t seq = base_->cursor++;
    ++base_->stats.data_tx;
    send_data_frame(seq, now);
    return;
  }
  // Idle with unacked nodes: re-probe with a Summary, backing off
  // exponentially until a Nack/Ack resets the streak.
  if (now >= base_->next_probe_at) {
    ++base_->stats.summaries_tx;
    record(now, 0, NetEventKind::BaseProbe, base_->probe_streak, 0);
    mesh_send(0, summary_frame(), now, nullptr);
    const uint32_t exp =
        std::min(base_->probe_streak, cfg_.proto.backoff_cap_exp);
    base_->next_probe_at = now + (cfg_.proto.probe_interval << exp);
    ++base_->probe_streak;
    // Bounded per-node retries: every straggler is charged one unanswered
    // probe; at the give-up bound the base abandons it (recording why)
    // and completes for the nodes that are alive.
    if (cfg_.proto.node_give_up_probes > 0) {
      for (size_t id = 1; id <= cfg_.nodes; ++id) {
        if (base_->acked[id] || base_->abandoned[id]) continue;
        if (++base_->probes_unanswered[id] < cfg_.proto.node_give_up_probes)
          continue;
        base_->abandoned[id] = true;
        ++base_->abandoned_count;
        // Classify from the node's start-of-quantum snapshot: the serial
        // engine's base step preceded this quantum's node steps, and the
        // sharded engine's barrier order must reproduce its view.
        const Node& n = *nodes_[id - 1];
        NodeAbortReason reason = NodeAbortReason::TimedOut;
        if (!base_->heard[id])
          reason = NodeAbortReason::NeverHeard;
        else if (n.snap_auth_fail)
          reason = NodeAbortReason::AuthFail;
        else if (n.snap_checksum_fail)
          reason = NodeAbortReason::ChecksumFail;
        record(now, 0, NetEventKind::NodeAbandoned,
               static_cast<uint32_t>(id), static_cast<uint32_t>(reason));
      }
    }
  }
}

void NetSim::node_send_nack(Node& n, uint64_t now, ShardCtx& sc) {
  const auto& st = machines_[n.id]->dev().image_store();
  std::vector<uint16_t>& missing = n.nack_scratch;
  missing.clear();
  if (st.has_summary) {
    // Bound by the store's OWN geometry, not the sim-global chunk count:
    // a node assembling a (possibly forged) announcement with fewer chunks
    // than the base's image would otherwise index st.have past its end.
    for (uint16_t seq = 0;
         seq < st.total_chunks && missing.size() < kMaxNackList; ++seq)
      if (!st.have[seq]) missing.push_back(seq);
  }
  if (mesh_) {
    // Rotate away from a parent that stopped answering before asking
    // again; Nacks are addressed to the (possibly new) parent. A node
    // with no summary or no parent solicits with kNackAnyTarget — by
    // protocol that is only ever answered with a Summary relay, never
    // with Data, so it cannot start a duplicate-serving storm.
    if (n.parent != kNoParent &&
        n.nacks_at_parent >= cfg_.proto.parent_churn_nacks)
      mesh_churn_parent(n, now, sc);
    const uint16_t target =
        (st.has_summary && n.parent != kNoParent) ? n.parent : kNackAnyTarget;
    mesh_send(n.id,
              make_mesh_nack(cfg_.proto.version, n.id, missing, target, n.hop),
              now, &sc);
    if (target != kNackAnyTarget) ++n.nacks_at_parent;
    n.next_nack_at += mesh_jitter(n.id, n.stats.nacks_sent);
  } else {
    // No summary yet: an empty list asks the base to resend it.
    send_frame(n.id, make_nack(cfg_.proto.version, n.id, missing));
  }
  ++n.stats.nacks_sent;
  const uint32_t exp = std::min(n.nack_streak, cfg_.proto.backoff_cap_exp);
  n.stats.backoff_max_exp = std::max(n.stats.backoff_max_exp, exp);
  sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::NackTx,
            static_cast<uint32_t>(missing.size()), exp);
  n.next_nack_at = now + (cfg_.proto.nack_timeout << exp) + n.id * 3 * kByte;
  ++n.nack_streak;
}

// A heard Summary teaches hop counts: remember the sender's hop, adopt it
// as parent when that shortens our path to the base, and schedule our own
// rate-limited re-flood so the announcement keeps propagating outward.
void NetSim::mesh_note_summary(Node& n, uint16_t sender, uint16_t hop,
                               uint64_t now, ShardCtx& sc) {
  if (hop != kNoHop) n.nbr_hop[sender] = hop;
  const uint32_t cand = uint32_t(hop) + 1;
  if (cand < n.hop) {
    n.hop = static_cast<uint16_t>(cand);
    n.parent = sender;
    n.nacks_at_parent = 0;
    sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::ParentSelected,
              sender, n.hop);
    // Re-flood only on improvement: the announcement wave propagates once
    // per learned hop count and then the network goes quiet. Lost nodes
    // pull a re-announce with kNackAnyTarget instead of the base pushing
    // one forever — a perpetual relay flood would otherwise saturate the
    // channel and collide the very Acks the base is waiting for.
    mesh_schedule_summary_relay(n, now);
  }
}

void NetSim::mesh_schedule_summary_relay(Node& n, uint64_t now) {
  if (n.summary_relay_pending) return;
  if (n.last_summary_relay_at != 0 &&
      now - n.last_summary_relay_at < cfg_.proto.summary_relay_min)
    return;
  n.summary_relay_pending = true;
  // Stagger by node id so one flood wave does not detonate as one
  // synchronized (and mutually colliding) volley of relays.
  n.summary_relay_at = now + (2 + 3ull * n.id) * kByte +
                       mesh_jitter(n.id, n.stats.summaries_relayed);
}

// Parent stopped answering: drop it from the neighbor table and adopt the
// best remaining known neighbor (min hop, ties to the lowest id — the map
// iterates ids in order). With no candidates the node falls back to
// kNackAnyTarget rediscovery. The node's own hop count is NOT recomputed
// here: it was learned from a real flood, and rebuilding it from stale
// neighbor entries inflates the gradient the Ack relays steer by.
void NetSim::mesh_churn_parent(Node& n, uint64_t now, ShardCtx& sc) {
  if (n.parent != kNoParent) n.nbr_hop.erase(n.parent);
  ++n.stats.parent_switches;
  n.nacks_at_parent = 0;
  uint16_t best = kNoParent;
  uint16_t best_hop = kNoHop;
  for (const auto& [id, h] : n.nbr_hop)
    if (h < best_hop) {
      best_hop = h;
      best = id;
    }
  n.parent = best;
  sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::ParentSelected,
            best, n.hop);
}

// One mesh transmission opportunity (the caller verified carrier sense +
// radio idle). Priority: own Ack, then Ack relays (completion news keeps
// the base from probing), then peer serves, then Summary relays. Returns
// true if a frame went on the air.
bool NetSim::mesh_node_tx(Node& n, uint64_t now, ShardCtx& sc) {
  emu::ImageStore& st = machines_[n.id]->dev().image_store();

  if (rollout_phase_) {
    // Rollout traffic first: it is the critical path of this phase (the
    // legacy queues below are essentially drained by now).
    if (n.health_pending && now >= n.next_health_at) {
      node_send_health(n, now, sc);
      return true;
    }
    if (!n.ctl_relay_q.empty()) {
      const auto [target, ci] = n.ctl_relay_q.front();
      n.ctl_relay_q.pop_front();
      mesh_send(n.id, make_control(cfg_.proto.version, target, ci), now, &sc);
      sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::ControlRelayed,
                ci.ctl_seq, static_cast<uint32_t>(ci.cmd));
      return true;
    }
    while (!n.health_relay_q.empty()) {
      auto [origin, hr] = n.health_relay_q.front();
      n.health_relay_q.pop_front();
      // Re-check the per-origin rate limit at send time (an upstream
      // relay overheard since enqueueing suppresses ours).
      const auto it = n.health_relayed_at.find(origin);
      if (it != n.health_relayed_at.end() &&
          now - it->second < cfg_.proto.ack_repeat_min)
        continue;
      n.health_relayed_at[origin] = now;
      hr.has_relayer = true;
      hr.relayer = n.id;
      hr.hop = n.hop < 0xFF ? n.hop : 0xFF;
      mesh_send(n.id, make_health(cfg_.proto.version, origin, hr), now, &sc);
      sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::HealthRelayed,
                origin, hr.hop);
      return true;
    }
  }

  if (n.ack_pending && st.verified) {
    n.ack_pending = false;
    mesh_send(n.id,
              auth_ ? make_mesh_ack(cfg_.proto.version, n.id, n.id, n.hop,
                                    ack_tag(cfg_.proto.auth_key,
                                            cfg_.proto.version, n.id,
                                            st.image_crc))
                    : make_mesh_ack(cfg_.proto.version, n.id, n.id, n.hop),
              now, &sc);
    ++n.stats.acks_sent;
    n.last_ack_at = now;
    // Periodic re-ack with exponential backoff: the origin is the retry
    // driver for its whole relay chain (a relayer that lost its upstream
    // slot gets another chance on the next re-ack). Overhearing our own
    // Ack being relayed confirms the chain and pushes the timer out.
    const uint32_t exp =
        std::min(n.ack_streak, cfg_.proto.backoff_cap_exp);
    n.next_ack_at = now + (cfg_.proto.ack_repeat_min << exp) +
                    mesh_jitter(n.id, n.ack_streak);
    ++n.ack_streak;
    return true;
  }

  while (!n.ack_relay_q.empty()) {
    const auto [origin, tag] = n.ack_relay_q.front();
    n.ack_relay_q.pop_front();
    // Re-check the per-origin rate limit at send time: an upstream relay
    // overheard since enqueueing suppresses ours (Trickle-style).
    const auto it = n.ack_relayed_at.find(origin);
    if (it != n.ack_relayed_at.end() &&
        now - it->second < cfg_.proto.ack_repeat_min)
      continue;
    n.ack_relayed_at[origin] = now;
    mesh_send(n.id,
              auth_ ? make_mesh_ack(cfg_.proto.version, origin, n.id, n.hop,
                                    tag)
                    : make_mesh_ack(cfg_.proto.version, origin, n.id, n.hop),
              now, &sc);
    ++n.stats.acks_relayed;
    sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::AckRelayed,
              origin, n.hop);
    return true;
  }

  while (!n.serve_q.empty() && now >= n.next_serve_at) {
    const uint16_t seq = n.serve_q.front();
    n.serve_q.pop_front();
    // Only chunks still marked are served: a Data frame for `seq` heard
    // since the request unmarks it (another holder already answered), and
    // only frame-CRC-verified chunks ever enter the store (st.have), so a
    // peer can never propagate bytes it did not verify. Whole-image
    // activation stays gated on the CRC-32 exactly as with base serving.
    if (seq >= st.total_chunks || !st.have[seq] ||
        seq >= n.serve_mark.size() || !n.serve_mark[seq])
      continue;
    n.serve_mark[seq] = 0;
    const size_t cp = st.chunk_payload;
    const size_t begin = size_t(seq) * cp;
    const size_t end = std::min(begin + cp, size_t(st.image_bytes));
    n.serve_scratch.type = FrameType::Data;
    n.serve_scratch.version = st.image_version;
    n.serve_scratch.seq = seq;
    n.serve_scratch.payload.assign(st.image.begin() + begin,
                                   st.image.begin() + end);
    mesh_send(n.id, n.serve_scratch, now, &sc);
    ++n.stats.chunks_served;
    sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::ChunkServed, seq,
              static_cast<uint32_t>(n.serve_q.size()));
    n.next_serve_at = now +
                      (kFrameOverhead + n.serve_scratch.payload.size()) *
                          kByte +
                      cfg_.proto.serve_gap;
    return true;
  }

  if (n.summary_relay_pending && now >= n.summary_relay_at) {
    if (!st.has_summary || n.hop == kNoHop) {
      n.summary_relay_pending = false;  // nothing credible to announce
      return false;
    }
    n.summary_relay_pending = false;
    n.last_summary_relay_at = now;
    // Relays carry the announced MAC along with the geometry, so the
    // authenticated Summary propagates hop by hop unmodified.
    SummaryInfo rs{st.total_chunks, st.image_bytes, st.image_crc,
                   st.chunk_payload};
    rs.has_mac = st.has_mac;
    rs.image_mac = st.image_mac;
    mesh_send(n.id, make_mesh_summary(cfg_.proto.version, rs, n.id, n.hop),
              now, &sc);
    ++n.stats.summaries_relayed;
    sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::SummaryRelayed,
              n.hop, 0);
    return true;
  }
  return false;
}

void NetSim::on_node_frame(Node& n, const Frame& f, uint64_t now,
                           ShardCtx& sc) {
  emu::ImageStore& st = machines_[n.id]->dev().image_store();
  ++n.stats.frames_rx;
  if (f.version != cfg_.proto.version) return;

  auto progress = [&] {
    // Useful traffic: reset the Nack backoff so the next timeout is short.
    n.nack_streak = 0;
    n.nacks_at_parent = 0;  // mesh: the current parent is delivering
    n.next_nack_at = now + cfg_.proto.nack_timeout + n.id * 3 * kByte;
    n.last_progress_at = now;
  };

  // Star-mode Ack: authenticated runs replace the empty legacy payload
  // with the keyed tag the base verifies.
  auto star_ack = [&] {
    send_frame(n.id,
               auth_ ? make_auth_ack(cfg_.proto.version, n.id,
                                     ack_tag(cfg_.proto.auth_key,
                                             cfg_.proto.version, n.id,
                                             st.image_crc))
                     : Frame{FrameType::Ack, cfg_.proto.version, n.id, {}});
    ++n.stats.acks_sent;
    n.last_ack_at = now;
  };

  auto store_chunk = [&](uint16_t seq, std::span<const uint8_t> payload) {
    const size_t cp = st.chunk_payload;
    if (seq >= st.total_chunks) return;
    const size_t expect = (seq + 1 == st.total_chunks)
                              ? st.image_bytes - size_t(seq) * cp
                              : cp;
    if (payload.size() != expect) return;
    if (st.have[seq]) {
      ++n.stats.duplicate_chunks;
      sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::DuplicateChunk,
                seq, 0);
      return;
    }
    std::copy(payload.begin(), payload.end(), st.image.begin() + seq * cp);
    st.have[seq] = 1;
    ++st.chunks_have;
    ++st.writes;
    sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::ChunkStored, seq,
              st.chunks_have);
    progress();
    if (st.chunks_have != st.total_chunks) return;

    // Whole image assembled: activate only on a verified checksum (and, in
    // authenticated runs, a verified MAC — the CRC gates transfer
    // integrity, the keyed tag gates authenticity).
    if (crc32(st.image) == st.image_crc) {
      if (auth_ && (!st.has_mac || siphash24(cfg_.proto.auth_key, st.image) !=
                                       st.image_mac)) {
        // The bytes arrived intact but the announced MAC does not bind
        // them under the pre-shared key: a forged image. Never activate;
        // blacklist the (crc, mac) pair so its re-announcements are
        // ignored instead of re-downloaded forever, erase, re-solicit.
        ++n.stats.auth_rejects;
        sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::AuthReject,
                  n.id, st.image_crc & 0xFFFF);
        n.reject_ring[n.reject_count % n.reject_ring.size()] = {st.image_crc,
                                                                st.image_mac};
        ++n.reject_count;
        st.erase();
        n.serve_q.clear();
        n.serve_mark.clear();
        n.nack_streak = 0;
        n.next_nack_at = now + n.id * 3 * kByte;
        return;
      }
      st.verified = true;
      ++sc.complete_delta;
      n.stats.complete = true;
      n.stats.completion_cycle = now;
      sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::Complete, n.id,
                st.image_crc & 0xFFFF);
      if (mesh_) {
        // Mesh transmissions are carrier-sensed: queue the Ack for the
        // node's next clear TX slot instead of sending blind.
        n.ack_pending = true;
      } else {
        star_ack();
      }
    } else {
      // Frame CRCs all passed yet the image does not verify (16-bit CRC
      // collision): discard everything and re-request; never activate.
      ++n.stats.checksum_failures;
      sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::ChecksumFail,
                n.id, 0);
      std::fill(st.have.begin(), st.have.end(), 0);
      st.chunks_have = 0;
      n.nack_streak = 0;
      n.next_nack_at = now + n.id * 3 * kByte;
    }
  };

  switch (f.type) {
    case FrameType::Summary: {
      ++n.stats.summaries_rx;
      const auto info = parse_summary(f);
      if (!info) return;
      if (mesh_ && info->has_sender) {
        // The sender id is attacker-controlled: range-check it before it
        // keys the neighbor-hop table.
        if (info->sender > cfg_.nodes) return;
        mesh_note_summary(n, info->sender, f.seq, now, sc);
      }
      if (auth_) {
        // Authenticated runs ignore announcements without a MAC (they
        // could never pass the install gate, so downloading is pure
        // waste) and any (crc, mac) pair already rejected by it.
        if (!info->has_mac) return;
        const size_t seen = std::min(n.reject_count, n.reject_ring.size());
        for (size_t i = 0; i < seen; ++i)
          if (n.reject_ring[i] ==
              std::make_pair(info->image_crc, info->image_mac))
            return;
      }
      if (st.verified) {
        // Base is probing for a lost Ack — repeat it, rate-limited. Mesh:
        // only a probe arriving from upstream (closer to the base) earns a
        // re-ack; lateral/downstream relays would only amplify traffic.
        const bool upstream =
            !mesh_ || !info->has_sender || f.seq < n.hop;
        if (upstream && now - n.last_ack_at >= cfg_.proto.ack_repeat_min) {
          if (mesh_) {
            n.ack_pending = true;
          } else {
            star_ack();
          }
        }
        return;
      }
      if (st.has_summary &&
          (info->image_crc != st.image_crc ||
           info->total_chunks != st.total_chunks ||
           info->image_bytes != st.image_bytes ||
           info->chunk_payload != st.chunk_payload ||
           (auth_ && info->image_mac != st.image_mac))) {
        // A different image than the one the store holds progress for
        // (e.g. a new version after a long outage): the stale partial
        // transfer is useless — erase and start over. Anti-wedge guard:
        // only displace the current transfer once it has made no progress
        // for a full backed-off Nack period — a live transfer must not be
        // erasable by a single conflicting (possibly forged) announcement.
        const uint64_t stall = cfg_.proto.nack_timeout
                               << (cfg_.proto.backoff_cap_exp + 1);
        if (now - n.last_progress_at < stall) return;
        st.erase();
        n.serve_q.clear();
        n.serve_mark.clear();
      }
      if (!st.has_summary) {
        // Sanity-check the announced geometry before allocating: every
        // field is attacker-controlled, and a single frame must never
        // command an allocation beyond max_image_bytes.
        const size_t cp = info->chunk_payload;
        if (cp == 0 || cp > kMaxPayload || info->total_chunks == 0 ||
            info->image_bytes == 0 ||
            info->image_bytes > cfg_.proto.max_image_bytes ||
            (info->image_bytes + cp - 1) / cp != info->total_chunks)
          return;
        st.image_version = f.version;
        st.total_chunks = info->total_chunks;
        st.image_bytes = info->image_bytes;
        st.image_crc = info->image_crc;
        st.has_mac = info->has_mac;
        st.image_mac = info->image_mac;
        st.chunk_payload = info->chunk_payload;
        st.image.assign(info->image_bytes, 0);
        st.have.assign(info->total_chunks, 0);
        st.chunks_have = 0;
        ++st.writes;
        sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::SummaryStored,
                  info->total_chunks, info->image_crc & 0xFFFF);
        st.has_summary = true;
        auto early = std::move(n.early);
        n.early.clear();
        for (auto& [seq, payload] : early) store_chunk(seq, payload);
        if (!st.verified) progress();
      } else {
        // A probe while we are mid-transfer: answer promptly (staggered by
        // node id) with what is still missing instead of waiting out the
        // current backoff.
        n.nack_streak = 0;
        n.next_nack_at = std::min<uint64_t>(n.next_nack_at,
                                            now + (2 + 4ull * n.id) * kByte);
      }
      break;
    }
    case FrameType::Data: {
      ++n.stats.data_rx;
      // Trickle suppression: a chunk just heard on the air is a chunk the
      // neighborhood no longer needs from us — unmark any queued serve.
      if (mesh_ && f.seq < n.serve_mark.size()) n.serve_mark[f.seq] = 0;
      if (st.verified) return;
      if (!st.has_summary) {
        // Stash pre-Summary chunks so a lost Summary doesn't waste the
        // whole first pass; integrated once the geometry is known.
        if (f.payload.size() <= kMaxPayload && n.early.size() < kMaxEarlyChunks)
          n.early.emplace(f.seq, f.payload);
        progress();
        return;
      }
      store_chunk(f.seq, f.payload);
      break;
    }
    case FrameType::Nack: {
      if (!mesh_) break;  // star receivers ignore overheard Nacks
      const auto mn = parse_mesh_nack(f);
      if (!mn) break;
      if (mn->target == n.id && st.has_summary) {
        // A child asked us to serve: queue every requested chunk we hold
        // (CRC-verified by construction — only deframed, CRC-valid Data
        // ever enters the store). serve_mark dedups requests from
        // multiple children and implements Trickle suppression.
        if (n.serve_mark.size() != st.total_chunks)
          n.serve_mark.assign(st.total_chunks, 0);
        bool lacking = false;
        for (uint16_t seq : mn->missing) {
          if (seq >= st.total_chunks) continue;
          if (!st.have[seq]) {
            lacking = true;
            continue;
          }
          if (!n.serve_mark[seq]) {
            n.serve_mark[seq] = 1;
            n.serve_q.push_back(seq);
          }
        }
        if (mn->missing.empty()) mesh_schedule_summary_relay(n, now);
        if (lacking && !st.verified) {
          // Demand-driven pull: a child wants chunks we do not hold yet —
          // shorten our own next Nack so the pipeline keeps moving.
          n.next_nack_at =
              std::min<uint64_t>(n.next_nack_at, now + (2 + 4ull * n.id) * kByte);
        }
      } else if (mn->target == kNackAnyTarget) {
        // A lost node (fresh boot, rebooted, or churned out of parents)
        // wants the Summary re-announced. Only Summary relays answer —
        // never Data — so the response is one rate-limited frame per
        // neighbor, not a storm.
        mesh_schedule_summary_relay(n, now);
      }
      break;
    }
    case FrameType::Ack: {
      if (rollout_phase_) {
        // Mesh: health reports are relayed upstream exactly like mesh
        // Acks — the origin's payload core and tag are carried verbatim,
        // only the relayer/hop fields (outside the tag) are rewritten.
        if (const auto hr = parse_health(f)) {
          const uint16_t origin = f.seq;
          if (!mesh_ || origin == 0 || origin > cfg_.nodes) break;
          if (origin == n.id) break;  // our own report echoing back
          if (auth_ &&
              (!hr->has_tag ||
               hr->tag != health_tag(cfg_.proto.auth_key, cfg_.proto.version,
                                     origin, health_core(*hr))))
            break;
          if (!hr->has_relayer) break;
          if (hr->hop > n.hop) {
            // Heard from downstream (or from a node that lost its hop —
            // relayed hops are clamped to 255 < kNoHop): carry it toward
            // the base, rate-limited per origin.
            const auto it = n.health_relayed_at.find(origin);
            const bool recently = it != n.health_relayed_at.end() &&
                                  now - it->second < cfg_.proto.ack_repeat_min;
            if (!recently &&
                std::find_if(n.health_relay_q.begin(), n.health_relay_q.end(),
                             [&](const auto& e) {
                               return e.first == origin;
                             }) == n.health_relay_q.end())
              n.health_relay_q.push_back({origin, *hr});
          } else {
            // An upstream node already carries it; suppress ours.
            n.health_relayed_at[origin] = now;
          }
          break;
        }
      }
      if (!mesh_) break;  // star receivers ignore overheard Acks
      const auto ma = parse_mesh_ack(f);
      if (!ma) break;
      const uint16_t origin = f.seq;
      // Origin and relayer are attacker-controlled: range-check them
      // before they key the neighbor or relay tables.
      if (origin == 0 || origin > cfg_.nodes || ma->relayer > cfg_.nodes)
        break;
      if (auth_) {
        // Verify the origin's tag before learning anything from the
        // frame: a forged Ack must not poison the hop gradient or earn a
        // relay slot. Verification needs the announced image CRC, so a
        // node that holds no Summary yet ignores overheard Acks.
        if (!st.has_summary || !ma->has_tag ||
            ma->tag != ack_tag(cfg_.proto.auth_key, cfg_.proto.version,
                               origin, st.image_crc))
          break;
      }
      if (origin == n.id) {
        // Someone is relaying our own Ack: the chain is carrying it —
        // drop any pending repeat and fall back to the slow lane.
        n.ack_pending = false;
        n.next_ack_at = std::max(
            n.next_ack_at,
            now + (cfg_.proto.ack_repeat_min << cfg_.proto.backoff_cap_exp));
        break;
      }
      if (n.hop == kNoHop) break;
      // Relays double as gradient maintenance: in the end-game no
      // Summaries flow, so overheard relayer hops are the only thing
      // keeping the hop counts (and thus the relay direction) fresh.
      if (ma->hop < 0xFF) {
        n.nbr_hop[ma->relayer] = ma->hop;
        if (uint16_t(ma->hop) + 1 < n.hop)
          n.hop = static_cast<uint16_t>(ma->hop + 1);
        if (n.parent == kNoParent) n.parent = ma->relayer;
      }
      if (ma->hop > n.hop) {
        // Heard from downstream: forward the origin's completion toward
        // the base, rate-limited per origin and deduped against the queue.
        const auto it = n.ack_relayed_at.find(origin);
        const bool recently =
            it != n.ack_relayed_at.end() &&
            now - it->second < cfg_.proto.ack_repeat_min;
        if (!recently &&
            std::find_if(n.ack_relay_q.begin(), n.ack_relay_q.end(),
                         [&](const auto& e) { return e.first == origin; }) ==
                n.ack_relay_q.end())
          n.ack_relay_q.push_back({origin, ma->has_tag ? ma->tag : 0});
      } else {
        // An upstream node is already carrying this origin's Ack, or a
        // sibling relayed it first toward the same parents — ours would
        // be redundant; suppress via the rate limiter.
        n.ack_relayed_at[origin] = now;
      }
      break;
    }
    case FrameType::Control: {
      if (!rollout_phase_) break;  // ignored outside a rollout
      const auto ci = parse_control(f);
      if (!ci) break;
      const uint16_t target = f.seq;
      if (auth_) {
        // Verify before acting OR relaying: a forged/bitflipped Control
        // must neither reboot a node nor earn a flood slot.
        if (!ci->has_tag ||
            ci->tag != control_tag(cfg_.proto.auth_key, cfg_.proto.version,
                                   static_cast<uint8_t>(ci->cmd), target,
                                   ci->ctl_seq, ci->image_crc))
          break;
      }
      if (mesh_ && target != n.id && ci->ctl_seq > n.last_ctl_relayed) {
        // Flood relay (verbatim, tag included), once per ctl_seq.
        n.last_ctl_relayed = ci->ctl_seq;
        n.ctl_relay_q.push_back({target, *ci});
      }
      if (target != n.id) break;
      if (ci->ctl_seq <= n.last_ctl_seq) break;  // stale replay
      n.last_ctl_seq = ci->ctl_seq;
      on_node_control(n, target, *ci, now, sc);
      break;
    }
    default:
      break;  // receivers ignore Data echoes of unknown versions etc.
  }
}

// The hostile node's quantum (DESIGN.md §11): no honest protocol runs.
// Every overheard byte feeds the attached model, which then gets one raw
// transmission opportunity — its bytes bypass the frame encoder entirely,
// so arbitrary streams (garbage, truncations, length lies, forged frames,
// replays) go on the air. The model and the scratch buffers are touched
// only by this node's owning shard; in mesh mode the transmission is noted
// for the collision log exactly like an honest one (a hostile frame can be
// captured over, and collides, like any other).
void NetSim::step_hostile(Node& n, uint64_t now, ShardCtx& sc) {
  auto& dev = machines_[n.id]->dev();
  for (;;) {
    uint8_t avail = 0;
    dev.io_access(emu::kRadioRxAvail, avail, false);
    if (avail == 0) break;
    hostile_rx_.clear();
    for (uint8_t i = 0; i < avail; ++i) {
      uint8_t b = 0;
      dev.io_access(emu::kRadioRxData, b, false);
      hostile_rx_.push_back(b);
    }
    if (hostile_) hostile_->observe(hostile_rx_);
  }
  if (!hostile_) return;
  uint8_t busy = 0;
  dev.io_access(emu::kRadioStatus, busy, false);
  if (busy & 1) return;  // even the attacker's radio serializes frames
  const bool air_clear = !mesh_ || now >= air_busy_until_[n.id];
  hostile_tx_.clear();
  if (!hostile_->emit(now, air_clear, hostile_tx_) || hostile_tx_.empty())
    return;
  if (hostile_tx_.size() > kMaxHostilePacket)
    hostile_tx_.resize(kMaxHostilePacket);
  for (uint8_t b : hostile_tx_) {
    uint8_t v = b;
    dev.io_access(emu::kRadioData, v, true);
  }
  uint8_t go = 1;
  dev.io_access(emu::kRadioCtrl, go, true);
  if (mesh_)
    sc.tx_notes.push_back({n.id, now, now + hostile_tx_.size() * kByte});
}

void NetSim::step_node(size_t idx, uint64_t now, ShardCtx& sc) {
  Node& n = *nodes_[idx];
  if (cfg_.hostile_node == n.id) {
    step_hostile(n, now, sc);
    return;
  }
  drain_rx(n.id, n.deframer);
  while (auto f = n.deframer.next()) on_node_frame(n, *f, now, sc);
  if (n.down) return;  // a Control-commanded activation reboot fired
  if (rollout_phase_) {
    step_node_rollout(n, now, sc);
    if (n.down) return;  // a scripted trial behavior took the node down
  }
  if (!mesh_) {
    // During the rollout phase the transfer machinery quiesces: health
    // reports (sent by step_node_rollout) and Controls own the air.
    if (rollout_phase_) return;
    if (machines_[n.id]->dev().image_store().verified) return;
    if (now >= n.next_nack_at) node_send_nack(n, now, sc);
    return;
  }
  // Mesh: one carrier-sensed transmission opportunity per quantum.
  // Verified nodes stay on the air as servers and relays — that is what
  // flattens the per-node cost: the base serves hop-1 once, and every
  // completed layer feeds the next.
  if (!rollout_phase_ &&
      machines_[n.id]->dev().image_store().verified && now >= n.next_ack_at)
    n.ack_pending = true;
  if (!mesh_can_tx(n.id, now)) return;
  if (mesh_node_tx(n, now, sc)) return;
  if (rollout_phase_) return;  // no Nack-driven transfer during the rollout
  if (machines_[n.id]->dev().image_store().verified) return;
  if (now >= n.next_nack_at) node_send_nack(n, now, sc);
}

void NetSim::node_lifecycle(size_t idx, uint64_t now, ShardCtx& sc) {
  Node& n = *nodes_[idx];
  auto& dev = machines_[n.id]->dev();
  emu::ImageStore& st = dev.image_store();

  if (n.down) {
    if (now < n.up_at) return;
    // Power-up: anything that landed while the radio was off is gone, the
    // volatile protocol state starts fresh, and the transfer resumes from
    // the persisted chunk bitmap (empty after a cold, store-wiping crash).
    dev.flush_rx();
    n.deframer = Deframer{};
    n.early.clear();
    n.down = false;
    ++n.stats.reboots;
    n.stats.resumed_chunks = st.chunks_have;
    n.nack_streak = 0;
    n.next_nack_at = now + cfg_.proto.nack_timeout / 2 + n.id * 3 * kByte;
    n.last_ack_at = 0;  // a completed node re-answers the next probe at once
    // Mesh routing state is volatile: the node rejoins the flood from
    // scratch (kNackAnyTarget solicits Summary relays) and resumes its
    // transfer from the persisted chunk bitmap against whichever neighbor
    // answers first.
    n.hop = kNoHop;
    n.parent = kNoParent;
    n.nbr_hop.clear();
    n.nacks_at_parent = 0;
    n.ack_pending = false;
    n.next_ack_at = 0;
    n.ack_streak = 0;
    n.ack_relay_q.clear();
    n.ack_relayed_at.clear();
    n.serve_q.clear();
    n.serve_mark.clear();
    n.next_serve_at = 0;
    n.summary_relay_pending = false;
    n.summary_relay_at = 0;
    n.last_summary_relay_at = 0;
    sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::NodeRebooted,
              st.chunks_have, st.verified);
    if (rollout_phase_) {
      // Rollout volatile state died with the power rail; the persisted
      // slot machine (trial flags, rollback_report_pending) decides what
      // this boot means.
      n.trial_running = false;
      n.behavior_fired = false;
      n.health_pending = false;
      n.health_flags = 0;
      n.health_streak = 0;
      n.health_sends_left = 0;
      n.next_health_at = 0;
      n.last_ctl_seq = 0;
      n.last_ctl_relayed = 0;
      n.ctl_relay_q.clear();
      n.health_relay_q.clear();
      n.health_relayed_at.clear();
      if (n.trial_pending && st.trial_active) {
        // The sanctioned trial boot: probation opens now.
        n.trial_pending = false;
        n.trial_running = true;
        n.probation_end = now + cfg_.rollout.probation_bytes * kByte;
        const TrialBehavior& b = behaviors_[n.id];
        n.behavior_at =
            now + cfg_.rollout.probation_bytes * b.at_pct / 100 * kByte;
        if (mesh_) {
          // Deliberate fast reboot, not a power fault: the mesh gradient
          // is carried across it so the health report can flow at once.
          n.hop = n.saved_hop;
          n.parent = n.saved_parent;
        }
      } else {
        n.trial_pending = false;
        if (st.rollback_report_pending) {
          // The store auto-rolled-back at power-up (trial interrupted by
          // a reboot); the volatile failure report died with it — rebuild
          // and resend until the base acks with a Rollback command.
          node_queue_health(n, kHealthRolledBack | kHealthBootInterrupted,
                            cfg_.rollout.report_retries, now);
        }
      }
    }
    return;
  }

  if (!n.crash_plan.empty() &&
      st.chunks_have >= n.crash_plan.front().at_chunks) {
    const NodeCrash ev = n.crash_plan.front();
    n.crash_plan.pop_front();
    ++n.stats.crashes;
    sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::NodeCrashed,
              st.chunks_have, ev.wipe_store);
    dev.reboot();  // power fails: every volatile device state dies now
    if (rollout_phase_) {
      if (dev.take_store_reformatted())
        sc.record(now, static_cast<uint8_t>(n.id),
                  NetEventKind::StoreReformatted, n.id, 0);
      if (dev.last_boot() == emu::BootOutcome::TrialRollback)
        sc.record(now, static_cast<uint8_t>(n.id),
                  NetEventKind::TrialRolledBack, n.id,
                  static_cast<uint32_t>(RollbackWhy::BootInterrupted));
    }
    if (ev.wipe_store) {
      if (st.verified) --sc.complete_delta;  // a cold crash wipes a completion
      st.erase();
    }
    n.deframer = Deframer{};
    n.early.clear();
    n.down = true;
    n.up_at = now + ev.down_bytes * kByte;
    // While down the node neither hears nor is heard: both link directions
    // are forced into an outage window (consumes no medium randomness).
    // Buffered: the medium is shared state, and outages only gate future
    // broadcasts, so applying them at the barrier is observation-identical.
    sc.outages.push_back({kAnyNode, n.id, now, n.up_at});
    sc.outages.push_back({n.id, kAnyNode, now, n.up_at});
  }
}

// One shard's slice of a simulation quantum (the parallel phase): advance
// the shard's devices to `t` (TX completions land in txbufs_), then run
// each owned receiver's lifecycle + protocol step. Everything written here
// is owned by this shard — node/device state of its own receivers, its
// ShardCtx buffers, its machines' TX buffers — so shards never race.
void NetSim::run_shard_quantum(ShardCtx& sc, uint64_t t) {
  for (size_t id = sc.machine_begin; id < sc.machine_end; ++id)
    machines_[id]->dev().sync(t);
  for (size_t i = sc.node_begin; i < sc.node_end; ++i) {
    Node& n = *nodes_[i];
    const emu::ImageStore& st = machines_[n.id]->dev().image_store();
    n.snap_checksum_fail = n.stats.checksum_failures > 0 && !st.verified;
    n.snap_auth_fail = n.stats.auth_rejects > 0 && !st.verified;
    node_lifecycle(i, t, sc);
    if (!n.down) step_node(i, t, sc);
  }
}

NodeAbortReason NetSim::abort_reason_of(const Node& n) const {
  if (!base_->heard[n.id]) return NodeAbortReason::NeverHeard;
  const bool complete = machines_[n.id]->dev().image_store().verified;
  if (n.stats.auth_rejects > 0 && !complete) return NodeAbortReason::AuthFail;
  if (n.stats.checksum_failures > 0 && !complete)
    return NodeAbortReason::ChecksumFail;
  return NodeAbortReason::TimedOut;
}

// Partition receivers into contiguous shards (DESIGN.md §9). Shard s
// owns receiver indices [s*N/S, (s+1)*N/S) and syncs their machines;
// shard 0 additionally syncs the base machine. Contiguity makes the
// barrier merge a concatenation in shard order = node-id order.
// Auto-sharding only pays off once each shard owns a meaningful slice:
// below kMinNodesPerShard receivers per shard the quantum barrier costs
// more than the parallel phase saves, so small fleets run serial.
void NetSim::setup_engine() {
  ran_ = true;
  const unsigned requested =
      cfg_.shards == 0
          ? host::effective_jobs(0, cfg_.nodes / kMinNodesPerShard)
          : cfg_.shards;
  const unsigned S = static_cast<unsigned>(std::max<size_t>(
      1, std::min<size_t>(requested, std::max<size_t>(cfg_.nodes, 1))));
  shards_.assign(S, ShardCtx{});
  for (unsigned s = 0; s < S; ++s) {
    ShardCtx& sc = shards_[s];
    sc.node_begin = cfg_.nodes * s / S;
    sc.node_end = cfg_.nodes * (s + 1) / S;
    sc.machine_begin = s == 0 ? 0 : sc.node_begin + 1;
    sc.machine_end = sc.node_end + 1;
  }
  if (S > 1) pool_ = std::make_unique<host::WorkPool>(S);
}

bool NetSim::loop_done() const {
  // Rollout phase: the orchestrator reached its terminal state.
  // Dissemination: every node acknowledged, or every straggler abandoned
  // after its bounded retries.
  if (rollout_phase_) return ro_->phase == Rollout::Phase::Done;
  return base_->acked_count + base_->abandoned_count >= cfg_.nodes;
}

// The bulk-synchronous quantum loop shared by disseminate() and rollout().
// Returns false when max_cycles ran out before the phase terminated.
bool NetSim::run_loop() {
  while (!loop_done()) {
    t_ += kByte;
    if (t_ > cfg_.max_cycles) return false;
    // Deliver due packets first (completing transmissions hand packets to
    // the medium with latency >= one byte time, so nothing broadcast in
    // this quantum is consumable before the next — shard stepping order
    // cannot leak causality).
    medium_.flush(t_);

    // Parallel phase: each shard advances its devices and steps its
    // receivers, with every cross-node effect buffered shard-locally.
    phase_parallel_ = true;
    if (pool_) {
      pool_->dispatch([this](unsigned s) {
        run_shard_quantum(shards_[s], t_);
      });
    } else {
      run_shard_quantum(shards_[0], t_);
    }
    phase_parallel_ = false;

    // Barrier merge, reproducing the serial engine's exact per-quantum
    // order: (1) TX completions + their broadcasts in machine-id order
    // (the medium's PRNG roll order), (2) the base's protocol step,
    // (3) receiver trace events in node-id order, then the buffered
    // outage windows (first consulted by next quantum's broadcasts).
    for (size_t id = 0; id < machines_.size(); ++id) replay_tx(id);
    if (mesh_) {
      // Merge this quantum's transmission starts (collision log + carrier
      // sense) before the base steps, so the base defers to node frames
      // already on the air. Shard order = node-id order, and the updates
      // are max()/append, so any shard count merges identically.
      for (ShardCtx& sc : shards_) {
        for (const ShardCtx::TxNote& tn : sc.tx_notes)
          apply_tx_note(tn.from, tn.start, tn.done);
        sc.tx_notes.clear();
      }
    }
    step_base(t_);
    for (ShardCtx& sc : shards_) {
      for (const NetTraceEvent& e : sc.events)
        record(e.cycle, e.node, e.kind, e.a, e.b);
      for (const LinkOutage& o : sc.outages) medium_.add_outage(o);
      complete_count_ =
          static_cast<size_t>(static_cast<int64_t>(complete_count_) +
                              sc.complete_delta);
      sc.events.clear();
      sc.outages.clear();
      sc.complete_delta = 0;
    }
  }
  return true;
}

DisseminationResult NetSim::disseminate() {
  DisseminationResult res;
  setup_engine();
  const bool within_budget = run_loop();
  finish_dissem(res, !within_budget);
  return res;
}

void NetSim::finish_dissem(DisseminationResult& res, bool budget_exhausted) {
  res.total_chunks = total_chunks_;
  res.image_crc = blob_crc_;
  res.image_bytes = static_cast<uint32_t>(blob_.size());
  res.budget_exhausted = budget_exhausted;
  res.all_acked = base_->acked_count == cfg_.nodes;
  res.aborted = !res.all_acked;
  res.cycles = t_;
  const uint64_t t = t_;
  res.medium = medium_.stats();
  res.nodes.resize(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    Node& n = *nodes_[i];
    const auto& dev = machines_[n.id]->dev();
    const emu::ImageStore& st = dev.image_store();
    n.stats.crc_drops = n.deframer.crc_errors();
    n.stats.bytes_rx = dev.rx_delivered();
    n.stats.rx_overruns = dev.rx_overruns();
    n.stats.complete = st.verified;  // a cold crash can wipe a completion
    n.stats.store_writes = st.writes;
    if (mesh_) n.stats.hop = n.hop;
    n.stats.abandoned = base_->abandoned[n.id];
    if (res.aborted && !base_->acked[n.id]) {
      // Per-node abort reason instead of one global count: one Abort
      // event per node the base never heard a verified install from.
      n.stats.abort_reason = abort_reason_of(n);
      record(t, static_cast<uint8_t>(n.id), NetEventKind::Abort,
             n.id, static_cast<uint32_t>(n.stats.abort_reason));
    }
    res.nodes[i] = n.stats;
  }
  base_->stats.nodes_abandoned =
      static_cast<uint32_t>(base_->abandoned_count);
  res.base = base_->stats;
  res.complete_count = complete_count_;
  res.abandoned_count = base_->abandoned_count;
  res.trace_digest = trace_digest_;
  res.trace_events = trace_count_;
}

// --- Staged rollout (DESIGN.md §12) -----------------------------------------

void NetSim::set_initial_image(std::vector<uint8_t> blob, uint8_t version) {
  initial_blob_ = std::move(blob);
  initial_crc_ = crc32(initial_blob_);
  initial_version_ = version;
  for (size_t id = 1; id <= cfg_.nodes; ++id) {
    emu::ImageStore& st = machines_[id]->dev().image_store();
    st.slots[0].state = emu::SlotState::Confirmed;
    st.slots[0].version = version;
    st.slots[0].crc = initial_crc_;
    st.slots[0].image = initial_blob_;
    st.active_slot = 0;
    st.trial_active = false;
    st.trial_boot_pending = false;
  }
}

void NetSim::set_trial_behavior(uint16_t node, const TrialBehavior& b) {
  if (node >= 1 && node <= cfg_.nodes) behaviors_[node] = b;
}

const emu::ImageStore& NetSim::node_store(size_t node) const {
  return machines_.at(node)->dev().image_store();
}

RolloutResult NetSim::rollout() {
  RolloutResult rr;
  setup_engine();
  const bool dissem_ok = run_loop();
  finish_dissem(rr.dissem, !dissem_ok);
  if (dissem_ok) {
    begin_rollout(t_);
    rollout_phase_ = true;
    const bool rollout_ok = run_loop();
    rollout_phase_ = false;
    rr.budget_exhausted = !rollout_ok;
  } else {
    rr.budget_exhausted = true;
  }
  finish_rollout(rr);
  return rr;
}

void NetSim::begin_rollout(uint64_t now) {
  (void)now;
  ro_ = std::make_unique<Rollout>();
  ro_->state.assign(cfg_.nodes + 1, Rollout::M::Idle);
  ro_->tries.assign(cfg_.nodes + 1, 0);
  ro_->next_cmd_at.assign(cfg_.nodes + 1, 0);
  ro_->ack_rollback.assign(cfg_.nodes + 1, false);
  ro_->nstats.assign(cfg_.nodes + 1, NodeRolloutStats{});
  // Only dissemination-complete nodes are upgrade candidates (they hold a
  // verified copy of the new image); abandoned stragglers and the hostile
  // node stay on their current image.
  for (uint16_t id = 1; id <= cfg_.nodes; ++id) {
    if (cfg_.hostile_node == id) continue;
    if (!node_complete(id)) continue;
    ro_->members.push_back(id);
    ro_->nstats[id].member = true;
  }
}

void NetSim::enter_rollback_all(uint64_t now) {
  Rollout& ro = *ro_;
  ro.phase = Rollout::Phase::RollbackAll;
  ro.halted = true;
  ro.wave_open = false;
  record(now, 0, NetEventKind::RolloutHalted, ro.failures,
         cfg_.rollout.failure_budget);
  for (uint16_t id : ro.members) {
    switch (ro.state[id]) {
      case Rollout::M::Confirmed:
      case Rollout::M::Activating:
      case Rollout::M::AwaitConfirm:
      case Rollout::M::GivenUp:  // second chance: it may be back by now
        ro.state[id] = Rollout::M::RollingBack;
        ro.tries[id] = 0;
        ro.next_cmd_at[id] = now;
        break;
      default:
        break;  // Idle never upgraded; Failed is already back on old
    }
  }
}

void NetSim::base_send_control(uint16_t target, ControlCmd cmd, uint64_t now) {
  ControlInfo ci;
  ci.cmd = cmd;
  ci.ctl_seq = ++ro_->ctl_seq;
  ci.image_crc = blob_crc_;
  if (auth_) {
    ci.has_tag = true;
    ci.tag = control_tag(cfg_.proto.auth_key, cfg_.proto.version,
                         static_cast<uint8_t>(cmd), target, ci.ctl_seq,
                         ci.image_crc);
  }
  mesh_send(0, make_control(cfg_.proto.version, target, ci), now, nullptr);
  record(now, 0, NetEventKind::ControlTx, static_cast<uint32_t>(cmd), target);
}

void NetSim::step_base_rollout(uint64_t now) {
  Rollout& ro = *ro_;
  if (ro.phase == Rollout::Phase::Done) return;

  if (ro.phase == Rollout::Phase::Waves) {
    if (ro.failures > cfg_.rollout.failure_budget) {
      // Budget exceeded — halt immediately (even mid-wave) and drive every
      // upgraded member back to the previous image.
      enter_rollback_all(now);
    } else {
      if (ro.wave_open) {
        bool done = true;
        bool clean = true;
        for (size_t i = ro.wave_begin; i < ro.wave_end; ++i) {
          const Rollout::M s = ro.state[ro.members[i]];
          if (s == Rollout::M::Activating || s == Rollout::M::AwaitConfirm)
            done = false;
          if (s != Rollout::M::Confirmed) clean = false;
        }
        if (done) {
          ro.wave_open = false;
          if (clean) ++ro.waves_promoted;
        }
      }
      if (!ro.wave_open) {
        if (ro.next_member >= ro.members.size()) {
          ro.phase = Rollout::Phase::Done;
          record(now, 0, NetEventKind::RolloutDone, ro.confirmed,
                 ro.rolled_back);
          return;
        }
        // The health gate is the wave promoter: the next wave only opens
        // once every member of the previous one reached a terminal state.
        ro.wave_begin = ro.next_member;
        ro.wave_end = std::min(ro.wave_begin + size_t(cfg_.rollout.wave_size),
                               ro.members.size());
        ro.next_member = ro.wave_end;
        ro.wave_open = true;
        record(now, 0, NetEventKind::RolloutWave, ro.wave_index,
               static_cast<uint32_t>(ro.wave_end - ro.wave_begin));
        ++ro.wave_index;
        for (size_t i = ro.wave_begin; i < ro.wave_end; ++i) {
          const uint16_t id = ro.members[i];
          ro.state[id] = Rollout::M::Activating;
          ro.tries[id] = 0;
          ro.next_cmd_at[id] = now;
        }
      }
    }
  }

  if (ro.phase == Rollout::Phase::RollbackAll) {
    bool settled = true;
    for (uint16_t id : ro.members) {
      if (ro.state[id] == Rollout::M::RollingBack) settled = false;
      if (ro.ack_rollback[id]) settled = false;  // pending report acks
    }
    if (settled) {
      ro.phase = Rollout::Phase::Done;
      record(now, 0, NetEventKind::RolloutDone, ro.confirmed, ro.rolled_back);
      return;
    }
  }

  uint8_t busy = 0;
  machines_[0]->dev().io_access(emu::kRadioStatus, busy, false);
  if (busy & 1) return;  // one frame in the air at a time
  if (mesh_ && now < air_busy_until_[0]) return;  // carrier sense

  // Failure-report acks first: a Rollback in reply silences the reporting
  // node's retry stream (and is idempotent at the node).
  for (uint16_t id : ro.members) {
    if (!ro.ack_rollback[id]) continue;
    ro.ack_rollback[id] = false;
    base_send_control(id, ControlCmd::Rollback, now);
    return;
  }

  // One due command per quantum. Waves address only the open wave;
  // the fleet-wide rollback addresses every member.
  if (ro.phase == Rollout::Phase::Waves && !ro.wave_open) return;
  const size_t begin = ro.phase == Rollout::Phase::Waves ? ro.wave_begin : 0;
  const size_t end =
      ro.phase == Rollout::Phase::Waves ? ro.wave_end : ro.members.size();
  size_t best = SIZE_MAX;
  for (size_t i = begin; i < end; ++i) {
    const uint16_t id = ro.members[i];
    const Rollout::M s = ro.state[id];
    const bool wants = s == Rollout::M::Activating ||
                       s == Rollout::M::AwaitConfirm ||
                       s == Rollout::M::RollingBack;
    if (!wants || now < ro.next_cmd_at[id]) continue;
    if (ro.tries[id] >= cfg_.rollout.give_up_tries) {
      // Bounded retries: a silent node must not stall its wave (or the
      // fleet rollback) forever. In the wave phase a give-up counts
      // against the failure budget — "unreachable mid-upgrade" is as bad
      // as a failed trial.
      ro.state[id] = Rollout::M::GivenUp;
      ro.nstats[id].given_up = true;
      if (ro.phase == Rollout::Phase::Waves) {
        ++ro.failures;
        ++ro.gave_up;
      }
      record(now, 0, NetEventKind::RolloutGiveUp, id, ro.tries[id]);
      continue;
    }
    if (best == SIZE_MAX ||
        ro.next_cmd_at[id] < ro.next_cmd_at[ro.members[best]])
      best = i;
  }
  if (best == SIZE_MAX) return;
  const uint16_t id = ro.members[best];
  ControlCmd cmd = ControlCmd::ActivateTrial;
  if (ro.state[id] == Rollout::M::AwaitConfirm) cmd = ControlCmd::ConfirmTrial;
  if (ro.state[id] == Rollout::M::RollingBack) cmd = ControlCmd::Rollback;
  base_send_control(id, cmd, now);
  const uint32_t exp = std::min(ro.tries[id], cfg_.proto.backoff_cap_exp);
  ro.next_cmd_at[id] = now + (cfg_.rollout.control_interval << exp);
  ++ro.tries[id];
}

void NetSim::on_base_health(uint16_t origin, const HealthReport& hr,
                            uint64_t now) {
  Rollout& ro = *ro_;
  if (auth_) {
    // The tag covers the 12 core bytes under (version, origin): a forged
    // "trial clean" for a lemon, or a spoofed failure meant to burn the
    // budget, dies here. Relayer/hop are outside the tag, like mesh Acks.
    if (!hr.has_tag ||
        hr.tag != health_tag(cfg_.proto.auth_key, cfg_.proto.version, origin,
                             health_core(hr))) {
      ++ro.health_rejected;
      record(now, 0, NetEventKind::AckRejected, origin, 1);
      return;
    }
  }
  note_node_alive(origin);
  record(now, 0, NetEventKind::HealthRx, origin, hr.flags);
  Rollout::M& s = ro.state[origin];
  NodeRolloutStats& ns = ro.nstats[origin];
  ++ns.reports_rx;

  if (hr.flags & kHealthConfirmed) {
    if (s == Rollout::M::Activating || s == Rollout::M::AwaitConfirm) {
      s = Rollout::M::Confirmed;
      ++ro.confirmed;
      ns.confirmed = true;
      record(now, 0, NetEventKind::NodeConfirmed, origin,
             ro.wave_index == 0 ? 0 : ro.wave_index - 1);
    }
    return;
  }
  if (hr.flags & kHealthRolledBack) {
    switch (s) {
      case Rollout::M::Activating:
      case Rollout::M::AwaitConfirm:
        s = Rollout::M::Failed;
        ++ro.failures;
        ns.rolled_back = true;
        ro.ack_rollback[origin] = true;
        break;
      case Rollout::M::GivenUp:
        // The node came back with the bad news; its give-up already
        // counted against the budget — don't double-charge.
        s = Rollout::M::Failed;
        ns.rolled_back = true;
        ro.ack_rollback[origin] = true;
        break;
      case Rollout::M::RollingBack:
        s = Rollout::M::RolledBack;
        ++ro.rolled_back;
        ns.rolled_back = true;
        break;
      default:
        // Duplicates in terminal states get no re-ack: re-acking every
        // repeat would ping-pong Rollback/report forever.
        break;
    }
    return;
  }
  if (hr.flags & kHealthTrialClean) {
    if (s == Rollout::M::Activating) {
      // The health gate: restarts are reported (and visible in the trace)
      // but only supervision quarantines and watchdog kills fail a trial.
      if (hr.quarantines == 0 && hr.watchdog_fires == 0) {
        s = Rollout::M::AwaitConfirm;
        ro.tries[origin] = 0;
        ro.next_cmd_at[origin] = now;
      } else {
        s = Rollout::M::Failed;
        ++ro.failures;
        ns.rolled_back = true;
        ro.ack_rollback[origin] = true;  // command the rollback
      }
    } else if (s == Rollout::M::GivenUp) {
      // A clean report from a node we already gave up on: too late to
      // promote — roll it back so no trial outlives the run.
      s = Rollout::M::Failed;
      ns.rolled_back = true;
      ro.ack_rollback[origin] = true;
    }
    return;
  }
}

void NetSim::on_node_control(Node& n, uint16_t target, const ControlInfo& ci,
                             uint64_t now, ShardCtx& sc) {
  (void)target;
  auto& dev = machines_[n.id]->dev();
  emu::ImageStore& st = dev.image_store();
  switch (ci.cmd) {
    case ControlCmd::ActivateTrial: {
      if (n.trial_pending || st.trial_active) break;  // already trialing
      const emu::ImageSlot& act = st.slots[st.active_slot];
      const emu::ImageSlot& other = st.slots[st.active_slot ^ 1];
      if (act.state == emu::SlotState::Confirmed && act.crc == ci.image_crc) {
        // Already upgraded and confirmed — the base lost our report.
        node_queue_health(n, kHealthConfirmed, 2, now);
        break;
      }
      if ((act.crc == ci.image_crc && act.state == emu::SlotState::Rejected) ||
          (other.crc == ci.image_crc &&
           other.state == emu::SlotState::Rejected)) {
        // A slot already holds this image marked Rejected: never boot a
        // known-bad image again; restate the rollback instead.
        node_queue_health(n, kHealthRolledBack, 2, now);
        break;
      }
      if (!st.verified || st.image_crc != ci.image_crc) break;  // not held
      const int slot = st.stage_inactive(cfg_.proto.version);
      if (slot < 0) break;
      sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::ImageStaged,
                static_cast<uint32_t>(slot), st.image_crc & 0xFFFF);
      st.activate_trial(static_cast<uint8_t>(slot));
      sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::TrialActivated,
                static_cast<uint32_t>(slot), ci.image_crc & 0xFFFF);
      // Deliberate reboot into the trial slot: on_power_up consumes the
      // one sanctioned trial boot; any later reboot before ConfirmTrial
      // auto-rolls-back.
      n.saved_hop = n.hop;
      n.saved_parent = n.parent;
      n.trial_pending = true;
      dev.reboot();
      n.deframer = Deframer{};
      n.early.clear();
      n.down = true;
      n.up_at = now + cfg_.rollout.reboot_bytes * kByte;
      sc.outages.push_back({kAnyNode, n.id, now, n.up_at});
      sc.outages.push_back({n.id, kAnyNode, now, n.up_at});
      break;
    }
    case ControlCmd::ConfirmTrial: {
      if (st.trial_active && !n.trial_running && !n.trial_pending &&
          (n.health_flags & kHealthTrialClean)) {
        // Probation passed and the base agreed: promote the trial slot.
        st.confirm_trial();
        node_queue_health(n, kHealthConfirmed, 2, now);
      } else if (!st.trial_active &&
                 st.slots[st.active_slot].state == emu::SlotState::Confirmed &&
                 st.slots[st.active_slot].crc == ci.image_crc) {
        node_queue_health(n, kHealthConfirmed, 2, now);  // duplicate confirm
      }
      break;
    }
    case ControlCmd::Rollback: {
      bool did = false;
      if (st.trial_active) {
        st.rollback_trial();
        did = true;
      } else {
        did = st.revert_active(ci.image_crc);
      }
      if (did)
        sc.record(now, static_cast<uint8_t>(n.id),
                  NetEventKind::TrialRolledBack, n.id,
                  static_cast<uint32_t>(RollbackWhy::Commanded));
      n.trial_running = false;
      st.rollback_report_pending = false;  // doubles as the failure ack
      node_queue_health(n, kHealthRolledBack, 2, now);
      break;
    }
  }
}

void NetSim::step_node_rollout(Node& n, uint64_t now, ShardCtx& sc) {
  auto& dev = machines_[n.id]->dev();
  emu::ImageStore& st = dev.image_store();
  if (n.trial_running) {
    const TrialBehavior& b = behaviors_[n.id];
    if (!n.behavior_fired && now >= n.behavior_at) {
      n.behavior_fired = true;
      // The scripted trial "runs": its kernel recovery stats land in the
      // device health counters exactly where the supervisor mirrors the
      // real ones (DeviceHub::health_add).
      dev.health_add(b.restarts, b.quarantines, b.watchdog_fires);
      switch (b.kind) {
        case TrialBehavior::Kind::Runaway:
          if (b.quarantines > 0 || b.watchdog_fires > 0) {
            // On-node gate: the node needs no base round-trip to know its
            // trial is toxic — roll back at once and report the failure.
            st.rollback_trial();
            sc.record(now, static_cast<uint8_t>(n.id),
                      NetEventKind::TrialRolledBack, n.id,
                      static_cast<uint32_t>(RollbackWhy::GateFailed));
            n.trial_running = false;
            node_queue_health(n, kHealthRolledBack | kHealthGateFailed,
                              cfg_.rollout.report_retries, now);
          }
          break;
        case TrialBehavior::Kind::CrashBoot:
        case TrialBehavior::Kind::Wedge: {
          // The trial takes the node down mid-probation; on_power_up (in
          // dev.reboot) detects the interrupted trial and auto-rolls-back,
          // leaving rollback_report_pending for the comeback report.
          const uint64_t down_bytes = b.kind == TrialBehavior::Kind::Wedge
                                          ? b.wedge_bytes
                                          : b.down_bytes;
          ++n.stats.crashes;
          sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::NodeCrashed,
                    st.chunks_have, 0);
          dev.reboot();
          if (dev.last_boot() == emu::BootOutcome::TrialRollback)
            sc.record(now, static_cast<uint8_t>(n.id),
                      NetEventKind::TrialRolledBack, n.id,
                      static_cast<uint32_t>(RollbackWhy::BootInterrupted));
          n.trial_running = false;
          n.deframer = Deframer{};
          n.early.clear();
          n.down = true;
          n.up_at = now + down_bytes * kByte;
          sc.outages.push_back({kAnyNode, n.id, now, n.up_at});
          sc.outages.push_back({n.id, kAnyNode, now, n.up_at});
          return;
        }
        default:
          break;  // Healthy: counters recorded, nothing else fires
      }
    }
    if (n.trial_running && now >= n.probation_end) {
      // Probation survived. Report the gate inputs; the slot stays a
      // Staged trial until the base's ConfirmTrial promotes it.
      n.trial_running = false;
      node_queue_health(n, kHealthTrialClean, cfg_.rollout.report_retries,
                        now);
    }
  }
  // Star mode transmits directly (mirroring Nacks — no carrier sense);
  // mesh reports ride mesh_node_tx's prioritized TX slot instead.
  if (!mesh_ && n.health_pending && now >= n.next_health_at)
    node_send_health(n, now, sc);
}

void NetSim::node_queue_health(Node& n, uint8_t flags, uint32_t sends,
                               uint64_t now) {
  n.health_flags = flags;
  n.health_pending = sends > 0;
  n.health_sends_left = sends;
  n.health_streak = 0;
  // Stagger by node id (like first Nacks) so wave members answering the
  // same command don't collide in one synchronized volley.
  n.next_health_at = now + n.id * 3 * kByte;
}

void NetSim::node_send_health(Node& n, uint64_t now, ShardCtx& sc) {
  auto& dev = machines_[n.id]->dev();
  const emu::ImageStore& st = dev.image_store();
  const emu::HealthCounters& h = dev.health();
  const auto clamp16 = [](uint32_t v) {
    return static_cast<uint16_t>(v > 0xFFFF ? 0xFFFF : v);
  };
  HealthReport hr;
  hr.flags = n.health_flags;
  hr.restarts = clamp16(h.restarts);
  hr.quarantines = clamp16(h.quarantines);
  hr.watchdog_fires = clamp16(h.watchdog_fires);
  hr.image_crc = st.slots[st.active_slot].crc;
  hr.active_slot = st.active_slot;
  if (auth_) {
    hr.has_tag = true;
    hr.tag = health_tag(cfg_.proto.auth_key, cfg_.proto.version, n.id,
                        health_core(hr));
  }
  if (mesh_) {
    hr.has_relayer = true;
    hr.relayer = n.id;
    // A node that lost its gradient reports hop 255 (< kNoHop): neighbors
    // that kept theirs treat it as downstream and relay it toward the
    // base, so even a gradient-less node's report gets through.
    hr.hop = n.hop < 0xFF ? n.hop : 0xFF;
  }
  mesh_send(n.id, make_health(cfg_.proto.version, n.id, hr), now, &sc);
  sc.record(now, static_cast<uint8_t>(n.id), NetEventKind::HealthTx, hr.flags,
            n.health_streak);
  const uint32_t exp = std::min(n.health_streak, cfg_.proto.backoff_cap_exp);
  n.next_health_at = now + (cfg_.proto.ack_repeat_min << exp) +
                     (mesh_ ? mesh_jitter(n.id, n.health_streak) : 0);
  ++n.health_streak;
  if (n.health_sends_left > 0) --n.health_sends_left;
  if (n.health_sends_left == 0) n.health_pending = false;
}

void NetSim::finish_rollout(RolloutResult& rr) {
  rr.cycles = t_;
  rr.trace_digest = trace_digest_;
  rr.trace_events = trace_count_;
  if (ro_) {
    rr.waves = ro_->wave_index;
    rr.waves_promoted = ro_->waves_promoted;
    rr.failures = ro_->failures;
    rr.confirmed = ro_->confirmed;
    rr.rolled_back = ro_->rolled_back;
    rr.gave_up = ro_->gave_up;
    rr.health_rejected = ro_->health_rejected;
    rr.halted = ro_->halted;
    rr.complete = ro_->phase == Rollout::Phase::Done && !ro_->halted &&
                  !rr.budget_exhausted &&
                  ro_->confirmed == ro_->members.size();
  }
  rr.nodes.assign(cfg_.nodes + 1, NodeRolloutStats{});
  for (size_t id = 1; id <= cfg_.nodes; ++id) {
    NodeRolloutStats ns = ro_ ? ro_->nstats[id] : NodeRolloutStats{};
    // Ground truth from the persistent store, not base bookkeeping.
    const emu::ImageStore& st = machines_[id]->dev().image_store();
    ns.final_slot = st.active_slot;
    ns.final_state = st.slots[st.active_slot].state;
    ns.final_crc = st.slots[st.active_slot].crc;
    ns.trial_left_active = st.trial_active;
    for (const emu::ImageSlot& s : st.slots)
      if (s.state != emu::SlotState::Empty && s.crc == blob_crc_)
        ns.activated = true;
    rr.nodes[id] = ns;
  }
}

const std::vector<uint8_t>& NetSim::node_blob(size_t node) const {
  static const std::vector<uint8_t> kEmpty;
  if (node == 0 || node > nodes_.size()) return kEmpty;
  const emu::ImageStore& st = machines_[node]->dev().image_store();
  return st.verified ? st.image : kEmpty;
}

bool NetSim::node_complete(size_t node) const {
  return node >= 1 && node <= nodes_.size() &&
         machines_[node]->dev().image_store().verified;
}

emu::Machine& NetSim::node_machine(size_t node) {
  return *machines_.at(node);
}

}  // namespace sensmart::net
