// The PeriodicTask program of §V-C: periodic events trigger computational
// tasks of a configurable size. The program reads the global clock
// (Timer3, virtualized by the kernel), arms a timed sleep for the next
// period boundary, sleeps, and on wake runs a busy loop of a configurable
// number of instructions. If an activation overruns its period the next
// one starts immediately (no sleep), which is what makes the execution
// time curve rise sharply once the CPU saturates (Fig. 6a).
#pragma once

#include "assembler/assembler.hpp"

namespace sensmart::apps {

struct PeriodicTaskParams {
  uint16_t period_ticks = 1172;  // Timer3 ticks (256 cycles each): ~40.7 ms
  uint16_t activations = 300;    // "300 tasks"
  uint32_t instructions = 20000; // computation size per activation
  uint16_t phase_ticks = 0;      // initial offset (stagger concurrent tasks)
};

assembler::Image periodic_task_program(const PeriodicTaskParams& p);

}  // namespace sensmart::apps
