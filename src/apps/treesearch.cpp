#include "apps/treesearch.hpp"

#include <stdexcept>

#include "emu/io_map.hpp"

namespace sensmart::apps {

using assembler::Assembler;
using assembler::Image;
using namespace emu;

namespace {

// Emit the shared PRNG: rand16 returns r16:r17 and advances the LFSR state
// in r8:r9 (Fibonacci taps 16,14,13,11). Clobbers r18.
void emit_rand16(Assembler& a) {
  a.label("rand16");
  a.mov(18, 8);
  a.mov(16, 8);
  a.lsr(18);
  a.lsr(18);
  a.eor(16, 18);  // s ^ s>>2
  a.lsr(18);
  a.eor(16, 18);  // ^ s>>3
  a.lsr(18);
  a.lsr(18);
  a.eor(16, 18);  // ^ s>>5
  a.andi(16, 1);  // feedback bit
  a.lsr(9);       // s >>= 1
  a.ror(8);
  a.cpi(16, 0);
  a.breq("rand_nobit");
  a.ldi(18, 0x80);
  a.or_(9, 18);
  a.label("rand_nobit");
  a.mov(16, 8);
  a.mov(17, 9);
  a.ret();
}

void emit_seed(Assembler& a, uint16_t seed) {
  a.ldi(16, static_cast<uint8_t>(seed & 0xFF));
  a.mov(8, 16);
  a.ldi(16, static_cast<uint8_t>(seed >> 8));
  a.mov(9, 16);
}

}  // namespace

Image tree_search_program(const TreeSearchParams& p) {
  if (p.trees == 0 || p.nodes_per_tree == 0)
    throw std::invalid_argument("tree_search: empty workload");
  const uint32_t total_nodes = uint32_t(p.trees) * p.nodes_per_tree;
  if (total_nodes > 500)
    throw std::invalid_argument("tree_search: heap would not fit");

  Assembler a("treesearch");
  const uint16_t roots = a.var("roots", static_cast<uint16_t>(p.trees * 2));
  const uint16_t nf = a.var("next_free", 2);
  const uint16_t nodes =
      a.var("nodes", static_cast<uint16_t>(total_nodes * 6));

  a.rjmp("start");
  emit_rand16(a);

  // search: recursive lookup of key r16:r17 starting at node X (r26:r27).
  // Each level pushes a 13-byte register frame plus the 2-byte return
  // address: 15 bytes per recursion level (§V-D). r4 = current depth,
  // r6 = hits, r7 = max depth, r2 = zero.
  a.label("search");
  a.cp(26, 2);
  a.cpc(27, 2);
  a.brne("srch_go");
  a.ret();
  a.label("srch_go");
  for (uint8_t r : {0, 3, 5, 10, 11, 12, 13, 14, 15, 18, 19, 30, 31})
    a.push(r);
  a.inc(4);
  a.cp(7, 4);
  a.brcc("depth_ok");  // r7 >= r4
  a.mov(7, 4);
  a.label("depth_ok");
  a.movw(30, 26);
  a.ldd_z(18, 0);  // node.key (grouped access)
  a.ldd_z(19, 1);
  a.cp(16, 18);
  a.cpc(17, 19);
  a.brne("srch_ne");
  a.inc(6);  // hit
  a.rjmp("srch_out");
  a.label("srch_ne");
  a.brcs("srch_left");  // C set: key < node.key
  a.ldd_z(26, 4);       // right child
  a.ldd_z(27, 5);
  a.rcall("search");
  a.rjmp("srch_out");
  a.label("srch_left");
  a.ldd_z(26, 2);  // left child
  a.ldd_z(27, 3);
  a.rcall("search");
  a.label("srch_out");
  a.dec(4);
  for (uint8_t r : {31, 30, 19, 18, 15, 14, 13, 12, 11, 10, 5, 3, 0})
    a.pop(r);
  a.ret();

  // ---- main ----------------------------------------------------------------
  a.label("start");
  a.ldi(16, 0);
  a.mov(2, 16);  // zero register
  a.mov(4, 16);  // depth
  a.mov(6, 16);  // hits
  a.mov(7, 16);  // max depth
  emit_seed(a, p.seed);

  // next_free = &nodes; roots[] = 0.
  a.ldi16(18, nodes);
  a.sts(nf, 18);
  a.sts(static_cast<uint16_t>(nf + 1), 19);
  a.ldi16(26, roots);
  a.ldi(17, static_cast<uint8_t>(p.trees * 2));
  a.label("clr_roots");
  a.st_x_inc(2);
  a.dec(17);
  a.brne("clr_roots");

  // ---- build: insert total_nodes keys round-robin across the trees -----
  a.ldi16(20, static_cast<uint16_t>(total_nodes));
  a.ldi(22, 0);  // tree index
  a.label("build_loop");
  a.rcall("rand16");  // key in r16:r17

  // Allocate a node: X = next_free; next_free += 6.
  a.lds(26, nf);
  a.lds(27, static_cast<uint16_t>(nf + 1));
  a.mov(18, 26);
  a.mov(19, 27);
  a.subi(18, 0xFA);  // += 6
  a.sbci(19, 0xFF);
  a.sts(nf, 18);
  a.sts(static_cast<uint16_t>(nf + 1), 19);
  // Initialize: key, left = right = null.
  a.movw(30, 26);
  a.std_z(0, 16);
  a.std_z(1, 17);
  a.std_z(2, 2);
  a.std_z(3, 2);
  a.std_z(4, 2);
  a.std_z(5, 2);

  // Insert node X with key r16:r17 into tree r22.
  a.mov(18, 22);
  a.add(18, 18);  // t*2
  a.ldi16(28, roots);
  a.add(28, 18);
  a.adc(29, 2);  // Y = &roots[t]
  a.ldd_y(18, 0);
  a.ldd_y(19, 1);
  a.cp(18, 2);
  a.cpc(19, 2);
  a.brne("ins_walk");
  a.std_y(0, 26);  // empty tree: root = node
  a.std_y(1, 27);
  a.rjmp("ins_done");
  a.label("ins_walk");
  a.movw(10, 18);  // r10:r11 = cur
  a.label("walk_loop");
  a.movw(30, 10);  // Z = cur
  a.ldd_z(18, 0);
  a.ldd_z(19, 1);
  a.cp(16, 18);
  a.cpc(17, 19);
  a.brcs("go_left");
  a.ldd_z(18, 4);  // right child
  a.ldd_z(19, 5);
  a.cp(18, 2);
  a.cpc(19, 2);
  a.breq("set_right");
  a.movw(10, 18);
  a.rjmp("walk_loop");
  a.label("set_right");
  a.std_z(4, 26);
  a.std_z(5, 27);
  a.rjmp("ins_done");
  a.label("go_left");
  a.ldd_z(18, 2);  // left child
  a.ldd_z(19, 3);
  a.cp(18, 2);
  a.cpc(19, 2);
  a.breq("set_left");
  a.movw(10, 18);
  a.rjmp("walk_loop");
  a.label("set_left");
  a.std_z(2, 26);
  a.std_z(3, 27);
  a.label("ins_done");

  a.inc(22);
  a.cpi(22, p.trees);
  a.brne("no_wrap_b");
  a.ldi(22, 0);
  a.label("no_wrap_b");
  a.dec16(20);
  a.breq("build_done");
  a.rjmp("build_loop");  // loop body exceeds the BRNE offset range
  a.label("build_done");

  // ---- search: replay the PRNG so the first total_nodes keys hit ---------
  emit_seed(a, p.seed);
  a.ldi16(20, p.searches);
  a.ldi(22, 0);
  a.label("search_loop");
  a.rcall("rand16");
  a.mov(18, 22);
  a.add(18, 18);
  a.ldi16(28, roots);
  a.add(28, 18);
  a.adc(29, 2);
  a.ldd_y(26, 0);  // X = root of tree r22
  a.ldd_y(27, 1);
  a.rcall("search");
  a.inc(22);
  a.cpi(22, p.trees);
  a.brne("no_wrap_s");
  a.ldi(22, 0);
  a.label("no_wrap_s");
  a.dec16(20);
  a.brne("search_loop");

  a.sts(kHostOut, 6);  // hits
  a.sts(kHostOut, 7);  // max recursion depth
  a.halt(0);
  return a.finish();
}

Image data_feed_program(uint16_t rounds, uint16_t period_ticks) {
  Assembler a("datafeed");
  const uint16_t buf = a.var("buf", 64);
  const uint16_t widx = a.var("widx", 1);

  a.rjmp("start");
  emit_rand16(a);

  a.label("start");
  emit_seed(a, 0x1234);
  a.ldi(16, 0);
  a.sts(widx, 16);
  a.ldi16(20, rounds);

  a.label("round");
  // Sleep until the next feed period.
  a.lds(24, kTcnt3L);
  a.lds(25, kTcnt3H);
  a.ldi16(18, period_ticks);
  a.add(24, 18);
  a.adc(25, 19);
  a.sts(kSleepTargetL, 24);
  a.sts(kSleepTargetH, 25);
  a.sleep();

  // Append 8 "sensor" bytes to the circular buffer.
  a.ldi(19, 8);
  a.label("feed");
  a.rcall("rand16");
  a.lds(18, widx);
  a.ldi16(26, buf);
  a.add(26, 18);
  a.ldi(17, 0);
  a.adc(27, 17);
  a.st_x(16);
  a.inc(18);
  a.andi(18, 0x3F);  // mod 64
  a.sts(widx, 18);
  a.dec(19);
  a.brne("feed");

  a.dec16(20);
  a.brne("round");

  a.lds(16, widx);
  a.sts(kHostOut, 16);
  a.halt(0);
  return a.finish();
}

}  // namespace sensmart::apps
