// The seven kernel-benchmark programs used in the t-kernel and SenSmart
// evaluations (§V-C): am, amplitude, crc, eventchain, lfsr, readadc, timer.
// They cover the typical operations of sensornet applications: radio I/O,
// sensor sampling, CPU-bound bit twiddling, event dispatch through function
// pointers, and timer polling.
//
// Each program is self-contained, deterministic, writes its result bytes to
// the host output port and exits through the host halt port, so native and
// naturalized executions can be compared bit-for-bit.
#pragma once

#include <string>
#include <vector>

#include "assembler/assembler.hpp"

namespace sensmart::apps {

// Build one benchmark by name; throws on unknown names.
assembler::Image build_benchmark(const std::string& name);

// The benchmark names in the order the paper's figures list them.
const std::vector<std::string>& benchmark_names();

// Individual builders (iteration counts chosen so native execution takes
// on the order of 0.1-1 s of emulated time at 7.3728 MHz).
assembler::Image am_program(uint16_t packets = 24);
assembler::Image amplitude_program(uint16_t rounds = 900);
assembler::Image crc_program(uint16_t rounds = 220);
assembler::Image eventchain_program(uint16_t rounds = 3200);
assembler::Image lfsr_program(uint16_t iters = 50000);
assembler::Image readadc_program(uint16_t samples = 2600);
assembler::Image timer_program(uint16_t rounds = 420);

}  // namespace sensmart::apps
