#include "apps/periodic_task.hpp"

#include <stdexcept>

#include "emu/io_map.hpp"

namespace sensmart::apps {

using assembler::Assembler;
using assembler::Image;
using namespace emu;

Image periodic_task_program(const PeriodicTaskParams& p) {
  if (p.instructions / 2 > 0xFFFF)
    throw std::invalid_argument("computation size exceeds the busy-loop range");
  const uint16_t iters = static_cast<uint16_t>(p.instructions / 2);

  Assembler a("periodic");
  const uint16_t done = a.var("done", 2);  // completed activations

  // r24:r25 = next deadline (ticks), r20:r21 = remaining activations.
  a.lds(24, kTcnt3L);  // read the global clock (reads L latches H)
  a.lds(25, kTcnt3H);
  if (p.phase_ticks != 0) {
    a.ldi16(16, p.phase_ticks);
    a.add(24, 16);
    a.adc(25, 17);
  }
  a.ldi16(20, p.activations);
  a.ldi(16, 0);
  a.sts(done, 16);
  a.sts(static_cast<uint16_t>(done + 1), 16);

  a.label("period");
  // deadline += period
  a.ldi16(16, p.period_ticks);
  a.add(24, 16);
  a.adc(25, 17);

  // If the deadline is still in the future, sleep until it; otherwise we
  // overran the period: start the next activation immediately and
  // resynchronize the deadline to now (otherwise the 16-bit deadline would
  // lag ever further behind and eventually wrap into the future).
  a.lds(16, kTcnt3L);
  a.lds(17, kTcnt3H);
  a.mov(18, 24);
  a.mov(19, 25);
  a.sub(18, 16);  // delta = deadline - now (mod 2^16)
  a.sbc(19, 17);
  a.mov(14, 18);
  a.or_(14, 19);
  a.breq("overrun");     // delta == 0
  a.sbrc(19, 7);         // delta < 0 (bit 15 set): skip the sleep
  a.rjmp("overrun");
  a.sts(kSleepTargetL, 24);
  a.sts(kSleepTargetH, 25);  // arms the timed sleep
  a.sleep();
  a.rjmp("run_task");
  a.label("overrun");
  a.mov(24, 16);  // deadline = now
  a.mov(25, 17);
  a.label("run_task");

  // The computational task: a calibrated busy loop (2 instructions per
  // iteration; SBIW r26 costs 2 cycles, BRNE 2 when taken).
  if (iters > 0) {
    a.ldi16(26, iters);
    a.label("busy");
    a.sbiw(26, 1);
    a.brne("busy");
  }

  // done++ (heap bookkeeping, as a real data-processing task would do).
  a.lds(16, done);
  a.lds(17, static_cast<uint16_t>(done + 1));
  a.subi(16, 0xFF);  // +1
  a.sbci(17, 0xFF);
  a.sts(done, 16);
  a.sts(static_cast<uint16_t>(done + 1), 17);

  a.dec16(20);
  a.brne("period");

  a.sts(kHostOut, 16);  // low byte of completed count
  a.sts(kHostOut, 17);
  a.halt(0);
  return a.finish();
}

}  // namespace sensmart::apps
