#include "apps/memalloc.hpp"

#include <stdexcept>

namespace sensmart::apps {

PoolAllocator emit_pool_allocator(assembler::Assembler& a,
                                  const std::string& prefix,
                                  uint8_t n_blocks, uint8_t block_size) {
  if (block_size < 2 || block_size > 63)
    throw std::invalid_argument("pool block size must be in [2, 63]");
  if (n_blocks == 0) throw std::invalid_argument("empty pool");

  PoolAllocator p;
  p.block_size = block_size;
  p.n_blocks = n_blocks;
  p.pool_addr =
      a.var(prefix + "_pool", static_cast<uint16_t>(n_blocks * block_size));
  p.head_addr = a.var(prefix + "_head", 2);

  // <prefix>_init: thread the free list through the blocks.
  a.label(prefix + "_init");
  a.ldi16(26, p.pool_addr);
  a.sts(p.head_addr, 26);
  a.sts(static_cast<uint16_t>(p.head_addr + 1), 27);
  if (n_blocks > 1) {
    a.ldi(16, static_cast<uint8_t>(n_blocks - 1));
    a.label(prefix + "_init_loop");
    a.movw(30, 26);            // Z = current block
    a.adiw(26, block_size);    // X = next block
    a.std_z(0, 26);            // current->next = X
    a.std_z(1, 27);
    a.dec(16);
    a.brne(prefix + "_init_loop");
  }
  a.movw(30, 26);  // last block: ->next = null
  a.ldi(16, 0);
  a.std_z(0, 16);
  a.std_z(1, 16);
  a.ret();

  // <prefix>_alloc: X := head; head = head->next (X = 0 when exhausted).
  a.label(prefix + "_alloc");
  a.lds(26, p.head_addr);
  a.lds(27, static_cast<uint16_t>(p.head_addr + 1));
  a.mov(16, 26);
  a.or_(16, 27);
  a.breq(prefix + "_alloc_done");
  a.movw(30, 26);
  a.ldd_z(16, 0);
  a.ldd_z(17, 1);
  a.sts(p.head_addr, 16);
  a.sts(static_cast<uint16_t>(p.head_addr + 1), 17);
  a.label(prefix + "_alloc_done");
  a.ret();

  // <prefix>_free: X->next = head; head = X.
  a.label(prefix + "_free");
  a.lds(16, p.head_addr);
  a.lds(17, static_cast<uint16_t>(p.head_addr + 1));
  a.movw(30, 26);
  a.std_z(0, 16);
  a.std_z(1, 17);
  a.sts(p.head_addr, 26);
  a.sts(static_cast<uint16_t>(p.head_addr + 1), 27);
  a.ret();

  return p;
}

}  // namespace sensmart::apps
