// The stack-versatility workload of §V-D: a sense-and-send style mix of
// one data-feeding task and several processing (binary-tree search) tasks.
//
// The paper's feeder stores incoming data into binary trees which search
// tasks then traverse recursively (12 levels of recursion on average, some
// reaching 15; each level adds 15 bytes of stack). SenSmart isolates task
// memory, so in this reproduction each search task owns its trees in its
// own heap region and builds them from a seeded in-program PRNG before
// searching — preserving exactly the properties the experiment measures:
// heap pressure growing with tree size, highly dynamic recursion-driven
// stacks, and stack demand exceeding the average allocation.
#pragma once

#include "assembler/assembler.hpp"

namespace sensmart::apps {

struct TreeSearchParams {
  uint16_t nodes_per_tree = 24;  // Fig. 7 x-axis
  uint8_t trees = 2;             // trees owned (6 total in the paper's mix)
  uint16_t searches = 64;        // recursive searches to perform
  uint16_t seed = 0xACE1;        // PRNG seed (vary per task)
};

// A processing task: builds `trees` binary search trees of
// `nodes_per_tree` nodes each in its heap, then runs `searches` recursive
// lookups of random keys. Each recursion level pushes a 13-byte register
// frame plus a 2-byte return address (15 bytes, §V-D). Emits the hit count
// and maximum recursion depth, then exits.
assembler::Image tree_search_program(const TreeSearchParams& p);

// The data-feeding task: periodically generates "sensor" data and appends
// it to small heap buffers (the sense half of sense-and-send); shallow
// stack, periodic blocking sleeps.
assembler::Image data_feed_program(uint16_t rounds = 64,
                                   uint16_t period_ticks = 96);

}  // namespace sensmart::apps
