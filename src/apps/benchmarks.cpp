#include "apps/benchmarks.hpp"

#include <array>
#include <stdexcept>

#include "emu/io_map.hpp"

namespace sensmart::apps {

using assembler::Assembler;
using assembler::Image;
using namespace emu;

// ---------------------------------------------------------------------------
// am: assemble packets in a heap buffer, checksum them, transmit over the
// radio and wait for send-completion (active-message style send path).
// ---------------------------------------------------------------------------
Image am_program(uint16_t packets) {
  Assembler a("am");
  const uint16_t pkt = a.var("pkt", 24);
  constexpr uint8_t kPayload = 20;

  a.ldi16(20, packets);  // r20:r21 = packet counter
  a.ldi(16, 1);          // payload generator state lives in r15
  a.mov(15, 16);

  a.label("next_packet");
  // Fill the payload and compute an 8-bit checksum (r18).
  a.ldi16(26, pkt);  // X = &pkt
  a.ldi(18, 0);
  a.ldi(17, kPayload);
  a.label("fill");
  a.mov(16, 15);
  a.st_x_inc(16);  // heap store, X post-increment
  a.add(18, 16);
  a.ldi(16, 7);
  a.add(15, 16);  // generator: s += 7
  a.dec(17);
  a.brne("fill");
  a.st_x(18);  // trailing checksum byte

  // Stream the buffer to the radio.
  a.ldi16(26, pkt);
  a.ldi(17, kPayload + 1);
  a.label("tx_byte");
  a.ld_x_inc(16);
  a.sts(kRadioData, 16);
  a.dec(17);
  a.brne("tx_byte");
  a.ldi(16, 1);
  a.sts(kRadioCtrl, 16);  // start transmission

  // Wait for send completion (busy bit clears).
  a.label("tx_wait");
  a.lds(16, kRadioStatus);
  a.andi(16, 1);
  a.brne("tx_wait");

  a.dec16(20);
  a.brne("next_packet");

  a.sts(kHostOut, 18);  // last checksum
  a.halt(0);
  return a.finish();
}

// ---------------------------------------------------------------------------
// amplitude: generate sample windows with an in-register LFSR, track
// min/max per window in a heap record via a subroutine, and report the last
// amplitude (max - min). Exercises call/ret, push/pop and grouped accesses.
// ---------------------------------------------------------------------------
Image amplitude_program(uint16_t rounds) {
  Assembler a("amplitude");
  const uint16_t rec = a.var("rec", 4);  // [0]=min [1]=max [2]=amp

  a.ldi16(20, rounds);
  a.ldi(16, 0xEF);  // r8:r9 LFSR state (LDI needs r16+, then move down)
  a.mov(8, 16);
  a.ldi(16, 0xBE);
  a.mov(9, 16);
  a.rjmp("round");

  // lfsr_step: advances r8:r9, returns low byte in r16.
  a.label("lfsr_step");
  a.push(17);
  a.mov(16, 8);
  a.mov(17, 9);
  a.lsr(17);
  a.ror(16);  // r17:r16 = s >> 1, carry = old bit 0
  a.brcc("no_tap");
  a.ldi(18, 0xB4);
  a.eor(17, 18);  // Galois taps in the high byte (r18 is scratch here)
  a.label("no_tap");
  a.mov(8, 16);
  a.mov(9, 17);
  a.pop(17);
  a.ret();

  a.label("round");
  // Reset window record: min = 0xFF, max = 0.
  a.ldi16(28, rec);  // Y = &rec
  a.ldi(16, 0xFF);
  a.std_y(0, 16);
  a.ldi(16, 0);
  a.std_y(1, 16);

  a.ldi(19, 16);  // 16 samples per window
  a.label("sample");
  // Inlined LFSR step (hot path; the subroutine form is kept for the
  // once-per-window bookkeeping below).
  a.mov(16, 8);
  a.mov(17, 9);
  a.lsr(17);
  a.ror(16);
  a.brcc("inl_no_tap");
  a.ldi(18, 0xB4);
  a.eor(17, 18);
  a.label("inl_no_tap");
  a.mov(8, 16);
  a.mov(9, 17);
  a.ldi16(28, rec);
  a.ldd_y(17, 0);  // min \ grouped access: one translation
  a.ldd_y(18, 1);  // max /
  a.cp(16, 17);
  a.brcc("not_min");
  a.std_y(0, 16);
  a.label("not_min");
  a.cp(18, 16);
  a.brcc("not_max");
  a.std_y(1, 16);
  a.label("not_max");
  a.dec(19);
  a.brne("sample");

  // amp = max - min.
  a.ldd_y(17, 0);
  a.ldd_y(18, 1);
  a.sub(18, 17);
  a.std_y(2, 18);
  a.rcall("lfsr_step");  // decorrelate windows (keeps a call per window)

  a.dec16(20);
  a.brne("round");

  a.lds(16, static_cast<uint16_t>(rec + 2));
  a.sts(kHostOut, 16);
  a.halt(0);
  return a.finish();
}

// ---------------------------------------------------------------------------
// crc: CRC16-CCITT over a 32-byte heap buffer, computed twice per pass —
// bit-serial and nibble-table-driven (flash table read with LPM) — and
// cross-checked. CPU-bound with deep inner loops, calls and flash data.
// ---------------------------------------------------------------------------
namespace {
// CCITT nibble table: crc16 of (nibble << 12) with polynomial 0x1021.
std::array<uint16_t, 16> ccitt_nibble_table() {
  std::array<uint16_t, 16> t{};
  for (uint16_t n = 0; n < 16; ++n) {
    uint16_t crc = static_cast<uint16_t>(n << 12);
    for (int b = 0; b < 4; ++b)
      crc = static_cast<uint16_t>((crc & 0x8000) ? (crc << 1) ^ 0x1021
                                                 : (crc << 1));
    t[n] = crc;
  }
  return t;
}
}  // namespace

Image crc_program(uint16_t rounds) {
  Assembler a("crc");
  const uint16_t buf = a.var("buf", 32);
  constexpr uint8_t kLen = 32;

  a.rjmp("start");
  const auto table = ccitt_nibble_table();
  a.dw("crc_table", table);

  // crc_byte: r16 = data byte, r24:r25 = crc (lo:hi), updated in place.
  a.label("crc_byte");
  a.push(17);
  a.push(18);
  a.eor(25, 16);  // crc ^= byte << 8
  a.ldi(18, 8);
  a.label("bitloop");
  a.add(24, 24);  // crc <<= 1, carry = old bit 15
  a.adc(25, 25);
  a.brcc("no_xor");
  a.ldi(17, 0x21);
  a.eor(24, 17);
  a.ldi(17, 0x10);
  a.eor(25, 17);
  a.label("no_xor");
  a.dec(18);
  a.brne("bitloop");
  a.pop(18);
  a.pop(17);
  a.ret();

  // crc_nib: fold one nibble (r17, low 4 bits) into the table-driven crc
  // in r22:r23 using the flash nibble table. r2 must hold zero.
  a.label("crc_nib");
  a.push(18);
  a.push(19);
  a.mov(18, 23);
  a.swap(18);
  a.andi(18, 0x0F);
  a.eor(18, 17);
  a.andi(18, 0x0F);  // idx = (crc >> 12) ^ nibble
  a.swap(23);        // crc <<= 4
  a.andi(23, 0xF0);
  a.mov(19, 22);
  a.swap(19);
  a.andi(19, 0x0F);
  a.or_(23, 19);
  a.swap(22);
  a.andi(22, 0xF0);
  a.ldi_label(30, "crc_table");  // Z = byte address of table[idx]
  a.add(30, 18);
  a.adc(31, 2);
  a.add(30, 30);
  a.adc(31, 31);
  a.lpm_inc(19);
  a.eor(22, 19);
  a.lpm(19);
  a.eor(23, 19);
  a.pop(19);
  a.pop(18);
  a.ret();

  // crc_byte_tbl: fold byte r16 into r22:r23 via two nibble steps.
  a.label("crc_byte_tbl");
  a.push(17);
  a.mov(17, 16);
  a.swap(17);
  a.andi(17, 0x0F);
  a.rcall("crc_nib");
  a.mov(17, 16);
  a.andi(17, 0x0F);
  a.rcall("crc_nib");
  a.pop(17);
  a.ret();

  a.label("start");
  a.ldi(16, 0);
  a.mov(2, 16);  // r2 = zero register
  a.mov(6, 16);  // r6 = cross-check error count
  // Fill the buffer with a deterministic pattern.
  a.ldi16(26, buf);
  a.ldi(17, kLen);
  a.ldi(16, 0x55);
  a.label("fill");
  a.st_x_inc(16);
  a.subi(16, 0xD3);  // s -= 0xD3 (mod 256)
  a.dec(17);
  a.brne("fill");

  // One verification pass: the table-driven implementation (flash lookups
  // via LPM) must agree with the bit-serial one.
  a.ldi16(24, 0xFFFF);
  a.ldi16(22, 0xFFFF);
  a.ldi16(26, buf);
  a.ldi(19, kLen);
  a.label("vbyteloop");
  a.ld_x_inc(16);
  a.rcall("crc_byte");
  a.rcall("crc_byte_tbl");
  a.dec(19);
  a.brne("vbyteloop");
  a.cp(24, 22);
  a.cpc(25, 23);
  a.breq("crc_ok");
  a.inc(6);
  a.label("crc_ok");

  // Steady-state passes: bit-serial only (the hot path of a real sender).
  a.ldi16(20, rounds);
  a.label("pass");
  a.ldi16(24, 0xFFFF);
  a.ldi16(26, buf);
  a.ldi(19, kLen);
  a.label("byteloop");
  a.ld_x_inc(16);
  a.rcall("crc_byte");
  a.dec(19);
  a.brne("byteloop");
  a.dec16(20);
  a.brne("pass");

  a.sts(kHostOut, 24);
  a.sts(kHostOut, 25);
  a.sts(kHostOut, 6);  // 0 if every pass agreed
  a.halt(0);
  return a.finish();
}

// ---------------------------------------------------------------------------
// eventchain: event-driven dispatch through a flash function-pointer table.
// Each handler does a little work and names the next event; the main loop
// looks the handler up with LPM and invokes it with ICALL (run-time program
// address translation on both).
// ---------------------------------------------------------------------------
Image eventchain_program(uint16_t rounds) {
  Assembler a("eventchain");
  a.var("state", 2);

  a.rjmp("start");

  // Handlers: each does a bounded amount of event-processing work
  // (register arithmetic, as a real handler body would), accumulates into
  // r6, and names the next event in r24.
  auto handler_work = [&a](const char* loop_label) {
    a.ldi(18, 48);
    a.label(loop_label);
    a.add(6, 18);
    a.swap(6);
    a.dec(18);
    a.brne(loop_label);
  };
  a.label("h0");
  handler_work("h0w");
  a.inc(6);
  a.ldi(24, 1);
  a.ret();
  a.label("h1");
  handler_work("h1w");
  a.add(6, 24);
  a.ldi(24, 2);
  a.ret();
  a.label("h2");
  a.push(16);
  handler_work("h2w");
  a.ldi(16, 3);
  a.eor(6, 16);
  a.pop(16);
  a.ldi(24, 3);
  a.ret();
  a.label("h3");
  handler_work("h3w");
  a.dec(6);
  a.ldi(24, 0);
  a.ret();

  const std::array<std::string, 4> handlers = {"h0", "h1", "h2", "h3"};
  a.dw_labels("table", handlers);

  a.label("start");
  a.ldi16(20, rounds);
  a.ldi(24, 0);  // event id
  a.label("loop");
  // Z = byte address of table[id]; fetch the handler's word address.
  a.ldi_label(30, "table");
  a.ldi(16, 0);
  a.add(30, 24);
  a.adc(31, 16);
  a.add(30, 30);  // word -> byte address
  a.adc(31, 31);
  a.lpm_inc(16);
  a.lpm(17);
  a.movw(30, 16);
  a.icall();
  a.dec16(20);
  a.brne("loop");

  a.sts(kHostOut, 6);
  a.halt(0);
  return a.finish();
}

// ---------------------------------------------------------------------------
// lfsr: pure CPU-bound 16-bit LFSR iteration.
// ---------------------------------------------------------------------------
Image lfsr_program(uint16_t iters) {
  Assembler a("lfsr");
  a.ldi16(24, 0xACE1);  // state
  a.ldi16(20, iters);
  a.label("loop");
  a.mov(16, 24);
  a.mov(17, 24);
  a.lsr(17);
  a.lsr(17);
  a.eor(16, 17);  // s ^ s>>2
  a.lsr(17);
  a.eor(16, 17);  // ^ s>>3
  a.lsr(17);
  a.lsr(17);
  a.eor(16, 17);  // ^ s>>5
  a.andi(16, 1);  // feedback bit
  a.lsr(25);
  a.ror(24);  // s >>= 1
  a.cpi(16, 0);
  a.breq("no_set");
  a.ori(25, 0x80);  // s |= bit << 15
  a.label("no_set");
  a.dec16(20);
  a.brne("loop");
  a.sts(kHostOut, 24);
  a.sts(kHostOut, 25);
  a.halt(0);
  return a.finish();
}

// ---------------------------------------------------------------------------
// readadc: start conversions, poll for completion, accumulate the samples.
// ---------------------------------------------------------------------------
Image readadc_program(uint16_t samples) {
  Assembler a("readadc");
  const uint16_t sum = a.var("sum", 3);

  a.ldi16(20, samples);
  a.ldi(16, 0);  // r12:r13:r14 = 24-bit sum
  a.mov(12, 16);
  a.mov(13, 16);
  a.mov(14, 16);

  a.label("next");
  a.ldi(16, 0x80);
  a.sts(kAdcsra, 16);  // start conversion
  a.label("poll");
  a.lds(16, kAdcsra);
  a.andi(16, 0x10);  // done bit
  a.breq("poll");
  a.lds(16, kAdcL);
  a.lds(17, kAdcH);
  a.add(12, 16);
  a.adc(13, 17);
  a.ldi(16, 0);
  a.adc(14, 16);
  a.dec16(20);
  a.brne("next");

  a.sts(sum, 12);
  a.sts(static_cast<uint16_t>(sum + 1), 13);
  a.sts(static_cast<uint16_t>(sum + 2), 14);
  a.sts(kHostOut, 12);
  a.sts(kHostOut, 13);
  a.sts(kHostOut, 14);
  a.halt(0);
  return a.finish();
}

// ---------------------------------------------------------------------------
// timer: program Timer0, poll the overflow flag, count rounds.
// ---------------------------------------------------------------------------
Image timer_program(uint16_t rounds) {
  Assembler a("timer");
  a.ldi16(20, rounds);
  a.ldi(18, 0);  // completed rounds (mod 256)

  a.ldi(16, 2);  // prescaler /8: one overflow every 2048 cycles
  a.sts(kTccr0, 16);

  a.label("round");
  a.ldi(16, 0);
  a.sts(kTcnt0, 16);  // restart the counter
  a.ldi(16, 1);
  a.sts(kTifr, 16);  // clear the overflow flag (write-1-to-clear)
  a.label("wait");
  a.lds(16, kTifr);
  a.andi(16, 1);
  a.breq("wait");
  a.inc(18);
  a.dec16(20);
  a.brne("round");

  a.sts(kHostOut, 18);
  a.halt(0);
  return a.finish();
}

const std::vector<std::string>& benchmark_names() {
  static const std::vector<std::string> names = {
      "am", "amplitude", "crc", "eventchain", "lfsr", "readadc", "timer"};
  return names;
}

Image build_benchmark(const std::string& name) {
  if (name == "am") return am_program();
  if (name == "amplitude") return amplitude_program();
  if (name == "crc") return crc_program();
  if (name == "eventchain") return eventchain_program();
  if (name == "lfsr") return lfsr_program();
  if (name == "readadc") return readadc_program();
  if (name == "timer") return timer_program();
  throw std::invalid_argument("unknown benchmark: " + name);
}

}  // namespace sensmart::apps
