// The dynamic-memory allocation module of §III-A: SenSmart assumes
// applications do not use dynamic allocation, but the paper notes that
// "it is not difficult to add a specific allocation module, which claims
// a chunk of memory and re-allocates parts of it upon requests, to
// emulate the dynamic memory function. Some versions of TinyOS already
// contain such a module." This is that module: a fixed-block pool
// allocator emitted as an assembler library, fully compatible with the
// rewriter (it only uses heap addresses, so logical addressing and stack
// relocation apply transparently).
#pragma once

#include <string>

#include "assembler/assembler.hpp"

namespace sensmart::apps {

struct PoolAllocator {
  uint16_t pool_addr = 0;       // logical address of the managed chunk
  uint16_t head_addr = 0;       // logical address of the free-list head
  uint8_t block_size = 0;       // bytes per block (>= 2, <= 63)
  uint8_t n_blocks = 0;
};

// Emit the allocator's data (a pool of n_blocks * block_size bytes plus a
// 2-byte free-list head) and three routines into the program:
//   <prefix>_init  — build the free list; call once before use.
//   <prefix>_alloc — X (r26:r27) := a free block, or 0 if exhausted.
//   <prefix>_free  — return block X to the pool.
// All routines clobber r16, r17 and Z and must be invoked with RCALL/CALL.
// Free blocks store the next-free pointer in their first two bytes.
PoolAllocator emit_pool_allocator(assembler::Assembler& a,
                                  const std::string& prefix,
                                  uint8_t n_blocks, uint8_t block_size);

}  // namespace sensmart::apps
