// SenSmart reproduction — public API umbrella header.
//
// Typical use (see examples/quickstart.cpp):
//
//   sensmart::assembler::Assembler a("app");
//   ... emit the program ...
//   sensmart::rw::Linker linker;
//   linker.add(a.finish());             // base-station rewriting
//   auto sys = linker.link();           // trampolines + shift tables
//   sensmart::emu::Machine machine;     // the MICA2-class mote
//   sensmart::kern::Kernel kernel(machine, sys);
//   kernel.admit_all();
//   kernel.start();
//   kernel.run(budget);
#pragma once

#include "assembler/assembler.hpp"
#include "baselines/features.hpp"
#include "baselines/liteos_model.hpp"
#include "baselines/mantis_model.hpp"
#include "baselines/native_runner.hpp"
#include "emu/machine.hpp"
#include "kernel/kernel.hpp"
#include "rewriter/linker.hpp"
#include "rewriter/tkernel.hpp"
#include "sim/harness.hpp"
#include "vm/vm.hpp"
