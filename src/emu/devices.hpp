// Peripheral models: Timer0 (8-bit, app-visible), Timer3 (16-bit global
// clock, kernel-reserved), an ADC with fixed conversion latency, a
// byte-oriented radio with CC1000-class transmit timing, LEDs, and the host
// simulation ports (log byte stream, program exit, deterministic random,
// timed sleep).
//
// Devices are driven lazily from the machine cycle counter: counters are
// computed on read, and a small event model answers "when does the next
// interesting thing happen" so SLEEP can fast-forward the clock.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "emu/io_map.hpp"
#include "emu/memory.hpp"

namespace sensmart::emu {

// Lifecycle of one bootable image slot (DESIGN.md §12). A slot never holds
// a partially written image: Staged/Confirmed slots always contain the full
// byte-exact image their crc describes.
enum class SlotState : uint8_t {
  Empty = 0,      // no image
  Staged = 1,     // full image present, not yet proven in service
  Confirmed = 2,  // survived a probation window (or factory-installed)
  Rejected = 3,   // trial tripped the health gate; kept only as evidence
};

// One of the two A/B bootable images.
struct ImageSlot {
  SlotState state = SlotState::Empty;
  uint8_t version = 0;
  uint32_t crc = 0;  // CRC-32 of bytes
  std::vector<uint8_t> image;
};

// What the bootloader decided at power-up (consumed by the simulator for
// trace events).
enum class BootOutcome : uint8_t {
  Normal = 0,        // booted the active slot, nothing special
  TrialBoot = 1,     // the one sanctioned boot into a freshly staged trial
  TrialRollback = 2, // rebooted mid-probation without confirming: fell back
};

// Modeled non-volatile external flash holding over-the-air dissemination
// progress: the announced image geometry, the chunk bitmap, the partially
// reassembled image, and whether the whole-image CRC has verified. It
// survives DeviceHub::reboot(), so a crashed node resumes its transfer
// from this record instead of re-requesting every chunk (DESIGN.md §8).
//
// It also carries the dual A/B bootable slots and the trial state machine
// for staged rollout (DESIGN.md §12): the transfer area above reassembles
// the candidate image; activation copies it into the inactive slot and
// boots it as a *trial*. Exactly one boot into a trial is sanctioned
// (trial_boot_pending); any further power-up before confirm_trial() rolls
// back to the other slot automatically, so a crashing trial image can
// never become the only bootable state.
struct ImageStore {
  bool has_summary = false;   // geometry fields below are valid
  uint8_t image_version = 0;
  uint16_t total_chunks = 0;
  uint8_t chunk_payload = 0;  // bytes per full chunk
  uint32_t image_bytes = 0;
  uint32_t image_crc = 0;     // announced whole-image CRC-32
  // Authenticated dissemination (DESIGN.md §11): the announced keyed image
  // MAC, persisted with the geometry so a rebooted node still verifies
  // authenticity before activating a resumed transfer.
  bool has_mac = false;
  uint64_t image_mac = 0;
  bool verified = false;      // image[] complete and CRC-checked
  uint16_t chunks_have = 0;
  std::vector<uint8_t> have;  // per-chunk received flag (bitmap)
  std::vector<uint8_t> image;
  uint64_t writes = 0;        // committed chunk writes (flash-wear proxy)

  // A/B slots + trial state machine (DESIGN.md §12).
  ImageSlot slots[2];
  uint8_t active_slot = 0;          // which slot the bootloader runs
  bool trial_active = false;        // active slot is an unconfirmed trial
  bool trial_boot_pending = false;  // the single sanctioned trial boot
  // A boot-time auto-rollback happened and has not yet been acknowledged by
  // the base; persisted so the report survives further power cycles.
  bool rollback_report_pending = false;

  void erase() { *this = ImageStore{}; }

  // Copy the verified transfer image into the inactive slot (Staged).
  // Returns the slot index, or -1 if the transfer area is not verified.
  int stage_inactive(uint8_t version);
  // Point the bootloader at `slot` as a trial: the next power-up (and only
  // that one) boots it; any later unconfirmed power-up rolls back.
  void activate_trial(uint8_t slot);
  // Probation passed: promote the trial slot to Confirmed.
  void confirm_trial();
  // Abandon the trial: mark its slot Rejected and fall back to the other
  // slot. Safe to call whether or not the trial ever booted.
  void rollback_trial();
  // Fleet-wide halt: if the active slot is Confirmed with crc `crc`, demote
  // it and fall back to the other slot (which must hold a bootable image).
  // Returns true if a revert happened.
  bool revert_active(uint32_t crc);
  // Bootloader decision at power-up; mutates the trial flags.
  BootOutcome on_power_up();
};

// Versioned on-flash codec for ImageStore (DESIGN.md §12). Format 2 is the
// A/B layout; anything else — including the implicit pre-A/B single-slot
// format 1 — is rejected by deserialize_image_store, and the caller
// reformats the page instead of misparsing it.
inline constexpr uint8_t kImageStoreFormat = 2;
// Hard ceiling applied while decoding untrusted flash bytes, matching the
// protocol-level image-size ceiling (32 MiB).
inline constexpr uint32_t kMaxStoreImageBytes = 32u << 20;

std::vector<uint8_t> serialize_image_store(const ImageStore& st);
// Strict decode: format byte, bounds, cross-field consistency and a
// trailing page CRC-32 all gate acceptance. On any failure `out` is left
// untouched and false is returned.
bool deserialize_image_store(std::span<const uint8_t> page, ImageStore& out);

// Volatile health counters mirrored from the kernel's recovery machinery
// (supervision restarts, quarantines, watchdog kills — DESIGN.md §8).
// These feed the rollout health gate (§12): they are reset by reboot(), so
// a report covers exactly the current boot.
struct HealthCounters {
  uint32_t restarts = 0;
  uint32_t quarantines = 0;
  uint32_t watchdog_fires = 0;
};

class DeviceHub {
 public:
  // Radio timing: ~3072 cycles per byte on air (19.2 kbit/s at 7.37 MHz).
  static constexpr uint32_t kCyclesPerRadioByte = 3072;
  // RX buffer depth of the modeled transceiver. Bytes arriving while the
  // buffer is full are lost (counted in rx_overruns()) — a task that polls
  // too slowly drops trailing bytes, exactly like the real part.
  static constexpr size_t kRxBufferCap = 64;

  explicit DeviceHub(DataMemory& mem) : mem_(mem) {}

  // I/O window interception (wired into DataMemory by Machine).
  void io_access(uint16_t addr, uint8_t& value, bool write);

  // Reads that mutate device state (and can therefore shift interrupt
  // timing): popping a received radio byte, advancing the host LFSR, and
  // the Timer3 16-bit latch protocol. Everything else is a pure
  // observation and need not invalidate the machine's event horizon.
  static constexpr bool read_has_side_effects(uint16_t addr) {
    return addr == kRadioRxData || addr == kHostRandL || addr == kTcnt3L;
  }

  // Advance device state to `now` (cycle count) and latch interrupt flags.
  void sync(uint64_t now);

  // Pending-interrupt query: highest-priority enabled+flagged line, if any.
  std::optional<Irq> pending_irq() const;
  // Acknowledge (clear the flag of) a dispatched line.
  void acknowledge(Irq irq);

  // Next cycle at which a device event (interrupt flag or sleep target)
  // will occur, for SLEEP fast-forwarding. nullopt = nothing scheduled.
  std::optional<uint64_t> next_event_after(uint64_t now) const;

  // Timed sleep: armed by writing kSleepTargetH; consumed by SLEEP.
  bool sleep_armed() const { return sleep_armed_; }
  void consume_sleep() { sleep_armed_ = false; }
  uint64_t sleep_wake_cycle() const { return sleep_wake_cycle_; }

  // Host-visible outputs.
  const std::vector<uint8_t>& host_out() const { return host_out_; }
  bool halted() const { return halted_; }
  void clear_halt() { halted_ = false; }
  uint8_t halt_code() const { return halt_code_; }
  const std::vector<std::vector<uint8_t>>& radio_packets() const {
    return radio_sent_;
  }

  // TX hand-off to a transmission medium (the multi-node simulator): called
  // once per completed packet with the sent bytes and the cycle at which
  // the last byte left the air. Completed packets are still recorded in
  // radio_packets() regardless. Per-packet, not per-byte, so the
  // std::function indirection is off the emulation hot path.
  using TxSink = std::function<void(std::span<const uint8_t>, uint64_t)>;
  void set_tx_sink(TxSink sink) { tx_sink_ = std::move(sink); }

  // Schedule an incoming packet over the air: byte i becomes readable at
  // kRadioRxData after (i+1) on-air byte times from the delivery start.
  // The receive path models a serial medium: while an earlier delivery is
  // still in the air, a newly scheduled packet queues behind it instead of
  // interleaving with (or shadowing) the in-flight bytes — its delivery
  // start is pushed to the end of the busy window. Returns the cycle the
  // delivery actually starts.
  uint64_t schedule_rx(std::span<const uint8_t> bytes, uint64_t at_cycle);
  // Back-compat aliases (delivery at the current device time).
  void inject_rx(std::span<const uint8_t> bytes, uint64_t at_cycle) {
    schedule_rx(bytes, at_cycle);
  }
  void inject_rx(std::span<const uint8_t> bytes) { schedule_rx(bytes, now_); }
  size_t rx_buffered() const { return rx_avail_.size(); }
  // Bytes lost to a full RX buffer / total bytes handed to the buffer.
  uint64_t rx_overruns() const { return rx_overruns_; }
  uint64_t rx_delivered() const { return rx_delivered_; }
  // Drop any buffered and in-flight RX bytes (node reboot into a freshly
  // installed image; the half-received tail of the old session must not be
  // readable by the new program).
  void flush_rx() {
    rx_pending_.clear();
    rx_avail_.clear();
    rx_busy_until_ = 0;
  }

  uint16_t timer3_ticks(uint64_t now) const {
    return static_cast<uint16_t>(now / kTimer3Prescale);
  }

  void set_adc_seed(uint16_t seed) { lfsr_ = seed ? seed : 0xACE1; }

  // Persistent (reboot-surviving) dissemination store.
  ImageStore& image_store() { return image_store_; }
  const ImageStore& image_store() const { return image_store_; }

  // Kernel health export (DESIGN.md §12): the supervisor mirrors every
  // restart/quarantine/watchdog event here so the rollout health gate reads
  // genuine kernel recovery stats. Volatile — cleared by reboot().
  void health_add(uint32_t restarts, uint32_t quarantines,
                  uint32_t watchdog_fires) {
    health_.restarts += restarts;
    health_.quarantines += quarantines;
    health_.watchdog_fires += watchdog_fires;
  }
  const HealthCounters& health() const { return health_; }

  // Replace the flash page with raw bytes (test / fault-injection surface).
  // A page that fails the strict format-2 decode is rejected and the store
  // reformatted to factory-empty; the sticky flag below reports it.
  bool load_flash_page(std::span<const uint8_t> page);
  // True once if the last reboot()/load_flash_page() had to reformat a
  // corrupt or foreign-format page (consumed by the caller).
  bool take_store_reformatted() {
    const bool r = store_reformatted_;
    store_reformatted_ = false;
    return r;
  }
  // Bootloader decision made during the last reboot().
  BootOutcome last_boot() const { return last_boot_; }

  // Node power-cycle: clear every volatile device state — staged/in-flight
  // TX, RX buffers and in-flight deliveries, timers, ADC conversion, sleep
  // latches — while preserving image_store() and the observer-side logs
  // (host_out(), radio_packets()). The cycle clock is global simulation
  // time and is NOT reset: a reboot costs time, not history. Deliveries
  // that land during the outage must be flushed again at power-up
  // (flush_rx()) — the radio was off.
  //
  // The image store survives via the on-flash codec: it is serialized and
  // strictly re-decoded on every power cycle (modeling the real flash
  // round-trip), and the bootloader's trial decision (on_power_up) is
  // applied — see last_boot().
  void reboot();

 private:
  uint16_t lfsr_next();
  uint32_t timer0_prescale() const;

  DataMemory& mem_;
  uint64_t now_ = 0;

  // Timer0: counts cycles/prescale from t0_epoch_, 8-bit with overflow and
  // compare flags in TIFR.
  uint64_t t0_epoch_ = 0;
  uint8_t t0_start_ = 0;

  // ADC: a conversion started at adc_start_ completes kAdcLatency later.
  static constexpr uint32_t kAdcLatency = 200;
  std::optional<uint64_t> adc_done_at_;

  // Radio transmit path: bytes written to kRadioData stage in radio_buf_;
  // a kRadioCtrl start moves the staged packet in flight (radio_done_at_)
  // or, while a transmission is already in the air, onto tx_queue_ — the
  // queued packet starts back-to-back when the current one completes.
  std::vector<uint8_t> radio_buf_;
  std::vector<uint8_t> tx_inflight_;
  std::deque<std::vector<uint8_t>> tx_queue_;
  std::optional<uint64_t> radio_done_at_;
  bool radio_irq_flag_ = false;
  std::vector<std::vector<uint8_t>> radio_sent_;
  TxSink tx_sink_;
  // Receive path: bytes in flight (arrival cycle, value) and arrived bytes.
  std::deque<std::pair<uint64_t, uint8_t>> rx_pending_;
  std::deque<uint8_t> rx_avail_;
  uint64_t rx_busy_until_ = 0;  // serial-medium cursor for schedule_rx
  uint64_t rx_overruns_ = 0;
  uint64_t rx_delivered_ = 0;

  // Host ports.
  std::vector<uint8_t> host_out_;
  bool halted_ = false;
  uint8_t halt_code_ = 0;
  uint16_t lfsr_ = 0xACE1;
  uint8_t sleep_target_l_ = 0;
  bool sleep_armed_ = false;
  uint64_t sleep_wake_cycle_ = 0;

  // Timer3 latch for the 16-bit read protocol (read L latches H).
  uint8_t tcnt3_latched_h_ = 0;

  // Non-volatile image store (survives reboot()).
  ImageStore image_store_;
  bool store_reformatted_ = false;
  BootOutcome last_boot_ = BootOutcome::Normal;

  // Volatile kernel health mirror (cleared by reboot()).
  HealthCounters health_;
};

}  // namespace sensmart::emu
