#include "emu/devices.hpp"

#include <algorithm>

namespace sensmart::emu {

namespace {
// TIFR/TIMSK bit assignment.
constexpr uint8_t kT0OvfBit = 0x01;
constexpr uint8_t kT0CompBit = 0x02;
// ADCSRA bits.
constexpr uint8_t kAdcStartBit = 0x80;
constexpr uint8_t kAdcDoneBit = 0x10;
constexpr uint8_t kAdcIeBit = 0x08;
}  // namespace

uint32_t DeviceHub::timer0_prescale() const {
  switch (mem_.raw(kTccr0) & 0x07) {
    case 1: return 1;
    case 2: return 8;
    case 3: return 64;
    case 4: return 256;
    case 5: return 1024;
    default: return 0;  // stopped
  }
}

uint16_t DeviceHub::lfsr_next() {
  // 16-bit Fibonacci LFSR, taps 16,14,13,11 — deterministic "sensor noise".
  const uint16_t bit =
      ((lfsr_ >> 0) ^ (lfsr_ >> 2) ^ (lfsr_ >> 3) ^ (lfsr_ >> 5)) & 1u;
  lfsr_ = static_cast<uint16_t>((lfsr_ >> 1) | (bit << 15));
  return lfsr_;
}

void DeviceHub::sync(uint64_t now) {
  now_ = now;

  // Timer0 flags. The counter position is normalized into [0,255] after
  // each sync so an overflow or compare match raises its flag exactly once
  // per crossing (not continuously).
  const uint32_t ps = timer0_prescale();
  if (ps != 0) {
    const uint64_t ticks = (now - t0_epoch_) / ps;
    const uint64_t count = t0_start_ + ticks;
    uint8_t tifr = mem_.raw(kTifr);
    if (count > 0xFF) tifr |= kT0OvfBit;
    const uint8_t ocr = mem_.raw(kOcr0);
    if (count >= ocr && t0_start_ < ocr) tifr |= kT0CompBit;
    mem_.set_raw(kTifr, tifr);
    mem_.set_raw(kTcnt0, static_cast<uint8_t>(count & 0xFF));
    // Re-anchor the epoch at the current (sub-tick-aligned) position.
    t0_epoch_ = now - ((now - t0_epoch_) % ps);
    t0_start_ = static_cast<uint8_t>(count & 0xFF);
  }

  // ADC completion.
  if (adc_done_at_ && now >= *adc_done_at_) {
    adc_done_at_.reset();
    const uint16_t sample = lfsr_next() & 0x03FF;  // 10-bit ADC
    mem_.set_raw(kAdcL, static_cast<uint8_t>(sample & 0xFF));
    mem_.set_raw(kAdcH, static_cast<uint8_t>(sample >> 8));
    uint8_t sra = mem_.raw(kAdcsra);
    sra = static_cast<uint8_t>((sra & ~kAdcStartBit) | kAdcDoneBit);
    mem_.set_raw(kAdcsra, sra);
  }

  // Radio receive: move bytes whose on-air time has elapsed into the
  // readable buffer. Arrivals beyond the buffer depth are lost (RX
  // overrun), like on the real transceiver when the task polls too slowly.
  while (!rx_pending_.empty() && rx_pending_.front().first <= now) {
    if (rx_avail_.size() < kRxBufferCap) {
      rx_avail_.push_back(rx_pending_.front().second);
      ++rx_delivered_;
    } else {
      ++rx_overruns_;
    }
    rx_pending_.pop_front();
    radio_irq_flag_ = true;
  }

  // Radio transmit completion(s): hand the finished packet over (record +
  // medium sink) and start the next queued send back-to-back — its bytes
  // go on air at kCyclesPerRadioByte spacing from the completion cycle.
  while (radio_done_at_ && now >= *radio_done_at_) {
    const uint64_t done = *radio_done_at_;
    radio_done_at_.reset();
    radio_sent_.push_back(std::move(tx_inflight_));
    tx_inflight_.clear();
    radio_irq_flag_ = true;
    if (tx_sink_) tx_sink_(radio_sent_.back(), done);
    if (!tx_queue_.empty()) {
      tx_inflight_ = std::move(tx_queue_.front());
      tx_queue_.pop_front();
      radio_done_at_ = done + uint64_t(kCyclesPerRadioByte) *
                                  tx_inflight_.size();
    } else {
      mem_.set_raw(kRadioStatus, 0);
    }
  }
}

void DeviceHub::io_access(uint16_t addr, uint8_t& value, bool write) {
  sync(now_);
  // Reads observe the device-maintained register contents after the sync;
  // special ports override below.
  if (!write) value = mem_.raw(addr);
  switch (addr) {
    case kTcnt0:
      if (write) {
        t0_epoch_ = now_;
        t0_start_ = value;
      }
      break;
    case kTccr0:
      if (write) {
        t0_epoch_ = now_;
        t0_start_ = mem_.raw(kTcnt0);
      }
      break;
    case kTifr:
      // Writing 1 to a flag clears it (AVR convention).
      if (write) value = static_cast<uint8_t>(mem_.raw(kTifr) & ~value);
      break;
    case kAdcsra:
      if (write && (value & kAdcStartBit)) {
        adc_done_at_ = now_ + kAdcLatency;
        value = static_cast<uint8_t>(value & ~kAdcDoneBit);
      }
      break;
    case kRadioData:
      if (write) radio_buf_.push_back(value);
      break;
    case kRadioRxData:
      if (!write) {
        value = rx_avail_.empty() ? 0 : rx_avail_.front();
        if (!rx_avail_.empty()) rx_avail_.pop_front();
      }
      break;
    case kRadioRxAvail:
      if (!write)
        value = static_cast<uint8_t>(std::min<size_t>(rx_avail_.size(), 255));
      break;
    case kRadioCtrl:
      if (write && value == 1 && !radio_buf_.empty()) {
        if (!radio_done_at_) {
          tx_inflight_ = std::move(radio_buf_);
          radio_done_at_ =
              now_ + uint64_t(kCyclesPerRadioByte) * tx_inflight_.size();
        } else {
          // Transmitter busy: queue the staged packet instead of silently
          // dropping the send. It starts when the in-flight one completes.
          tx_queue_.push_back(std::move(radio_buf_));
        }
        radio_buf_.clear();
        mem_.set_raw(kRadioStatus, 1);
      }
      break;
    case kHostOut:
      if (write) host_out_.push_back(value);
      break;
    case kHostHalt:
      if (write) {
        halted_ = true;
        halt_code_ = value;
      }
      break;
    case kHostRandL:
      if (!write) value = static_cast<uint8_t>(lfsr_next() & 0xFF);
      break;
    case kHostRandH:
      if (!write) value = static_cast<uint8_t>(lfsr_ >> 8);
      break;
    case kSleepTargetL:
      if (write) sleep_target_l_ = value;
      break;
    case kSleepTargetH:
      if (write) {
        // Arm a timed sleep: wake when Timer3 reaches the 16-bit target,
        // interpreted modulo 2^16 relative to the current tick. The wake
        // cycle is anchored to the *absolute* tick count so it stays
        // correct after the 16-bit counter wraps.
        const uint16_t target =
            static_cast<uint16_t>(sleep_target_l_ | (value << 8));
        const uint64_t abs_ticks = now_ / kTimer3Prescale;
        const uint16_t delta =
            static_cast<uint16_t>(target - static_cast<uint16_t>(abs_ticks));
        sleep_wake_cycle_ =
            (abs_ticks + delta) * kTimer3Prescale + kTimer3Prescale - 1;
        if (sleep_wake_cycle_ < now_) sleep_wake_cycle_ = now_;
        sleep_armed_ = true;
      }
      break;
    case kTcnt3L:
      if (!write) {
        const uint16_t t = timer3_ticks(now_);
        tcnt3_latched_h_ = static_cast<uint8_t>(t >> 8);
        value = static_cast<uint8_t>(t & 0xFF);
      }
      break;
    case kTcnt3H:
      if (!write) value = tcnt3_latched_h_;
      break;
    default:
      break;
  }
}

void DeviceHub::reboot() {
  // Volatile transmit state: staged bytes, the packet on the air, and the
  // back-to-back queue all die with the power rail.
  radio_buf_.clear();
  tx_inflight_.clear();
  tx_queue_.clear();
  radio_done_at_.reset();
  radio_irq_flag_ = false;
  mem_.set_raw(kRadioStatus, 0);
  // Volatile receive state (the radio is off until power-up).
  flush_rx();
  // Conversion, sleep, and timer latches.
  adc_done_at_.reset();
  sleep_armed_ = false;
  sleep_wake_cycle_ = 0;
  sleep_target_l_ = 0;
  tcnt3_latched_h_ = 0;
  t0_epoch_ = now_;
  t0_start_ = 0;
  halted_ = false;
  halt_code_ = 0;
  // The kernel health mirror dies with the power rail — a rollout health
  // report covers exactly one boot (DESIGN.md §12).
  health_ = HealthCounters{};
  // image_store_, host_out_, radio_sent_, and the counters survive: the
  // store is non-volatile, the rest are observer-side logs. The store is
  // round-tripped through the on-flash codec every power cycle so the
  // format is exercised on the exact path a real bootloader reads it, then
  // the bootloader's trial decision runs.
  std::vector<uint8_t> page = serialize_image_store(image_store_);
  ImageStore fresh;
  if (deserialize_image_store(page, fresh)) {
    image_store_ = std::move(fresh);
  } else {
    image_store_.erase();
    store_reformatted_ = true;
  }
  last_boot_ = image_store_.on_power_up();
}

bool DeviceHub::load_flash_page(std::span<const uint8_t> page) {
  ImageStore fresh;
  if (deserialize_image_store(page, fresh)) {
    image_store_ = std::move(fresh);
    return true;
  }
  image_store_.erase();
  store_reformatted_ = true;
  return false;
}

uint64_t DeviceHub::schedule_rx(std::span<const uint8_t> bytes,
                                uint64_t at_cycle) {
  // Serial medium: a delivery that overlaps the in-flight one queues
  // behind it (arrival timestamps in rx_pending_ stay monotone, so sync()
  // drains strictly in arrival order).
  const uint64_t begin = std::max(at_cycle, rx_busy_until_);
  for (size_t i = 0; i < bytes.size(); ++i)
    rx_pending_.emplace_back(begin + (i + 1) * kCyclesPerRadioByte, bytes[i]);
  rx_busy_until_ = begin + bytes.size() * kCyclesPerRadioByte;
  return begin;
}

std::optional<Irq> DeviceHub::pending_irq() const {
  const uint8_t timsk = mem_.raw(kTimsk);
  const uint8_t tifr = mem_.raw(kTifr);
  if ((timsk & tifr & kT0OvfBit) != 0) return Irq::Timer0Ovf;
  if ((timsk & tifr & kT0CompBit) != 0) return Irq::Timer0Comp;
  const uint8_t sra = mem_.raw(kAdcsra);
  if ((sra & kAdcIeBit) && (sra & kAdcDoneBit)) return Irq::Adc;
  if (radio_irq_flag_) return Irq::Radio;
  return std::nullopt;
}

void DeviceHub::acknowledge(Irq irq) {
  switch (irq) {
    case Irq::Timer0Ovf:
      mem_.set_raw(kTifr, mem_.raw(kTifr) & ~kT0OvfBit);
      break;
    case Irq::Timer0Comp:
      mem_.set_raw(kTifr, mem_.raw(kTifr) & ~kT0CompBit);
      break;
    case Irq::Adc:
      mem_.set_raw(kAdcsra, mem_.raw(kAdcsra) & ~kAdcDoneBit);
      break;
    case Irq::Radio:
      radio_irq_flag_ = false;
      break;
  }
}

std::optional<uint64_t> DeviceHub::next_event_after(uint64_t now) const {
  std::optional<uint64_t> next;
  auto consider = [&next, now](uint64_t t) {
    if (t < now) t = now;
    if (!next || t < *next) next = t;
  };

  if (adc_done_at_) consider(*adc_done_at_);
  if (radio_done_at_) consider(*radio_done_at_);
  if (!rx_pending_.empty()) consider(rx_pending_.front().first);
  if (sleep_armed_) consider(sleep_wake_cycle_);

  // Timer0 overflow/compare, only when the interrupt is unmasked (a masked
  // timer cannot wake SLEEP).
  const uint32_t ps = timer0_prescale();
  const uint8_t timsk = mem_.raw(kTimsk);
  if (ps != 0 && (timsk & (kT0OvfBit | kT0CompBit)) != 0) {
    const uint64_t ticks = (now - t0_epoch_) / ps;
    const uint64_t count = t0_start_ + ticks;
    if (timsk & kT0OvfBit) {
      const uint64_t to_ovf = 0x100 > count ? 0x100 - count : 0;
      consider(t0_epoch_ + (ticks + to_ovf + (to_ovf ? 0 : 1)) * ps);
    }
    if (timsk & kT0CompBit) {
      const uint8_t ocr = mem_.raw(kOcr0);
      if (count < ocr) consider(t0_epoch_ + (ocr - t0_start_) * uint64_t(ps));
    }
  }
  return next;
}

}  // namespace sensmart::emu
