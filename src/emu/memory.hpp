// Data-memory model: one flat byte array covering registers, I/O and SRAM,
// with an interception hook for the I/O windows so devices can implement
// side effects. The register file is memory-mapped at 0x00..0x1F exactly as
// on a real AVR.
#pragma once

#include <array>
#include <cstdint>

#include "emu/io_map.hpp"

namespace sensmart::emu {

class DataMemory {
 public:
  // Raw function pointer + context: the hook fires on every I/O-window
  // access, so a std::function here would put an indirect-call trampoline
  // and a captured-state load on the device hot path.
  using IoHook = void (*)(void* ctx, uint16_t addr, uint8_t& value, bool write);

  DataMemory() { ram_.fill(0); }

  // Address wrap at the top of data memory. kDataEnd is not a power of
  // two, so an unconditional `%` is a magic-number division on every
  // access; nearly all addresses are already in range, making this a
  // predictable untaken branch instead.
  static uint16_t wrap(uint16_t addr) {
    return addr < kDataEnd ? addr : static_cast<uint16_t>(addr % kDataEnd);
  }

  // Raw access, no device side effects (used by the kernel to move regions
  // and by tests to inspect state).
  uint8_t raw(uint16_t addr) const { return ram_[wrap(addr)]; }
  void set_raw(uint16_t addr, uint8_t v) { ram_[wrap(addr)] = v; }

  // CPU-visible access: I/O window reads/writes are routed through the hook.
  uint8_t read(uint16_t addr) {
    addr = wrap(addr);
    if (addr >= kIoBase && addr < kSramBase && io_hook_ != nullptr) {
      uint8_t v = ram_[addr];
      io_hook_(io_ctx_, addr, v, /*write=*/false);
      ram_[addr] = v;
      return v;
    }
    return ram_[addr];
  }
  void write(uint16_t addr, uint8_t v) {
    addr = wrap(addr);
    if (addr >= kIoBase && addr < kSramBase && io_hook_ != nullptr) {
      io_hook_(io_ctx_, addr, v, /*write=*/true);
    }
    ram_[addr] = v;
  }

  void set_io_hook(IoHook hook, void* ctx) {
    io_hook_ = hook;
    io_ctx_ = ctx;
  }

  // 16-bit helpers for SP (little-endian in the SPL/SPH pair).
  uint16_t sp() const {
    return static_cast<uint16_t>(ram_[kSpl] | (ram_[kSph] << 8));
  }
  void set_sp(uint16_t sp) {
    ram_[kSpl] = static_cast<uint8_t>(sp & 0xFF);
    ram_[kSph] = static_cast<uint8_t>(sp >> 8);
  }
  uint8_t sreg() const { return ram_[kSreg]; }
  void set_sreg(uint8_t v) { ram_[kSreg] = v; }

  uint8_t reg(uint8_t r) const { return ram_[r & 0x1F]; }
  void set_reg(uint8_t r, uint8_t v) { ram_[r & 0x1F] = v; }
  uint16_t reg_pair(uint8_t r) const {
    return static_cast<uint16_t>(reg(r) | (reg(r + 1) << 8));
  }
  void set_reg_pair(uint8_t r, uint16_t v) {
    set_reg(r, static_cast<uint8_t>(v & 0xFF));
    set_reg(r + 1, static_cast<uint8_t>(v >> 8));
  }

 private:
  std::array<uint8_t, kDataEnd> ram_;
  IoHook io_hook_ = nullptr;
  void* io_ctx_ = nullptr;
};

}  // namespace sensmart::emu
