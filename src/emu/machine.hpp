// The emulated mote: flash, data memory, devices and the AVR CPU core,
// glued to a cycle clock. This is the substrate every experiment runs on —
// both "native" executions and SenSmart/t-kernel executions (where the
// loaded image is a rewritten one and kernel services are reached through
// the service hook).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "emu/devices.hpp"
#include "emu/memory.hpp"
#include "isa/codec.hpp"

namespace sensmart::emu {

enum class StopReason {
  Running,
  Halted,              // program wrote kHostHalt
  CycleLimit,          // run() budget exhausted
  InvalidInstruction,  // undecodable opcode reached
  Breakpoint,          // Break outside the service region / no hook
  Deadlock,            // SLEEP with no wake source armed
  ServiceFault,        // service hook reported a fault
};

const char* to_string(StopReason r);

struct RunStats {
  uint64_t instructions = 0;
  uint64_t active_cycles = 0;  // cycles spent executing
  uint64_t idle_cycles = 0;    // cycles fast-forwarded through SLEEP
};

class Machine {
 public:
  static constexpr uint32_t kFlashWords = 0x10000;  // 128 KB

  Machine();

  // Load `words` at flash word address `base` and reset decode caches.
  void load_flash(std::span<const uint16_t> words, uint32_t base = 0);
  uint16_t flash_word(uint32_t word_addr) const {
    return flash_[word_addr % kFlashWords];
  }
  uint8_t flash_byte(uint32_t byte_addr) const {
    const uint16_t w = flash_word(byte_addr >> 1);
    return static_cast<uint8_t>((byte_addr & 1) ? (w >> 8) : (w & 0xFF));
  }
  uint32_t flash_used_words() const { return flash_used_; }

  // Reset CPU state; SP starts at the top of SRAM.
  void reset(uint32_t entry_word = kResetVector);

  StopReason step();
  StopReason run(uint64_t max_cycles);

  // --- Kernel/service integration -----------------------------------------
  // A Break executed at word address >= `floor` invokes `hook`; the hook
  // must set the PC and charge cycles itself. Returning false faults.
  using ServiceHook = std::function<bool(Machine&)>;
  void set_service_hook(uint32_t floor, ServiceHook hook) {
    service_floor_ = floor;
    service_hook_ = std::move(hook);
  }

  // --- State access ---------------------------------------------------------
  DataMemory& mem() { return mem_; }
  const DataMemory& mem() const { return mem_; }
  DeviceHub& dev() { return dev_; }
  const DeviceHub& dev() const { return dev_; }

  uint32_t pc() const { return pc_; }
  void set_pc(uint32_t pc) { pc_ = pc % kFlashWords; }

  uint64_t cycles() const { return cycles_; }
  // Charge active cycles (used by the CPU core and by kernel handlers to
  // account for the cost of trampoline/service bodies).
  void charge(uint64_t n) {
    cycles_ += n;
    stats_.active_cycles += n;
  }
  // Fast-forward the clock without executing (SLEEP / kernel idle).
  void charge_idle(uint64_t n) {
    cycles_ += n;
    stats_.idle_cycles += n;
  }

  const RunStats& stats() const { return stats_; }
  StopReason stop_reason() const { return stop_; }

  // Push/pop on the *physical* stack (used by CALL/RET and kernel services).
  void push16(uint16_t v);
  uint16_t pop16();

  // Force a stop from inside a service hook (e.g. task fault in native run).
  void stop(StopReason r) { stop_ = r; }

  // The decoded instruction at `word_addr` (decode-cache backed).
  const isa::Instruction& decoded(uint32_t word_addr);

 private:
  StopReason execute_one();
  void dispatch_irq(Irq irq);
  bool maybe_take_irq();
  StopReason do_sleep();

  std::vector<uint16_t> flash_;
  std::vector<isa::Instruction> dcache_;
  std::vector<uint8_t> dcache_valid_;
  uint32_t flash_used_ = 0;

  DataMemory mem_;
  DeviceHub dev_{mem_};

  uint32_t pc_ = 0;
  uint64_t cycles_ = 0;
  uint64_t next_irq_probe_ = 0;
  RunStats stats_;
  StopReason stop_ = StopReason::Running;

  uint32_t service_floor_ = kFlashWords;
  ServiceHook service_hook_;
};

}  // namespace sensmart::emu
