// The emulated mote: flash, data memory, devices and the AVR CPU core,
// glued to a cycle clock. This is the substrate every experiment runs on —
// both "native" executions and SenSmart/t-kernel executions (where the
// loaded image is a rewritten one and kernel services are reached through
// the service hook).
//
// The hot path is the batched run() loop: straight-line instructions
// execute up to the next *event horizon* — the earliest of the cycle
// budget and the armed IRQ probe time — with no per-instruction interrupt
// or stop polling. Device I/O that can change interrupt state collapses
// the horizon instead (see DESIGN.md §"Event-horizon execution").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "emu/devices.hpp"
#include "emu/memory.hpp"
#include "isa/codec.hpp"

namespace sensmart::emu {

enum class StopReason {
  Running,
  Halted,              // program wrote kHostHalt
  CycleLimit,          // run() budget exhausted
  InvalidInstruction,  // undecodable opcode reached
  Breakpoint,          // Break outside the service region / no hook
  Deadlock,            // SLEEP with no wake source armed
  ServiceFault,        // service hook reported a fault
};

const char* to_string(StopReason r);

struct RunStats {
  uint64_t instructions = 0;
  uint64_t active_cycles = 0;  // cycles spent executing
  uint64_t idle_cycles = 0;    // cycles fast-forwarded through SLEEP
};

class Machine {
 public:
  static constexpr uint32_t kFlashWords = 0x10000;  // 128 KB

  // Decode-cache entry: the decoded instruction plus its execution
  // metadata, so the hot loop never re-derives size/base-cycles through
  // the out-of-line isa:: classification switches.
  struct DecodedInsn {
    isa::Instruction ins;
    uint8_t size = 1;    // isa::size_words(ins.op)
    uint8_t cycles = 1;  // isa::base_cycles(ins.op)
    uint8_t valid = 0;   // in-entry flag: no second array touched per fetch
  };

  // One naturalized image shared by a fleet of machines: the full flash
  // plus a completely pre-decoded cache (every entry valid), immutable
  // after build_shared_image(). Because no entry is ever invalid, an
  // adopting machine's fetch path never writes into it — concurrent
  // execution of any number of machines over one SharedImage is read-only
  // and race-free. A machine that needs to mutate flash (load_flash)
  // detaches first with a private copy-on-write snapshot.
  struct SharedImage {
    std::vector<uint16_t> flash;      // kFlashWords; erased state 0xFFFF
    std::vector<DecodedInsn> dcache;  // kFlashWords, all entries valid
    uint32_t used = 0;                // words occupied by the image
    size_t bytes() const {
      return flash.size() * sizeof(uint16_t) +
             dcache.size() * sizeof(DecodedInsn);
    }
  };

  Machine();

  // Build an immutable, fully pre-decoded image for adopt_image(). Cost is
  // one decode pass over all of flash, paid once per fleet instead of
  // lazily per machine.
  static std::shared_ptr<const SharedImage> build_shared_image(
      std::span<const uint16_t> words, uint32_t base = 0);

  // Share `img` as this machine's flash + decode cache, releasing any
  // private copies. Equivalent to load_flash() of the same words for every
  // observable behavior; the image memory is shared, not owned.
  void adopt_image(std::shared_ptr<const SharedImage> img);
  bool image_shared() const { return shared_ != nullptr; }
  // Heap bytes this machine privately holds for flash + decode cache
  // (zero while unloaded or adopted — the dedup win fig_fleet reports).
  size_t private_image_bytes() const {
    return flash_.capacity() * sizeof(uint16_t) +
           dcache_.capacity() * sizeof(DecodedInsn);
  }

  // Load `words` at flash word address `base` and reset decode caches.
  // A machine sharing an image detaches (copy-on-write) first.
  void load_flash(std::span<const uint16_t> words, uint32_t base = 0);
  uint16_t flash_word(uint32_t word_addr) const {
    // flash_ro_ is null only before any image exists; erased flash reads
    // 0xFFFF, matching the eagerly-allocated historical behavior.
    return flash_ro_ ? flash_ro_[word_addr % kFlashWords] : 0xFFFF;
  }
  uint8_t flash_byte(uint32_t byte_addr) const {
    const uint16_t w = flash_word(byte_addr >> 1);
    return static_cast<uint8_t>((byte_addr & 1) ? (w >> 8) : (w & 0xFF));
  }
  uint32_t flash_used_words() const { return flash_used_; }

  // Reset the CPU execution state: PC, SP (top of SRAM), SREG, the stop
  // reason, and any armed IRQ-probe/event-horizon time. Deliberately
  // preserved: flash and the decode cache, data-memory contents, device
  // state, the cycle clock and run statistics — so a warm restart observes
  // the same world an AVR would after a jump to the reset vector.
  void reset(uint32_t entry_word = kResetVector);

  StopReason step();
  StopReason run(uint64_t max_cycles);

  // --- Kernel/service integration -----------------------------------------
  // A Break executed at word address >= `floor` invokes the service
  // handler; the handler must set the PC and charge cycles itself.
  // Returning false faults the machine.
  //
  // Two registration forms: the raw context+function-pointer form is the
  // hot path (no std::function indirection on every trap); the
  // std::function form wraps the same mechanism for convenience.
  //
  // `svc_arg` is the flash word following the Break (the rewriter stores
  // the service index there); it is served from the decode cache so the
  // handler does not refetch it on every trap.
  using ServiceFn = bool (*)(void* ctx, Machine&, uint32_t svc_arg);
  using ServiceHook = std::function<bool(Machine&)>;
  void set_service_handler(uint32_t floor, ServiceFn fn, void* ctx) {
    service_floor_ = floor;
    service_fn_ = fn;
    service_ctx_ = ctx;
  }
  void set_service_hook(uint32_t floor, ServiceHook hook);

  // --- State access ---------------------------------------------------------
  DataMemory& mem() { return mem_; }
  const DataMemory& mem() const { return mem_; }
  DeviceHub& dev() { return dev_; }
  const DeviceHub& dev() const { return dev_; }

  uint32_t pc() const { return pc_; }
  void set_pc(uint32_t pc) { pc_ = pc % kFlashWords; }

  uint64_t cycles() const { return cycles_; }
  // Charge active cycles (used by the CPU core and by kernel handlers to
  // account for the cost of trampoline/service bodies).
  void charge(uint64_t n) { cycles_ += n; }
  // Fast-forward the clock without executing (SLEEP / kernel idle).
  void charge_idle(uint64_t n) {
    cycles_ += n;
    stats_.idle_cycles += n;
  }

  // The clock only ever advances through charge()/charge_idle(), so the
  // active share is derived here instead of being a second read-modify-
  // write on every retired instruction.
  RunStats stats() const {
    RunStats s = stats_;
    s.active_cycles = cycles_ - stats_.idle_cycles;
    return s;
  }
  StopReason stop_reason() const { return stop_; }

  // Push/pop on the *physical* stack (used by CALL/RET and kernel
  // services). Inline: these run on every service trap.
  void push16(uint16_t v) {
    const uint16_t sp = mem_.sp();
    mem_.set_raw(sp, static_cast<uint8_t>(v & 0xFF));
    mem_.set_raw(static_cast<uint16_t>(sp - 1), static_cast<uint8_t>(v >> 8));
    mem_.set_sp(static_cast<uint16_t>(sp - 2));
  }
  uint16_t pop16() {
    const uint16_t sp = mem_.sp();
    const uint8_t hi = mem_.raw(static_cast<uint16_t>(sp + 1));
    const uint8_t lo = mem_.raw(static_cast<uint16_t>(sp + 2));
    mem_.set_sp(static_cast<uint16_t>(sp + 2));
    return static_cast<uint16_t>(lo | (hi << 8));
  }

  // The return address the trampoline call pushed, for a service handler.
  // When the Break was dispatched fused with its call (same batch step)
  // the just-pushed value is handed over directly and only SP is
  // readjusted — the two stack bytes the call wrote stay exactly as a
  // real pop would leave them, so memory and SP state are identical to
  // the unfused path. Handlers must consume this exactly once per trap,
  // before touching the task stack.
  uint16_t service_ret() {
    if (fused_ret_valid_) {
      fused_ret_valid_ = false;
      mem_.set_sp(static_cast<uint16_t>(mem_.sp() + 2));
      return fused_ret_;
    }
    return pop16();
  }

  // Force a stop from inside a service hook (e.g. task fault in native run).
  void stop(StopReason r) { stop_ = r; }

  // The decoded instruction at `word_addr` (decode-cache backed).
  const isa::Instruction& decoded(uint32_t word_addr) {
    return entry(word_addr).ins;
  }

 private:
  const DecodedInsn& entry(uint32_t word_addr) {
    word_addr %= kFlashWords;
    // dcache_ro_ views either the private cache (lazily fillable) or a
    // shared image (every entry pre-decoded, so the fill branch is dead
    // and the shared data is never written).
    if (!dcache_ro_) materialize_image();
    const DecodedInsn& d = dcache_ro_[word_addr];
    if (!d.valid) fill_entry(word_addr);
    return d;
  }
  void fill_entry(uint32_t word_addr);
  // Allocate the private flash/decode-cache arrays on first need; a
  // machine holding a SharedImage detaches by snapshotting it (the
  // copy-on-write half of the dedup contract).
  void materialize_image();
  static void decode_entry(std::span<const uint16_t> flash,
                           uint32_t word_addr, DecodedInsn& d);

  // Forced inline: the batched run() loop is the one hot call site, and
  // keeping the dispatch in the caller's frame avoids a full
  // prologue/epilogue per emulated instruction.
  //
  // The hot execution state (PC, cycle clock, retired-instruction count,
  // SREG) is passed by reference to the caller's locals instead of living
  // in members: every opaque call in an instruction body (I/O hook,
  // service handler) would otherwise force the member copies to be
  // reloaded and stored once per emulated instruction. The members are
  // synchronized exactly where an observer can look: before any
  // data-memory access (the I/O hook reads the clock, and the accessed
  // address may alias SREG), around service dispatch, and at batch ends.
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((always_inline))
#endif
  inline StopReason execute_one(uint32_t& pc, uint64_t& cycles,
                                uint64_t& insns, uint8_t& sreg);
  void dispatch_irq(Irq irq);
  bool maybe_take_irq();
  StopReason do_sleep();
  bool irq_enabled() const {
    return (mem_.sreg() & (1u << isa::kFlagI)) != 0;
  }

  // Execute helpers (member functions; the old execute_one built these as
  // per-call lambda closures). `sreg_local` is the in-flight flag copy a
  // store to the SREG data address must refresh.
  uint16_t pointer_addr(isa::Ptr p) const;
  void set_pointer(isa::Ptr p, uint16_t v);
  void mem_indirect(uint8_t& sreg_local, const isa::Instruction& ins,
                    bool store, isa::Ptr p, int pre, int post, uint8_t disp);
  void skip_next(uint32_t& next_pc, int& cyc);

  static bool hook_thunk(void* self, Machine& m, uint32_t svc_arg);

  // Image storage: either private (flash_/dcache_, allocated lazily on
  // first load/fetch) or shared (shared_, immutable). flash_ro_/dcache_ro_
  // are the active read views; fill_entry() writes through dcache_ only,
  // which aliases dcache_ro_ exactly when the image is private.
  std::vector<uint16_t> flash_;
  std::vector<DecodedInsn> dcache_;
  std::shared_ptr<const SharedImage> shared_;
  const uint16_t* flash_ro_ = nullptr;
  const DecodedInsn* dcache_ro_ = nullptr;
  uint32_t flash_used_ = 0;

  DataMemory mem_;
  DeviceHub dev_{mem_};

  uint32_t pc_ = 0;
  uint64_t cycles_ = 0;
  uint64_t next_irq_probe_ = 0;
  // End of the current straight-line batch in run(): min(cycle budget,
  // next_irq_probe_ when interrupts are enabled). Collapsed to 0 by the
  // I/O hook when device/interrupt state may have changed.
  uint64_t horizon_ = 0;
  RunStats stats_;
  StopReason stop_ = StopReason::Running;

  uint32_t service_floor_ = kFlashWords;
  ServiceFn service_fn_ = nullptr;
  void* service_ctx_ = nullptr;
  ServiceHook service_hook_;  // storage for the std::function form

  // Fused-dispatch hand-off for service_ret(): the return address the
  // trampoline call pushed in the same batch step as the Break dispatch.
  uint16_t fused_ret_ = 0;
  bool fused_ret_valid_ = false;
};

}  // namespace sensmart::emu
