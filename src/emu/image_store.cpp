// A/B image slots, the trial state machine, and the versioned on-flash
// codec for the persistent ImageStore (DESIGN.md §12).
//
// The codec is deliberately strict: every length is bounds-checked against
// both the page size and hard ceilings, cross-field invariants are
// re-verified, and a trailing page CRC-32 must match. Anything that fails —
// including the implicit pre-A/B "format 1" single-slot layout, whose first
// byte can never be 2 — is rejected wholesale so the caller reformats the
// page instead of booting from a misparse.

#include "emu/devices.hpp"

#include <cstring>

namespace sensmart::emu {

namespace {

// Same polynomial/reflection as net::crc32 so slot CRCs and announced
// image CRCs compare directly (emu must not depend on net).
uint32_t page_crc32(std::span<const uint8_t> bytes) {
  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t b : bytes) {
    crc ^= b;
    for (int i = 0; i < 8; ++i)
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
  }
  return ~crc;
}

void put8(std::vector<uint8_t>& v, uint8_t x) { v.push_back(x); }
void put16(std::vector<uint8_t>& v, uint16_t x) {
  v.push_back(static_cast<uint8_t>(x & 0xFF));
  v.push_back(static_cast<uint8_t>(x >> 8));
}
void put32(std::vector<uint8_t>& v, uint32_t x) {
  for (int i = 0; i < 4; ++i) v.push_back(static_cast<uint8_t>(x >> (8 * i)));
}
void put64(std::vector<uint8_t>& v, uint64_t x) {
  for (int i = 0; i < 8; ++i) v.push_back(static_cast<uint8_t>(x >> (8 * i)));
}

// Bounds-checked little-endian reads over the page.
struct Reader {
  std::span<const uint8_t> p;
  size_t at = 0;
  bool ok = true;

  bool need(size_t n) {
    if (!ok || p.size() - at < n) return ok = false;
    return true;
  }
  uint8_t u8() {
    if (!need(1)) return 0;
    return p[at++];
  }
  uint16_t u16() {
    if (!need(2)) return 0;
    uint16_t x = static_cast<uint16_t>(p[at] | (p[at + 1] << 8));
    at += 2;
    return x;
  }
  uint32_t u32() {
    if (!need(4)) return 0;
    uint32_t x = 0;
    for (int i = 0; i < 4; ++i) x |= static_cast<uint32_t>(p[at + i]) << (8 * i);
    at += 4;
    return x;
  }
  uint64_t u64() {
    if (!need(8)) return 0;
    uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x |= static_cast<uint64_t>(p[at + i]) << (8 * i);
    at += 8;
    return x;
  }
  bool bytes(std::vector<uint8_t>& out, size_t n) {
    if (!need(n)) return false;
    out.assign(p.begin() + static_cast<ptrdiff_t>(at),
               p.begin() + static_cast<ptrdiff_t>(at + n));
    at += n;
    return true;
  }
};

constexpr uint8_t kFlagHasSummary = 0x01;
constexpr uint8_t kFlagHasMac = 0x02;
constexpr uint8_t kFlagVerified = 0x04;
constexpr uint8_t kFlagTrialActive = 0x08;
constexpr uint8_t kFlagTrialBootPending = 0x10;
constexpr uint8_t kFlagRollbackReport = 0x20;
constexpr uint8_t kFlagsKnown = 0x3F;

}  // namespace

int ImageStore::stage_inactive(uint8_t version) {
  if (!verified) return -1;
  const uint8_t slot = active_slot ^ 1u;
  ImageSlot& s = slots[slot];
  s.state = SlotState::Staged;
  s.version = version;
  s.crc = image_crc;
  s.image = image;
  return slot;
}

void ImageStore::activate_trial(uint8_t slot) {
  active_slot = slot & 1u;
  trial_active = true;
  trial_boot_pending = true;
}

void ImageStore::confirm_trial() {
  if (!trial_active) return;
  slots[active_slot].state = SlotState::Confirmed;
  trial_active = false;
  trial_boot_pending = false;
}

void ImageStore::rollback_trial() {
  if (!trial_active) return;
  slots[active_slot].state = SlotState::Rejected;
  active_slot ^= 1u;
  trial_active = false;
  trial_boot_pending = false;
}

bool ImageStore::revert_active(uint32_t crc) {
  if (trial_active) return false;  // use rollback_trial for trials
  ImageSlot& act = slots[active_slot];
  const ImageSlot& other = slots[active_slot ^ 1u];
  if (act.state != SlotState::Confirmed || act.crc != crc) return false;
  if (other.state != SlotState::Confirmed && other.state != SlotState::Staged)
    return false;  // nothing bootable to fall back to
  act.state = SlotState::Rejected;
  active_slot ^= 1u;
  return true;
}

BootOutcome ImageStore::on_power_up() {
  if (!trial_active) return BootOutcome::Normal;
  if (trial_boot_pending) {
    // The single sanctioned boot into the trial image.
    trial_boot_pending = false;
    return BootOutcome::TrialBoot;
  }
  // Power died mid-probation without a confirm: the trial can not be
  // trusted. Fall back and remember to tell the base.
  rollback_trial();
  rollback_report_pending = true;
  return BootOutcome::TrialRollback;
}

std::vector<uint8_t> serialize_image_store(const ImageStore& st) {
  std::vector<uint8_t> page;
  page.reserve(64 + st.have.size() + st.image.size() + st.slots[0].image.size() +
               st.slots[1].image.size());
  put8(page, kImageStoreFormat);
  uint8_t flags = 0;
  if (st.has_summary) flags |= kFlagHasSummary;
  if (st.has_mac) flags |= kFlagHasMac;
  if (st.verified) flags |= kFlagVerified;
  if (st.trial_active) flags |= kFlagTrialActive;
  if (st.trial_boot_pending) flags |= kFlagTrialBootPending;
  if (st.rollback_report_pending) flags |= kFlagRollbackReport;
  put8(page, flags);
  put8(page, st.image_version);
  put8(page, st.chunk_payload);
  put16(page, st.total_chunks);
  put16(page, st.chunks_have);
  put32(page, st.image_bytes);
  put32(page, st.image_crc);
  put64(page, st.image_mac);
  put64(page, st.writes);
  put8(page, st.active_slot);
  put32(page, static_cast<uint32_t>(st.have.size()));
  page.insert(page.end(), st.have.begin(), st.have.end());
  put32(page, static_cast<uint32_t>(st.image.size()));
  page.insert(page.end(), st.image.begin(), st.image.end());
  for (const ImageSlot& s : st.slots) {
    put8(page, static_cast<uint8_t>(s.state));
    put8(page, s.version);
    put32(page, s.crc);
    put32(page, static_cast<uint32_t>(s.image.size()));
    page.insert(page.end(), s.image.begin(), s.image.end());
  }
  put32(page, page_crc32(page));
  return page;
}

bool deserialize_image_store(std::span<const uint8_t> page, ImageStore& out) {
  // Page integrity first: trailing CRC-32 over everything before it.
  if (page.size() < 4) return false;
  const std::span<const uint8_t> body = page.first(page.size() - 4);
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i)
    stored |= static_cast<uint32_t>(page[body.size() + i]) << (8 * i);
  if (page_crc32(body) != stored) return false;

  Reader r{body};
  ImageStore st;
  if (r.u8() != kImageStoreFormat) return false;
  const uint8_t flags = r.u8();
  if (!r.ok || (flags & ~kFlagsKnown) != 0) return false;
  st.has_summary = (flags & kFlagHasSummary) != 0;
  st.has_mac = (flags & kFlagHasMac) != 0;
  st.verified = (flags & kFlagVerified) != 0;
  st.trial_active = (flags & kFlagTrialActive) != 0;
  st.trial_boot_pending = (flags & kFlagTrialBootPending) != 0;
  st.rollback_report_pending = (flags & kFlagRollbackReport) != 0;
  st.image_version = r.u8();
  st.chunk_payload = r.u8();
  st.total_chunks = r.u16();
  st.chunks_have = r.u16();
  st.image_bytes = r.u32();
  st.image_crc = r.u32();
  st.image_mac = r.u64();
  st.writes = r.u64();
  st.active_slot = r.u8();
  const uint32_t have_len = r.u32();
  if (!r.ok || have_len != st.total_chunks) return false;
  if (!r.bytes(st.have, have_len)) return false;
  for (uint8_t b : st.have)
    if (b > 1) return false;
  const uint32_t image_len = r.u32();
  if (!r.ok || image_len > kMaxStoreImageBytes) return false;
  if (!r.bytes(st.image, image_len)) return false;
  for (ImageSlot& s : st.slots) {
    const uint8_t state = r.u8();
    if (!r.ok || state > static_cast<uint8_t>(SlotState::Rejected))
      return false;
    s.state = static_cast<SlotState>(state);
    s.version = r.u8();
    s.crc = r.u32();
    const uint32_t len = r.u32();
    if (!r.ok || len > kMaxStoreImageBytes) return false;
    if (!r.bytes(s.image, len)) return false;
    // A slot claiming to hold an image must hold one; an Empty slot must
    // not smuggle bytes in.
    if (s.state == SlotState::Empty && !s.image.empty()) return false;
    if (s.state != SlotState::Empty && s.image.empty()) return false;
  }
  if (r.at != body.size()) return false;  // trailing garbage

  // Cross-field transfer-area invariants.
  if (!st.has_summary) {
    if (st.total_chunks != 0 || st.chunks_have != 0 || st.image_bytes != 0 ||
        st.verified || st.has_mac || !st.image.empty())
      return false;
  } else {
    if (st.chunks_have > st.total_chunks) return false;
    if (st.image.size() != st.image_bytes) return false;
    uint32_t popcount = 0;
    for (uint8_t b : st.have) popcount += b;
    if (popcount != st.chunks_have) return false;
    if (st.verified && st.chunks_have != st.total_chunks) return false;
  }
  // Trial-machine invariants: the trial flags must point at a Staged,
  // populated active slot.
  if (st.active_slot > 1) return false;
  if (st.trial_boot_pending && !st.trial_active) return false;
  if (st.trial_active &&
      st.slots[st.active_slot].state != SlotState::Staged)
    return false;

  out = std::move(st);
  return true;
}

}  // namespace sensmart::emu
