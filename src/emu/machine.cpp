#include "emu/machine.hpp"

#include <stdexcept>

namespace sensmart::emu {

using isa::Instruction;
using isa::Op;

const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::Running: return "running";
    case StopReason::Halted: return "halted";
    case StopReason::CycleLimit: return "cycle-limit";
    case StopReason::InvalidInstruction: return "invalid-instruction";
    case StopReason::Breakpoint: return "breakpoint";
    case StopReason::Deadlock: return "deadlock";
    case StopReason::ServiceFault: return "service-fault";
  }
  return "?";
}

// flash_/dcache_ start empty: a fleet-simulation machine that never
// executes (every NetSim receiver during dissemination) never pays the
// ~1.6 MB of private image arrays. materialize_image() allocates them on
// the first load_flash()/fetch; adopt_image() shares them instead.
Machine::Machine() {
  mem_.set_io_hook(
      [](void* self, uint16_t addr, uint8_t& v, bool write) {
        Machine& m = *static_cast<Machine*>(self);
        m.dev_.sync(m.cycles_);
        m.dev_.io_access(addr, v, write);
        // Only writes — and the few reads with device side effects — can
        // change what interrupt fires when. A plain read of a non-device
        // register keeps the armed probe/horizon, which already coincides
        // with the next scheduled device event.
        if (write || DeviceHub::read_has_side_effects(addr)) {
          m.next_irq_probe_ = 0;
          m.horizon_ = 0;
        }
      },
      this);
  reset();
}

void Machine::set_service_hook(uint32_t floor, ServiceHook hook) {
  service_hook_ = std::move(hook);
  set_service_handler(floor, &Machine::hook_thunk, this);
}

bool Machine::hook_thunk(void* self, Machine& m, uint32_t) {
  // Legacy std::function hooks predate the fused CALL+Break dispatch and
  // read their state (service operand, return address) from the machine
  // directly, so hand-off shortcuts must not apply to them.
  m.fused_ret_valid_ = false;
  return static_cast<Machine*>(self)->service_hook_(m);
}

void Machine::materialize_image() {
  if (!flash_.empty()) return;
  if (shared_) {
    // Copy-on-write detach: snapshot the shared image (every entry of its
    // decode cache is valid, so the snapshot is immediately hot) and stop
    // sharing. The SharedImage itself is never written.
    flash_ = shared_->flash;
    dcache_ = shared_->dcache;
    shared_.reset();
  } else {
    flash_.assign(kFlashWords, 0xFFFF);
    dcache_.assign(kFlashWords, DecodedInsn{});
  }
  flash_ro_ = flash_.data();
  dcache_ro_ = dcache_.data();
}

void Machine::adopt_image(std::shared_ptr<const SharedImage> img) {
  shared_ = std::move(img);
  flash_ = {};
  dcache_ = {};
  flash_ro_ = shared_->flash.data();
  dcache_ro_ = shared_->dcache.data();
  flash_used_ = shared_->used;
}

std::shared_ptr<const Machine::SharedImage> Machine::build_shared_image(
    std::span<const uint16_t> words, uint32_t base) {
  if (base + words.size() > kFlashWords)
    throw std::out_of_range("flash image too large");
  auto img = std::make_shared<SharedImage>();
  img->flash.assign(kFlashWords, 0xFFFF);
  for (size_t i = 0; i < words.size(); ++i) img->flash[base + i] = words[i];
  img->used = base + static_cast<uint32_t>(words.size());
  img->dcache.resize(kFlashWords);
  for (uint32_t a = 0; a < kFlashWords; ++a)
    decode_entry(img->flash, a, img->dcache[a]);
  return img;
}

void Machine::load_flash(std::span<const uint16_t> words, uint32_t base) {
  if (base + words.size() > kFlashWords)
    throw std::out_of_range("flash image too large");
  materialize_image();
  for (size_t i = 0; i < words.size(); ++i) {
    flash_[base + i] = words[i];
    dcache_[base + i].valid = 0;
  }
  // A decode-cache entry can depend on the word *after* its own (the k
  // operand of a two-word instruction, the service index of a Break), so
  // a load that starts mid-stream must also invalidate the entry whose
  // second word it just overwrote.
  if (base > 0) dcache_[base - 1].valid = 0;
  flash_used_ = std::max<uint32_t>(flash_used_, base + uint32_t(words.size()));
}

void Machine::reset(uint32_t entry_word) {
  pc_ = entry_word % kFlashWords;
  mem_.set_sp(kDataEnd - 1);
  mem_.set_sreg(0);
  stop_ = StopReason::Running;
  // A probe time armed before the reset must not suppress IRQ polling
  // afterwards (the devices kept running; the CPU's bookkeeping did not).
  next_irq_probe_ = 0;
  horizon_ = 0;
  fused_ret_valid_ = false;
}

void Machine::decode_entry(std::span<const uint16_t> flash,
                           uint32_t word_addr, DecodedInsn& d) {
  d.ins = isa::decode(flash, word_addr);
  d.size = static_cast<uint8_t>(isa::size_words(d.ins.op));
  d.cycles = static_cast<uint8_t>(isa::base_cycles(d.ins.op));
  // A Break's decode has no operand of its own; cache the service-index
  // word that follows it so a trap dispatch does not refetch it from
  // flash. load_flash() invalidates this entry if either word changes.
  if (d.ins.op == isa::Op::Break)
    d.ins.k = static_cast<int32_t>(flash[(word_addr + 1) % kFlashWords]);
  d.valid = 1;
}

void Machine::fill_entry(uint32_t word_addr) {
  decode_entry(flash_, word_addr, dcache_[word_addr]);
}

void Machine::dispatch_irq(Irq irq) {
  push16(static_cast<uint16_t>(pc_));
  mem_.set_sreg(mem_.sreg() & ~(1u << isa::kFlagI));
  dev_.acknowledge(irq);
  pc_ = vector_of(irq);
  charge(4);
}

bool Machine::maybe_take_irq() {
  if (!irq_enabled()) return false;
  if (cycles_ < next_irq_probe_) return false;
  dev_.sync(cycles_);
  if (auto irq = dev_.pending_irq()) {
    dispatch_irq(*irq);
    return true;
  }
  if (auto next = dev_.next_event_after(cycles_)) {
    next_irq_probe_ = *next;
  } else {
    next_irq_probe_ = cycles_ + 64;
  }
  return false;
}

StopReason Machine::do_sleep() {
  dev_.sync(cycles_);
  if (dev_.sleep_armed()) {
    const uint64_t wake = dev_.sleep_wake_cycle();
    if (wake > cycles_) charge_idle(wake - cycles_);
    dev_.consume_sleep();
    dev_.sync(cycles_);
    return StopReason::Running;
  }
  // Untimed sleep: wait for the next device event that can raise an
  // enabled interrupt; with nothing armed the node would sleep forever.
  if (auto next = dev_.next_event_after(cycles_)) {
    if (*next > cycles_) charge_idle(*next - cycles_);
    dev_.sync(cycles_);
    next_irq_probe_ = 0;
    horizon_ = 0;
    return StopReason::Running;
  }
  return StopReason::Deadlock;
}

StopReason Machine::step() {
  if (stop_ != StopReason::Running) return stop_;
  if (maybe_take_irq()) return StopReason::Running;
  uint32_t pc = pc_;
  uint64_t cycles = cycles_;
  uint64_t insns = stats_.instructions;
  uint8_t sreg = mem_.sreg();
  stop_ = execute_one(pc, cycles, insns, sreg);
  pc_ = pc;
  cycles_ = cycles;
  stats_.instructions = insns;
  mem_.set_sreg(sreg);
  if (stop_ == StopReason::Running && dev_.halted()) stop_ = StopReason::Halted;
  return stop_;
}

StopReason Machine::run(uint64_t max_cycles) {
  const uint64_t limit = cycles_ + max_cycles;
  while (stop_ == StopReason::Running) {
    if (cycles_ >= limit) return StopReason::CycleLimit;
    if (maybe_take_irq()) continue;
    // Event horizon: execute straight-line up to the earliest point where
    // an IRQ probe could matter — the armed probe time when interrupts are
    // on, the budget otherwise. Within the batch there is no per-
    // instruction probe or stop poll; the I/O hook collapses horizon_ to 0
    // when device state changes, and an I-flag transition ends the batch
    // so the probe schedule is re-derived (both keep the instruction-level
    // probe points identical to the unbatched loop).
    const bool irq_on = irq_enabled();
    horizon_ = (irq_on && next_irq_probe_ < limit) ? next_irq_probe_ : limit;
    // Hot state lives in locals for the batch (see execute_one's note);
    // horizon_ stays a member read each iteration because the I/O hook
    // collapses it mid-batch.
    uint32_t pc = pc_;
    uint64_t cycles = cycles_;
    uint64_t insns = stats_.instructions;
    uint8_t sreg = mem_.sreg();
    StopReason s = StopReason::Running;
    while (cycles < horizon_) {
      s = execute_one(pc, cycles, insns, sreg);
      if (s != StopReason::Running) break;
      if (((sreg & (1u << isa::kFlagI)) != 0) != irq_on) break;
    }
    pc_ = pc;
    cycles_ = cycles;
    stats_.instructions = insns;
    mem_.set_sreg(sreg);
    if (s != StopReason::Running) stop_ = s;
    // A halting write to kHostHalt collapses horizon_ through the I/O hook,
    // so the batch is already over when this check runs — no instruction
    // executes after the halt, exactly as with a per-step check.
    if (stop_ == StopReason::Running && dev_.halted())
      stop_ = StopReason::Halted;
  }
  return stop_;
}

// ---------------------------------------------------------------------------
// Instruction semantics.
// ---------------------------------------------------------------------------
namespace {

struct Flags {
  uint8_t sreg;
  void set(int bit, bool v) {
    sreg = static_cast<uint8_t>(v ? (sreg | (1u << bit)) : (sreg & ~(1u << bit)));
  }
  bool get(int bit) const { return (sreg >> bit) & 1u; }
};

void nz_s(Flags& f, uint8_t r) {
  f.set(isa::kFlagN, r & 0x80);
  f.set(isa::kFlagZ, r == 0);
  f.set(isa::kFlagS, f.get(isa::kFlagN) ^ f.get(isa::kFlagV));
}

uint8_t do_add(Flags& f, uint8_t d, uint8_t r, bool carry_in) {
  const uint8_t c = carry_in && f.get(isa::kFlagC) ? 1 : 0;
  const uint8_t res = static_cast<uint8_t>(d + r + c);
  const uint8_t carries =
      static_cast<uint8_t>((d & r) | (r & ~res) | (~res & d));
  f.set(isa::kFlagH, carries & 0x08);
  f.set(isa::kFlagC, carries & 0x80);
  f.set(isa::kFlagV, ((d & r & ~res) | (~d & ~r & res)) & 0x80);
  nz_s(f, res);
  return res;
}

uint8_t do_sub(Flags& f, uint8_t d, uint8_t r, bool carry_in, bool keep_z) {
  const uint8_t c = carry_in && f.get(isa::kFlagC) ? 1 : 0;
  const uint8_t res = static_cast<uint8_t>(d - r - c);
  const uint8_t borrows =
      static_cast<uint8_t>((~d & r) | (r & res) | (res & ~d));
  f.set(isa::kFlagH, borrows & 0x08);
  f.set(isa::kFlagC, borrows & 0x80);
  f.set(isa::kFlagV, ((d & ~r & ~res) | (~d & r & res)) & 0x80);
  const bool old_z = f.get(isa::kFlagZ);
  nz_s(f, res);
  if (keep_z) f.set(isa::kFlagZ, (res == 0) && old_z);
  f.set(isa::kFlagS, f.get(isa::kFlagN) ^ f.get(isa::kFlagV));
  return res;
}

void logic_flags(Flags& f, uint8_t res) {
  f.set(isa::kFlagV, false);
  nz_s(f, res);
}

}  // namespace

uint16_t Machine::pointer_addr(isa::Ptr p) const {
  switch (p) {
    case isa::Ptr::X: return mem_.reg_pair(26);
    case isa::Ptr::Y: return mem_.reg_pair(28);
    default: return mem_.reg_pair(30);
  }
}

void Machine::set_pointer(isa::Ptr p, uint16_t v) {
  switch (p) {
    case isa::Ptr::X: mem_.set_reg_pair(26, v); break;
    case isa::Ptr::Y: mem_.set_reg_pair(28, v); break;
    default: mem_.set_reg_pair(30, v); break;
  }
}

// Shared body for all LD/ST addressing modes. A store to the SREG data
// address must survive the flag write-back at the end of execute_one(),
// hence the refresh of the caller's local flag copy.
void Machine::mem_indirect(uint8_t& sreg_local, const Instruction& ins,
                           bool store, isa::Ptr p, int pre, int post,
                           uint8_t disp) {
  uint16_t a = pointer_addr(p);
  a = static_cast<uint16_t>(a + pre);
  const uint16_t ea = static_cast<uint16_t>(a + disp);
  if (store) {
    mem_.write(ea, mem_.reg(ins.rd));
    if (ea == kSreg) sreg_local = mem_.sreg();
  } else {
    mem_.set_reg(ins.rd, mem_.read(ea));
  }
  a = static_cast<uint16_t>(a + post);
  if (pre != 0 || post != 0) set_pointer(p, a);
}

void Machine::skip_next(uint32_t& next_pc, int& cyc) {
  const int nsize = entry(next_pc).size;
  next_pc += nsize;
  cyc += nsize;  // +1 for 1-word skip, +2 for 2-word skip
}

inline StopReason Machine::execute_one(uint32_t& pc_l, uint64_t& cycles_l,
                                       uint64_t& insns_l, uint8_t& sreg_l) {
  const DecodedInsn& d = entry(pc_l);
  const Instruction& ins = d.ins;
  const uint32_t pc0 = pc_l;
  uint32_t next_pc = pc0 + d.size;
  int cyc = d.cycles;
  bool fuse_break = false;  // call into a trampoline: dispatch its Break here
  uint16_t call_ret = 0;    // the return address that call pushed

  Flags f{sreg_l};
  auto rel_branch = [&](bool taken) {
    if (taken) {
      next_pc = static_cast<uint32_t>(int64_t(pc0) + 1 + ins.k);
      cyc += 1;
    }
  };
  // Bracket for instructions that touch data memory by address. Before the
  // access the world must look exactly as the unbatched loop left it: the
  // clock current (the I/O hook timestamps device sync from cycles_) and
  // ram's SREG equal to the in-flight flag copy (the address may alias
  // SREG). Afterwards ram's SREG is restored from the flag copy — exactly
  // the per-instruction write-back of the unbatched loop, which keeps a
  // stray store that landed on SREG only where a dedicated refresh below
  // reads it back first.
  auto mem_pre = [&] {
    cycles_ = cycles_l;
    mem_.set_sreg(f.sreg);
  };
  auto mem_post = [&] { mem_.set_sreg(f.sreg); };

  using enum Op;
  switch (ins.op) {
    case Add: mem_.set_reg(ins.rd, do_add(f, mem_.reg(ins.rd), mem_.reg(ins.rr), false)); break;
    case Adc: mem_.set_reg(ins.rd, do_add(f, mem_.reg(ins.rd), mem_.reg(ins.rr), true)); break;
    case Sub: mem_.set_reg(ins.rd, do_sub(f, mem_.reg(ins.rd), mem_.reg(ins.rr), false, false)); break;
    case Sbc: mem_.set_reg(ins.rd, do_sub(f, mem_.reg(ins.rd), mem_.reg(ins.rr), true, true)); break;
    case And: { uint8_t r = mem_.reg(ins.rd) & mem_.reg(ins.rr); mem_.set_reg(ins.rd, r); logic_flags(f, r); break; }
    case Or: { uint8_t r = mem_.reg(ins.rd) | mem_.reg(ins.rr); mem_.set_reg(ins.rd, r); logic_flags(f, r); break; }
    case Eor: { uint8_t r = mem_.reg(ins.rd) ^ mem_.reg(ins.rr); mem_.set_reg(ins.rd, r); logic_flags(f, r); break; }
    case Mov: mem_.set_reg(ins.rd, mem_.reg(ins.rr)); break;
    case Cp: do_sub(f, mem_.reg(ins.rd), mem_.reg(ins.rr), false, false); break;
    case Cpc: do_sub(f, mem_.reg(ins.rd), mem_.reg(ins.rr), true, true); break;
    case Cpse: if (mem_.reg(ins.rd) == mem_.reg(ins.rr)) skip_next(next_pc, cyc); break;
    case Mul: {
      const uint16_t r = uint16_t(mem_.reg(ins.rd)) * uint16_t(mem_.reg(ins.rr));
      mem_.set_reg_pair(0, r);
      f.set(isa::kFlagC, r & 0x8000);
      f.set(isa::kFlagZ, r == 0);
      break;
    }

    case Subi: mem_.set_reg(ins.rd, do_sub(f, mem_.reg(ins.rd), uint8_t(ins.k), false, false)); break;
    case Sbci: mem_.set_reg(ins.rd, do_sub(f, mem_.reg(ins.rd), uint8_t(ins.k), true, true)); break;
    case Andi: { uint8_t r = mem_.reg(ins.rd) & uint8_t(ins.k); mem_.set_reg(ins.rd, r); logic_flags(f, r); break; }
    case Ori: { uint8_t r = mem_.reg(ins.rd) | uint8_t(ins.k); mem_.set_reg(ins.rd, r); logic_flags(f, r); break; }
    case Cpi: do_sub(f, mem_.reg(ins.rd), uint8_t(ins.k), false, false); break;
    case Ldi: mem_.set_reg(ins.rd, uint8_t(ins.k)); break;

    case Com: {
      const uint8_t r = static_cast<uint8_t>(~mem_.reg(ins.rd));
      mem_.set_reg(ins.rd, r);
      f.set(isa::kFlagC, true);
      f.set(isa::kFlagV, false);
      nz_s(f, r);
      break;
    }
    case Neg: {
      const uint8_t dd = mem_.reg(ins.rd);
      const uint8_t r = static_cast<uint8_t>(0 - dd);
      mem_.set_reg(ins.rd, r);
      f.set(isa::kFlagH, (r | dd) & 0x08);
      f.set(isa::kFlagC, r != 0);
      f.set(isa::kFlagV, r == 0x80);
      nz_s(f, r);
      break;
    }
    case Swap: {
      const uint8_t dd = mem_.reg(ins.rd);
      mem_.set_reg(ins.rd, static_cast<uint8_t>((dd << 4) | (dd >> 4)));
      break;
    }
    case Inc: {
      const uint8_t dd = mem_.reg(ins.rd);
      const uint8_t r = static_cast<uint8_t>(dd + 1);
      mem_.set_reg(ins.rd, r);
      f.set(isa::kFlagV, dd == 0x7F);
      nz_s(f, r);
      break;
    }
    case Dec: {
      const uint8_t dd = mem_.reg(ins.rd);
      const uint8_t r = static_cast<uint8_t>(dd - 1);
      mem_.set_reg(ins.rd, r);
      f.set(isa::kFlagV, dd == 0x80);
      nz_s(f, r);
      break;
    }
    case Asr: {
      const uint8_t dd = mem_.reg(ins.rd);
      const uint8_t r = static_cast<uint8_t>((dd >> 1) | (dd & 0x80));
      mem_.set_reg(ins.rd, r);
      f.set(isa::kFlagC, dd & 1);
      f.set(isa::kFlagN, r & 0x80);
      f.set(isa::kFlagV, f.get(isa::kFlagN) ^ f.get(isa::kFlagC));
      f.set(isa::kFlagZ, r == 0);
      f.set(isa::kFlagS, f.get(isa::kFlagN) ^ f.get(isa::kFlagV));
      break;
    }
    case Lsr: {
      const uint8_t dd = mem_.reg(ins.rd);
      const uint8_t r = static_cast<uint8_t>(dd >> 1);
      mem_.set_reg(ins.rd, r);
      f.set(isa::kFlagC, dd & 1);
      f.set(isa::kFlagN, false);
      f.set(isa::kFlagV, f.get(isa::kFlagC));
      f.set(isa::kFlagZ, r == 0);
      f.set(isa::kFlagS, f.get(isa::kFlagV));
      break;
    }
    case Ror: {
      const uint8_t dd = mem_.reg(ins.rd);
      const uint8_t r =
          static_cast<uint8_t>((dd >> 1) | (f.get(isa::kFlagC) ? 0x80 : 0));
      mem_.set_reg(ins.rd, r);
      f.set(isa::kFlagC, dd & 1);
      f.set(isa::kFlagN, r & 0x80);
      f.set(isa::kFlagV, f.get(isa::kFlagN) ^ f.get(isa::kFlagC));
      f.set(isa::kFlagZ, r == 0);
      f.set(isa::kFlagS, f.get(isa::kFlagN) ^ f.get(isa::kFlagV));
      break;
    }

    case Adiw: {
      const uint16_t dd = mem_.reg_pair(ins.rd);
      const uint16_t r = static_cast<uint16_t>(dd + ins.k);
      mem_.set_reg_pair(ins.rd, r);
      f.set(isa::kFlagV, (~dd & r) & 0x8000);
      f.set(isa::kFlagC, (~r & dd) & 0x8000);
      f.set(isa::kFlagN, r & 0x8000);
      f.set(isa::kFlagZ, r == 0);
      f.set(isa::kFlagS, f.get(isa::kFlagN) ^ f.get(isa::kFlagV));
      break;
    }
    case Sbiw: {
      const uint16_t dd = mem_.reg_pair(ins.rd);
      const uint16_t r = static_cast<uint16_t>(dd - ins.k);
      mem_.set_reg_pair(ins.rd, r);
      f.set(isa::kFlagV, (dd & ~r) & 0x8000);
      f.set(isa::kFlagC, (r & ~dd) & 0x8000);
      f.set(isa::kFlagN, r & 0x8000);
      f.set(isa::kFlagZ, r == 0);
      f.set(isa::kFlagS, f.get(isa::kFlagN) ^ f.get(isa::kFlagV));
      break;
    }
    case Movw: mem_.set_reg_pair(ins.rd, mem_.reg_pair(ins.rr)); break;

    case Lds:
      mem_pre();
      mem_.set_reg(ins.rd, mem_.read(static_cast<uint16_t>(ins.k)));
      mem_post();
      break;
    case Sts:
      mem_pre();
      mem_.write(static_cast<uint16_t>(ins.k), mem_.reg(ins.rd));
      if (ins.k == kSreg) f.sreg = mem_.sreg();
      mem_post();
      break;

    case LdX: mem_pre(); mem_indirect(f.sreg, ins, false, isa::Ptr::X, 0, 0, 0); mem_post(); break;
    case LdXInc: mem_pre(); mem_indirect(f.sreg, ins, false, isa::Ptr::X, 0, 1, 0); mem_post(); break;
    case LdXDec: mem_pre(); mem_indirect(f.sreg, ins, false, isa::Ptr::X, -1, 0, 0); mem_post(); break;
    case LdYInc: mem_pre(); mem_indirect(f.sreg, ins, false, isa::Ptr::Y, 0, 1, 0); mem_post(); break;
    case LdYDec: mem_pre(); mem_indirect(f.sreg, ins, false, isa::Ptr::Y, -1, 0, 0); mem_post(); break;
    case LdZInc: mem_pre(); mem_indirect(f.sreg, ins, false, isa::Ptr::Z, 0, 1, 0); mem_post(); break;
    case LdZDec: mem_pre(); mem_indirect(f.sreg, ins, false, isa::Ptr::Z, -1, 0, 0); mem_post(); break;
    case Ldd: mem_pre(); mem_indirect(f.sreg, ins, false, ins.ptr, 0, 0, ins.q); mem_post(); break;
    case StX: mem_pre(); mem_indirect(f.sreg, ins, true, isa::Ptr::X, 0, 0, 0); mem_post(); break;
    case StXInc: mem_pre(); mem_indirect(f.sreg, ins, true, isa::Ptr::X, 0, 1, 0); mem_post(); break;
    case StXDec: mem_pre(); mem_indirect(f.sreg, ins, true, isa::Ptr::X, -1, 0, 0); mem_post(); break;
    case StYInc: mem_pre(); mem_indirect(f.sreg, ins, true, isa::Ptr::Y, 0, 1, 0); mem_post(); break;
    case StYDec: mem_pre(); mem_indirect(f.sreg, ins, true, isa::Ptr::Y, -1, 0, 0); mem_post(); break;
    case StZInc: mem_pre(); mem_indirect(f.sreg, ins, true, isa::Ptr::Z, 0, 1, 0); mem_post(); break;
    case StZDec: mem_pre(); mem_indirect(f.sreg, ins, true, isa::Ptr::Z, -1, 0, 0); mem_post(); break;
    case Std: mem_pre(); mem_indirect(f.sreg, ins, true, ins.ptr, 0, 0, ins.q); mem_post(); break;

    case Push: {
      mem_pre();
      const uint16_t sp = mem_.sp();
      mem_.write(sp, mem_.reg(ins.rd));
      mem_.set_sp(static_cast<uint16_t>(sp - 1));
      mem_post();
      break;
    }
    case Pop: {
      mem_pre();
      const uint16_t sp = static_cast<uint16_t>(mem_.sp() + 1);
      mem_.set_reg(ins.rd, mem_.read(sp));
      mem_.set_sp(sp);
      mem_post();
      break;
    }

    case In:
      mem_pre();
      mem_.set_reg(ins.rd, mem_.read(static_cast<uint16_t>(kIoBase + ins.a)));
      mem_post();
      break;
    case Out:
      mem_pre();
      mem_.write(static_cast<uint16_t>(kIoBase + ins.a), mem_.reg(ins.rd));
      // OUT to SREG replaces the local flag copy.
      if (kIoBase + ins.a == kSreg) f.sreg = mem_.sreg();
      mem_post();
      break;
    case Sbi: {
      mem_pre();
      const uint16_t a = static_cast<uint16_t>(kIoBase + ins.a);
      mem_.write(a, static_cast<uint8_t>(mem_.read(a) | (1u << ins.b)));
      mem_post();
      break;
    }
    case Cbi: {
      mem_pre();
      const uint16_t a = static_cast<uint16_t>(kIoBase + ins.a);
      mem_.write(a, static_cast<uint8_t>(mem_.read(a) & ~(1u << ins.b)));
      mem_post();
      break;
    }
    case Sbic:
      mem_pre();
      if ((mem_.read(static_cast<uint16_t>(kIoBase + ins.a)) & (1u << ins.b)) == 0)
        skip_next(next_pc, cyc);
      mem_post();
      break;
    case Sbis:
      mem_pre();
      if ((mem_.read(static_cast<uint16_t>(kIoBase + ins.a)) & (1u << ins.b)) != 0)
        skip_next(next_pc, cyc);
      mem_post();
      break;

    case LpmR0: mem_.set_reg(0, flash_byte(mem_.reg_pair(30))); break;
    case Lpm: mem_.set_reg(ins.rd, flash_byte(mem_.reg_pair(30))); break;
    case LpmInc: {
      const uint16_t z = mem_.reg_pair(30);
      mem_.set_reg(ins.rd, flash_byte(z));
      mem_.set_reg_pair(30, static_cast<uint16_t>(z + 1));
      break;
    }

    case Rjmp: next_pc = static_cast<uint32_t>(int64_t(pc0) + 1 + ins.k); break;
    case Rcall:
      call_ret = static_cast<uint16_t>(pc0 + 1);
      push16(call_ret);
      mem_post();  // stack bytes that alias SREG don't outlive the write-back
      next_pc = static_cast<uint32_t>(int64_t(pc0) + 1 + ins.k);
      fuse_break = true;
      break;
    case Jmp: next_pc = static_cast<uint32_t>(ins.k); break;
    case Call:
      call_ret = static_cast<uint16_t>(pc0 + 2);
      push16(call_ret);
      mem_post();
      next_pc = static_cast<uint32_t>(ins.k);
      fuse_break = true;
      break;
    case Ijmp: next_pc = mem_.reg_pair(30); break;
    case Icall:
      call_ret = static_cast<uint16_t>(pc0 + 1);
      push16(call_ret);
      mem_post();
      next_pc = mem_.reg_pair(30);
      fuse_break = true;
      break;
    case Ret:
      mem_.set_sreg(f.sreg);  // the popped bytes may alias SREG
      next_pc = pop16();
      break;
    case Reti:
      mem_.set_sreg(f.sreg);
      next_pc = pop16();
      f.set(isa::kFlagI, true);
      break;

    case Brbs: rel_branch(f.get(ins.b)); break;
    case Brbc: rel_branch(!f.get(ins.b)); break;
    case Sbrc: if ((mem_.reg(ins.rr) & (1u << ins.b)) == 0) skip_next(next_pc, cyc); break;
    case Sbrs: if ((mem_.reg(ins.rr) & (1u << ins.b)) != 0) skip_next(next_pc, cyc); break;

    case Bset: f.set(ins.b, true); break;
    case Bclr: f.set(ins.b, false); break;

    case Nop:
    case Wdr:
      break;

    case Sleep: {
      sreg_l = f.sreg;
      cycles_l += cyc;
      ++insns_l;
      pc_l = next_pc;
      // do_sleep works on member state: publish the locals, run it, and
      // read back what it changed (the clock, via charge_idle).
      mem_.set_sreg(sreg_l);
      cycles_ = cycles_l;
      stats_.instructions = insns_l;
      pc_ = pc_l;
      const StopReason r = do_sleep();
      cycles_l = cycles_;
      return r;
    }

    case Break: {
      if (service_fn_ != nullptr && pc0 >= service_floor_) {
        sreg_l = f.sreg;
        ++insns_l;
        fused_ret_valid_ = false;  // standalone dispatch: handler must pop
        // The handler works on member state: sets PC, charges cycles,
        // may switch tasks (SREG) or stop the machine. Publish the
        // locals around it and read back everything it may have touched.
        mem_.set_sreg(sreg_l);
        cycles_ = cycles_l;
        stats_.instructions = insns_l;
        pc_ = pc0;
        const bool ok =
            service_fn_(service_ctx_, *this, static_cast<uint32_t>(ins.k));
        pc_l = pc_;
        cycles_l = cycles_;
        insns_l = stats_.instructions;
        sreg_l = mem_.sreg();
        return ok ? stop_ : StopReason::ServiceFault;
      }
      return StopReason::Breakpoint;
    }

    case Invalid:
      return StopReason::InvalidInstruction;
  }

  sreg_l = f.sreg;
  cycles_l += cyc;
  ++insns_l;
  pc_l = next_pc % kFlashWords;

  // Fused trampoline entry: a rewritten site reaches its service via a
  // call (CALL/RCALL/ICALL) into a trampoline whose head is a Break.
  // Between the call and that Break the batched run() loop does nothing
  // but re-check the (unchanged, calls touch neither SREG nor I/O) batch
  // conditions, so when the batch would continue — the clock still short
  // of the horizon — the Break can be dispatched right here, skipping one
  // full fetch/dispatch round per kernel service. Outside those
  // conditions the instruction falls back to the loop and the Break
  // executes normally.
  if (fuse_break && cycles_l < horizon_ && service_fn_ != nullptr &&
      pc_l >= service_floor_) {
    const Instruction& bi = entry(pc_l).ins;
    if (bi.op == Op::Break) {
      ++insns_l;
      fused_ret_ = call_ret;
      fused_ret_valid_ = true;
      mem_.set_sreg(sreg_l);
      cycles_ = cycles_l;
      stats_.instructions = insns_l;
      pc_ = pc_l;
      const bool ok =
          service_fn_(service_ctx_, *this, static_cast<uint32_t>(bi.k));
      pc_l = pc_;
      cycles_l = cycles_;
      insns_l = stats_.instructions;
      sreg_l = mem_.sreg();
      return ok ? stop_ : StopReason::ServiceFault;
    }
  }
  return StopReason::Running;
}

}  // namespace sensmart::emu
