#include "emu/machine.hpp"

#include <stdexcept>

namespace sensmart::emu {

using isa::Instruction;
using isa::Op;

const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::Running: return "running";
    case StopReason::Halted: return "halted";
    case StopReason::CycleLimit: return "cycle-limit";
    case StopReason::InvalidInstruction: return "invalid-instruction";
    case StopReason::Breakpoint: return "breakpoint";
    case StopReason::Deadlock: return "deadlock";
    case StopReason::ServiceFault: return "service-fault";
  }
  return "?";
}

Machine::Machine()
    : flash_(kFlashWords, 0xFFFF),
      dcache_(kFlashWords),
      dcache_valid_(kFlashWords, 0) {
  mem_.set_io_hook([this](uint16_t addr, uint8_t& v, bool write) {
    dev_.sync(cycles_);
    dev_.io_access(addr, v, write);
    next_irq_probe_ = 0;  // device state changed; re-evaluate IRQs
  });
  reset();
}

void Machine::load_flash(std::span<const uint16_t> words, uint32_t base) {
  if (base + words.size() > kFlashWords)
    throw std::out_of_range("flash image too large");
  for (size_t i = 0; i < words.size(); ++i) flash_[base + i] = words[i];
  std::fill(dcache_valid_.begin() + base,
            dcache_valid_.begin() + base + words.size(), 0);
  flash_used_ = std::max<uint32_t>(flash_used_, base + uint32_t(words.size()));
}

void Machine::reset(uint32_t entry_word) {
  pc_ = entry_word % kFlashWords;
  mem_.set_sp(kDataEnd - 1);
  mem_.set_sreg(0);
  stop_ = StopReason::Running;
}

const Instruction& Machine::decoded(uint32_t word_addr) {
  word_addr %= kFlashWords;
  if (!dcache_valid_[word_addr]) {
    dcache_[word_addr] = isa::decode(flash_, word_addr);
    dcache_valid_[word_addr] = 1;
  }
  return dcache_[word_addr];
}

void Machine::push16(uint16_t v) {
  uint16_t sp = mem_.sp();
  mem_.set_raw(sp, static_cast<uint8_t>(v & 0xFF));
  mem_.set_raw(static_cast<uint16_t>(sp - 1), static_cast<uint8_t>(v >> 8));
  mem_.set_sp(static_cast<uint16_t>(sp - 2));
}

uint16_t Machine::pop16() {
  uint16_t sp = mem_.sp();
  const uint8_t hi = mem_.raw(static_cast<uint16_t>(sp + 1));
  const uint8_t lo = mem_.raw(static_cast<uint16_t>(sp + 2));
  mem_.set_sp(static_cast<uint16_t>(sp + 2));
  return static_cast<uint16_t>(lo | (hi << 8));
}

void Machine::dispatch_irq(Irq irq) {
  push16(static_cast<uint16_t>(pc_));
  mem_.set_sreg(mem_.sreg() & ~(1u << isa::kFlagI));
  dev_.acknowledge(irq);
  pc_ = vector_of(irq);
  charge(4);
}

bool Machine::maybe_take_irq() {
  if ((mem_.sreg() & (1u << isa::kFlagI)) == 0) return false;
  if (cycles_ < next_irq_probe_) return false;
  dev_.sync(cycles_);
  if (auto irq = dev_.pending_irq()) {
    dispatch_irq(*irq);
    return true;
  }
  if (auto next = dev_.next_event_after(cycles_)) {
    next_irq_probe_ = *next;
  } else {
    next_irq_probe_ = cycles_ + 64;
  }
  return false;
}

StopReason Machine::do_sleep() {
  dev_.sync(cycles_);
  if (dev_.sleep_armed()) {
    const uint64_t wake = dev_.sleep_wake_cycle();
    if (wake > cycles_) charge_idle(wake - cycles_);
    dev_.consume_sleep();
    dev_.sync(cycles_);
    return StopReason::Running;
  }
  // Untimed sleep: wait for the next device event that can raise an
  // enabled interrupt; with nothing armed the node would sleep forever.
  if (auto next = dev_.next_event_after(cycles_)) {
    if (*next > cycles_) charge_idle(*next - cycles_);
    dev_.sync(cycles_);
    next_irq_probe_ = 0;
    return StopReason::Running;
  }
  return StopReason::Deadlock;
}

StopReason Machine::step() {
  if (stop_ != StopReason::Running) return stop_;
  if (maybe_take_irq()) return StopReason::Running;
  stop_ = execute_one();
  if (stop_ == StopReason::Running && dev_.halted()) stop_ = StopReason::Halted;
  return stop_;
}

StopReason Machine::run(uint64_t max_cycles) {
  const uint64_t limit = cycles_ + max_cycles;
  while (stop_ == StopReason::Running) {
    if (cycles_ >= limit) return StopReason::CycleLimit;
    step();
  }
  return stop_;
}

// ---------------------------------------------------------------------------
// Instruction semantics.
// ---------------------------------------------------------------------------
namespace {

struct Flags {
  uint8_t sreg;
  void set(int bit, bool v) {
    sreg = static_cast<uint8_t>(v ? (sreg | (1u << bit)) : (sreg & ~(1u << bit)));
  }
  bool get(int bit) const { return (sreg >> bit) & 1u; }
};

void nz_s(Flags& f, uint8_t r) {
  f.set(isa::kFlagN, r & 0x80);
  f.set(isa::kFlagZ, r == 0);
  f.set(isa::kFlagS, f.get(isa::kFlagN) ^ f.get(isa::kFlagV));
}

uint8_t do_add(Flags& f, uint8_t d, uint8_t r, bool carry_in) {
  const uint8_t c = carry_in && f.get(isa::kFlagC) ? 1 : 0;
  const uint8_t res = static_cast<uint8_t>(d + r + c);
  const uint8_t carries =
      static_cast<uint8_t>((d & r) | (r & ~res) | (~res & d));
  f.set(isa::kFlagH, carries & 0x08);
  f.set(isa::kFlagC, carries & 0x80);
  f.set(isa::kFlagV, ((d & r & ~res) | (~d & ~r & res)) & 0x80);
  nz_s(f, res);
  return res;
}

uint8_t do_sub(Flags& f, uint8_t d, uint8_t r, bool carry_in, bool keep_z) {
  const uint8_t c = carry_in && f.get(isa::kFlagC) ? 1 : 0;
  const uint8_t res = static_cast<uint8_t>(d - r - c);
  const uint8_t borrows =
      static_cast<uint8_t>((~d & r) | (r & res) | (res & ~d));
  f.set(isa::kFlagH, borrows & 0x08);
  f.set(isa::kFlagC, borrows & 0x80);
  f.set(isa::kFlagV, ((d & ~r & ~res) | (~d & r & res)) & 0x80);
  const bool old_z = f.get(isa::kFlagZ);
  nz_s(f, res);
  if (keep_z) f.set(isa::kFlagZ, (res == 0) && old_z);
  f.set(isa::kFlagS, f.get(isa::kFlagN) ^ f.get(isa::kFlagV));
  return res;
}

void logic_flags(Flags& f, uint8_t res) {
  f.set(isa::kFlagV, false);
  nz_s(f, res);
}

}  // namespace

StopReason Machine::execute_one() {
  const Instruction& ins = decoded(pc_);
  const uint32_t pc0 = pc_;
  const int size = isa::size_words(ins.op);
  uint32_t next_pc = pc_ + size;
  int cyc = isa::base_cycles(ins.op);

  Flags f{mem_.sreg()};
  auto reg = [this](uint8_t r) { return mem_.reg(r); };
  auto set_reg = [this](uint8_t r, uint8_t v) { mem_.set_reg(r, v); };

  auto pointer_addr = [this](isa::Ptr p) -> uint16_t {
    switch (p) {
      case isa::Ptr::X: return mem_.reg_pair(26);
      case isa::Ptr::Y: return mem_.reg_pair(28);
      default: return mem_.reg_pair(30);
    }
  };
  auto set_pointer = [this](isa::Ptr p, uint16_t v) {
    switch (p) {
      case isa::Ptr::X: mem_.set_reg_pair(26, v); break;
      case isa::Ptr::Y: mem_.set_reg_pair(28, v); break;
      default: mem_.set_reg_pair(30, v); break;
    }
  };
  // Shared body for all LD/ST addressing modes. A store to the SREG data
  // address must survive the flag write-back at the end of this function,
  // hence the refresh of the local flag copy.
  auto mem_indirect = [&](bool store, isa::Ptr p, int pre, int post,
                          uint8_t disp) {
    uint16_t a = pointer_addr(p);
    a = static_cast<uint16_t>(a + pre);
    const uint16_t ea = static_cast<uint16_t>(a + disp);
    if (store) {
      mem_.write(ea, reg(ins.rd));
      if (ea == kSreg) f.sreg = mem_.sreg();
    } else {
      set_reg(ins.rd, mem_.read(ea));
    }
    a = static_cast<uint16_t>(a + post);
    if (pre != 0 || post != 0) set_pointer(p, a);
  };
  auto skip_next = [&] {
    const Instruction& nxt = decoded(next_pc);
    const int nsize = isa::size_words(nxt.op);
    next_pc += nsize;
    cyc += nsize;  // +1 for 1-word skip, +2 for 2-word skip
  };
  auto rel_branch = [&](bool taken) {
    if (taken) {
      next_pc = static_cast<uint32_t>(int64_t(pc0) + 1 + ins.k);
      cyc += 1;
    }
  };

  using enum Op;
  switch (ins.op) {
    case Add: set_reg(ins.rd, do_add(f, reg(ins.rd), reg(ins.rr), false)); break;
    case Adc: set_reg(ins.rd, do_add(f, reg(ins.rd), reg(ins.rr), true)); break;
    case Sub: set_reg(ins.rd, do_sub(f, reg(ins.rd), reg(ins.rr), false, false)); break;
    case Sbc: set_reg(ins.rd, do_sub(f, reg(ins.rd), reg(ins.rr), true, true)); break;
    case And: { uint8_t r = reg(ins.rd) & reg(ins.rr); set_reg(ins.rd, r); logic_flags(f, r); break; }
    case Or: { uint8_t r = reg(ins.rd) | reg(ins.rr); set_reg(ins.rd, r); logic_flags(f, r); break; }
    case Eor: { uint8_t r = reg(ins.rd) ^ reg(ins.rr); set_reg(ins.rd, r); logic_flags(f, r); break; }
    case Mov: set_reg(ins.rd, reg(ins.rr)); break;
    case Cp: do_sub(f, reg(ins.rd), reg(ins.rr), false, false); break;
    case Cpc: do_sub(f, reg(ins.rd), reg(ins.rr), true, true); break;
    case Cpse: if (reg(ins.rd) == reg(ins.rr)) skip_next(); break;
    case Mul: {
      const uint16_t r = uint16_t(reg(ins.rd)) * uint16_t(reg(ins.rr));
      mem_.set_reg_pair(0, r);
      f.set(isa::kFlagC, r & 0x8000);
      f.set(isa::kFlagZ, r == 0);
      break;
    }

    case Subi: set_reg(ins.rd, do_sub(f, reg(ins.rd), uint8_t(ins.k), false, false)); break;
    case Sbci: set_reg(ins.rd, do_sub(f, reg(ins.rd), uint8_t(ins.k), true, true)); break;
    case Andi: { uint8_t r = reg(ins.rd) & uint8_t(ins.k); set_reg(ins.rd, r); logic_flags(f, r); break; }
    case Ori: { uint8_t r = reg(ins.rd) | uint8_t(ins.k); set_reg(ins.rd, r); logic_flags(f, r); break; }
    case Cpi: do_sub(f, reg(ins.rd), uint8_t(ins.k), false, false); break;
    case Ldi: set_reg(ins.rd, uint8_t(ins.k)); break;

    case Com: {
      const uint8_t r = static_cast<uint8_t>(~reg(ins.rd));
      set_reg(ins.rd, r);
      f.set(isa::kFlagC, true);
      f.set(isa::kFlagV, false);
      nz_s(f, r);
      break;
    }
    case Neg: {
      const uint8_t d = reg(ins.rd);
      const uint8_t r = static_cast<uint8_t>(0 - d);
      set_reg(ins.rd, r);
      f.set(isa::kFlagH, (r | d) & 0x08);
      f.set(isa::kFlagC, r != 0);
      f.set(isa::kFlagV, r == 0x80);
      nz_s(f, r);
      break;
    }
    case Swap: {
      const uint8_t d = reg(ins.rd);
      set_reg(ins.rd, static_cast<uint8_t>((d << 4) | (d >> 4)));
      break;
    }
    case Inc: {
      const uint8_t d = reg(ins.rd);
      const uint8_t r = static_cast<uint8_t>(d + 1);
      set_reg(ins.rd, r);
      f.set(isa::kFlagV, d == 0x7F);
      nz_s(f, r);
      break;
    }
    case Dec: {
      const uint8_t d = reg(ins.rd);
      const uint8_t r = static_cast<uint8_t>(d - 1);
      set_reg(ins.rd, r);
      f.set(isa::kFlagV, d == 0x80);
      nz_s(f, r);
      break;
    }
    case Asr: {
      const uint8_t d = reg(ins.rd);
      const uint8_t r = static_cast<uint8_t>((d >> 1) | (d & 0x80));
      set_reg(ins.rd, r);
      f.set(isa::kFlagC, d & 1);
      f.set(isa::kFlagN, r & 0x80);
      f.set(isa::kFlagV, f.get(isa::kFlagN) ^ f.get(isa::kFlagC));
      f.set(isa::kFlagZ, r == 0);
      f.set(isa::kFlagS, f.get(isa::kFlagN) ^ f.get(isa::kFlagV));
      break;
    }
    case Lsr: {
      const uint8_t d = reg(ins.rd);
      const uint8_t r = static_cast<uint8_t>(d >> 1);
      set_reg(ins.rd, r);
      f.set(isa::kFlagC, d & 1);
      f.set(isa::kFlagN, false);
      f.set(isa::kFlagV, f.get(isa::kFlagC));
      f.set(isa::kFlagZ, r == 0);
      f.set(isa::kFlagS, f.get(isa::kFlagV));
      break;
    }
    case Ror: {
      const uint8_t d = reg(ins.rd);
      const uint8_t r =
          static_cast<uint8_t>((d >> 1) | (f.get(isa::kFlagC) ? 0x80 : 0));
      set_reg(ins.rd, r);
      f.set(isa::kFlagC, d & 1);
      f.set(isa::kFlagN, r & 0x80);
      f.set(isa::kFlagV, f.get(isa::kFlagN) ^ f.get(isa::kFlagC));
      f.set(isa::kFlagZ, r == 0);
      f.set(isa::kFlagS, f.get(isa::kFlagN) ^ f.get(isa::kFlagV));
      break;
    }

    case Adiw: {
      const uint16_t d = mem_.reg_pair(ins.rd);
      const uint16_t r = static_cast<uint16_t>(d + ins.k);
      mem_.set_reg_pair(ins.rd, r);
      f.set(isa::kFlagV, (~d & r) & 0x8000);
      f.set(isa::kFlagC, (~r & d) & 0x8000);
      f.set(isa::kFlagN, r & 0x8000);
      f.set(isa::kFlagZ, r == 0);
      f.set(isa::kFlagS, f.get(isa::kFlagN) ^ f.get(isa::kFlagV));
      break;
    }
    case Sbiw: {
      const uint16_t d = mem_.reg_pair(ins.rd);
      const uint16_t r = static_cast<uint16_t>(d - ins.k);
      mem_.set_reg_pair(ins.rd, r);
      f.set(isa::kFlagV, (d & ~r) & 0x8000);
      f.set(isa::kFlagC, (r & ~d) & 0x8000);
      f.set(isa::kFlagN, r & 0x8000);
      f.set(isa::kFlagZ, r == 0);
      f.set(isa::kFlagS, f.get(isa::kFlagN) ^ f.get(isa::kFlagV));
      break;
    }
    case Movw: mem_.set_reg_pair(ins.rd, mem_.reg_pair(ins.rr)); break;

    case Lds: set_reg(ins.rd, mem_.read(static_cast<uint16_t>(ins.k))); break;
    case Sts:
      mem_.write(static_cast<uint16_t>(ins.k), reg(ins.rd));
      if (ins.k == kSreg) f.sreg = mem_.sreg();
      break;

    case LdX: mem_indirect(false, isa::Ptr::X, 0, 0, 0); break;
    case LdXInc: mem_indirect(false, isa::Ptr::X, 0, 1, 0); break;
    case LdXDec: mem_indirect(false, isa::Ptr::X, -1, 0, 0); break;
    case LdYInc: mem_indirect(false, isa::Ptr::Y, 0, 1, 0); break;
    case LdYDec: mem_indirect(false, isa::Ptr::Y, -1, 0, 0); break;
    case LdZInc: mem_indirect(false, isa::Ptr::Z, 0, 1, 0); break;
    case LdZDec: mem_indirect(false, isa::Ptr::Z, -1, 0, 0); break;
    case Ldd: mem_indirect(false, ins.ptr, 0, 0, ins.q); break;
    case StX: mem_indirect(true, isa::Ptr::X, 0, 0, 0); break;
    case StXInc: mem_indirect(true, isa::Ptr::X, 0, 1, 0); break;
    case StXDec: mem_indirect(true, isa::Ptr::X, -1, 0, 0); break;
    case StYInc: mem_indirect(true, isa::Ptr::Y, 0, 1, 0); break;
    case StYDec: mem_indirect(true, isa::Ptr::Y, -1, 0, 0); break;
    case StZInc: mem_indirect(true, isa::Ptr::Z, 0, 1, 0); break;
    case StZDec: mem_indirect(true, isa::Ptr::Z, -1, 0, 0); break;
    case Std: mem_indirect(true, ins.ptr, 0, 0, ins.q); break;

    case Push: {
      const uint16_t sp = mem_.sp();
      mem_.write(sp, reg(ins.rd));
      mem_.set_sp(static_cast<uint16_t>(sp - 1));
      break;
    }
    case Pop: {
      const uint16_t sp = static_cast<uint16_t>(mem_.sp() + 1);
      set_reg(ins.rd, mem_.read(sp));
      mem_.set_sp(sp);
      break;
    }

    case In: set_reg(ins.rd, mem_.read(static_cast<uint16_t>(kIoBase + ins.a))); break;
    case Out:
      mem_.write(static_cast<uint16_t>(kIoBase + ins.a), reg(ins.rd));
      // OUT to SREG replaces the local flag copy.
      if (kIoBase + ins.a == kSreg) f.sreg = mem_.sreg();
      break;
    case Sbi: {
      const uint16_t a = static_cast<uint16_t>(kIoBase + ins.a);
      mem_.write(a, static_cast<uint8_t>(mem_.read(a) | (1u << ins.b)));
      break;
    }
    case Cbi: {
      const uint16_t a = static_cast<uint16_t>(kIoBase + ins.a);
      mem_.write(a, static_cast<uint8_t>(mem_.read(a) & ~(1u << ins.b)));
      break;
    }
    case Sbic:
      if ((mem_.read(static_cast<uint16_t>(kIoBase + ins.a)) & (1u << ins.b)) == 0)
        skip_next();
      break;
    case Sbis:
      if ((mem_.read(static_cast<uint16_t>(kIoBase + ins.a)) & (1u << ins.b)) != 0)
        skip_next();
      break;

    case LpmR0: set_reg(0, flash_byte(mem_.reg_pair(30))); break;
    case Lpm: set_reg(ins.rd, flash_byte(mem_.reg_pair(30))); break;
    case LpmInc: {
      const uint16_t z = mem_.reg_pair(30);
      set_reg(ins.rd, flash_byte(z));
      mem_.set_reg_pair(30, static_cast<uint16_t>(z + 1));
      break;
    }

    case Rjmp: next_pc = static_cast<uint32_t>(int64_t(pc0) + 1 + ins.k); break;
    case Rcall:
      push16(static_cast<uint16_t>(pc0 + 1));
      next_pc = static_cast<uint32_t>(int64_t(pc0) + 1 + ins.k);
      break;
    case Jmp: next_pc = static_cast<uint32_t>(ins.k); break;
    case Call:
      push16(static_cast<uint16_t>(pc0 + 2));
      next_pc = static_cast<uint32_t>(ins.k);
      break;
    case Ijmp: next_pc = mem_.reg_pair(30); break;
    case Icall:
      push16(static_cast<uint16_t>(pc0 + 1));
      next_pc = mem_.reg_pair(30);
      break;
    case Ret: next_pc = pop16(); break;
    case Reti:
      next_pc = pop16();
      f.set(isa::kFlagI, true);
      break;

    case Brbs: rel_branch(f.get(ins.b)); break;
    case Brbc: rel_branch(!f.get(ins.b)); break;
    case Sbrc: if ((reg(ins.rr) & (1u << ins.b)) == 0) skip_next(); break;
    case Sbrs: if ((reg(ins.rr) & (1u << ins.b)) != 0) skip_next(); break;

    case Bset: f.set(ins.b, true); break;
    case Bclr: f.set(ins.b, false); break;

    case Nop:
    case Wdr:
      break;

    case Sleep: {
      mem_.set_sreg(f.sreg);
      charge(cyc);
      ++stats_.instructions;
      pc_ = next_pc;
      return do_sleep();
    }

    case Break: {
      if (service_hook_ && pc0 >= service_floor_) {
        mem_.set_sreg(f.sreg);
        ++stats_.instructions;
        // The hook performs the service: sets PC, charges cycles. It may
        // also stop the machine (e.g. when the last task exits).
        if (!service_hook_(*this)) return StopReason::ServiceFault;
        return stop_;
      }
      return StopReason::Breakpoint;
    }

    case Invalid:
      return StopReason::InvalidInstruction;
  }

  mem_.set_sreg(f.sreg);
  charge(cyc);
  ++stats_.instructions;
  pc_ = next_pc % kFlashWords;
  return StopReason::Running;
}

}  // namespace sensmart::emu
