// DataMemory is header-only; this TU anchors the target.
#include "emu/memory.hpp"
