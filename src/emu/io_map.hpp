// Data-memory layout and I/O register assignment of the emulated mote.
//
// The map mirrors an ATmega128-based MICA2 mote closely enough for the
// paper's experiments: 32 mapped registers, a 64-byte I/O window reachable
// by IN/OUT, an extended I/O window (memory-mapped only), and 4 KB of SRAM.
//
//   0x0000..0x001F  r0..r31 (memory-mapped register file)
//   0x0020..0x005F  I/O space (IN/OUT address A maps to 0x20 + A)
//   0x0060..0x00FF  extended I/O (timers 3, radio, host simulation ports)
//   0x0100..0x10FF  SRAM (the "application area" + kernel area of Fig. 2)
#pragma once

#include <cstdint>

namespace sensmart::emu {

inline constexpr uint16_t kRegFileBase = 0x0000;
inline constexpr uint16_t kIoBase = 0x0020;
inline constexpr uint16_t kExtIoBase = 0x0060;
inline constexpr uint16_t kSramBase = 0x0100;
inline constexpr uint16_t kDataEnd = 0x1100;  // M in the paper: 4352
inline constexpr uint16_t kSramSize = kDataEnd - kSramBase;  // 4096

// --- I/O space registers (given as data addresses; IN/OUT use addr-0x20).
inline constexpr uint16_t kAdcL = 0x24;     // ADC result, low byte
inline constexpr uint16_t kAdcH = 0x25;     // ADC result, high byte
inline constexpr uint16_t kAdcsra = 0x26;   // bit7 = start, bit4 = done
inline constexpr uint16_t kAdmux = 0x27;    // channel select
inline constexpr uint16_t kPortB = 0x38;    // LEDs
inline constexpr uint16_t kOcr0 = 0x51;     // Timer0 compare value
inline constexpr uint16_t kTcnt0 = 0x52;    // Timer0 counter
inline constexpr uint16_t kTccr0 = 0x53;    // Timer0 control (prescaler sel)
inline constexpr uint16_t kTifr = 0x56;     // bit0 = T0 OVF, bit1 = T0 COMP
inline constexpr uint16_t kTimsk = 0x57;    // interrupt masks, same bits
inline constexpr uint16_t kSpl = 0x5D;
inline constexpr uint16_t kSph = 0x5E;
inline constexpr uint16_t kSreg = 0x5F;

// --- Extended I/O: radio (simplified CC1000-class byte radio).
inline constexpr uint16_t kRadioData = 0x60;    // write: enqueue TX byte
inline constexpr uint16_t kRadioCtrl = 0x61;    // write 1: send buffer
inline constexpr uint16_t kRadioStatus = 0x62;  // bit0 = TX busy
inline constexpr uint16_t kRadioRxData = 0x63;  // read: pop next RX byte
inline constexpr uint16_t kRadioRxAvail = 0x64; // read: buffered RX bytes
// --- Extended I/O: host/simulation ports (the moral equivalent of the
// debug ports sensor-net simulators expose for instrumentation).
inline constexpr uint16_t kHostOut = 0x78;      // write: append to host log
inline constexpr uint16_t kHostHalt = 0x79;     // write: program exit
inline constexpr uint16_t kHostRandL = 0x7A;    // read: LFSR random, low
inline constexpr uint16_t kHostRandH = 0x7B;    // read: LFSR random, high
inline constexpr uint16_t kSleepTargetL = 0x70; // timed-sleep tick target
inline constexpr uint16_t kSleepTargetH = 0x71; // (write H arms the sleep)
// --- Extended I/O: Timer3 (reserved by the SenSmart kernel as the global
// clock; applications read it through kernel interception).
inline constexpr uint16_t kTcnt3L = 0x88;
inline constexpr uint16_t kTcnt3H = 0x89;
inline constexpr uint16_t kTccr3 = 0x8A;

// Interrupt request lines. Vector for line i is flash word 2 + 2*i
// (word 0 is the reset vector).
enum class Irq : uint8_t { Timer0Ovf = 0, Timer0Comp = 1, Adc = 2, Radio = 3 };
inline constexpr int kNumIrqs = 4;
inline constexpr uint32_t kResetVector = 0;
inline uint32_t vector_of(Irq irq) { return 2 + 2 * uint32_t(irq); }

// MICA2 clock.
inline constexpr uint32_t kClockHz = 7'372'800;
// Timer3 prescaler: global tick = cycles / 256 (28 800 ticks/s).
inline constexpr uint32_t kTimer3Prescale = 256;

}  // namespace sensmart::emu
