// The SenSmart kernel runtime (§IV): preemptive round-robin scheduling via
// software traps, logical addressing with per-task memory regions, and
// versatile stack management with run-time stack relocation.
//
// The kernel executes natively, entered through the trampoline service hook
// of the emulated machine. Every handler charges the emulated cycle cost of
// the equivalent AVR trampoline/kernel sequence; the cost model defaults
// are calibrated against Table II of the paper and are measured back out by
// bench/table2_overhead.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "emu/machine.hpp"
#include "kernel/trace.hpp"
#include "rewriter/linker.hpp"

namespace sensmart::kern {

// Cycle charges for kernel operations (Table II). Values are totals per
// operation as observed by the running program; handlers subtract the 4
// cycles the trampoline CALL itself consumed.
struct CostModel {
  uint32_t init = 5738;          // system initialization
  uint32_t direct_other = 28;    // direct (LDS/STS) heap access
  uint32_t direct_fast = 16;     // statically-in-heap LDS/STS: displacement
                                 // only, no run-time area classification
  uint32_t ind_io = 54;          // indirect access landing in the I/O area
  uint32_t ind_heap = 60;        // indirect heap access (group leader/full)
  uint32_t ind_stack = 47;       // indirect stack-frame access
  uint32_t ind_grouped = 18;     // grouped-access follower
  uint32_t ind_coalesced = 26;   // provenance-coalesced access: bounds
                                 // re-check against the cached window, no
                                 // full translation
  uint32_t stack_pushpop = 57;   // checked PUSH/POP
  uint32_t stack_run_member = 9; // each collapsed stack-run member beyond
                                 // the leader (1 cycle of which the
                                 // placeholder NOP pays natively)
  uint32_t stack_callret = 77;   // checked CALL/RET
  uint32_t prog_mem = 376;       // program-memory address translation
  uint32_t get_sp = 45;          // IN pair from SPL/SPH (total)
  uint32_t set_sp = 94;          // OUT pair to SPL/SPH (total)
  uint32_t reloc_base = 326;     // stack relocation, fixed part
  uint32_t reloc_per_byte = 8;   // stack relocation, per byte moved
  uint32_t ctx_save = 932;
  uint32_t ctx_restore = 976;
  uint32_t ctx_sched = 390;      // scheduler bookkeeping (full switch 2298)
  uint32_t trap_fast = 8;        // backward-branch trampoline, common path
  uint32_t trap_check = 60;      // 1/256 counter wrap: slice check
  uint32_t reserved_io = 40;     // kernel-virtualized port access
  uint32_t fwd_branch = 6;       // relayed forward branch
  uint32_t sleep_svc = 120;      // blocking sleep service
  uint32_t task_restart = 1840;  // supervisor restart: region re-init,
                                 // entry-context staging, run-queue insert
};

// A deterministic fault injection: when the kernel's cumulative service-call
// count reaches `at_service_call`, task `task` is killed (if still live) at
// that service boundary — before the service executes. Schedules must be
// sorted by `at_service_call`; at most one kill fires per service entry.
struct InjectedKill {
  uint64_t at_service_call = 0;
  uint8_t task = 0;
};

// Task supervision (DESIGN.md §8). When enabled, a kill is no longer
// terminal: the supervisor re-initializes the task's logical regions in
// place (heap and stack bytes zeroed, region boundaries untouched) and
// restarts it from its entry point after a capped exponential backoff.
// A task that fails `max_restarts` consecutive times — without executing
// `healthy_services` non-branch kernel services in between — is
// quarantined: terminally killed and its region reclaimed for relocation.
//
// The watchdog is independent of restart policy: a task that accumulates
// `watchdog_cycles` of CPU time without making a single non-branch kernel
// service is presumed stuck in a register-only loop and is killed with
// KillReason::Watchdog (then restarted, if supervision is enabled). It is
// checked at slice-check granularity (1/trap_interval backward branches),
// so containment lags the budget by up to one check interval.
struct SupervisorConfig {
  bool enabled = false;
  uint16_t max_restarts = 3;         // consecutive failures before quarantine
  uint64_t backoff_cycles = 16'384;  // first restart delay; doubles per failure
  uint32_t backoff_cap_exp = 6;      // delay capped at backoff_cycles << this
  uint64_t healthy_services = 256;   // non-branch services that clear a streak
  uint64_t watchdog_cycles = 0;      // 0 = watchdog off (CPU cycles per task)
};

struct KernelConfig {
  uint16_t kernel_ram = 416;     // ~10% of data memory, reserved at the top
  uint16_t initial_stack = 128;  // predefined initial stack size (§IV-C3)
  uint16_t min_stack = 24;       // admission minimum per task
  uint16_t stack_margin = 8;     // red zone below which relocation triggers
  uint32_t slice_cycles = 7373;  // round-robin time slice (~1 ms)
  uint16_t trap_interval = 256;  // kernel entry on 1-out-of-N backward branches
  uint64_t warmup_cycles = 0;    // one-time start-up charge (t-kernel mode)
  bool protect_app_regions = true;  // false: t-kernel-style asymmetric
                                    // protection, identity addressing
  // Opt-in auditor: after every move_regions/release_region/kill_task the
  // kernel re-checks the region invariants and verifies byte-for-byte that
  // each live task's heap and live stack contents survived the slide.
  // Auditing charges no emulated cycles, so an audited run is cycle- and
  // trace-identical to an unaudited one.
  bool audit = false;
  // Deterministic fault-injection schedule (chaos testing); sorted.
  std::vector<InjectedKill> injected_kills;
  // Crash recovery: task restart/quarantine policy and runaway watchdog.
  SupervisorConfig supervise;
  CostModel costs;
};

// Provenance of an installed image. For a locally linked system the default
// (not over-the-air) applies; for an image received via radio dissemination
// the network layer records where the bytes came from and what receiving
// them cost, so per-node install statistics survive into the kernel.
struct InstallInfo {
  bool over_the_air = false;
  uint16_t node_id = 0;        // network node that received the image
  uint8_t image_version = 0;   // protocol image version
  uint32_t image_bytes = 0;    // serialized image size
  uint32_t image_crc = 0;      // verified whole-image CRC-32
  uint64_t rx_cycles = 0;      // dissemination duration (node-observed)
  uint64_t frames_rx = 0;      // frames received during dissemination
  uint64_t nacks_sent = 0;     // repair requests issued
  uint64_t crc_rejects = 0;    // corrupted frames detected and discarded
  uint64_t bytes_rx = 0;       // radio bytes received
  uint64_t bytes_tx = 0;       // radio bytes sent (Nacks/Acks)
};

enum class TaskState : uint8_t { Ready, Running, Blocked, Done, Killed };
enum class KillReason : uint8_t {
  None,
  InvalidAccess,     // out-of-region memory access / stack underflow
  OutOfStackMemory,  // no donor could provide stack space
  BadJump,           // indirect jump outside the program
  Injected,          // deterministic fault injection (chaos testing)
  Watchdog,          // no kernel service within the watchdog budget
};

const char* to_string(TaskState s);
const char* to_string(KillReason r);

struct Task {
  uint8_t id = 0;
  size_t program = 0;  // index into LinkedSystem::programs
  TaskState state = TaskState::Ready;
  KillReason kill_reason = KillReason::None;
  uint8_t exit_code = 0;

  // Region pointers (physical): heap [p_l, p_h), stack grows down from p_u.
  uint16_t p_l = 0, p_h = 0, p_u = 0;

  // Saved context (valid while not Running).
  std::array<uint8_t, 32> regs{};
  uint8_t sreg = 0;
  uint16_t sp = 0;
  uint32_t pc = 0;

  // Blocking state.
  uint64_t wake_cycle = 0;

  // Virtualized reserved ports.
  uint8_t sleep_target_l = 0;
  bool sleep_armed = false;
  uint64_t sleep_wake_cycle = 0;
  uint8_t tcnt3_latch = 0;
  std::vector<uint8_t> host_out;

  // Recovery state (KernelConfig::supervise).
  uint32_t restarts = 0;        // supervisor restarts consumed so far
  uint16_t restart_streak = 0;  // consecutive failures since last healthy run
  uint32_t watchdog_fires = 0;  // runaway containments for this task
  bool quarantined = false;     // terminally killed by the supervisor
  uint64_t wd_cpu_mark = 0;     // task CPU time at last non-branch service
  uint64_t healthy_streak = 0;  // non-branch services since last restart

  // Statistics.
  uint64_t cpu_cycles = 0;
  uint16_t final_stack_alloc = 0;  // allocation at exit (region is
                                   // released afterwards)
  uint16_t peak_stack_used = 0;    // deepest stack use, in bytes below the
                                   // logical stack bottom (relocation-safe)

  uint16_t region_size() const { return static_cast<uint16_t>(p_u - p_l); }
  uint16_t stack_alloc() const { return static_cast<uint16_t>(p_u - p_h); }
  bool live() const {
    return state != TaskState::Done && state != TaskState::Killed;
  }
};

struct KernelStats {
  uint64_t service_calls = 0;
  uint64_t service_cycles = 0;  // emulated cycles charged by service
                                // handlers (incl. the trampoline CALL)
  uint64_t stack_run_members = 0;  // follower ops executed inside collapsed
                                   // stack-run leader traps (§6d)
  uint64_t traps = 0;          // backward-branch trampoline entries
  uint64_t trap_checks = 0;    // 1/N counter wraps (kernel slice checks)
  uint64_t context_switches = 0;
  uint64_t mem_translations = 0;
  // Translation-window invalidations: cache rebuilds forced by a region-map
  // mutation after start (relocation, release, kill) — the runtime half of
  // the coalescing contract (DESIGN.md §6d).
  uint64_t window_invalidations = 0;
  uint32_t relocations = 0;
  uint64_t reloc_bytes_moved = 0;
  uint64_t reloc_cycles = 0;
  uint32_t kills = 0;
  uint32_t injected_kills = 0;  // of which: deterministic fault injections
  // Recovery counters (only move when KernelConfig::supervise is enabled,
  // except watchdog_fires, which the standalone watchdog also drives).
  uint32_t restarts = 0;
  uint32_t quarantines = 0;
  uint32_t watchdog_fires = 0;
  uint64_t idle_cycles = 0;
  // Auditor counters (only move when KernelConfig::audit is set).
  uint64_t audit_checks = 0;
  uint32_t audit_failures = 0;
  // Preemption delay: cycles by which preemption lagged the slice end
  // (software traps are aperiodic, §IV-B).
  uint64_t preempt_delay_max = 0;
  uint64_t preempt_delay_sum = 0;
  uint64_t preemptions = 0;
};

class Kernel {
 public:
  Kernel(emu::Machine& machine, const rw::LinkedSystem& sys,
         KernelConfig cfg = {});

  // Image-install entry point: the kernel takes ownership of a system that
  // was reconstructed from received bytes (net::deserialize_system), so the
  // installed image outlives the dissemination buffers it came from. Only a
  // fully verified image may reach this constructor — the network layer
  // never surfaces partial or corrupted blobs.
  Kernel(emu::Machine& machine, rw::LinkedSystem&& sys, KernelConfig cfg = {},
         InstallInfo install = {});

  // Fleet-install entry point: many nodes received byte-identical images,
  // so the deserialized system and its pre-decoded flash image are built
  // once and shared read-only across every installing kernel
  // (Machine::adopt_image) instead of re-parsed and re-loaded per node.
  // Behaviorally identical to the owning constructor for the same bytes.
  Kernel(emu::Machine& machine, std::shared_ptr<const rw::LinkedSystem> sys,
         std::shared_ptr<const emu::Machine::SharedImage> image,
         KernelConfig cfg = {}, InstallInfo install = {});

  // Create a task running program `program_index`. Fails (returns nullopt)
  // if admission would leave some task below the minimum stack. Must be
  // called before start().
  std::optional<uint8_t> admit(size_t program_index);
  // Admit one task per linked program; returns the number admitted.
  size_t admit_all();

  // Lay out memory regions, charge system-initialization cost, and make the
  // first task runnable. Returns false if no task was admitted.
  bool start();

  // Run until every task is Done/Killed or `max_cycles` elapse.
  emu::StopReason run(uint64_t max_cycles);

  // --- Introspection ---------------------------------------------------------
  const std::vector<Task>& tasks() const { return tasks_; }
  const KernelStats& stats() const { return stats_; }
  const KernelConfig& config() const { return cfg_; }
  // How this kernel's image was installed (defaults for local linking).
  const InstallInfo& install_info() const { return install_; }
  const rw::LinkedSystem& system() const { return *sys_; }
  bool all_stopped() const;
  size_t live_count() const;
  // Time-averaged stack allocation per live task (bytes), integrated over
  // the whole run — the "average stack allocation" metric of Fig. 7.
  double avg_stack_alloc() const;
  uint16_t app_area_end() const { return kernel_base_; }

  // Verify region invariants (contiguous tiling, pointer ordering); used by
  // tests and property checks. Returns an error description or empty.
  std::string check_invariants() const;

  // Audit failure descriptions recorded so far (bounded; empty unless
  // KernelConfig::audit is set and a violation was detected).
  const std::vector<std::string>& audit_log() const { return audit_log_; }

  // Attach an event trace (not owned); nullptr detaches. Zero emulated
  // cycle cost.
  void set_trace(KernelTrace* trace) { trace_ = trace; }

 private:
  friend struct KernelTestPeer;

  // --- Service dispatch (kernel.cpp) ----------------------------------------
  // Raw handler registered with Machine::set_service_handler — a plain
  // function pointer, so every trap avoids the std::function indirection.
  static bool service_thunk(void* self, emu::Machine& m, uint32_t svc_arg);
  bool on_service(emu::Machine& m, uint32_t idx);

  // Link-time-constant facts about each trampoline, flattened at kernel
  // construction: the hot handlers read one small struct per trap instead
  // of re-deriving pointer register / pre-post mode / store-ness through
  // the out-of-line isa classification switches.
  struct CompiledSvc {
    rw::ServiceKind kind = rw::ServiceKind::MemIndirect;
    uint8_t ptr_reg = 30;  // 26/28/30 for X/Y/Z
    int8_t pre = 0;
    int8_t post = 0;
    uint8_t rd = 0;
    uint8_t q = 0;
    uint8_t group_min = 0;
    uint8_t group_span = 0;
    bool store = false;
    bool is_push = false;
    uint8_t run_n = 0;        // collapsed stack-run followers (0..3)
    uint8_t run_rd[3] = {0, 0, 0};  // their registers, in run order
  };

  // Cost tier of an indirect memory service: the full translate-and-check,
  // the grouped-follower path, or the coalesced check-only reuse path. All
  // three perform the identical translation and kill checks; only the
  // charged cycle cost differs (task-visible behavior is tier-invariant).
  enum class IndTier : uint8_t { Full, Grouped, Coalesced };

  void svc_mem_indirect(const CompiledSvc& cs, uint16_t ret, IndTier tier);
  void svc_mem_direct(const rw::Service& svc, uint16_t ret, bool fast);
  void svc_reserved_direct(const rw::Service& svc, uint16_t ret);
  void svc_push_pop(const CompiledSvc& cs, uint16_t ret);
  void svc_call_enter(const rw::Service& svc, uint16_t ret);
  void svc_return(const rw::Service& svc, uint16_t ret);
  void svc_indirect_jump(const rw::Service& svc, uint16_t ret);
  void svc_branch(const rw::Service& svc, uint16_t ret, bool backward);
  void svc_sp_read(const rw::Service& svc, uint16_t ret);
  void svc_sp_write(const rw::Service& svc, uint16_t ret);
  void svc_lpm(const rw::Service& svc, uint16_t ret);
  void svc_sleep(uint16_t ret);

  // Reserved-port virtualization shared by direct and indirect paths.
  // Returns true if `addr` is handled (reserved); `value` is in/out.
  bool reserved_port_access(uint16_t addr, uint8_t& value, bool write,
                            uint16_t resume_pc);

  // --- Memory management (memmgr.cpp) ----------------------------------------
  struct Xlate {
    uint16_t phys = 0;
    enum class Area : uint8_t { Io, Heap, Stack, Invalid } area = Area::Invalid;
  };
  Xlate translate(const Task& t, uint16_t logical) const;
  // Check a whole window [logical, logical+span] (grouped leader).
  bool check_window(const Task& t, uint16_t logical, uint8_t span) const;

  // Per-task translation cache: region bounds and the two displacements
  // translate() needs, flat and indexed by task id (tasks_[i].id == i).
  // Rebuilt only when the region map changes — layout_regions, move_regions,
  // release_region — so the hot service handlers never chase
  // sys_->programs or recompute kDataEnd - p_u per access.
  struct XlateCache {
    uint16_t heap_end_logical = 0;  // kSramBase + program heap size
    uint16_t heap_disp = 0;         // p_l - kSramBase; phys = logical + disp
    uint16_t sp_off = 0;            // kDataEnd - p_u (stack displacement M)
    uint16_t p_h = 0;               // stack-area bounds for validation
    uint16_t p_u = 0;
  };
  void rebuild_xlate_cache();

  bool layout_regions();
  // Ensure the current task can grow its stack by `needed` bytes while
  // keeping the red-zone margin; relocates or kills. Returns false if the
  // task was killed. The inline check is the service-trap common case
  // (enough headroom, no map lookup, no sp_of indirection).
  bool ensure_stack(uint16_t needed) {
    const uint16_t sp = m_.mem().sp();  // current task is Running: live SP
    const XlateCache& c = xc_[current_];
    if (sp >= c.p_h &&
        uint32_t(sp - c.p_h) + 1 >= uint32_t(needed) + cfg_.stack_margin)
      return true;
    return ensure_stack_slow(needed);
  }
  bool ensure_stack_slow(uint16_t needed);
  // One relocation step toward `shortfall` more free bytes for the current
  // task; kills the current task (returning false) if no donor exists.
  bool grow_step(uint16_t shortfall);
  // Transfer `delta` bytes of stack space from `donor` to `to` by sliding
  // the regions between them (Figure 3).
  void move_regions(Task& donor, Task& to, uint16_t delta);
  void release_region(Task& dead);

  uint16_t sp_of(const Task& t) const;
  void set_sp_of(Task& t, uint16_t sp);
  uint16_t free_stack(const Task& t) const;
  uint16_t logical_sp_offset(const Task& t) const {
    return static_cast<uint16_t>(emu::kDataEnd - t.p_u);
  }

  void kill_task(Task& t, KillReason why);

  // --- Supervision (supervisor.cpp) ------------------------------------------
  // Restart `t` in place: re-initialize its logical regions, stage a fresh
  // entry context, and block it for the capped-exponential backoff delay.
  void restart_task(Task& t, KillReason why);
  // Terminal half of a supervised kill: mark the task quarantined (the
  // caller has already made the kill terminal and reclaims the region).
  void quarantine_task(Task& t);
  // Supervision bookkeeping on a non-branch service: refresh the watchdog
  // mark and credit the healthy streak. Called from on_service only when
  // supervision or the watchdog is active.
  void note_healthy_service();
  // Slice-check-granularity watchdog test; kills (and restarts) the current
  // task if it exceeded the budget. Returns true if it fired (the caller
  // must not keep treating the task as Running).
  bool watchdog_check(uint32_t resume_pc);
  // Fire a due injected kill (if any) at a service boundary. Returns true
  // if the *current* task was killed (the pending service must be skipped).
  // The slow path maintains next_kill_at_ so the per-trap test in
  // on_service is a single counter comparison.
  bool injected_kill_due(uint16_t resume_pc);

  // --- Auditing (audit.cpp) ---------------------------------------------------
  // Per-task byte image captured before a region mutation: heap [p_l, p_h)
  // and the live stack [sp+1, p_u).
  struct TaskSnapshot {
    uint8_t id = 0;
    std::vector<uint8_t> heap, stack;
  };
  // Snapshot every live task's contents (audit mode only; empty otherwise).
  std::vector<TaskSnapshot> audit_snapshot() const;
  // Verify invariants, and contents against `before`, after mutation `what`.
  void audit_after(const char* what, const std::vector<TaskSnapshot>& before);
  void audit_record(const std::string& msg);
  // Update the task's peak logical stack depth from the live SP.
  void note_stack_depth(Task& t);
  void finish_task(Task& t, uint8_t code);
  // Integrate the per-live-task stack allocation up to now; call before
  // any region mutation.
  void sample_alloc();

  // --- Scheduling (scheduler.cpp) --------------------------------------------
  void trap_tick(uint32_t resume_pc);
  void context_switch(uint32_t resume_pc, bool block_current);
  void save_context(Task& t, uint32_t pc);
  void restore_context(Task& t);
  std::optional<size_t> pick_next(size_t after);
  void wake_due_tasks();
  void idle_until_wake();
  void account_current();

  Task& current() { return tasks_[current_]; }
  void emit(EventKind kind, uint16_t a, uint16_t b = 0) {
    if (trace_ != nullptr) trace_->record(m_.cycles(), kind, a, b);
  }
  const rw::ProgramInfo& prog_of(const Task& t) const {
    return sys_->programs[t.program];
  }
  void charge_op(uint32_t total) {
    // The trampoline CALL itself already cost 4 cycles.
    stats_.service_cycles += total;
    m_.charge(total > 4 ? total - 4 : 0);
  }

  // Shared construction body of the borrowing and owning constructors.
  void init();

  emu::Machine& m_;
  std::unique_ptr<rw::LinkedSystem> owned_sys_;  // set by the install ctor
  // Set by the fleet-install ctor: shared ownership of the system and the
  // pre-decoded image the machine adopts instead of a private load_flash.
  std::shared_ptr<const rw::LinkedSystem> shared_sys_;
  std::shared_ptr<const emu::Machine::SharedImage> shared_image_;
  const rw::LinkedSystem* sys_;
  KernelConfig cfg_;
  InstallInfo install_;
  std::vector<Task> tasks_;
  std::vector<XlateCache> xc_;  // parallel to tasks_ (indexed by task id)
  std::vector<CompiledSvc> csvc_;  // parallel to sys_->services
  // Flat views of the (immutable) service pool, resolved once so dispatch
  // does not chase sys_-> and vector headers per trap.
  const rw::Service* svc_table_ = nullptr;
  uint32_t n_services_ = 0;
  size_t current_ = 0;
  bool started_ = false;
  uint16_t kernel_base_ = 0;  // first byte of the kernel data area
  uint16_t trap_counter_ = 0;
  uint64_t slice_start_ = 0;
  uint64_t account_mark_ = 0;
  uint64_t start_cycle_ = 0;
  uint64_t alloc_mark_ = 0;
  uint64_t alloc_integral_ = 0;  // summed live stack allocation, byte-cycles
  bool alloc_frozen_ = false;    // stop integrating once a task exits, so
                                 // the average reflects full concurrency
  uint64_t alloc_task_cycles_ = 0;  // task-cycles (exact-average denominator)
  size_t next_injected_kill_ = 0;
  // Service-call count at which the next injected kill fires (UINT64_MAX
  // when the schedule is exhausted or empty).
  uint64_t next_kill_at_ = UINT64_MAX;
  // Supervision or watchdog active: gates the per-service recovery
  // bookkeeping to one boolean test on unsupervised kernels.
  bool recovery_on_ = false;
  std::vector<std::string> audit_log_;
  KernelTrace* trace_ = nullptr;
  KernelStats stats_;
};

}  // namespace sensmart::kern
