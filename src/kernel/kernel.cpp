// Kernel construction, task admission and the trampoline service
// dispatcher with all handlers.
#include "kernel/kernel.hpp"

#include <algorithm>
#include <stdexcept>

namespace sensmart::kern {

using emu::kDataEnd;
using emu::kSramBase;
using isa::Op;

const char* to_string(TaskState s) {
  switch (s) {
    case TaskState::Ready: return "ready";
    case TaskState::Running: return "running";
    case TaskState::Blocked: return "blocked";
    case TaskState::Done: return "done";
    case TaskState::Killed: return "killed";
  }
  return "?";
}

namespace {
// Pre/post pointer adjustment of an indirect memory op.
struct PtrMode {
  int pre = 0;
  int post = 0;
};
PtrMode ptr_mode(Op op) {
  switch (op) {
    case Op::LdXInc:
    case Op::LdYInc:
    case Op::LdZInc:
    case Op::StXInc:
    case Op::StYInc:
    case Op::StZInc:
      return {0, 1};
    case Op::LdXDec:
    case Op::LdYDec:
    case Op::LdZDec:
    case Op::StXDec:
    case Op::StYDec:
    case Op::StZDec:
      return {-1, 0};
    default:
      return {0, 0};
  }
}
uint8_t ptr_reg(isa::Ptr p) {
  switch (p) {
    case isa::Ptr::X: return 26;
    case isa::Ptr::Y: return 28;
    default: return 30;
  }
}
}  // namespace

const char* to_string(KillReason r) {
  switch (r) {
    case KillReason::None: return "none";
    case KillReason::InvalidAccess: return "invalid-access";
    case KillReason::OutOfStackMemory: return "out-of-stack-memory";
    case KillReason::BadJump: return "bad-jump";
    case KillReason::Injected: return "injected";
    case KillReason::Watchdog: return "watchdog";
  }
  return "?";
}

Kernel::Kernel(emu::Machine& machine, const rw::LinkedSystem& sys,
               KernelConfig cfg)
    : m_(machine), sys_(&sys), cfg_(cfg) {
  init();
}

Kernel::Kernel(emu::Machine& machine, rw::LinkedSystem&& sys, KernelConfig cfg,
               InstallInfo install)
    : m_(machine),
      owned_sys_(std::make_unique<rw::LinkedSystem>(std::move(sys))),
      sys_(owned_sys_.get()),
      cfg_(cfg),
      install_(install) {
  init();
}

Kernel::Kernel(emu::Machine& machine,
               std::shared_ptr<const rw::LinkedSystem> sys,
               std::shared_ptr<const emu::Machine::SharedImage> image,
               KernelConfig cfg, InstallInfo install)
    : m_(machine),
      shared_sys_(std::move(sys)),
      shared_image_(std::move(image)),
      sys_(shared_sys_.get()),
      cfg_(cfg),
      install_(install) {
  init();
}

void Kernel::init() {
  const rw::LinkedSystem& sys = *sys_;
  // Trampoline CALLs transiently push 2 bytes on the task stack before the
  // handler pops them, so the red zone can never be thinner than 4 bytes.
  cfg_.stack_margin = std::max<uint16_t>(cfg_.stack_margin, 4);
  if (!cfg_.injected_kills.empty())
    next_kill_at_ = cfg_.injected_kills.front().at_service_call;
  recovery_on_ =
      cfg_.supervise.enabled || cfg_.supervise.watchdog_cycles > 0;
  svc_table_ = sys.services.data();
  n_services_ = static_cast<uint32_t>(sys.services.size());
  csvc_.resize(sys.services.size());
  for (size_t i = 0; i < sys.services.size(); ++i) {
    const rw::Service& svc = sys.services[i];
    const isa::Instruction& ins = svc.original;
    CompiledSvc& c = csvc_[i];
    c.kind = svc.kind;
    c.ptr_reg = ptr_reg(isa::pointer_of(ins));
    const PtrMode pm = ptr_mode(ins.op);
    c.pre = static_cast<int8_t>(pm.pre);
    c.post = static_cast<int8_t>(pm.post);
    c.rd = ins.rd;
    c.q = ins.q;
    c.group_min = svc.group_min;
    c.group_span = svc.group_span;
    c.store = isa::is_store(ins.op);
    c.is_push = ins.op == Op::Push;
    if (svc.kind == rw::ServiceKind::PushPop) {
      c.run_n = svc.group_span <= 3 ? svc.group_span : 3;
      for (int f = 0; f < c.run_n; ++f)
        c.run_rd[f] = static_cast<uint8_t>((svc.run_regs >> (5 * f)) & 0x1F);
    }
  }
  if (shared_image_)
    m_.adopt_image(shared_image_);
  else
    m_.load_flash(sys.flash);
  m_.set_service_handler(0, &Kernel::service_thunk, this);
}

bool Kernel::service_thunk(void* self, emu::Machine& m, uint32_t svc_arg) {
  return static_cast<Kernel*>(self)->on_service(m, svc_arg);
}

std::optional<uint8_t> Kernel::admit(size_t program_index) {
  if (started_) throw std::logic_error("admit() after start()");
  if (program_index >= sys_->programs.size())
    throw std::out_of_range("program index");

  // Feasibility: every task needs its heap plus the minimum stack.
  const uint32_t app_space =
      uint32_t(kDataEnd - cfg_.kernel_ram) - kSramBase;
  uint32_t needed = sys_->programs[program_index].heap_size + cfg_.min_stack;
  for (const Task& t : tasks_)
    needed += prog_of(t).heap_size + cfg_.min_stack;
  if (needed > app_space) return std::nullopt;

  Task t;
  t.id = static_cast<uint8_t>(tasks_.size());
  t.program = program_index;
  tasks_.push_back(std::move(t));
  rebuild_xlate_cache();
  return tasks_.back().id;
}

size_t Kernel::admit_all() {
  size_t n = 0;
  for (size_t i = 0; i < sys_->programs.size(); ++i)
    if (admit(i)) ++n;
  return n;
}

bool Kernel::start() {
  if (started_) throw std::logic_error("start() called twice");
  if (!layout_regions()) return false;
  started_ = true;

  m_.charge(cfg_.costs.init);
  if (cfg_.warmup_cycles > 0) m_.charge(cfg_.warmup_cycles);

  current_ = 0;
  Task& t = tasks_[0];
  t.state = TaskState::Running;
  for (uint8_t r = 0; r < 32; ++r) m_.mem().set_reg(r, t.regs[r]);
  m_.mem().set_sreg(t.sreg);
  m_.mem().set_sp(t.sp);
  m_.set_pc(t.pc);
  slice_start_ = m_.cycles();
  account_mark_ = m_.cycles();
  start_cycle_ = m_.cycles();
  alloc_mark_ = m_.cycles();
  emit(EventKind::Start, uint16_t(tasks_.size()));
  return true;
}

emu::StopReason Kernel::run(uint64_t max_cycles) {
  if (!started_) throw std::logic_error("run() before start()");
  return m_.run(max_cycles);
}

bool Kernel::all_stopped() const {
  for (const Task& t : tasks_)
    if (t.live()) return false;
  return true;
}

size_t Kernel::live_count() const {
  size_t n = 0;
  for (const Task& t : tasks_)
    if (t.live()) ++n;
  return n;
}

void Kernel::note_stack_depth(Task& t) {
  const uint16_t depth =
      static_cast<uint16_t>(t.p_u - 1 - m_.mem().sp());
  t.peak_stack_used = std::max(t.peak_stack_used, depth);
}

// ---------------------------------------------------------------------------
// Service dispatch
// ---------------------------------------------------------------------------

bool Kernel::on_service(emu::Machine& m, uint32_t idx) {
  if (idx >= n_services_) return false;
  // The common services (stack ops and pointer loads/stores) run entirely
  // from the flattened CompiledSvc row; the wider Service descriptor is
  // only touched by the rare kinds that need the original instruction.
  const CompiledSvc& cs = csvc_[idx];
  ++stats_.service_calls;

  // The address the trampoline CALL pushed: the naturalized address of
  // the instruction following the patched site.
  const uint16_t ret = m.service_ret();

  // Fault injection (chaos testing): a scheduled kill fires at this service
  // boundary, before the service body runs. If it took the current task, the
  // pending service must not execute. One compare in the common case.
  if (stats_.service_calls >= next_kill_at_ && injected_kill_due(ret))
    return true;

  // Recovery bookkeeping: any service other than a branch relay counts as
  // evidence of useful progress — it refreshes the watchdog mark and
  // credits the healthy streak that clears a supervised failure run.
  // Branch relays are excluded on purpose: a runaway register-only loop
  // traps through them constantly and must not look healthy.
  if (recovery_on_ && cs.kind != rw::ServiceKind::BackwardBranch &&
      cs.kind != rw::ServiceKind::ForwardBranch)
    note_healthy_service();

  switch (cs.kind) {
    case rw::ServiceKind::MemIndirect:
      svc_mem_indirect(cs, ret, IndTier::Full);
      break;
    case rw::ServiceKind::MemIndirectGrouped:
      svc_mem_indirect(cs, ret, IndTier::Grouped);
      break;
    case rw::ServiceKind::MemIndirectCoalesced:
      svc_mem_indirect(cs, ret, IndTier::Coalesced);
      break;
    case rw::ServiceKind::MemDirect:
      svc_mem_direct(svc_table_[idx], ret, /*fast=*/false);
      break;
    case rw::ServiceKind::MemDirectFast:
      svc_mem_direct(svc_table_[idx], ret, /*fast=*/true);
      break;
    case rw::ServiceKind::ReservedDirect:
      svc_reserved_direct(svc_table_[idx], ret);
      break;
    case rw::ServiceKind::PushPop:
      svc_push_pop(cs, ret);
      break;
    case rw::ServiceKind::CallEnter:
      svc_call_enter(svc_table_[idx], ret);
      break;
    case rw::ServiceKind::Return:
      svc_return(svc_table_[idx], ret);
      break;
    case rw::ServiceKind::IndirectJump:
      svc_indirect_jump(svc_table_[idx], ret);
      break;
    case rw::ServiceKind::BackwardBranch:
      svc_branch(svc_table_[idx], ret, /*backward=*/true);
      break;
    case rw::ServiceKind::ForwardBranch:
      svc_branch(svc_table_[idx], ret, /*backward=*/false);
      break;
    case rw::ServiceKind::SpRead:
      svc_sp_read(svc_table_[idx], ret);
      break;
    case rw::ServiceKind::SpWrite:
      svc_sp_write(svc_table_[idx], ret);
      break;
    case rw::ServiceKind::Lpm:
      svc_lpm(svc_table_[idx], ret);
      break;
    case rw::ServiceKind::SleepOp:
      svc_sleep(ret);
      break;
  }
  return true;
}

bool Kernel::injected_kill_due(uint16_t resume_pc) {
  bool killed_current = false;
  while (next_injected_kill_ < cfg_.injected_kills.size() &&
         stats_.service_calls >=
             cfg_.injected_kills[next_injected_kill_].at_service_call) {
    const InjectedKill& ik = cfg_.injected_kills[next_injected_kill_++];
    Task* victim = nullptr;
    for (Task& t : tasks_)
      if (t.id == ik.task && t.live()) victim = &t;
    if (victim == nullptr) continue;  // already exited; drop the injection
    ++stats_.injected_kills;
    const bool was_current = victim->id == current().id;
    kill_task(*victim, KillReason::Injected);
    if (was_current) {
      m_.set_pc(resume_pc);
      context_switch(resume_pc, false);
      killed_current = true;
      break;
    }
  }
  next_kill_at_ = next_injected_kill_ < cfg_.injected_kills.size()
                      ? cfg_.injected_kills[next_injected_kill_].at_service_call
                      : UINT64_MAX;
  return killed_current;
}

void Kernel::svc_mem_indirect(const CompiledSvc& cs, uint16_t ret,
                              IndTier tier) {
  Task& t = current();
  const uint16_t p0 = m_.mem().reg_pair(cs.ptr_reg);
  const uint16_t base = static_cast<uint16_t>(p0 + cs.pre);
  const uint16_t logical = static_cast<uint16_t>(base + cs.q);

  m_.set_pc(ret);
  ++stats_.mem_translations;

  // Group leaders validate the whole group's displacement window once. The
  // window start is computed in 32 bits: `base + group_min` can exceed
  // 0xFFFF, and truncating it would wrap the window into low memory and
  // let a wild pointer group pass validation.
  if (tier == IndTier::Full && cs.group_span > 0) {
    const uint32_t win_lo = uint32_t(base) + uint32_t(cs.group_min);
    if (win_lo > 0xFFFF ||
        !check_window(t, static_cast<uint16_t>(win_lo), cs.group_span)) {
      kill_task(t, KillReason::InvalidAccess);
      context_switch(ret, false);
      return;
    }
  }

  const Xlate x = translate(t, logical);
  if (x.area == Xlate::Area::Invalid) {
    kill_task(t, KillReason::InvalidAccess);
    context_switch(ret, false);
    return;
  }

  const bool store = cs.store;
  if (x.area == Xlate::Area::Io) {
    uint8_t v = store ? m_.mem().reg(cs.rd) : 0;
    if (reserved_port_access(x.phys, v, store, ret)) {
      if (!store) m_.mem().set_reg(cs.rd, v);
    } else if (store) {
      m_.mem().write(x.phys, m_.mem().reg(cs.rd));
    } else {
      m_.mem().set_reg(cs.rd, m_.mem().read(x.phys));
    }
    charge_op(cfg_.costs.ind_io);
  } else {
    if (store)
      m_.mem().set_raw(x.phys, m_.mem().reg(cs.rd));
    else
      m_.mem().set_reg(cs.rd, m_.mem().raw(x.phys));
    switch (tier) {
      case IndTier::Grouped:
        charge_op(cfg_.costs.ind_grouped);
        break;
      case IndTier::Coalesced:
        charge_op(cfg_.costs.ind_coalesced);
        break;
      case IndTier::Full:
        charge_op(x.area == Xlate::Area::Heap ? cfg_.costs.ind_heap
                                              : cfg_.costs.ind_stack);
        break;
    }
  }

  if (cs.pre != 0 || cs.post != 0)
    m_.mem().set_reg_pair(cs.ptr_reg, static_cast<uint16_t>(base + cs.post));
}

void Kernel::svc_mem_direct(const rw::Service& svc, uint16_t ret, bool fast) {
  Task& t = current();
  const isa::Instruction& ins = svc.original;
  m_.set_pc(ret);
  ++stats_.mem_translations;

  // The fast tier's address was statically proven in-heap by the rewriter,
  // so translate() cannot fail for it; it still runs the same path so the
  // two tiers are behaviorally indistinguishable (only the charge differs).
  const Xlate x = translate(t, static_cast<uint16_t>(ins.k));
  if (x.area == Xlate::Area::Invalid) {
    kill_task(t, KillReason::InvalidAccess);
    context_switch(ret, false);
    return;
  }
  if (ins.op == Op::Sts)
    m_.mem().set_raw(x.phys, m_.mem().reg(ins.rd));
  else
    m_.mem().set_reg(ins.rd, m_.mem().raw(x.phys));
  charge_op(fast ? cfg_.costs.direct_fast : cfg_.costs.direct_other);
}

void Kernel::svc_reserved_direct(const rw::Service& svc, uint16_t ret) {
  const isa::Instruction& ins = svc.original;
  const auto addr = static_cast<uint16_t>(ins.k);
  m_.set_pc(ret);
  const bool write = ins.op == Op::Sts;
  uint8_t v = write ? m_.mem().reg(ins.rd) : 0;
  reserved_port_access(addr, v, write, ret);
  if (!write) m_.mem().set_reg(ins.rd, v);
  charge_op(cfg_.costs.reserved_io);
}

bool Kernel::reserved_port_access(uint16_t addr, uint8_t& value, bool write,
                                  uint16_t resume_pc) {
  if (!rw::is_reserved_port(addr)) return false;
  Task& t = current();
  switch (addr) {
    case emu::kTcnt3L:
      if (!write) {
        const uint16_t ticks = m_.dev().timer3_ticks(m_.cycles());
        t.tcnt3_latch = static_cast<uint8_t>(ticks >> 8);
        value = static_cast<uint8_t>(ticks & 0xFF);
      }
      break;
    case emu::kTcnt3H:
      if (!write) value = t.tcnt3_latch;
      break;
    case emu::kTccr3:
      if (!write) value = 0;  // reserved by the kernel; writes are ignored
      break;
    case emu::kHostOut:
      if (write) t.host_out.push_back(value);
      break;
    case emu::kHostHalt:
      if (write) {
        finish_task(t, value);
        context_switch(resume_pc, false);
      }
      break;
    case emu::kSleepTargetL:
      if (write) t.sleep_target_l = value;
      break;
    case emu::kSleepTargetH:
      if (write) {
        // Anchor the wake cycle to the absolute tick count (the 16-bit
        // target is interpreted modulo 2^16), as the device model does.
        const uint16_t target =
            static_cast<uint16_t>(t.sleep_target_l | (value << 8));
        const uint64_t abs_ticks = m_.cycles() / emu::kTimer3Prescale;
        const uint16_t delta =
            static_cast<uint16_t>(target - static_cast<uint16_t>(abs_ticks));
        t.sleep_wake_cycle = (abs_ticks + delta) * emu::kTimer3Prescale +
                             emu::kTimer3Prescale - 1;
        if (t.sleep_wake_cycle < m_.cycles()) t.sleep_wake_cycle = m_.cycles();
        t.sleep_armed = true;
      }
      break;
    default:
      break;
  }
  return true;
}

void Kernel::svc_push_pop(const CompiledSvc& cs, uint16_t ret) {
  Task& t = current();
  m_.set_pc(ret);

  // A collapsed stack run executes all of its members inside the leader's
  // trap, applying the *identical* per-member headroom check, relocation
  // request and kill condition that separate PUSH/POP services would — so
  // the machine-state and relocation trajectories are the same whether
  // collapsing is on or off; only the cycle charge (and trap count) shrink.
  const int members = 1 + cs.run_n;
  for (int i = 0; i < members; ++i) {
    const uint8_t rd = i == 0 ? cs.rd : cs.run_rd[i - 1];
    uint16_t sp = m_.mem().sp();
    if (cs.is_push) {
      // Fast headroom check with the cached region bound; only a relocation
      // (which moves SP) drops to the slow path, so SP is re-read after it.
      const uint16_t p_h = xc_[current_].p_h;
      if (sp < p_h || static_cast<uint16_t>(sp - p_h) < cfg_.stack_margin) {
        if (!ensure_stack_slow(1)) {
          context_switch(ret, false);
          return;
        }
        sp = m_.mem().sp();
      }
      m_.mem().set_raw(sp, m_.mem().reg(rd));
      m_.mem().set_sp(static_cast<uint16_t>(sp - 1));
      const uint16_t depth = static_cast<uint16_t>(t.p_u - sp);
      if (depth > t.peak_stack_used) t.peak_stack_used = depth;
    } else {  // Pop
      if (sp + 1 >= t.p_u) {
        kill_task(t, KillReason::InvalidAccess);  // stack underflow
        context_switch(ret, false);
        return;
      }
      m_.mem().set_reg(rd, m_.mem().raw(static_cast<uint16_t>(sp + 1)));
      m_.mem().set_sp(static_cast<uint16_t>(sp + 1));
    }
  }
  // Each follower's placeholder NOP pays 1 cycle natively; the leader
  // charges the rest of the per-member run cost.
  stats_.stack_run_members += cs.run_n;
  charge_op(cfg_.costs.stack_pushpop +
            uint32_t(cs.run_n) * (cfg_.costs.stack_run_member - 1));
}

void Kernel::svc_call_enter(const rw::Service& svc, uint16_t ret) {
  Task& t = current();
  const isa::Instruction& ins = svc.original;
  const rw::ProgramInfo& prog = prog_of(t);

  if (!ensure_stack(2)) {
    context_switch(ret, false);
    return;
  }

  uint32_t target_nat = 0;
  if (ins.op == Op::Call) {
    target_nat = prog.map.to_naturalized(static_cast<uint32_t>(ins.k));
  } else if (ins.op == Op::Rcall) {
    const uint32_t orig_next = prog.map.to_original(ret);
    target_nat =
        prog.map.to_naturalized(static_cast<uint32_t>(orig_next + ins.k));
  } else {  // Icall: the task computed an *original* program address
    const uint16_t z = m_.mem().reg_pair(30);
    if (z >= prog.map.to_original(prog.base + prog.nat_words)) {
      m_.set_pc(ret);
      kill_task(t, KillReason::BadJump);
      context_switch(ret, false);
      return;
    }
    target_nat = prog.map.to_naturalized(z);
    m_.charge(cfg_.costs.prog_mem);
  }

  m_.push16(ret);  // the naturalized return address
  note_stack_depth(t);
  m_.set_pc(target_nat);
  charge_op(cfg_.costs.stack_callret);
}

void Kernel::svc_return(const rw::Service&, uint16_t ret) {
  Task& t = current();
  const rw::ProgramInfo& prog = prog_of(t);

  if (m_.mem().sp() + 2 >= t.p_u) {
    m_.set_pc(ret);
    kill_task(t, KillReason::InvalidAccess);  // no return address on stack
    context_switch(ret, false);
    return;
  }
  const uint16_t target = m_.pop16();
  if (target < prog.base || target >= prog.base + prog.nat_words) {
    kill_task(t, KillReason::BadJump);  // smashed stack
    context_switch(ret, false);
    return;
  }
  m_.set_pc(target);
  charge_op(cfg_.costs.stack_callret);
}

void Kernel::svc_indirect_jump(const rw::Service&, uint16_t ret) {
  Task& t = current();
  const rw::ProgramInfo& prog = prog_of(t);
  const uint16_t z = m_.mem().reg_pair(30);
  if (z >= prog.map.to_original(prog.base + prog.nat_words)) {
    m_.set_pc(ret);
    kill_task(t, KillReason::BadJump);
    context_switch(ret, false);
    return;
  }
  const uint32_t target = prog.map.to_naturalized(z);
  m_.set_pc(target);
  charge_op(cfg_.costs.prog_mem);
  trap_tick(target);  // an indirect jump may close a loop
}

void Kernel::svc_branch(const rw::Service& svc, uint16_t ret, bool backward) {
  Task& t = current();
  const isa::Instruction& ins = svc.original;
  const rw::ProgramInfo& prog = prog_of(t);

  bool taken = true;
  if (ins.op == Op::Brbs)
    taken = (m_.mem().sreg() >> ins.b) & 1;
  else if (ins.op == Op::Brbc)
    taken = !((m_.mem().sreg() >> ins.b) & 1);

  uint32_t pc = ret;
  if (taken) {
    const uint32_t orig_next = prog.map.to_original(ret);
    pc = prog.map.to_naturalized(static_cast<uint32_t>(orig_next + ins.k));
  }
  m_.set_pc(pc);
  charge_op(backward ? cfg_.costs.trap_fast : cfg_.costs.fwd_branch);
  if (backward) trap_tick(pc);
}

void Kernel::svc_sp_read(const rw::Service& svc, uint16_t ret) {
  Task& t = current();
  const uint16_t logical =
      static_cast<uint16_t>(m_.mem().sp() + logical_sp_offset(t));
  const bool low = emu::kIoBase + svc.original.a == emu::kSpl;
  m_.mem().set_reg(svc.original.rd,
                   low ? static_cast<uint8_t>(logical & 0xFF)
                       : static_cast<uint8_t>(logical >> 8));
  m_.set_pc(ret);
  // The IN pair totals get_sp cycles: 23 for the low read, 22 for the high.
  charge_op(low ? (cfg_.costs.get_sp + 1) / 2 : cfg_.costs.get_sp / 2);
}

void Kernel::svc_sp_write(const rw::Service& svc, uint16_t ret) {
  Task& t = current();
  const uint8_t v = m_.mem().reg(svc.original.rd);
  const bool low = emu::kIoBase + svc.original.a == emu::kSpl;
  const uint16_t cur_logical =
      static_cast<uint16_t>(m_.mem().sp() + logical_sp_offset(t));
  const uint16_t new_logical =
      low ? static_cast<uint16_t>((cur_logical & 0xFF00) | v)
          : static_cast<uint16_t>((cur_logical & 0x00FF) | (v << 8));

  m_.set_pc(ret);
  if (new_logical >= emu::kDataEnd) {
    kill_task(t, KillReason::InvalidAccess);
    context_switch(ret, false);
    return;
  }

  // The requested stack depth is invariant under relocation; grow the
  // region until the new SP fits with the red-zone margin.
  const uint32_t needed_alloc =
      uint32_t(emu::kDataEnd - new_logical) + cfg_.stack_margin;
  if (needed_alloc > uint32_t(kernel_base_ - kSramBase)) {
    kill_task(t, KillReason::InvalidAccess);
    context_switch(ret, false);
    return;
  }
  while (t.stack_alloc() < needed_alloc) {
    if (!grow_step(static_cast<uint16_t>(needed_alloc - t.stack_alloc()))) {
      context_switch(ret, false);
      return;
    }
  }
  const uint16_t new_phys =
      static_cast<uint16_t>(new_logical - logical_sp_offset(t));
  m_.mem().set_sp(new_phys);
  note_stack_depth(t);
  charge_op(cfg_.costs.set_sp / 2);
}

void Kernel::svc_lpm(const rw::Service& svc, uint16_t ret) {
  Task& t = current();
  const rw::ProgramInfo& prog = prog_of(t);
  const isa::Instruction& ins = svc.original;
  const uint16_t z = m_.mem().reg_pair(30);  // original flash *byte* address
  const uint32_t orig_word = z >> 1;

  m_.set_pc(ret);
  if (orig_word >= prog.map.to_original(prog.base + prog.nat_words)) {
    kill_task(t, KillReason::BadJump);
    context_switch(ret, false);
    return;
  }
  const uint32_t nat_word = prog.map.to_naturalized(orig_word);
  const uint8_t byte = m_.flash_byte(nat_word * 2 + (z & 1));
  m_.mem().set_reg(ins.op == Op::LpmR0 ? 0 : ins.rd, byte);
  if (ins.op == Op::LpmInc)
    m_.mem().set_reg_pair(30, static_cast<uint16_t>(z + 1));
  charge_op(cfg_.costs.prog_mem);
}

void Kernel::svc_sleep(uint16_t ret) {
  Task& t = current();
  m_.set_pc(ret);
  charge_op(cfg_.costs.sleep_svc);
  if (t.sleep_armed) {
    t.sleep_armed = false;
    t.wake_cycle = t.sleep_wake_cycle;
    emit(EventKind::Block, t.id);
    context_switch(ret, /*block_current=*/true);
  } else {
    // Terminal idle: the task sleeps with no wake source armed.
    finish_task(t, 0);
    context_switch(ret, false);
  }
}

}  // namespace sensmart::kern
