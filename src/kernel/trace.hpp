// Kernel event trace: a bounded, cycle-stamped log of scheduling and
// memory-management events, for debugging and for understanding runs
// (examples/sense_and_send prints one). Tracing is off unless a trace
// object is attached; the emulated cycle cost is zero by design (a real
// deployment would stream this over UART; we model the observer only).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace sensmart::kern {

enum class EventKind : uint8_t {
  Start,          // kernel started; a = number of tasks
  ContextSwitch,  // a = from task, b = to task
  Preempt,        // a = task, b = delay beyond the slice (cycles, capped)
  Block,          // a = task (timed sleep)
  Wake,           // a = task
  Relocation,     // a = donor task, b = bytes moved
  RegionRelease,  // a = task whose region was merged away
  TaskDone,       // a = task, b = exit code
  TaskKilled,     // a = task, b = KillReason
  Idle,           // a/b = idle cycles (lo/hi 16 bits, capped)
  AuditFail,      // a = audit failure ordinal (see Kernel::audit_log())
  TaskRestarted,  // a = task, b = consecutive-failure streak (1 = first)
  TaskQuarantined,  // a = task, b = total supervisor restarts it consumed
  WatchdogFired,  // a = task, b = cumulative watchdog fires for the task
};

const char* to_string(EventKind k);

struct TraceEvent {
  uint64_t cycle = 0;
  EventKind kind = EventKind::Start;
  uint16_t a = 0;
  uint16_t b = 0;
};

class KernelTrace {
 public:
  explicit KernelTrace(size_t capacity = 4096) : cap_(capacity) {}

  void record(uint64_t cycle, EventKind kind, uint16_t a, uint16_t b) {
    if (events_.size() < cap_)
      events_.push_back({cycle, kind, a, b});
    else
      ++dropped_;
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t dropped() const { return dropped_; }
  size_t count(EventKind k) const {
    size_t n = 0;
    for (const auto& e : events_)
      if (e.kind == k) ++n;
    return n;
  }

  // Human-readable dump of up to `limit` events (0 = all).
  void dump(std::ostream& os, size_t limit = 0) const;

 private:
  size_t cap_;
  size_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace sensmart::kern
