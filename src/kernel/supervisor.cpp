// Task supervision and runaway containment (DESIGN.md §8): restart a
// killed task from its entry point under capped exponential backoff,
// quarantine it after too many consecutive failures, and kill tasks that
// stop making kernel services within the watchdog budget.
#include <algorithm>

#include "kernel/kernel.hpp"

namespace sensmart::kern {

using emu::kSramBase;

void Kernel::restart_task(Task& t, KillReason why) {
  const uint16_t sp_now = sp_of(t);  // before the state change, while the
                                     // machine SP may still be authoritative
  if (sp_now < t.p_u)
    t.peak_stack_used = std::max(
        t.peak_stack_used, static_cast<uint16_t>(t.p_u - 1 - sp_now));
  t.kill_reason = why;  // last failure cause, for recovery stats
  ++t.restarts;
  ++t.restart_streak;
  t.healthy_streak = 0;
  ++stats_.restarts;
  // Mirror into the device health counters so the rollout health gate
  // (DESIGN.md §12) reads genuine kernel recovery stats.
  m_.dev().health_add(1, 0, 0);

  // Re-initialize the logical regions in place: heap and stack bytes are
  // zeroed exactly as layout_regions left them at first start. The region
  // boundaries are deliberately untouched — space the task donated to (or
  // borrowed from) neighbours through earlier relocations stays where it
  // is and is renegotiated on demand once the task runs again.
  for (uint32_t a = t.p_l; a < t.p_u; ++a)
    m_.mem().set_raw(static_cast<uint16_t>(a), 0);

  // Stage a fresh entry context. State leaves Running first so the staged
  // snapshot is authoritative: context_switch must not save the crashed
  // incarnation's machine registers over it, and sp_of/set_sp_of must read
  // the snapshot rather than the live SP.
  t.state = TaskState::Blocked;
  t.regs.fill(0);
  t.sreg = 0;
  t.sp = static_cast<uint16_t>(t.p_u - 1);
  t.pc = prog_of(t).entry_nat;
  t.sleep_armed = false;
  t.sleep_wake_cycle = 0;
  t.sleep_target_l = 0;
  t.tcnt3_latch = 0;
  t.wd_cpu_mark = t.cpu_cycles;  // fresh watchdog budget after restart

  // Capped exponential backoff: 1x, 2x, 4x, ... the base delay, capped at
  // backoff_cycles << backoff_cap_exp. The scheduler's idle fast-forward
  // gives the delay its semantics when nothing else is runnable.
  const uint32_t exp = std::min<uint32_t>(
      static_cast<uint32_t>(t.restart_streak - 1), cfg_.supervise.backoff_cap_exp);
  t.wake_cycle = m_.cycles() + (cfg_.supervise.backoff_cycles << exp);

  m_.charge(cfg_.costs.task_restart);
  emit(EventKind::TaskRestarted, t.id, t.restart_streak);
}

void Kernel::quarantine_task(Task& t) {
  t.quarantined = true;
  ++stats_.quarantines;
  m_.dev().health_add(0, 1, 0);
  emit(EventKind::TaskQuarantined, t.id,
       uint16_t(std::min<uint32_t>(t.restarts, 0xFFFF)));
}

void Kernel::note_healthy_service() {
  Task& t = current();
  t.wd_cpu_mark = t.cpu_cycles + (m_.cycles() - account_mark_);
  if (t.restart_streak != 0 &&
      ++t.healthy_streak >= cfg_.supervise.healthy_services) {
    // The restarted incarnation made sustained progress: forgive the
    // failure streak so the next fault starts a new restart budget.
    t.restart_streak = 0;
    t.healthy_streak = 0;
  }
}

bool Kernel::watchdog_check(uint32_t resume_pc) {
  if (cfg_.supervise.watchdog_cycles == 0) return false;
  Task& t = current();
  if (t.state != TaskState::Running) return false;
  const uint64_t cpu_now = t.cpu_cycles + (m_.cycles() - account_mark_);
  if (cpu_now - t.wd_cpu_mark < cfg_.supervise.watchdog_cycles) return false;
  ++t.watchdog_fires;
  ++stats_.watchdog_fires;
  m_.dev().health_add(0, 0, 1);
  emit(EventKind::WatchdogFired, t.id,
       uint16_t(std::min<uint32_t>(t.watchdog_fires, 0xFFFF)));
  kill_task(t, KillReason::Watchdog);
  context_switch(resume_pc, /*block_current=*/false);
  return true;
}

}  // namespace sensmart::kern
