// Preemptive round-robin scheduling on software traps (§IV-B): one out of
// `trap_interval` backward branches enters the kernel, which compares the
// Timer3-based slice budget and preempts the task if it is used up. Device
// interrupts are never required, so tasks running with interrupts disabled
// are still preempted.
#include <algorithm>
#include <limits>

#include "kernel/kernel.hpp"

namespace sensmart::kern {

void Kernel::account_current() {
  current().cpu_cycles += m_.cycles() - account_mark_;
  account_mark_ = m_.cycles();
}

void Kernel::trap_tick(uint32_t resume_pc) {
  ++stats_.traps;
  if (++trap_counter_ < cfg_.trap_interval) return;
  trap_counter_ = 0;
  ++stats_.trap_checks;
  m_.charge(cfg_.costs.trap_check);
  wake_due_tasks();
  if (recovery_on_ && watchdog_check(resume_pc)) return;
  const uint64_t elapsed = m_.cycles() - slice_start_;
  if (elapsed >= cfg_.slice_cycles) {
    const uint64_t delay = elapsed - cfg_.slice_cycles;
    stats_.preempt_delay_max = std::max(stats_.preempt_delay_max, delay);
    stats_.preempt_delay_sum += delay;
    ++stats_.preemptions;
    emit(EventKind::Preempt, current().id,
         uint16_t(std::min<uint64_t>(delay, 0xFFFF)));
    context_switch(resume_pc, /*block_current=*/false);
  }
}

void Kernel::wake_due_tasks() {
  const uint64_t now = m_.cycles();
  for (Task& t : tasks_) {
    if (t.state == TaskState::Blocked && t.wake_cycle <= now) {
      t.state = TaskState::Ready;
      emit(EventKind::Wake, t.id);
    }
  }
}

std::optional<size_t> Kernel::pick_next(size_t after) {
  for (size_t i = 1; i <= tasks_.size(); ++i) {
    const size_t idx = (after + i) % tasks_.size();
    if (tasks_[idx].state == TaskState::Ready) return idx;
  }
  return std::nullopt;
}

void Kernel::idle_until_wake() {
  // No task is runnable: fast-forward to the earliest wake-up.
  uint64_t wake = std::numeric_limits<uint64_t>::max();
  for (const Task& t : tasks_)
    if (t.state == TaskState::Blocked) wake = std::min(wake, t.wake_cycle);
  if (wake == std::numeric_limits<uint64_t>::max()) return;
  if (wake > m_.cycles()) {
    const uint64_t idle = wake - m_.cycles();
    stats_.idle_cycles += idle;
    m_.charge_idle(idle);
    const uint64_t capped = std::min<uint64_t>(idle, 0xFFFFFFFF);
    emit(EventKind::Idle, uint16_t(capped & 0xFFFF), uint16_t(capped >> 16));
  }
  wake_due_tasks();
}

void Kernel::save_context(Task& t, uint32_t pc) {
  for (uint8_t r = 0; r < 32; ++r) t.regs[r] = m_.mem().reg(r);
  t.sreg = m_.mem().sreg();
  t.sp = m_.mem().sp();
  t.pc = pc;
  m_.charge(cfg_.costs.ctx_save);
}

void Kernel::restore_context(Task& t) {
  for (uint8_t r = 0; r < 32; ++r) m_.mem().set_reg(r, t.regs[r]);
  m_.mem().set_sreg(t.sreg);
  m_.mem().set_sp(t.sp);
  m_.set_pc(t.pc);
  m_.charge(cfg_.costs.ctx_restore);
}

void Kernel::context_switch(uint32_t resume_pc, bool block_current) {
  Task& cur = current();
  account_current();
  m_.charge(cfg_.costs.ctx_sched);
  wake_due_tasks();

  std::optional<size_t> next = pick_next(current_);

  // Slice expired but nobody else is runnable: keep running, restart slice.
  // The conditions test Running, not live(): a task the supervisor just
  // restarted is live but Blocked with a freshly staged entry context, and
  // saving the machine's stale registers over that snapshot would resume it
  // inside its crashed incarnation.
  if (!next && cur.state == TaskState::Running && !block_current) {
    slice_start_ = m_.cycles();
    account_mark_ = m_.cycles();
    return;
  }

  if (cur.state == TaskState::Running) {
    save_context(cur, resume_pc);
    cur.state = block_current ? TaskState::Blocked : TaskState::Ready;
  }

  while (!next) {
    bool any_blocked = false;
    for (const Task& t : tasks_)
      if (t.state == TaskState::Blocked) any_blocked = true;
    if (!any_blocked) {
      bool any_ready = false;
      for (const Task& t : tasks_)
        if (t.state == TaskState::Ready) any_ready = true;
      if (!any_ready) {
        // Every task is Done or Killed: stop the machine.
        m_.stop(emu::StopReason::Halted);
        return;
      }
    }
    idle_until_wake();
    next = pick_next(current_);
  }

  const uint16_t from = cur.id;
  current_ = *next;
  Task& nt = current();
  nt.state = TaskState::Running;
  restore_context(nt);
  ++stats_.context_switches;
  emit(EventKind::ContextSwitch, from, nt.id);
  slice_start_ = m_.cycles();
  account_mark_ = m_.cycles();
}

}  // namespace sensmart::kern
