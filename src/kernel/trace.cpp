#include "kernel/trace.hpp"

#include <iomanip>

#include "emu/io_map.hpp"
#include "kernel/kernel.hpp"

namespace sensmart::kern {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::Start: return "start";
    case EventKind::ContextSwitch: return "switch";
    case EventKind::Preempt: return "preempt";
    case EventKind::Block: return "block";
    case EventKind::Wake: return "wake";
    case EventKind::Relocation: return "relocate";
    case EventKind::RegionRelease: return "release";
    case EventKind::TaskDone: return "done";
    case EventKind::TaskKilled: return "killed";
    case EventKind::Idle: return "idle";
    case EventKind::AuditFail: return "audit!";
    case EventKind::TaskRestarted: return "restart";
    case EventKind::TaskQuarantined: return "quarantine";
    case EventKind::WatchdogFired: return "watchdog";
  }
  return "?";
}

void KernelTrace::dump(std::ostream& os, size_t limit) const {
  const size_t n =
      limit == 0 ? events_.size() : std::min(limit, events_.size());
  for (size_t i = 0; i < n; ++i) {
    const TraceEvent& e = events_[i];
    os << std::fixed << std::setprecision(3) << std::setw(10)
       << (double(e.cycle) * 1000.0 / emu::kClockHz) << " ms  "
       << std::left << std::setw(9) << to_string(e.kind) << std::right;
    switch (e.kind) {
      case EventKind::Start:
        os << " tasks=" << e.a;
        break;
      case EventKind::ContextSwitch:
        os << " task " << e.a << " -> " << e.b;
        break;
      case EventKind::Preempt:
        os << " task " << e.a << " (delay " << e.b << " cy)";
        break;
      case EventKind::Relocation:
        os << " donor " << e.a << ", " << e.b << " B moved";
        break;
      case EventKind::TaskDone:
        os << " task " << e.a << " exit " << e.b;
        break;
      case EventKind::TaskKilled:
        os << " task " << e.a << " reason "
           << to_string(static_cast<KillReason>(e.b));
        break;
      case EventKind::Idle:
        os << " " << (uint32_t(e.b) << 16 | e.a) << " cy";
        break;
      case EventKind::TaskRestarted:
        os << " task " << e.a << " (failure streak " << e.b << ")";
        break;
      case EventKind::TaskQuarantined:
        os << " task " << e.a << " after " << e.b << " restarts";
        break;
      case EventKind::WatchdogFired:
        os << " task " << e.a << " (fire " << e.b << ")";
        break;
      default:
        os << " task " << e.a;
        break;
    }
    os << "\n";
  }
  if (events_.size() > n)
    os << "  ... " << (events_.size() - n) << " more events\n";
  if (dropped_ > 0) os << "  (" << dropped_ << " events dropped at cap)\n";
}

}  // namespace sensmart::kern
