// Memory management: region layout, logical addressing (§IV-C2) and stack
// relocation (§IV-C3).
#include <algorithm>
#include <sstream>

#include "kernel/kernel.hpp"

namespace sensmart::kern {

using emu::kDataEnd;
using emu::kSramBase;

uint16_t Kernel::sp_of(const Task& t) const {
  if (started_ && t.id == tasks_[current_].id &&
      tasks_[current_].state == TaskState::Running)
    return m_.mem().sp();
  return t.sp;
}

void Kernel::set_sp_of(Task& t, uint16_t sp) {
  if (started_ && t.id == tasks_[current_].id &&
      tasks_[current_].state == TaskState::Running)
    m_.mem().set_sp(sp);
  else
    t.sp = sp;
}

uint16_t Kernel::free_stack(const Task& t) const {
  const uint16_t sp = sp_of(t);
  return sp >= t.p_h ? static_cast<uint16_t>(sp - t.p_h + 1) : 0;
}

void Kernel::rebuild_xlate_cache() {
  // After start, a rebuild means the region map changed under running
  // tasks: every cached translation window is invalid from here on. This
  // is the runtime half of the coalescing contract (DESIGN.md §6d) — the
  // rewriter only coalesces across spans that cannot contain such a
  // mutation, and the counter lets benches report how often windows die.
  if (started_) ++stats_.window_invalidations;
  xc_.resize(tasks_.size());
  for (size_t i = 0; i < tasks_.size(); ++i) {
    const Task& t = tasks_[i];
    XlateCache& c = xc_[i];
    c.heap_end_logical =
        static_cast<uint16_t>(kSramBase + prog_of(t).heap_size);
    c.heap_disp = static_cast<uint16_t>(t.p_l - kSramBase);
    c.sp_off = static_cast<uint16_t>(kDataEnd - t.p_u);
    c.p_h = t.p_h;
    c.p_u = t.p_u;
  }
}

Kernel::Xlate Kernel::translate(const Task& t, uint16_t logical) const {
  Xlate x;
  const XlateCache& c = xc_[t.id];
  if (!cfg_.protect_app_regions) {
    // t-kernel-style asymmetric protection: identity addressing, only the
    // kernel area is guarded.
    if (logical >= kernel_base_) return x;
    x.phys = logical;
    x.area = logical < kSramBase ? Xlate::Area::Io
             : logical < c.p_h   ? Xlate::Area::Heap
                                 : Xlate::Area::Stack;
    return x;
  }

  if (logical < kSramBase) {
    x.phys = logical;
    x.area = Xlate::Area::Io;
    return x;
  }
  if (logical < c.heap_end_logical) {
    x.phys = static_cast<uint16_t>(logical + c.heap_disp);
    x.area = Xlate::Area::Heap;
    return x;
  }
  // Stack window: displacement p_u - M (§IV-C2).
  const int32_t phys = int32_t(logical) - int32_t(c.sp_off);
  if (phys >= int32_t(c.p_h) && phys < int32_t(c.p_u)) {
    x.phys = static_cast<uint16_t>(phys);
    x.area = Xlate::Area::Stack;
  }
  return x;
}

bool Kernel::check_window(const Task& t, uint16_t logical, uint8_t span) const {
  const Xlate lo = translate(t, logical);
  if (lo.area == Xlate::Area::Invalid) return false;
  if (span == 0) return true;
  // A window crossing the top of the 16-bit logical space can never be one
  // contiguous area: reject it outright. Truncating `logical + span` to
  // uint16_t would alias the upper endpoint back into low memory (the I/O
  // page) and the endpoint area comparison would not see the seam.
  const uint32_t end = uint32_t(logical) + uint32_t(span);
  if (end > 0xFFFF) return false;
  const Xlate hi = translate(t, static_cast<uint16_t>(end));
  return hi.area != Xlate::Area::Invalid && hi.area == lo.area;
}

bool Kernel::layout_regions() {
  kernel_base_ = static_cast<uint16_t>(kDataEnd - cfg_.kernel_ram);
  const uint32_t app_space = kernel_base_ - kSramBase;

  uint32_t heaps = 0;
  for (const Task& t : tasks_) heaps += prog_of(t).heap_size;
  if (tasks_.empty() || heaps + tasks_.size() * cfg_.min_stack > app_space)
    return false;

  const uint32_t stack_avail = app_space - heaps;
  const uint16_t per_stack = static_cast<uint16_t>(std::min<uint32_t>(
      cfg_.initial_stack, stack_avail / tasks_.size()));
  if (per_stack < cfg_.min_stack) return false;

  uint16_t cursor = kSramBase;
  for (Task& t : tasks_) {
    t.p_l = cursor;
    t.p_h = static_cast<uint16_t>(t.p_l + prog_of(t).heap_size);
    t.p_u = static_cast<uint16_t>(t.p_h + per_stack);
    cursor = t.p_u;
    t.sp = static_cast<uint16_t>(t.p_u - 1);
    t.pc = prog_of(t).entry_nat;
    t.regs.fill(0);
    t.sreg = 0;
    t.state = TaskState::Ready;
  }
  // Hand the leftover to the last region; it becomes the first donor.
  tasks_.back().p_u = kernel_base_;
  tasks_.back().sp = static_cast<uint16_t>(kernel_base_ - 1);
  rebuild_xlate_cache();
  return true;
}

bool Kernel::grow_step(uint16_t shortfall) {
  Task& t = current();
  // Pick the live task with the largest stack surplus (§IV-C3).
  Task* donor = nullptr;
  uint16_t best = 0;
  for (Task& d : tasks_) {
    if (!d.live() || d.id == t.id) continue;
    const uint16_t fs = free_stack(d);
    const uint16_t surplus =
        fs > cfg_.stack_margin ? static_cast<uint16_t>(fs - cfg_.stack_margin)
                               : 0;
    if (surplus > best) {
      best = surplus;
      donor = &d;
    }
  }
  if (donor == nullptr || best == 0) {
    kill_task(t, KillReason::OutOfStackMemory);
    return false;
  }
  // The donor provides half of its surplus, or the shortfall if half is
  // not enough (capped at the full surplus).
  uint16_t delta = std::max<uint16_t>(best / 2, shortfall);
  delta = std::min(delta, best);
  move_regions(*donor, t, delta);
  return true;
}

bool Kernel::ensure_stack_slow(uint16_t needed) {
  Task& t = current();
  const uint32_t required = uint32_t(needed) + cfg_.stack_margin;
  while (free_stack(t) < required) {
    if (!grow_step(static_cast<uint16_t>(required - free_stack(t)))) return false;
  }
  return true;
}

void Kernel::sample_alloc() {
  if (alloc_frozen_) return;
  const uint64_t now = m_.cycles();
  uint64_t total = 0;
  uint64_t n = 0;
  for (const Task& t : tasks_) {
    if (!t.live()) continue;
    total += t.stack_alloc();
    ++n;
  }
  // Integrate the exact byte-cycle sum and the task-cycle denominator
  // separately; dividing per sample would truncate up to n-1 bytes each
  // time and bias the Fig. 7 average low.
  if (n > 0 && now > alloc_mark_) {
    alloc_integral_ += (now - alloc_mark_) * total;
    alloc_task_cycles_ += (now - alloc_mark_) * n;
  }
  alloc_mark_ = now;
}

double Kernel::avg_stack_alloc() const {
  return alloc_task_cycles_ > 0
             ? double(alloc_integral_) / double(alloc_task_cycles_)
             : 0.0;
}

void Kernel::move_regions(Task& donor, Task& to, uint16_t delta) {
  sample_alloc();
  const std::vector<TaskSnapshot> before = audit_snapshot();
  auto& mem = m_.mem();
  uint64_t bytes_moved = 0;

  if (donor.p_l > to.p_l) {
    // Donor sits above: slide [to.sp+1, donor.p_h) upward by delta.
    const uint16_t lo = static_cast<uint16_t>(sp_of(to) + 1);
    const uint16_t hi = donor.p_h;  // exclusive
    for (uint16_t a = hi; a-- > lo;)
      mem.set_raw(static_cast<uint16_t>(a + delta), mem.raw(a));
    bytes_moved = hi - lo;

    for (Task& q : tasks_) {
      if (!q.live() || q.id == to.id || q.id == donor.id) continue;
      if (q.p_l > to.p_l && q.p_l < donor.p_l) {
        q.p_l = static_cast<uint16_t>(q.p_l + delta);
        q.p_h = static_cast<uint16_t>(q.p_h + delta);
        q.p_u = static_cast<uint16_t>(q.p_u + delta);
        set_sp_of(q, static_cast<uint16_t>(sp_of(q) + delta));
      }
    }
    to.p_u = static_cast<uint16_t>(to.p_u + delta);
    set_sp_of(to, static_cast<uint16_t>(sp_of(to) + delta));
    donor.p_l = static_cast<uint16_t>(donor.p_l + delta);
    donor.p_h = static_cast<uint16_t>(donor.p_h + delta);
  } else {
    // Donor sits below: slide [donor.sp+1, to.p_h) downward by delta.
    const uint16_t lo = static_cast<uint16_t>(sp_of(donor) + 1);
    const uint16_t hi = to.p_h;  // exclusive
    for (uint16_t a = lo; a < hi; ++a)
      mem.set_raw(static_cast<uint16_t>(a - delta), mem.raw(a));
    bytes_moved = hi - lo;

    for (Task& q : tasks_) {
      if (!q.live() || q.id == to.id || q.id == donor.id) continue;
      if (q.p_l > donor.p_l && q.p_l < to.p_l) {
        q.p_l = static_cast<uint16_t>(q.p_l - delta);
        q.p_h = static_cast<uint16_t>(q.p_h - delta);
        q.p_u = static_cast<uint16_t>(q.p_u - delta);
        set_sp_of(q, static_cast<uint16_t>(sp_of(q) - delta));
      }
    }
    donor.p_u = static_cast<uint16_t>(donor.p_u - delta);
    set_sp_of(donor, static_cast<uint16_t>(sp_of(donor) - delta));
    to.p_l = static_cast<uint16_t>(to.p_l - delta);
    to.p_h = static_cast<uint16_t>(to.p_h - delta);
  }

  ++stats_.relocations;
  stats_.reloc_bytes_moved += bytes_moved;
  const uint32_t cost = cfg_.costs.reloc_base +
                        cfg_.costs.reloc_per_byte * uint32_t(bytes_moved);
  stats_.reloc_cycles += cost;
  m_.charge(cost);
  emit(EventKind::Relocation, donor.id,
       uint16_t(std::min<uint64_t>(bytes_moved, 0xFFFF)));
  rebuild_xlate_cache();
  audit_after("move_regions", before);
}

void Kernel::release_region(Task& dead) {
  sample_alloc();
  // `dead` is already non-live here, so the snapshot covers exactly the
  // tasks whose contents the merge must preserve.
  const std::vector<TaskSnapshot> before = audit_snapshot();
  // Keep live regions tiling the application area: merge the dead region
  // into a neighbour, moving that neighbour's variable-position part.
  Task* below = nullptr;
  Task* above = nullptr;
  for (Task& q : tasks_) {
    if (!q.live()) continue;
    if (q.p_u == dead.p_l && (!below || q.p_l > below->p_l)) below = &q;
    if (q.p_l == dead.p_u && (!above || q.p_l < above->p_l)) above = &q;
  }
  uint64_t moved = 0;
  if (below != nullptr) {
    // Extend the lower neighbour upward; its stack bytes move to the new top.
    const uint16_t delta = static_cast<uint16_t>(dead.p_u - below->p_u);
    const uint16_t lo = static_cast<uint16_t>(sp_of(*below) + 1);
    const uint16_t hi = below->p_u;
    for (uint16_t a = hi; a-- > lo;)
      m_.mem().set_raw(static_cast<uint16_t>(a + delta), m_.mem().raw(a));
    moved = hi - lo;
    below->p_u = dead.p_u;
    set_sp_of(*below, static_cast<uint16_t>(sp_of(*below) + delta));
  } else if (above != nullptr) {
    // Extend the upper neighbour downward; its heap moves down.
    const uint16_t delta = static_cast<uint16_t>(above->p_l - dead.p_l);
    for (uint16_t a = above->p_l; a < above->p_h; ++a)
      m_.mem().set_raw(static_cast<uint16_t>(a - delta), m_.mem().raw(a));
    moved = above->p_h - above->p_l;
    above->p_l = static_cast<uint16_t>(above->p_l - delta);
    above->p_h = static_cast<uint16_t>(above->p_h - delta);
  }
  if (below || above) {
    ++stats_.relocations;
    stats_.reloc_bytes_moved += moved;
    const uint32_t cost =
        cfg_.costs.reloc_base + cfg_.costs.reloc_per_byte * uint32_t(moved);
    stats_.reloc_cycles += cost;
    m_.charge(cost);
    emit(EventKind::Relocation, below ? below->id : above->id,
         uint16_t(std::min<uint64_t>(moved, 0xFFFF)));
  }
  dead.p_h = dead.p_l;
  dead.p_u = dead.p_l;
  rebuild_xlate_cache();
  emit(EventKind::RegionRelease, dead.id);
  audit_after("release_region", before);
}

namespace {
void snapshot_exit_stats(Task& t, uint16_t sp_now) {
  t.final_stack_alloc = t.stack_alloc();
  if (sp_now < t.p_u)
    t.peak_stack_used = std::max(
        t.peak_stack_used, static_cast<uint16_t>(t.p_u - 1 - sp_now));
}
}  // namespace

void Kernel::kill_task(Task& t, KillReason why) {
  account_current();
  const uint16_t sp_now = sp_of(t);  // read while the task still runs
  ++stats_.kills;
  emit(EventKind::TaskKilled, t.id, uint16_t(why));
  // Supervised kernels give a failing task `max_restarts` fresh starts
  // before the kill becomes terminal (quarantine).
  if (cfg_.supervise.enabled && t.restart_streak < cfg_.supervise.max_restarts) {
    restart_task(t, why);
    return;
  }
  sample_alloc();
  alloc_frozen_ = true;
  t.state = TaskState::Killed;
  t.kill_reason = why;
  snapshot_exit_stats(t, sp_now);
  if (cfg_.supervise.enabled) quarantine_task(t);
  release_region(t);
}

void Kernel::finish_task(Task& t, uint8_t code) {
  account_current();
  sample_alloc();
  alloc_frozen_ = true;
  const uint16_t sp_now = sp_of(t);
  t.state = TaskState::Done;
  t.exit_code = code;
  snapshot_exit_stats(t, sp_now);
  emit(EventKind::TaskDone, t.id, code);
  release_region(t);
}

std::string Kernel::check_invariants() const {
  std::vector<const Task*> live;
  for (const Task& t : tasks_)
    if (t.live()) live.push_back(&t);
  std::sort(live.begin(), live.end(),
            [](const Task* a, const Task* b) { return a->p_l < b->p_l; });

  std::ostringstream err;
  uint16_t cursor = kSramBase;
  for (const Task* t : live) {
    if (t->p_l != cursor) {
      err << "task " << int(t->id) << ": region gap (p_l=" << t->p_l
          << " expected " << cursor << ")";
      return err.str();
    }
    if (!(t->p_l <= t->p_h && t->p_h < t->p_u)) {
      err << "task " << int(t->id) << ": pointer order violated";
      return err.str();
    }
    if (t->p_h != t->p_l + prog_of(*t).heap_size) {
      err << "task " << int(t->id) << ": heap size drifted";
      return err.str();
    }
    const uint16_t sp = sp_of(*t);
    if (sp < t->p_h - 1 || sp > t->p_u - 1) {
      err << "task " << int(t->id) << ": SP " << sp << " outside region ["
          << t->p_h << "," << t->p_u << ")";
      return err.str();
    }
    cursor = t->p_u;
  }
  if (!live.empty() && cursor != kernel_base_) {
    err << "regions do not tile the application area (end=" << cursor
        << " kernel_base=" << kernel_base_ << ")";
    return err.str();
  }
  return {};
}

}  // namespace sensmart::kern
