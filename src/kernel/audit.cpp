// Opt-in kernel auditor (KernelConfig::audit): after every region mutation
// the kernel re-checks the tiling invariants and proves, byte for byte,
// that relocation preserved each live task's heap and live stack contents.
// Auditing reads memory through the raw (uncharged) interface, so an
// audited run is cycle- and trace-identical to an unaudited one except for
// AuditFail events, which only fire on a violation.
#include <algorithm>
#include <sstream>

#include "kernel/kernel.hpp"

namespace sensmart::kern {

std::vector<Kernel::TaskSnapshot> Kernel::audit_snapshot() const {
  std::vector<TaskSnapshot> snap;
  if (!cfg_.audit) return snap;
  const auto& mem = m_.mem();
  for (const Task& t : tasks_) {
    if (!t.live()) continue;
    TaskSnapshot s;
    s.id = t.id;
    s.heap.reserve(t.p_h - t.p_l);
    for (uint16_t a = t.p_l; a < t.p_h; ++a) s.heap.push_back(mem.raw(a));
    const uint16_t sp = sp_of(t);
    for (uint16_t a = static_cast<uint16_t>(sp + 1); a < t.p_u; ++a)
      s.stack.push_back(mem.raw(a));
    snap.push_back(std::move(s));
  }
  return snap;
}

void Kernel::audit_after(const char* what,
                         const std::vector<TaskSnapshot>& before) {
  if (!cfg_.audit) return;
  ++stats_.audit_checks;

  const std::string inv = check_invariants();
  if (!inv.empty()) audit_record(std::string(what) + ": " + inv);

  const auto& mem = m_.mem();
  for (const TaskSnapshot& s : before) {
    const Task* t = nullptr;
    for (const Task& q : tasks_)
      if (q.id == s.id) t = &q;
    // A task snapshotted before the mutation may have been killed by it
    // (not on current paths, but the auditor must not assume that).
    if (t == nullptr || !t->live()) continue;

    std::ostringstream err;
    if (s.heap.size() != size_t(t->p_h - t->p_l)) {
      err << what << ": task " << int(s.id) << " heap resized across move ("
          << s.heap.size() << " -> " << (t->p_h - t->p_l) << ")";
      audit_record(err.str());
      continue;
    }
    for (size_t i = 0; i < s.heap.size(); ++i) {
      if (mem.raw(static_cast<uint16_t>(t->p_l + i)) != s.heap[i]) {
        err << what << ": task " << int(s.id) << " heap byte " << i
            << " corrupted by slide";
        audit_record(err.str());
        break;
      }
    }

    const uint16_t sp = sp_of(*t);
    const size_t stack_len = t->p_u > sp ? size_t(t->p_u - 1 - sp) : 0;
    if (s.stack.size() != stack_len) {
      std::ostringstream e2;
      e2 << what << ": task " << int(s.id) << " live stack resized across "
         << "move (" << s.stack.size() << " -> " << stack_len << ")";
      audit_record(e2.str());
      continue;
    }
    for (size_t i = 0; i < s.stack.size(); ++i) {
      if (mem.raw(static_cast<uint16_t>(sp + 1 + i)) != s.stack[i]) {
        std::ostringstream e2;
        e2 << what << ": task " << int(s.id) << " stack byte " << i
           << " corrupted by slide";
        audit_record(e2.str());
        break;
      }
    }
  }
}

void Kernel::audit_record(const std::string& msg) {
  ++stats_.audit_failures;
  emit(EventKind::AuditFail,
       uint16_t(std::min<size_t>(audit_log_.size(), 0xFFFF)));
  if (audit_log_.size() < 256) audit_log_.push_back(msg);
}

}  // namespace sensmart::kern
