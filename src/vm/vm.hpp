// A Maté-style bytecode virtual machine (Levis & Culler, ASPLOS'02) used as
// the interpretation-based comparison point of Fig. 6(c). The VM is a
// stack machine with a small set of shared 16-bit variables; the
// interpreter charges an emulated-AVR cycle cost per bytecode (dispatch
// plus the operation), which is what makes interpretation 1.5-2 orders of
// magnitude slower than native or binary-translated execution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sensmart::vm {

enum class Bc : uint8_t {
  Halt,        // stop execution
  PushC8,      // push next byte
  PushC16,     // push next two bytes (little-endian)
  Drop,        // pop
  Dup,         // duplicate top
  Add,         // a b -- a+b  (16-bit)
  Sub,         // a b -- a-b
  Sub1,        // a -- a-1
  Jnz,         // pop cond; if != 0, pc += rel8 (signed, next byte)
  Jmp,         // pc += rel8
  LoadV,       // push variables[next byte]
  StoreV,      // pop into variables[next byte]
  GetClock,    // push current 16-bit tick (cycles / 256)
  SleepUntil,  // pop target tick; idle until it (no-op if already passed)
  Out,         // pop; emit low byte to the VM's output stream
};

struct VmCosts {
  // Per-bytecode interpreter costs in AVR cycles: fetch/decode/dispatch
  // through the interpreter loop, then the handler body.
  uint32_t dispatch = 28;
  uint32_t op_simple = 8;    // stack and ALU handlers
  uint32_t op_memory = 14;   // variable load/store
  uint32_t op_control = 12;  // branches
  uint32_t op_system = 40;   // clock, sleep, output
};

struct VmResult {
  bool halted = false;
  std::string error;           // non-empty on stack underflow / bad opcode
  uint64_t cycles = 0;         // total (active + idle)
  uint64_t active_cycles = 0;  // interpreting
  uint64_t idle_cycles = 0;    // sleeping
  uint64_t ops_executed = 0;
  std::vector<uint8_t> out;
};

class MateVm {
 public:
  explicit MateVm(std::vector<uint8_t> code, VmCosts costs = {});

  // Interpret until Halt, an error, or the cycle budget is exhausted.
  VmResult run(uint64_t max_cycles);

 private:
  std::vector<uint8_t> code_;
  VmCosts costs_;
};

// Small assembler for VM capsules, with labels for branch targets.
class VmAssembler {
 public:
  void op(Bc b);
  void push8(uint8_t v);
  void push16(uint16_t v);
  void load(uint8_t var);
  void store(uint8_t var);
  void jnz(const std::string& label);
  void jmp(const std::string& label);
  void label(const std::string& name);
  std::vector<uint8_t> finish();

 private:
  struct Fix {
    size_t at;  // offset of the rel8 byte
    std::string target;
  };
  std::vector<uint8_t> code_;
  std::vector<Fix> fixes_;
  std::vector<std::pair<std::string, size_t>> labels_;
};

// The PeriodicTask program expressed in bytecode: same periods, same
// activation count, and a busy loop doing the equivalent amount of work
// (`instructions` native-instruction-equivalents, two per loop iteration).
std::vector<uint8_t> periodic_task_bytecode(uint16_t period_ticks,
                                            uint16_t activations,
                                            uint32_t instructions);

}  // namespace sensmart::vm
