#include "vm/vm.hpp"

#include <array>
#include <stdexcept>

#include "emu/io_map.hpp"

namespace sensmart::vm {

MateVm::MateVm(std::vector<uint8_t> code, VmCosts costs)
    : code_(std::move(code)), costs_(costs) {}

VmResult MateVm::run(uint64_t max_cycles) {
  VmResult r;
  std::vector<uint16_t> stack;
  std::array<uint16_t, 8> vars{};
  size_t pc = 0;

  auto pop = [&](uint16_t& v) {
    if (stack.empty()) return false;
    v = stack.back();
    stack.pop_back();
    return true;
  };
  auto fetch8 = [&]() -> uint8_t { return pc < code_.size() ? code_[pc++] : 0; };

  while (r.cycles < max_cycles) {
    if (pc >= code_.size()) {
      r.error = "pc out of range";
      return r;
    }
    const Bc op = static_cast<Bc>(code_[pc++]);
    ++r.ops_executed;
    uint32_t cost = costs_.dispatch;
    uint16_t a = 0, b = 0;

    switch (op) {
      case Bc::Halt:
        r.active_cycles += cost;
        r.cycles += cost;
        r.halted = true;
        return r;
      case Bc::PushC8:
        stack.push_back(fetch8());
        cost += costs_.op_simple;
        break;
      case Bc::PushC16: {
        const uint8_t lo = fetch8(), hi = fetch8();
        stack.push_back(static_cast<uint16_t>(lo | (hi << 8)));
        cost += costs_.op_simple;
        break;
      }
      case Bc::Drop:
        if (!pop(a)) { r.error = "underflow"; return r; }
        cost += costs_.op_simple;
        break;
      case Bc::Dup:
        if (stack.empty()) { r.error = "underflow"; return r; }
        stack.push_back(stack.back());
        cost += costs_.op_simple;
        break;
      case Bc::Add:
        if (!pop(b) || !pop(a)) { r.error = "underflow"; return r; }
        stack.push_back(static_cast<uint16_t>(a + b));
        cost += costs_.op_simple;
        break;
      case Bc::Sub:
        if (!pop(b) || !pop(a)) { r.error = "underflow"; return r; }
        stack.push_back(static_cast<uint16_t>(a - b));
        cost += costs_.op_simple;
        break;
      case Bc::Sub1:
        if (stack.empty()) { r.error = "underflow"; return r; }
        stack.back() = static_cast<uint16_t>(stack.back() - 1);
        cost += costs_.op_simple;
        break;
      case Bc::Jnz: {
        const int8_t rel = static_cast<int8_t>(fetch8());
        if (!pop(a)) { r.error = "underflow"; return r; }
        if (a != 0) pc = static_cast<size_t>(int64_t(pc) + rel);
        cost += costs_.op_control;
        break;
      }
      case Bc::Jmp: {
        const int8_t rel = static_cast<int8_t>(fetch8());
        pc = static_cast<size_t>(int64_t(pc) + rel);
        cost += costs_.op_control;
        break;
      }
      case Bc::LoadV:
        stack.push_back(vars[fetch8() % vars.size()]);
        cost += costs_.op_memory;
        break;
      case Bc::StoreV: {
        const uint8_t i = fetch8();
        if (!pop(a)) { r.error = "underflow"; return r; }
        vars[i % vars.size()] = a;
        cost += costs_.op_memory;
        break;
      }
      case Bc::GetClock:
        stack.push_back(
            static_cast<uint16_t>(r.cycles / emu::kTimer3Prescale));
        cost += costs_.op_system;
        break;
      case Bc::SleepUntil: {
        if (!pop(a)) { r.error = "underflow"; return r; }
        const uint16_t now =
            static_cast<uint16_t>(r.cycles / emu::kTimer3Prescale);
        const int16_t delta = static_cast<int16_t>(a - now);
        if (delta > 0) {
          const uint64_t idle = uint64_t(delta) * emu::kTimer3Prescale;
          r.idle_cycles += idle;
          r.cycles += idle;
        }
        cost += costs_.op_system;
        break;
      }
      case Bc::Out:
        if (!pop(a)) { r.error = "underflow"; return r; }
        r.out.push_back(static_cast<uint8_t>(a & 0xFF));
        cost += costs_.op_system;
        break;
      default:
        r.error = "bad opcode";
        return r;
    }
    r.active_cycles += cost;
    r.cycles += cost;
  }
  return r;  // cycle budget exhausted
}

// --- VmAssembler -------------------------------------------------------------

void VmAssembler::op(Bc b) { code_.push_back(static_cast<uint8_t>(b)); }
void VmAssembler::push8(uint8_t v) {
  op(Bc::PushC8);
  code_.push_back(v);
}
void VmAssembler::push16(uint16_t v) {
  op(Bc::PushC16);
  code_.push_back(static_cast<uint8_t>(v & 0xFF));
  code_.push_back(static_cast<uint8_t>(v >> 8));
}
void VmAssembler::load(uint8_t var) {
  op(Bc::LoadV);
  code_.push_back(var);
}
void VmAssembler::store(uint8_t var) {
  op(Bc::StoreV);
  code_.push_back(var);
}
void VmAssembler::jnz(const std::string& label) {
  op(Bc::Jnz);
  fixes_.push_back({code_.size(), label});
  code_.push_back(0);
}
void VmAssembler::jmp(const std::string& label) {
  op(Bc::Jmp);
  fixes_.push_back({code_.size(), label});
  code_.push_back(0);
}
void VmAssembler::label(const std::string& name) {
  labels_.emplace_back(name, code_.size());
}
std::vector<uint8_t> VmAssembler::finish() {
  for (const Fix& f : fixes_) {
    bool found = false;
    for (const auto& [name, at] : labels_) {
      if (name != f.target) continue;
      const int64_t rel = int64_t(at) - int64_t(f.at) - 1;
      if (rel < -128 || rel > 127)
        throw std::runtime_error("vm branch out of range: " + f.target);
      code_[f.at] = static_cast<uint8_t>(rel);
      found = true;
      break;
    }
    if (!found) throw std::runtime_error("vm label not found: " + f.target);
  }
  return code_;
}

std::vector<uint8_t> periodic_task_bytecode(uint16_t period_ticks,
                                            uint16_t activations,
                                            uint32_t instructions) {
  // The busy loop runs instructions/2 iterations of {Sub1, Dup, Jnz}; one
  // native loop iteration (SBIW+BRNE) is two instructions, so the logical
  // work matches the native PeriodicTask exactly.
  const uint16_t iters = static_cast<uint16_t>(instructions / 2);

  VmAssembler a;
  // v0 = deadline, v1 = remaining activations.
  a.op(Bc::GetClock);
  a.store(0);
  a.push16(activations);
  a.store(1);

  a.label("period");
  a.load(0);
  a.push16(period_ticks);
  a.op(Bc::Add);
  a.op(Bc::Dup);
  a.store(0);
  a.op(Bc::SleepUntil);  // no-op when the deadline already passed

  if (iters > 0) {
    a.push16(iters);
    a.label("busy");
    a.op(Bc::Sub1);
    a.op(Bc::Dup);
    a.jnz("busy");
    a.op(Bc::Drop);
  }

  a.load(1);
  a.op(Bc::Sub1);
  a.op(Bc::Dup);
  a.store(1);
  a.jnz("period");

  a.push16(activations);
  a.op(Bc::Out);
  a.op(Bc::Halt);
  return a.finish();
}

}  // namespace sensmart::vm
