#include "sim/harness.hpp"

#include <algorithm>
#include <iomanip>
#include <memory>
#include <optional>
#include <sstream>

#include "net/image_codec.hpp"
#include "rewriter/tkernel.hpp"

namespace sensmart::sim {

namespace {

// Shared by run_system and the per-node phase of run_network: admit every
// program, start, run to the budget, and collect the result.
SystemRun run_kernel_to_completion(emu::Machine& m, kern::Kernel& k,
                                   const rw::LinkedSystem& sys,
                                   uint64_t max_cycles,
                                   kern::KernelTrace* trace) {
  if (trace != nullptr) k.set_trace(trace);
  SystemRun r;
  r.admitted = k.admit_all();
  r.programs = sys.programs;
  if (r.admitted == 0 || !k.start()) {
    r.stop = emu::StopReason::Halted;
    r.tasks = k.tasks();
    return r;
  }
  r.stop = k.run(max_cycles);
  r.cycles = m.cycles();
  r.instructions = m.stats().instructions;
  r.active_cycles = m.stats().active_cycles;
  r.idle_cycles = m.stats().idle_cycles;
  r.kernel_stats = k.stats();
  r.avg_stack_alloc = k.avg_stack_alloc();
  r.tasks = k.tasks();
  r.audit_log = k.audit_log();
  r.invariant_error = k.check_invariants();
  return r;
}

}  // namespace

SystemRun run_system(const std::vector<assembler::Image>& images,
                     const RunSpec& spec) {
  rw::Linker linker(spec.rewrite, spec.merge_trampolines);
  for (const auto& img : images) linker.add(img);
  rw::LinkedSystem sys = linker.link();

  emu::Machine m;
  kern::Kernel k(m, sys, spec.kernel);
  return run_kernel_to_completion(m, k, sys, spec.max_cycles, spec.trace);
}

NetworkRun run_network(const std::vector<assembler::Image>& images,
                       const NetworkRunSpec& spec) {
  NetworkRun out;

  // Base station: naturalize (rewrite+link) the applications and serialize
  // the resulting system image for the air.
  rw::Linker linker(spec.rewrite, spec.merge_trampolines);
  for (const auto& img : images) linker.add(img);
  rw::LinkedSystem sys = linker.link();
  out.image_blob = net::serialize_system(sys);

  net::NetSim net(spec.net, out.image_blob);
  if (spec.fault_policy) net.set_fault_policy(spec.fault_policy);
  out.dissemination = net.disseminate();

  // Fleet-wide install dedup: every node whose verified bytes are
  // byte-identical to the base's blob (the common case — the CRC oracle
  // makes anything else a collision) shares one deserialized system and
  // one pre-decoded flash image, adopted read-only by each machine,
  // instead of a per-node re-parse plus a private flash + decode cache.
  std::shared_ptr<const rw::LinkedSystem> fleet_sys;
  std::shared_ptr<const emu::Machine::SharedImage> fleet_img;

  out.nodes.resize(spec.net.nodes);
  for (size_t i = 0; i < spec.net.nodes; ++i) {
    NodeRun& nr = out.nodes[i];
    const size_t id = i + 1;
    nr.abort_reason = out.dissemination.nodes[i].abort_reason;
    if (!net.node_complete(id)) continue;  // partial image: nothing to run

    // Reconstruct the system from the node's verified bytes. The strict
    // decoder re-checks structure; a blob that verified by CRC but does
    // not parse is treated as not installed.
    const bool identical = net.node_blob(id) == out.image_blob;
    std::optional<rw::LinkedSystem> received;
    if (identical && !fleet_sys) {
      received = net::deserialize_system(out.image_blob);
      if (received) {
        fleet_sys = std::make_shared<const rw::LinkedSystem>(
            std::move(*received));
        fleet_img = emu::Machine::build_shared_image(fleet_sys->flash);
        received.reset();
      }
    }
    if (!(identical && fleet_sys)) {
      received = net::deserialize_system(net.node_blob(id));
      if (!received) continue;
    }

    const net::NodeDissemStats& ds = out.dissemination.nodes[i];
    kern::InstallInfo info;
    info.over_the_air = true;
    info.node_id = static_cast<uint16_t>(id);
    info.image_version = spec.net.proto.version;
    info.image_bytes = out.dissemination.image_bytes;
    info.image_crc = out.dissemination.image_crc;
    info.rx_cycles = ds.completion_cycle;
    info.frames_rx = ds.frames_rx;
    info.nacks_sent = ds.nacks_sent;
    info.crc_rejects = ds.crc_drops;
    info.bytes_rx = ds.bytes_rx;
    info.bytes_tx = ds.bytes_tx;

    // Reboot the node into the received image: align its CPU clock with
    // the dissemination timeline, drop any half-received radio tail, and
    // hand the image to the kernel.
    emu::Machine& m = net.node_machine(id);
    m.charge(out.dissemination.cycles);
    m.dev().flush_rx();
    if (identical && fleet_sys) {
      kern::Kernel k(m, fleet_sys, fleet_img, spec.kernel, info);
      nr.install = k.install_info();
      nr.installed = true;
      if (spec.run_kernels)
        nr.run = run_kernel_to_completion(m, k, k.system(), spec.run_cycles,
                                          nullptr);
    } else {
      kern::Kernel k(m, std::move(*received), spec.kernel, info);
      nr.install = k.install_info();
      nr.installed = true;
      if (spec.run_kernels)
        nr.run = run_kernel_to_completion(m, k, k.system(), spec.run_cycles,
                                          nullptr);
    }
  }
  return out;
}

RolloutRun run_rollout(const std::vector<assembler::Image>& images,
                       const RolloutRunSpec& spec) {
  RolloutRun out;

  auto link_blob = [&](const std::vector<assembler::Image>& imgs) {
    rw::Linker linker(spec.rewrite, spec.merge_trampolines);
    for (const auto& img : imgs) linker.add(img);
    return linker.link();
  };
  rw::LinkedSystem new_sys = link_blob(images);
  out.new_blob = net::serialize_system(new_sys);
  out.old_blob = net::serialize_system(link_blob(spec.old_images));

  // Characterize the new image by running it for real on a supervised
  // scratch kernel: the supervisor mirrors its recovery actions into the
  // DeviceHub health counters — the same path a deployed node reports
  // through — and those counters decide the fleet-wide trial behavior.
  {
    emu::Machine m;
    kern::Kernel k(m, new_sys, spec.kernel);
    SystemRun probe =
        run_kernel_to_completion(m, k, new_sys, spec.probe_cycles, nullptr);
    const emu::HealthCounters& h = m.dev().health();
    out.probed.restarts = h.restarts;
    out.probed.quarantines = h.quarantines;
    out.probed.watchdog_fires = h.watchdog_fires;
    if (h.quarantines > 0 || h.watchdog_fires > 0)
      out.probed.kind = net::TrialBehavior::Kind::Runaway;
    else if (probe.stop == emu::StopReason::Running)
      out.probed.kind = net::TrialBehavior::Kind::Wedge;  // never finished
    else
      out.probed.kind = net::TrialBehavior::Kind::Healthy;
  }

  net::NetSim sim(spec.net, out.new_blob);
  sim.set_initial_image(out.old_blob, spec.old_version);
  for (uint16_t id = 1; id <= spec.net.nodes; ++id)
    sim.set_trial_behavior(id, out.probed);
  for (const auto& [id, b] : spec.lemons) sim.set_trial_behavior(id, b);
  out.result = sim.rollout();
  return out;
}

SystemRun run_tkernel(const assembler::Image& image, uint64_t max_cycles) {
  RunSpec spec;
  spec.kernel = kern::tkernel_config();
  spec.rewrite = rw::tkernel_rewrite_options();
  spec.merge_trampolines = rw::kTKernelMerging;
  spec.max_cycles = max_cycles;
  return run_system({image}, spec);
}

// --- Table --------------------------------------------------------------------

Table::Table(std::vector<std::string> headers, int col_width)
    : headers_(std::move(headers)), w_(col_width) {}

void Table::row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

void Table::print(std::ostream& os) const {
  // The first column is wide enough for the longest label.
  size_t first = headers_.empty() ? 0 : headers_[0].size();
  for (const auto& r : rows_)
    if (!r.empty()) first = std::max(first, r[0].size());
  first += 2;

  auto line = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i)
      os << std::left << std::setw(int(i == 0 ? first : size_t(w_)))
         << cells[i];
    os << "\n";
  };
  line(headers_);
  os << std::string(first + (headers_.empty() ? 0 : headers_.size() - 1) * w_,
                    '-')
     << "\n";
  for (const auto& r : rows_) line(r);
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(uint64_t v) { return std::to_string(v); }

}  // namespace sensmart::sim
