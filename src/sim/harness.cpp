#include "sim/harness.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "rewriter/tkernel.hpp"

namespace sensmart::sim {

SystemRun run_system(const std::vector<assembler::Image>& images,
                     const RunSpec& spec) {
  rw::Linker linker(spec.rewrite, spec.merge_trampolines);
  for (const auto& img : images) linker.add(img);
  rw::LinkedSystem sys = linker.link();

  emu::Machine m;
  kern::Kernel k(m, sys, spec.kernel);
  if (spec.trace != nullptr) k.set_trace(spec.trace);
  SystemRun r;
  r.admitted = k.admit_all();
  r.programs = sys.programs;
  if (r.admitted == 0 || !k.start()) {
    r.stop = emu::StopReason::Halted;
    r.tasks = k.tasks();
    return r;
  }
  r.stop = k.run(spec.max_cycles);
  r.cycles = m.cycles();
  r.instructions = m.stats().instructions;
  r.active_cycles = m.stats().active_cycles;
  r.idle_cycles = m.stats().idle_cycles;
  r.kernel_stats = k.stats();
  r.avg_stack_alloc = k.avg_stack_alloc();
  r.tasks = k.tasks();
  r.audit_log = k.audit_log();
  r.invariant_error = k.check_invariants();
  return r;
}

SystemRun run_tkernel(const assembler::Image& image, uint64_t max_cycles) {
  RunSpec spec;
  spec.kernel = kern::tkernel_config();
  spec.rewrite = rw::tkernel_rewrite_options();
  spec.merge_trampolines = rw::kTKernelMerging;
  spec.max_cycles = max_cycles;
  return run_system({image}, spec);
}

// --- Table --------------------------------------------------------------------

Table::Table(std::vector<std::string> headers, int col_width)
    : headers_(std::move(headers)), w_(col_width) {}

void Table::row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

void Table::print(std::ostream& os) const {
  // The first column is wide enough for the longest label.
  size_t first = headers_.empty() ? 0 : headers_[0].size();
  for (const auto& r : rows_)
    if (!r.empty()) first = std::max(first, r[0].size());
  first += 2;

  auto line = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i)
      os << std::left << std::setw(int(i == 0 ? first : size_t(w_)))
         << cells[i];
    os << "\n";
  };
  line(headers_);
  os << std::string(first + (headers_.empty() ? 0 : headers_.size() - 1) * w_,
                    '-')
     << "\n";
  for (const auto& r : rows_) line(r);
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(uint64_t v) { return std::to_string(v); }

}  // namespace sensmart::sim
