// Experiment harness shared by the bench binaries: one-call SenSmart and
// t-kernel runs over a set of application images, and a fixed-width table
// printer for paper-style output.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "assembler/assembler.hpp"
#include "kernel/kernel.hpp"
#include "net/netsim.hpp"
#include "rewriter/linker.hpp"

namespace sensmart::sim {

struct SystemRun {
  emu::StopReason stop = emu::StopReason::Running;
  uint64_t cycles = 0;
  uint64_t instructions = 0;  // emulated instructions retired
  uint64_t active_cycles = 0;
  uint64_t idle_cycles = 0;
  kern::KernelStats kernel_stats;
  double avg_stack_alloc = 0;  // time-averaged bytes per live task
  std::vector<kern::Task> tasks;               // final task states
  std::vector<rw::ProgramInfo> programs;       // inflation accounting
  size_t admitted = 0;
  // Auditor output (populated when KernelConfig::audit is set).
  std::vector<std::string> audit_log;          // violation descriptions
  std::string invariant_error;                 // final check_invariants()

  double seconds() const { return double(cycles) / emu::kClockHz; }
  double utilization() const {
    return cycles ? double(active_cycles) / double(cycles) : 0.0;
  }
  size_t completed() const {
    size_t n = 0;
    for (const auto& t : tasks)
      if (t.state == kern::TaskState::Done) ++n;
    return n;
  }
  size_t killed() const {
    size_t n = 0;
    for (const auto& t : tasks)
      if (t.state == kern::TaskState::Killed) ++n;
    return n;
  }
};

struct RunSpec {
  kern::KernelConfig kernel;
  rw::RewriteOptions rewrite;
  bool merge_trampolines = true;
  uint64_t max_cycles = 4'000'000'000ULL;
  kern::KernelTrace* trace = nullptr;  // optional event trace (not owned)
};

// Rewrite+link `images`, admit one task per image, run to completion or
// the cycle budget.
SystemRun run_system(const std::vector<assembler::Image>& images,
                     const RunSpec& spec = {});

// Convenience: the t-kernel configuration of the same harness.
SystemRun run_tkernel(const assembler::Image& image,
                      uint64_t max_cycles = 4'000'000'000ULL);

// ---------------------------------------------------------------------------
// Multi-node scenario: over-the-air dissemination, then per-node execution.
// ---------------------------------------------------------------------------

struct NetworkRunSpec {
  rw::RewriteOptions rewrite;
  bool merge_trampolines = true;
  kern::KernelConfig kernel;
  net::NetConfig net;                       // nodes, link, protocol, seed
  uint64_t run_cycles = 4'000'000'000ULL;   // per-node execution budget
  bool run_kernels = true;                  // false: dissemination only
  net::FaultPolicy fault_policy;            // scripted faults (tests)
};

struct NodeRun {
  bool installed = false;    // verified image deserialized, kernel started
  // Why dissemination gave up on this node (None when it completed);
  // mirrors the per-node Abort events in the dissemination trace.
  net::NodeAbortReason abort_reason = net::NodeAbortReason::None;
  kern::InstallInfo install;
  SystemRun run;             // valid when installed && run_kernels
};

struct NetworkRun {
  std::vector<uint8_t> image_blob;  // base's serialized naturalized image
  net::DisseminationResult dissemination;
  std::vector<NodeRun> nodes;  // index i = network node i+1

  bool all_installed() const {
    for (const auto& n : nodes)
      if (!n.installed) return false;
    return !nodes.empty();
  }
};

// The full over-the-air pipeline: rewrite+link `images` at the base
// station, serialize the naturalized system, disseminate it over the lossy
// medium to every node, and — on each node whose received image verified —
// install it into a kernel and run all tasks to completion. A node that
// never completed dissemination (or whose blob fails strict
// deserialization) is left without a kernel: partial images never run.
NetworkRun run_network(const std::vector<assembler::Image>& images,
                       const NetworkRunSpec& spec);

// ---------------------------------------------------------------------------
// Staged rollout: a fleet running an old image is upgraded wave-by-wave to
// a new one behind the health gate (DESIGN.md §12).
// ---------------------------------------------------------------------------

struct RolloutRunSpec {
  rw::RewriteOptions rewrite;
  bool merge_trampolines = true;
  kern::KernelConfig kernel;  // supervision config the probe runs under
  net::NetConfig net;         // net.rollout.* pick waves / gate / budget
  // Applications the fleet is already running (slot A before the upgrade).
  std::vector<assembler::Image> old_images;
  uint8_t old_version = 0;
  uint64_t probe_cycles = 40'000'000;  // characterization budget
  // Per-node behavior overrides — the chaos harness's lemon images. Nodes
  // without an entry inherit the probed behavior of the new image.
  std::vector<std::pair<uint16_t, net::TrialBehavior>> lemons;
};

struct RolloutRun {
  std::vector<uint8_t> old_blob;  // serialized old system (initial image)
  std::vector<uint8_t> new_blob;  // serialized new system (disseminated)
  net::TrialBehavior probed;      // measured behavior of the new image
  net::RolloutResult result;
};

// The full staged-upgrade pipeline. The new applications are naturalized
// and serialized exactly as in run_network; the *trial behavior* every node
// exhibits during probation is not scripted but measured, by installing the
// new system into a scratch supervised kernel and running it: supervision
// quarantines or watchdog kills recorded by the kernel (mirrored into
// DeviceHub health counters) make it a Runaway lemon, an image still
// running at the probe budget becomes a Wedge, anything else runs Healthy
// with its restart count reported. Then the fleet — seeded onto the old
// image via NetSim::set_initial_image — is disseminated to and upgraded
// wave-by-wave with NetSim::rollout().
RolloutRun run_rollout(const std::vector<assembler::Image>& images,
                       const RolloutRunSpec& spec);

// ---------------------------------------------------------------------------
// Fixed-width table printer for the bench binaries.
// ---------------------------------------------------------------------------
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 14);
  void row(const std::vector<std::string>& cells);
  void print(std::ostream& os = std::cout) const;

  static std::string num(double v, int precision = 2);
  static std::string num(uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int w_;
};

}  // namespace sensmart::sim
