#include "rewriter/rewriter.hpp"

#include <map>
#include <optional>
#include <stdexcept>

#include "emu/io_map.hpp"

namespace sensmart::rw {

using isa::Instruction;
using isa::Op;

bool is_reserved_port(uint16_t a) {
  return a == emu::kTcnt3L || a == emu::kTcnt3H || a == emu::kTccr3 ||
         a == emu::kHostHalt || a == emu::kHostOut ||
         a == emu::kSleepTargetL || a == emu::kSleepTargetH;
}

namespace {

// How a site is emitted in the naturalized program.
enum class PatchClass : uint8_t {
  Keep,        // copied (JMP/CALL/relative branches retargeted in place)
  RelaxBr,     // forward Brxx: keep if the offset fits, else trampoline
  RelaxRjmp,   // forward Rjmp: keep if the offset fits, else widen to JMP
  Tramp,       // replaced by CALL <trampoline>
  Placeholder, // collapsed stack-run follower: the leader's trampoline
               // performed it; a one-word NOP holds the site's place
};

struct Plan {
  PatchClass cls = PatchClass::Keep;
  Service svc;       // valid when the site may become a trampoline
  bool promoted = false;  // RelaxBr/RelaxRjmp: forced to the wide form
  int nat_size = 1;
  uint32_t nat_addr = 0;
};

// Decide the service kind for a patched instruction, or nullopt to keep it.
std::optional<Service> classify(const DecodedSite& s,
                                const RewriteOptions& opts,
                                uint16_t heap_size) {
  const Instruction& ins = s.ins;
  Service svc;
  svc.original = ins;

  if (isa::is_mem_indirect(ins.op)) {
    if (s.coalesced) {
      svc.kind = ServiceKind::MemIndirectCoalesced;
    } else if (s.group == GroupRole::Follower) {
      svc.kind = ServiceKind::MemIndirectGrouped;
    } else {
      svc.kind = ServiceKind::MemIndirect;
      if (s.group == GroupRole::Leader) {
        svc.group_min = s.group_min_q;
        svc.group_span = s.group_span;
      }
    }
    return svc;
  }
  if (isa::is_mem_direct(ins.op)) {
    const auto addr = static_cast<uint16_t>(ins.k);
    if (addr < emu::kSramBase) {
      if (!is_reserved_port(addr)) return std::nullopt;  // native I/O access
      svc.kind = ServiceKind::ReservedDirect;
      return svc;
    }
    // A direct address statically inside this program's heap can never
    // land elsewhere at run time (the heap displacement is the only thing
    // relocation changes), so the area classification is resolved on the
    // base station and the trampoline only applies the displacement.
    svc.kind = (opts.fast_direct_heap &&
                addr < emu::kSramBase + heap_size)
                   ? ServiceKind::MemDirectFast
                   : ServiceKind::MemDirect;
    return svc;
  }
  if (isa::is_stack_op(ins.op)) {
    svc.kind = ServiceKind::PushPop;
    // A run leader's service performs the collapsed followers' operations
    // too; the count rides in group_span, their registers in run_regs.
    // (Follower sites never reach classify — they become placeholders.)
    svc.group_span = s.run_extra;
    svc.run_regs = s.run_regs;
    return svc;
  }
  if (ins.op == Op::In) {
    if (!isa::reads_sp(ins.op, ins.a)) return std::nullopt;
    svc.kind = ServiceKind::SpRead;
    return svc;
  }
  if (ins.op == Op::Out) {
    if (!isa::writes_sp(ins.op, ins.a)) return std::nullopt;
    svc.kind = ServiceKind::SpWrite;
    return svc;
  }
  if (ins.op == Op::Lpm || ins.op == Op::LpmInc || ins.op == Op::LpmR0) {
    svc.kind = ServiceKind::Lpm;
    return svc;
  }
  if (ins.op == Op::Rcall || ins.op == Op::Call || ins.op == Op::Icall) {
    svc.kind = ServiceKind::CallEnter;
    return svc;
  }
  if (isa::is_return(ins.op)) {
    svc.kind = ServiceKind::Return;
    return svc;
  }
  if (ins.op == Op::Ijmp) {
    svc.kind = ServiceKind::IndirectJump;
    return svc;
  }
  if (ins.op == Op::Sleep) {
    svc.kind = ServiceKind::SleepOp;
    return svc;
  }
  if ((ins.op == Op::Rjmp || ins.op == Op::Brbs || ins.op == Op::Brbc) &&
      ins.k < 0 && opts.patch_branches) {
    svc.kind = ServiceKind::BackwardBranch;
    return svc;
  }
  return std::nullopt;
}

}  // namespace

RewriteOptions paper_options() {
  RewriteOptions o;
  o.coalesce_translations = false;
  o.collapse_stack_checks = false;
  o.fast_direct_heap = false;
  o.tramp_tail_merge = false;
  return o;
}

NaturalizedProgram rewrite(const assembler::Image& img, uint32_t base,
                           ServicePool& pool, const RewriteOptions& opts) {
  std::vector<DecodedSite> sites = analyze(img, opts.grouped_access);
  if (opts.coalesce_translations) mark_coalesced(sites);
  if (opts.collapse_stack_checks) mark_stack_runs(sites);

  // --- Plan each site --------------------------------------------------------
  std::vector<Plan> plans(sites.size());
  std::map<uint32_t, size_t> site_at;  // original addr -> site index
  for (size_t i = 0; i < sites.size(); ++i) {
    site_at[sites[i].addr] = i;
    Plan& p = plans[i];
    p.nat_size = sites[i].size;
    if (sites[i].is_data) continue;

    if (sites[i].stack_run == StackRunRole::Follower) {
      p.cls = PatchClass::Placeholder;
      p.nat_size = 1;
      continue;
    }
    if (auto svc = classify(sites[i], opts, img.heap_size)) {
      p.cls = PatchClass::Tramp;
      p.svc = *svc;
      p.nat_size = 2;
      continue;
    }
    const Op op = sites[i].ins.op;
    if (op == Op::Rjmp) {
      p.cls = PatchClass::RelaxRjmp;  // forward, or backward w/o traps
    } else if (op == Op::Brbs || op == Op::Brbc) {
      p.cls = PatchClass::RelaxBr;
      p.svc.kind = ServiceKind::ForwardBranch;
      p.svc.original = sites[i].ins;
    } else if (op == Op::Invalid) {
      throw std::runtime_error(img.name +
                               ": undecodable instruction in code region");
    }
  }

  // --- Relaxation: find a fixpoint of sizes and addresses --------------------
  auto recompute_addrs = [&] {
    uint32_t a = base;
    for (size_t i = 0; i < sites.size(); ++i) {
      plans[i].nat_addr = a;
      a += static_cast<uint32_t>(plans[i].nat_size);
    }
  };
  auto target_site = [&](size_t i) -> size_t {
    const int64_t t = int64_t(sites[i].addr) + 1 + sites[i].ins.k;
    const auto it = site_at.find(static_cast<uint32_t>(t));
    if (it == site_at.end())
      throw std::runtime_error(img.name + ": branch into the middle of an instruction");
    return it->second;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    recompute_addrs();
    for (size_t i = 0; i < sites.size(); ++i) {
      Plan& p = plans[i];
      if (p.promoted) continue;
      if (p.cls != PatchClass::RelaxBr && p.cls != PatchClass::RelaxRjmp)
        continue;
      const int64_t off = int64_t(plans[target_site(i)].nat_addr) -
                          int64_t(p.nat_addr) - 1;
      const int64_t lo = p.cls == PatchClass::RelaxBr ? -64 : -2048;
      const int64_t hi = p.cls == PatchClass::RelaxBr ? 63 : 2047;
      if (off < lo || off > hi) {
        p.promoted = true;
        p.nat_size = 2;
        changed = true;
      }
    }
  }
  recompute_addrs();

  // --- Build the address map -------------------------------------------------
  std::vector<uint32_t> inflated;
  for (size_t i = 0; i < sites.size(); ++i)
    if (plans[i].nat_size > sites[i].size) inflated.push_back(sites[i].addr);

  NaturalizedProgram out;
  out.name = img.name;
  out.base = base;
  out.map = AddressMap(base, inflated);
  out.heap_size = img.heap_size;
  out.entry_orig = img.entry;
  out.orig_words = img.code_words();
  out.shift_entries = static_cast<uint32_t>(inflated.size());

  // --- Emit -------------------------------------------------------------------
  auto emit_call_placeholder = [&](const Service& svc) {
    const uint32_t idx = pool.intern(svc);
    out.callsites.push_back({uint32_t(out.code.size()), idx});
    out.code.push_back(0x940E);  // CALL, target patched by the linker
    out.code.push_back(0x0000);
    ++out.patched_sites;
  };

  // Re-encode an absolute control transfer with its full 22-bit target.
  // Targets beyond the architectural range fail loudly instead of being
  // silently truncated into a wrong-but-valid flash address.
  auto emit_abs = [&](Op op, uint32_t tgt) {
    if (tgt > 0x3FFFFF)
      throw std::runtime_error(img.name +
                               ": retargeted JMP/CALL exceeds the 22-bit "
                               "program address range");
    Instruction j;
    j.op = op;
    j.k = static_cast<int32_t>(tgt);
    isa::encode_to(j, out.code);
  };

  for (size_t i = 0; i < sites.size(); ++i) {
    const DecodedSite& s = sites[i];
    const Plan& p = plans[i];

    if (s.is_data) {
      for (int w = 0; w < s.size; ++w)
        out.code.push_back(img.code[s.addr + w]);
      continue;
    }

    switch (p.cls) {
      case PatchClass::Tramp:
        emit_call_placeholder(p.svc);
        break;

      case PatchClass::Placeholder: {
        Instruction nop;
        nop.op = Op::Nop;
        isa::encode_to(nop, out.code);
        break;
      }

      case PatchClass::RelaxRjmp: {
        const uint32_t tgt = plans[target_site(i)].nat_addr;
        if (p.promoted) {
          emit_abs(Op::Jmp, tgt);
        } else {
          Instruction j = s.ins;
          j.k = int32_t(tgt) - int32_t(p.nat_addr) - 1;
          isa::encode_to(j, out.code);
        }
        break;
      }

      case PatchClass::RelaxBr: {
        if (p.promoted) {
          emit_call_placeholder(p.svc);
        } else {
          Instruction b = s.ins;
          b.k = int32_t(plans[target_site(i)].nat_addr) -
                int32_t(p.nat_addr) - 1;
          isa::encode_to(b, out.code);
        }
        break;
      }

      case PatchClass::Keep: {
        const Op op = s.ins.op;
        if (op == Op::Jmp || op == Op::Call) {
          // Retarget absolute control transfers statically (§IV-C2:
          // resolved on the base station, no run-time cost).
          const auto it = site_at.find(static_cast<uint32_t>(s.ins.k));
          if (it == site_at.end())
            throw std::runtime_error(img.name + ": jmp/call into the middle of an instruction");
          emit_abs(op, plans[it->second].nat_addr);
        } else {
          for (int w = 0; w < s.size; ++w)
            out.code.push_back(img.code[s.addr + w]);
        }
        break;
      }
    }
  }

  return out;
}

// --- ServicePool -------------------------------------------------------------

uint32_t ServicePool::intern(const Service& svc) {
  ++requests_;
  ++requests_by_kind_[size_t(svc.kind)];
  if (merging_) {
    const auto [it, inserted] =
        index_.try_emplace(svc.key(), uint32_t(services_.size()));
    if (inserted) services_.push_back(svc);
    return it->second;
  }
  services_.push_back(svc);
  return uint32_t(services_.size() - 1);
}

uint32_t ServicePool::total_body_words() const {
  uint32_t n = 0;
  for (const Service& s : services_) n += uint32_t(body_words(s.kind));
  return n;
}

int body_words(ServiceKind kind) {
  // Flash words a trampoline stub occupies. A stub materializes the
  // operation's identity (opcode/register/displacement) and transfers into
  // the shared kernel runtime, which does the heavy lifting; the kernel's
  // own flash footprint is accounted separately (<6% of program memory,
  // §V-A), exactly as the paper separates kernel size from app inflation.
  switch (kind) {
    case ServiceKind::MemIndirect: return 7;
    case ServiceKind::MemIndirectGrouped: return 4;
    case ServiceKind::MemIndirectCoalesced: return 4;
    case ServiceKind::MemDirect: return 5;
    case ServiceKind::MemDirectFast: return 4;
    case ServiceKind::ReservedDirect: return 4;
    case ServiceKind::PushPop: return 5;
    case ServiceKind::CallEnter: return 6;
    case ServiceKind::Return: return 4;
    case ServiceKind::IndirectJump: return 6;
    case ServiceKind::BackwardBranch: return 5;
    case ServiceKind::ForwardBranch: return 4;
    case ServiceKind::SpRead: return 4;
    case ServiceKind::SpWrite: return 5;
    case ServiceKind::Lpm: return 6;
    case ServiceKind::SleepOp: return 4;
  }
  return 5;
}

int stub_words(ServiceKind kind) {
  // The per-site part a trampoline cannot share: the Break marker + service
  // index (2 words) plus whatever materializes the site's identity before
  // jumping into the first same-kind trampoline's tail. Memory services
  // keep one word for the register/displacement immediate; the heavier
  // control-flow services keep their target materialization.
  switch (kind) {
    case ServiceKind::MemIndirect: return 4;
    case ServiceKind::MemIndirectGrouped: return 2;
    case ServiceKind::MemIndirectCoalesced: return 2;
    case ServiceKind::MemDirect: return 3;
    case ServiceKind::MemDirectFast: return 3;
    case ServiceKind::ReservedDirect: return 3;
    case ServiceKind::PushPop: return 2;
    case ServiceKind::CallEnter: return 3;
    case ServiceKind::Return: return 2;
    case ServiceKind::IndirectJump: return 3;
    case ServiceKind::BackwardBranch: return 3;
    case ServiceKind::ForwardBranch: return 3;
    case ServiceKind::SpRead: return 2;
    case ServiceKind::SpWrite: return 2;
    case ServiceKind::Lpm: return 3;
    case ServiceKind::SleepOp: return 2;
  }
  return 2;
}

}  // namespace sensmart::rw
