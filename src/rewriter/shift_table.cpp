// AddressMap (the shift table) is header-only; this TU anchors the target.
#include "rewriter/address_map.hpp"
