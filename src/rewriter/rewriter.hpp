// The base-station binary rewriter (§IV-A): translates a compiled
// application image into a "naturalized" program that cooperates with the
// kernel runtime.
//
// Patching rules, following the paper:
//  * control flow: every backward branch is redirected through a trampoline
//    that performs software-trap counting (1/256) for interrupt-free
//    preemption; forward relative branches are retargeted in place and only
//    trampolined when inflation pushes their target out of encoding range;
//    absolute JMP/CALL are retargeted; IJMP/ICALL/LPM get run-time
//    program-address translation via the shift table; RET is checked.
//  * memory: indirect loads/stores get run-time logical->physical
//    translation with bounds checks (grouped accesses translate once per
//    group); direct accesses to the heap get a static displacement
//    trampoline; direct accesses to the I/O area stay native, except for
//    kernel-reserved ports (Timer3, host ports) which are virtualized.
//  * stack: PUSH/POP/CALL/RET are checked against the task's region, and
//    stack-pointer reads/writes are translated between the logical and
//    physical stack locations.
//
// Every patched instruction becomes exactly one CALL (or JMP) instruction,
// so the naturalized program has the same instruction count as the original
// ("approximate linearity"); 16-bit instructions that became 32-bit CALLs
// are recorded in the shift table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "assembler/assembler.hpp"
#include "rewriter/address_map.hpp"
#include "rewriter/analysis.hpp"
#include "rewriter/service.hpp"

namespace sensmart::rw {

struct RewriteOptions {
  // Patch backward branches for software-trap preemption. Disabled for the
  // "memory protection only" configuration of Fig. 5.
  bool patch_branches = true;
  // Grouped-access optimization (§IV-C2); ablatable.
  bool grouped_access = true;
  // Block-local pointer-provenance coalescing (DESIGN.md §6d): repeated
  // indirect accesses through an untouched pointer reuse the translation
  // via the check-only tier instead of re-trapping at full cost.
  bool coalesce_translations = true;
  // Collapse adjacent PUSH (or POP) runs: one bounds-checking leader
  // trampoline plus native follower instructions. Task-visible behavior is
  // identical because the run cap (4) never exceeds the kernel's enforced
  // minimum red-zone margin.
  bool collapse_stack_checks = true;
  // LDS/STS whose address is statically provable in-heap take the
  // displacement-only fast service (no run-time area classification).
  bool fast_direct_heap = true;
  // Peephole tail merging in the trampoline pool: trampolines of one kind
  // share the first one's handler tail, later ones shrink to stubs.
  bool tramp_tail_merge = true;
  // Scale factor on trampoline body sizes. 1.0 models SenSmart's shared,
  // base-station-optimized bodies; the t-kernel mode uses a larger factor
  // together with disabled merging to model inline on-node rewriting.
  double body_scale = 1.0;
};

// The configuration of §IV exactly as published, without the optimization
// tiers layered on after it. The figure benches pin their paper columns to
// this so the reproduced numbers keep matching the paper while the default
// configuration carries the faster code generation.
RewriteOptions paper_options();

struct NaturalizedProgram {
  std::string name;
  uint32_t base = 0;              // load base (flash word address)
  std::vector<uint16_t> code;     // naturalized body (no trampolines)
  AddressMap map;                 // original -> naturalized addresses
  uint16_t heap_size = 0;
  uint32_t entry_orig = 0;

  // CALL/JMP placeholders that must be pointed at the trampoline region
  // once the linker has placed it: code[index+1] = address_of(service).
  struct Callsite {
    uint32_t code_index;
    uint32_t service;
  };
  std::vector<Callsite> callsites;

  // Inflation statistics (Fig. 4).
  uint32_t orig_words = 0;
  uint32_t shift_entries = 0;
  uint32_t patched_sites = 0;

  uint32_t entry_naturalized() const { return map.to_naturalized(entry_orig); }
};

// Rewrite one program to be loaded at `base`, interning trampolines into
// the shared pool.
NaturalizedProgram rewrite(const assembler::Image& img, uint32_t base,
                           ServicePool& pool, const RewriteOptions& opts);

// True if the rewriter virtualizes direct accesses to this data address
// (kernel-reserved ports, §IV-A bullet 3).
bool is_reserved_port(uint16_t data_addr);

}  // namespace sensmart::rw
